// Knowledgebase: the paper's closing motivation — "an on-going project at
// ECRC: the building of a knowledge base management system" — in miniature:
// base relations, derived views (Definition 1 allows views wherever
// relations appear), general integrity constraints with quantifiers and
// disjunctions, and violation witnesses derived by the same normalization
// machinery that evaluates queries.
//
//	go run ./examples/knowledgebase
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/integrity"
	"repro/internal/relation"
)

func main() {
	db := core.NewDB()

	// Base relations of a small project-management world.
	emp := db.MustDefine("emp", "name", "dept")
	dept := db.MustDefine("dept", "id", "head")
	project := db.MustDefine("project", "id", "dept")
	worksOn := db.MustDefine("works_on", "emp", "project")
	skill := db.MustDefine("skill", "emp", "topic")

	load := func(r *relation.Relation, rows ...[2]string) {
		for _, row := range rows {
			r.InsertValues(relation.Str(row[0]), relation.Str(row[1]))
		}
	}
	load(emp, [2]string{"ann", "cs"}, [2]string{"bob", "cs"}, [2]string{"eve", "math"}, [2]string{"joe", "cs"})
	load(dept, [2]string{"cs", "ann"}, [2]string{"math", "eve"})
	load(project, [2]string{"p1", "cs"}, [2]string{"p2", "math"}, [2]string{"p3", "cs"})
	load(worksOn, [2]string{"ann", "p1"}, [2]string{"bob", "p1"}, [2]string{"bob", "p3"}, [2]string{"eve", "p2"})
	load(skill, [2]string{"ann", "db"}, [2]string{"bob", "db"}, [2]string{"eve", "logic"})

	// Derived views — usable as ranges, filters, even universal ranges.
	for name, def := range map[string]string{
		"busy":       `{ x | exists p: works_on(x, p) }`,
		"dept_staff": `{ d, x | emp(x, d) }`,
		"db_expert":  `{ x | skill(x, "db") and busy(x) }`,
	} {
		if err := db.DefineView(name, def); err != nil {
			log.Fatal(err)
		}
	}

	eng := core.NewEngine(db, core.WithIndexes(true))

	fmt.Println("== queries over views")
	for _, q := range []string{
		`{ x | db_expert(x) }`,
		`{ d | (exists h: dept(d, h)) and forall x: dept_staff(d, x) => busy(x) }`,
	} {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n%s(%d rows, cost %s)\n\n", q, res.Rows, res.Rows.Len(), res.Stats.String())
	}

	// General integrity constraints (quantifiers AND disjunctions).
	m := integrity.NewManager(db)
	m.MustDefine("heads-are-staff", `forall d, h: dept(d, h) => emp(h, d)`)
	m.MustDefine("projects-have-depts", `forall p, d: project(p, d) => exists h: dept(d, h)`)
	m.MustDefine("everyone-useful", `forall x, d: emp(x, d) => (busy(x) or exists d2: dept(d2, x))`)
	m.MustDefine("projects-staffed-locally", `forall p, d: project(p, d) => exists x: works_on(x, p) and emp(x, d)`)

	fmt.Println("== integrity check")
	reports, err := m.CheckAll()
	if err != nil {
		log.Fatal(err)
	}
	printReports(reports)

	// Guarded updates: InsertChecked checks only the constraints the
	// touched relation can affect (specializing universal constraints to
	// the inserted tuple) and rolls back on violation.
	fmt.Println("== guarded updates")
	if err := m.InsertChecked("works_on", relation.NewTuple(relation.Str("joe"), relation.Str("p3"))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted: works_on(joe, p3)")
	if err := m.InsertChecked("emp", relation.NewTuple(relation.Str("zed"), relation.Str("consulting"))); err != nil {
		fmt.Println("rejected:", err)
	}
	fmt.Println()

	// Unguarded updates break two constraints; the witnesses say how.
	fmt.Println("== after force-inserting the consultant anyway")
	emp.InsertValues(relation.Str("zed"), relation.Str("consulting"))
	project.InsertValues(relation.Str("p4"), relation.Str("consulting"))
	reports, err = m.CheckAll()
	if err != nil {
		log.Fatal(err)
	}
	printReports(reports)
}

func printReports(reports []integrity.Report) {
	for _, r := range reports {
		status := "OK"
		if !r.Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("[%-8s] %s\n", status, r.Name)
		if r.Witnesses != nil {
			for _, w := range r.Witnesses.Tuples() {
				fmt.Printf("           witness %s\n", w)
			}
		}
	}
	fmt.Println()
}
