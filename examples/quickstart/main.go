// Quickstart: define a tiny database, ask quantified questions, and look
// at the plans the library builds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

func main() {
	// 1. Define a database.
	db := core.NewDB()
	student := db.MustDefine("student", "name")
	attends := db.MustDefine("attends", "name", "lecture")
	lecture := db.MustDefine("lecture", "id")

	for _, n := range []string{"ann", "bob", "eve"} {
		student.InsertValues(relation.Str(n))
	}
	for _, l := range []string{"db101", "ai202"} {
		lecture.InsertValues(relation.Str(l))
	}
	attends.InsertValues(relation.Str("ann"), relation.Str("db101"))
	attends.InsertValues(relation.Str("ann"), relation.Str("ai202"))
	attends.InsertValues(relation.Str("bob"), relation.Str("db101"))

	// An engine is configured with functional options; a timeout bounds
	// every query it runs (queries this small finish far inside it).
	eng := core.NewEngine(db, core.WithTimeout(5*time.Second))

	// 2. An open query: who attends every lecture? The universal
	// quantifier is normalized away (Rules 4/5) and evaluated with a
	// complement-join — no division, no cartesian product.
	res, err := eng.Query(`{ x | student(x) and forall y: lecture(y) => attends(x, y) }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attends everything:")
	fmt.Print(res.Rows)
	fmt.Printf("cost: %s\n\n", res.Stats.String())

	// 3. A closed (yes/no) query: is someone skipping lectures entirely?
	res, err = eng.Query(`exists x: student(x) and not exists y: attends(x, y)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("someone attends nothing: %v\n\n", res.Truth)

	// 4. Explain shows the canonical form and the algebra plan.
	out, err := eng.Explain(`{ x | student(x) and forall y: lecture(y) => attends(x, y) }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
