// Disjunction: §3.3 in action — the same disjunctive-filter query compiled
// three ways (constrained outer-joins, plain outer-joins, unions), with
// plans and measured costs, on scalable P/T/U data.
//
//	go run ./examples/disjunction
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/translate"
)

func main() {
	cat := dataset.PTU(dataset.PTUParams{
		N: 20000, TProb: 0.6, UProb: 0.2, ExtraShare: 0.25, Branches: 3, Seed: 11,
	})
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}

	queries := []struct {
		title string
		text  string
	}{
		{"positive branches (Fig. 3 shape)", `{ x | P(x) and (T(x) or U(x) or T2(x)) }`},
		{"negated first branch (Fig. 4 shape)", `{ x | P(x) and (not T(x) or U(x)) }`},
	}
	strategies := []struct {
		name string
		s    translate.DisjFilterStrategy
	}{
		{"constrained outer-joins (the paper)", translate.StrategyConstrainedOuterJoin},
		{"plain outer-joins (no constraints)", translate.StrategyOuterJoin},
		{"conventional unions", translate.StrategyUnion},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, q := range queries {
		fmt.Printf("== %s\n   %s\n\n", q.title, q.text)
		for _, st := range strategies {
			eng := core.NewEngine(db, core.WithDisjunctiveFilters(st.s))
			p, err := eng.Prepare(q.text)
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.Run(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("-- %s\n%s", st.name, p.Explain())
			fmt.Fprintf(w, "rows\treads\tcomparisons\tintermediates\tmaterializations\n")
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n\n", res.Rows.Len(),
				res.Stats.BaseTuplesRead, res.Stats.Comparisons,
				res.Stats.IntermediateTuples, res.Stats.Materializations)
			w.Flush()
		}
	}
	fmt.Println("Note how the constrained chain reads each relation once and")
	fmt.Println("probes later branches only for tuples no earlier branch matched,")
	fmt.Println("while the union strategy re-reads the producer per branch and")
	fmt.Println("materializes the union.")
}
