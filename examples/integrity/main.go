// Integrity: the paper's motivating application — checking general
// integrity constraints (with quantifiers and disjunctions) against a
// database, and reporting the violating tuples with open queries.
//
//	go run ./examples/integrity
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// constraint pairs a closed formula with the open query that lists its
// violations (the negation's witnesses).
type constraint struct {
	name       string
	check      string
	violations string
}

func main() {
	db := core.NewDB()
	emp := db.MustDefine("emp", "name", "dept")
	dept := db.MustDefine("dept", "id", "head")
	project := db.MustDefine("project", "id", "dept")
	worksOn := db.MustDefine("works_on", "emp", "project")

	for _, row := range [][2]string{{"ann", "cs"}, {"bob", "cs"}, {"eve", "math"}, {"joe", "bio"}} {
		emp.InsertValues(relation.Str(row[0]), relation.Str(row[1]))
	}
	for _, row := range [][2]string{{"cs", "ann"}, {"math", "eve"}} {
		dept.InsertValues(relation.Str(row[0]), relation.Str(row[1]))
	}
	for _, row := range [][2]string{{"p1", "cs"}, {"p2", "math"}} {
		project.InsertValues(relation.Str(row[0]), relation.Str(row[1]))
	}
	for _, row := range [][2]string{{"ann", "p1"}, {"bob", "p1"}, {"eve", "p2"}, {"joe", "p1"}} {
		worksOn.InsertValues(relation.Str(row[0]), relation.Str(row[1]))
	}

	constraints := []constraint{
		{
			name:       "every employee's department exists",
			check:      `forall x, d: emp(x, d) => exists h: dept(d, h)`,
			violations: `{ x, d | emp(x, d) and not exists h: dept(d, h) }`,
		},
		{
			name:       "every department head belongs to the department",
			check:      `forall d, h: dept(d, h) => emp(h, d)`,
			violations: `{ d, h | dept(d, h) and not emp(h, d) }`,
		},
		{
			name:       "everyone works on something or heads a department",
			check:      `forall x, d: emp(x, d) => ((exists p: works_on(x, p)) or exists d2: dept(d2, x))`,
			violations: `{ x | (exists d: emp(x, d)) and not (exists p: works_on(x, p)) and not (exists d2: dept(d2, x)) }`,
		},
		{
			name:       "every project is staffed by a member of its department",
			check:      `forall p, d: project(p, d) => exists x: works_on(x, p) and emp(x, d)`,
			violations: `{ p, d | project(p, d) and not exists x: works_on(x, p) and emp(x, d) }`,
		},
	}

	// Constraint checking is a background-maintenance workload: bound it
	// with a timeout and run the join family partitioned.
	eng := core.NewEngine(db, core.WithParallelism(2), core.WithTimeout(30*time.Second))
	for _, c := range constraints {
		ok, err := eng.Check(c.check)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		status := "OK"
		if !ok {
			status = "VIOLATED"
		}
		fmt.Printf("[%-8s] %s\n", status, c.name)
		if !ok {
			res, err := eng.Query(c.violations)
			if err != nil {
				log.Fatalf("listing violations of %q: %v", c.name, err)
			}
			for _, t := range res.Rows.Tuples() {
				fmt.Printf("           violating: %s\n", t)
			}
		}
	}
}
