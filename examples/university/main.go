// University: the paper's running examples (§2-§3) evaluated on a
// generated university database, with side-by-side costs for the paper's
// method, the Codd reduction, and the Fig. 1 nested-loop interpreter.
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	cat := dataset.University(dataset.DefaultUniversity(60))
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}

	queries := []struct {
		title string
		text  string
	}{
		{
			"students attending all cs lectures (§2.2 Q₁, open form)",
			`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`,
		},
		{
			"a PhD student or professor speaking french or german (§2.3 Q₁)",
			`exists x: ((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`,
		},
		{
			"cs members or math-skilled professors speaking french (§2.3 Q₄)",
			`{ x | prof(x) and (member(x, "cs") or skill(x, "math")) and speaks(x, "french") }`,
		},
		{
			"PhD student outside cs attending a cs lecture (§3.2 Q)",
			`exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`,
		},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, q := range queries {
		fmt.Printf("== %s\n   %s\n", q.title, q.text)
		fmt.Fprintln(w, "strategy\tanswer\treads\tcomparisons\tintermediates\tmaterializations")
		for _, strat := range []core.Strategy{core.StrategyBry, core.StrategyCodd, core.StrategyLoop} {
			eng := core.NewEngine(db, core.WithStrategy(strat))
			res, err := eng.Query(q.text)
			if err != nil {
				log.Fatalf("%s: %v", strat, err)
			}
			answer := fmt.Sprintf("%v", res.Truth)
			if res.Open {
				answer = fmt.Sprintf("%d rows", res.Rows.Len())
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\n", strat, answer,
				res.Stats.BaseTuplesRead, res.Stats.Comparisons,
				res.Stats.IntermediateTuples, res.Stats.Materializations)
		}
		w.Flush()
		fmt.Println()
	}

	// Show the canonical form the normalizer produces for the miniscope
	// example of §2.2.
	eng := core.NewEngine(db)
	p, err := eng.Prepare(`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§2.2 miniscope normalization:")
	fmt.Printf("  raw:       %s\n", p.Source)
	fmt.Printf("  canonical: %s\n", p.Canonical)
}
