#!/bin/sh
# smoke_serve.sh — end-to-end liveness probe for the service tier.
#
# Boots queryd on a random port over the university dataset with two
# tenants (one generously budgeted, one tiny), runs one query per tenant
# and fetches /stats through queryctl's remote mode, then sends SIGINT and
# checks the daemon drains cleanly. Everything goes through the repo's own
# binaries — no curl or jq dependency.
#
# Run via `make smoke-serve`. Deliberately not part of check.sh: it binds a
# socket and waits on a real process, which is a flakiness class the tier-1
# gate does not admit.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
portfile="$workdir/addr"
logfile="$workdir/queryd.log"

cleanup() {
	if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -INT "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$workdir/queryd" ./cmd/queryd
go build -o "$workdir/queryctl" ./cmd/queryctl

echo "== boot queryd"
"$workdir/queryd" -addr localhost:0 -dataset university -n 50 \
	-tenants 'rich:rich-key,poor:poor-key:3' \
	-portfile "$portfile" > "$logfile" 2>&1 &
daemon_pid=$!

# Wait for the port file (the daemon writes it once the listener is up).
i=0
while [ ! -s "$portfile" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "queryd never came up:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "queryd exited during startup:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	sleep 0.1
done
base="http://$(cat "$portfile")"
echo "queryd at $base"

echo "== query as the rich tenant (expect rows)"
"$workdir/queryctl" -remote "$base" -apikey rich-key \
	-q '{ x | student(x) and not exists y: attends(x, y) }'

echo "== query as the poor tenant (expect a 429 resource rejection)"
if "$workdir/queryctl" -remote "$base" -apikey poor-key \
	-q '{ x | student(x) and not exists y: attends(x, y) }' 2> "$workdir/poor.err"; then
	echo "poor tenant was admitted past a 3-tuple budget — admission is broken" >&2
	exit 1
fi
grep -q "429 resource" "$workdir/poor.err" || {
	echo "poor tenant failed without the typed 429:" >&2
	cat "$workdir/poor.err" >&2
	exit 1
}
echo "rejected as expected: $(head -1 "$workdir/poor.err")"

echo "== /stats"
"$workdir/queryctl" -remote "$base" -stats

echo "== drain (SIGINT)"
kill -INT "$daemon_pid"
wait "$daemon_pid" || {
	echo "queryd exited non-zero on drain:" >&2
	cat "$logfile" >&2
	exit 1
}
daemon_pid=""
grep -q "drained" "$logfile" || {
	echo "queryd never reported a clean drain:" >&2
	cat "$logfile" >&2
	exit 1
}

echo "SMOKE-SERVE PASSED"
