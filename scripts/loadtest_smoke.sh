#!/bin/sh
# loadtest_smoke.sh — overload-resilience and fairness smoke: boot queryd,
# storm it with two tenants of very different manners.
#
# Boots queryd on a random port tuned to be easy to overload (one execution
# slot, no plan cache, a 50ms sojourn target — above the wait a polite
# tenant accrues behind one abuser DRR quantum, so fair-share queueing
# alone rarely triggers a polite shed) with one injected service-level
# fault, then drives a two-tenant queryload storm: an abuser flooding at
# 2000 req/s next to a polite tenant trickling at 20 req/s. The assertions
# are the overload contract plus the fairness contract:
#
#   - the overload defenses shed requests under the storm (server counter
#     > 0) — and the sheds land on the abuser, not the polite tenant: the
#     polite tenant's shed rate stays under 5% and most of its requests
#     succeed while the flood rages;
#   - the clients' view reconciles with the server's counters, globally and
#     per tenant (no RECONCILE FAIL from queryload);
#   - the injected fault surfaced as typed errors, not a dead daemon: the
#     server still answers a query after the storm;
#   - SIGINT drains cleanly — every accepted request answered, "drained"
#     logged, exit 0 — which is the no-leaked-goroutines property observable
#     from outside the process (the in-process check is the -race
#     TestShutdownUnderLoad).
#
# Run via `make loadtest-smoke`; part of ./scripts/check.sh.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
portfile="$workdir/addr"
logfile="$workdir/queryd.log"

cleanup() {
	if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -INT "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$workdir/queryd" ./cmd/queryd
go build -o "$workdir/queryctl" ./cmd/queryctl
go build -o "$workdir/queryload" ./cmd/queryload

echo "== boot queryd (one slot, no cache, 50ms sojourn target, two tenants, one injected fault)"
"$workdir/queryd" -addr localhost:0 -dataset university -n 800 \
	-tenants 'abuser:abuser-key,polite:polite-key' -cache=false \
	-max-concurrent 1 -shed-target 50ms -shed-interval 50ms \
	-default-deadline 2s \
	-fault 'service.batcher:error:3' \
	-portfile "$portfile" > "$logfile" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$portfile" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "queryd never came up:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "queryd exited during startup:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	sleep 0.1
done
base="http://$(cat "$portfile")"
echo "queryd at $base"

echo "== storm (abuser open loop at 2000 req/s, polite at 20 req/s, 3s, retry budget 1)"
load_log="$workdir/queryload.log"
"$workdir/queryload" -base "$base" -apikeys polite-key \
	-rate 20 -abuser abuser-key:2000 -duration 3s -retries 1 \
	-label loadtest-smoke -json "$workdir/run.jsonl" | tee "$load_log"

echo "== assert: the overload defenses shed under the storm"
server_sheds=$(awk '/server window:/ { for (i = 1; i < NF; i++) if ($i == "sheds") print $(i + 1) }' "$load_log")
if [ -z "$server_sheds" ] || [ "$server_sheds" -eq 0 ]; then
	echo "no server-side sheds under a 2000/s storm through one slot — the overload defenses are not engaging" >&2
	exit 1
fi
echo "server shed $server_sheds request(s)"

echo "== assert: the sheds landed on the abuser, not the polite tenant"
# queryload's per-tenant line: tenant polite (polite-key): requests N ok N
# (P%) goodput G/s shed N rate_limited N p50 ... — fields 5/7/12.
polite_line=$(grep -E '^ *tenant polite ' "$load_log" || true)
if [ -z "$polite_line" ]; then
	echo "queryload printed no per-tenant line for the polite tenant" >&2
	exit 1
fi
echo "$polite_line" | awk '{
	requests = $5; ok = $7; shed = $12;
	if (requests == 0) { print "polite tenant issued no requests" > "/dev/stderr"; exit 1 }
	if (shed * 20 >= requests) {
		printf "polite tenant shed rate %d/%d is not under 5%% — fairness failed\n", shed, requests > "/dev/stderr"; exit 1
	}
	if (ok * 2 <= requests) {
		printf "polite tenant goodput collapsed: %d ok of %d\n", ok, requests > "/dev/stderr"; exit 1
	}
	printf "polite tenant: %d/%d ok, %d shed — goodput survived the flood\n", ok, requests, shed
}'

echo "== assert: client and server counters reconcile (globally and per tenant)"
if grep -q "RECONCILE FAIL" "$load_log"; then
	echo "queryload reconciliation failed (see above)" >&2
	exit 1
fi
grep -q "server tenant polite:" "$load_log" || {
	echo "queryload printed no per-tenant server ledger for polite" >&2
	exit 1
}

echo "== assert: the injected fault fired and the daemon survived it"
# The service.batcher arm failed one whole batch with typed errors; the
# daemon must still answer afterwards.
"$workdir/queryctl" -remote "$base" -apikey polite-key \
	-q '{ x | student(x) and not exists y: attends(x, y) }' > /dev/null
echo "post-storm query answered"

echo "== drain (SIGINT)"
kill -INT "$daemon_pid"
wait "$daemon_pid" || {
	echo "queryd exited non-zero on drain:" >&2
	cat "$logfile" >&2
	exit 1
}
daemon_pid=""
grep -q "drained" "$logfile" || {
	echo "queryd never reported a clean drain:" >&2
	cat "$logfile" >&2
	exit 1
}

echo "LOADTEST-SMOKE PASSED"
