#!/bin/sh
# loadtest_smoke.sh — overload-resilience smoke: boot queryd, storm it.
#
# Boots queryd on a random port tuned to be easy to overload (two execution
# slots, no plan cache, a 5ms sojourn target — above the 2ms batch-wait
# linger, so an idle request is never shed) with one injected service-level
# fault, then drives a short open-loop queryload burst at a rate the slots
# cannot absorb. The assertions are the overload contract:
#
#   - the CoDel admission controller shed requests (server counter > 0);
#   - the clients' view reconciles with the server's counters (no
#     RECONCILE FAIL from queryload);
#   - the injected fault surfaced as typed errors, not a dead daemon: the
#     server still answers a query after the storm;
#   - SIGINT drains cleanly — every accepted request answered, "drained"
#     logged, exit 0 — which is the no-leaked-goroutines property observable
#     from outside the process (the in-process check is the -race
#     TestShutdownUnderLoad).
#
# Run via `make loadtest-smoke`; part of ./scripts/check.sh.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
portfile="$workdir/addr"
logfile="$workdir/queryd.log"

cleanup() {
	if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -INT "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$workdir/queryd" ./cmd/queryd
go build -o "$workdir/queryctl" ./cmd/queryctl
go build -o "$workdir/queryload" ./cmd/queryload

echo "== boot queryd (two slots, no cache, 5ms sojourn target, one injected fault)"
"$workdir/queryd" -addr localhost:0 -dataset university -n 400 \
	-tenants 'demo:demo-key' -cache=false \
	-max-concurrent 2 -shed-target 5ms -shed-interval 50ms \
	-default-deadline 2s \
	-fault 'service.batcher:error:3' \
	-portfile "$portfile" > "$logfile" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$portfile" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "queryd never came up:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "queryd exited during startup:" >&2
		cat "$logfile" >&2
		exit 1
	fi
	sleep 0.1
done
base="http://$(cat "$portfile")"
echo "queryd at $base"

echo "== storm (open loop, 2000 req/s for 3s, retry budget 1)"
load_log="$workdir/queryload.log"
"$workdir/queryload" -base "$base" -apikeys demo-key \
	-rate 2000 -duration 3s -retries 1 \
	-label loadtest-smoke -json "$workdir/run.jsonl" | tee "$load_log"

echo "== assert: the admission controller shed under the storm"
server_sheds=$(awk '/server window:/ { for (i = 1; i < NF; i++) if ($i == "sheds") print $(i + 1) }' "$load_log")
if [ -z "$server_sheds" ] || [ "$server_sheds" -eq 0 ]; then
	echo "no server-side sheds under a 2000/s storm through two slots — the admission controller is not engaging" >&2
	exit 1
fi
echo "server shed $server_sheds request(s)"

echo "== assert: client and server counters reconcile"
if grep -q "RECONCILE FAIL" "$load_log"; then
	echo "queryload reconciliation failed (see above)" >&2
	exit 1
fi

echo "== assert: the injected fault fired and the daemon survived it"
# The service.batcher arm failed one whole batch with typed errors; the
# daemon must still answer afterwards.
"$workdir/queryctl" -remote "$base" -apikey demo-key \
	-q '{ x | student(x) and not exists y: attends(x, y) }' > /dev/null
echo "post-storm query answered"

echo "== drain (SIGINT)"
kill -INT "$daemon_pid"
wait "$daemon_pid" || {
	echo "queryd exited non-zero on drain:" >&2
	cat "$logfile" >&2
	exit 1
}
daemon_pid=""
grep -q "drained" "$logfile" || {
	echo "queryd never reported a clean drain:" >&2
	cat "$logfile" >&2
	exit 1
}

echo "LOADTEST-SMOKE PASSED"
