#!/bin/sh
# check.sh — the repo's tier-1 gate, runnable locally and in CI.
#
#   ./scripts/check.sh         # format, vet, build, full tests, race tests,
#                              # one-shot benchmark smoke
#
# The race pass covers the packages with real concurrency: the partitioned
# executor (internal/exec) and the engine API that drives it with
# contexts and timeouts (internal/core).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

# -shuffle=on randomizes test order within each package, so tests that
# lean on state left behind by an earlier test (a warm package-level cache,
# relation mutation order) fail loudly instead of passing by accident.
echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race (exec, core, shuffled)"
go test -race -shuffle=on ./internal/exec/ ./internal/core/

echo "== chaos sweep (seeded fault injection under -race)"
CHAOS_SEEDS="${CHAOS_SEEDS:-24}" go test -race -shuffle=on -run Chaos -count=1 ./internal/exec/ ./internal/core/

echo "== bench smoke (every benchmark once + counter gate)"
make bench-smoke > /dev/null

echo "ALL CHECKS PASSED"
