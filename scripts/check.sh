#!/bin/sh
# check.sh — the repo's tier-1 gate, runnable locally and in CI.
#
#   ./scripts/check.sh         # toolchain pin, format, vet, lint, build,
#                              # full tests, race tests, chaos sweep,
#                              # one-shot benchmark smoke + counter gate,
#                              # overload load-test smoke (queryd + queryload)
#
# The race pass covers the packages with real concurrency: the partitioned
# executor (internal/exec), the engine API that drives it with contexts and
# timeouts (internal/core), the optimizer whose plan cache is shared across
# goroutines (internal/planopt), constraint checking over live engines
# (internal/integrity), and the multi-tenant service tier with its batcher
# and request-level single-flight (internal/service).
set -eu

cd "$(dirname "$0")/.."

# Results must be comparable across machines and sessions: the pinned
# toolchain in go.mod is the one the gate was blessed with.
echo "== toolchain pin"
want=$(awk '/^toolchain /{print $2}' go.mod)
have=$(go env GOVERSION)
if [ -z "$want" ]; then
	echo "go.mod is missing a toolchain pin (expected: toolchain $have)" >&2
	exit 1
fi
if [ "$want" != "$have" ]; then
	echo "toolchain mismatch: go.mod pins $want but go env GOVERSION reports $have" >&2
	exit 1
fi
echo "pinned $want"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== make lint (repo invariant analyzers)"
# The suite must stay cheap enough to run on every check: budget 30s of
# wall clock for the whole lint step (including the go run build). The
# -timing output in the lint target itemizes per-pass cost when the budget
# ever gets tight.
lint_start=$(date +%s)
make lint
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "   lint wall clock: ${lint_elapsed}s (budget 30s)"
if [ "$lint_elapsed" -ge 30 ]; then
	echo "lint suite took ${lint_elapsed}s, over the 30s budget — see the lintrepro timing lines above" >&2
	exit 1
fi

echo "== go build"
go build ./...

# -shuffle=on randomizes test order within each package, so tests that
# lean on state left behind by an earlier test (a warm package-level cache,
# relation mutation order) fail loudly instead of passing by accident.
echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race (exec, core, planopt, integrity, service, shuffled)"
go test -race -shuffle=on ./internal/exec/ ./internal/core/ ./internal/planopt/ ./internal/integrity/ ./internal/service/

echo "== chaos sweep (seeded fault injection under -race)"
CHAOS_SEEDS="${CHAOS_SEEDS:-24}" go test -race -shuffle=on -run Chaos -count=1 ./internal/exec/ ./internal/core/

echo "== bench smoke (every benchmark once + counter gate)"
smoke_log=$(mktemp)
if ! make bench-smoke > "$smoke_log" 2>&1; then
	cat "$smoke_log" >&2
	rm -f "$smoke_log"
	exit 1
fi
# Surface the benchcmp -gate verdict in the check summary instead of
# swallowing it: changed counters, regressions, and the comparison tally.
grep -E 'rows compared|REGRESSION|GATE FAILED|result: | -> |only in ' "$smoke_log" || true
rm -f "$smoke_log"

echo "== loadtest smoke (overload shed + reconcile + clean drain)"
load_log=$(mktemp)
if ! make loadtest-smoke > "$load_log" 2>&1; then
	cat "$load_log" >&2
	rm -f "$load_log"
	exit 1
fi
grep -E 'server shed|reconciliation|LOADTEST-SMOKE' "$load_log" || true
rm -f "$load_log"

echo "ALL CHECKS PASSED"
