#!/bin/sh
# check.sh — the repo's tier-1 gate, runnable locally and in CI.
#
#   ./scripts/check.sh         # format, vet, build, full tests, race tests,
#                              # one-shot benchmark smoke
#
# The race pass covers the packages with real concurrency: the partitioned
# executor (internal/exec) and the engine API that drives it with
# contexts and timeouts (internal/core).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (exec, core)"
go test -race ./internal/exec/ ./internal/core/

echo "== bench smoke (every benchmark once)"
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "ALL CHECKS PASSED"
