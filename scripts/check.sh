#!/bin/sh
# check.sh — the repo's tier-1 gate, runnable locally and in CI.
#
#   ./scripts/check.sh         # format, vet, build, full tests, race tests,
#                              # one-shot benchmark smoke
#
# The race pass covers the packages with real concurrency: the partitioned
# executor (internal/exec) and the engine API that drives it with
# contexts and timeouts (internal/core).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (exec, core)"
go test -race ./internal/exec/ ./internal/core/

echo "== chaos sweep (seeded fault injection under -race)"
CHAOS_SEEDS="${CHAOS_SEEDS:-24}" go test -race -run Chaos -count=1 ./internal/exec/ ./internal/core/

echo "== bench smoke (every benchmark once)"
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "ALL CHECKS PASSED"
