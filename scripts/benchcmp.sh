#!/bin/sh
# benchcmp.sh — diff two benchrepro -json artifact files counter by counter.
#
#   go run ./cmd/benchrepro -json before.jsonl
#   ... change something ...
#   go run ./cmd/benchrepro -json after.jsonl
#   ./scripts/benchcmp.sh before.jsonl after.jsonl
#
# Rows are matched by table header + label. For every shared row the script
# prints old -> new for each deterministic counter that changed, with the
# ratio; rows present on only one side are listed separately. By default it
# exits 0 always (it reports, it does not judge). With -gate PCT it becomes
# a regression gate: exit 1 if any counter grew by more than PCT percent
# over the old file, or if a row of the old file disappeared (improvements
# and brand-new rows pass). `make bench-smoke` runs it with -gate 10
# against the committed bench/baseline.jsonl.
#
# POSIX sh + awk only; the JSON lines are flat objects written by benchrepro
# itself, so a field extractor over "key":value pairs is sufficient.
set -eu

gate=""
if [ "${1:-}" = "-gate" ]; then
	gate=${2:?"-gate needs a percentage"}
	case $gate in
	''|*[!0-9.]*) echo "benchcmp: -gate wants a number, got $gate" >&2; exit 2 ;;
	esac
	shift 2
fi

if [ $# -ne 2 ]; then
	echo "usage: $0 [-gate PCT] OLD.jsonl NEW.jsonl" >&2
	exit 2
fi
old=$1
new=$2
[ -r "$old" ] || { echo "benchcmp: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "benchcmp: cannot read $new" >&2; exit 2; }

awk -v oldfile="$old" -v newfile="$new" -v gate="$gate" '
function strfield(line, key,    re, s) {
	re = "\"" key "\":\"";
	s = line;
	if (!match(s, re)) return "";
	s = substr(s, RSTART + RLENGTH);
	sub(/".*/, "", s);
	return s;
}
function numfield(line, key,    re, s) {
	re = "\"" key "\":";
	s = line;
	if (!match(s, re)) return "";
	s = substr(s, RSTART + RLENGTH);
	sub(/[,}].*/, "", s);
	return s + 0;
}
function rowkey(line) {
	return strfield(line, "table") " / " strfield(line, "label");
}
BEGIN {
	ncounters = split("base_tuples_read comparisons intermediate_tuples materializations " \
	                  "cache_hits cache_misses cache_tuples_replayed cache_tuples_spooled " \
	                  "cache_duplicates_avoided cache_spools_abandoned batches_emitted " \
	                  "sheds rate_limited breaker_opened breaker_half_opened breaker_closed breaker_rejected",
	                  counters, " ");
	while ((getline line < oldfile) > 0) {
		if (line ~ /^[ \t]*$/) continue;
		k = rowkey(line);
		inold[k] = 1;
		for (i = 1; i <= ncounters; i++)
			oldv[k, counters[i]] = numfield(line, counters[i]);
		oldres[k] = strfield(line, "result");
	}
	close(oldfile);
	changed = 0; same = 0;
	while ((getline line < newfile) > 0) {
		if (line ~ /^[ \t]*$/) continue;
		k = rowkey(line);
		innew[k] = 1;
		if (!(k in inold)) { onlynew[k] = 1; continue; }
		header = 0;
		newres = strfield(line, "result");
		if (newres != oldres[k]) {
			printf "%s\n  result: %s -> %s\n", k, oldres[k], newres;
			header = 1;
		}
		for (i = 1; i <= ncounters; i++) {
			c = counters[i];
			o = oldv[k, c];
			n = numfield(line, c);
			if (o == n) continue;
			if (!header) { printf "%s\n", k; header = 1; }
			worse = (gate != "") && (n > o) && (o == 0 || n > o * (1 + gate / 100));
			if (worse) regress++;
			if (o > 0)
				printf "  %s: %d -> %d (%.2fx)%s\n", c, o, n, n / o, worse ? "  REGRESSION" : "";
			else
				printf "  %s: %d -> %d%s\n", c, o, n, worse ? "  REGRESSION" : "";
		}
		if (header) changed++; else same++;
	}
	close(newfile);
	for (k in inold) if (!(k in innew)) {
		printf "only in %s: %s\n", oldfile, k;
		if (gate != "") regress++;
	}
	for (k in onlynew) printf "only in %s: %s\n", newfile, k;
	printf "%d rows compared: %d changed, %d identical\n", changed + same, changed, same;
	if (gate != "" && regress > 0) {
		printf "GATE FAILED: %d counter(s) regressed more than %s%%\n", regress, gate;
		exit 1;
	}
}' </dev/null
