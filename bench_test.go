// Package repro's root benchmarks regenerate every figure of the paper and
// measure every efficiency claim (experiments F1-F4 and E1-E12 of
// DESIGN.md). Each benchmark reports, besides ns/op, the executor's cost
// counters as custom metrics:
//
//	cmp/op      atomic comparisons (incl. hash probes)
//	reads/op    tuples fetched from base relations
//	interm/op   tuples buffered by blocking operators
//	mat/op      materialized temporaries
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/planopt"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/translate"
)

// reportStats attaches the executor counters to the benchmark.
func reportStats(b *testing.B, st exec.Stats) {
	b.ReportMetric(float64(st.Comparisons)/float64(b.N), "cmp/op")
	b.ReportMetric(float64(st.BaseTuplesRead)/float64(b.N), "reads/op")
	b.ReportMetric(float64(st.IntermediateTuples)/float64(b.N), "interm/op")
	b.ReportMetric(float64(st.Materializations)/float64(b.N), "mat/op")
}

// runOpen executes a prepared open plan b.N times, accumulating stats.
func runOpen(b *testing.B, cat *storage.Catalog, plan algebra.Plan) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(cat)
		if _, err := exec.Run(ctx, plan); err != nil {
			b.Fatal(err)
		}
		total.Add(*ctx.Stats)
	}
	b.StopTimer()
	reportStats(b, total)
}

// runClosed evaluates a boolean plan b.N times.
func runClosed(b *testing.B, cat *storage.Catalog, bp algebra.BoolPlan) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(cat)
		if _, err := exec.EvalBool(ctx, bp); err != nil {
			b.Fatal(err)
		}
		total.Add(*ctx.Stats)
	}
	b.StopTimer()
	reportStats(b, total)
}

// prepare normalizes and translates one query for a strategy.
func prepare(b *testing.B, cat *storage.Catalog, strat core.Strategy, opt translate.Options, input string) (algebra.Plan, algebra.BoolPlan) {
	b.Helper()
	q, err := rewrite.Normalize(parser.MustParse(input))
	if err != nil {
		b.Fatalf("normalize %q: %v", input, err)
	}
	switch strat {
	case core.StrategyBry:
		p, bp, err := translate.NewBryWithOptions(cat, opt).Translate(q)
		if err != nil {
			b.Fatalf("bry %q: %v", input, err)
		}
		return p, bp
	case core.StrategyCodd:
		p, bp, err := translate.NewCodd(cat).Translate(q)
		if err != nil {
			b.Fatalf("codd %q: %v", input, err)
		}
		return p, bp
	case core.StrategyCoddImproved:
		p, bp, err := translate.NewCoddImproved(cat).Translate(q)
		if err != nil {
			b.Fatalf("codd-improved %q: %v", input, err)
		}
		return p, bp
	default:
		b.Fatalf("prepare: unsupported strategy %v", strat)
		return nil, nil
	}
}

// --- F1: Fig. 1 loop algorithms vs the algebraic method ---------------------

// BenchmarkFigure1LoopVsAlgebra compares the Fig. 1 nested-loop interpreter
// with the Bry algebraic pipeline on the three query shapes of the figure:
// closed existential (1a), closed universal (1b), open quantified (1c).
func BenchmarkFigure1LoopVsAlgebra(b *testing.B) {
	cat := dataset.University(dataset.DefaultUniversity(400))
	queries := map[string]string{
		"1a-closed-exists": `exists x: student(x) and exists y: cs_lecture(y) and attends(x, y)`,
		"1b-closed-forall": `forall x: student(x) => exists y: attends(x, y)`,
		"1c-open":          `{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`,
	}
	for name, input := range queries {
		nq, err := rewrite.Normalize(parser.MustParse(input))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/loop", func(b *testing.B) {
			var total exec.Stats
			for i := 0; i < b.N; i++ {
				ev := loopeval.New(cat)
				if nq.IsOpen() {
					if _, err := ev.EvalOpen(nq); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := ev.EvalClosed(nq.Body, loopeval.Env{}); err != nil {
						b.Fatal(err)
					}
				}
				total.Add(*ev.Stats)
			}
			reportStats(b, total)
		})
		b.Run(name+"/bry", func(b *testing.B) {
			plan, bp := prepare(b, cat, core.StrategyBry, translate.Options{}, input)
			if plan != nil {
				runOpen(b, cat, plan)
			} else {
				runClosed(b, cat, bp)
			}
		})
	}
}

// --- F2-F4: the outer-join figures at scale ---------------------------------

// BenchmarkFigures234OuterJoinChain evaluates the Fig. 2-4 query shapes
// (P ∧ (T ∨ U) and P ∧ (¬T ∨ U)) on scaled P/T/U data, comparing the three
// §3.3 strategies.
func BenchmarkFigures234OuterJoinChain(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		cat := dataset.PTU(dataset.PTUParams{N: n, TProb: 0.5, UProb: 0.3, ExtraShare: 0.3, Branches: 2, Seed: 5})
		for qname, input := range map[string]string{
			"fig3-positive": `{ x | P(x) and (T(x) or U(x)) }`,
			"fig4-negated":  `{ x | P(x) and (not T(x) or U(x)) }`,
		} {
			for sname, strat := range map[string]translate.DisjFilterStrategy{
				"constrained": translate.StrategyConstrainedOuterJoin,
				"outerjoin":   translate.StrategyOuterJoin,
				"union":       translate.StrategyUnion,
			} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", qname, n, sname), func(b *testing.B) {
					plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{DisjunctiveFilters: strat}, input)
					runOpen(b, cat, plan)
				})
			}
		}
	}
}

// --- E1: complement-join vs difference-plus-join (§3.1) ---------------------

// BenchmarkE1ComplementJoin compares the paper's translation of
// Q₂: member(x,z) ∧ ¬skill(x,db) — a single complement-join — against the
// conventional member ⋈ (π₁(member) − π₁(σ₂₌db(skill))).
func BenchmarkE1ComplementJoin(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		p := dataset.DefaultUniversity(n)
		p.Lectures = 20 // E1 touches only member and skill; keep attendance small
		p.AttendProb = 0.05
		cat := dataset.University(p)
		member, _ := cat.Relation("member")
		skill, _ := cat.Relation("skill")

		b.Run(fmt.Sprintf("n=%d/complement-join", n), func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{}, `{ x, z | member(x, z) and not skill(x, "db") }`)
			runOpen(b, cat, plan)
		})
		b.Run(fmt.Sprintf("n=%d/diff-join", n), func(b *testing.B) {
			// member ⋈₁₌₁ (π₁(member) − π₁(σ₂₌db(skill))), projected back.
			mScan := algebra.NewScan("member", member.Schema())
			sScan := algebra.NewScan("skill", skill.Schema())
			diff := &algebra.Diff{
				Left:  &algebra.Project{Input: mScan, Cols: []int{0}},
				Right: &algebra.Project{Input: &algebra.Select{Input: sScan, Pred: algebra.CmpConst{Col: 1, Op: algebra.OpEq, Const: relation.Str("db")}}, Cols: []int{0}},
			}
			plan := &algebra.Project{
				Input: &algebra.Join{Left: mScan, Right: diff, On: []algebra.ColPair{{Left: 0, Right: 0}}},
				Cols:  []int{0, 1},
			}
			runOpen(b, cat, plan)
		})
	}
}

// --- E2: Proposition 4 — quantifier nesting without products/divisions ------

// BenchmarkE2Prop4 runs the five syntactic cases of Proposition 4 under the
// Bry translation and the Codd reduction. The Codd baseline's initial
// cartesian product of domain ranges dominates its cost; sizes are kept
// small enough for it to terminate.
func BenchmarkE2Prop4(b *testing.B) {
	cases := map[string]string{
		"case1":  `{ x | exists y: R(x, y) and exists z: S(x, y, z) and G(x, y, z) }`,
		"case2a": `{ x | exists y: R(x, y) and exists z: S(x, y, z) and not G(x, y, z) }`,
		"case2b": `{ x | exists y: R(x, y) and exists z: T(y, z) and not G(x, y, z) }`,
		"case3":  `{ x | exists y: R(x, y) and not exists z: S(x, y, z) and G(x, y, z) }`,
		"case4":  `{ x | exists y: R(x, y) and not exists z: S(x, y, z) and not G(x, y, z) }`,
		"case5":  `{ x | exists y: R(x, y) and not exists z: T(y, z) and not G(x, y, z) }`,
	}
	cat := dataset.RSTG(dataset.DefaultRSTG(24))
	for name, input := range cases {
		b.Run(name+"/bry", func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{}, input)
			runOpen(b, cat, plan)
		})
		b.Run(name+"/codd", func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyCodd, translate.Options{}, input)
			runOpen(b, cat, plan)
		})
	}
}

// --- E3: disjunctive filters, n-way sweep (§3.3, Proposition 5) -------------

// BenchmarkE3DisjunctiveFilterWidth sweeps the number of disjuncts; the
// constrained chain's advantage grows with the width because matched
// tuples skip every remaining branch.
func BenchmarkE3DisjunctiveFilterWidth(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		cat := dataset.PTU(dataset.PTUParams{N: 5000, TProb: 0.6, UProb: 0.25, ExtraShare: 0.2, Branches: k, Seed: 9})
		input := `{ x | P(x) and (T(x) or U(x)`
		for i := 2; i < k; i++ {
			input += fmt.Sprintf(" or T%d(x)", i)
		}
		input += `) }`
		for sname, strat := range map[string]translate.DisjFilterStrategy{
			"constrained": translate.StrategyConstrainedOuterJoin,
			"outerjoin":   translate.StrategyOuterJoin,
			"union":       translate.StrategyUnion,
		} {
			b.Run(fmt.Sprintf("k=%d/%s", k, sname), func(b *testing.B) {
				plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{DisjunctiveFilters: strat}, input)
				runOpen(b, cat, plan)
			})
		}
	}
}

// --- E4: miniscope vs redundant evaluation (§2.2) ---------------------------

// BenchmarkE4Miniscope reproduces the §2.2 claim: in the raw Q₁ the
// subquery ¬enrolled(x,cs) is evaluated once per cs-lecture, while in the
// paper's miniscope form Q₂ it is evaluated once per student. The Fig. 1
// interpreter runs both forms; the Bry pipeline runs the canonical form
// (which adds the empty-range disjunct the paper's Q₂ glosses over).
func BenchmarkE4Miniscope(b *testing.B) {
	p := dataset.DefaultUniversity(200)
	p.Lectures = 120
	p.AttendProb = 0.85 // dense attendance: the ¬enrolled redundancy shows
	cat := dataset.University(p)
	// Enroll every student outside cs so the ¬enrolled(x,cs) filter is
	// true and, in the raw form, re-evaluated for every attended lecture.
	students, _ := cat.Relation("student")
	enr := relation.New("enrolled", relation.NewSchema("name", "dept"))
	for _, t := range students.Tuples() {
		enr.InsertValues(t[0], relation.Str("math"))
	}
	cat.Add(enr)
	raw := parser.MustParse(`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`)
	paperQ2 := parser.MustParse(`exists x: student(x) and (forall y: cs_lecture(y) => attends(x, y)) and not enrolled(x, "cs")`)
	canonical, err := rewrite.Normalize(raw)
	if err != nil {
		b.Fatal(err)
	}
	loopOn := func(q parser.Query) func(b *testing.B) {
		return func(b *testing.B) {
			var total exec.Stats
			for i := 0; i < b.N; i++ {
				ev := loopeval.New(cat)
				if _, err := ev.EvalClosed(q.Body, loopeval.Env{}); err != nil {
					b.Fatal(err)
				}
				total.Add(*ev.Stats)
			}
			reportStats(b, total)
		}
	}
	b.Run("loop-raw-q1", loopOn(raw))
	b.Run("loop-miniscope-q2", loopOn(paperQ2))
	b.Run("loop-canonical", loopOn(canonical))
	b.Run("bry-canonical", func(b *testing.B) {
		bry := translate.NewBry(cat)
		bp, err := bry.TranslateClosed(canonical.Body)
		if err != nil {
			b.Fatal(err)
		}
		runClosed(b, cat, bp)
	})
}

// --- E5: producer/filter choices (§2.3) --------------------------------------

// BenchmarkE5ProducerFilter compares keeping the filter disjunction inside
// the range (the paper's Q₄) against the hand-distributed Q₅, which scans
// the professor relation once per branch.
func BenchmarkE5ProducerFilter(b *testing.B) {
	p := dataset.DefaultUniversity(5000)
	p.Lectures = 20 // E5 touches only prof, member, skill, speaks
	p.AttendProb = 0.05
	cat := dataset.University(p)
	q4 := `{ x | prof(x) and (member(x, "cs") or skill(x, "math")) and speaks(x, "french") }`
	q5 := `{ x | (prof(x) and member(x, "cs") and speaks(x, "french")) or (prof(x) and skill(x, "math") and speaks(x, "french")) }`
	b.Run("q4-kept-filter", func(b *testing.B) {
		plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{}, q4)
		runOpen(b, cat, plan)
	})
	b.Run("q5-distributed", func(b *testing.B) {
		plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{}, q5)
		runOpen(b, cat, plan)
	})
}

// --- E6: the full pipeline against the Codd reduction -----------------------

// BenchmarkE6BryVsCodd sweeps the database size on two nested quantified
// queries; the Codd reduction's domain products make it collapse quickly.
func BenchmarkE6BryVsCodd(b *testing.B) {
	queries := map[string]string{
		"attends-all": `{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`,
		"phd-outside": `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`,
	}
	for _, n := range []int{20, 60} {
		p := dataset.DefaultUniversity(n)
		cat := dataset.University(p)
		for qname, input := range queries {
			b.Run(fmt.Sprintf("%s/n=%d/bry", qname, n), func(b *testing.B) {
				plan, bp := prepare(b, cat, core.StrategyBry, translate.Options{}, input)
				if plan != nil {
					runOpen(b, cat, plan)
				} else {
					runClosed(b, cat, bp)
				}
			})
			b.Run(fmt.Sprintf("%s/n=%d/codd", qname, n), func(b *testing.B) {
				plan, bp := prepare(b, cat, core.StrategyCodd, translate.Options{}, input)
				if plan != nil {
					runOpen(b, cat, plan)
				} else {
					runClosed(b, cat, bp)
				}
			})
			b.Run(fmt.Sprintf("%s/n=%d/codd-improved", qname, n), func(b *testing.B) {
				plan, bp := prepare(b, cat, core.StrategyCoddImproved, translate.Options{}, input)
				if plan != nil {
					runOpen(b, cat, plan)
				} else {
					runClosed(b, cat, bp)
				}
			})
		}
	}
}

// --- E7: normalization cost ---------------------------------------------------

// BenchmarkE7Normalization measures Phase 1 itself: parsing plus the
// rewriting fixpoint on the paper's example queries.
func BenchmarkE7Normalization(b *testing.B) {
	inputs := map[string]string{
		"miniscope-q1": `exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`,
		"producers-q1": `exists x: ((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`,
		"nested-q":     `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`,
	}
	for name, input := range inputs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Normalize(parser.MustParse(input)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9 (ablation): indexed vs hash-building executor ------------------------

// BenchmarkE9IndexedExecutor is an ablation beyond the paper: the same Bry
// plans run with per-query hash builds (the default) and with persistent
// catalog indexes. Indexes do not change any result (property-tested) but
// turn the §3.2 emptiness tests into near-constant work.
func BenchmarkE9IndexedExecutor(b *testing.B) {
	p := dataset.DefaultUniversity(2000)
	p.Lectures = 200
	cat := dataset.University(p)
	queries := map[string]string{
		"closed-exists": `exists x: student(x) and exists y: cs_lecture(y) and attends(x, y)`,
		"open-negation": `{ x, z | member(x, z) and not skill(x, "db") }`,
		"open-forall":   `{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`,
	}
	for name, input := range queries {
		for _, indexed := range []bool{false, true} {
			label := "/hash"
			if indexed {
				label = "/indexed"
			}
			b.Run(name+label, func(b *testing.B) {
				plan, bp := prepare(b, cat, core.StrategyBry, translate.Options{}, input)
				var total exec.Stats
				// Warm the indexes outside the timed loop, as a real
				// system would maintain them alongside the data.
				if indexed {
					warm := exec.NewIndexedContext(cat)
					if plan != nil {
						if _, err := exec.Run(warm, plan); err != nil {
							b.Fatal(err)
						}
					} else if _, err := exec.EvalBool(warm, bp); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := exec.NewContext(cat)
					ctx.UseIndexes = indexed
					if plan != nil {
						if _, err := exec.Run(ctx, plan); err != nil {
							b.Fatal(err)
						}
					} else if _, err := exec.EvalBool(ctx, bp); err != nil {
						b.Fatal(err)
					}
					total.Add(*ctx.Stats)
				}
				b.StopTimer()
				reportStats(b, total)
			})
		}
	}
}

// --- E10: Quel-style counting vs complement-join (§1) ------------------------

// quelAttendsAllPlan expresses "students attending all cs lectures" the way
// the paper's introduction says Quel must: compare the per-student count of
// attended cs lectures with the total count of cs lectures.
func quelAttendsAllPlan(cat *storage.Catalog) algebra.Plan {
	att, _ := cat.Relation("attends")
	lec, _ := cat.Relation("cs_lecture")
	st, _ := cat.Relation("student")
	perStudent := &algebra.GroupCount{
		Input: &algebra.SemiJoin{
			Left:  algebra.NewScan("attends", att.Schema()),
			Right: algebra.NewScan("cs_lecture", lec.Schema()),
			On:    []algebra.ColPair{{Left: 1, Right: 0}},
		},
		GroupCols: []int{0},
	}
	total := &algebra.GroupCount{Input: algebra.NewScan("cs_lecture", lec.Schema())}
	matching := &algebra.Project{
		Input: &algebra.Join{Left: perStudent, Right: total, On: []algebra.ColPair{{Left: 1, Right: 0}}},
		Cols:  []int{0},
	}
	return &algebra.SemiJoin{Left: algebra.NewScan("student", st.Schema()), Right: matching, On: []algebra.ColPair{{Left: 0, Right: 0}}}
}

// divisionAttendsAllPlan is the paper's case-5 division translation:
// student ⋉ ((attends ⋉ cs_lecture) ÷ cs_lecture). Safe here because the
// divisor is a base relation checked nonempty by construction.
func divisionAttendsAllPlan(cat *storage.Catalog) algebra.Plan {
	att, _ := cat.Relation("attends")
	lec, _ := cat.Relation("cs_lecture")
	st, _ := cat.Relation("student")
	dividend := &algebra.SemiJoin{
		Left:  algebra.NewScan("attends", att.Schema()),
		Right: algebra.NewScan("cs_lecture", lec.Schema()),
		On:    []algebra.ColPair{{Left: 1, Right: 0}},
	}
	div := &algebra.Division{
		Dividend: dividend,
		Divisor:  algebra.NewScan("cs_lecture", lec.Schema()),
		KeyCols:  []int{0},
		DivCols:  []int{1},
	}
	return &algebra.SemiJoin{Left: algebra.NewScan("student", st.Schema()), Right: div, On: []algebra.ColPair{{Left: 0, Right: 0}}}
}

// BenchmarkE10UniversalStrategies measures four ways to evaluate the same
// universal query "students attending all cs lectures": the Quel counting
// approach the paper's §1 criticizes, the paper's case-5 division, and the
// context-seeded complement-join with and without persistent indexes. The
// complement-join's candidate space is student × cs_lecture, so its cost
// crosses over with the attends-driven strategies as attendance densifies.
func BenchmarkE10UniversalStrategies(b *testing.B) {
	for _, n := range []int{500, 5000} {
		cat := dataset.University(dataset.DefaultUniversity(n))
		b.Run(fmt.Sprintf("n=%d/quel-counting", n), func(b *testing.B) {
			runOpen(b, cat, quelAttendsAllPlan(cat))
		})
		b.Run(fmt.Sprintf("n=%d/division", n), func(b *testing.B) {
			runOpen(b, cat, divisionAttendsAllPlan(cat))
		})
		b.Run(fmt.Sprintf("n=%d/division-translated", n), func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{},
				`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`)
			runOpen(b, cat, plan)
		})
		b.Run(fmt.Sprintf("n=%d/complement-join", n), func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{Universal: translate.UniversalComplementJoin},
				`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`)
			runOpen(b, cat, plan)
		})
		b.Run(fmt.Sprintf("n=%d/complement-join-indexed", n), func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{Universal: translate.UniversalComplementJoin},
				`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`)
			var total exec.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := exec.NewIndexedContext(cat)
				if _, err := exec.Run(ctx, plan); err != nil {
					b.Fatal(err)
				}
				total.Add(*ctx.Stats)
			}
			b.StopTimer()
			reportStats(b, total)
		})
	}
}

// --- E12: partitioned parallel executor vs serial (DESIGN.md) ----------------

// drainPlan builds and exhausts the plan's iterator directly — without
// exec.Run's result materialization and dedup — so the pair isolates the
// executor's join work, which is what partitioning changes.
func drainPlan(b *testing.B, cat *storage.Catalog, plan algebra.Plan, parallelism int) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(cat)
		ctx.Parallelism = parallelism
		it, err := exec.Build(ctx, plan)
		if err != nil {
			b.Fatal(err)
		}
		it.Open()
		rows := 0
		for _, ok := it.Next(); ok; _, ok = it.Next() {
			rows++
		}
		it.Close()
		if rows == 0 {
			b.Fatal("benchmark plan produced no rows")
		}
		total.Add(*ctx.Stats)
	}
	b.StopTimer()
	reportStats(b, total)
	b.ReportMetric(float64(total.PartitionsExecuted)/float64(b.N), "part/op")
}

// BenchmarkE12ParallelPartitionedJoin pairs each join-heavy plan at
// Parallelism 1 (the classic serial hash join) and 4 (hash-partitioned
// workers). The pair is the acceptance gate for the partitioned executor:
// parallel must be ≥1.8× faster on at least one workload.
func BenchmarkE12ParallelPartitionedJoin(b *testing.B) {
	p := dataset.DefaultUniversity(50000)
	p.Lectures = 40
	p.AttendProb = 0.03
	cat := dataset.University(p)

	plans := []struct {
		name string
		plan algebra.Plan
	}{
		{"join/member-skill", func() algebra.Plan {
			member, _ := cat.Relation("member")
			skill, _ := cat.Relation("skill")
			return &algebra.Join{
				Left:  algebra.NewScan("member", member.Schema()),
				Right: algebra.NewScan("skill", skill.Schema()),
				On:    []algebra.ColPair{{Left: 0, Right: 0}},
			}
		}()},
		{"complement-join/member-not-skill-db", func() algebra.Plan {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{},
				`{ x, z | member(x, z) and not skill(x, "db") }`)
			return plan
		}()},
		{"semijoin/attends-cs", func() algebra.Plan {
			att, _ := cat.Relation("attends")
			lec, _ := cat.Relation("cs_lecture")
			return &algebra.SemiJoin{
				Left:  algebra.NewScan("attends", att.Schema()),
				Right: algebra.NewScan("cs_lecture", lec.Schema()),
				On:    []algebra.ColPair{{Left: 1, Right: 0}},
			}
		}()},
	}
	for _, pl := range plans {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/parallel=%d", pl.name, par), func(b *testing.B) {
				drainPlan(b, cat, pl.plan, par)
			})
		}
	}
}

// --- E13: memoizing subplan cache on wide disjunctions (DESIGN.md) ------------

// e13Query builds the width-w disjunctive query and its PTU catalog: under
// the union strategy each of the w disjuncts re-derives the same P ⋈ T
// producer, which is exactly the repeated subtree the Shared pass spools
// once and replays w−1 times.
func e13Query(w int) (*storage.Catalog, string) {
	cat := dataset.PTU(dataset.PTUParams{N: 4000, TProb: 0.5, UProb: 0.1, ExtraShare: 0.05, Branches: w + 1, Seed: 13})
	input := `{ x | P(x) and T(x) and (U(x)`
	for i := 2; i <= w; i++ {
		input += fmt.Sprintf(" or T%d(x)", i)
	}
	input += `) }`
	return cat, input
}

// runMemo exhausts the plan b.N times against the given memo (nil = cache
// off). A fresh memo per iteration measures the cold path; a pre-warmed
// persistent memo measures pure replay.
func runMemo(b *testing.B, cat *storage.Catalog, plan algebra.Plan, memo func() *exec.Memo) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(cat)
		if memo != nil {
			ctx.Memo = memo()
		}
		if _, err := exec.Run(ctx, plan); err != nil {
			b.Fatal(err)
		}
		total.Add(*ctx.Stats)
	}
	b.StopTimer()
	reportStats(b, total)
	b.ReportMetric(float64(total.CacheHits)/float64(b.N), "chit/op")
	b.ReportMetric(float64(total.CacheTuplesReplayed)/float64(b.N), "creplay/op")
}

// BenchmarkE13SharedSubplans sweeps the disjunct width w under the union
// strategy, comparing cache off, cold (fresh memo per run: intra-plan
// sharing only) and warm (persistent memo: whole-plan replay). This is the
// acceptance gate for the subplan cache: at w=4 the cold run must read
// ≤ half the base tuples of the uncached run (asserted by
// TestE13SharedSubplanReduction).
func BenchmarkE13SharedSubplans(b *testing.B) {
	for _, w := range []int{2, 4, 6} {
		cat, input := e13Query(w)
		raw, _ := prepare(b, cat, core.StrategyBry, translate.Options{DisjunctiveFilters: translate.StrategyUnion}, input)
		shared := planopt.Share(raw)
		b.Run(fmt.Sprintf("w=%d/cache=off", w), func(b *testing.B) {
			runMemo(b, cat, raw, nil)
		})
		b.Run(fmt.Sprintf("w=%d/cache=cold", w), func(b *testing.B) {
			runMemo(b, cat, shared, func() *exec.Memo { return exec.NewMemo(0) })
		})
		b.Run(fmt.Sprintf("w=%d/cache=warm", w), func(b *testing.B) {
			memo := exec.NewMemo(0)
			warm := exec.NewContext(cat)
			warm.Memo = memo
			if _, err := exec.Run(warm, shared); err != nil {
				b.Fatal(err)
			}
			runMemo(b, cat, shared, func() *exec.Memo { return memo })
		})
	}
}

// TestE13SharedSubplanReduction pins the E13 acceptance bar outside the
// benchmark harness: on the width-4 query the cold cached run reads at most
// half the base tuples of the uncached run and produces the same relation.
func TestE13SharedSubplanReduction(t *testing.T) {
	cat, input := e13Query(4)
	q, err := rewrite.Normalize(parser.MustParse(input))
	if err != nil {
		t.Fatal(err)
	}
	raw, _, err := translate.NewBryWithOptions(cat, translate.Options{DisjunctiveFilters: translate.StrategyUnion}).Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	off := exec.NewContext(cat)
	want, err := exec.Run(off, raw)
	if err != nil {
		t.Fatal(err)
	}
	on := exec.NewContext(cat)
	on.Memo = exec.NewMemo(0)
	got, err := exec.Run(on, planopt.Share(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("cached plan changed the answer:\n%s\nvs\n%s", got, want)
	}
	if 2*on.Stats.BaseTuplesRead > off.Stats.BaseTuplesRead {
		t.Fatalf("cold cache must at least halve base reads: %d vs %d",
			on.Stats.BaseTuplesRead, off.Stats.BaseTuplesRead)
	}
}

// --- E15: single-flight shared-spool evaluation (DESIGN.md) -------------------

// runConcurrentMemo exhausts the plan from c concurrent goroutines per
// iteration, all cold. sharedMemo=true gives every goroutine the same fresh
// memo (single-flight: one elected producer, c−1 streaming consumers);
// false gives each its own (the serialized-first-drain baseline, which
// reproduces the pre-single-flight behaviour where every concurrent cold
// query evaluated the producer subtree itself).
func runConcurrentMemo(b *testing.B, cat *storage.Catalog, plan algebra.Plan, c int, sharedMemo bool) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var memo *exec.Memo
		if sharedMemo {
			memo = exec.NewMemo(0)
		}
		ctxs := make([]*exec.Context, c)
		var wg sync.WaitGroup
		errs := make([]error, c)
		for g := 0; g < c; g++ {
			g := g
			ctxs[g] = exec.NewContext(cat)
			if sharedMemo {
				ctxs[g].Memo = memo
			} else {
				ctxs[g].Memo = exec.NewMemo(0)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[g] = exec.Run(ctxs[g], plan)
			}()
		}
		wg.Wait()
		for g := 0; g < c; g++ {
			if errs[g] != nil {
				b.Fatal(errs[g])
			}
			total.Add(*ctxs[g].Stats)
		}
	}
	b.StopTimer()
	reportStats(b, total)
	b.ReportMetric(float64(total.CacheDuplicatesAvoided)/float64(b.N), "cdup/op")
	b.ReportMetric(float64(total.CacheTuplesReplayed)/float64(b.N), "creplay/op")
}

// BenchmarkE15SingleFlight is the acceptance pair for single-flight
// spooling: c concurrent cold evaluations of the E13 width-4 shared plan,
// with per-goroutine memos (every query pays the producer) against one
// shared memo (one producer, everyone else streams). The gate: at c=4 the
// single-flight side must be ≥1.5× faster in wall clock.
func BenchmarkE15SingleFlight(b *testing.B) {
	cat, input := e13Query(4)
	raw, _ := prepare(b, cat, core.StrategyBry, translate.Options{DisjunctiveFilters: translate.StrategyUnion}, input)
	shared := planopt.Share(raw)
	for _, c := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("c=%d/serialized-baseline", c), func(b *testing.B) {
			runConcurrentMemo(b, cat, shared, c, false)
		})
		b.Run(fmt.Sprintf("c=%d/single-flight", c), func(b *testing.B) {
			runConcurrentMemo(b, cat, shared, c, true)
		})
	}
}

// TestE15SingleFlightSharing pins the deterministic half of the E15
// acceptance bar: with 8 concurrent cold queries (parallelism 8) sharing
// one fingerprint, exactly one run evaluates the plan; the other seven
// stream or replay, touching no base relation.
func TestE15SingleFlightSharing(t *testing.T) {
	cat, input := e13Query(4)
	q, err := rewrite.Normalize(parser.MustParse(input))
	if err != nil {
		t.Fatal(err)
	}
	raw, _, err := translate.NewBryWithOptions(cat, translate.Options{DisjunctiveFilters: translate.StrategyUnion}).Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	shared := planopt.Share(raw)

	ref := exec.NewContext(cat)
	ref.Memo = exec.NewMemo(0)
	want, err := exec.Run(ref, shared)
	if err != nil {
		t.Fatal(err)
	}

	const c = 8
	memo := exec.NewMemo(0)
	ctxs := make([]*exec.Context, c)
	outs := make([]*relation.Relation, c)
	errs := make([]error, c)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < c; g++ {
		g := g
		ctxs[g] = exec.NewContext(cat)
		ctxs[g].Memo = memo
		ctxs[g].Parallelism = 8
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			outs[g], errs[g] = exec.Run(ctxs[g], shared)
		}()
	}
	close(start)
	wg.Wait()

	var producers int
	var totalReads, dups, hits exec.Stats
	for g := 0; g < c; g++ {
		if errs[g] != nil {
			t.Fatalf("run %d: %v", g, errs[g])
		}
		if !outs[g].Equal(want) {
			t.Fatalf("run %d result differs", g)
		}
		st := ctxs[g].Stats
		totalReads.BaseTuplesRead += st.BaseTuplesRead
		dups.CacheDuplicatesAvoided += st.CacheDuplicatesAvoided
		hits.CacheHits += st.CacheHits
		if st.BaseTuplesRead > 0 {
			producers++
		} else if st.CacheHits+st.CacheDuplicatesAvoided == 0 {
			t.Fatalf("run %d read nothing yet neither hit nor streamed: %s", g, st)
		}
	}
	if producers != 1 {
		t.Fatalf("%d runs evaluated base relations, want exactly 1", producers)
	}
	if totalReads.BaseTuplesRead != ref.Stats.BaseTuplesRead {
		t.Fatalf("total reads %d, want one cold evaluation's %d", totalReads.BaseTuplesRead, ref.Stats.BaseTuplesRead)
	}
	if hits.CacheHits+dups.CacheDuplicatesAvoided < c-1 {
		t.Fatalf("hits(%d)+streamed(%d) < %d", hits.CacheHits, dups.CacheDuplicatesAvoided, c-1)
	}
}

// --- E14: resource governor overhead (DESIGN.md) ------------------------------

// BenchmarkE14GovernorOverhead pairs the E12 join workloads ungoverned and
// under generous budgets (every charge taken, no trip). The pair is the
// acceptance gate for the governor: the governed median must stay within 5%
// of the ungoverned one.
func BenchmarkE14GovernorOverhead(b *testing.B) {
	p := dataset.DefaultUniversity(50000)
	p.Lectures = 40
	p.AttendProb = 0.03
	cat := dataset.University(p)

	plans := []struct {
		name string
		plan algebra.Plan
	}{
		{"join/member-skill", func() algebra.Plan {
			member, _ := cat.Relation("member")
			skill, _ := cat.Relation("skill")
			return &algebra.Join{
				Left:  algebra.NewScan("member", member.Schema()),
				Right: algebra.NewScan("skill", skill.Schema()),
				On:    []algebra.ColPair{{Left: 0, Right: 0}},
			}
		}()},
		{"complement-join/member-not-skill-db", func() algebra.Plan {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{},
				`{ x, z | member(x, z) and not skill(x, "db") }`)
			return plan
		}()},
	}
	for _, pl := range plans {
		for _, governed := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/governed=%v", pl.name, governed), func(b *testing.B) {
				var total exec.Stats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := exec.NewContext(cat)
					if governed {
						ctx.Gov = exec.NewGovernor(1<<40, 1<<40)
						ctx.CheckInterval = exec.GovernedCheckInterval
					}
					out, err := exec.Run(ctx, pl.plan)
					if err != nil {
						b.Fatal(err)
					}
					if out.Len() == 0 {
						b.Fatal("benchmark plan produced no rows")
					}
					total.Add(*ctx.Stats)
				}
				b.StopTimer()
				reportStats(b, total)
			})
		}
	}
}

// --- E8: emptiness tests and early termination (§3.2) ------------------------

// BenchmarkE8EmptinessTest compares the boolean emptiness-test pipeline
// against full materialization of the same existential query, on a
// database where the witness exists (early exit pays off) and on one where
// it does not (costs converge).
func BenchmarkE8EmptinessTest(b *testing.B) {
	for _, witness := range []bool{true, false} {
		p := dataset.DefaultUniversity(1000)
		p.Lectures = 100
		if !witness {
			p.AttendProb = 0 // nobody attends anything
		}
		cat := dataset.University(p)
		input := `exists x: student(x) and exists y: cs_lecture(y) and attends(x, y)`
		open := `{ x | student(x) and exists y: cs_lecture(y) and attends(x, y) }`
		b.Run(fmt.Sprintf("witness=%v/emptiness-test", witness), func(b *testing.B) {
			_, bp := prepare(b, cat, core.StrategyBry, translate.Options{}, input)
			runClosed(b, cat, bp)
		})
		b.Run(fmt.Sprintf("witness=%v/materialize-all", witness), func(b *testing.B) {
			plan, _ := prepare(b, cat, core.StrategyBry, translate.Options{}, open)
			runOpen(b, cat, plan)
		})
	}
}

// --- E16: columnar batch execution (DESIGN.md §9) -----------------------------

// drainBatch builds and exhausts the plan's block iterator directly,
// mirroring drainPlan on the batch executor so the pair isolates the
// per-tuple iteration overhead the blocks amortize.
func drainBatch(b *testing.B, cat *storage.Catalog, plan algebra.Plan, parallelism, batch int) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := exec.NewContext(cat)
		ctx.Parallelism = parallelism
		ctx.BatchSize = batch
		it, err := exec.BuildBatch(ctx, plan)
		if err != nil {
			b.Fatal(err)
		}
		it.Open()
		rows := 0
		for bt, ok := it.NextBatch(); ok; bt, ok = it.NextBatch() {
			rows += len(bt.Tuples)
		}
		it.Close()
		if rows == 0 {
			b.Fatal("benchmark plan produced no rows")
		}
		total.Add(*ctx.Stats)
	}
	b.StopTimer()
	reportStats(b, total)
	b.ReportMetric(float64(total.BatchesEmitted)/float64(b.N), "batches/op")
}

// runConcurrentBatchMemo is runConcurrentMemo's single-flight half with a
// configurable partition fan-out, pairing a serial elected producer against
// one whose partition workers fill the shared spool in parallel.
func runConcurrentBatchMemo(b *testing.B, cat *storage.Catalog, plan algebra.Plan, c, parallelism int) {
	var total exec.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo := exec.NewMemo(0)
		ctxs := make([]*exec.Context, c)
		var wg sync.WaitGroup
		errs := make([]error, c)
		for g := 0; g < c; g++ {
			g := g
			ctxs[g] = exec.NewContext(cat)
			ctxs[g].Memo = memo
			ctxs[g].Parallelism = parallelism
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[g] = exec.Run(ctxs[g], plan)
			}()
		}
		wg.Wait()
		for g := 0; g < c; g++ {
			if errs[g] != nil {
				b.Fatal(errs[g])
			}
			total.Add(*ctxs[g].Stats)
		}
	}
	b.StopTimer()
	reportStats(b, total)
	b.ReportMetric(float64(total.BatchesEmitted)/float64(b.N), "batches/op")
}

// BenchmarkE16BatchExecution is the acceptance pair for the columnar batch
// executor. The E12 join workloads are drained tuple-at-a-time and in
// blocks of 64 and 1024, serial and partitioned: the gate is block 1024 at
// ≥2× over tuple-at-a-time on at least one serial workload, with the
// parallel pairs no worse. The single-flight pair compares a serial
// elected producer against parallel partitioned producers filling the
// shared spool under four concurrent cold consumers.
func BenchmarkE16BatchExecution(b *testing.B) {
	p := dataset.DefaultUniversity(50000)
	p.Lectures = 40
	p.AttendProb = 0.03
	cat := dataset.University(p)
	member, _ := cat.Relation("member")
	skill, _ := cat.Relation("skill")
	att, _ := cat.Relation("attends")
	lec, _ := cat.Relation("cs_lecture")
	plans := []struct {
		name string
		plan algebra.Plan
	}{
		{"join/member-skill", &algebra.Join{
			Left:  algebra.NewScan("member", member.Schema()),
			Right: algebra.NewScan("skill", skill.Schema()),
			On:    []algebra.ColPair{{Left: 0, Right: 0}},
		}},
		{"semijoin/attends-cs", &algebra.SemiJoin{
			Left:  algebra.NewScan("attends", att.Schema()),
			Right: algebra.NewScan("cs_lecture", lec.Schema()),
			On:    []algebra.ColPair{{Left: 1, Right: 0}},
		}},
	}
	for _, pl := range plans {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/parallel=%d/tuple", pl.name, par), func(b *testing.B) {
				drainPlan(b, cat, pl.plan, par)
			})
			for _, bs := range []int{64, 1024} {
				b.Run(fmt.Sprintf("%s/parallel=%d/block=%d", pl.name, par, bs), func(b *testing.B) {
					drainBatch(b, cat, pl.plan, par, bs)
				})
			}
		}
	}

	// Single-flight producer pair: the shared subtree IS the partitioned
	// join, so the fan-out affects exactly the elected producer's spool
	// fill — consumers stream published blocks either way.
	shared := algebra.NewShared(plans[0].plan)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("single-flight/c=4/producer-parallel=%d", par), func(b *testing.B) {
			runConcurrentBatchMemo(b, cat, shared, 4, par)
		})
	}
}
