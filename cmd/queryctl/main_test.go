package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/translate"
)

func TestBuildDataset(t *testing.T) {
	for _, name := range []string{"university", "ptu", "rstg"} {
		cat, err := buildDataset(name, 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cat.Names()) == 0 {
			t.Fatalf("%s: empty catalog", name)
		}
	}
	if _, err := buildDataset("nope", 10); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestSetStrategyAndFilters(t *testing.T) {
	cat, _ := buildDataset("ptu", 10)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	eng := core.NewEngine(db)
	for name, want := range map[string]core.Strategy{
		"bry": core.StrategyBry, "codd": core.StrategyCodd,
		"codd-improved": core.StrategyCoddImproved, "loop": core.StrategyLoop,
	} {
		if err := setStrategy(eng, name); err != nil || eng.Strategy() != want {
			t.Fatalf("setStrategy(%s): %v -> %v", name, err, eng.Strategy())
		}
	}
	if err := setStrategy(eng, "warp"); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	for name, want := range map[string]translate.DisjFilterStrategy{
		"constrained": translate.StrategyConstrainedOuterJoin,
		"outerjoin":   translate.StrategyOuterJoin,
		"union":       translate.StrategyUnion,
	} {
		if err := setFilters(eng, name); err != nil || eng.TranslateOptions().DisjunctiveFilters != want {
			t.Fatalf("setFilters(%s): %v", name, err)
		}
	}
	if err := setFilters(eng, "nope"); err == nil {
		t.Fatal("unknown filter strategy must fail")
	}
}

func TestSetCache(t *testing.T) {
	cat, _ := buildDataset("ptu", 10)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	eng := core.NewEngine(db)
	if out, err := setCache(eng, "status"); err != nil || out != "cache = off" {
		t.Fatalf("status while off: %q, %v", out, err)
	}
	if _, err := setCache(eng, "on"); err != nil || !eng.PlanCacheEnabled() {
		t.Fatalf("on: %v, enabled=%v", err, eng.PlanCacheEnabled())
	}
	if _, err := eng.Query(`{ x | P(x) and T(x) }`); err != nil {
		t.Fatal(err)
	}
	out, err := setCache(eng, "status")
	if err != nil || out == "cache = off" {
		t.Fatalf("status while on: %q, %v", out, err)
	}
	if _, err := setCache(eng, "off"); err != nil || eng.PlanCacheEnabled() {
		t.Fatalf("off: %v, enabled=%v", err, eng.PlanCacheEnabled())
	}
	if _, err := setCache(eng, "sideways"); err == nil {
		t.Fatal("bad argument must fail")
	}
}

func TestSplitTwo(t *testing.T) {
	if a, b, ok := splitTwo(" rel  path "); !ok || a != "rel" || b != "path" {
		t.Fatalf("splitTwo = %q %q %v", a, b, ok)
	}
	if _, _, ok := splitTwo("one"); ok {
		t.Fatal("one field must fail")
	}
	if _, _, ok := splitTwo("a b c"); ok {
		t.Fatal("three fields must fail")
	}
}

func TestRunQueryHelper(t *testing.T) {
	cat, _ := buildDataset("ptu", 10)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	eng := core.NewEngine(db)
	if err := runQuery(eng, `{ x | P(x) and T(x) }`); err != nil {
		t.Fatalf("open query: %v", err)
	}
	if err := runQuery(eng, `exists x: P(x)`); err != nil {
		t.Fatalf("closed query: %v", err)
	}
	if err := runQuery(eng, `{ x | nope(`); err == nil {
		t.Fatal("parse error must surface")
	}
}
