package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
)

// Remote mode: instead of evaluating locally, queryctl becomes a client of
// a running queryd. -q posts one query, -stats dumps the daemon's report,
// and with neither it drops into a minimal REPL that posts each line.

// remoteQuery posts one query and renders the response.
func remoteQuery(base, apiKey, query string) error {
	body, _ := json.Marshal(map[string]string{"query": query})
	req, err := http.NewRequest("POST", strings.TrimRight(base, "/")+"/query", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("X-API-Key", apiKey)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error struct {
				Kind    string `json:"kind"`
				Message string `json:"message"`
				Limit   string `json:"limit"`
				Used    int64  `json:"used"`
				Budget  int64  `json:"budget"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Kind != "" {
			msg := fmt.Sprintf("%d %s: %s", resp.StatusCode, eb.Error.Kind, eb.Error.Message)
			if eb.Error.Kind == "resource" {
				msg += fmt.Sprintf("\n  (the %s budget admitted %d of %d — ask the operator for a bigger tenant)",
					eb.Error.Limit, eb.Error.Budget, eb.Error.Used)
			}
			return fmt.Errorf("%s", msg)
		}
		return fmt.Errorf("%d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var qr struct {
		Open      bool       `json:"open"`
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		Truth     *bool      `json:"truth"`
		Canonical string     `json:"canonical"`
		Timing    struct {
			Flight   string `json:"flight"`
			CacheHit bool   `json:"cache_hit"`
			Batch    int    `json:"batch"`
			PlanUS   int64  `json:"plan_us"`
			ExecUS   int64  `json:"exec_us"`
			TotalUS  int64  `json:"total_us"`
		} `json:"timing"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		return err
	}
	if qr.Open {
		if len(qr.Columns) > 0 {
			fmt.Printf("(%s)\n", strings.Join(qr.Columns, ", "))
		}
		for _, row := range qr.Rows {
			fmt.Println(strings.Join(row, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(qr.Rows))
	} else if qr.Truth != nil {
		fmt.Println(*qr.Truth)
	}
	fmt.Printf("canonical: %s\nservice: flight=%s cache_hit=%v batch=%d plan=%dµs exec=%dµs total=%dµs\n",
		qr.Canonical, qr.Timing.Flight, qr.Timing.CacheHit, qr.Timing.Batch,
		qr.Timing.PlanUS, qr.Timing.ExecUS, qr.Timing.TotalUS)
	return nil
}

// remoteStats fetches /stats and renders the service counters and the
// per-tenant snapshots.
func remoteStats(base string) error {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var report struct {
		Service map[string]any            `json:"service"`
		Tenants map[string]map[string]any `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		return err
	}
	fmt.Println("service:")
	printSorted("  ", report.Service)
	names := make([]string, 0, len(report.Tenants))
	for name := range report.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("tenant %s:\n", name)
		printSorted("  ", report.Tenants[name])
	}
	return nil
}

func printSorted(indent string, m map[string]any) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s%s = %v\n", indent, k, m[k])
	}
}

// remoteMain is the -remote entry point; it returns the process exit code.
func remoteMain(base, apiKey, oneShot string, stats bool) int {
	if stats {
		if err := remoteStats(base); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if oneShot != "" {
		if err := remoteQuery(base, apiKey, oneShot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	fmt.Printf("connected to %s — \\stats shows the daemon report, \\quit exits\n", base)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return 0
		case line == `\stats`:
			if err := remoteStats(base); err != nil {
				fmt.Println(err)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown remote command %q (\\stats, \\quit)\n", line)
		default:
			if err := remoteQuery(base, apiKey, line); err != nil {
				fmt.Println(err)
			}
		}
		fmt.Print("query> ")
	}
	return 0
}
