package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/service"
)

// Remote mode: instead of evaluating locally, queryctl becomes a client of
// a running queryd through service.Client, which carries the retry
// discipline — jittered exponential backoff on overload 503s, honoring the
// server's Retry-After, never retrying past a deadline. -q posts one query,
// -stats dumps the daemon's report, and with neither it drops into a
// minimal REPL that posts each line.

// remoteQuery posts one query and renders the response.
func remoteQuery(ctx context.Context, client *service.Client, query string) error {
	qr, err := client.Query(ctx, query)
	if err != nil {
		return renderRemoteError(err, client)
	}
	if qr.Open {
		if len(qr.Columns) > 0 {
			fmt.Printf("(%s)\n", strings.Join(qr.Columns, ", "))
		}
		for _, row := range qr.Rows {
			fmt.Println(strings.Join(row, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(qr.Rows))
	} else if qr.Truth != nil {
		fmt.Println(*qr.Truth)
	}
	fmt.Printf("canonical: %s\nservice: flight=%s cache_hit=%v batch=%d plan=%dµs exec=%dµs total=%dµs\n",
		qr.Canonical, qr.Timing.Flight, qr.Timing.CacheHit, qr.Timing.Batch,
		qr.Timing.PlanUS, qr.Timing.ExecUS, qr.Timing.TotalUS)
	return nil
}

// renderRemoteError turns a client failure into operator-friendly text,
// adding the taxonomy-specific hints for budget and overload rejections.
func renderRemoteError(err error, client *service.Client) error {
	var re *service.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	msg := fmt.Sprintf("%d %s: %s", re.Status, re.Detail.Kind, re.Detail.Message)
	switch re.Detail.Kind {
	case "resource":
		msg += fmt.Sprintf("\n  (the %s budget admitted %d of %d — ask the operator for a bigger tenant)",
			re.Detail.Limit, re.Detail.Budget, re.Detail.Used)
	case "shed", "breaker":
		msg += fmt.Sprintf("\n  (the service is overloaded; %d retries were already spent — back off and try again)",
			client.RetryCount())
	case "degraded":
		msg += "\n  (the tenant is in degraded cache-only mode; only recently-cached queries are admitted)"
	case "timeout":
		msg += fmt.Sprintf("\n  (the request's %dms deadline budget ran out — raise -deadline or simplify the query)",
			re.Detail.DeadlineMS)
	}
	return fmt.Errorf("%s", msg)
}

// remoteStats fetches /stats and renders the service counters, the breaker
// states and the per-tenant snapshots.
func remoteStats(ctx context.Context, client *service.Client) error {
	report, err := client.Stats(ctx)
	if err != nil {
		return renderRemoteError(err, client)
	}
	fmt.Println("service:")
	printSorted("  ", structToMap(report.Service))
	bnames := make([]string, 0, len(report.Breakers))
	for name := range report.Breakers {
		bnames = append(bnames, name)
	}
	sort.Strings(bnames)
	for _, name := range bnames {
		fmt.Printf("breaker %s:\n", name)
		printSorted("  ", structToMap(report.Breakers[name]))
	}
	names := make([]string, 0, len(report.Tenants))
	for name := range report.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("tenant %s:\n", name)
		printSorted("  ", structToMap(report.Tenants[name]))
	}
	return nil
}

// structToMap renders any JSON-taggable struct as a flat key→value map, so
// the report prints in sorted-key lines without hand-listing every field.
func structToMap(v any) map[string]any {
	raw, err := json.Marshal(v)
	if err != nil {
		return map[string]any{"error": err.Error()}
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return map[string]any{"error": err.Error()}
	}
	return m
}

func printSorted(indent string, m map[string]any) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s%s = %v\n", indent, k, m[k])
	}
}

// remoteMain is the -remote entry point; it returns the process exit code.
func remoteMain(client *service.Client, oneShot string, stats bool) int {
	ctx := context.Background()
	if stats {
		if err := remoteStats(ctx, client); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if oneShot != "" {
		if err := remoteQuery(ctx, client, oneShot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	fmt.Printf("connected to %s — \\stats shows the daemon report, \\quit exits\n", client.Base)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return 0
		case line == `\stats`:
			if err := remoteStats(ctx, client); err != nil {
				fmt.Println(err)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown remote command %q (\\stats, \\quit)\n", line)
		default:
			if err := remoteQuery(ctx, client, line); err != nil {
				fmt.Println(err)
			}
		}
		fmt.Print("query> ")
	}
	return 0
}
