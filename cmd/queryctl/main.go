// Command queryctl is an interactive shell (and one-shot runner) for the
// library: load a generated dataset, type calculus queries, inspect
// canonical forms, plans and execution costs under the three strategies.
//
// Usage:
//
//	queryctl -dataset university -n 100                 # REPL
//	queryctl -dataset ptu -q '{ x | P(x) and T(x) }'    # one-shot
//
// REPL commands:
//
//	\d             list relations
//	\d NAME        show a relation's contents
//	\strategy S    switch evaluation strategy (bry, codd, codd-improved, loop)
//	\filters S     disjunctive-filter strategy (constrained, outerjoin, union)
//	\explain Q     show canonical form and plan without executing
//	\cost Q        show the plan with cost-model estimates
//	\canonical Q   show only the canonical form
//	\view N = DEF  define a view, e.g. \view busy = { x | exists y: attends(x, y) }
//	\load N PATH   load tab-separated tuples into relation N
//	\save N PATH   save relation N as tab-separated text
//	\quit          exit
//
// Anything else is parsed as a query and executed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/storage"
	"repro/internal/translate"
)

func main() {
	ds := flag.String("dataset", "university", "dataset: university, ptu, rstg")
	n := flag.Int("n", 100, "dataset scale")
	strategy := flag.String("strategy", "bry", "evaluation strategy: bry, codd, codd-improved, loop")
	oneShot := flag.String("q", "", "run a single query and exit")
	flag.Parse()

	cat, err := buildDataset(*ds, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	eng := core.NewEngine(db)
	if err := setStrategy(eng, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *oneShot != "" {
		if err := runQuery(eng, *oneShot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("dataset %q (scale %d), strategy %s — \\d lists relations, \\quit exits\n", *ds, *n, eng.Strategy)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\d`:
			for _, name := range db.Catalog().Names() {
				r, _ := db.Catalog().Relation(name)
				fmt.Printf("  %s%s — %d tuples\n", name, r.Schema(), r.Len())
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			r, err := db.Catalog().Relation(name)
			if err != nil {
				fmt.Println(err)
				break
			}
			fmt.Print(r)
		case strings.HasPrefix(line, `\strategy `):
			if err := setStrategy(eng, strings.TrimSpace(line[10:])); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("strategy = %s\n", eng.Strategy)
			}
		case strings.HasPrefix(line, `\filters `):
			if err := setFilters(eng, strings.TrimSpace(line[9:])); err != nil {
				fmt.Println(err)
			}
		case strings.HasPrefix(line, `\explain `):
			out, err := eng.Explain(strings.TrimSpace(line[9:]))
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Print(out)
			}
		case strings.HasPrefix(line, `\cost `):
			out, err := eng.ExplainCost(strings.TrimSpace(line[6:]))
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Print(out)
			}
		case strings.HasPrefix(line, `\canonical `):
			p, err := eng.Prepare(strings.TrimSpace(line[11:]))
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Println(p.Canonical)
			}
		case strings.HasPrefix(line, `\view `):
			rest := strings.TrimSpace(line[6:])
			name, def, ok := strings.Cut(rest, "=")
			if !ok {
				fmt.Println(`usage: \view NAME = { x | ... }`)
				break
			}
			if err := db.DefineView(strings.TrimSpace(name), strings.TrimSpace(def)); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("view %s defined\n", strings.TrimSpace(name))
			}
		case strings.HasPrefix(line, `\load `):
			name, path, ok := splitTwo(line[6:])
			if !ok {
				fmt.Println(`usage: \load RELATION PATH`)
				break
			}
			n, err := db.Catalog().LoadFile(name, path)
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("loaded %d tuples into %s\n", n, name)
			}
		case strings.HasPrefix(line, `\save `):
			name, path, ok := splitTwo(line[6:])
			if !ok {
				fmt.Println(`usage: \save RELATION PATH`)
				break
			}
			if err := db.Catalog().SaveFile(name, path); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("saved %s to %s\n", name, path)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown command %q\n", line)
		default:
			if err := runQuery(eng, line); err != nil {
				fmt.Println(err)
			}
		}
		fmt.Print("query> ")
	}
}

func buildDataset(name string, n int) (*storage.Catalog, error) {
	switch name {
	case "university":
		return dataset.University(dataset.DefaultUniversity(n)), nil
	case "ptu":
		return dataset.PTU(dataset.PTUParams{N: n, TProb: 0.5, UProb: 0.3, ExtraShare: 0.2, Branches: 3, Seed: 1}), nil
	case "rstg":
		return dataset.RSTG(dataset.DefaultRSTG(n)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (university, ptu, rstg)", name)
	}
}

func setStrategy(eng *core.Engine, s string) error {
	switch s {
	case "bry":
		eng.Strategy = core.StrategyBry
	case "codd":
		eng.Strategy = core.StrategyCodd
	case "codd-improved":
		eng.Strategy = core.StrategyCoddImproved
	case "loop":
		eng.Strategy = core.StrategyLoop
	default:
		return fmt.Errorf("unknown strategy %q (bry, codd, loop)", s)
	}
	return nil
}

func setFilters(eng *core.Engine, s string) error {
	switch s {
	case "constrained":
		eng.Options.DisjunctiveFilters = translate.StrategyConstrainedOuterJoin
	case "outerjoin":
		eng.Options.DisjunctiveFilters = translate.StrategyOuterJoin
	case "union":
		eng.Options.DisjunctiveFilters = translate.StrategyUnion
	default:
		return fmt.Errorf("unknown filter strategy %q (constrained, outerjoin, union)", s)
	}
	return nil
}

func runQuery(eng *core.Engine, input string) error {
	res, err := eng.Query(input)
	if err != nil {
		return err
	}
	if res.Open {
		fmt.Print(res.Rows)
		fmt.Printf("(%d rows)\n", res.Rows.Len())
	} else {
		fmt.Println(res.Truth)
	}
	fmt.Printf("canonical: %s\ncost: %s\n", res.Canonical, res.Stats.String())
	return nil
}

// splitTwo splits "name path" into its two fields.
func splitTwo(s string) (string, string, bool) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}
