// Command queryctl is an interactive shell (and one-shot runner) for the
// library: load a generated dataset, type calculus queries, inspect
// canonical forms, plans and execution costs under the three strategies.
//
// Usage:
//
//	queryctl -dataset university -n 100                 # REPL
//	queryctl -dataset ptu -q '{ x | P(x) and T(x) }'    # one-shot
//	queryctl -parallel 4 -timeout 5s                    # tuned engine
//	queryctl -remote http://localhost:8991 -apikey K -q '...'  # against queryd
//	queryctl -remote http://localhost:8991 -stats       # daemon report
//
// REPL commands:
//
//	\d             list relations
//	\d NAME        show a relation's contents
//	\strategy S    switch evaluation strategy (bry, codd, codd-improved, loop)
//	\filters S     disjunctive-filter strategy (constrained, outerjoin, union)
//	\parallel P    partition fan-out of the hash-join family (1 = serial)
//	\cache on|off|status   memoizing subplan cache (shared-subtree results)
//	\limits        show the per-query resource budgets and trip counters
//	\limits tuples N   abort queries that materialize more than N tuples
//	\limits mem N  abort queries that hold more than N bytes of tuples
//	\limits off    clear both budgets
//	\timeout D     per-query execution bound, e.g. 500ms or 10s (0 = none)
//	\explain Q     show canonical form and plan without executing
//	\cost Q        show the plan with cost-model estimates
//	\canonical Q   show only the canonical form
//	\view N = DEF  define a view, e.g. \view busy = { x | exists y: attends(x, y) }
//	\load N PATH   load tab-separated tuples into relation N
//	\save N PATH   save relation N as tab-separated text
//	\quit          exit
//
// Anything else is parsed as a query and executed.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/translate"
)

func main() {
	ds := flag.String("dataset", "university", "dataset: university, ptu, rstg")
	n := flag.Int("n", 100, "dataset scale")
	strategy := flag.String("strategy", "bry", "evaluation strategy: bry, codd, codd-improved, loop")
	parallel := flag.Int("parallel", 1, "partition fan-out of the hash-join family (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-query execution bound (0 = none)")
	oneShot := flag.String("q", "", "run a single query and exit")
	remote := flag.String("remote", "", "queryd base URL (e.g. http://localhost:8991): act as a client instead of evaluating locally")
	apiKey := flag.String("apikey", "", "tenant API key for -remote requests")
	stats := flag.Bool("stats", false, "with -remote: print the daemon's /stats report and exit")
	retries := flag.Int("retries", service.DefaultMaxRetries, "with -remote: retry budget for overload rejections (503 shed/breaker, transport errors); -1 disables")
	deadline := flag.Duration("deadline", 0, "with -remote: per-request deadline budget sent as "+service.DeadlineHeader+" (0 = server default)")
	flag.Parse()

	if *remote != "" {
		client := &service.Client{
			Base:       strings.TrimRight(*remote, "/"),
			APIKey:     *apiKey,
			MaxRetries: *retries,
			Deadline:   *deadline,
		}
		os.Exit(remoteMain(client, *oneShot, *stats))
	}

	cat, err := buildDataset(*ds, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	eng := core.NewEngine(db,
		core.WithParallelism(*parallel),
		core.WithTimeout(*timeout),
	)
	if err := setStrategy(eng, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *oneShot != "" {
		if err := runQuery(eng, *oneShot); err != nil {
			fmt.Fprintln(os.Stderr, diagnose(err))
			os.Exit(1)
		}
		return
	}

	fmt.Printf("dataset %q (scale %d), strategy %s — \\d lists relations, \\quit exits\n", *ds, *n, eng.Strategy())
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\d`:
			for _, name := range db.Catalog().Names() {
				r, _ := db.Catalog().Relation(name)
				fmt.Printf("  %s%s — %d tuples\n", name, r.Schema(), r.Len())
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			r, err := db.Catalog().Relation(name)
			if err != nil {
				fmt.Println(err)
				break
			}
			fmt.Print(r)
		case strings.HasPrefix(line, `\strategy `):
			if err := setStrategy(eng, strings.TrimSpace(line[10:])); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("strategy = %s\n", eng.Strategy())
			}
		case strings.HasPrefix(line, `\filters `):
			if err := setFilters(eng, strings.TrimSpace(line[9:])); err != nil {
				fmt.Println(err)
			}
		case strings.HasPrefix(line, `\parallel `):
			p, err := strconv.Atoi(strings.TrimSpace(line[10:]))
			if err != nil || p < 1 {
				fmt.Println(`usage: \parallel P  (P ≥ 1; 1 = serial)`)
				break
			}
			eng.Configure(core.WithParallelism(p))
			fmt.Printf("parallelism = %d\n", eng.Parallelism())
		case strings.HasPrefix(line, `\cache `):
			out, err := setCache(eng, strings.TrimSpace(line[7:]))
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Println(out)
			}
		case line == `\limits` || strings.HasPrefix(line, `\limits `):
			out, err := setLimits(eng, strings.TrimSpace(strings.TrimPrefix(line, `\limits`)))
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Println(out)
			}
		case strings.HasPrefix(line, `\timeout `):
			d, err := time.ParseDuration(strings.TrimSpace(line[9:]))
			if err != nil || d < 0 {
				fmt.Println(`usage: \timeout D  (e.g. 500ms, 10s; 0 = none)`)
				break
			}
			eng.Configure(core.WithTimeout(d))
			fmt.Printf("timeout = %s\n", eng.Timeout())
		case strings.HasPrefix(line, `\explain `):
			out, err := eng.Explain(strings.TrimSpace(line[9:]))
			if err != nil {
				fmt.Println(diagnose(err))
			} else {
				fmt.Print(out)
			}
		case strings.HasPrefix(line, `\cost `):
			out, err := eng.ExplainCost(strings.TrimSpace(line[6:]))
			if err != nil {
				fmt.Println(diagnose(err))
			} else {
				fmt.Print(out)
			}
		case strings.HasPrefix(line, `\canonical `):
			p, err := eng.Prepare(strings.TrimSpace(line[11:]))
			if err != nil {
				fmt.Println(diagnose(err))
			} else {
				fmt.Println(p.Canonical)
			}
		case strings.HasPrefix(line, `\view `):
			rest := strings.TrimSpace(line[6:])
			name, def, ok := strings.Cut(rest, "=")
			if !ok {
				fmt.Println(`usage: \view NAME = { x | ... }`)
				break
			}
			if err := db.DefineView(strings.TrimSpace(name), strings.TrimSpace(def)); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("view %s defined\n", strings.TrimSpace(name))
			}
		case strings.HasPrefix(line, `\load `):
			name, path, ok := splitTwo(line[6:])
			if !ok {
				fmt.Println(`usage: \load RELATION PATH`)
				break
			}
			n, err := db.Catalog().LoadFile(name, path)
			if err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("loaded %d tuples into %s\n", n, name)
			}
		case strings.HasPrefix(line, `\save `):
			name, path, ok := splitTwo(line[6:])
			if !ok {
				fmt.Println(`usage: \save RELATION PATH`)
				break
			}
			if err := db.Catalog().SaveFile(name, path); err != nil {
				fmt.Println(err)
			} else {
				fmt.Printf("saved %s to %s\n", name, path)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown command %q\n", line)
		default:
			if err := runQuery(eng, line); err != nil {
				fmt.Println(diagnose(err))
			}
		}
		fmt.Print("query> ")
	}
}

// diagnose turns the engine's typed errors into actionable messages: a
// syntax error points at the grammar, a safety rejection explains the
// range-restriction rules, a planner error asks for a bug report, and a
// deadline hit names the timeout knobs.
func diagnose(err error) string {
	var pe *core.ParseError
	var se *core.SafetyError
	var le *core.PlanError
	var re *core.ResourceError
	var ee *core.ExecError
	switch {
	case errors.As(err, &pe):
		return fmt.Sprintf("syntax error: %v\n  (queries look like { x | student(x) } or a closed formula like exists x: student(x))", pe.Err)
	case errors.As(err, &se):
		return fmt.Sprintf("unsafe query: %v\n  (every variable needs a range: a positive atom binding it — Definitions 1–3)", se.Err)
	case errors.As(err, &le):
		var ur *storage.UnknownRelationError
		if errors.As(le.Err, &ur) {
			return fmt.Sprintf("unknown relation %q\n  (\\d lists the relations and views this database defines)", ur.Name)
		}
		return fmt.Sprintf("planner error (%s stage): %v\n  (the query is well-formed; this is likely a bug worth reporting)", le.Stage, le.Err)
	case errors.As(err, &re):
		return fmt.Sprintf("query aborted: %v\n  (raise or clear the budget with \\limits)", re)
	case errors.As(err, &ee):
		return fmt.Sprintf("execution fault (%s stage): %v\n  (the engine recovered; the database is still queryable)", ee.Stage, ee.Err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Sprintf("query timed out: %v\n  (raise or clear the bound with \\timeout)", err)
	default:
		return err.Error()
	}
}

func buildDataset(name string, n int) (*storage.Catalog, error) {
	switch name {
	case "university":
		return dataset.University(dataset.DefaultUniversity(n)), nil
	case "ptu":
		return dataset.PTU(dataset.PTUParams{N: n, TProb: 0.5, UProb: 0.3, ExtraShare: 0.2, Branches: 3, Seed: 1}), nil
	case "rstg":
		return dataset.RSTG(dataset.DefaultRSTG(n)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (university, ptu, rstg)", name)
	}
}

func setStrategy(eng *core.Engine, s string) error {
	switch s {
	case "bry":
		eng.Configure(core.WithStrategy(core.StrategyBry))
	case "codd":
		eng.Configure(core.WithStrategy(core.StrategyCodd))
	case "codd-improved":
		eng.Configure(core.WithStrategy(core.StrategyCoddImproved))
	case "loop":
		eng.Configure(core.WithStrategy(core.StrategyLoop))
	default:
		return fmt.Errorf("unknown strategy %q (bry, codd, loop)", s)
	}
	return nil
}

func setFilters(eng *core.Engine, s string) error {
	switch s {
	case "constrained":
		eng.Configure(core.WithDisjunctiveFilters(translate.StrategyConstrainedOuterJoin))
	case "outerjoin":
		eng.Configure(core.WithDisjunctiveFilters(translate.StrategyOuterJoin))
	case "union":
		eng.Configure(core.WithDisjunctiveFilters(translate.StrategyUnion))
	default:
		return fmt.Errorf("unknown filter strategy %q (constrained, outerjoin, union)", s)
	}
	return nil
}

// setCache drives the memoizing subplan cache: on installs a fresh memo
// (default budget), off drops it, status reports occupancy.
func setCache(eng *core.Engine, arg string) (string, error) {
	switch arg {
	case "on":
		eng.Configure(core.WithPlanCache(0))
		return fmt.Sprintf("cache = on (budget %d tuples)", eng.PlanCacheBudget()), nil
	case "off":
		eng.Configure(core.WithoutPlanCache())
		return "cache = off", nil
	case "status":
		if !eng.PlanCacheEnabled() {
			return "cache = off", nil
		}
		entries, tuples := eng.PlanCacheInfo()
		return fmt.Sprintf("cache = on: %d entries, %d/%d tuples buffered, %d spools abandoned",
			entries, tuples, eng.PlanCacheBudget(), eng.PlanCacheAbandoned()), nil
	default:
		return "", fmt.Errorf(`usage: \cache on|off|status`)
	}
}

// setLimits drives the per-query resource budgets. With no argument it
// reports the current budgets and the engine's cumulative robustness
// counters; `tuples N` and `mem N` set one budget; `off` clears both.
func setLimits(eng *core.Engine, arg string) (string, error) {
	fields := strings.Fields(arg)
	switch {
	case len(fields) == 0:
		status := func(v int64, unit string) string {
			if v == 0 {
				return "unbounded"
			}
			return fmt.Sprintf("%d %s", v, unit)
		}
		rc := eng.Robustness()
		return fmt.Sprintf("tuples = %s, memory = %s\ntrips = %d, panics recovered = %d, cache entries shed = %d, cache spools abandoned = %d",
			status(eng.TupleLimit(), "tuples"), status(eng.MemoryBudget(), "bytes"),
			rc.LimitsTripped, rc.PanicsRecovered, rc.DegradedEvictions, rc.SpoolsAbandoned), nil
	case len(fields) == 1 && fields[0] == "off":
		eng.Configure(core.WithTupleLimit(0), core.WithMemoryBudget(0))
		return "limits cleared", nil
	case len(fields) == 2:
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 0 {
			break
		}
		switch fields[0] {
		case "tuples":
			eng.Configure(core.WithTupleLimit(n))
			return fmt.Sprintf("tuple limit = %d", eng.TupleLimit()), nil
		case "mem":
			eng.Configure(core.WithMemoryBudget(n))
			return fmt.Sprintf("memory budget = %d bytes", eng.MemoryBudget()), nil
		}
	}
	return "", fmt.Errorf(`usage: \limits [tuples N | mem N | off]`)
}

func runQuery(eng *core.Engine, input string) error {
	res, err := eng.Query(input)
	if err != nil {
		return err
	}
	if res.Open {
		fmt.Print(res.Rows)
		fmt.Printf("(%d rows)\n", res.Rows.Len())
	} else {
		fmt.Println(res.Truth)
	}
	fmt.Printf("canonical: %s\ncost: %s\n", res.Canonical, res.Stats.String())
	return nil
}

// splitTwo splits "name path" into its two fields.
func splitTwo(s string) (string, string, bool) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}
