// Command queryd is the multi-tenant query daemon: it loads a generated
// dataset, builds one engine per declared tenant over the shared catalog,
// and serves the service API over HTTP.
//
//	POST /query   X-API-Key header, {"query": "{ x | student(x) }"}
//	GET  /stats   service counters, per-tenant engine snapshots, recent requests
//	GET  /healthz liveness
//
// Usage:
//
//	queryd -dataset university -n 200 \
//	       -tenants 'alice:key-a:5000,bob:key-b:500:1048576:2:100'
//
// Each -tenants entry is
// name:apikey[:tuple-limit[:memory-budget-bytes[:weight[:rps]]]]; a
// tenant's budgets are its admission control — a query that exceeds them is
// rejected with 429 and a typed resource payload. weight is the tenant's
// fair-share weight under overload (deficit round-robin; default 1), and
// rps is a per-tenant token-bucket rate limit (requests/second, burst of
// one second's worth) shedding excess at submission with a typed 503.
// Omitted budgets mean unbounded; empty fields keep their defaults.
//
// The daemon is overload-resilient and fair by default (see DESIGN.md §10
// and §11). Every request runs under a deadline budget (-default-deadline,
// tightened per request with the X-Deadline-Ms header) that propagates into
// the engine; requests queue per tenant and dispatch by weighted deficit
// round-robin, so a flooding tenant lengthens only its own queue; one
// CoDel-style controller per tenant sheds requests whose queue sojourn
// stays above -shed-target for a full -shed-interval; consecutive engine
// failures open a per-tenant circuit breaker (-breaker-failures,
// -breaker-cooldown), and consecutive governor trips enter a cache-only
// degraded window (-degrade-trips, -degrade-window). All rejections are
// typed 503s with retry_after_ms advice and a reason field splitting the
// shed kinds (sojourn, queue-full, rate-limit). -fault injects
// service-level faults for chaos drills (see -fault's grammar below), and
// cmd/queryload is the matching load harness.
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued requests are
// answered, new submissions get 503, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8991", "listen address (host:port; port 0 picks a free one)")
	ds := flag.String("dataset", "university", "dataset: university, ptu, rstg")
	n := flag.Int("n", 100, "dataset scale")
	tenantsFlag := flag.String("tenants", "demo:demo-key", "comma-separated name:apikey[:tuple-limit[:memory-budget[:weight[:rps]]]] entries")
	parallel := flag.Int("parallel", 1, "partition fan-out of every tenant engine (1 = serial)")
	cache := flag.Bool("cache", true, "enable each tenant's memoizing subplan cache")
	batchSize := flag.Int("batch-size", service.DefaultBatchSize, "flush a batch at this many requests")
	batchWait := flag.Duration("batch-wait", service.DefaultBatchMaxWait, "flush a non-empty batch after this wait")
	recent := flag.Int("recent", service.DefaultRecent, "per-request records kept for /stats")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	maxConcurrent := flag.Int("max-concurrent", service.DefaultMaxConcurrent, "batches executing concurrently (bounds the engine load)")
	defaultDeadline := flag.Duration("default-deadline", service.DefaultDeadlineBudget, "server-side deadline budget for requests that set none (clients override per request with "+service.DeadlineHeader+"; 0 = unbounded)")
	shedTarget := flag.Duration("shed-target", service.DefaultShedTarget, "CoDel queue-sojourn target; sustained sojourn above it sheds requests (negative disables shedding)")
	shedInterval := flag.Duration("shed-interval", service.DefaultShedInterval, "CoDel control interval: how long sojourns must stay above target before the first shed")
	breakerFailures := flag.Int("breaker-failures", service.DefaultBreakerFailures, "consecutive engine failures that open a tenant's circuit breaker (negative disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", service.DefaultBreakerCooldown, "how long an open breaker rejects before a half-open probe")
	degradeTrips := flag.Int("degrade-trips", service.DefaultDegradeTrips, "consecutive governor trips that put a tenant in degraded cache-only mode (negative disables)")
	degradeWindow := flag.Duration("degrade-window", service.DefaultDegradeWindow, "how long degraded cache-only mode lasts")
	faultsFlag := flag.String("fault", "", "comma-separated point:kind[:after] service fault arms for resilience testing, e.g. 'service.flight:error:3' (each arm fires once)")
	flag.Parse()

	cat, err := buildDataset(*ds, *n)
	if err != nil {
		return err
	}
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}

	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		return err
	}
	faults, err := parseFaults(*faultsFlag)
	if err != nil {
		return err
	}

	opts := []core.Option{core.WithParallelism(*parallel)}
	if *cache {
		opts = append(opts, core.WithPlanCache(0))
	}
	srv, err := service.NewServer(db, service.Config{
		Tenants:         tenants,
		BatchSize:       *batchSize,
		BatchMaxWait:    *batchWait,
		Recent:          *recent,
		EngineOptions:   opts,
		MaxConcurrent:   *maxConcurrent,
		DefaultDeadline: *defaultDeadline,
		ShedTarget:      *shedTarget,
		ShedInterval:    *shedInterval,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		DegradeTrips:    *degradeTrips,
		DegradeWindow:   *degradeWindow,
		Faults:          faults,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Printf("queryd: dataset %q (scale %d), %d tenant(s), listening on %s\n",
		*ds, *n, len(tenants), ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("queryd: %s — draining\n", sig)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("queryd: drained")
	return nil
}

// parseTenants parses the -tenants flag: comma-separated
// name:apikey[:tuple-limit[:memory-budget]] entries.
func parseTenants(s string) ([]service.TenantConfig, error) {
	var out []service.TenantConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 6 {
			return nil, fmt.Errorf("bad -tenants entry %q (want name:apikey[:tuple-limit[:memory-budget[:weight[:rps]]]])", entry)
		}
		tc := service.TenantConfig{Name: parts[0], APIKey: parts[1]}
		if len(parts) >= 3 && parts[2] != "" {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad tuple limit in -tenants entry %q", entry)
			}
			tc.TupleLimit = v
		}
		if len(parts) >= 4 && parts[3] != "" {
			v, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad memory budget in -tenants entry %q", entry)
			}
			tc.MemoryBudget = v
		}
		if len(parts) >= 5 && parts[4] != "" {
			v, err := strconv.Atoi(parts[4])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad weight in -tenants entry %q (want an integer ≥ 1)", entry)
			}
			tc.Weight = v
		}
		if len(parts) == 6 && parts[5] != "" {
			v, err := strconv.ParseFloat(parts[5], 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad rps in -tenants entry %q (want a number ≥ 0)", entry)
			}
			tc.RatePerSec = v
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, errors.New("queryd: -tenants declared no tenants")
	}
	return out, nil
}

// parseFaults parses the -fault flag: comma-separated point:kind[:after]
// arms over the service-tier injection points, where kind is error, panic
// or delay. Every arm fires exactly once (the faultinject contract), and an
// invocation stops at the first arm that fires without advancing the rest,
// so repeating an arm with the default after=1 — e.g.
// 'service.flight:error,service.flight:error' — injects consecutive
// failures: each copy fires on the first invocation it observes unfired.
func parseFaults(s string) (*faultinject.Plan, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	valid := make(map[string]bool)
	for _, pt := range faultinject.ServicePoints() {
		valid[pt] = true
	}
	var arms []faultinject.Arm
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad -fault entry %q (want point:kind[:after])", entry)
		}
		if !valid[parts[0]] {
			return nil, fmt.Errorf("bad -fault point %q (service points: %s)",
				parts[0], strings.Join(faultinject.ServicePoints(), ", "))
		}
		arm := faultinject.Arm{Point: parts[0]}
		switch parts[1] {
		case "error":
			arm.Kind = faultinject.KindError
		case "panic":
			arm.Kind = faultinject.KindPanic
		case "delay":
			arm.Kind = faultinject.KindDelay
		default:
			return nil, fmt.Errorf("bad -fault kind %q (error, panic, delay)", parts[1])
		}
		if len(parts) == 3 && parts[2] != "" {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad -fault trigger count in %q", entry)
			}
			arm.After = v
		}
		arms = append(arms, arm)
	}
	if len(arms) == 0 {
		return nil, nil
	}
	return faultinject.New(arms...), nil
}

func buildDataset(name string, n int) (*storage.Catalog, error) {
	switch name {
	case "university":
		return dataset.University(dataset.DefaultUniversity(n)), nil
	case "ptu":
		return dataset.PTU(dataset.PTUParams{N: n, TProb: 0.5, UProb: 0.3, ExtraShare: 0.2, Branches: 3, Seed: 1}), nil
	case "rstg":
		return dataset.RSTG(dataset.DefaultRSTG(n)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (university, ptu, rstg)", name)
	}
}
