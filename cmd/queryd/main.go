// Command queryd is the multi-tenant query daemon: it loads a generated
// dataset, builds one engine per declared tenant over the shared catalog,
// and serves the service API over HTTP.
//
//	POST /query   X-API-Key header, {"query": "{ x | student(x) }"}
//	GET  /stats   service counters, per-tenant engine snapshots, recent requests
//	GET  /healthz liveness
//
// Usage:
//
//	queryd -dataset university -n 200 \
//	       -tenants 'alice:key-a:5000,bob:key-b:500:1048576'
//
// Each -tenants entry is name:apikey[:tuple-limit[:memory-budget-bytes]];
// a tenant's budgets are its admission control — a query that exceeds them
// is rejected with 429 and a typed resource payload. Omitted budgets mean
// unbounded.
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued requests are
// answered, new submissions get 503, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8991", "listen address (host:port; port 0 picks a free one)")
	ds := flag.String("dataset", "university", "dataset: university, ptu, rstg")
	n := flag.Int("n", 100, "dataset scale")
	tenantsFlag := flag.String("tenants", "demo:demo-key", "comma-separated name:apikey[:tuple-limit[:memory-budget]] entries")
	parallel := flag.Int("parallel", 1, "partition fan-out of every tenant engine (1 = serial)")
	cache := flag.Bool("cache", true, "enable each tenant's memoizing subplan cache")
	batchSize := flag.Int("batch-size", service.DefaultBatchSize, "flush a batch at this many requests")
	batchWait := flag.Duration("batch-wait", service.DefaultBatchMaxWait, "flush a non-empty batch after this wait")
	recent := flag.Int("recent", service.DefaultRecent, "per-request records kept for /stats")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	flag.Parse()

	cat, err := buildDataset(*ds, *n)
	if err != nil {
		return err
	}
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}

	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		return err
	}

	opts := []core.Option{core.WithParallelism(*parallel)}
	if *cache {
		opts = append(opts, core.WithPlanCache(0))
	}
	srv, err := service.NewServer(db, service.Config{
		Tenants:       tenants,
		BatchSize:     *batchSize,
		BatchMaxWait:  *batchWait,
		Recent:        *recent,
		EngineOptions: opts,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Printf("queryd: dataset %q (scale %d), %d tenant(s), listening on %s\n",
		*ds, *n, len(tenants), ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("queryd: %s — draining\n", sig)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("queryd: drained")
	return nil
}

// parseTenants parses the -tenants flag: comma-separated
// name:apikey[:tuple-limit[:memory-budget]] entries.
func parseTenants(s string) ([]service.TenantConfig, error) {
	var out []service.TenantConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("bad -tenants entry %q (want name:apikey[:tuple-limit[:memory-budget]])", entry)
		}
		tc := service.TenantConfig{Name: parts[0], APIKey: parts[1]}
		if len(parts) >= 3 && parts[2] != "" {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad tuple limit in -tenants entry %q", entry)
			}
			tc.TupleLimit = v
		}
		if len(parts) == 4 && parts[3] != "" {
			v, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad memory budget in -tenants entry %q", entry)
			}
			tc.MemoryBudget = v
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, errors.New("queryd: -tenants declared no tenants")
	}
	return out, nil
}

func buildDataset(name string, n int) (*storage.Catalog, error) {
	switch name {
	case "university":
		return dataset.University(dataset.DefaultUniversity(n)), nil
	case "ptu":
		return dataset.PTU(dataset.PTUParams{N: n, TProb: 0.5, UProb: 0.3, ExtraShare: 0.2, Branches: 3, Seed: 1}), nil
	case "rstg":
		return dataset.RSTG(dataset.DefaultRSTG(n)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (university, ptu, rstg)", name)
	}
}
