package main

import "testing"

// The smoke tests exercise run() in-process: the standalone entry point is
// a pure function of its arguments plus the working directory, which for a
// test binary is this package's source directory — inside the module, so
// import-path patterns resolve.

func TestVersionProbe(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Fatalf("-V=full exited %d, want 0", got)
	}
}

func TestListAnalyzers(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list exited %d, want 0", got)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if got := run([]string{"-only", "bogus"}); got != 2 {
		t.Fatalf("-only bogus exited %d, want 2", got)
	}
}

// TestCleanTree is the gate the CI check depends on: the production tree
// must lint clean.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	if got := run([]string{"repro/internal/...", "repro/cmd/..."}); got != 0 {
		t.Fatalf("lintrepro over the tree exited %d, want 0 (tree has findings)", got)
	}
}

// TestSeededBadFixtures pins the other half of the gate: each seeded-bad
// fixture must make the checker exit non-zero, so a regression that stops
// an analyzer from firing is caught.
func TestSeededBadFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("loads fixture packages through go list")
	}
	fixtures := []string{
		"iterclose", "govcharge", "errtaxonomy", "ctxfirst",
		"goroleak", "lockdiscipline", "atomicmix", "timeinject", "wiredrift",
		"directive",
	}
	for _, fx := range fixtures {
		pattern := "repro/internal/analyzers/testdata/src/" + fx
		if got := run([]string{pattern}); got != 1 {
			t.Errorf("lintrepro %s exited %d, want 1 (seeded findings not reported)", fx, got)
		}
	}
}

// TestTimingFlag smokes the -timing surface check.sh's lint budget relies
// on: the flag must not change the exit code.
func TestTimingFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a package through go list")
	}
	if got := run([]string{"-timing", "repro/internal/analyzers"}); got != 0 {
		t.Fatalf("-timing over a clean package exited %d, want 0", got)
	}
}
