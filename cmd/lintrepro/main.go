// Command lintrepro is the repository's invariant multichecker: it runs
// the internal/analyzers suite (iterclose, govcharge, errtaxonomy,
// ctxfirst, goroleak, lockdiscipline, atomicmix, timeinject, wiredrift)
// over Go packages and exits non-zero on findings.
//
// Two modes:
//
//	lintrepro [-only a,b] [-timing] [packages...]   # standalone; defaults to ./...
//	go vet -vettool=$(which lintrepro) ./...
//
// -timing prints each pass's cumulative wall clock across all packages to
// stderr after the run, so check.sh can keep the lint budget honest as the
// suite grows.
//
// The vettool mode implements the go vet unit-checker protocol: go vet
// invokes the tool once per package with a JSON config file (*.cfg) naming
// the sources and the export data of every dependency, and once with
// -V=full to fingerprint the tool for caching. Findings print as
// file:line:col: analyzer: message on stderr, matching go vet's own
// format, so editors and CI parse both modes identically.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes the tool's identity and flag surface before first use.
	// The version line must carry a buildID the go command can cache on; a
	// content hash of the executable serves, matching x/tools' unitchecker.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Printf("lintrepro version devel buildID=%s\n", selfID())
		return 0
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]") // no tool-specific flags in vettool mode
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetTool(args[0])
	}

	fs := flag.NewFlagSet("lintrepro", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	timing := fs.Bool("timing", false, "print per-analyzer wall-clock totals after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintrepro:", err)
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintrepro:", err)
		return 2
	}
	var timings map[string]time.Duration
	if *timing {
		timings = make(map[string]time.Duration)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analyzers.CheckPackageTimed(pkg, suite, timings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintrepro:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, relativize(d))
			findings++
		}
	}
	if *timing {
		var total time.Duration
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "lintrepro: timing %-14s %8.1fms\n", a.Name, float64(timings[a.Name].Microseconds())/1000)
			total += timings[a.Name]
		}
		fmt.Fprintf(os.Stderr, "lintrepro: timing %-14s %8.1fms over %d package(s)\n", "total", float64(total.Microseconds())/1000, len(pkgs))
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lintrepro: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selfID hashes the running executable so go vet's action cache
// invalidates when the tool is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func selectAnalyzers(only string) ([]*analyzers.Analyzer, error) {
	suite := analyzers.All()
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analyzers.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var picked []*analyzers.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			var have []string
			for _, s := range suite {
				have = append(have, s.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(have, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// relativize shortens absolute paths under the working directory, matching
// go vet's output style.
func relativize(d analyzers.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}

// vetConfig mirrors the JSON the go command hands a -vettool per package
// (cmd/go's vet action). Only the fields the suite needs are decoded.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one package under the go vet protocol.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintrepro:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lintrepro: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist even though this suite exports none:
	// go vet feeds it to dependent packages' runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lintrepro:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The production-invariant suite skips test scaffolding.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "lintrepro:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := analyzers.TypeCheckFiles(cfg.ImportPath, fset, files, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "lintrepro:", err)
		return 2
	}
	diags, err := analyzers.CheckPackage(pkg, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintrepro:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
