package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestFigure2Golden: the printed R₁ table must match the paper verbatim.
func TestFigure2Golden(t *testing.T) {
	out := capture(t, figure2)
	want := "R1 = P ⟕ T:\n  a\ta\n  b\tb\n  c\t∅\n  d\t∅\n"
	if !strings.Contains(out, want) {
		t.Fatalf("Fig. 2 table diverged from the paper:\n%s", out)
	}
}

// TestFigure3Golden: R₂ and the Q₁ answer set.
func TestFigure3Golden(t *testing.T) {
	out := capture(t, figure3)
	want := "R2 = R1 ⟕ U:\n  a\ta\ta\n  b\tb\t∅\n  c\t∅\tc\n  d\t∅\t∅\n"
	if !strings.Contains(out, want) {
		t.Fatalf("Fig. 3 table diverged from the paper:\n%s", out)
	}
	if !strings.Contains(out, "  a\n  b\n  c\n") {
		t.Fatalf("Q₁ answer must be {a,b,c}:\n%s", out)
	}
}

// TestFigure4Golden: the constrained chain's ⊥/∅ pattern and Q₂.
func TestFigure4Golden(t *testing.T) {
	out := capture(t, figure4)
	want := "  a\t⊥\t⊥\n  b\t⊥\t∅\n  c\t∅\t∅\n  d\t∅\t∅\n"
	if !strings.Contains(out, want) {
		t.Fatalf("Fig. 4 table diverged from the paper:\n%s", out)
	}
	if !strings.Contains(out, "  a\n  c\n  d\n") {
		t.Fatalf("Q₂ answer must be {a,c,d}:\n%s", out)
	}
}

// TestFigure1Golden: the loop algorithm behaviours.
func TestFigure1Golden(t *testing.T) {
	out := capture(t, figure1)
	for _, want := range []string{
		"= true  (reads=1",
		"= false (reads=3",
		"= 2 rows (reads=4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig. 1 behaviour diverged (missing %q):\n%s", want, out)
		}
	}
}

// TestExperimentsRun: every experiment artifact completes and prints its
// table header (smoke coverage for the harness itself; the numbers are
// recorded in EXPERIMENTS.md).
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tables are slow")
	}
	for _, a := range []struct {
		name string
		fn   func()
		want string
	}{
		{"e1", e1, "complement-join (paper)"},
		{"e4", e4, "miniscope"},
		{"e7", e7, "canonical:"},
		{"e10", e10, "Quel-style counting"},
	} {
		out := capture(t, a.fn)
		if !strings.Contains(out, a.want) {
			t.Errorf("%s output misses %q:\n%s", a.name, a.want, out)
		}
	}
}
