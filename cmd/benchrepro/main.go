// Command benchrepro regenerates every figure of the paper and the
// experiment tables E1-E8 of DESIGN.md, printing the paper's tables
// verbatim (Figs. 2-4) and deterministic cost counters for each claim.
// Timings live in the go benchmarks (go test -bench=.); this tool reports
// the machine-independent counters.
//
// Usage:
//
//	benchrepro             # everything
//	benchrepro -only fig4      # one artifact: fig1..fig4, e1..e16
//	benchrepro -only e13,e15   # a comma-separated subset
//	benchrepro -parallel 4 # run the query artifacts on the partitioned executor
//	benchrepro -json out.jsonl  # also write every table row as a JSON line
//	                            # (scripts/benchcmp.sh diffs two such files)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"text/tabwriter"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/translate"
)

// parallelism is the partition fan-out applied to every engine the query
// artifacts build (-parallel flag; 1 = serial). The counters are designed
// to be identical either way — e12 demonstrates exactly that.
var parallelism = 1

// jsonOut, when non-nil, receives one JSON line per table row (-json flag);
// scripts/benchcmp.sh diffs two such files counter by counter.
var jsonOut *os.File

func main() {
	only := flag.String("only", "", "restrict to a comma-separated list of artifacts: fig1..fig4, e1..e16")
	flag.IntVar(&parallelism, "parallel", 1, "partition fan-out of the hash-join family (1 = serial)")
	jsonPath := flag.String("json", "", "also append every table row as a JSON line to this file")
	flag.Parse()

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		jsonOut = f
	}

	artifacts := []struct {
		id  string
		fn  func()
		doc string
	}{
		{"fig1", figure1, "Fig. 1 — loop algorithms (closed ∃, closed ∀, open)"},
		{"fig2", figure2, "Fig. 2 — P, T, U and R₁ = P ⟕ T"},
		{"fig3", figure3, "Fig. 3 — R₂ = R₁ ⟕ U and query Q₁"},
		{"fig4", figure4, "Fig. 4 — R₃ constrained chain and query Q₂"},
		{"e1", e1, "E1 — complement-join vs difference+join (§3.1)"},
		{"e2", e2, "E2 — Proposition 4 cases, Bry vs Codd"},
		{"e3", e3, "E3 — disjunctive filter strategies (§3.3)"},
		{"e4", e4, "E4 — miniscope vs raw nesting (§2.2)"},
		{"e5", e5, "E5 — producer/filter choice (§2.3)"},
		{"e6", e6, "E6 — full pipeline vs Codd reduction"},
		{"e7", e7, "E7 — canonical forms of the paper's examples"},
		{"e8", e8, "E8 — emptiness-test early termination (§3.2)"},
		{"e9", e9, "E9 — indexed vs hash-building executor (ablation)"},
		{"e10", e10, "E10 — universal quantification: counting vs division vs complement-join"},
		{"e12", e12, "E12 — partitioned parallel executor: serial vs parallel counter parity"},
		{"e13", e13, "E13 — memoizing subplan cache on wide disjunctions (union strategy)"},
		{"e14", e14, "E14 — resource governor: overhead parity, budget trips, degradation"},
		{"e15", e15, "E15 — single-flight shared-spool evaluation under concurrent queries"},
		{"e16", e16, "E16 — columnar batch execution: block-size parity and parallel spool producers"},
	}
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToLower(id)); id != "" {
			wanted[id] = true
		}
	}
	ran := false
	for _, a := range artifacts {
		if len(wanted) > 0 && !wanted[a.id] {
			continue
		}
		fmt.Printf("================ %s ================\n%s\n\n", strings.ToUpper(a.id), a.doc)
		a.fn()
		fmt.Println()
		ran = true
	}
	if !ran {
		log.Fatalf("unknown artifact %q", *only)
	}
}

// --- fixtures ---------------------------------------------------------------

// ptuFixture is the exact database of Fig. 2.
func ptuFixture() *storage.Catalog {
	cat := storage.NewCatalog()
	p := cat.MustDefine("P", relation.NewSchema("v"))
	for _, s := range []string{"a", "b", "c", "d"} {
		p.InsertValues(relation.Str(s))
	}
	t := cat.MustDefine("T", relation.NewSchema("v"))
	for _, s := range []string{"a", "b", "e"} {
		t.InsertValues(relation.Str(s))
	}
	u := cat.MustDefine("U", relation.NewSchema("v"))
	for _, s := range []string{"a", "c", "f"} {
		u.InsertValues(relation.Str(s))
	}
	return cat
}

func scan(cat *storage.Catalog, name string) *algebra.Scan {
	r, err := cat.Relation(name)
	if err != nil {
		panic(err)
	}
	return algebra.NewScan(name, r.Schema())
}

func mustRun(cat *storage.Catalog, p algebra.Plan) (*relation.Relation, exec.Stats) {
	ctx := exec.NewContext(cat)
	out, err := exec.Run(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	return out, *ctx.Stats
}

func printRel(title string, r *relation.Relation) {
	fmt.Println(title)
	for _, t := range r.Tuples() {
		cells := make([]string, len(t))
		for i, v := range t {
			cells[i] = v.String()
		}
		fmt.Println("  " + strings.Join(cells, "\t"))
	}
}

type row struct {
	label string
	stats exec.Stats
	extra string
}

func printTable(header string, rows []row) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\treads\tcomparisons\tintermediates\tmaterializations\tresult\n", header)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%s\n", r.label,
			r.stats.BaseTuplesRead, r.stats.Comparisons, r.stats.IntermediateTuples,
			r.stats.Materializations, r.extra)
		writeJSONRow(header, r)
	}
	w.Flush()
}

// jsonRow is the line format of -json: one object per table row, keyed by
// table header + row label so two runs can be matched counter by counter.
// Counter keys are exactly the core.Snapshot wire names, so a bench row and
// a /stats snapshot speak the same vocabulary.
type jsonRow struct {
	Table             string `json:"table"`
	Label             string `json:"label"`
	Reads             int64  `json:"base_tuples_read"`
	Comparisons       int64  `json:"comparisons"`
	Intermediates     int64  `json:"intermediate_tuples"`
	Materialized      int64  `json:"materializations"`
	CacheHits         int64  `json:"cache_hits"`
	CacheMisses       int64  `json:"cache_misses"`
	TuplesReplayed    int64  `json:"cache_tuples_replayed"`
	TuplesSpooled     int64  `json:"cache_tuples_spooled"`
	DuplicatesAvoided int64  `json:"cache_duplicates_avoided"`
	SpoolsAbandoned   int64  `json:"cache_spools_abandoned"`
	// BatchesEmitted is deterministic for a fixed configuration (see
	// exec.Stats); AvgBatchFill is a derived gauge the gate ignores.
	BatchesEmitted int64   `json:"batches_emitted"`
	AvgBatchFill   float64 `json:"avg_batch_fill"`
	Result         string  `json:"result"`
}

func writeJSONRow(header string, r row) {
	if jsonOut == nil {
		return
	}
	line, err := json.Marshal(jsonRow{
		Table:             header,
		Label:             r.label,
		Reads:             r.stats.BaseTuplesRead,
		Comparisons:       r.stats.Comparisons,
		Intermediates:     r.stats.IntermediateTuples,
		Materialized:      r.stats.Materializations,
		CacheHits:         r.stats.CacheHits,
		CacheMisses:       r.stats.CacheMisses,
		TuplesReplayed:    r.stats.CacheTuplesReplayed,
		TuplesSpooled:     r.stats.CacheTuplesSpooled,
		DuplicatesAvoided: r.stats.CacheDuplicatesAvoided,
		SpoolsAbandoned:   r.stats.CacheSpoolsAbandoned,
		BatchesEmitted:    r.stats.BatchesEmitted,
		AvgBatchFill:      fillOf(r.stats),
		Result:            r.extra,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fmt.Fprintf(jsonOut, "%s\n", line); err != nil {
		log.Fatal(err)
	}
}

func universityDB(n int) *core.DB {
	cat := dataset.University(dataset.DefaultUniversity(n))
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	return db
}

func queryRow(db *core.DB, strat core.Strategy, opt translate.Options, label, input string) row {
	eng := core.NewEngine(db,
		core.WithStrategy(strat),
		core.WithTranslateOptions(opt),
		core.WithParallelism(parallelism),
	)
	res, err := eng.Query(input)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	extra := fmt.Sprintf("%v", res.Truth)
	if res.Open {
		extra = fmt.Sprintf("%d rows", res.Rows.Len())
	}
	return row{label: label, stats: res.Stats, extra: extra}
}

// --- figures ----------------------------------------------------------------

func figure1() {
	cat := ptuFixture()
	ev := loopeval.New(cat)
	// Fig. 1a: exists x in P: T(x)
	ok, err := ev.EvalClosed(parser.MustParse(`exists x: P(x) and T(x)`).Body, loopeval.Env{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1a  ∃x∈P: T(x)            = %-5v (reads=%d, stops at first witness)\n", ok, ev.Stats.BaseTuplesRead)

	ev = loopeval.New(cat)
	ok, err = ev.EvalClosed(parser.MustParse(`forall x: P(x) => T(x)`).Body, loopeval.Env{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1b  ∀x∈P: T(x)            = %-5v (reads=%d, stops at first counterexample)\n", ok, ev.Stats.BaseTuplesRead)

	ev = loopeval.New(cat)
	out, err := ev.EvalOpen(parser.MustParse(`{ x | P(x) and T(x) }`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1c  {x∈P | T(x)}          = %d rows (reads=%d, full scan: all answers needed)\n", out.Len(), ev.Stats.BaseTuplesRead)
}

func figure2() {
	cat := ptuFixture()
	for _, n := range []string{"P", "T", "U"} {
		r, _ := cat.Relation(n)
		printRel(n+":", r)
	}
	r1, _ := mustRun(cat, &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}})
	printRel("R1 = P ⟕ T:", r1)
}

func figure3() {
	cat := ptuFixture()
	r1 := &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	r2plan := &algebra.OuterJoin{Left: r1, Right: scan(cat, "U"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	r2, _ := mustRun(cat, r2plan)
	printRel("R2 = R1 ⟕ U:", r2)
	q1, st := mustRun(cat, &algebra.Project{
		Input: &algebra.Select{Input: r2plan, Pred: algebra.Or{Preds: []algebra.Pred{algebra.NotNull{Col: 1}, algebra.NotNull{Col: 2}}}},
		Cols:  []int{0},
	})
	printRel("Q1 = π₁(σ[2≠∅ ∨ 3≠∅](R2))   — P(x) ∧ (T(x) ∨ U(x)):", q1)
	fmt.Printf("cost: %s\n", st.String())
}

func figure4() {
	cat := ptuFixture()
	c1 := &algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	c2 := &algebra.ConstrainedOuterJoin{
		Left: c1, Right: scan(cat, "U"),
		On:         []algebra.ColPair{{Left: 0, Right: 0}},
		Constraint: []algebra.NullCond{{Col: 1, IsNull: false}},
	}
	r3, st := mustRun(cat, c2)
	printRel("R3 = [P ⟕⊥ T] ⟕⊥{2≠∅} U:", r3)
	fmt.Printf("cost: %s (U probed only for P-tuples with a T partner)\n", st.String())
	q2, _ := mustRun(cat, &algebra.Project{
		Input:   &algebra.Select{Input: c2, Pred: algebra.Or{Preds: []algebra.Pred{algebra.IsNull{Col: 1}, algebra.NotNull{Col: 2}}}},
		Cols:    []int{0},
		NoDedup: true,
	})
	printRel("Q2 = π₁(σ[2=∅ ∨ 3≠∅](R3))   — P(x) ∧ (¬T(x) ∨ U(x)):", q2)
}

// --- experiments --------------------------------------------------------------

func e1() {
	p := dataset.DefaultUniversity(10000)
	p.Lectures = 20
	p.AttendProb = 0.05
	cat := dataset.University(p)
	member, _ := cat.Relation("member")
	skill, _ := cat.Relation("skill")

	bry := translate.NewBry(cat)
	q, err := rewrite.Normalize(parser.MustParse(`{ x, z | member(x, z) and not skill(x, "db") }`))
	if err != nil {
		log.Fatal(err)
	}
	cplan, err := bry.TranslateOpen(q)
	if err != nil {
		log.Fatal(err)
	}
	_, cstats := mustRun(cat, cplan)

	mScan := algebra.NewScan("member", member.Schema())
	sScan := algebra.NewScan("skill", skill.Schema())
	diff := &algebra.Diff{
		Left:  &algebra.Project{Input: mScan, Cols: []int{0}},
		Right: &algebra.Project{Input: &algebra.Select{Input: sScan, Pred: algebra.CmpConst{Col: 1, Op: algebra.OpEq, Const: relation.Str("db")}}, Cols: []int{0}},
	}
	dplan := &algebra.Project{Input: &algebra.Join{Left: mScan, Right: diff, On: []algebra.ColPair{{Left: 0, Right: 0}}}, Cols: []int{0, 1}}
	dres, dstats := mustRun(cat, dplan)
	cres, _ := mustRun(cat, cplan)
	printTable("Q₂: member(x,z) ∧ ¬skill(x,db), |member|=10k", []row{
		{"complement-join (paper)", cstats, fmt.Sprintf("%d rows", cres.Len())},
		{"difference + join (conventional)", dstats, fmt.Sprintf("%d rows", dres.Len())},
	})
}

func e2() {
	cat := dataset.RSTG(dataset.DefaultRSTG(24))
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	cases := []struct{ id, q string }{
		{"case1", `{ x | exists y: R(x, y) and exists z: S(x, y, z) and G(x, y, z) }`},
		{"case2a", `{ x | exists y: R(x, y) and exists z: S(x, y, z) and not G(x, y, z) }`},
		{"case2b", `{ x | exists y: R(x, y) and exists z: T(y, z) and not G(x, y, z) }`},
		{"case3", `{ x | exists y: R(x, y) and not exists z: S(x, y, z) and G(x, y, z) }`},
		{"case4", `{ x | exists y: R(x, y) and not exists z: S(x, y, z) and not G(x, y, z) }`},
		{"case5", `{ x | exists y: R(x, y) and not exists z: T(y, z) and not G(x, y, z) }`},
	}
	var rows []row
	for _, c := range cases {
		rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{}, c.id+"/bry", c.q))
		rows = append(rows, queryRow(db, core.StrategyCodd, translate.Options{}, c.id+"/codd", c.q))
	}
	printTable("Proposition 4 cases (R/S/T/G, |x|=24)", rows)
}

func e3() {
	cat := dataset.PTU(dataset.PTUParams{N: 20000, TProb: 0.6, UProb: 0.2, ExtraShare: 0.25, Branches: 3, Seed: 11})
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x | P(x) and (T(x) or U(x) or T2(x)) }`
	qneg := `{ x | P(x) and (not T(x) or U(x)) }`
	var rows []row
	for _, s := range []struct {
		name  string
		strat translate.DisjFilterStrategy
	}{
		{"constrained outer-joins", translate.StrategyConstrainedOuterJoin},
		{"plain outer-joins", translate.StrategyOuterJoin},
		{"conventional unions", translate.StrategyUnion},
	} {
		rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{DisjunctiveFilters: s.strat}, "3-way/"+s.name, q))
	}
	for _, s := range []struct {
		name  string
		strat translate.DisjFilterStrategy
	}{
		{"constrained outer-joins", translate.StrategyConstrainedOuterJoin},
		{"plain outer-joins", translate.StrategyOuterJoin},
		{"conventional unions", translate.StrategyUnion},
	} {
		rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{DisjunctiveFilters: s.strat}, "negated/"+s.name, qneg))
	}
	printTable("disjunctive filters, |P|=20k", rows)
}

func e4() {
	p := dataset.DefaultUniversity(200)
	p.Lectures = 120
	p.AttendProb = 0.85 // dense attendance: the ¬ enrolled redundancy shows
	cat := dataset.University(p)
	// Enroll every student outside cs so the ¬enrolled(x,cs) filter is
	// true and, in the raw form, re-evaluated for every attended lecture.
	students, _ := cat.Relation("student")
	enr := relation.New("enrolled", relation.NewSchema("name", "dept"))
	for _, t := range students.Tuples() {
		enr.InsertValues(t[0], relation.Str("math"))
	}
	cat.Add(enr)
	raw := parser.MustParse(`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`)
	paperQ2 := parser.MustParse(`exists x: student(x) and (forall y: cs_lecture(y) => attends(x, y)) and not enrolled(x, "cs")`)
	canonical, err := rewrite.Normalize(raw)
	if err != nil {
		log.Fatal(err)
	}
	loopOn := func(q parser.Query) exec.Stats {
		ev := loopeval.New(cat)
		if _, err := ev.EvalClosed(q.Body, loopeval.Env{}); err != nil {
			log.Fatal(err)
		}
		return *ev.Stats
	}
	printTable("§2.2 Q₁, Fig. 1 interpreter, 200 students × 40 cs-lectures", []row{
		{"raw Q₁ (¬enrolled inside ∀y)", loopOn(raw), ""},
		{"paper's miniscope Q₂", loopOn(paperQ2), ""},
		{"canonical form (exact, incl. empty-range disjunct)", loopOn(canonical), ""},
	})
}

func e5() {
	p := dataset.DefaultUniversity(5000)
	p.Lectures = 20
	p.AttendProb = 0.05
	cat := dataset.University(p)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	rows := []row{
		queryRow(db, core.StrategyBry, translate.Options{}, "Q₄ kept filter disjunction",
			`{ x | prof(x) and (member(x, "cs") or skill(x, "math")) and speaks(x, "french") }`),
		queryRow(db, core.StrategyBry, translate.Options{}, "Q₅ hand-distributed",
			`{ x | (prof(x) and member(x, "cs") and speaks(x, "french")) or (prof(x) and skill(x, "math") and speaks(x, "french")) }`),
	}
	printTable("§2.3 producer/filter choice, 5000 students", rows)
}

func e6() {
	var rows []row
	for _, n := range []int{20, 60} {
		db := universityDB(n)
		for _, q := range []struct{ id, text string }{
			{"attends-all", `{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`},
			{"phd-outside", `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`},
		} {
			rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{}, fmt.Sprintf("%s/n=%d/bry", q.id, n), q.text))
			rows = append(rows, queryRow(db, core.StrategyCodd, translate.Options{}, fmt.Sprintf("%s/n=%d/codd", q.id, n), q.text))
		}
	}
	printTable("full pipeline vs Codd reduction", rows)
}

func e7() {
	inputs := []string{
		`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`,
		`exists x: ((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`,
		`exists x: professor(x) and (member(x, "cs") or skill(x, "math")) and speaks(x, "french")`,
		`forall x: student(x) => exists y: attends(x, y)`,
	}
	for _, in := range inputs {
		var trace []rewrite.Step
		e := rewrite.Engine{Trace: &trace}
		out, err := e.Normalize(parser.MustParse(in))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw:       %s\n", in)
		fmt.Printf("canonical: %s\n", out.Body)
		fmt.Printf("rules:     ")
		for i, s := range trace {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(s.Rule)
		}
		fmt.Println()
		fmt.Println()
	}
}

func e8() {
	var rows []row
	for _, witness := range []bool{true, false} {
		p := dataset.DefaultUniversity(1000)
		p.Lectures = 100
		if !witness {
			p.AttendProb = 0
		}
		cat := dataset.University(p)
		db := core.NewDB()
		for _, name := range cat.Names() {
			r, _ := cat.Relation(name)
			db.Catalog().Add(r)
		}
		rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{},
			fmt.Sprintf("witness=%v/emptiness-test", witness),
			`exists x: student(x) and exists y: cs_lecture(y) and attends(x, y)`))
		rows = append(rows, queryRow(db, core.StrategyBry, translate.Options{},
			fmt.Sprintf("witness=%v/materialize-all", witness),
			`{ x | student(x) and exists y: cs_lecture(y) and attends(x, y) }`))
	}
	printTable("§3.2 emptiness tests, 1000 students", rows)
}

func e9() {
	p := dataset.DefaultUniversity(2000)
	p.Lectures = 200
	cat := dataset.University(p)
	var rows []row
	for _, q := range []struct{ id, text string }{
		{"closed-exists", `exists x: student(x) and exists y: cs_lecture(y) and attends(x, y)`},
		{"open-negation", `{ x, z | member(x, z) and not skill(x, "db") }`},
	} {
		nq, err := rewrite.Normalize(parser.MustParse(q.text))
		if err != nil {
			log.Fatal(err)
		}
		for _, indexed := range []bool{false, true} {
			label := q.id + "/hash"
			ctx := exec.NewContext(cat)
			if indexed {
				label = q.id + "/indexed"
				ctx = exec.NewIndexedContext(cat)
			}
			plan, bp, err := translate.NewBry(cat).Translate(nq)
			if err != nil {
				log.Fatal(err)
			}
			extra := ""
			if plan != nil {
				out, err := exec.Run(ctx, plan)
				if err != nil {
					log.Fatal(err)
				}
				extra = fmt.Sprintf("%d rows", out.Len())
			} else {
				ok, err := exec.EvalBool(ctx, bp)
				if err != nil {
					log.Fatal(err)
				}
				extra = fmt.Sprintf("%v", ok)
			}
			rows = append(rows, row{label: label, stats: *ctx.Stats, extra: extra})
		}
	}
	printTable("indexed executor ablation, 2000 students", rows)
}

func e10() {
	cat := dataset.University(dataset.DefaultUniversity(1000))
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`
	rows := []row{
		queryRow(db, core.StrategyBry, translate.Options{}, "division (paper case 5 + vacuous fix)", q),
		queryRow(db, core.StrategyBry, translate.Options{Universal: translate.UniversalComplementJoin}, "seeded complement-join", q),
	}
	// The Quel-style counting plan (paper §1): compare per-student counts
	// of attended cs lectures against the total count.
	att, _ := cat.Relation("attends")
	lec, _ := cat.Relation("cs_lecture")
	st, _ := cat.Relation("student")
	perStudent := &algebra.GroupCount{
		Input: &algebra.SemiJoin{
			Left:  algebra.NewScan("attends", att.Schema()),
			Right: algebra.NewScan("cs_lecture", lec.Schema()),
			On:    []algebra.ColPair{{Left: 1, Right: 0}},
		},
		GroupCols: []int{0},
	}
	total := &algebra.GroupCount{Input: algebra.NewScan("cs_lecture", lec.Schema())}
	matching := &algebra.Project{
		Input: &algebra.Join{Left: perStudent, Right: total, On: []algebra.ColPair{{Left: 1, Right: 0}}},
		Cols:  []int{0},
	}
	quel := &algebra.SemiJoin{Left: algebra.NewScan("student", st.Schema()), Right: matching, On: []algebra.ColPair{{Left: 0, Right: 0}}}
	out, stats := mustRun(cat, quel)
	rows = append(rows, row{label: "Quel-style counting (§1)", stats: stats, extra: fmt.Sprintf("%d rows", out.Len())})
	printTable("universal quantification strategies, 1000 students", rows)
}

// e12 runs a join-heavy query serially and under increasing partition
// fan-outs: results and counters must agree (the partitioned executor
// charges identical work, sharded per worker and merged lock-free), with
// only the partition counter recording the fan-out. Timings live in the go
// benchmarks (go test -bench E12).
func e12() {
	p := dataset.DefaultUniversity(3000)
	p.Lectures = 60
	p.AttendProb = 0.1
	cat := dataset.University(p)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x, z | member(x, z) and not skill(x, "db") and exists y: cs_lecture(y) and attends(x, y) }`
	var rows []row
	for _, par := range []int{1, 2, 4, 8} {
		eng := core.NewEngine(db, core.WithParallelism(par))
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			label: fmt.Sprintf("parallel=%d", par),
			stats: res.Stats,
			extra: fmt.Sprintf("%d rows, partitions=%d", res.Rows.Len(), res.Stats.PartitionsExecuted),
		})
	}
	printTable("partitioned executor parity, 3000 students", rows)
}

// e13 shows the memoizing subplan cache on the union disjunctive-filter
// strategy: splitting P(x) ∧ T(x) ∧ (U(x) ∨ T2(x) ∨ T3(x) ∨ T4(x)) into a
// union re-derives the P ⋈ T producer in every disjunct, so the shared-
// subtree pass spools it once and replays it w−1 times; a second (warm) run
// replays the whole answer from the engine-held memo without touching base
// relations.
func e13() {
	cat := dataset.PTU(dataset.PTUParams{N: 4000, TProb: 0.5, UProb: 0.1, ExtraShare: 0.05, Branches: 5, Seed: 13})
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x | P(x) and T(x) and (U(x) or T2(x) or T3(x) or T4(x)) }`
	run := func(eng *core.Engine, label string) row {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		return row{label: label, stats: res.Stats,
			extra: fmt.Sprintf("%d rows, hits=%d misses=%d replayed=%d spooled=%d",
				res.Rows.Len(), res.Stats.CacheHits, res.Stats.CacheMisses,
				res.Stats.CacheTuplesReplayed, res.Stats.CacheTuplesSpooled)}
	}
	opts := []core.Option{
		core.WithDisjunctiveFilters(translate.StrategyUnion),
		core.WithParallelism(parallelism),
	}
	off := core.NewEngine(db, opts...)
	on := core.NewEngine(db, append([]core.Option{core.WithPlanCache(0)}, opts...)...)
	rows := []row{
		run(off, "cache off"),
		run(on, "cache cold"),
		run(on, "cache warm"),
	}
	printTable("memoizing subplan cache, width-4 disjunction, |P|=4000, union strategy", rows)
}

// e14 shows the resource governor's three behaviours on deterministic
// counters (wall-clock overhead lives in go test -bench E14):
//
//  1. parity — a generous budget leaves every counter of the E12 workload
//     identical to the ungoverned run (accounting is observation only);
//  2. trips — the Codd reduction of a negated query blows past a tuple
//     budget the Bry translation of the same query fits in comfortably;
//  3. degradation — under memory pressure the engine sheds warm plan-cache
//     entries, credits the freed bytes, and still answers.
func e14() {
	p := dataset.DefaultUniversity(3000)
	p.Lectures = 60
	p.AttendProb = 0.1
	cat := dataset.University(p)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x, z | member(x, z) and not skill(x, "db") and exists y: cs_lecture(y) and attends(x, y) }`
	run := func(label string, opts ...core.Option) row {
		eng := core.NewEngine(db, append([]core.Option{core.WithParallelism(parallelism)}, opts...)...)
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		return row{label: label, stats: res.Stats, extra: fmt.Sprintf("%d rows", res.Rows.Len())}
	}
	rows := []row{
		run("ungoverned"),
		run("governed (generous budgets)", core.WithTupleLimit(1<<40), core.WithMemoryBudget(1<<40)),
	}

	// Budget trip: the same negated query under both translations, one
	// tuple budget. Codd's domain products blow past it; Bry fits.
	small := universityDB(60)
	qneg := `{ x | student(x) and not exists y: attends(x, y) }`
	const budget = 2000
	codd := core.NewEngine(small, core.WithStrategy(core.StrategyCodd), core.WithTupleLimit(budget))
	if _, err := codd.Query(qneg); err != nil {
		rows = append(rows, row{label: fmt.Sprintf("codd, %d-tuple budget", budget),
			extra: fmt.Sprintf("aborted: %v", err)})
	} else {
		rows = append(rows, row{label: fmt.Sprintf("codd, %d-tuple budget", budget), extra: "UNEXPECTED: fit"})
	}
	bry := core.NewEngine(small, core.WithTupleLimit(budget))
	bres, err := bry.Query(qneg)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{label: fmt.Sprintf("bry, %d-tuple budget", budget), stats: bres.Stats,
		extra: fmt.Sprintf("%d rows", bres.Rows.Len())})

	// Graceful degradation: warm the plan cache, then query under a memory
	// budget smaller than the warm entry — the engine sheds it and answers.
	qpos := `{ x | student(x) and exists y: attends(x, y) }`
	mem := core.NewEngine(small, core.WithPlanCache(0))
	if _, err := mem.Query(qpos); err != nil {
		log.Fatal(err)
	}
	mem.Configure(core.WithMemoryBudget(2048))
	mres, err := mem.Query(qpos)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{label: "2048-byte budget vs warm cache", stats: mres.Stats,
		extra: fmt.Sprintf("%d rows, cache entries shed=%d", mres.Rows.Len(), mres.Stats.DegradedEvictions)})
	printTable("resource governor, E12 workload + Codd blowup, 3000 students", rows)
}

// e15 pins the single-flight cooperative spool on deterministic counters
// (wall clock lives in go test -bench E15): six concurrent cold queries of
// the E13 workload either each carry their own memo — so every one pays the
// full evaluation, the pre-single-flight behaviour — or share one engine
// memo, where exactly one run is elected producer and the other five stream
// from its in-flight spool or replay the published entry. Whether a given
// run streams (duplicate avoided) or replays (hit) depends on goroutine
// scheduling, so the table folds both into one "shared" count, reported as
// cache_hits in -json to keep two runs diffable.
func e15() {
	cat := dataset.PTU(dataset.PTUParams{N: 4000, TProb: 0.5, UProb: 0.1, ExtraShare: 0.05, Branches: 5, Seed: 13})
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x | P(x) and T(x) and (U(x) or T2(x) or T3(x) or T4(x)) }`
	const n = 6
	opts := []core.Option{
		core.WithDisjunctiveFilters(translate.StrategyUnion),
		core.WithParallelism(parallelism),
	}
	newCached := func() *core.Engine {
		return core.NewEngine(db, append([]core.Option{core.WithPlanCache(0)}, opts...)...)
	}

	ref, err := newCached().Query(q)
	if err != nil {
		log.Fatal(err)
	}

	runConcurrent := func(label string, engineFor func(int) *core.Engine) row {
		results := make([]*core.Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			i := i
			eng := engineFor(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				results[i], errs[i] = eng.Query(q)
			}()
		}
		close(start)
		wg.Wait()
		var agg exec.Stats
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				log.Fatalf("%s run %d: %v", label, i, errs[i])
			}
			agg.Add(results[i].Stats)
		}
		shared := agg.CacheHits + agg.CacheDuplicatesAvoided
		agg.CacheHits = shared
		agg.CacheDuplicatesAvoided = 0
		return row{label: label, stats: agg,
			extra: fmt.Sprintf("%d rows each, shared=%d spooled=%d abandoned=%d",
				results[0].Rows.Len(), shared, agg.CacheTuplesSpooled, agg.CacheSpoolsAbandoned)}
	}

	perQuery := make([]*core.Engine, n)
	for i := range perQuery {
		perQuery[i] = newCached()
	}
	one := newCached()
	rows := []row{
		{label: "single cold run (reference)", stats: ref.Stats, extra: fmt.Sprintf("%d rows", ref.Rows.Len())},
		runConcurrent(fmt.Sprintf("%d concurrent, per-query memos (duplicate evaluation)", n),
			func(i int) *core.Engine { return perQuery[i] }),
		runConcurrent(fmt.Sprintf("%d concurrent, one single-flight memo", n),
			func(int) *core.Engine { return one }),
	}
	printTable("single-flight shared spools, E13 workload, 6 concurrent cold queries", rows)
}

// fillOf derives the average block fill of one stats record (0 when the
// tuple-at-a-time executor ran).
func fillOf(st exec.Stats) float64 {
	if st.BatchesEmitted == 0 {
		return 0
	}
	return float64(st.BatchTuples) / float64(st.BatchesEmitted)
}

// e16 pins the columnar batch executor on deterministic counters (wall
// clock lives in go test -bench E16). First half: the E12 workload runs
// serially under block capacities off/1/64/1024 — every logical counter is
// identical across the four rows, only batches_emitted and the fill gauge
// move, which is the batch executor's correctness contract. Second half:
// the E15 single-flight workload runs with the elected producer's
// partition workers filling the shared spool in parallel; the logical
// counters (after the e15-style hit/duplicate fold) match the serial-
// producer run, and batches_emitted stays deterministic because only
// producing operators count blocks (replay and single-flight consumption
// do not).
func e16() {
	p := dataset.DefaultUniversity(3000)
	p.Lectures = 60
	p.AttendProb = 0.1
	cat := dataset.University(p)
	db := core.NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	q := `{ x, z | member(x, z) and not skill(x, "db") and exists y: cs_lecture(y) and attends(x, y) }`
	var rows []row
	for _, bs := range []int{-1, 1, 64, 1024} {
		label := fmt.Sprintf("batch=%d", bs)
		if bs < 0 {
			label = "batch=off (tuple-at-a-time)"
		}
		eng := core.NewEngine(db, core.WithBatchSize(bs))
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{label: label, stats: res.Stats,
			extra: fmt.Sprintf("%d rows, batches=%d fill=%.1f",
				res.Rows.Len(), res.Stats.BatchesEmitted, fillOf(res.Stats))})
	}
	printTable("batch-size counter parity, E12 workload, 3000 students", rows)
	fmt.Println()

	// Parallel partitioned producers under single-flight sharing: 6
	// concurrent cold queries of the E13 workload against one shared memo,
	// with the join family partitioned 4 ways. The elected producer streams
	// its partition outputs into the shared spool as workers finish.
	pcat := dataset.PTU(dataset.PTUParams{N: 4000, TProb: 0.5, UProb: 0.1, ExtraShare: 0.05, Branches: 5, Seed: 13})
	pdb := core.NewDB()
	for _, name := range pcat.Names() {
		r, _ := pcat.Relation(name)
		pdb.Catalog().Add(r)
	}
	pq := `{ x | P(x) and T(x) and (U(x) or T2(x) or T3(x) or T4(x)) }`
	const n = 6
	runConcurrent := func(label string, par int) row {
		eng := core.NewEngine(pdb,
			core.WithDisjunctiveFilters(translate.StrategyUnion),
			core.WithPlanCache(0),
			core.WithParallelism(par),
		)
		results := make([]*core.Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				results[i], errs[i] = eng.Query(pq)
			}()
		}
		close(start)
		wg.Wait()
		var agg exec.Stats
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				log.Fatalf("%s run %d: %v", label, i, errs[i])
			}
			agg.Add(results[i].Stats)
		}
		// Streaming vs replaying is scheduling-dependent; fold as in e15.
		shared := agg.CacheHits + agg.CacheDuplicatesAvoided
		agg.CacheHits = shared
		agg.CacheDuplicatesAvoided = 0
		return row{label: label, stats: agg,
			extra: fmt.Sprintf("%d rows each, shared=%d batches=%d fill=%.1f",
				results[0].Rows.Len(), shared, agg.BatchesEmitted, fillOf(agg))}
	}
	printTable("parallel partitioned producers, E13 workload, 6 concurrent cold queries",
		[]row{
			runConcurrent("serial producer (parallel=1)", 1),
			runConcurrent("parallel producers (parallel=4)", 4),
		})
}
