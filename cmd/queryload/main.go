// Command queryload is the chaos-driven load harness for queryd: it drives
// N concurrent clients against a running daemon — open-loop (a fixed
// arrival rate the server must absorb or shed) or closed-loop (each client
// fires back-to-back) — and reports what the overload-resilience layer did
// about it: latency percentiles, shed/breaker/degraded/timeout counts,
// client retries, and goodput. After the run it fetches /stats and
// reconciles the server's counters against what the clients observed —
// globally and per tenant.
//
// Usage:
//
//	queryload -base http://localhost:8991 -apikeys demo-key \
//	          -clients 8 -rate 400 -duration 5s
//	queryload -base ... -apikeys polite-key -rate 20 \
//	          -abuser abuser-key:2000 -duration 5s
//	queryload -base ... -clients 4 -duration 3s -json run.jsonl
//
// -abuser runs dedicated open-loop floods next to the main mix: each
// key:rps entry hammers the server at its own rate with the same query
// mix, which is how the fairness of the per-tenant scheduler is measured —
// the polite keys' goodput and percentiles are reported separately from
// the abusers', and per-tenant sheds are reconciled against the server's
// per_tenant ledger.
//
// Latency is measured from intended arrival time, not send time, so
// client-side queueing under overload counts against the server — the
// standard open-loop correction for coordinated omission.
//
// With -json the summary is appended as flat one-line objects in the same
// table/label row format benchrepro emits (one global row plus one row per
// tenant, labelled label/tenant), so scripts/benchcmp.sh can diff two runs
// counter by counter.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// defaultQueries is the built-in university-dataset mix: a cheap lookup, a
// negation that plans real work, and a universally quantified query — three
// very different evaluation costs, so overload hits them unevenly.
const defaultQueries = `{ x | student(x) };` +
	`{ x | student(x) and not exists y: attends(x, y) };` +
	`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// tally is the classified outcome count of one run (or one key's slice of it).
type tally struct {
	requests    int64
	ok          int64
	shed        int64
	rateLimited int64 // the rate-limit subset of shed
	breaker     int64
	degraded    int64
	timeout     int64
	resource    int64
	cancelled   int64
	other       int64
}

// outcome is one finished request as the harness saw it.
type outcome struct {
	key     string        // the API key that issued it
	tenant  string        // tenant name from the response ("" when it failed)
	latency time.Duration // intended arrival → terminal response
	ok      bool
	kind    string // taxonomy kind for failures ("" on success)
	reason  string // shed reason for kind "shed" (sojourn/queue-full/rate-limit)
}

// abuserSpec is one -abuser entry: a dedicated open-loop flood.
type abuserSpec struct {
	key  string
	rate float64
}

func run() error {
	base := flag.String("base", "http://localhost:8991", "queryd base URL")
	apiKeys := flag.String("apikeys", "demo-key", "comma-separated tenant API keys; clients round-robin across them")
	clients := flag.Int("clients", 8, "closed-loop worker count; in open-loop mode the cap on in-flight requests is -max-inflight")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/sec across -apikeys (0 = closed loop over -clients workers)")
	abuserFlag := flag.String("abuser", "", "comma-separated key:rps floods run next to the main mix, each at its own open-loop rate")
	maxInflight := flag.Int("max-inflight", 1024, "open-loop cap on concurrently in-flight requests per generator (the harness's own protection, not the server's)")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	queriesFlag := flag.String("queries", defaultQueries, "semicolon-separated query mix; clients round-robin across it")
	deadline := flag.Duration("deadline", 0, "per-request deadline budget sent as "+service.DeadlineHeader+" (0 = server default)")
	retries := flag.Int("retries", service.DefaultMaxRetries, "per-request retry budget for overload rejections; -1 disables")
	label := flag.String("label", "summary", "row label for -json output")
	jsonPath := flag.String("json", "", "append the run summary as JSON lines to this file")
	flag.Parse()

	keys := splitList(*apiKeys, ",")
	queries := splitList(*queriesFlag, ";")
	if len(keys) == 0 || len(queries) == 0 || *clients < 1 {
		return fmt.Errorf("queryload: need at least one API key, one query and one client")
	}
	abusers, err := parseAbusers(*abuserFlag)
	if err != nil {
		return err
	}

	mkClient := func(key string) *service.Client {
		// Each key gets its own transport with a deep idle pool: the
		// default two idle conns per host would make the harness churn
		// connections under open-loop load, and a flooding key's churn
		// would contend with the polite keys' pool — the client-side
		// interference would then masquerade as server unfairness.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 2048
		tr.MaxIdleConnsPerHost = 2048
		return &service.Client{
			Base:       strings.TrimRight(*base, "/"),
			APIKey:     key,
			HTTP:       &http.Client{Transport: tr},
			MaxRetries: *retries,
			Deadline:   *deadline,
		}
	}
	// One retrying client per API key: retry counts aggregate per tenant.
	clis := make([]*service.Client, len(keys))
	for i, k := range keys {
		clis[i] = mkClient(k)
	}
	abuserClis := make([]*service.Client, len(abusers))
	for i, a := range abusers {
		abuserClis[i] = mkClient(a.key)
	}

	ctx := context.Background()
	before, err := clis[0].Stats(ctx)
	if err != nil {
		return fmt.Errorf("queryload: cannot reach %s: %w", *base, err)
	}

	fmt.Printf("queryload: %d client(s) against %s for %v", *clients, *base, *duration)
	if *rate > 0 {
		fmt.Printf(", open loop at %.0f req/s", *rate)
	} else {
		fmt.Printf(", closed loop")
	}
	for _, a := range abusers {
		fmt.Printf(", abuser %s at %.0f req/s", a.key, a.rate)
	}
	fmt.Println()

	outcomes := drive(ctx, clis, abuserClis, abusers, queries, *clients, *maxInflight, *rate, *duration)

	after, err := clis[0].Stats(ctx)
	if err != nil {
		return fmt.Errorf("queryload: /stats after run: %w", err)
	}

	var retried int64
	for _, c := range append(append([]*service.Client{}, clis...), abuserClis...) {
		retried += c.RetryCount()
	}
	t := classify(outcomes)
	report(t, outcomes, retried, *duration)
	reportPerKey(outcomes, *duration)
	reconcile(t, retried, before, after, outcomes)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *label, t, outcomes, retried, *duration, before.Service, after.Service); err != nil {
			return err
		}
	}
	return nil
}

// parseAbusers parses -abuser: comma-separated key:rps entries.
func parseAbusers(s string) ([]abuserSpec, error) {
	var out []abuserSpec
	for _, entry := range splitList(s, ",") {
		key, rateStr, ok := strings.Cut(entry, ":")
		if !ok || key == "" {
			return nil, fmt.Errorf("queryload: bad -abuser entry %q (want key:rps)", entry)
		}
		r, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("queryload: bad -abuser rate in %q (want a positive number)", entry)
		}
		out = append(out, abuserSpec{key: key, rate: r})
	}
	return out, nil
}

// drive generates the load and returns every terminal outcome. Open-loop
// generators launch each arrival independently at its intended time — in-
// flight requests pile up when the server is slow, which is exactly what
// pushes a tenant's queue into its admission controller's shedding regime;
// a request delayed past its intended arrival pays that delay in its
// reported latency. Each -abuser entry runs its own open-loop generator at
// its own rate, concurrent with the main mix.
func drive(ctx context.Context, clis, abuserClis []*service.Client, abusers []abuserSpec, queries []string, workers, maxInflight int, rate float64, duration time.Duration) []outcome {
	var (
		mu  sync.Mutex
		out []outcome
	)
	record := func(o outcome) {
		mu.Lock()
		out = append(out, o)
		mu.Unlock()
	}
	issue := func(cli *service.Client, query string, intended time.Time) {
		qr, err := cli.Query(ctx, query)
		o := outcome{key: cli.APIKey, latency: time.Since(intended)}
		switch {
		case err == nil && qr != nil:
			o.ok = true
			o.tenant = qr.Tenant
		case err == nil:
			o.kind = "internal"
		default:
			o.kind, o.reason = errKind(err)
		}
		record(o)
	}

	stop := time.Now().Add(duration)
	var wg sync.WaitGroup

	// The abuser floods: one dedicated open-loop generator per entry.
	for i, a := range abusers {
		cli := abuserClis[i]
		wg.Add(1)
		go func(cli *service.Client, rate float64) {
			defer wg.Done()
			var seq atomic.Int64
			openLoop(stop, rate, maxInflight, cli.APIKey, func(intended time.Time) {
				n := seq.Add(1) - 1
				issue(cli, queries[int(n)%len(queries)], intended)
			})
		}(cli, a.rate)
	}

	// The main mix over -apikeys.
	var seq atomic.Int64
	mixIssue := func(intended time.Time) {
		n := seq.Add(1) - 1
		issue(clis[int(n)%len(clis)], queries[int(n)%len(queries)], intended)
	}
	if rate <= 0 {
		// Closed loop: each worker fires back-to-back until time is up.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					mixIssue(time.Now())
				}
			}()
		}
	} else {
		wg.Add(1)
		go func() {
			defer wg.Done()
			openLoop(stop, rate, maxInflight, "mix", mixIssue)
		}()
	}
	wg.Wait()
	return out
}

// openLoop launches arrivals at rate until stop, each at its intended time,
// like unsynchronized real users — outstanding requests are not capped by a
// worker pool (only by maxInflight, the harness's own fuse), so a slow
// server accumulates in-flight work instead of silently slowing the
// generator down (coordinated omission). Blocks until every launched
// request has finished.
func openLoop(stop time.Time, rate float64, maxInflight int, who string, issue func(intended time.Time)) {
	if maxInflight < 1 {
		maxInflight = 1
	}
	inflight := make(chan struct{}, maxInflight)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var wg sync.WaitGroup
	var skipped int64
	tick := time.NewTicker(interval)
	defer tick.Stop()
	next := time.Now()
	for time.Now().Before(stop) {
		<-tick.C
		// Launch every arrival whose intended time has passed, so a coarse
		// ticker still realizes the configured rate.
		for now := time.Now(); next.Before(now) && next.Before(stop); next = next.Add(interval) {
			select {
			case inflight <- struct{}{}:
			default:
				skipped++
				continue
			}
			wg.Add(1)
			go func(intended time.Time) {
				defer wg.Done()
				defer func() { <-inflight }()
				issue(intended)
			}(next)
		}
	}
	wg.Wait()
	if skipped > 0 {
		fmt.Printf("  (open-loop fuse %s: %d arrival(s) dropped at %d in-flight — raise -max-inflight or lower the rate)\n", who, skipped, maxInflight)
	}
}

// errKind maps a client error to the server's taxonomy kind and, for sheds,
// the reason splitting the defense lines.
func errKind(err error) (kind, reason string) {
	var re *service.RemoteError
	if errors.As(err, &re) {
		if re.Detail.Kind != "" {
			return re.Detail.Kind, re.Detail.Reason
		}
		return fmt.Sprintf("http_%d", re.Status), ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout", ""
	}
	if errors.Is(err, context.Canceled) {
		return "cancelled", ""
	}
	return "transport", ""
}

// classify folds the outcomes into the tally.
func classify(outcomes []outcome) tally {
	var t tally
	t.requests = int64(len(outcomes))
	for _, o := range outcomes {
		switch {
		case o.ok:
			t.ok++
		case o.kind == "shed":
			t.shed++
			if o.reason == service.ShedReasonRateLimit {
				t.rateLimited++
			}
		case o.kind == "breaker":
			t.breaker++
		case o.kind == "degraded":
			t.degraded++
		case o.kind == "timeout":
			t.timeout++
		case o.kind == "resource":
			t.resource++
		case o.kind == "cancelled":
			t.cancelled++
		default:
			t.other++
		}
	}
	return t
}

// keyTenants maps each API key to the tenant name its successful responses
// reported (keys with no success stay unmapped).
func keyTenants(outcomes []outcome) map[string]string {
	m := make(map[string]string)
	for _, o := range outcomes {
		if o.tenant != "" {
			m[o.key] = o.tenant
		}
	}
	return m
}

// percentile returns the p-th percentile of sorted durations (p in [0,100]).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// okLatencies returns the sorted latencies of successful requests.
func okLatencies(outcomes []outcome) []time.Duration {
	lat := make([]time.Duration, 0, len(outcomes))
	for _, o := range outcomes {
		if o.ok {
			lat = append(lat, o.latency)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat
}

func report(t tally, outcomes []outcome, retried int64, duration time.Duration) {
	goodput := float64(t.ok) / duration.Seconds()
	okPct := 0.0
	if t.requests > 0 {
		okPct = 100 * float64(t.ok) / float64(t.requests)
	}
	fmt.Printf("  requests %d  ok %d (%.1f%%)  goodput %.1f/s  retries %d\n",
		t.requests, t.ok, okPct, goodput, retried)
	fmt.Printf("  rejected: shed %d (rate-limited %d)  breaker %d  degraded %d  timeout %d  resource %d  cancelled %d  other %d\n",
		t.shed, t.rateLimited, t.breaker, t.degraded, t.timeout, t.resource, t.cancelled, t.other)
	lat := okLatencies(outcomes)
	if len(lat) > 0 {
		fmt.Printf("  latency (ok, from intended arrival): p50 %v  p95 %v  p99 %v  max %v\n",
			percentile(lat, 50).Round(time.Microsecond), percentile(lat, 95).Round(time.Microsecond),
			percentile(lat, 99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	}
}

// reportPerKey prints one fairness line per API key: the per-tenant view
// that shows whether a flood hurt anyone but the flooder. The line format
// is fixed (scripts parse it): tenant <name> (<key>): requests N ok N
// (P%) goodput G/s shed N rate_limited N p50 D p95 D p99 D.
func reportPerKey(outcomes []outcome, duration time.Duration) {
	byKey := make(map[string][]outcome)
	var keys []string
	for _, o := range outcomes {
		if _, seen := byKey[o.key]; !seen {
			keys = append(keys, o.key)
		}
		byKey[o.key] = append(byKey[o.key], o)
	}
	if len(keys) < 2 {
		return // one key: the global summary already is the per-tenant view
	}
	sort.Strings(keys)
	names := keyTenants(outcomes)
	for _, key := range keys {
		group := byKey[key]
		kt := classify(group)
		name := names[key]
		if name == "" {
			name = "?"
		}
		okPct := 0.0
		if kt.requests > 0 {
			okPct = 100 * float64(kt.ok) / float64(kt.requests)
		}
		lat := okLatencies(group)
		fmt.Printf("  tenant %s (%s): requests %d ok %d (%.1f%%) goodput %.1f/s shed %d rate_limited %d p50 %v p95 %v p99 %v\n",
			name, key, kt.requests, kt.ok, okPct, float64(kt.ok)/duration.Seconds(), kt.shed, kt.rateLimited,
			percentile(lat, 50).Round(time.Microsecond), percentile(lat, 95).Round(time.Microsecond),
			percentile(lat, 99).Round(time.Microsecond))
	}
}

// reconcile diffs the server's counters across the run window against the
// clients' own view. Every client attempt (first tries plus retries) that
// reached the server is one server-side request; sheds, breaker rejections
// and deadline blowouts must not exceed what the server recorded — the
// clients cannot see MORE rejections than the server handed out. (They can
// see fewer: retried-away rejections are absorbed inside the client.) The
// same bound holds per tenant against the server's per_tenant ledger.
func reconcile(t tally, retried int64, beforeR, afterR *service.StatsReport, outcomes []outcome) {
	before, after := beforeR.Service, afterR.Service
	names := keyTenants(outcomes)
	reqs := after.Requests - before.Requests
	sheds := after.Sheds - before.Sheds
	breaker := after.BreakerRejected - before.BreakerRejected
	deadlines := after.DeadlineExceeded - before.DeadlineExceeded
	attempts := t.requests + retried
	fmt.Printf("  server window: requests %d  sheds %d  rate_limited %d  breaker_rejected %d  deadline_exceeded %d  breaker opened/half/closed %d/%d/%d  degraded entries %d\n",
		reqs, sheds, after.RateLimited-before.RateLimited, breaker, deadlines,
		after.BreakerOpened-before.BreakerOpened,
		after.BreakerHalfOpened-before.BreakerHalfOpened,
		after.BreakerClosed-before.BreakerClosed,
		after.DegradedModeEntries-before.DegradedModeEntries)
	problems := 0
	if reqs > attempts {
		fmt.Printf("  RECONCILE WARN: server saw %d requests, clients sent at most %d attempts (foreign traffic?)\n", reqs, attempts)
		problems++
	}
	if t.shed > sheds {
		fmt.Printf("  RECONCILE FAIL: clients saw %d terminal sheds, server only recorded %d\n", t.shed, sheds)
		problems++
	}
	if t.breaker > breaker {
		fmt.Printf("  RECONCILE FAIL: clients saw %d breaker rejections, server only recorded %d\n", t.breaker, breaker)
		problems++
	}
	// Per-tenant: a tenant's terminal client sheds must be within what the
	// server's per_tenant ledger charged to it. Keys whose tenant name never
	// surfaced (no successful response to learn it from) cannot be matched;
	// their sheds only participate in the global bound above.
	clientSheds := make(map[string]int64)
	for _, o := range outcomes {
		if o.kind != "shed" {
			continue
		}
		if name, ok := names[o.key]; ok {
			clientSheds[name]++
		}
	}
	var tenantNames []string
	for name := range afterR.PerTenant {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)
	for _, tenantName := range tenantNames {
		tcAfter := afterR.PerTenant[tenantName]
		tcBefore := beforeR.PerTenant[tenantName]
		reqDiff := tcAfter.Requests - tcBefore.Requests
		if reqDiff == 0 && clientSheds[tenantName] == 0 {
			continue // the run never touched this tenant
		}
		serverTenantSheds := tcAfter.Sheds - tcBefore.Sheds
		fmt.Printf("  server tenant %s: requests %d  sheds %d (sojourn %d  queue-full %d  rate-limited %d)\n",
			tenantName, reqDiff, serverTenantSheds,
			tcAfter.SojournSheds-tcBefore.SojournSheds,
			tcAfter.QueueFullSheds-tcBefore.QueueFullSheds,
			tcAfter.RateLimited-tcBefore.RateLimited)
		if clientSheds[tenantName] > serverTenantSheds {
			fmt.Printf("  RECONCILE FAIL: tenant %s clients saw %d terminal sheds, server ledger records %d\n",
				tenantName, clientSheds[tenantName], serverTenantSheds)
			problems++
		}
	}
	if problems == 0 {
		fmt.Printf("  reconciliation OK: client attempts %d within server requests %d; rejection counts consistent\n", attempts, reqs)
	}
}

// jsonRow is the -json line shape: flat, keyed by table/label like
// benchrepro's rows, with the resilience counters scripts/benchcmp.sh
// tracks plus the latency gauges it ignores.
type jsonRow struct {
	Table             string  `json:"table"`
	Label             string  `json:"label"`
	Requests          int64   `json:"requests"`
	OK                int64   `json:"ok"`
	Sheds             int64   `json:"sheds"`
	RateLimited       int64   `json:"rate_limited"`
	BreakerRejected   int64   `json:"breaker_rejected"`
	DegradedRejected  int64   `json:"degraded_rejected"`
	Timeouts          int64   `json:"timeouts"`
	Resource          int64   `json:"resource"`
	OtherErrors       int64   `json:"other_errors"`
	Retries           int64   `json:"retries"`
	BreakerOpened     int64   `json:"breaker_opened"`
	BreakerHalfOpened int64   `json:"breaker_half_opened"`
	BreakerClosed     int64   `json:"breaker_closed"`
	GoodputRPS        float64 `json:"goodput_rps"`
	P50US             int64   `json:"p50_us"`
	P95US             int64   `json:"p95_us"`
	P99US             int64   `json:"p99_us"`
	Result            string  `json:"result"`
}

func writeJSON(path, label string, t tally, outcomes []outcome, retried int64, duration time.Duration, before, after service.ServiceCounters) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	emit := func(row jsonRow) error {
		line, err := json.Marshal(row)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(f, "%s\n", line)
		return err
	}
	lat := okLatencies(outcomes)
	if err := emit(jsonRow{
		Table:             "queryload",
		Label:             label,
		Requests:          t.requests,
		OK:                t.ok,
		Sheds:             t.shed,
		RateLimited:       t.rateLimited,
		BreakerRejected:   t.breaker,
		DegradedRejected:  t.degraded,
		Timeouts:          t.timeout,
		Resource:          t.resource,
		OtherErrors:       t.other + t.cancelled,
		Retries:           retried,
		BreakerOpened:     after.BreakerOpened - before.BreakerOpened,
		BreakerHalfOpened: after.BreakerHalfOpened - before.BreakerHalfOpened,
		BreakerClosed:     after.BreakerClosed - before.BreakerClosed,
		GoodputRPS:        float64(t.ok) / duration.Seconds(),
		P50US:             percentile(lat, 50).Microseconds(),
		P95US:             percentile(lat, 95).Microseconds(),
		P99US:             percentile(lat, 99).Microseconds(),
		Result:            fmt.Sprintf("%d/%d ok", t.ok, t.requests),
	}); err != nil {
		return err
	}
	// One row per key when the run mixed tenants, labelled label/tenant so
	// benchcmp diffs the fairness split, not just the aggregate.
	byKey := make(map[string][]outcome)
	for _, o := range outcomes {
		byKey[o.key] = append(byKey[o.key], o)
	}
	if len(byKey) < 2 {
		return nil
	}
	names := keyTenants(outcomes)
	var keys []string
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		group := byKey[key]
		kt := classify(group)
		klat := okLatencies(group)
		name := names[key]
		if name == "" {
			name = key
		}
		if err := emit(jsonRow{
			Table:       "queryload",
			Label:       label + "/" + name,
			Requests:    kt.requests,
			OK:          kt.ok,
			Sheds:       kt.shed,
			RateLimited: kt.rateLimited,
			Timeouts:    kt.timeout,
			Resource:    kt.resource,
			OtherErrors: kt.other + kt.cancelled,
			GoodputRPS:  float64(kt.ok) / duration.Seconds(),
			P50US:       percentile(klat, 50).Microseconds(),
			P95US:       percentile(klat, 95).Microseconds(),
			P99US:       percentile(klat, 99).Microseconds(),
			Result:      fmt.Sprintf("%d/%d ok", kt.ok, kt.requests),
		}); err != nil {
			return err
		}
	}
	return nil
}

// splitList splits a separator-joined flag value, dropping empty entries.
func splitList(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
