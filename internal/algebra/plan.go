package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Plan is a node of a relational algebra expression tree. Plans are
// immutable once built; the executor walks them without mutation.
type Plan interface {
	// Schema returns the output schema of the node.
	Schema() relation.Schema
	// Children returns the input plans, left to right.
	Children() []Plan
	// Describe returns a one-line operator description for Explain.
	Describe() string
}

// ColPair is one equality i=j of a join condition 'conj' (Definition 6):
// Left indexes the left input's columns, Right the right input's.
type ColPair struct {
	Left  int
	Right int
}

// pairString renders a join condition in the paper's 1=1 ∧ 2=2 notation.
func pairString(on []ColPair) string {
	if len(on) == 0 {
		return "true"
	}
	parts := make([]string, len(on))
	for i, p := range on {
		parts[i] = fmt.Sprintf("%d=%d", p.Left+1, p.Right+1)
	}
	return strings.Join(parts, "∧")
}

// Scan reads a named base relation from the catalog.
type Scan struct {
	Name string
	Sch  relation.Schema
}

// NewScan builds a scan over a base relation with a known schema.
func NewScan(name string, sch relation.Schema) *Scan { return &Scan{Name: name, Sch: sch} }

// Schema implements Plan.
func (s *Scan) Schema() relation.Schema { return s.Sch }

// Children implements Plan.
func (s *Scan) Children() []Plan { return nil }

// Describe implements Plan.
func (s *Scan) Describe() string { return "Scan " + s.Name }

// Select filters tuples by a predicate (σ).
type Select struct {
	Input Plan
	Pred  Pred
}

// Schema implements Plan.
func (s *Select) Schema() relation.Schema { return s.Input.Schema() }

// Children implements Plan.
func (s *Select) Children() []Plan { return []Plan{s.Input} }

// Describe implements Plan.
func (s *Select) Describe() string { return "σ[" + s.Pred.String() + "]" }

// Project keeps the listed 0-based columns (π). Output has set semantics:
// duplicates introduced by the projection are removed, unless the planner
// marks the projection duplicate-free (NoDedup) — Proposition 5 proves this
// for the projection over a constrained outer-join chain, letting the
// executor skip the deduplication buffer entirely.
type Project struct {
	Input   Plan
	Cols    []int
	NoDedup bool
}

// Schema implements Plan.
func (p *Project) Schema() relation.Schema { return p.Input.Schema().Project(p.Cols) }

// Children implements Plan.
func (p *Project) Children() []Plan { return []Plan{p.Input} }

// Describe implements Plan.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = fmt.Sprintf("%d", c+1)
	}
	return "π[" + strings.Join(parts, ",") + "]"
}

// Product is the cartesian product (×). It exists chiefly for the Codd
// baseline translation; the Bry translator never emits it.
type Product struct {
	Left, Right Plan
}

// Schema implements Plan.
func (p *Product) Schema() relation.Schema { return p.Left.Schema().Concat(p.Right.Schema()) }

// Children implements Plan.
func (p *Product) Children() []Plan { return []Plan{p.Left, p.Right} }

// Describe implements Plan.
func (p *Product) Describe() string { return "×" }

// Join is the equi-join (⋈) with an optional residual predicate evaluated
// over the concatenated tuple.
type Join struct {
	Left, Right Plan
	On          []ColPair
	Residual    Pred // nil means no residual
}

// Schema implements Plan.
func (j *Join) Schema() relation.Schema { return j.Left.Schema().Concat(j.Right.Schema()) }

// Children implements Plan.
func (j *Join) Children() []Plan { return []Plan{j.Left, j.Right} }

// Describe implements Plan.
func (j *Join) Describe() string {
	d := "⋈[" + pairString(j.On) + "]"
	if j.Residual != nil {
		d += " where " + j.Residual.String()
	}
	return d
}

// SemiJoin (⋉) keeps the left tuples having at least one join partner.
type SemiJoin struct {
	Left, Right Plan
	On          []ColPair
}

// Schema implements Plan.
func (j *SemiJoin) Schema() relation.Schema { return j.Left.Schema() }

// Children implements Plan.
func (j *SemiJoin) Children() []Plan { return []Plan{j.Left, j.Right} }

// Describe implements Plan.
func (j *SemiJoin) Describe() string { return "⋉[" + pairString(j.On) + "]" }

// ComplementJoin is the paper's new operator (Definition 6), written P ⊼ Q:
// the left tuples having NO join partner. It generalizes set difference
// (Proposition 3) and is the workhorse for negation and universal
// quantification in the Bry translation.
type ComplementJoin struct {
	Left, Right Plan
	On          []ColPair
}

// Schema implements Plan.
func (j *ComplementJoin) Schema() relation.Schema { return j.Left.Schema() }

// Children implements Plan.
func (j *ComplementJoin) Children() []Plan { return []Plan{j.Left, j.Right} }

// Describe implements Plan.
func (j *ComplementJoin) Describe() string { return "⊼[" + pairString(j.On) + "] (complement-join)" }

// OuterJoin is the unidirectional (left) outer-join of [LP 76] used in
// Figs. 2-3: every left tuple survives; matched tuples carry the right
// columns, unmatched ones carry ∅ in every right column.
type OuterJoin struct {
	Left, Right Plan
	On          []ColPair
}

// Schema implements Plan.
func (j *OuterJoin) Schema() relation.Schema {
	right := j.Right.Schema()
	out := j.Left.Schema()
	for _, a := range right {
		out = out.Append(relation.Attribute{Name: a.Name, Internal: true})
	}
	return out
}

// Children implements Plan.
func (j *OuterJoin) Children() []Plan { return []Plan{j.Left, j.Right} }

// Describe implements Plan.
func (j *OuterJoin) Describe() string { return "⟕[" + pairString(j.On) + "]" }

// NullCond is one conjunct (i = ∅) or (i ≠ ∅) of a constrained outer-join's
// 'const' gate (Definition 7), over the LEFT input's columns.
type NullCond struct {
	Col    int
	IsNull bool // true: col = ∅; false: col ≠ ∅
}

func (c NullCond) String() string {
	if c.IsNull {
		return fmt.Sprintf("%d=∅", c.Col+1)
	}
	return fmt.Sprintf("%d≠∅", c.Col+1)
}

// holds evaluates the condition on a left tuple.
func (c NullCond) holds(t relation.Tuple) bool { return t[c.Col].IsNull() == c.IsNull }

// ConstrainedOuterJoin implements Definition 7. For a p-ary left input it
// produces arity p+1: the appended flag column holds ⊥ when the left tuple
// satisfies the constraint and has a join partner, and ∅ otherwise.
// Left tuples failing the constraint are not probed against the right input
// at all — that is the operator's whole point (§3.3: "the useless search can
// be avoided by constraining the second outer-join").
//
// An empty Constraint means every left tuple is probed; that is the form of
// the first operator in a Prop. 5 chain (Fig. 4's P ⟕⊥ T).
type ConstrainedOuterJoin struct {
	Left, Right Plan
	On          []ColPair
	Constraint  []NullCond
}

// ConstraintHolds reports whether the 'const' gate admits the left tuple.
func (j *ConstrainedOuterJoin) ConstraintHolds(t relation.Tuple) bool {
	for _, c := range j.Constraint {
		if !c.holds(t) {
			return false
		}
	}
	return true
}

// Schema implements Plan.
func (j *ConstrainedOuterJoin) Schema() relation.Schema {
	return j.Left.Schema().Append(relation.Attribute{Name: "m", Internal: true})
}

// Children implements Plan.
func (j *ConstrainedOuterJoin) Children() []Plan { return []Plan{j.Left, j.Right} }

// Describe implements Plan.
func (j *ConstrainedOuterJoin) Describe() string {
	var b strings.Builder
	b.WriteString("⟕⊥[")
	b.WriteString(pairString(j.On))
	b.WriteString("]")
	if len(j.Constraint) > 0 {
		parts := make([]string, len(j.Constraint))
		for i, c := range j.Constraint {
			parts[i] = c.String()
		}
		b.WriteString(" const{" + strings.Join(parts, "∧") + "}")
	}
	return b.String()
}

// Union is set union (∪) of two same-arity inputs.
type Union struct {
	Left, Right Plan
}

// Schema implements Plan.
func (u *Union) Schema() relation.Schema { return u.Left.Schema() }

// Children implements Plan.
func (u *Union) Children() []Plan { return []Plan{u.Left, u.Right} }

// Describe implements Plan.
func (u *Union) Describe() string { return "∪" }

// Diff is set difference (−) of two same-arity inputs.
type Diff struct {
	Left, Right Plan
}

// Schema implements Plan.
func (d *Diff) Schema() relation.Schema { return d.Left.Schema() }

// Children implements Plan.
func (d *Diff) Children() []Plan { return []Plan{d.Left, d.Right} }

// Describe implements Plan.
func (d *Diff) Describe() string { return "−" }

// Intersect is set intersection (∩) of two same-arity inputs.
type Intersect struct {
	Left, Right Plan
}

// Schema implements Plan.
func (d *Intersect) Schema() relation.Schema { return d.Left.Schema() }

// Children implements Plan.
func (d *Intersect) Children() []Plan { return []Plan{d.Left, d.Right} }

// Describe implements Plan.
func (d *Intersect) Describe() string { return "∩" }

// Division is Codd's ÷, generalized with explicit column mappings:
// a dividend tuple group identified by KeyCols appears in the output iff
// for EVERY divisor tuple, the dividend contains the group's key combined
// (at DivCols) with that divisor tuple. When the divisor is empty the
// result is the projection of the dividend onto KeyCols, matching the
// logical reading ∀z ∈ ∅: … (vacuously true).
type Division struct {
	Dividend Plan
	Divisor  Plan
	// KeyCols are the dividend columns forming the result (the paper's π12).
	KeyCols []int
	// DivCols are the dividend columns matched against the divisor tuple,
	// positionally; len(DivCols) must equal the divisor's arity.
	DivCols []int
}

// Schema implements Plan.
func (d *Division) Schema() relation.Schema { return d.Dividend.Schema().Project(d.KeyCols) }

// Children implements Plan.
func (d *Division) Children() []Plan { return []Plan{d.Dividend, d.Divisor} }

// Describe implements Plan.
func (d *Division) Describe() string {
	kp := make([]string, len(d.KeyCols))
	for i, c := range d.KeyCols {
		kp[i] = fmt.Sprintf("%d", c+1)
	}
	dp := make([]string, len(d.DivCols))
	for i, c := range d.DivCols {
		dp[i] = fmt.Sprintf("%d", c+1)
	}
	return fmt.Sprintf("÷[key %s; div %s]", strings.Join(kp, ","), strings.Join(dp, ","))
}

// GroupCount groups the input by the listed columns and appends the count
// of (distinct, by set semantics) tuples per group; with no group columns
// it emits a single row holding the input's cardinality.
//
// The operator exists for the Quel-style baseline the paper's introduction
// criticizes: universal quantification expressed "by means of an aggregate
// function … comparing the numbers of tuples" — the E10 experiment
// measures that strategy against the complement-join translation.
type GroupCount struct {
	Input     Plan
	GroupCols []int
}

// Schema implements Plan.
func (g *GroupCount) Schema() relation.Schema {
	return g.Input.Schema().Project(g.GroupCols).Append(relation.Attribute{Name: "count"})
}

// Children implements Plan.
func (g *GroupCount) Children() []Plan { return []Plan{g.Input} }

// Describe implements Plan.
func (g *GroupCount) Describe() string {
	parts := make([]string, len(g.GroupCols))
	for i, c := range g.GroupCols {
		parts[i] = fmt.Sprintf("%d", c+1)
	}
	return "γcount[" + strings.Join(parts, ",") + "]"
}

// Materialize wraps a plan whose result a conventional strategy would store
// as a temporary relation. The executor counts these materializations; the
// Bry translation's claim of avoiding intermediate unions is measured
// through them.
type Materialize struct {
	Input Plan
	Label string
}

// Schema implements Plan.
func (m *Materialize) Schema() relation.Schema { return m.Input.Schema() }

// Children implements Plan.
func (m *Materialize) Children() []Plan { return []Plan{m.Input} }

// Describe implements Plan.
func (m *Materialize) Describe() string { return "Materialize " + m.Label }
