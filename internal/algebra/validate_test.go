package algebra

import (
	"testing"

	"repro/internal/relation"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	sc := relation.NewSchema("a", "b")
	r := NewScan("r", sc)
	s2 := NewScan("s", relation.NewSchema("c"))
	on := []ColPair{{Left: 0, Right: 0}}
	plans := []Plan{
		r,
		&Select{Input: r, Pred: And{Preds: []Pred{CmpCols{Left: 0, Op: OpEq, Right: 1}, Not{Pred: IsNull{Col: 1}}}}},
		&Project{Input: r, Cols: []int{1, 0}},
		&Product{Left: r, Right: s2},
		&Join{Left: r, Right: s2, On: on, Residual: NotNull{Col: 2}},
		&SemiJoin{Left: r, Right: s2, On: on},
		&ComplementJoin{Left: r, Right: s2, On: on},
		&OuterJoin{Left: r, Right: s2, On: on},
		&ConstrainedOuterJoin{Left: r, Right: s2, On: on, Constraint: []NullCond{{Col: 1, IsNull: true}}},
		&Union{Left: r, Right: r},
		&Diff{Left: s2, Right: s2},
		&Intersect{Left: r, Right: r},
		&Division{Dividend: r, Divisor: s2, KeyCols: []int{0}, DivCols: []int{1}},
		&GroupCount{Input: r, GroupCols: []int{0}},
		&Materialize{Input: r, Label: "t"},
	}
	for _, p := range plans {
		if err := Validate(p); err != nil {
			t.Errorf("Validate(%s): %v", p.Describe(), err)
		}
	}
	bp := &BoolAnd{Inputs: []BoolPlan{
		&NotEmpty{Input: r},
		&BoolNot{Input: &IsEmpty{Input: s2}},
		&BoolOr{Inputs: []BoolPlan{&BoolConst{Value: true}}},
	}}
	if err := ValidateBool(bp); err != nil {
		t.Errorf("ValidateBool: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	sc := relation.NewSchema("a", "b")
	r := NewScan("r", sc)
	s2 := NewScan("s", relation.NewSchema("c"))
	bad := []Plan{
		&Select{Input: r, Pred: CmpCols{Left: 0, Op: OpEq, Right: 5}},
		&Select{Input: r, Pred: Or{Preds: []Pred{IsNull{Col: 9}}}},
		&Select{Input: r, Pred: CmpConst{Col: -1, Op: OpEq, Const: relation.Int(1)}},
		&Project{Input: r, Cols: []int{2}},
		&Join{Left: r, Right: s2, On: []ColPair{{Left: 2, Right: 0}}},
		&Join{Left: r, Right: s2, On: []ColPair{{Left: 0, Right: 1}}},
		&Join{Left: r, Right: s2, On: nil, Residual: NotNull{Col: 3}},
		&ConstrainedOuterJoin{Left: r, Right: s2, Constraint: []NullCond{{Col: 7}}},
		&Union{Left: r, Right: s2}, // arity mismatch
		&Division{Dividend: r, Divisor: s2, KeyCols: []int{0}, DivCols: []int{5}},
		&Division{Dividend: r, Divisor: r, KeyCols: []int{0}, DivCols: []int{1}}, // mapping/arity mismatch
		&GroupCount{Input: s2, GroupCols: []int{1}},
		// Nested failure propagates.
		&Materialize{Input: &Project{Input: r, Cols: []int{9}}, Label: "t"},
	}
	for _, p := range bad {
		if err := Validate(p); err == nil {
			t.Errorf("Validate(%s) accepted a malformed plan", p.Describe())
		}
	}
	if err := ValidateBool(&NotEmpty{Input: &Project{Input: r, Cols: []int{9}}}); err == nil {
		t.Error("ValidateBool must propagate plan errors")
	}
}
