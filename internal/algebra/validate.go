package algebra

import "fmt"

// Validate checks the structural well-formedness of a plan: every column
// reference (in predicates, join conditions, projections, constraints and
// division mappings) must fall within its input's arity, and set operators
// must combine same-arity inputs. Planner bugs thus surface as errors at
// preparation time instead of index panics at execution time.
func Validate(p Plan) error {
	switch n := p.(type) {
	case *Scan:
		return nil
	case *Select:
		if err := Validate(n.Input); err != nil {
			return err
		}
		return validatePred(n.Pred, n.Input.Schema().Arity())
	case *Project:
		if err := Validate(n.Input); err != nil {
			return err
		}
		return checkCols(n.Cols, n.Input.Schema().Arity(), "projection")
	case *Product:
		return validateBoth(n.Left, n.Right)
	case *Join:
		if err := validateJoinLike(n.Left, n.Right, n.On); err != nil {
			return err
		}
		if n.Residual != nil {
			return validatePred(n.Residual, n.Left.Schema().Arity()+n.Right.Schema().Arity())
		}
		return nil
	case *SemiJoin:
		return validateJoinLike(n.Left, n.Right, n.On)
	case *ComplementJoin:
		return validateJoinLike(n.Left, n.Right, n.On)
	case *OuterJoin:
		return validateJoinLike(n.Left, n.Right, n.On)
	case *ConstrainedOuterJoin:
		if err := validateJoinLike(n.Left, n.Right, n.On); err != nil {
			return err
		}
		for _, c := range n.Constraint {
			if c.Col < 0 || c.Col >= n.Left.Schema().Arity() {
				return fmt.Errorf("algebra: constraint column %d out of range for arity %d", c.Col+1, n.Left.Schema().Arity())
			}
		}
		return nil
	case *Union, *Diff, *Intersect:
		var l, r Plan
		switch s := p.(type) {
		case *Union:
			l, r = s.Left, s.Right
		case *Diff:
			l, r = s.Left, s.Right
		case *Intersect:
			l, r = s.Left, s.Right
		}
		if err := validateBoth(l, r); err != nil {
			return err
		}
		if l.Schema().Arity() != r.Schema().Arity() {
			return fmt.Errorf("algebra: %s combines arity %d with arity %d", p.Describe(), l.Schema().Arity(), r.Schema().Arity())
		}
		return nil
	case *Division:
		if err := validateBoth(n.Dividend, n.Divisor); err != nil {
			return err
		}
		da := n.Dividend.Schema().Arity()
		if err := checkCols(n.KeyCols, da, "division key"); err != nil {
			return err
		}
		if err := checkCols(n.DivCols, da, "division divisor mapping"); err != nil {
			return err
		}
		if len(n.DivCols) != n.Divisor.Schema().Arity() {
			return fmt.Errorf("algebra: division maps %d columns onto a divisor of arity %d", len(n.DivCols), n.Divisor.Schema().Arity())
		}
		return nil
	case *GroupCount:
		if err := Validate(n.Input); err != nil {
			return err
		}
		return checkCols(n.GroupCols, n.Input.Schema().Arity(), "group")
	case *Materialize:
		return Validate(n.Input)
	case *Shared:
		return Validate(n.Input)
	default:
		return fmt.Errorf("algebra: unknown plan node %T", p)
	}
}

// ValidateBool validates every relational plan of a boolean plan.
func ValidateBool(p BoolPlan) error {
	for _, c := range p.BoolChildren() {
		if err := ValidateBool(c); err != nil {
			return err
		}
	}
	for _, c := range p.PlanChildren() {
		if err := Validate(c); err != nil {
			return err
		}
	}
	return nil
}

func validateBoth(l, r Plan) error {
	if err := Validate(l); err != nil {
		return err
	}
	return Validate(r)
}

func validateJoinLike(l, r Plan, on []ColPair) error {
	if err := validateBoth(l, r); err != nil {
		return err
	}
	la, ra := l.Schema().Arity(), r.Schema().Arity()
	for _, p := range on {
		if p.Left < 0 || p.Left >= la {
			return fmt.Errorf("algebra: join condition references left column %d of arity %d", p.Left+1, la)
		}
		if p.Right < 0 || p.Right >= ra {
			return fmt.Errorf("algebra: join condition references right column %d of arity %d", p.Right+1, ra)
		}
	}
	return nil
}

func checkCols(cols []int, arity int, what string) error {
	for _, c := range cols {
		if c < 0 || c >= arity {
			return fmt.Errorf("algebra: %s references column %d of arity %d", what, c+1, arity)
		}
	}
	return nil
}

// validatePred checks every column reference of a predicate.
func validatePred(p Pred, arity int) error {
	switch n := p.(type) {
	case True:
		return nil
	case CmpCols:
		return checkCols([]int{n.Left, n.Right}, arity, "comparison")
	case CmpConst:
		return checkCols([]int{n.Col}, arity, "comparison")
	case IsNull:
		return checkCols([]int{n.Col}, arity, "null test")
	case NotNull:
		return checkCols([]int{n.Col}, arity, "null test")
	case And:
		for _, q := range n.Preds {
			if err := validatePred(q, arity); err != nil {
				return err
			}
		}
		return nil
	case Or:
		for _, q := range n.Preds {
			if err := validatePred(q, arity); err != nil {
				return err
			}
		}
		return nil
	case Not:
		return validatePred(n.Pred, arity)
	default:
		return fmt.Errorf("algebra: unknown predicate %T", p)
	}
}
