package algebra

// BoolPlan is the boolean layer of the extended algebra proposed in §3.2:
// closed (yes/no) queries translate to emptiness tests over relational
// plans, combined with boolean connectives. The executor evaluates
// emptiness tests lazily — it stops pulling tuples from the underlying
// plan as soon as the first one arrives — which is exactly the early
// termination of Fig. 1's loop algorithms, recovered algebraically.
type BoolPlan interface {
	// BoolChildren returns nested boolean plans.
	BoolChildren() []BoolPlan
	// PlanChildren returns relational plans tested by this node.
	PlanChildren() []Plan
	// Describe returns a one-line description for Explain.
	Describe() string
}

// NotEmpty tests {x | F} ≠ ∅: the translation of a closed existential query.
type NotEmpty struct{ Input Plan }

// BoolChildren implements BoolPlan.
func (n *NotEmpty) BoolChildren() []BoolPlan { return nil }

// PlanChildren implements BoolPlan.
func (n *NotEmpty) PlanChildren() []Plan { return []Plan{n.Input} }

// Describe implements BoolPlan.
func (n *NotEmpty) Describe() string { return "≠∅" }

// IsEmpty tests {x | F} = ∅: the translation of a negated closed
// existential query (hence, via Rules 4-5, of universal queries).
type IsEmpty struct{ Input Plan }

// BoolChildren implements BoolPlan.
func (n *IsEmpty) BoolChildren() []BoolPlan { return nil }

// PlanChildren implements BoolPlan.
func (n *IsEmpty) PlanChildren() []Plan { return []Plan{n.Input} }

// Describe implements BoolPlan.
func (n *IsEmpty) Describe() string { return "=∅" }

// BoolAnd is the conjunction of boolean plans, evaluated left to right with
// short-circuiting.
type BoolAnd struct{ Inputs []BoolPlan }

// BoolChildren implements BoolPlan.
func (n *BoolAnd) BoolChildren() []BoolPlan { return n.Inputs }

// PlanChildren implements BoolPlan.
func (n *BoolAnd) PlanChildren() []Plan { return nil }

// Describe implements BoolPlan.
func (n *BoolAnd) Describe() string { return "AND" }

// BoolOr is the disjunction of boolean plans, evaluated left to right with
// short-circuiting.
type BoolOr struct{ Inputs []BoolPlan }

// BoolChildren implements BoolPlan.
func (n *BoolOr) BoolChildren() []BoolPlan { return n.Inputs }

// PlanChildren implements BoolPlan.
func (n *BoolOr) PlanChildren() []Plan { return nil }

// Describe implements BoolPlan.
func (n *BoolOr) Describe() string { return "OR" }

// BoolNot negates a boolean plan.
type BoolNot struct{ Input BoolPlan }

// BoolChildren implements BoolPlan.
func (n *BoolNot) BoolChildren() []BoolPlan { return []BoolPlan{n.Input} }

// PlanChildren implements BoolPlan.
func (n *BoolNot) PlanChildren() []Plan { return nil }

// Describe implements BoolPlan.
func (n *BoolNot) Describe() string { return "NOT" }

// BoolConst is a constant truth value; it arises when normalization reduces
// a subquery to a tautology or contradiction.
type BoolConst struct{ Value bool }

// BoolChildren implements BoolPlan.
func (n *BoolConst) BoolChildren() []BoolPlan { return nil }

// PlanChildren implements BoolPlan.
func (n *BoolConst) PlanChildren() []Plan { return nil }

// Describe implements BoolPlan.
func (n *BoolConst) Describe() string {
	if n.Value {
		return "TRUE"
	}
	return "FALSE"
}
