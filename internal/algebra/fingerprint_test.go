package algebra

import (
	"testing"

	"repro/internal/relation"
)

func fpScan(name string) *Scan { return NewScan(name, relation.NewSchema("v")) }

func TestFingerprintCommutativeUnion(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	ab := &Union{Left: a, Right: b}
	ba := &Union{Left: b, Right: a}
	if Fingerprint(ab) != Fingerprint(ba) {
		t.Fatalf("A ∪ B and B ∪ A must fingerprint equally:\n%s\n%s", Canonical(ab), Canonical(ba))
	}
	iab := &Intersect{Left: a, Right: b}
	iba := &Intersect{Left: b, Right: a}
	if Fingerprint(iab) != Fingerprint(iba) {
		t.Fatal("∩ must be order-normalized")
	}
	// Difference is NOT commutative.
	dab := &Diff{Left: a, Right: b}
	dba := &Diff{Left: b, Right: a}
	if Fingerprint(dab) == Fingerprint(dba) {
		t.Fatal("A − B and B − A must differ")
	}
}

func TestFingerprintJoinOrderSensitive(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	on := []ColPair{{Left: 0, Right: 0}}
	ab := &Join{Left: a, Right: b, On: on}
	ba := &Join{Left: b, Right: a, On: on}
	if Fingerprint(ab) == Fingerprint(ba) {
		t.Fatal("⋈ output columns depend on operand order; fingerprints must differ")
	}
}

func TestFingerprintPairOrderNormalized(t *testing.T) {
	r := NewScan("R", relation.NewSchema("a", "b"))
	s := NewScan("S", relation.NewSchema("a", "b"))
	j1 := &SemiJoin{Left: r, Right: s, On: []ColPair{{Left: 0, Right: 0}, {Left: 1, Right: 1}}}
	j2 := &SemiJoin{Left: r, Right: s, On: []ColPair{{Left: 1, Right: 1}, {Left: 0, Right: 0}}}
	if Fingerprint(j1) != Fingerprint(j2) {
		t.Fatal("a conjunction of join equalities is order-independent")
	}
}

func TestFingerprintPredNormalized(t *testing.T) {
	a := fpScan("A")
	p := CmpConst{Col: 0, Op: OpEq, Const: relation.Str("x")}
	q := NotNull{Col: 0}
	s1 := &Select{Input: a, Pred: And{Preds: []Pred{p, q}}}
	s2 := &Select{Input: a, Pred: And{Preds: []Pred{q, p}}}
	if Fingerprint(s1) != Fingerprint(s2) {
		t.Fatal("∧ operands must be order-normalized")
	}
	s3 := &Select{Input: a, Pred: Or{Preds: []Pred{p, q}}}
	if Fingerprint(s1) == Fingerprint(s3) {
		t.Fatal("∧ and ∨ must differ")
	}
	// Different constants must differ.
	s4 := &Select{Input: a, Pred: CmpConst{Col: 0, Op: OpEq, Const: relation.Str("y")}}
	s5 := &Select{Input: a, Pred: CmpConst{Col: 0, Op: OpEq, Const: relation.Str("x")}}
	if Fingerprint(s4) == Fingerprint(s5) {
		t.Fatal("constants are part of the fingerprint")
	}
}

func TestFingerprintSharedTransparent(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	j := &SemiJoin{Left: a, Right: b, On: []ColPair{{Left: 0, Right: 0}}}
	sh := NewShared(j)
	if sh.FP != Fingerprint(j) {
		t.Fatal("NewShared must precompute the input's fingerprint")
	}
	if Fingerprint(sh) != Fingerprint(j) {
		t.Fatal("a Shared wrapper must fingerprint as its input")
	}
	// Wrapping inside a larger tree must not change the tree's fingerprint.
	plain := &Union{Left: j, Right: fpScan("C")}
	wrapped := &Union{Left: sh, Right: fpScan("C")}
	if Fingerprint(plain) != Fingerprint(wrapped) {
		t.Fatal("Shared must be transparent to enclosing fingerprints")
	}
}

func TestFingerprintDistinguishesOperators(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	on := []ColPair{{Left: 0, Right: 0}}
	fps := map[uint64]string{}
	for _, p := range []Plan{
		&SemiJoin{Left: a, Right: b, On: on},
		&ComplementJoin{Left: a, Right: b, On: on},
		&OuterJoin{Left: a, Right: b, On: on},
		&ConstrainedOuterJoin{Left: a, Right: b, On: on},
		&Join{Left: a, Right: b, On: on},
		&Product{Left: a, Right: b},
		&Union{Left: a, Right: b},
		&Diff{Left: a, Right: b},
		&Intersect{Left: a, Right: b},
	} {
		fp := Fingerprint(p)
		if prev, dup := fps[fp]; dup {
			t.Fatalf("%s and %s collide", prev, p.Describe())
		}
		fps[fp] = p.Describe()
	}
}

func TestNodeCount(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	j := &SemiJoin{Left: a, Right: b, On: []ColPair{{Left: 0, Right: 0}}}
	if got := NodeCount(j); got != 3 {
		t.Fatalf("NodeCount(⋉(scan,scan)) = %d, want 3", got)
	}
	if got := NodeCount(NewShared(j)); got != 3 {
		t.Fatalf("Shared wrappers must not count: got %d", got)
	}
	if got := NodeCount(a); got != 1 {
		t.Fatalf("NodeCount(scan) = %d", got)
	}
}

func TestValidateShared(t *testing.T) {
	a, b := fpScan("A"), fpScan("B")
	good := NewShared(&SemiJoin{Left: a, Right: b, On: []ColPair{{Left: 0, Right: 0}}})
	if err := Validate(good); err != nil {
		t.Fatalf("valid shared subtree rejected: %v", err)
	}
	bad := NewShared(&SemiJoin{Left: a, Right: b, On: []ColPair{{Left: 7, Right: 0}}})
	if err := Validate(bad); err == nil {
		t.Fatal("validation must descend through Shared")
	}
}
