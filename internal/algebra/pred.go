// Package algebra defines the extended relational algebra of the paper:
// the classical operators (selection, projection, product, join, semi-join,
// union, difference, division), the paper's complement-join (Definition 6),
// unidirectional outer-joins, constrained outer-joins (Definition 7), and
// boolean plans with (non-)emptiness tests (§3.2).
//
// The package is purely structural: plans are trees of exported structs.
// Evaluation lives in internal/exec.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// CmpOp re-exports the shared comparison operator type for plan builders.
type CmpOp = relation.CmpOp

// Comparison operators, aliased from the relation package.
const (
	OpEq = relation.OpEq
	OpNe = relation.OpNe
	OpLt = relation.OpLt
	OpLe = relation.OpLe
	OpGt = relation.OpGt
	OpGe = relation.OpGe
)

// Pred is a predicate over a single tuple. Eval returns the truth value and
// the number of atomic value comparisons performed, so the executor can
// charge costs faithfully (short-circuiting included).
type Pred interface {
	Eval(t relation.Tuple) (ok bool, comparisons int)
	String() string
}

// True is the always-true predicate.
type True struct{}

// Eval implements Pred.
func (True) Eval(relation.Tuple) (bool, int) { return true, 0 }
func (True) String() string                  { return "true" }

// CmpCols compares two columns of the tuple. Comparisons involving the
// internal symbols ∅/⊥ or mixed kinds are unsatisfied (and ≠ is satisfied
// only between comparable values, mirroring user-level semantics).
type CmpCols struct {
	Left  int
	Op    CmpOp
	Right int
}

// Eval implements Pred.
func (p CmpCols) Eval(t relation.Tuple) (bool, int) {
	l, r := t[p.Left], t[p.Right]
	if !l.Comparable(r) {
		return false, 1
	}
	return p.Op.EvalCmp(l.Compare(r)), 1
}

func (p CmpCols) String() string {
	return fmt.Sprintf("%d%s%d", p.Left+1, p.Op, p.Right+1)
}

// CmpConst compares a column against a constant.
type CmpConst struct {
	Col   int
	Op    CmpOp
	Const relation.Value
}

// Eval implements Pred.
func (p CmpConst) Eval(t relation.Tuple) (bool, int) {
	v := t[p.Col]
	if !v.Comparable(p.Const) {
		return false, 1
	}
	return p.Op.EvalCmp(v.Compare(p.Const)), 1
}

func (p CmpConst) String() string {
	return fmt.Sprintf("%d%s%q", p.Col+1, p.Op, p.Const.String())
}

// IsNull tests a column for the internal null symbol ∅ (the paper's σ[i=∅]).
type IsNull struct{ Col int }

// Eval implements Pred.
func (p IsNull) Eval(t relation.Tuple) (bool, int) { return t[p.Col].IsNull(), 1 }
func (p IsNull) String() string                    { return fmt.Sprintf("%d=∅", p.Col+1) }

// NotNull tests a column for any non-∅ value (the paper's σ[i≠∅]).
type NotNull struct{ Col int }

// Eval implements Pred.
func (p NotNull) Eval(t relation.Tuple) (bool, int) { return !t[p.Col].IsNull(), 1 }
func (p NotNull) String() string                    { return fmt.Sprintf("%d≠∅", p.Col+1) }

// And is short-circuit conjunction of predicates.
type And struct{ Preds []Pred }

// Eval implements Pred.
func (p And) Eval(t relation.Tuple) (bool, int) {
	n := 0
	for _, q := range p.Preds {
		ok, c := q.Eval(t)
		n += c
		if !ok {
			return false, n
		}
	}
	return true, n
}

func (p And) String() string { return joinPreds(p.Preds, " ∧ ") }

// Or is short-circuit disjunction of predicates.
type Or struct{ Preds []Pred }

// Eval implements Pred.
func (p Or) Eval(t relation.Tuple) (bool, int) {
	n := 0
	for _, q := range p.Preds {
		ok, c := q.Eval(t)
		n += c
		if ok {
			return true, n
		}
	}
	return false, n
}

func (p Or) String() string { return joinPreds(p.Preds, " ∨ ") }

// Not negates a predicate.
type Not struct{ Pred Pred }

// Eval implements Pred.
func (p Not) Eval(t relation.Tuple) (bool, int) {
	ok, c := p.Pred.Eval(t)
	return !ok, c
}

func (p Not) String() string { return "¬(" + p.Pred.String() + ")" }

// ConjAll builds a conjunction, flattening the trivial cases.
func ConjAll(preds ...Pred) Pred {
	flat := make([]Pred, 0, len(preds))
	for _, p := range preds {
		if _, isTrue := p.(True); isTrue {
			continue
		}
		flat = append(flat, p)
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	default:
		return And{Preds: flat}
	}
}

// DisjAll builds a disjunction; it panics on zero disjuncts.
func DisjAll(preds ...Pred) Pred {
	if len(preds) == 0 {
		panic("algebra: empty disjunction")
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return Or{Preds: preds}
}

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
