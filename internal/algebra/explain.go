package algebra

import "strings"

// Explain renders a plan tree as an indented multi-line string, one operator
// per line, children indented below their parent.
func Explain(p Plan) string {
	var b strings.Builder
	explainPlan(&b, p, 0)
	return b.String()
}

// ExplainBool renders a boolean plan tree.
func ExplainBool(p BoolPlan) string {
	var b strings.Builder
	explainBool(&b, p, 0)
	return b.String()
}

func explainPlan(b *strings.Builder, p Plan, depth int) {
	indent(b, depth)
	b.WriteString(p.Describe())
	b.WriteByte('\n')
	for _, c := range p.Children() {
		explainPlan(b, c, depth+1)
	}
}

func explainBool(b *strings.Builder, p BoolPlan, depth int) {
	indent(b, depth)
	b.WriteString(p.Describe())
	b.WriteByte('\n')
	for _, c := range p.BoolChildren() {
		explainBool(b, c, depth+1)
	}
	for _, c := range p.PlanChildren() {
		explainPlan(b, c, depth+1)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// CountOperators walks the plan and returns how many nodes satisfy the
// given test; benchmarks use it to assert plan shapes (e.g. "the Bry plan
// contains no Product and no Division").
func CountOperators(p Plan, test func(Plan) bool) int {
	n := 0
	if test(p) {
		n++
	}
	for _, c := range p.Children() {
		n += CountOperators(c, test)
	}
	return n
}

// CountBoolOperators is CountOperators over a boolean plan, applying the
// test to every relational plan hanging off the boolean tree.
func CountBoolOperators(p BoolPlan, test func(Plan) bool) int {
	n := 0
	for _, c := range p.BoolChildren() {
		n += CountBoolOperators(c, test)
	}
	for _, c := range p.PlanChildren() {
		n += CountOperators(c, test)
	}
	return n
}
