package algebra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// This file defines the structural fingerprint used by the memoizing
// subplan cache: two subtrees computing the same result under set semantics
// get the same fingerprint, independent of the order in which commutative
// inputs were written. The planner pass (internal/planopt) detects repeated
// fingerprints within one plan and wraps them in Shared nodes; the executor
// memo (internal/exec) keys spooled results by fingerprint and verifies
// candidates against the full canonical string, so a 64-bit collision can
// never replay a wrong result.

// Shared wraps a subtree whose result may be computed once and replayed:
// the planner inserts it around subtrees that occur more than once in a
// plan (union branches re-reading their producer, the ⋉/⊼ twins of
// Proposition 4), and the executor consults the plan-cache memo under FP.
// Without a memo on the execution context the node is transparent.
type Shared struct {
	Input Plan
	// FP is Fingerprint(Input), precomputed by the planner.
	FP uint64
}

// NewShared wraps a plan with its fingerprint.
func NewShared(p Plan) *Shared { return &Shared{Input: p, FP: Fingerprint(p)} }

// Schema implements Plan.
func (s *Shared) Schema() relation.Schema { return s.Input.Schema() }

// Children implements Plan.
func (s *Shared) Children() []Plan { return []Plan{s.Input} }

// Describe implements Plan.
func (s *Shared) Describe() string { return fmt.Sprintf("Shared#%016x", s.FP) }

// Fingerprint returns a 64-bit FNV-1a hash of the plan's canonical
// serialization. Shared wrappers are skipped, so a subtree and its wrapped
// form fingerprint identically.
func Fingerprint(p Plan) uint64 {
	return fnvString(Canonical(p))
}

// Canonical serializes a plan into a string that is equal exactly for
// structurally equivalent subtrees: commutative operators (∪, ∩) sort their
// child serializations, join conditions sort their column pairs, and
// predicate conjunctions/disjunctions sort their operand strings. It is the
// collision check paired with Fingerprint.
func Canonical(p Plan) string {
	var b strings.Builder
	c := canonicalizer{memo: make(map[Plan]string)}
	c.plan(&b, p)
	return b.String()
}

// canonicalizer memoizes per-pointer serializations so DAG-shaped plans
// (the same subtree pointer reused across union branches) serialize in
// linear time.
type canonicalizer struct {
	memo map[Plan]string
}

func (c *canonicalizer) str(p Plan) string {
	if s, ok := c.memo[p]; ok {
		return s
	}
	var b strings.Builder
	c.plan(&b, p)
	s := b.String()
	c.memo[p] = s
	return s
}

func (c *canonicalizer) plan(b *strings.Builder, p Plan) {
	switch n := p.(type) {
	case *Scan:
		b.WriteString("scan(")
		b.WriteString(n.Name)
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(n.Sch.Arity()))
		b.WriteByte(')')
	case *Select:
		b.WriteString("select[")
		b.WriteString(canonicalPred(n.Pred))
		b.WriteString("](")
		b.WriteString(c.str(n.Input))
		b.WriteByte(')')
	case *Project:
		b.WriteString("project[")
		writeCols(b, n.Cols)
		if n.NoDedup {
			b.WriteString(";nodedup")
		}
		b.WriteString("](")
		b.WriteString(c.str(n.Input))
		b.WriteByte(')')
	case *Product:
		b.WriteString("product(")
		b.WriteString(c.str(n.Left))
		b.WriteByte(',')
		b.WriteString(c.str(n.Right))
		b.WriteByte(')')
	case *Join:
		b.WriteString("join[")
		writePairs(b, n.On)
		if n.Residual != nil {
			b.WriteString(";res=")
			b.WriteString(canonicalPred(n.Residual))
		}
		b.WriteString("](")
		b.WriteString(c.str(n.Left))
		b.WriteByte(',')
		b.WriteString(c.str(n.Right))
		b.WriteByte(')')
	case *SemiJoin:
		c.joinLike(b, "semijoin", n.On, n.Left, n.Right)
	case *ComplementJoin:
		c.joinLike(b, "complementjoin", n.On, n.Left, n.Right)
	case *OuterJoin:
		c.joinLike(b, "outerjoin", n.On, n.Left, n.Right)
	case *ConstrainedOuterJoin:
		b.WriteString("coj[")
		writePairs(b, n.On)
		b.WriteString(";const=")
		for i, cc := range n.Constraint {
			if i > 0 {
				b.WriteByte('&')
			}
			b.WriteString(cc.String())
		}
		b.WriteString("](")
		b.WriteString(c.str(n.Left))
		b.WriteByte(',')
		b.WriteString(c.str(n.Right))
		b.WriteByte(')')
	case *Union:
		c.commutative(b, "union", n.Left, n.Right)
	case *Intersect:
		c.commutative(b, "intersect", n.Left, n.Right)
	case *Diff:
		b.WriteString("diff(")
		b.WriteString(c.str(n.Left))
		b.WriteByte(',')
		b.WriteString(c.str(n.Right))
		b.WriteByte(')')
	case *Division:
		b.WriteString("division[key=")
		writeCols(b, n.KeyCols)
		b.WriteString(";div=")
		writeCols(b, n.DivCols)
		b.WriteString("](")
		b.WriteString(c.str(n.Dividend))
		b.WriteByte(',')
		b.WriteString(c.str(n.Divisor))
		b.WriteByte(')')
	case *GroupCount:
		b.WriteString("groupcount[")
		writeCols(b, n.GroupCols)
		b.WriteString("](")
		b.WriteString(c.str(n.Input))
		b.WriteByte(')')
	case *Materialize:
		// The label is presentation only; materialization does not change
		// the result, but it does change the charged cost, so it stays a
		// distinct node in the serialization.
		b.WriteString("materialize(")
		b.WriteString(c.str(n.Input))
		b.WriteByte(')')
	case *Shared:
		// Transparent: a wrapped subtree equals its unwrapped twin.
		b.WriteString(c.str(n.Input))
	default:
		// Unknown nodes serialize by their description; they can still be
		// cached as long as Describe is faithful.
		b.WriteString("op[")
		b.WriteString(p.Describe())
		b.WriteString("](")
		for i, ch := range p.Children() {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.str(ch))
		}
		b.WriteByte(')')
	}
}

// joinLike serializes an order-sensitive join-family node.
func (c *canonicalizer) joinLike(b *strings.Builder, name string, on []ColPair, l, r Plan) {
	b.WriteString(name)
	b.WriteByte('[')
	writePairs(b, on)
	b.WriteString("](")
	b.WriteString(c.str(l))
	b.WriteByte(',')
	b.WriteString(c.str(r))
	b.WriteByte(')')
}

// commutative serializes ∪/∩ with sorted child strings, so A ∪ B and B ∪ A
// fingerprint identically.
func (c *canonicalizer) commutative(b *strings.Builder, name string, l, r Plan) {
	ls, rs := c.str(l), c.str(r)
	if rs < ls {
		ls, rs = rs, ls
	}
	b.WriteString(name)
	b.WriteByte('(')
	b.WriteString(ls)
	b.WriteByte(',')
	b.WriteString(rs)
	b.WriteByte(')')
}

// canonicalPred serializes a predicate with commutative connectives
// order-normalized (∧ and ∨ operand strings are sorted).
func canonicalPred(p Pred) string {
	switch n := p.(type) {
	case And:
		return sortedPreds("and", n.Preds)
	case Or:
		return sortedPreds("or", n.Preds)
	case Not:
		return "not(" + canonicalPred(n.Pred) + ")"
	default:
		// The leaf String() forms (CmpCols, CmpConst, IsNull, NotNull,
		// True) are already canonical: they render column indexes, the
		// operator and quoted constants.
		return p.String()
	}
}

func sortedPreds(name string, preds []Pred) string {
	parts := make([]string, len(preds))
	for i, q := range preds {
		parts[i] = canonicalPred(q)
	}
	sort.Strings(parts)
	return name + "(" + strings.Join(parts, ",") + ")"
}

// writePairs renders a join condition with its pairs sorted: a conjunction
// of column equalities is order-independent.
func writePairs(b *strings.Builder, on []ColPair) {
	sorted := append([]ColPair(nil), on...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Left != sorted[j].Left {
			return sorted[i].Left < sorted[j].Left
		}
		return sorted[i].Right < sorted[j].Right
	})
	for i, p := range sorted {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(strconv.Itoa(p.Left))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(p.Right))
	}
}

func writeCols(b *strings.Builder, cols []int) {
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
}

// fnvString is 64-bit FNV-1a over a string (same parameters as
// relation.HashCols, kept local to avoid exporting hash internals).
func fnvString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// NodeCount returns the number of operator nodes in the subtree (Shared
// wrappers excluded); the planner's share pass uses it as a cost threshold
// so bare scans are not worth a memo round-trip.
func NodeCount(p Plan) int {
	if s, ok := p.(*Shared); ok {
		return NodeCount(s.Input)
	}
	n := 1
	for _, c := range p.Children() {
		n += NodeCount(c)
	}
	return n
}
