package algebra

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestPredEval(t *testing.T) {
	tu := relation.NewTuple(relation.Int(1), relation.Int(2), relation.Str("a"), relation.Null())
	cases := []struct {
		p    Pred
		want bool
	}{
		{True{}, true},
		{CmpCols{Left: 0, Op: OpLt, Right: 1}, true},
		{CmpCols{Left: 1, Op: OpEq, Right: 0}, false},
		{CmpConst{Col: 2, Op: OpEq, Const: relation.Str("a")}, true},
		{CmpConst{Col: 0, Op: OpGe, Const: relation.Int(5)}, false},
		{IsNull{Col: 3}, true},
		{IsNull{Col: 0}, false},
		{NotNull{Col: 0}, true},
		{NotNull{Col: 3}, false},
		{Not{Pred: True{}}, false},
		{And{Preds: []Pred{True{}, NotNull{Col: 0}}}, true},
		{And{Preds: []Pred{Not{Pred: True{}}, True{}}}, false},
		{Or{Preds: []Pred{Not{Pred: True{}}, True{}}}, true},
		{Or{Preds: []Pred{IsNull{Col: 0}, IsNull{Col: 1}}}, false},
		// Comparisons against the null symbol never hold.
		{CmpCols{Left: 3, Op: OpEq, Right: 3}, false},
		{CmpConst{Col: 3, Op: OpNe, Const: relation.Int(1)}, false},
	}
	for _, c := range cases {
		got, _ := c.p.Eval(tu)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPredShortCircuitCounting(t *testing.T) {
	tu := relation.NewTuple(relation.Int(1))
	and := And{Preds: []Pred{Not{Pred: True{}}, CmpConst{Col: 0, Op: OpEq, Const: relation.Int(1)}}}
	_, n := and.Eval(tu)
	if n != 0 {
		t.Fatalf("short-circuited AND charged %d comparisons, want 0", n)
	}
	or := Or{Preds: []Pred{CmpConst{Col: 0, Op: OpEq, Const: relation.Int(1)}, CmpConst{Col: 0, Op: OpEq, Const: relation.Int(2)}}}
	_, n = or.Eval(tu)
	if n != 1 {
		t.Fatalf("short-circuited OR charged %d comparisons, want 1", n)
	}
}

func TestConjDisjBuilders(t *testing.T) {
	if _, ok := ConjAll().(True); !ok {
		t.Fatal("empty conjunction must be True")
	}
	if _, ok := ConjAll(True{}, True{}).(True); !ok {
		t.Fatal("trivial conjunction must fold to True")
	}
	p := CmpConst{Col: 0, Op: OpEq, Const: relation.Int(1)}
	if got := ConjAll(True{}, p); got != Pred(p) {
		t.Fatalf("singleton conjunction must unwrap, got %v", got)
	}
	if got := DisjAll(p); got != Pred(p) {
		t.Fatal("singleton disjunction must unwrap")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty disjunction must panic")
		}
	}()
	DisjAll()
}

func TestSchemas(t *testing.T) {
	sc := relation.NewSchema("a", "b")
	scan := NewScan("r", sc)
	if scan.Schema().Arity() != 2 {
		t.Fatal("scan schema")
	}
	sel := &Select{Input: scan, Pred: True{}}
	if sel.Schema().Arity() != 2 {
		t.Fatal("select schema")
	}
	proj := &Project{Input: scan, Cols: []int{1}}
	if proj.Schema().Arity() != 1 || proj.Schema()[0].Name != "b" {
		t.Fatal("project schema")
	}
	other := NewScan("s", relation.NewSchema("c"))
	if (&Product{Left: scan, Right: other}).Schema().Arity() != 3 {
		t.Fatal("product schema")
	}
	if (&Join{Left: scan, Right: other}).Schema().Arity() != 3 {
		t.Fatal("join schema")
	}
	if (&SemiJoin{Left: scan, Right: other}).Schema().Arity() != 2 {
		t.Fatal("semi-join schema keeps the left")
	}
	if (&ComplementJoin{Left: scan, Right: other}).Schema().Arity() != 2 {
		t.Fatal("complement-join schema keeps the left")
	}
	oj := &OuterJoin{Left: scan, Right: other}
	if oj.Schema().Arity() != 3 || !oj.Schema()[2].Internal {
		t.Fatal("outer-join appends internal right columns")
	}
	coj := &ConstrainedOuterJoin{Left: scan, Right: other}
	if coj.Schema().Arity() != 3 || !coj.Schema()[2].Internal {
		t.Fatal("constrained outer-join appends one internal flag")
	}
	div := &Division{Dividend: scan, Divisor: other, KeyCols: []int{0}, DivCols: []int{1}}
	if div.Schema().Arity() != 1 {
		t.Fatal("division schema is the key projection")
	}
}

func TestConstraintHolds(t *testing.T) {
	coj := &ConstrainedOuterJoin{Constraint: []NullCond{{Col: 1, IsNull: true}}}
	if !coj.ConstraintHolds(relation.NewTuple(relation.Int(1), relation.Null())) {
		t.Fatal("null constraint must hold on ∅")
	}
	if coj.ConstraintHolds(relation.NewTuple(relation.Int(1), relation.Mark())) {
		t.Fatal("null constraint must fail on ⊥")
	}
	empty := &ConstrainedOuterJoin{}
	if !empty.ConstraintHolds(relation.NewTuple()) {
		t.Fatal("empty constraint holds vacuously")
	}
}

func TestExplainRendering(t *testing.T) {
	sc := relation.NewSchema("a")
	scan := NewScan("r", sc)
	plan := &Project{
		Input: &Select{Input: &ComplementJoin{Left: scan, Right: NewScan("s", sc), On: []ColPair{{0, 0}}}, Pred: True{}},
		Cols:  []int{0},
	}
	out := Explain(plan)
	for _, want := range []string{"π[1]", "σ[true]", "⊼[1=1]", "Scan r", "Scan s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain misses %q:\n%s", want, out)
		}
	}
	// Indentation reflects the tree depth.
	if !strings.Contains(out, "\n  σ") || !strings.Contains(out, "\n    ⊼") {
		t.Errorf("Explain indentation wrong:\n%s", out)
	}
}

func TestExplainBool(t *testing.T) {
	sc := relation.NewSchema("a")
	bp := &BoolAnd{Inputs: []BoolPlan{
		&NotEmpty{Input: NewScan("r", sc)},
		&BoolNot{Input: &IsEmpty{Input: NewScan("s", sc)}},
		&BoolConst{Value: true},
		&BoolOr{Inputs: []BoolPlan{&BoolConst{Value: false}}},
	}}
	out := ExplainBool(bp)
	for _, want := range []string{"AND", "≠∅", "NOT", "=∅", "TRUE", "OR", "FALSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainBool misses %q:\n%s", want, out)
		}
	}
}

func TestCountOperators(t *testing.T) {
	sc := relation.NewSchema("a")
	plan := &Union{
		Left:  &Select{Input: NewScan("r", sc), Pred: True{}},
		Right: NewScan("s", sc),
	}
	n := CountOperators(plan, func(p Plan) bool { _, ok := p.(*Scan); return ok })
	if n != 2 {
		t.Fatalf("CountOperators = %d, want 2", n)
	}
	bp := &BoolOr{Inputs: []BoolPlan{&NotEmpty{Input: plan}, &IsEmpty{Input: NewScan("t", sc)}}}
	n = CountBoolOperators(bp, func(p Plan) bool { _, ok := p.(*Scan); return ok })
	if n != 3 {
		t.Fatalf("CountBoolOperators = %d, want 3", n)
	}
}

func TestDescribeStrings(t *testing.T) {
	sc := relation.NewSchema("a")
	r, s2 := NewScan("r", sc), NewScan("s", sc)
	cases := map[string]Plan{
		"Scan r":             r,
		"×":                  &Product{Left: r, Right: s2},
		"∪":                  &Union{Left: r, Right: s2},
		"−":                  &Diff{Left: r, Right: s2},
		"∩":                  &Intersect{Left: r, Right: s2},
		"Materialize tmp":    &Materialize{Input: r, Label: "tmp"},
		"÷[key 1; div 1]":    &Division{Dividend: r, Divisor: s2, KeyCols: []int{0}, DivCols: []int{0}},
		"⟕[1=1]":             &OuterJoin{Left: r, Right: s2, On: []ColPair{{0, 0}}},
		"⋉[1=1]":             &SemiJoin{Left: r, Right: s2, On: []ColPair{{0, 0}}},
		"⟕⊥[1=1] const{2≠∅}": &ConstrainedOuterJoin{Left: r, Right: s2, On: []ColPair{{0, 0}}, Constraint: []NullCond{{Col: 1, IsNull: false}}},
	}
	for want, p := range cases {
		if got := p.Describe(); got != want {
			t.Errorf("Describe = %q, want %q", got, want)
		}
	}
}
