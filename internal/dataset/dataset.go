// Package dataset generates the synthetic workloads the benchmark harness
// runs on. The paper has no evaluation datasets (its claims are about plan
// shape); these generators provide scalable databases with controlled
// cardinalities and selectivities so the claims become measurable:
//
//   - University — the paper's running example schema (students, lectures,
//     attendance, departments, languages);
//   - PTU — a scalable version of the P/T/U relations of Figs. 2-4 for the
//     disjunctive-filter experiments;
//   - RSTG — generic R(x,y), S(x,y,z), T(y,z), G(x,y,z) relations for the
//     Proposition 4 quantifier-nesting experiments.
//
// All generators are deterministic in their seed.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/storage"
)

// UniversityParams sizes the university database.
type UniversityParams struct {
	Students    int
	Professors  int
	Lectures    int // lectures per department is Lectures/len(Departments)
	Departments []string
	Languages   []string
	// AttendProb is the probability a student attends a given lecture.
	AttendProb float64
	// SpeakProb is the probability a person speaks a given language.
	SpeakProb float64
	// PhDShare is the share of students making a PhD.
	PhDShare float64
	Seed     int64
}

// DefaultUniversity returns parameters scaled by n students.
func DefaultUniversity(n int) UniversityParams {
	return UniversityParams{
		Students:    n,
		Professors:  n / 10,
		Lectures:    n / 5,
		Departments: []string{"cs", "math", "bio"},
		Languages:   []string{"french", "german", "english"},
		AttendProb:  0.3,
		SpeakProb:   0.4,
		PhDShare:    0.2,
		Seed:        1,
	}
}

// University builds the running-example catalog:
//
//	student(name)             prof(name)
//	lecture(id, dept)         cs_lecture(id)
//	attends(name, lecture)    enrolled(name, dept)
//	makes(name, degree)       member(name, dept)
//	speaks(name, language)    skill(name, topic)
func University(p UniversityParams) *storage.Catalog {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := storage.NewCatalog()

	student := cat.MustDefine("student", relation.NewSchema("name"))
	prof := cat.MustDefine("prof", relation.NewSchema("name"))
	lecture := cat.MustDefine("lecture", relation.NewSchema("id", "dept"))
	csLecture := cat.MustDefine("cs_lecture", relation.NewSchema("id"))
	attends := cat.MustDefine("attends", relation.NewSchema("name", "lecture"))
	enrolled := cat.MustDefine("enrolled", relation.NewSchema("name", "dept"))
	makes := cat.MustDefine("makes", relation.NewSchema("name", "degree"))
	member := cat.MustDefine("member", relation.NewSchema("name", "dept"))
	speaks := cat.MustDefine("speaks", relation.NewSchema("name", "language"))
	skill := cat.MustDefine("skill", relation.NewSchema("name", "topic"))

	if p.Lectures < 1 {
		p.Lectures = 1
	}
	lectures := make([]string, p.Lectures)
	for i := range lectures {
		dept := p.Departments[i%len(p.Departments)]
		id := fmt.Sprintf("%s%03d", dept, i)
		lectures[i] = id
		lecture.InsertValues(relation.Str(id), relation.Str(dept))
		if dept == "cs" {
			csLecture.InsertValues(relation.Str(id))
		}
	}

	person := func(kind string, i int) string { return fmt.Sprintf("%s%04d", kind, i) }

	for i := 0; i < p.Students; i++ {
		name := person("s", i)
		student.InsertValues(relation.Str(name))
		dept := p.Departments[rng.Intn(len(p.Departments))]
		enrolled.InsertValues(relation.Str(name), relation.Str(dept))
		member.InsertValues(relation.Str(name), relation.Str(dept))
		if rng.Float64() < p.PhDShare {
			makes.InsertValues(relation.Str(name), relation.Str("PhD"))
		} else if rng.Float64() < 0.5 {
			makes.InsertValues(relation.Str(name), relation.Str("MSc"))
		}
		for _, l := range lectures {
			if rng.Float64() < p.AttendProb {
				attends.InsertValues(relation.Str(name), relation.Str(l))
			}
		}
		for _, lang := range p.Languages {
			if rng.Float64() < p.SpeakProb {
				speaks.InsertValues(relation.Str(name), relation.Str(lang))
			}
		}
		if rng.Float64() < 0.3 {
			skill.InsertValues(relation.Str(name), relation.Str([]string{"db", "ai", "math"}[rng.Intn(3)]))
		}
	}
	for i := 0; i < p.Professors; i++ {
		name := person("p", i)
		prof.InsertValues(relation.Str(name))
		dept := p.Departments[rng.Intn(len(p.Departments))]
		member.InsertValues(relation.Str(name), relation.Str(dept))
		for _, lang := range p.Languages {
			if rng.Float64() < p.SpeakProb {
				speaks.InsertValues(relation.Str(name), relation.Str(lang))
			}
		}
		if rng.Float64() < 0.5 {
			skill.InsertValues(relation.Str(name), relation.Str([]string{"db", "ai", "math"}[rng.Intn(3)]))
		}
	}
	return cat
}

// PTUParams sizes the scalable Fig. 2 database: P has N unary tuples; each
// value of P is in T (respectively U) with the given probability, and T/U
// additionally carry ExtraShare·N values outside P.
type PTUParams struct {
	N          int
	TProb      float64
	UProb      float64
	ExtraShare float64
	// Branches > 2 adds relations T2, T3, … for n-way disjunction sweeps.
	Branches int
	Seed     int64
}

// PTU builds P, T, U (and T2…Tk for k-way disjunctions).
func PTU(p PTUParams) *storage.Catalog {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := storage.NewCatalog()
	pr := cat.MustDefine("P", relation.NewSchema("v"))
	names := []string{"T", "U"}
	for i := 2; i < p.Branches; i++ {
		names = append(names, fmt.Sprintf("T%d", i))
	}
	rels := make([]*relation.Relation, len(names))
	probs := make([]float64, len(names))
	for i, n := range names {
		rels[i] = cat.MustDefine(n, relation.NewSchema("v"))
		if i == 0 {
			probs[i] = p.TProb
		} else {
			probs[i] = p.UProb
		}
	}
	for i := 0; i < p.N; i++ {
		v := relation.Str(fmt.Sprintf("v%06d", i))
		pr.InsertValues(v)
		for j, r := range rels {
			if rng.Float64() < probs[j] {
				r.InsertValues(v)
			}
		}
	}
	extra := int(float64(p.N) * p.ExtraShare)
	for i := 0; i < extra; i++ {
		v := relation.Str(fmt.Sprintf("w%06d", i))
		for _, r := range rels {
			if rng.Float64() < 0.5 {
				r.InsertValues(v)
			}
		}
	}
	return cat
}

// RSTGParams sizes the Proposition 4 database: R(x,y), S(x,y,z), T(y,z),
// G(x,y,z) over integer domains of the given sizes.
type RSTGParams struct {
	Xs, Ys, Zs int
	// RProb etc. are tuple-inclusion probabilities.
	RProb, SProb, TProb, GProb float64
	Seed                       int64
}

// DefaultRSTG returns moderate densities over an n-sized x-domain.
func DefaultRSTG(n int) RSTGParams {
	return RSTGParams{
		Xs: n, Ys: n / 2, Zs: 8,
		RProb: 0.2, SProb: 0.1, TProb: 0.4, GProb: 0.5,
		Seed: 7,
	}
}

// RSTG builds the four generic relations.
func RSTG(p RSTGParams) *storage.Catalog {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("x", "y"))
	s := cat.MustDefine("S", relation.NewSchema("x", "y", "z"))
	t := cat.MustDefine("T", relation.NewSchema("y", "z"))
	g := cat.MustDefine("G", relation.NewSchema("x", "y", "z"))
	if p.Ys < 1 {
		p.Ys = 1
	}
	if p.Zs < 1 {
		p.Zs = 1
	}
	for x := 0; x < p.Xs; x++ {
		for y := 0; y < p.Ys; y++ {
			if rng.Float64() < p.RProb {
				r.InsertValues(relation.Int(int64(x)), relation.Int(int64(y)))
			}
			for z := 0; z < p.Zs; z++ {
				if rng.Float64() < p.SProb {
					s.InsertValues(relation.Int(int64(x)), relation.Int(int64(y)), relation.Int(int64(z)))
				}
				if rng.Float64() < p.GProb {
					g.InsertValues(relation.Int(int64(x)), relation.Int(int64(y)), relation.Int(int64(z)))
				}
			}
		}
	}
	for y := 0; y < p.Ys; y++ {
		for z := 0; z < p.Zs; z++ {
			if rng.Float64() < p.TProb {
				t.InsertValues(relation.Int(int64(y)), relation.Int(int64(z)))
			}
		}
	}
	return cat
}
