package dataset

import (
	"testing"

	"repro/internal/relation"
)

func TestUniversityShape(t *testing.T) {
	cat := University(DefaultUniversity(100))
	for _, name := range []string{"student", "prof", "lecture", "cs_lecture", "attends", "enrolled", "makes", "member", "speaks", "skill"} {
		if !cat.Has(name) {
			t.Fatalf("missing relation %q", name)
		}
	}
	st, _ := cat.Relation("student")
	if st.Len() != 100 {
		t.Fatalf("students = %d, want 100", st.Len())
	}
	// Every attendance references a student and a lecture.
	att, _ := cat.Relation("attends")
	stud, _ := cat.Relation("student")
	lec, _ := cat.Relation("lecture")
	lecIDs := make(map[string]bool)
	for _, tu := range lec.Tuples() {
		lecIDs[tu[0].AsString()] = true
	}
	for _, tu := range att.Tuples() {
		if !stud.Contains(relation.NewTuple(tu[0])) {
			t.Fatalf("attends references unknown student %s", tu[0])
		}
		if !lecIDs[tu[1].AsString()] {
			t.Fatalf("attends references unknown lecture %s", tu[1])
		}
	}
	// cs_lecture is exactly the cs-department slice of lecture.
	cs, _ := cat.Relation("cs_lecture")
	n := 0
	for _, tu := range lec.Tuples() {
		if tu[1].AsString() == "cs" {
			n++
			if !cs.Contains(relation.NewTuple(tu[0])) {
				t.Fatalf("cs lecture %s missing from cs_lecture", tu[0])
			}
		}
	}
	if cs.Len() != n {
		t.Fatalf("cs_lecture has %d rows, want %d", cs.Len(), n)
	}
}

func TestUniversityDeterministic(t *testing.T) {
	a := University(DefaultUniversity(50))
	b := University(DefaultUniversity(50))
	for _, name := range a.Names() {
		ra, _ := a.Relation(name)
		rb, _ := b.Relation(name)
		if !ra.Equal(rb) {
			t.Fatalf("relation %q differs between identically-seeded runs", name)
		}
	}
}

func TestPTUShape(t *testing.T) {
	cat := PTU(PTUParams{N: 200, TProb: 0.5, UProb: 0.3, ExtraShare: 0.2, Branches: 4, Seed: 3})
	p, _ := cat.Relation("P")
	if p.Len() != 200 {
		t.Fatalf("P = %d, want 200", p.Len())
	}
	for _, name := range []string{"T", "U", "T2", "T3"} {
		if !cat.Has(name) {
			t.Fatalf("missing branch relation %q", name)
		}
	}
	tr, _ := cat.Relation("T")
	if tr.Len() == 0 || tr.Len() >= 200+40 {
		t.Fatalf("T size %d implausible for prob 0.5", tr.Len())
	}
}

func TestRSTGShape(t *testing.T) {
	cat := RSTG(DefaultRSTG(40))
	for _, name := range []string{"R", "S", "T", "G"} {
		if !cat.Has(name) {
			t.Fatalf("missing %q", name)
		}
		r, _ := cat.Relation(name)
		if r.Len() == 0 {
			t.Fatalf("%q is empty", name)
		}
	}
	g, _ := cat.Relation("G")
	if g.Arity() != 3 {
		t.Fatalf("G arity = %d", g.Arity())
	}
}
