//go:build race

package core

// Reduced round count under the race detector; see rounds_norace_test.go.
const crossStrategyRounds = 6
