package core

import (
	"sync"
	"testing"

	"repro/internal/testutil"
)

// TestEngineConcurrentColdQueriesSingleFlight is the engine-level hammer
// behind E15: eight concurrent cold queries on one engine (parallelism 8)
// all share the same root fingerprint, and exactly one of them evaluates
// the plan — every other run streams from the producer's in-flight spool or
// replays the published entry, reading zero base tuples.
func TestEngineConcurrentColdQueriesSingleFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	const q = `{ x | student(x) and not exists y: attends(x, y) and not lecture(y) }`
	const n = 8

	// The cache-off answer and the single-run cold cost, for comparison.
	off, err := NewEngine(demoDB()).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	coldRef, err := NewEngine(demoDB(), WithPlanCache(0), WithParallelism(8)).Query(q)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(demoDB(), WithPlanCache(0), WithParallelism(8))
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i], errs[i] = eng.Query(q)
		}()
	}
	close(start)
	wg.Wait()

	var producers, totalReads, hits, dups, misses int64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !results[i].Rows.Equal(off.Rows) {
			t.Fatalf("run %d differs from the cache-off answer", i)
		}
		st := results[i].Stats
		totalReads += st.BaseTuplesRead
		hits += st.CacheHits
		dups += st.CacheDuplicatesAvoided
		misses += st.CacheMisses
		if st.CacheMisses > 0 {
			producers++
			continue
		}
		// A non-producer must not have touched any base relation: all its
		// tuples came off the shared spool or the published entry.
		if st.BaseTuplesRead != 0 {
			t.Fatalf("run %d read %d base tuples without producing", i, st.BaseTuplesRead)
		}
		if st.CacheHits+st.CacheDuplicatesAvoided == 0 {
			t.Fatalf("run %d neither produced nor shared: %s", i, st.String())
		}
	}
	// Exactly one run evaluated the plan; its cost is the one-cold-run cost.
	if producers != 1 {
		t.Fatalf("%d producer runs, want exactly 1 (hits=%d dups=%d misses=%d)", producers, hits, dups, misses)
	}
	if totalReads != coldRef.Stats.BaseTuplesRead {
		t.Fatalf("total base reads %d, want one cold evaluation's %d", totalReads, coldRef.Stats.BaseTuplesRead)
	}
	if hits+dups < n-1 {
		t.Fatalf("hits(%d)+duplicates avoided(%d) < %d", hits, dups, n-1)
	}
	if got := eng.Robustness().SpoolsAbandoned; got != 0 {
		t.Fatalf("clean hammer abandoned %d spools", got)
	}
}
