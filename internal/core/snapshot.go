package core

// This file is the engine's unified observability surface. Before it, three
// ad-hoc windows existed side by side: per-run exec.Stats on each Result,
// the cumulative Engine.Robustness() counters, and the scattered plan-cache
// accessors (PlanCacheInfo, PlanCacheBudget, PlanCacheAbandoned). Snapshot
// replaces the trio with one exported, JSON-tagged, versioned record that a
// service tier can serve verbatim (queryd's /stats) and that diffing tools
// can subtract window over window. The old accessors survive as thin
// deprecated wrappers over Snapshot, so queryctl and benchrepro migrate
// without churn.

// SnapshotVersion is the schema version stamped into every Snapshot. Bump
// it whenever a field is added, renamed, or changes meaning, so persisted
// snapshots (load-test records, committed baselines) stay interpretable.
// Version 2 added the batch-executor surface: batches_emitted (counter) and
// avg_batch_fill (gauge).
const SnapshotVersion = 2

// Snapshot is a point-in-time view of one Engine: the cumulative execution
// counters folded from every run since construction, the cumulative
// robustness counters, and the plan-cache occupancy gauges. All counter
// fields are monotone (Diff subtracts them); the gauge fields report the
// current state and survive Diff unchanged.
//
// JSON field names are the canonical wire names: benchrepro -json rows and
// the queryd /stats endpoint use exactly these keys.
type Snapshot struct {
	// Version is the Snapshot schema version (SnapshotVersion).
	Version int `json:"version"`
	// Strategy is the engine's evaluation strategy at snapshot time.
	Strategy string `json:"strategy"`
	// Runs counts executions folded into the counters: every RunContext or
	// StreamContext entered (through any wrapper), successful or not.
	// Prepare-only calls do not count.
	Runs int64 `json:"runs"`

	// Execution counters — the cumulative sums of exec.Stats across runs.
	BaseTuplesRead     int64 `json:"base_tuples_read"`
	Comparisons        int64 `json:"comparisons"`
	HashInserts        int64 `json:"hash_inserts"`
	IntermediateTuples int64 `json:"intermediate_tuples"`
	Materializations   int64 `json:"materializations"`
	OutputTuples       int64 `json:"output_tuples"`
	PartitionsExecuted int64 `json:"partitions_executed"`
	// BatchesEmitted counts blocks emitted by producing batch operators (0
	// on tuple-at-a-time runs). Memo replay and single-flight consumption
	// are excluded, keeping the counter deterministic under concurrency.
	BatchesEmitted int64 `json:"batches_emitted"`
	// AvgBatchFill is the cumulative average tuples per emitted block — a
	// derived gauge (0 when no blocks were emitted); Diff keeps the
	// receiver's value.
	AvgBatchFill float64 `json:"avg_batch_fill"`

	// Plan-cache counters.
	CacheHits              int64 `json:"cache_hits"`
	CacheMisses            int64 `json:"cache_misses"`
	CacheTuplesReplayed    int64 `json:"cache_tuples_replayed"`
	CacheTuplesSpooled     int64 `json:"cache_tuples_spooled"`
	CacheSingleFlightWaits int64 `json:"cache_single_flight_waits"`
	CacheDuplicatesAvoided int64 `json:"cache_duplicates_avoided"`
	// CacheSpoolsAbandoned counts spools given up before publication,
	// attributed to the runs that abandoned them. The memo-lifetime total
	// (which also counts generation-flush abandons no run observes) is the
	// MemoSpoolsAbandoned gauge below.
	CacheSpoolsAbandoned int64 `json:"cache_spools_abandoned"`

	// Robustness counters.
	PanicsRecovered   int64 `json:"panics_recovered"`
	LimitsTripped     int64 `json:"limits_tripped"`
	DegradedEvictions int64 `json:"degraded_evictions"`

	// Plan-cache occupancy gauges (point-in-time; Diff keeps the receiver's
	// values).
	CacheEnabled        bool  `json:"cache_enabled"`
	CacheEntries        int   `json:"cache_entries"`
	CacheTuples         int   `json:"cache_tuples"`
	CacheBudget         int   `json:"cache_budget"`
	MemoSpoolsAbandoned int64 `json:"memo_spools_abandoned"`
}

// Snapshot returns the engine's current unified counter snapshot. It is
// safe to call concurrently with executions; the counters are folded once
// per run, so a snapshot taken mid-run reflects only completed runs.
func (e *Engine) Snapshot() Snapshot {
	e.snapMu.Lock()
	cum, runs := e.cum, e.runs
	e.snapMu.Unlock()
	s := Snapshot{
		Version:  SnapshotVersion,
		Strategy: e.strategy.String(),
		Runs:     runs,

		BaseTuplesRead:     cum.BaseTuplesRead,
		Comparisons:        cum.Comparisons,
		HashInserts:        cum.HashInserts,
		IntermediateTuples: cum.IntermediateTuples,
		Materializations:   cum.Materializations,
		OutputTuples:       cum.OutputTuples,
		PartitionsExecuted: cum.PartitionsExecuted,
		BatchesEmitted:     cum.BatchesEmitted,

		CacheHits:              cum.CacheHits,
		CacheMisses:            cum.CacheMisses,
		CacheTuplesReplayed:    cum.CacheTuplesReplayed,
		CacheTuplesSpooled:     cum.CacheTuplesSpooled,
		CacheSingleFlightWaits: cum.CacheSingleFlightWaits,
		CacheDuplicatesAvoided: cum.CacheDuplicatesAvoided,
		CacheSpoolsAbandoned:   cum.CacheSpoolsAbandoned,

		PanicsRecovered:   cum.PanicsRecovered,
		LimitsTripped:     cum.LimitsTripped,
		DegradedEvictions: cum.DegradedEvictions,
	}
	if cum.BatchesEmitted > 0 {
		s.AvgBatchFill = float64(cum.BatchTuples) / float64(cum.BatchesEmitted)
	}
	if e.memo != nil {
		s.CacheEnabled = true
		s.CacheEntries, s.CacheTuples = e.memo.Entries(), e.memo.Tuples()
		s.CacheBudget = e.memo.Budget()
		s.MemoSpoolsAbandoned = e.memo.SpoolsAbandoned()
	}
	return s
}

// Diff returns the counter movement from prev to s: every monotone counter
// is subtracted, while Version, Strategy and the occupancy gauges keep the
// receiver's (newer) values. Subtracting a snapshot of a different version
// still subtracts field by field; callers comparing persisted snapshots
// should check Version first.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := s
	d.Runs -= prev.Runs
	d.BaseTuplesRead -= prev.BaseTuplesRead
	d.Comparisons -= prev.Comparisons
	d.HashInserts -= prev.HashInserts
	d.IntermediateTuples -= prev.IntermediateTuples
	d.Materializations -= prev.Materializations
	d.OutputTuples -= prev.OutputTuples
	d.PartitionsExecuted -= prev.PartitionsExecuted
	// AvgBatchFill is a gauge: Diff keeps the receiver's value.
	d.BatchesEmitted -= prev.BatchesEmitted
	d.CacheHits -= prev.CacheHits
	d.CacheMisses -= prev.CacheMisses
	d.CacheTuplesReplayed -= prev.CacheTuplesReplayed
	d.CacheTuplesSpooled -= prev.CacheTuplesSpooled
	d.CacheSingleFlightWaits -= prev.CacheSingleFlightWaits
	d.CacheDuplicatesAvoided -= prev.CacheDuplicatesAvoided
	d.CacheSpoolsAbandoned -= prev.CacheSpoolsAbandoned
	d.PanicsRecovered -= prev.PanicsRecovered
	d.LimitsTripped -= prev.LimitsTripped
	d.DegradedEvictions -= prev.DegradedEvictions
	return d
}
