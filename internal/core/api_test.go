package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/relation"
)

// TestTypedErrors checks that Prepare failures classify into the three
// wrapper types and stay errors.As/Is-compatible.
func TestTypedErrors(t *testing.T) {
	eng := NewEngine(demoDB())

	_, err := eng.Query(`{ x | student( }`)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("syntax failure = %T(%v), want *ParseError", err, err)
	}
	if pe.Input == "" || pe.Unwrap() == nil {
		t.Fatalf("ParseError missing context: %+v", pe)
	}

	_, err = eng.Query(`{ x | not student(x) }`)
	var se *SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("unsafe query = %T(%v), want *SafetyError", err, err)
	}
	if errors.As(err, &pe) {
		t.Fatal("safety error must not classify as parse error")
	}

	_, err = eng.Query(`{ x | no_such_relation(x) }`)
	var le *PlanError
	if !errors.As(err, &le) {
		t.Fatalf("unknown relation = %T(%v), want *PlanError", err, err)
	}
	if le.Stage == "" {
		t.Fatalf("PlanError missing stage: %+v", le)
	}
}

// largeDB builds a university big enough that the product-shaped query in
// the deadline tests runs for much longer than the test deadlines.
func largeDB(t *testing.T) *DB {
	t.Helper()
	p := dataset.DefaultUniversity(20000)
	p.Lectures = 60
	p.AttendProb = 0.02
	cat := dataset.University(p)
	db := NewDB()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Add(r)
	}
	return db
}

const longQuery = `{ x, y | student(x) and cs_lecture(y) and not attends(x, y) }`

// TestWithTimeoutAbortsLongQuery: an engine-level WithTimeout cancels a
// long-running query within its deadline, for both the serial and the
// partitioned executor, surfacing context.DeadlineExceeded.
func TestWithTimeoutAbortsLongQuery(t *testing.T) {
	db := largeDB(t)
	for _, par := range []int{1, 4} {
		eng := NewEngine(db, WithParallelism(par), WithTimeout(5*time.Millisecond))
		start := time.Now()
		res, err := eng.Query(longQuery)
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parallel=%d: err = %v (res=%v), want context.DeadlineExceeded", par, err, res)
		}
		// Generous bound: the point is that it aborted, not that it was
		// instantaneous (cancellation is polled every 1024 tuples).
		if elapsed > 2*time.Second {
			t.Fatalf("parallel=%d: abort took %s", par, elapsed)
		}
	}
}

// TestQueryContextCancel: a caller-supplied context cancels a run.
func TestQueryContextCancel(t *testing.T) {
	db := largeDB(t)
	eng := NewEngine(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, longQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryContextCompletes: an inert context changes nothing, and the
// parallel engine agrees with the serial one on the same query.
func TestQueryContextCompletes(t *testing.T) {
	db := demoDB()
	serial := NewEngine(db)
	want, err := serial.QueryContext(context.Background(), `{ x | student(x) and not exists y: attends(x, y) }`)
	if err != nil {
		t.Fatal(err)
	}
	par := NewEngine(db, WithParallelism(4))
	got, err := par.QueryContext(context.Background(), `{ x | student(x) and not exists y: attends(x, y) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows.Equal(want.Rows) {
		t.Fatalf("parallel engine disagrees:\n%s\nvs\n%s", got.Rows, want.Rows)
	}
}

// TestCheckContext: the context-first constraint check works and still
// rejects open queries.
func TestCheckContext(t *testing.T) {
	eng := NewEngine(demoDB(), WithParallelism(2))
	ok, err := eng.CheckContext(context.Background(), `forall x, y: attends(x, y) => student(x)`)
	if err != nil || !ok {
		t.Fatalf("constraint: %v %v", ok, err)
	}
	if _, err := eng.CheckContext(context.Background(), `{ x | student(x) }`); err == nil {
		t.Fatal("open queries are not constraints")
	}
}

// TestStreamContextCancel: cancellation surfaces from StreamContext with
// partial stats.
func TestStreamContextCancel(t *testing.T) {
	db := largeDB(t)
	eng := NewEngine(db)
	p, err := eng.Prepare(longQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	_, err = eng.StreamContext(ctx, p, func(relation.Tuple) bool { n++; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConfigureAccessors: options land in the accessors, and invalid
// values are clamped.
func TestConfigureAccessors(t *testing.T) {
	eng := NewEngine(demoDB(),
		WithStrategy(StrategyCodd),
		WithIndexes(true),
		WithParallelism(8),
		WithTimeout(time.Second),
	)
	if eng.Strategy() != StrategyCodd || !eng.UseIndexes() || eng.Parallelism() != 8 || eng.Timeout() != time.Second {
		t.Fatalf("accessors disagree with options: %v %v %v %v",
			eng.Strategy(), eng.UseIndexes(), eng.Parallelism(), eng.Timeout())
	}
	eng.Configure(WithParallelism(-3), WithTimeout(-time.Second), WithStrategy(StrategyBry))
	if eng.Parallelism() != 1 || eng.Timeout() != 0 || eng.Strategy() != StrategyBry {
		t.Fatalf("clamping failed: %v %v", eng.Parallelism(), eng.Timeout())
	}
}
