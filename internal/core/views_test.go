package core

import (
	"testing"

	"repro/internal/relation"
)

func TestEngineWithViews(t *testing.T) {
	db := demoDB()
	if err := db.DefineView("busy", `{ x | exists y: attends(x, y) }`); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineView("idle", `{ x | student(x) and not busy(x) }`); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db)
	res, err := eng.Query(`{ x | idle(x) }`)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewUnnamed(res.Rows.Schema())
	want.InsertValues(relation.Str("eve"))
	if !res.Rows.Equal(want) {
		t.Fatalf("got:\n%s\nwant eve", res.Rows)
	}

	// Views as universal ranges (Definition 1: "a relation or a view").
	res, err = eng.Query(`forall x: busy(x) => student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truth {
		t.Fatal("every busy person is a student here")
	}

	// All three strategies agree on view queries.
	for _, s := range []Strategy{StrategyBry, StrategyCodd, StrategyLoop} {
		eng.Configure(WithStrategy(s))
		r2, err := eng.Query(`{ x | idle(x) }`)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !r2.Rows.Equal(want) {
			t.Fatalf("%v disagrees:\n%s", s, r2.Rows)
		}
	}
}

func TestDefineViewConflicts(t *testing.T) {
	db := demoDB()
	if err := db.DefineView("student", `{ x | attends(x, "db101") }`); err == nil {
		t.Fatal("view shadowing a base relation must be rejected")
	}
	if err := db.DefineView("v", `exists x: student(x)`); err == nil {
		t.Fatal("closed view definitions must be rejected")
	}
}
