package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/translate"
)

func demoDB() *DB {
	db := NewDB()
	st := db.MustDefine("student", "name")
	for _, n := range []string{"ann", "bob", "eve"} {
		st.InsertValues(relation.Str(n))
	}
	att := db.MustDefine("attends", "name", "lecture")
	att.InsertValues(relation.Str("ann"), relation.Str("db101"))
	att.InsertValues(relation.Str("bob"), relation.Str("db101"))
	lec := db.MustDefine("lecture", "id")
	lec.InsertValues(relation.Str("db101"))
	return db
}

func TestEngineOpenQuery(t *testing.T) {
	eng := NewEngine(demoDB())
	res, err := eng.Query(`{ x | student(x) and not exists y: attends(x, y) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Open || res.Rows.Len() != 1 {
		t.Fatalf("want exactly eve, got:\n%s", res.Rows)
	}
	if res.Rows.At(0)[0].AsString() != "eve" {
		t.Fatalf("want eve, got %s", res.Rows.At(0))
	}
}

func TestEngineClosedQuery(t *testing.T) {
	eng := NewEngine(demoDB())
	res, err := eng.Query(`forall y: lecture(y) => exists x: attends(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open || !res.Truth {
		t.Fatalf("every lecture is attended; got %+v", res)
	}
}

func TestEngineCheckConstraint(t *testing.T) {
	eng := NewEngine(demoDB())
	ok, err := eng.Check(`forall x, y: attends(x, y) => student(x)`)
	if err != nil || !ok {
		t.Fatalf("referential constraint must hold: %v %v", ok, err)
	}
	// Violate it.
	att, _ := eng.db.cat.Relation("attends")
	att.InsertValues(relation.Str("ghost"), relation.Str("db101"))
	ok, err = eng.Check(`forall x, y: attends(x, y) => student(x)`)
	if err != nil || ok {
		t.Fatalf("constraint must now fail: %v %v", ok, err)
	}
	if _, err := eng.Check(`{ x | student(x) }`); err == nil {
		t.Fatal("open queries are not constraints")
	}
}

func TestEngineExplain(t *testing.T) {
	eng := NewEngine(demoDB())
	out, err := eng.Explain(`{ x | student(x) and not exists y: attends(x, y) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "canonical:") || !strings.Contains(out, "complement-join") {
		t.Fatalf("explain output misses the plan:\n%s", out)
	}
}

func TestEnginePreparedReuse(t *testing.T) {
	eng := NewEngine(demoDB())
	p, err := eng.Prepare(`exists x: student(x)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := eng.Run(p)
		if err != nil || !res.Truth {
			t.Fatalf("run %d: %v %v", i, res, err)
		}
	}
}

func TestEngineStrategies(t *testing.T) {
	for _, s := range []Strategy{StrategyBry, StrategyCodd, StrategyLoop} {
		eng := NewEngine(demoDB(), WithStrategy(s))
		res, err := eng.Query(`{ x | student(x) and not exists y: attends(x, y) }`)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Rows.Len() != 1 {
			t.Fatalf("%v: got %d rows", s, res.Rows.Len())
		}
	}
}

func TestEngineParseError(t *testing.T) {
	eng := NewEngine(demoDB())
	if _, err := eng.Query(`{ x | student(`); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := eng.Query(`{ x | not student(x) }`); err == nil {
		t.Fatal("want safety error")
	}
}

// --- Cross-strategy property test ------------------------------------------

// randomDB fills the fixed test schema with random tuples.
func randomDB(rng *rand.Rand) *DB {
	db := NewDB()
	vals := []string{"a", "b", "c", "d"}
	fill := func(name string, arity, n int) {
		cols := make([]string, arity)
		for i := range cols {
			cols[i] = string(rune('x' + i))
		}
		r := db.MustDefine(name, cols...)
		for i := 0; i < n; i++ {
			t := make(relation.Tuple, arity)
			for j := range t {
				t[j] = relation.Str(vals[rng.Intn(len(vals))])
			}
			r.Insert(t)
		}
	}
	fill("p", 1, rng.Intn(4)+1)
	fill("q", 1, rng.Intn(4))
	fill("r", 2, rng.Intn(8)+1)
	fill("s", 2, rng.Intn(8))
	fill("t", 1, rng.Intn(4))
	return db
}

var queryPool = []string{
	`{ x | p(x) and not q(x) }`,
	`{ x | p(x) and forall y: t(y) => r(x, y) }`,
	`{ x | p(x) and (q(x) or t(x)) }`,
	`{ x | p(x) and (not q(x) or t(x)) }`,
	`{ x | (p(x) or t(x)) and not q(x) }`,
	`{ x, y | r(x, y) and not s(x, y) }`,
	`{ x | p(x) and exists y: r(x, y) and not s(y, x) }`,
	`{ x | p(x) and not exists y: r(x, y) and not s(x, y) }`,
	`{ x | p(x) and not exists y: t(y) and not s(x, y) }`,
	`{ x | p(x) and x != "a" }`,
	`{ x | (p(x) and q(x)) or (t(x) and not q(x)) }`,
	`exists x: p(x) and not q(x)`,
	`forall x: p(x) => exists y: r(x, y)`,
	`forall x: not (p(x) and q(x) and t(x))`,
	`(exists x: p(x)) and not exists y: q(y) and t(y)`,
	`exists x: p(x) and forall y: t(y) => r(x, y)`,
	`exists x, y: r(x, y) and x != y and not s(x, y)`,
	`forall x, y: r(x, y) => (p(x) or t(x) or q(x))`,
	`exists x: (p(x) or q(x)) and (t(x) or r(x, x))`,
	`forall x: t(x) => (q(x) or exists y: r(x, y))`,
	// n-ary relations and comparisons inside disjunctive filters (the
	// "extends easily" remark after Proposition 5).
	`{ x, y | r(x, y) and (s(x, y) or x = y or not t(x)) }`,
	`{ x, y | r(x, y) and (not s(y, x) or (exists z: r(y, z)) or x = "a") }`,
	// Case 5 with an uncorrelated unary range (division path) — q may be
	// empty, exercising the vacuous-range correction term.
	`{ x | p(x) and not exists y: q(y) and not r(x, y) }`,
	`exists x: p(x) and not exists y: q(y) and not r(x, y)`,
	// Universal range written as a disjunction (the ∀∨⇒ rule).
	`forall x: not p(x) or t(x) or q(x)`,
	// Deep nesting: ∃ inside ∀ inside ∃.
	`exists x: p(x) and forall y: r(x, y) => exists z: s(y, z)`,
	// Multi-variable blocks.
	`exists x, y: r(x, y) and forall z: t(z) => s(x, z)`,
	`{ x | p(x) and forall y, z: s(y, z) => r(x, y) }`,
}

// TestCrossStrategyAgreement is the reproduction's central property test:
// on random databases, the Bry pipeline (all three disjunctive-filter
// strategies), the Codd baseline, the Fig. 1 interpreter and the domain
// oracle agree on every query in the pool.
func TestCrossStrategyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < crossStrategyRounds; round++ {
		db := randomDB(rng)
		oracle := loopeval.NewOracle(db.Catalog())
		for _, input := range queryPool {
			q := parser.MustParse(input)

			var wantRows *relation.Relation
			var wantTruth bool
			var err error
			if q.IsOpen() {
				wantRows, err = oracle.Answers(q)
			} else {
				wantTruth, err = oracle.Closed(q.Body, loopeval.Env{})
			}
			if err != nil {
				t.Fatalf("round %d oracle(%q): %v", round, input, err)
			}

			check := func(label string, eng *Engine) {
				res, err := eng.Query(input)
				if err != nil {
					t.Fatalf("round %d %s(%q): %v", round, label, input, err)
				}
				if q.IsOpen() {
					if !res.Rows.Equal(wantRows) {
						t.Fatalf("round %d %s(%q) mismatch:\ngot:\n%s\nwant:\n%s\ncanonical: %s",
							round, label, input, res.Rows, wantRows, res.Canonical)
					}
				} else if res.Truth != wantTruth {
					t.Fatalf("round %d %s(%q) = %v, want %v (canonical %s)",
						round, label, input, res.Truth, wantTruth, res.Canonical)
				}
			}

			for _, strat := range []translate.DisjFilterStrategy{
				translate.StrategyConstrainedOuterJoin,
				translate.StrategyOuterJoin,
				translate.StrategyUnion,
			} {
				check("bry/"+itoa(int(strat)), NewEngine(db, WithDisjunctiveFilters(strat)))
			}
			check("codd", NewEngine(db, WithStrategy(StrategyCodd)))
			check("codd-improved", NewEngine(db, WithStrategy(StrategyCoddImproved)))
			check("loop", NewEngine(db, WithStrategy(StrategyLoop)))
			check("bry-indexed", NewEngine(db, WithIndexes(true)))
			check("bry-seeded-universal", NewEngine(db,
				WithTranslateOptions(translate.Options{Universal: translate.UniversalComplementJoin})))
			check("bry-parallel", NewEngine(db, WithParallelism(4)))
			check("bry-parallel-union", NewEngine(db, WithParallelism(3),
				WithDisjunctiveFilters(translate.StrategyUnion)))
			check("bry-cached", NewEngine(db, WithPlanCache(0)))
			check("bry-cached-union", NewEngine(db, WithPlanCache(0),
				WithDisjunctiveFilters(translate.StrategyUnion)))
			check("bry-cached-parallel", NewEngine(db, WithPlanCache(0), WithParallelism(4)))
			check("codd-cached", NewEngine(db, WithStrategy(StrategyCodd), WithPlanCache(0)))
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// TestNormalizationPreservesAnswers: the canonical form is equivalent to
// the original query under the oracle semantics.
func TestNormalizationPreservesAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 10; round++ {
		db := randomDB(rng)
		oracle := loopeval.NewOracle(db.Catalog())
		eng := NewEngine(db)
		for _, input := range queryPool {
			q := parser.MustParse(input)
			p, err := eng.Prepare(input)
			if err != nil {
				t.Fatalf("prepare(%q): %v", input, err)
			}
			if q.IsOpen() {
				a, err := oracle.Answers(q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := oracle.Answers(p.Canonical)
				if err != nil {
					t.Fatalf("oracle on canonical %q: %v", p.Canonical, err)
				}
				if !a.Equal(b) {
					t.Fatalf("normalization changed %q:\ncanonical %s\n%s\nvs\n%s", input, p.Canonical, a, b)
				}
			} else {
				a, err := oracle.Closed(q.Body, loopeval.Env{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := oracle.Closed(p.Canonical.Body, loopeval.Env{})
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("normalization changed %q: %v vs %v (canonical %s)", input, a, b, p.Canonical)
				}
			}
		}
	}
}

func TestEngineExplainCost(t *testing.T) {
	eng := NewEngine(demoDB())
	out, err := eng.ExplainCost(`{ x | student(x) and not exists y: attends(x, y) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows≈") || !strings.Contains(out, "cost≈") {
		t.Fatalf("missing estimates:\n%s", out)
	}
	out, err = eng.ExplainCost(`exists x: student(x)`)
	if err != nil || !strings.Contains(out, "estimated cost") {
		t.Fatalf("closed query estimate missing: %v\n%s", err, out)
	}
}

func TestEngineStream(t *testing.T) {
	eng := NewEngine(demoDB())
	p, err := eng.Prepare(`{ x | student(x) }`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	st, err := eng.Stream(p, func(tu relation.Tuple) bool {
		got = append(got, tu[0].AsString())
		return len(got) < 2 // stop after two tuples
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("stream delivered %d tuples, want 2", len(got))
	}
	// Early stop reads no more students than requested plus the pipeline
	// lookahead (none for a bare scan).
	if st.BaseTuplesRead > 2 {
		t.Fatalf("early stop read %d tuples", st.BaseTuplesRead)
	}
	// Closed queries are rejected.
	pc, _ := eng.Prepare(`exists x: student(x)`)
	if _, err := eng.Stream(pc, func(relation.Tuple) bool { return true }); err == nil {
		t.Fatal("Stream on closed query must fail")
	}
	// The loop strategy falls back to materialization.
	loopEng := NewEngine(demoDB(), WithStrategy(StrategyLoop))
	pl, _ := loopEng.Prepare(`{ x | student(x) }`)
	n := 0
	if _, err := loopEng.Stream(pl, func(relation.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loop stream delivered %d", n)
	}
}
