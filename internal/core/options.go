package core

import (
	"time"

	"repro/internal/exec"
	"repro/internal/translate"
)

// Option configures an Engine at construction (NewEngine) or later
// (Configure). Options replace direct field access: the Engine's tuning
// state is unexported and read through accessors, so every configuration
// path is explicit and validated in one place.
type Option func(*Engine)

// WithStrategy selects the evaluation pipeline (default StrategyBry).
func WithStrategy(s Strategy) Option {
	return func(e *Engine) { e.strategy = s }
}

// WithTranslateOptions replaces the Bry pipeline's translation options
// wholesale (disjunctive-filter strategy, universal handling).
func WithTranslateOptions(o translate.Options) Option {
	return func(e *Engine) { e.topts = o }
}

// WithDisjunctiveFilters selects how the Bry pipeline evaluates
// disjunctive filters (§3.3): constrained outer-joins, plain outer-joins,
// or union splitting.
func WithDisjunctiveFilters(s translate.DisjFilterStrategy) Option {
	return func(e *Engine) { e.topts.DisjunctiveFilters = s }
}

// WithIndexes lets the executor probe persistent catalog indexes instead
// of building per-query hash tables where applicable.
func WithIndexes(use bool) Option {
	return func(e *Engine) { e.useIndexes = use }
}

// WithParallelism sets the partition fan-out of the hash-join family:
// build and probe sides are hash-partitioned into p disjoint partitions
// executed concurrently. Values below 2 select the serial executor.
func WithParallelism(p int) Option {
	return func(e *Engine) {
		if p < 1 {
			p = 1
		}
		e.parallelism = p
	}
}

// WithPlanCache enables the memoizing subplan cache: PrepareQuery wraps
// repeated subtrees (and plan roots) in Shared references, and executions
// resolve them against an engine-held result memo bounded to budget buffered
// tuples (budget <= 0 selects exec.DefaultMemoBudget). The memo persists
// across Query/Check/Run calls and is flushed automatically whenever any
// base relation mutates. Applying the option again replaces the memo with a
// fresh (cold) one.
func WithPlanCache(budget int) Option {
	return func(e *Engine) { e.memo = exec.NewMemo(budget) }
}

// WithoutPlanCache disables the memoizing subplan cache and drops the memo.
// Queries prepared while the cache was on keep their Shared wrappers, which
// execute transparently once no memo is installed.
func WithoutPlanCache() Option {
	return func(e *Engine) { e.memo = nil }
}

// WithTimeout bounds every execution started through this engine: the
// run is cancelled and returns context.DeadlineExceeded once the duration
// elapses. Zero (the default) means no engine-level bound; per-call bounds
// can still be set on the context passed to the *Context methods.
func WithTimeout(d time.Duration) Option {
	return func(e *Engine) {
		if d < 0 {
			d = 0
		}
		e.timeout = d
	}
}

// Configure applies options to an existing engine (e.g. a REPL switching
// strategies). Prepared queries keep the strategy they were prepared with.
func (e *Engine) Configure(opts ...Option) {
	for _, o := range opts {
		o(e)
	}
}

// Strategy returns the engine's evaluation strategy.
func (e *Engine) Strategy() Strategy { return e.strategy }

// TranslateOptions returns the Bry pipeline's translation options.
func (e *Engine) TranslateOptions() translate.Options { return e.topts }

// UseIndexes reports whether persistent-index probing is enabled.
func (e *Engine) UseIndexes() bool { return e.useIndexes }

// Parallelism returns the configured partition fan-out (1 = serial).
func (e *Engine) Parallelism() int {
	if e.parallelism < 1 {
		return 1
	}
	return e.parallelism
}

// Timeout returns the engine-level execution bound (0 = none).
func (e *Engine) Timeout() time.Duration { return e.timeout }

// PlanCacheEnabled reports whether the memoizing subplan cache is on.
func (e *Engine) PlanCacheEnabled() bool { return e.memo != nil }

// PlanCacheBudget returns the cache's tuple budget (0 when disabled).
func (e *Engine) PlanCacheBudget() int {
	if e.memo == nil {
		return 0
	}
	return e.memo.Budget()
}

// PlanCacheInfo returns the cache's current entry and buffered-tuple counts
// (both 0 when disabled).
func (e *Engine) PlanCacheInfo() (entries, tuples int) {
	if e.memo == nil {
		return 0, 0
	}
	return e.memo.Entries(), e.memo.Tuples()
}
