package core

import (
	"context"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/translate"
)

// Option configures an Engine at construction (NewEngine) or later
// (Configure). Options replace direct field access: the Engine's tuning
// state is unexported and read through accessors, so every configuration
// path is explicit and validated in one place.
type Option func(*Engine)

// WithStrategy selects the evaluation pipeline (default StrategyBry).
func WithStrategy(s Strategy) Option {
	return func(e *Engine) { e.strategy = s }
}

// WithTranslateOptions replaces the Bry pipeline's translation options
// wholesale (disjunctive-filter strategy, universal handling).
func WithTranslateOptions(o translate.Options) Option {
	return func(e *Engine) { e.topts = o }
}

// WithDisjunctiveFilters selects how the Bry pipeline evaluates
// disjunctive filters (§3.3): constrained outer-joins, plain outer-joins,
// or union splitting.
func WithDisjunctiveFilters(s translate.DisjFilterStrategy) Option {
	return func(e *Engine) { e.topts.DisjunctiveFilters = s }
}

// WithIndexes lets the executor probe persistent catalog indexes instead
// of building per-query hash tables where applicable.
func WithIndexes(use bool) Option {
	return func(e *Engine) { e.useIndexes = use }
}

// WithParallelism sets the partition fan-out of the hash-join family:
// build and probe sides are hash-partitioned into p disjoint partitions
// executed concurrently. Values below 2 select the serial executor.
func WithParallelism(p int) Option {
	return func(e *Engine) {
		if p < 1 {
			p = 1
		}
		e.parallelism = p
	}
}

// WithBatchSize sets the block capacity of the batch (block-at-a-time)
// executor used by Run/Query/Check executions. Zero — the default — selects
// the default capacity (exec.DefaultBatchSize); any negative value selects
// the classic tuple-at-a-time executor; a positive value selects that exact
// capacity. Streaming executions and boolean (emptiness) probes always run
// tuple-at-a-time regardless, since early termination dominates there.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = -1
		}
		e.batchSize = n
	}
}

// WithPlanCache enables the memoizing subplan cache: PrepareQuery wraps
// repeated subtrees (and plan roots) in Shared references, and executions
// resolve them against an engine-held result memo bounded to budget buffered
// tuples (budget <= 0 selects exec.DefaultMemoBudget). The memo persists
// across Query/Check/Run calls and is flushed automatically whenever any
// base relation mutates. Applying the option again replaces the memo with a
// fresh (cold) one.
func WithPlanCache(budget int) Option {
	return func(e *Engine) { e.memo = exec.NewMemo(budget) }
}

// WithoutPlanCache disables the memoizing subplan cache and drops the memo.
// Queries prepared while the cache was on keep their Shared wrappers, which
// execute transparently once no memo is installed.
func WithoutPlanCache() Option {
	return func(e *Engine) { e.memo = nil }
}

// WithTimeout bounds every execution started through this engine: the
// run is cancelled and returns context.DeadlineExceeded once the duration
// elapses. Zero (the default) means no engine-level bound; per-call bounds
// can still be set on the context passed to the *Context methods.
func WithTimeout(d time.Duration) Option {
	return func(e *Engine) {
		if d < 0 {
			d = 0
		}
		e.timeout = d
	}
}

// WithTupleLimit bounds every execution started through this engine to at
// most n tuples materialized or delivered, accounted across all operators
// (and all partition workers) of one run. Exceeding the bound aborts the
// query with a *ResourceError. Zero (the default) means unbounded.
func WithTupleLimit(n int64) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.tupleLimit = n
	}
}

// WithMemoryBudget bounds every execution's estimated buffered bytes (join
// build tables, materializations, dedup sets, memo spools, partition
// buffers, the result). Under pressure the engine first sheds warm plan-cache
// entries (graceful degradation); if the run still does not fit it aborts
// with a *ResourceError. Zero (the default) means unbounded.
func WithMemoryBudget(bytes int64) Option {
	return func(e *Engine) {
		if bytes < 0 {
			bytes = 0
		}
		e.memBudget = bytes
	}
}

// WithFaultPlan installs a deterministic fault-injection plan consulted at
// the executor's registered injection points and at catalog lookups. It
// exists for robustness tests; production engines never install one. A nil
// plan (or WithoutFaultPlan) removes it.
func WithFaultPlan(p *faultinject.Plan) Option {
	return func(e *Engine) {
		e.faults = p
		if p == nil {
			e.db.cat.SetFaultHook(nil)
			return
		}
		e.db.cat.SetFaultHook(func(op, name string) error {
			return p.Invoke(faultinject.PointCatalogLookup)
		})
	}
}

// WithoutFaultPlan removes any installed fault-injection plan.
func WithoutFaultPlan() Option { return WithFaultPlan(nil) }

// Limits is a per-call resource budget, overriding the engine-level
// WithTupleLimit/WithMemoryBudget wholesale for one execution (zero fields
// mean unbounded for that call, even when the engine has a bound).
type Limits struct {
	Tuples      int64
	MemoryBytes int64
}

type limitsKey struct{}

// WithQueryLimits returns a context carrying a per-call budget override;
// pass it to QueryContext/RunContext/StreamContext/CheckContext.
func WithQueryLimits(ctx context.Context, l Limits) context.Context {
	return context.WithValue(ctx, limitsKey{}, l)
}

// queryLimits extracts a per-call budget override, if present.
func queryLimits(ctx context.Context) (Limits, bool) {
	l, ok := ctx.Value(limitsKey{}).(Limits)
	return l, ok
}

type cacheOnlyKey struct{}

// WithCacheOnly returns a context requesting degraded (cache-only)
// execution for one call: the run is admitted only if its plan root has a
// warm, current-generation entry in the engine's plan-cache memo — a warm
// hit replays at cache cost, while a cold plan is rejected with a typed
// *DegradedError before any base relation is read. The service tier's
// circuit breaker uses it to keep a tenant whose governor trips repeatedly
// partially alive instead of hard-failing every request.
func WithCacheOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, cacheOnlyKey{}, true)
}

// cacheOnly reports whether ctx requests degraded execution.
func cacheOnly(ctx context.Context) bool {
	on, _ := ctx.Value(cacheOnlyKey{}).(bool)
	return on
}

// Configure applies options to an existing engine (e.g. a REPL switching
// strategies). Prepared queries keep the strategy they were prepared with.
func (e *Engine) Configure(opts ...Option) {
	for _, o := range opts {
		o(e)
	}
}

// Strategy returns the engine's evaluation strategy.
func (e *Engine) Strategy() Strategy { return e.strategy }

// TranslateOptions returns the Bry pipeline's translation options.
func (e *Engine) TranslateOptions() translate.Options { return e.topts }

// UseIndexes reports whether persistent-index probing is enabled.
func (e *Engine) UseIndexes() bool { return e.useIndexes }

// Parallelism returns the configured partition fan-out (1 = serial).
func (e *Engine) Parallelism() int {
	if e.parallelism < 1 {
		return 1
	}
	return e.parallelism
}

// BatchSize returns the configured block capacity of the batch executor:
// 0 = default (exec.DefaultBatchSize), -1 = tuple-at-a-time, otherwise the
// explicit capacity.
func (e *Engine) BatchSize() int {
	if e.batchSize < 0 {
		return -1
	}
	return e.batchSize
}

// resolvedBatchSize is the effective block capacity as the executor will
// see it: the default resolves to exec.DefaultBatchSize, tuple-at-a-time
// to 1 (per-tuple bookkeeping, for the cost model's amortization).
func (e *Engine) resolvedBatchSize() int {
	switch {
	case e.batchSize < 0:
		return 1
	case e.batchSize == 0:
		return exec.DefaultBatchSize
	default:
		return e.batchSize
	}
}

// Timeout returns the engine-level execution bound (0 = none).
func (e *Engine) Timeout() time.Duration { return e.timeout }

// PlanCacheEnabled reports whether the memoizing subplan cache is on.
func (e *Engine) PlanCacheEnabled() bool { return e.memo != nil }

// PlanCacheBudget returns the cache's tuple budget (0 when disabled).
//
// Deprecated: read Engine.Snapshot().CacheBudget instead.
func (e *Engine) PlanCacheBudget() int {
	return e.Snapshot().CacheBudget
}

// PlanCacheInfo returns the cache's current entry and buffered-tuple counts
// (both 0 when disabled).
//
// Deprecated: read Engine.Snapshot().CacheEntries/CacheTuples instead.
func (e *Engine) PlanCacheInfo() (entries, tuples int) {
	s := e.Snapshot()
	return s.CacheEntries, s.CacheTuples
}

// PlanCacheAbandoned returns how many cache spools were abandoned before
// publication over the current memo's lifetime (0 when disabled).
//
// Deprecated: read Engine.Snapshot().MemoSpoolsAbandoned instead.
func (e *Engine) PlanCacheAbandoned() int64 {
	return e.Snapshot().MemoSpoolsAbandoned
}

// TupleLimit returns the engine-level tuple budget (0 = unbounded).
func (e *Engine) TupleLimit() int64 { return e.tupleLimit }

// MemoryBudget returns the engine-level byte budget (0 = unbounded).
func (e *Engine) MemoryBudget() int64 { return e.memBudget }

// FaultPlan returns the installed fault-injection plan (nil in production).
func (e *Engine) FaultPlan() *faultinject.Plan { return e.faults }

// RobustnessCounters are the engine's cumulative robustness counters,
// accumulated across every execution since construction.
type RobustnessCounters struct {
	PanicsRecovered   int64
	LimitsTripped     int64
	DegradedEvictions int64
	// SpoolsAbandoned counts plan-cache spools given up before publication
	// (cancellation, governor trips, budget overflow, producer death under
	// fault injection). A non-zero value explains why CacheTuplesSpooled can
	// exceed the tuples ever published.
	SpoolsAbandoned int64
}

// Robustness returns the cumulative robustness counters. They keep counting
// across failed runs — precisely the runs whose per-call Stats the caller
// never sees.
//
// Deprecated: Robustness is a thin view over Snapshot; new code should read
// the same counters from Engine.Snapshot().
func (e *Engine) Robustness() RobustnessCounters {
	s := e.Snapshot()
	return RobustnessCounters{
		PanicsRecovered:   s.PanicsRecovered,
		LimitsTripped:     s.LimitsTripped,
		DegradedEvictions: s.DegradedEvictions,
		SpoolsAbandoned:   s.CacheSpoolsAbandoned,
	}
}

// noteRun folds one boundary's counters into the engine's cumulative
// Snapshot state, exactly once per boundary (the callers defer it).
// executed marks real executions — RunContext/StreamContext entries, which
// Snapshot counts in Runs — as opposed to prepare-only boundaries, whose
// counters fold without counting as a run.
func (e *Engine) noteRun(st *exec.Stats, executed bool) {
	e.snapMu.Lock()
	e.cum.Add(*st)
	if executed {
		e.runs++
	}
	e.snapMu.Unlock()
}
