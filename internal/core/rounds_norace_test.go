//go:build !race

package core

// crossStrategyRounds sizes the cross-strategy property test. The full 25
// rounds run in normal mode; the race detector (~10× slower per operation)
// gets a reduced count in rounds_race_test.go — same queries, same engine
// variants, fewer random databases.
const crossStrategyRounds = 25
