package core

import (
	"errors"

	"repro/internal/ranges"
)

// The engine classifies pipeline failures into three wrapper types, so
// callers can react with errors.As without parsing messages:
//
//   - ParseError — the input is not syntactically a calculus query;
//   - SafetyError — the query parsed but is not range-restricted
//     (a Definition 1–3 rejection from the safety checker);
//   - PlanError — normalization internals, view expansion, translation or
//     plan validation failed.
//
// All three unwrap to the underlying stage error.

// ParseError reports a syntax error in the query text.
type ParseError struct {
	Input string // the offending query text
	Err   error
}

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// SafetyError reports a range-restriction (Definition 1–3) rejection: the
// query is well-formed but unsafe to evaluate.
type SafetyError struct {
	Query string // the query as parsed
	Err   error
}

func (e *SafetyError) Error() string { return e.Err.Error() }
func (e *SafetyError) Unwrap() error { return e.Err }

// PlanError reports a failure after parsing and safety checking: view
// expansion, normalization internals, translation, or plan validation.
type PlanError struct {
	Stage string // "views", "normalize", "translate", "validate"
	Err   error
}

func (e *PlanError) Error() string { return e.Err.Error() }
func (e *PlanError) Unwrap() error { return e.Err }

// classifyNormalize wraps a rewrite.Normalize failure: safety-checker
// rejections become SafetyError, anything else is an internal PlanError.
func classifyNormalize(query string, err error) error {
	var re *ranges.Error
	if errors.As(err, &re) {
		return &SafetyError{Query: query, Err: err}
	}
	return &PlanError{Stage: "normalize", Err: err}
}
