package core

import (
	"context"
	"errors"

	"repro/internal/exec"
	"repro/internal/ranges"
)

// The engine classifies pipeline failures into typed wrappers, so callers
// can react with errors.As without parsing messages:
//
//   - ParseError — the input is not syntactically a calculus query;
//   - SafetyError — the query parsed but is not range-restricted
//     (a Definition 1–3 rejection from the safety checker);
//   - PlanError — normalization internals, view expansion, translation or
//     plan validation failed;
//   - ResourceError — the run exceeded a governor budget (WithTupleLimit,
//     WithMemoryBudget); carries which limit and which operator tripped;
//   - ExecError — the run failed at an isolation boundary: a recovered
//     panic, an injected fault, or any other execution failure.
//
// Context cancellation (context.Canceled, context.DeadlineExceeded) is
// deliberately NOT wrapped: callers match it with errors.Is directly.
// All wrappers unwrap to the underlying stage error.

// ParseError reports a syntax error in the query text.
type ParseError struct {
	Input string // the offending query text
	Err   error
}

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// SafetyError reports a range-restriction (Definition 1–3) rejection: the
// query is well-formed but unsafe to evaluate.
type SafetyError struct {
	Query string // the query as parsed
	Err   error
}

func (e *SafetyError) Error() string { return e.Err.Error() }
func (e *SafetyError) Unwrap() error { return e.Err }

// PlanError reports a failure after parsing and safety checking: view
// expansion, normalization internals, translation, or plan validation.
type PlanError struct {
	Stage string // "views", "normalize", "translate", "validate"
	Err   error
}

func (e *PlanError) Error() string { return e.Err.Error() }
func (e *PlanError) Unwrap() error { return e.Err }

// classifyNormalize wraps a rewrite.Normalize failure: safety-checker
// rejections become SafetyError, anything else is an internal PlanError.
func classifyNormalize(query string, err error) error {
	var re *ranges.Error
	if errors.As(err, &re) {
		return &SafetyError{Query: query, Err: err}
	}
	return &PlanError{Stage: "normalize", Err: err}
}

// ResourceError re-exports the executor's budget-violation error so callers
// can match it without importing internal/exec.
type ResourceError = exec.ResourceError

// DegradedError reports a query rejected by degraded (cache-only)
// execution: the caller asked for WithCacheOnly and the plan has no warm,
// current-generation entry in the plan-cache memo, so answering it would
// require a cold evaluation degraded mode exists to avoid. The service
// tier's circuit breaker maps it to a typed 503.
type DegradedError struct {
	Plan string // the canonical query
	Err  error
}

func (e *DegradedError) Error() string { return e.Err.Error() }
func (e *DegradedError) Unwrap() error { return e.Err }

// ExecError reports a failure during execution: a panic recovered at an
// isolation boundary, an injected fault, or a catalog failure surfacing at
// run time. Stage names the entry point ("prepare", "run", "stream"); Plan
// is the canonical query when one exists.
type ExecError struct {
	Stage string
	Plan  string
	Err   error
}

func (e *ExecError) Error() string { return e.Err.Error() }
func (e *ExecError) Unwrap() error { return e.Err }

// classifyExec wraps an execution failure as ExecError, passing through the
// errors callers already match directly: the typed family (a Prepare failure
// crossing a guarded boundary), context cancellation, and budget trips.
func classifyExec(stage, plan string, err error) error {
	if err == nil {
		return nil
	}
	var pe *ParseError
	var se *SafetyError
	var ple *PlanError
	var ee *ExecError
	var de *DegradedError
	if errors.As(err, &pe) || errors.As(err, &se) || errors.As(err, &ple) || errors.As(err, &ee) || errors.As(err, &de) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var re *ResourceError
	if errors.As(err, &re) {
		return err
	}
	return &ExecError{Stage: stage, Plan: plan, Err: err}
}
