package core

import (
	"context"
	"reflect"
	"testing"
)

// TestConvenienceShims makes the shim table load-bearing: every entry's
// wrapper must exist on *Engine with exactly its twin's signature minus the
// leading context.Context. A wrapper added without a twin, or a signature
// that drifts on one side only, fails here instead of at a call site.
func TestConvenienceShims(t *testing.T) {
	et := reflect.TypeOf(&Engine{})
	ctxType := reflect.TypeOf((*context.Context)(nil)).Elem()
	if len(convenienceShims) != 4 {
		t.Fatalf("the documented context-less surface is Run/Query/Check/Stream; table has %d rows", len(convenienceShims))
	}
	for _, shim := range convenienceShims {
		w, ok := et.MethodByName(shim.Wrapper)
		if !ok {
			t.Errorf("wrapper %s missing on *Engine", shim.Wrapper)
			continue
		}
		tw, ok := et.MethodByName(shim.Twin)
		if !ok {
			t.Errorf("twin %s missing on *Engine", shim.Twin)
			continue
		}
		// Method types include the receiver as In(0).
		if tw.Type.NumIn() != w.Type.NumIn()+1 {
			t.Errorf("%s/%s: twin must take exactly one extra parameter, got %d vs %d",
				shim.Wrapper, shim.Twin, tw.Type.NumIn(), w.Type.NumIn())
			continue
		}
		if tw.Type.In(1) != ctxType {
			t.Errorf("%s: first parameter is %v, want context.Context", shim.Twin, tw.Type.In(1))
		}
		for i := 1; i < w.Type.NumIn(); i++ {
			if w.Type.In(i) != tw.Type.In(i+1) {
				t.Errorf("%s param %d (%v) != %s param %d (%v)",
					shim.Wrapper, i, w.Type.In(i), shim.Twin, i+1, tw.Type.In(i+1))
			}
		}
		if w.Type.NumOut() != tw.Type.NumOut() {
			t.Errorf("%s/%s: result counts differ", shim.Wrapper, shim.Twin)
			continue
		}
		for i := 0; i < w.Type.NumOut(); i++ {
			if w.Type.Out(i) != tw.Type.Out(i) {
				t.Errorf("%s result %d (%v) != %s result %d (%v)",
					shim.Wrapper, i, w.Type.Out(i), shim.Twin, i, tw.Type.Out(i))
			}
		}
	}
}
