// Package core is the library facade: it wires the parser, the
// normalization engine (Phase 1), the translators (Phase 2), and the
// executors into a single query-processing pipeline.
//
// Typical use:
//
//	db := core.NewDB()
//	students := db.MustDefine("student", "name")
//	students.InsertValues(relation.Str("ann"))
//	eng := core.NewEngine(db)
//	res, err := eng.Query(`{ x | student(x) }`)
//
// The Engine supports three evaluation strategies, matching the systems the
// paper compares:
//
//   - StrategyBry — canonical form + the improved algebraic translation
//     (complement-joins, constrained outer-joins, emptiness tests);
//   - StrategyCodd — the classical reduction baseline (prenex form,
//     cartesian products of the domain, divisions);
//   - StrategyLoop — the Fig. 1 nested-loop pipelined interpreter.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/planopt"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/views"
)

// DB owns a catalog of base relations and a registry of views.
type DB struct {
	cat   *storage.Catalog
	views *views.Registry
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{cat: storage.NewCatalog(), views: views.NewRegistry()} }

// Catalog exposes the underlying catalog.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Views exposes the view registry.
func (db *DB) Views() *views.Registry { return db.views }

// DefineView registers a named view from an open-query definition, e.g.
// db.DefineView("cs_member", `{ x | member(x, "cs") }`). View atoms in
// queries expand inline before normalization (Definition 1 allows views
// wherever relations appear).
func (db *DB) DefineView(name, definition string) error {
	if db.cat.Has(name) {
		return &PlanError{Stage: "views", Err: fmt.Errorf("core: %q is already a base relation", name)}
	}
	_, err := db.views.Define(name, definition)
	return err
}

// Define registers a new base relation with the given column names.
func (db *DB) Define(name string, columns ...string) (*relation.Relation, error) {
	return db.cat.Define(name, relation.NewSchema(columns...))
}

// MustDefine is Define for static setup; it panics on duplicates.
func (db *DB) MustDefine(name string, columns ...string) *relation.Relation {
	return db.cat.MustDefine(name, relation.NewSchema(columns...))
}

// Strategy selects the evaluation pipeline.
type Strategy int

// Evaluation strategies.
const (
	// StrategyBry is the paper's method (the default).
	StrategyBry Strategy = iota
	// StrategyCodd is the classical reduction baseline.
	StrategyCodd
	// StrategyCoddImproved is the [PAL 72]-style refinement of the
	// classical baseline: per-variable ranges instead of the full domain
	// for existential and free variables.
	StrategyCoddImproved
	// StrategyLoop is the Fig. 1 nested-loop interpreter.
	StrategyLoop
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyBry:
		return "bry"
	case StrategyCodd:
		return "codd"
	case StrategyCoddImproved:
		return "codd-improved"
	case StrategyLoop:
		return "loop"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Engine evaluates queries against a DB under a chosen strategy. Its
// tuning state is set through functional options (NewEngine, Configure)
// and read through accessors (options.go); executions are bounded and
// cancelled through the *Context method variants or WithTimeout.
type Engine struct {
	db          *DB
	strategy    Strategy
	topts       translate.Options
	useIndexes  bool
	parallelism int
	// batchSize is the block capacity of the batch executor: 0 selects the
	// default (exec.DefaultBatchSize), negative the tuple-at-a-time
	// executor, positive an explicit capacity (WithBatchSize).
	batchSize int
	timeout   time.Duration
	// memo is the plan-cache result memo (WithPlanCache); nil disables
	// caching. It persists across Query/Check/Run calls, so repeated
	// queries — the integrity-check workload — replay warm entries.
	memo *exec.Memo
	// tupleLimit/memBudget are the engine-level resource budgets
	// (WithTupleLimit, WithMemoryBudget); 0 = unbounded. Per-call overrides
	// arrive through WithQueryLimits on the context.
	tupleLimit int64
	memBudget  int64
	// faults is the fault-injection plan (WithFaultPlan); nil in production.
	faults *faultinject.Plan
	// Cumulative observability state behind Snapshot(): every isolation
	// boundary folds its run's exec.Stats into cum exactly once (noteRun),
	// and runs counts the executions among those folds. Mutex-guarded — the
	// fold happens per run, not per tuple, and one engine may execute
	// concurrently from several goroutines.
	snapMu sync.Mutex
	cum    exec.Stats
	runs   int64
}

// NewEngine builds an engine with the default (Bry) strategy, then applies
// the options: e.g. NewEngine(db, WithStrategy(StrategyCodd),
// WithParallelism(4), WithTimeout(time.Second)).
func NewEngine(db *DB, opts ...Option) *Engine {
	e := &Engine{db: db}
	e.Configure(opts...)
	return e
}

// Result is the outcome of one query evaluation.
type Result struct {
	// Open reports whether the query returned rows (vs a truth value).
	Open bool
	// Rows holds the answer relation of an open query.
	Rows *relation.Relation
	// Truth holds the answer of a closed (yes/no) query.
	Truth bool
	// Stats are the execution cost counters.
	Stats exec.Stats
	// Canonical is the normalized form of the query.
	Canonical string
}

// Prepared is a parsed, normalized and translated query, reusable across
// executions.
type Prepared struct {
	Source    parser.Query
	Canonical parser.Query
	Plan      algebra.Plan     // open queries (Bry/Codd)
	BoolPlan  algebra.BoolPlan // closed queries (Bry/Codd)
	strategy  Strategy
}

// Explain renders the plan of a prepared query.
func (p *Prepared) Explain() string {
	switch {
	case p.Plan != nil:
		return algebra.Explain(p.Plan)
	case p.BoolPlan != nil:
		return algebra.ExplainBool(p.BoolPlan)
	default:
		return "nested-loop interpretation of " + p.Canonical.String() + "\n"
	}
}

// Prepare parses, validates, normalizes and translates a query. Failures
// are classified: *ParseError for syntax, *SafetyError for Definition 1–3
// range-restriction rejections, *PlanError for everything downstream.
func (e *Engine) Prepare(input string) (*Prepared, error) {
	q, err := parser.Parse(input)
	if err != nil {
		return nil, &ParseError{Input: input, Err: err}
	}
	return e.PrepareQuery(q)
}

// runGuarded runs fn inside an isolation boundary: a panic anywhere below —
// an iterator, a translator, a worker panic re-surfaced on the merging
// goroutine — is recovered, counted on st, and returned as a typed
// *ExecError instead of killing the process. Organic errors are classified
// (classifyExec) on the way out.
func (e *Engine) runGuarded(st *exec.Stats, stage, plan string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			st.PanicsRecovered++
			err = &ExecError{Stage: stage, Plan: plan, Err: exec.CapturePanic(r, stage)}
		}
	}()
	return classifyExec(stage, plan, fn())
}

// PrepareQuery is Prepare for an already-parsed query.
func (e *Engine) PrepareQuery(q parser.Query) (*Prepared, error) {
	var st exec.Stats
	defer e.noteRun(&st, false)
	var p *Prepared
	err := e.runGuarded(&st, "prepare", q.String(), func() (err error) {
		p, err = e.prepareQuery(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// prepareQuery is PrepareQuery's body, run inside the isolation boundary.
func (e *Engine) prepareQuery(q parser.Query) (*Prepared, error) {
	q, err := e.db.views.Expand(q)
	if err != nil {
		return nil, &PlanError{Stage: "views", Err: err}
	}
	nq, err := rewrite.Normalize(q)
	if err != nil {
		return nil, classifyNormalize(q.String(), err)
	}
	p := &Prepared{Source: q, Canonical: nq, strategy: e.strategy}
	switch e.strategy {
	case StrategyBry:
		tr := translate.NewBryWithOptions(e.db.cat, e.topts)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyCodd:
		tr := translate.NewCodd(e.db.cat)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyCoddImproved:
		tr := translate.NewCoddImproved(e.db.cat)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyLoop:
		// Interpretation happens at Run time; nothing to translate.
	default:
		err = fmt.Errorf("core: unknown strategy %v", e.strategy)
	}
	if err != nil {
		return nil, &PlanError{Stage: "translate", Err: err}
	}
	// Defense in depth: a malformed plan is a translator bug; report it at
	// preparation time rather than as an index panic during execution.
	if p.Plan != nil {
		if err := algebra.Validate(p.Plan); err != nil {
			return nil, &PlanError{Stage: "validate", Err: fmt.Errorf("core: internal planner error: %w", err)}
		}
	}
	if p.BoolPlan != nil {
		if err := algebra.ValidateBool(p.BoolPlan); err != nil {
			return nil, &PlanError{Stage: "validate", Err: fmt.Errorf("core: internal planner error: %w", err)}
		}
	}
	// With the plan cache on, run the share pass: repeated subtrees (and the
	// plan root, for cross-call reuse) become Shared references the executor
	// resolves against the engine memo. Without a memo the pass is skipped
	// entirely, keeping cache-off plans byte-identical to before.
	if e.memo != nil {
		if p.Plan != nil {
			p.Plan = planopt.Share(p.Plan)
		}
		if p.BoolPlan != nil {
			p.BoolPlan = planopt.ShareBool(p.BoolPlan)
		}
	}
	return p, nil
}

// execContext builds the execution context for one run: engine tuning
// (indexes, parallelism) plus cancellation wiring. An engine-level timeout
// (WithTimeout) layers a deadline over the caller's context; the returned
// cancel func must be called when the run finishes.
func (e *Engine) execContext(goCtx context.Context) (*exec.Context, context.CancelFunc) {
	ctx := exec.NewContext(e.db.cat)
	ctx.UseIndexes = e.useIndexes
	ctx.Parallelism = e.parallelism
	ctx.BatchSize = e.batchSize
	ctx.Memo = e.memo
	tl, mb := e.tupleLimit, e.memBudget
	if l, ok := queryLimits(goCtx); ok {
		tl, mb = l.Tuples, l.MemoryBytes
	}
	if tl > 0 || mb > 0 {
		gov := exec.NewGovernor(tl, mb)
		if e.memo != nil {
			gov.AttachMemo(e.memo)
		}
		ctx.Gov = gov
	}
	ctx.Faults = e.faults
	// With a governor or fault plan installed, tighten the poll interval so
	// abort latency is bounded in tuples, not just "eventually".
	if ctx.Gov != nil || ctx.Faults != nil {
		ctx.CheckInterval = exec.GovernedCheckInterval
	}
	cancel := context.CancelFunc(func() {})
	if e.timeout > 0 {
		goCtx, cancel = context.WithTimeout(goCtx, e.timeout)
	}
	ctx.AttachContext(goCtx)
	return ctx, cancel
}

// Run executes a prepared query without a cancellation bound (beyond an
// engine-level WithTimeout). It is a convenience shim over RunContext
// (convenienceShims in shims.go).
func (e *Engine) Run(p *Prepared) (*Result, error) {
	return e.RunContext(noCancel(), p)
}

// RunContext executes a prepared query under the given context: once it is
// cancelled or its deadline passes, the run aborts within a bounded number
// of tuples and returns the context's error. The loop-interpreter strategy
// checks the context only between top-level phases.
func (e *Engine) RunContext(goCtx context.Context, p *Prepared) (*Result, error) {
	res := &Result{Open: p.Source.IsOpen(), Canonical: p.Canonical.String()}
	if cacheOnly(goCtx) {
		if err := e.admitCacheOnly(p, res.Canonical); err != nil {
			return nil, err
		}
	}
	if p.strategy == StrategyLoop {
		var st exec.Stats
		defer e.noteRun(&st, true)
		err := e.runGuarded(&st, "run", res.Canonical, func() error {
			if err := goCtx.Err(); err != nil {
				return err
			}
			ev := loopeval.New(e.db.cat)
			if p.Source.IsOpen() {
				rows, err := ev.EvalOpen(p.Canonical)
				if err != nil {
					return err
				}
				res.Rows = rows
			} else {
				ok, err := ev.EvalClosed(p.Canonical.Body, loopeval.Env{})
				if err != nil {
					return err
				}
				res.Truth = ok
			}
			res.Stats = *ev.Stats
			return nil
		})
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	ctx, cancel := e.execContext(goCtx)
	defer cancel()
	defer func() { e.noteRun(ctx.Stats, true) }()
	err := e.runGuarded(ctx.Stats, "run", res.Canonical, func() error {
		if p.Plan != nil {
			rows, err := exec.Run(ctx, p.Plan)
			if err != nil {
				return err
			}
			res.Rows = rows
			return nil
		}
		ok, err := exec.EvalBool(ctx, p.BoolPlan)
		if err != nil {
			return err
		}
		res.Truth = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = *ctx.Stats
	return res, nil
}

// admitCacheOnly is the degraded-mode (WithCacheOnly) admission gate: a run
// passes only when every memoized root its plan needs — the Shared plan root
// of an open query, every emptiness-probe input of a closed one — has a
// complete, current-generation entry in the plan-cache memo, so the run
// replays at cache cost instead of evaluating cold. The check is advisory
// (an entry can be evicted before the run reads it, in which case the run
// falls back to a cold evaluation), but a rejection is reliable: nothing
// warm exists, so the caller gets a typed *DegradedError without a single
// base-relation read.
func (e *Engine) admitCacheOnly(p *Prepared, canonical string) error {
	if e.memo != nil && p.strategy != StrategyLoop {
		gen := e.db.cat.Generation()
		switch {
		case p.Plan != nil:
			if sh, ok := p.Plan.(*algebra.Shared); ok && e.memo.HasComplete(gen, sh.FP, algebra.Canonical(sh.Input)) {
				return nil
			}
		case p.BoolPlan != nil:
			if warmBool(e.memo, gen, p.BoolPlan) {
				return nil
			}
		}
	}
	return &DegradedError{
		Plan: canonical,
		Err:  fmt.Errorf("core: degraded mode admits only plan-cache warm hits; %q would evaluate cold", canonical),
	}
}

// warmBool reports whether every relational input of a boolean plan is a
// Shared subtree with a complete memo entry under gen.
func warmBool(memo *exec.Memo, gen int64, bp algebra.BoolPlan) bool {
	for _, in := range bp.PlanChildren() {
		sh, ok := in.(*algebra.Shared)
		if !ok || !memo.HasComplete(gen, sh.FP, algebra.Canonical(sh.Input)) {
			return false
		}
	}
	for _, c := range bp.BoolChildren() {
		if !warmBool(memo, gen, c) {
			return false
		}
	}
	return true
}

// Stream executes a prepared OPEN query, delivering result tuples to
// visit as they are produced; visit returns false to stop early (the
// executor's pipelining makes the early stop effective — downstream work
// for unrequested tuples is never done). It returns the stats of the
// partial execution.
func (e *Engine) Stream(p *Prepared, visit func(relation.Tuple) bool) (exec.Stats, error) {
	return e.StreamContext(noCancel(), p, visit)
}

// StreamContext is Stream under a context: cancellation aborts the
// pipeline within a bounded number of tuples and returns the context's
// error with the stats of the partial execution.
func (e *Engine) StreamContext(goCtx context.Context, p *Prepared, visit func(relation.Tuple) bool) (exec.Stats, error) {
	if !p.Source.IsOpen() {
		return exec.Stats{}, &PlanError{Stage: "stream", Err: fmt.Errorf("core: Stream needs an open query")}
	}
	if p.strategy == StrategyLoop || p.Plan == nil {
		// The loop interpreter has its own control flow; materialize.
		res, err := e.RunContext(goCtx, p)
		if err != nil {
			return exec.Stats{}, err
		}
		for _, t := range res.Rows.Tuples() {
			if !visit(t) {
				break
			}
		}
		return res.Stats, nil
	}
	ctx, cancel := e.execContext(goCtx)
	defer cancel()
	defer func() { e.noteRun(ctx.Stats, true) }()
	err := e.runGuarded(ctx.Stats, "stream", p.Canonical.String(), func() error {
		it, err := exec.Build(ctx, p.Plan)
		if err != nil {
			return err
		}
		it.Open()
		defer it.Close()
		seen := make(map[string]struct{})
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			// Preserve the set semantics of materialized results. The dedup
			// set buffers one key per distinct tuple, so it is charged like
			// any other materialization point (found by govcharge: the one
			// per-tuple buffer the governor could not see).
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			if !ctx.ChargeTuple("stream-dedup", t) {
				break
			}
			seen[k] = struct{}{}
			ctx.Stats.OutputTuples++
			if !visit(t) {
				break
			}
		}
		return ctx.CancelErr()
	})
	return *ctx.Stats, err
}

// Query prepares and runs a query in one step. It is a convenience shim
// over QueryContext (convenienceShims in shims.go).
func (e *Engine) Query(input string) (*Result, error) {
	return e.QueryContext(noCancel(), input)
}

// QueryContext prepares and runs a query in one step under a context.
func (e *Engine) QueryContext(goCtx context.Context, input string) (*Result, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return nil, err
	}
	return e.RunContext(goCtx, p)
}

// Check evaluates a closed formula used as an integrity constraint; it
// reports whether the database satisfies it. This is the paper's motivating
// application (handling general integrity constraints).
func (e *Engine) Check(constraint string) (bool, error) {
	return e.CheckContext(noCancel(), constraint)
}

// CheckContext is Check under a context.
func (e *Engine) CheckContext(goCtx context.Context, constraint string) (bool, error) {
	res, err := e.QueryContext(goCtx, constraint)
	if err != nil {
		return false, err
	}
	if res.Open {
		return false, &PlanError{Stage: "check", Err: fmt.Errorf("core: integrity constraints must be closed formulas")}
	}
	return res.Truth, nil
}

// ExplainCost returns the canonical form and the plan annotated with the
// cost model's estimated rows and cost per node (closed queries estimate
// the whole boolean plan).
func (e *Engine) ExplainCost(input string) (string, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return "", err
	}
	m := cost.New(e.db.cat)
	m.SetParallelism(e.Parallelism())
	m.SetBatchSize(e.resolvedBatchSize())
	out := "canonical: " + p.Canonical.String() + "\n"
	if p.Plan != nil {
		annotated, err := m.Explain(p.Plan)
		if err != nil {
			return "", err
		}
		return out + annotated, nil
	}
	if p.BoolPlan != nil {
		est, err := m.EstimateBool(p.BoolPlan)
		if err != nil {
			return "", err
		}
		return out + fmt.Sprintf("boolean plan, estimated cost≈%.0f\n", est.Cost) + p.Explain(), nil
	}
	return out + p.Explain(), nil
}

// Explain returns the canonical form and the plan of a query without
// executing it.
func (e *Engine) Explain(input string) (string, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return "", err
	}
	return "canonical: " + p.Canonical.String() + "\n" + p.Explain(), nil
}
