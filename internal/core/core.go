// Package core is the library facade: it wires the parser, the
// normalization engine (Phase 1), the translators (Phase 2), and the
// executors into a single query-processing pipeline.
//
// Typical use:
//
//	db := core.NewDB()
//	students := db.MustDefine("student", "name")
//	students.InsertValues(relation.Str("ann"))
//	eng := core.NewEngine(db)
//	res, err := eng.Query(`{ x | student(x) }`)
//
// The Engine supports three evaluation strategies, matching the systems the
// paper compares:
//
//   - StrategyBry — canonical form + the improved algebraic translation
//     (complement-joins, constrained outer-joins, emptiness tests);
//   - StrategyCodd — the classical reduction baseline (prenex form,
//     cartesian products of the domain, divisions);
//   - StrategyLoop — the Fig. 1 nested-loop pipelined interpreter.
package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/views"
)

// DB owns a catalog of base relations and a registry of views.
type DB struct {
	cat   *storage.Catalog
	views *views.Registry
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{cat: storage.NewCatalog(), views: views.NewRegistry()} }

// Catalog exposes the underlying catalog.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Views exposes the view registry.
func (db *DB) Views() *views.Registry { return db.views }

// DefineView registers a named view from an open-query definition, e.g.
// db.DefineView("cs_member", `{ x | member(x, "cs") }`). View atoms in
// queries expand inline before normalization (Definition 1 allows views
// wherever relations appear).
func (db *DB) DefineView(name, definition string) error {
	if db.cat.Has(name) {
		return fmt.Errorf("core: %q is already a base relation", name)
	}
	_, err := db.views.Define(name, definition)
	return err
}

// Define registers a new base relation with the given column names.
func (db *DB) Define(name string, columns ...string) (*relation.Relation, error) {
	return db.cat.Define(name, relation.NewSchema(columns...))
}

// MustDefine is Define for static setup; it panics on duplicates.
func (db *DB) MustDefine(name string, columns ...string) *relation.Relation {
	return db.cat.MustDefine(name, relation.NewSchema(columns...))
}

// Strategy selects the evaluation pipeline.
type Strategy int

// Evaluation strategies.
const (
	// StrategyBry is the paper's method (the default).
	StrategyBry Strategy = iota
	// StrategyCodd is the classical reduction baseline.
	StrategyCodd
	// StrategyCoddImproved is the [PAL 72]-style refinement of the
	// classical baseline: per-variable ranges instead of the full domain
	// for existential and free variables.
	StrategyCoddImproved
	// StrategyLoop is the Fig. 1 nested-loop interpreter.
	StrategyLoop
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyBry:
		return "bry"
	case StrategyCodd:
		return "codd"
	case StrategyCoddImproved:
		return "codd-improved"
	case StrategyLoop:
		return "loop"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Engine evaluates queries against a DB under a chosen strategy.
type Engine struct {
	db *DB
	// Strategy selects the pipeline; the zero value is StrategyBry.
	Strategy Strategy
	// Options configures the Bry pipeline's disjunctive-filter strategy.
	Options translate.Options
	// UseIndexes lets the executor probe persistent catalog indexes
	// instead of building per-query hash tables where applicable.
	UseIndexes bool
}

// NewEngine builds an engine with the default (Bry) strategy.
func NewEngine(db *DB) *Engine { return &Engine{db: db} }

// Result is the outcome of one query evaluation.
type Result struct {
	// Open reports whether the query returned rows (vs a truth value).
	Open bool
	// Rows holds the answer relation of an open query.
	Rows *relation.Relation
	// Truth holds the answer of a closed (yes/no) query.
	Truth bool
	// Stats are the execution cost counters.
	Stats exec.Stats
	// Canonical is the normalized form of the query.
	Canonical string
}

// Prepared is a parsed, normalized and translated query, reusable across
// executions.
type Prepared struct {
	Source    parser.Query
	Canonical parser.Query
	Plan      algebra.Plan     // open queries (Bry/Codd)
	BoolPlan  algebra.BoolPlan // closed queries (Bry/Codd)
	strategy  Strategy
}

// Explain renders the plan of a prepared query.
func (p *Prepared) Explain() string {
	switch {
	case p.Plan != nil:
		return algebra.Explain(p.Plan)
	case p.BoolPlan != nil:
		return algebra.ExplainBool(p.BoolPlan)
	default:
		return "nested-loop interpretation of " + p.Canonical.String() + "\n"
	}
}

// Prepare parses, validates, normalizes and translates a query.
func (e *Engine) Prepare(input string) (*Prepared, error) {
	q, err := parser.Parse(input)
	if err != nil {
		return nil, err
	}
	return e.PrepareQuery(q)
}

// PrepareQuery is Prepare for an already-parsed query.
func (e *Engine) PrepareQuery(q parser.Query) (*Prepared, error) {
	q, err := e.db.views.Expand(q)
	if err != nil {
		return nil, err
	}
	nq, err := rewrite.Normalize(q)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Source: q, Canonical: nq, strategy: e.Strategy}
	switch e.Strategy {
	case StrategyBry:
		tr := translate.NewBryWithOptions(e.db.cat, e.Options)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyCodd:
		tr := translate.NewCodd(e.db.cat)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyCoddImproved:
		tr := translate.NewCoddImproved(e.db.cat)
		p.Plan, p.BoolPlan, err = tr.Translate(nq)
	case StrategyLoop:
		// Interpretation happens at Run time; nothing to translate.
	default:
		err = fmt.Errorf("core: unknown strategy %v", e.Strategy)
	}
	if err != nil {
		return nil, err
	}
	// Defense in depth: a malformed plan is a translator bug; report it at
	// preparation time rather than as an index panic during execution.
	if p.Plan != nil {
		if err := algebra.Validate(p.Plan); err != nil {
			return nil, fmt.Errorf("core: internal planner error: %w", err)
		}
	}
	if p.BoolPlan != nil {
		if err := algebra.ValidateBool(p.BoolPlan); err != nil {
			return nil, fmt.Errorf("core: internal planner error: %w", err)
		}
	}
	return p, nil
}

// Run executes a prepared query.
func (e *Engine) Run(p *Prepared) (*Result, error) {
	res := &Result{Open: p.Source.IsOpen(), Canonical: p.Canonical.String()}
	if p.strategy == StrategyLoop {
		ev := loopeval.New(e.db.cat)
		if p.Source.IsOpen() {
			rows, err := ev.EvalOpen(p.Canonical)
			if err != nil {
				return nil, err
			}
			res.Rows = rows
		} else {
			ok, err := ev.EvalClosed(p.Canonical.Body, loopeval.Env{})
			if err != nil {
				return nil, err
			}
			res.Truth = ok
		}
		res.Stats = *ev.Stats
		return res, nil
	}

	ctx := exec.NewContext(e.db.cat)
	ctx.UseIndexes = e.UseIndexes
	if p.Plan != nil {
		rows, err := exec.Run(ctx, p.Plan)
		if err != nil {
			return nil, err
		}
		res.Rows = rows
	} else {
		ok, err := exec.EvalBool(ctx, p.BoolPlan)
		if err != nil {
			return nil, err
		}
		res.Truth = ok
	}
	res.Stats = *ctx.Stats
	return res, nil
}

// Stream executes a prepared OPEN query, delivering result tuples to
// visit as they are produced; visit returns false to stop early (the
// executor's pipelining makes the early stop effective — downstream work
// for unrequested tuples is never done). It returns the stats of the
// partial execution.
func (e *Engine) Stream(p *Prepared, visit func(relation.Tuple) bool) (exec.Stats, error) {
	if !p.Source.IsOpen() {
		return exec.Stats{}, fmt.Errorf("core: Stream needs an open query")
	}
	if p.strategy == StrategyLoop || p.Plan == nil {
		// The loop interpreter has its own control flow; materialize.
		res, err := e.Run(p)
		if err != nil {
			return exec.Stats{}, err
		}
		for _, t := range res.Rows.Tuples() {
			if !visit(t) {
				break
			}
		}
		return res.Stats, nil
	}
	ctx := exec.NewContext(e.db.cat)
	ctx.UseIndexes = e.UseIndexes
	it, err := exec.Build(ctx, p.Plan)
	if err != nil {
		return exec.Stats{}, err
	}
	it.Open()
	defer it.Close()
	seen := make(map[string]struct{})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		// Preserve the set semantics of materialized results.
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		ctx.Stats.OutputTuples++
		if !visit(t) {
			break
		}
	}
	return *ctx.Stats, nil
}

// Query prepares and runs a query in one step.
func (e *Engine) Query(input string) (*Result, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return nil, err
	}
	return e.Run(p)
}

// Check evaluates a closed formula used as an integrity constraint; it
// reports whether the database satisfies it. This is the paper's motivating
// application (handling general integrity constraints).
func (e *Engine) Check(constraint string) (bool, error) {
	res, err := e.Query(constraint)
	if err != nil {
		return false, err
	}
	if res.Open {
		return false, fmt.Errorf("core: integrity constraints must be closed formulas")
	}
	return res.Truth, nil
}

// ExplainCost returns the canonical form and the plan annotated with the
// cost model's estimated rows and cost per node (closed queries estimate
// the whole boolean plan).
func (e *Engine) ExplainCost(input string) (string, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return "", err
	}
	m := cost.New(e.db.cat)
	out := "canonical: " + p.Canonical.String() + "\n"
	if p.Plan != nil {
		annotated, err := m.Explain(p.Plan)
		if err != nil {
			return "", err
		}
		return out + annotated, nil
	}
	if p.BoolPlan != nil {
		est, err := m.EstimateBool(p.BoolPlan)
		if err != nil {
			return "", err
		}
		return out + fmt.Sprintf("boolean plan, estimated cost≈%.0f\n", est.Cost) + p.Explain(), nil
	}
	return out + p.Explain(), nil
}

// Explain returns the canonical form and the plan of a query without
// executing it.
func (e *Engine) Explain(input string) (string, error) {
	p, err := e.Prepare(input)
	if err != nil {
		return "", err
	}
	return "canonical: " + p.Canonical.String() + "\n" + p.Explain(), nil
}
