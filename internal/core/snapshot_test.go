package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestSnapshotCountsRuns: executions bump Runs and fold their counters;
// prepare-only calls fold without counting.
func TestSnapshotCountsRuns(t *testing.T) {
	eng := NewEngine(demoDB())
	if s := eng.Snapshot(); s.Runs != 0 || s.Version != SnapshotVersion || s.Strategy != "bry" {
		t.Fatalf("fresh snapshot: %+v", s)
	}
	if _, err := eng.Prepare(`{ x | student(x) }`); err != nil {
		t.Fatal(err)
	}
	if s := eng.Snapshot(); s.Runs != 0 {
		t.Fatalf("Prepare must not count as a run: %+v", s)
	}
	res, err := eng.Query(`{ x | student(x) }`)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.Snapshot()
	if s.Runs != 1 {
		t.Fatalf("want 1 run, got %d", s.Runs)
	}
	if s.OutputTuples != int64(res.Rows.Len()) {
		t.Fatalf("output_tuples %d != rows %d", s.OutputTuples, res.Rows.Len())
	}
	if s.BaseTuplesRead != res.Stats.BaseTuplesRead {
		t.Fatalf("one run: cumulative reads %d != run reads %d", s.BaseTuplesRead, res.Stats.BaseTuplesRead)
	}
}

// TestSnapshotDeprecatedWrappersAgree: the legacy accessors are views over
// Snapshot and must report the same numbers.
func TestSnapshotDeprecatedWrappersAgree(t *testing.T) {
	eng := NewEngine(demoDB(), WithPlanCache(0), WithTupleLimit(2))
	_, err := eng.Query(`{ x, y | student(x) and attends(x, y) }`)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want a governor trip, got %v", err)
	}
	s := eng.Snapshot()
	if s.Runs != 1 {
		t.Fatalf("failed runs still count: %+v", s)
	}
	if s.LimitsTripped == 0 {
		t.Fatalf("trip must surface in the snapshot: %+v", s)
	}
	rc := eng.Robustness()
	if rc.LimitsTripped != s.LimitsTripped || rc.PanicsRecovered != s.PanicsRecovered ||
		rc.DegradedEvictions != s.DegradedEvictions || rc.SpoolsAbandoned != s.CacheSpoolsAbandoned {
		t.Fatalf("Robustness %+v disagrees with Snapshot %+v", rc, s)
	}
	if got, want := eng.PlanCacheBudget(), s.CacheBudget; got != want {
		t.Fatalf("PlanCacheBudget %d != CacheBudget %d", got, want)
	}
	entries, tuples := eng.PlanCacheInfo()
	if entries != s.CacheEntries || tuples != s.CacheTuples {
		t.Fatalf("PlanCacheInfo (%d,%d) != Snapshot (%d,%d)", entries, tuples, s.CacheEntries, s.CacheTuples)
	}
	if eng.PlanCacheAbandoned() != s.MemoSpoolsAbandoned {
		t.Fatalf("PlanCacheAbandoned %d != MemoSpoolsAbandoned %d", eng.PlanCacheAbandoned(), s.MemoSpoolsAbandoned)
	}
}

// TestSnapshotCacheGauges: the occupancy gauges follow the memo, and warm
// hits move the cache counters.
func TestSnapshotCacheGauges(t *testing.T) {
	eng := NewEngine(demoDB(), WithPlanCache(0))
	const q = `{ x | student(x) and not exists y: attends(x, y) and not lecture(y) }`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	s := eng.Snapshot()
	if !s.CacheEnabled || s.CacheEntries == 0 || s.CacheBudget == 0 {
		t.Fatalf("cache gauges missing: %+v", s)
	}
	if s.CacheHits == 0 {
		t.Fatalf("the second identical query must hit the cache: %+v", s)
	}
	off := NewEngine(demoDB())
	if s := off.Snapshot(); s.CacheEnabled || s.CacheBudget != 0 {
		t.Fatalf("cache-off gauges must be zero: %+v", s)
	}
}

// TestSnapshotDiff: Diff subtracts the monotone counters and keeps the
// receiver's gauges.
func TestSnapshotDiff(t *testing.T) {
	eng := NewEngine(demoDB(), WithPlanCache(0))
	const q = `{ x | student(x) and not exists y: attends(x, y) and not lecture(y) }`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	after := eng.Snapshot()
	d := after.Diff(before)
	if d.Runs != 1 {
		t.Fatalf("diff runs = %d, want 1", d.Runs)
	}
	if d.CacheHits != 1 {
		t.Fatalf("the window holds one warm query: %+v", d)
	}
	if d.BaseTuplesRead != 0 {
		t.Fatalf("a warm replay reads no base tuples: %+v", d)
	}
	if d.CacheEntries != after.CacheEntries || d.CacheBudget != after.CacheBudget || !d.CacheEnabled {
		t.Fatalf("gauges must survive Diff: %+v", d)
	}
	if d.Version != SnapshotVersion || d.Strategy != "bry" {
		t.Fatalf("identity fields must survive Diff: %+v", d)
	}
}

// TestSnapshotJSONKeys: the wire names are the contract benchrepro -json
// and queryd /stats build on.
func TestSnapshotJSONKeys(t *testing.T) {
	b, err := json.Marshal(Snapshot{Version: SnapshotVersion})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"version"`, `"strategy"`, `"runs"`,
		`"base_tuples_read"`, `"comparisons"`, `"hash_inserts"`, `"intermediate_tuples"`,
		`"materializations"`, `"output_tuples"`, `"partitions_executed"`,
		`"cache_hits"`, `"cache_misses"`, `"cache_tuples_replayed"`, `"cache_tuples_spooled"`,
		`"cache_single_flight_waits"`, `"cache_duplicates_avoided"`, `"cache_spools_abandoned"`,
		`"panics_recovered"`, `"limits_tripped"`, `"degraded_evictions"`,
		`"cache_enabled"`, `"cache_entries"`, `"cache_tuples"`, `"cache_budget"`,
		`"memo_spools_abandoned"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Errorf("snapshot JSON misses %s:\n%s", key, b)
		}
	}
}
