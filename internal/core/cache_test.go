package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/translate"
)

// cacheConfigs are the engine configurations the plan-cache property test
// pairs: each cached engine is compared against an identically configured
// engine without the cache.
var cacheConfigs = []struct {
	label string
	opts  []Option
}{
	{"default", nil},
	{"union-filters", []Option{WithDisjunctiveFilters(translate.StrategyUnion)}},
	{"parallel-4", []Option{WithParallelism(4)}},
}

// TestPlanCacheAgreement is the cache property test: on random databases,
// for every pool query and engine configuration, a cache-on engine must
// produce results identical to its cache-off twin — on a cold memo, on a
// warm memo, and with the memo shared across the whole query pool (so
// cross-query hits occur). Base reads must never exceed the uncached run's,
// and must equal them exactly when no hit occurred: spooling is
// stream-through, so "BaseTuplesRead net of replayed work" is invariant.
func TestPlanCacheAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < crossStrategyRounds; round++ {
		db := randomDB(rng)
		for _, cfg := range cacheConfigs {
			off := NewEngine(db, cfg.opts...)
			on := NewEngine(db, append([]Option{WithPlanCache(0)}, cfg.opts...)...)
			for _, input := range queryPool {
				want, err := off.Query(input)
				if err != nil {
					t.Fatalf("round %d %s off(%q): %v", round, cfg.label, input, err)
				}
				for pass, label := range []string{"cold", "warm"} {
					got, err := on.Query(input)
					if err != nil {
						t.Fatalf("round %d %s %s(%q): %v", round, cfg.label, label, input, err)
					}
					if want.Open {
						if !got.Rows.Equal(want.Rows) {
							t.Fatalf("round %d %s %s(%q) rows mismatch:\ngot:\n%s\nwant:\n%s",
								round, cfg.label, label, input, got.Rows, want.Rows)
						}
					} else if got.Truth != want.Truth {
						t.Fatalf("round %d %s %s(%q) = %v, want %v",
							round, cfg.label, label, input, got.Truth, want.Truth)
					}
					if got.Stats.BaseTuplesRead > want.Stats.BaseTuplesRead {
						t.Fatalf("round %d %s %s(%q): cache-on read more: %d > %d",
							round, cfg.label, label, input,
							got.Stats.BaseTuplesRead, want.Stats.BaseTuplesRead)
					}
					if got.Stats.CacheHits == 0 && got.Stats.BaseTuplesRead != want.Stats.BaseTuplesRead {
						t.Fatalf("round %d %s %s(%q): no hits but reads differ: %d vs %d",
							round, cfg.label, label, input,
							got.Stats.BaseTuplesRead, want.Stats.BaseTuplesRead)
					}
					_ = pass
				}
			}
		}
	}
}

// TestPlanCacheWarmReuse pins the cross-call behaviour the engine-held memo
// exists for: the second run of the same query replays the root entry
// without touching base relations.
func TestPlanCacheWarmReuse(t *testing.T) {
	db := demoDB()
	eng := NewEngine(db, WithPlanCache(0))
	const q = `{ x | student(x) and not exists y: attends(x, y) and not lecture(y) }`

	first, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheMisses == 0 || first.Stats.CacheTuplesSpooled == 0 {
		t.Fatalf("cold run must spool: %s", first.Stats.String())
	}
	second, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Rows.Equal(first.Rows) {
		t.Fatal("warm run changed the answer")
	}
	if second.Stats.CacheHits == 0 || second.Stats.CacheTuplesReplayed == 0 {
		t.Fatalf("warm run must hit: %s", second.Stats.String())
	}
	if second.Stats.BaseTuplesRead >= first.Stats.BaseTuplesRead {
		t.Fatalf("warm run must read less: %d vs %d",
			second.Stats.BaseTuplesRead, first.Stats.BaseTuplesRead)
	}
	if entries, tuples := eng.PlanCacheInfo(); entries == 0 || tuples == 0 {
		t.Fatalf("memo should hold the result: entries=%d tuples=%d", entries, tuples)
	}
}

// TestPlanCacheInvalidation mutates a base relation between two runs and
// asserts the second run reflects the mutation — the generation counter must
// flush the memo, never replaying stale tuples.
func TestPlanCacheInvalidation(t *testing.T) {
	db := demoDB()
	eng := NewEngine(db, WithPlanCache(0))
	const q = `{ x | student(x) and not exists y: attends(x, y) }`

	first, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the memo, then enroll a brand-new student with no courses: the
	// answer must grow by exactly that tuple.
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	students, err := db.Catalog().Relation("student")
	if err != nil {
		t.Fatal(err)
	}
	students.InsertValues(relation.Str("zoe"))

	after, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.CacheHits != 0 {
		t.Fatalf("post-mutation run must not hit stale entries: %s", after.Stats.String())
	}
	if !after.Rows.Contains(relation.NewTuple(relation.Str("zoe"))) {
		t.Fatalf("stale cache: new student missing from\n%s", after.Rows)
	}
	if after.Rows.Len() != first.Rows.Len()+1 {
		t.Fatalf("answer should grow by one: %d -> %d", first.Rows.Len(), after.Rows.Len())
	}

	// Deletion invalidates too.
	students.Delete(relation.NewTuple(relation.Str("zoe")))
	back, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Rows.Equal(first.Rows) {
		t.Fatalf("after delete the original answer must return:\n%s\nvs\n%s", back.Rows, first.Rows)
	}
}

// TestPlanCacheToggle: disabling the cache keeps previously prepared Shared
// plans runnable (transparent), and re-enabling starts cold.
func TestPlanCacheToggle(t *testing.T) {
	db := demoDB()
	eng := NewEngine(db, WithPlanCache(0))
	const q = `{ x | student(x) and not exists y: attends(x, y) }`

	p, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(p); err != nil {
		t.Fatal(err)
	}
	if !eng.PlanCacheEnabled() {
		t.Fatal("cache should be on")
	}

	eng.Configure(WithoutPlanCache())
	if eng.PlanCacheEnabled() || eng.PlanCacheBudget() != 0 {
		t.Fatal("cache should be off")
	}
	res, err := eng.Run(p) // Shared wrappers run transparently
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits+res.Stats.CacheMisses != 0 {
		t.Fatalf("no memo, no cache traffic: %s", res.Stats.String())
	}

	eng.Configure(WithPlanCache(123))
	if got := eng.PlanCacheBudget(); got != 123 {
		t.Fatalf("budget = %d, want 123", got)
	}
	if entries, _ := eng.PlanCacheInfo(); entries != 0 {
		t.Fatal("re-enabled cache must start cold")
	}
}
