package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/testutil"
)

// robustDB is a university small enough for fast sweeps but large enough
// that every drain runs for dozens of tuples (so mid-drain faults and
// budget trips have room to fire).
func robustDB() *DB {
	db := NewDB()
	st := db.MustDefine("student", "name")
	att := db.MustDefine("attends", "name", "lecture")
	lec := db.MustDefine("lecture", "id")
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("s%02d", i)
		st.InsertValues(relation.Str(name))
		if i%3 != 0 {
			att.InsertValues(relation.Str(name), relation.Str(fmt.Sprintf("l%d", i%5)))
		}
	}
	for i := 0; i < 5; i++ {
		lec.InsertValues(relation.Str(fmt.Sprintf("l%d", i)))
	}
	return db
}

const robustQuery = `{ x | student(x) and not exists y: attends(x, y) }`

func assertTypedError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a typed error, got nil")
	}
	var ee *ExecError
	var ple *PlanError
	var re *ResourceError
	if !errors.As(err, &ee) && !errors.As(err, &ple) && !errors.As(err, &re) {
		t.Fatalf("error %T(%v) is not in the typed family", err, err)
	}
}

func TestWithTupleLimitAborts(t *testing.T) {
	eng := NewEngine(robustDB(), WithTupleLimit(5))
	_, err := eng.Query(robustQuery)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T(%v), want *ResourceError", err, err)
	}
	if re.Limit != "tuples" {
		t.Fatalf("limit = %q, want tuples", re.Limit)
	}
	if eng.Robustness().LimitsTripped < 1 {
		t.Fatal("cumulative LimitsTripped not recorded")
	}
	// The same engine, unbounded, answers immediately afterwards.
	eng.Configure(WithTupleLimit(0))
	res, err := eng.Query(robustQuery)
	if err != nil || res.Rows.Len() != 20 {
		t.Fatalf("post-trip query: %v (rows=%v)", err, res)
	}
}

func TestWithMemoryBudgetAborts(t *testing.T) {
	eng := NewEngine(robustDB(), WithMemoryBudget(512))
	_, err := eng.Query(robustQuery)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T(%v), want *ResourceError", err, err)
	}
	if re.Limit != "memory" {
		t.Fatalf("limit = %q, want memory", re.Limit)
	}
}

// TestCoddCartesianBlowupBounded pins the acceptance criterion: the Codd
// reduction's cartesian product of domain ranges — the paper's motivating
// blowup — is aborted deterministically by a tuple budget.
func TestCoddCartesianBlowupBounded(t *testing.T) {
	// The answer has 20 rows, but the Codd reduction materializes domain
	// products worth thousands of tuples on the way; Bry needs under 500.
	var first *ResourceError
	for run := 0; run < 2; run++ {
		eng := NewEngine(robustDB(), WithStrategy(StrategyCodd), WithTupleLimit(1000))
		_, err := eng.Query(robustQuery)
		var re *ResourceError
		if !errors.As(err, &re) {
			t.Fatalf("run %d: err = %T(%v), want *ResourceError", run, err, err)
		}
		if re.Limit != "tuples" || re.Used <= 1000 {
			t.Fatalf("run %d: violation %+v", run, re)
		}
		if first == nil {
			first = re
		} else if re.Limit != first.Limit || re.Operator != first.Operator || re.Used != first.Used {
			t.Fatalf("non-deterministic abort: %+v vs %+v", first, re)
		}
		// Bry evaluates the same query under the same budget without
		// tripping: the enforcement layer rewards the better plan shape.
		bry := NewEngine(robustDB(), WithTupleLimit(1000))
		if _, err := bry.Query(robustQuery); err != nil {
			t.Fatalf("Bry strategy tripped the same budget: %v", err)
		}
	}
}

func TestPerCallLimitOverride(t *testing.T) {
	eng := NewEngine(robustDB())
	// Unbounded engine, bounded call.
	ctx := WithQueryLimits(context.Background(), Limits{Tuples: 3})
	_, err := eng.QueryContext(ctx, robustQuery)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("per-call limit: err = %T(%v), want *ResourceError", err, err)
	}
	// Bounded engine, generous call: the override replaces the engine bound.
	eng.Configure(WithTupleLimit(3))
	if _, err := eng.Query(robustQuery); err == nil {
		t.Fatal("engine-level limit did not trip")
	}
	res, err := eng.QueryContext(WithQueryLimits(context.Background(), Limits{Tuples: 1 << 30}), robustQuery)
	if err != nil || res.Rows.Len() != 20 {
		t.Fatalf("generous override: %v", err)
	}
	// A zero override disables budgets for that call entirely.
	if _, err := eng.QueryContext(WithQueryLimits(context.Background(), Limits{}), robustQuery); err != nil {
		t.Fatalf("zero override: %v", err)
	}
}

// TestMemoryPressureShedsPlanCache: graceful degradation at engine level —
// under a budget smaller than the warm cache entry, the engine sheds the
// entry, credits the freed bytes, and the query still completes.
func TestMemoryPressureShedsPlanCache(t *testing.T) {
	eng := NewEngine(robustDB(), WithPlanCache(0))
	want, err := eng.Query(robustQuery)
	if err != nil {
		t.Fatal(err)
	}
	if entries, _ := eng.PlanCacheInfo(); entries < 1 {
		t.Fatal("warm-up query did not populate the plan cache")
	}
	eng.Configure(WithMemoryBudget(256))
	res, err := eng.Query(robustQuery)
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	if !res.Rows.Equal(want.Rows) {
		t.Fatal("degraded query changed the answer")
	}
	if res.Stats.DegradedEvictions < 1 {
		t.Fatalf("expected shed entries, stats: %s", &res.Stats)
	}
	if entries, _ := eng.PlanCacheInfo(); entries != 0 {
		t.Fatalf("cache still holds %d entries after shedding", entries)
	}
	if eng.Robustness().DegradedEvictions < 1 {
		t.Fatal("cumulative DegradedEvictions not recorded")
	}
}

// TestEveryInjectionPointSurfacesTyped pins the acceptance criterion: an
// injected error or panic at every registered point surfaces as a typed
// error — never a crash — and the engine answers the same query correctly
// once the fault plan is removed.
func TestEveryInjectionPointSurfacesTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := robustDB()
	baseline := NewEngine(db, WithParallelism(4))
	want, err := baseline.Query(robustQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range faultinject.Points() {
		for _, kind := range []faultinject.Kind{faultinject.KindError, faultinject.KindPanic} {
			t.Run(fmt.Sprintf("%s-%s", pt, kind), func(t *testing.T) {
				fp := faultinject.New(faultinject.Arm{Point: pt, Kind: kind})
				eng := NewEngine(db, WithParallelism(4), WithPlanCache(0), WithFaultPlan(fp))
				_, err := eng.Query(robustQuery)
				if fired := fp.Fired(); len(fired) != 1 {
					t.Fatalf("arm did not fire on this plan (fired=%v)", fired)
				}
				assertTypedError(t, err)
				if kind == faultinject.KindError && !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("injected error lost its sentinel: %v", err)
				}
				if kind == faultinject.KindPanic {
					var ee *ExecError
					if !errors.As(err, &ee) {
						t.Fatalf("panic fault = %T(%v), want *ExecError", err, err)
					}
					var pe *exec.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("ExecError does not unwrap to *PanicError: %v", err)
					}
					if eng.Robustness().PanicsRecovered < 1 {
						t.Fatal("recovered panic not counted")
					}
				}
				// The same engine heals once the plan is removed.
				eng.Configure(WithoutFaultPlan())
				res, err := eng.Query(robustQuery)
				if err != nil {
					t.Fatalf("post-fault query: %v", err)
				}
				if !res.Rows.Equal(want.Rows) {
					t.Fatal("post-fault answer differs from baseline")
				}
			})
		}
	}
}

// TestStreamContextGuarded: the streaming entry point shares the isolation
// boundary — a worker panic mid-stream surfaces typed, with partial stats.
func TestStreamContextGuarded(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := robustDB()
	eng := NewEngine(db, WithParallelism(4),
		WithFaultPlan(faultinject.New(faultinject.Arm{Point: faultinject.PointWorker, Kind: faultinject.KindPanic})))
	p, err := eng.Prepare(robustQuery)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.StreamContext(context.Background(), p, func(relation.Tuple) bool { return true })
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T(%v), want *ExecError", err, err)
	}
	if ee.Stage != "stream" {
		t.Fatalf("stage = %q, want stream", ee.Stage)
	}
	if st.PanicsRecovered != 1 {
		t.Fatalf("partial stats lost the recovery: %s", &st)
	}
}

func TestRobustnessOptionsAccessors(t *testing.T) {
	fp := faultinject.New()
	eng := NewEngine(robustDB(), WithTupleLimit(7), WithMemoryBudget(1024), WithFaultPlan(fp))
	if eng.TupleLimit() != 7 || eng.MemoryBudget() != 1024 || eng.FaultPlan() != fp {
		t.Fatalf("accessors disagree: %d %d %v", eng.TupleLimit(), eng.MemoryBudget(), eng.FaultPlan())
	}
	eng.Configure(WithTupleLimit(-1), WithMemoryBudget(-1), WithoutFaultPlan())
	if eng.TupleLimit() != 0 || eng.MemoryBudget() != 0 || eng.FaultPlan() != nil {
		t.Fatalf("clamping failed: %d %d %v", eng.TupleLimit(), eng.MemoryBudget(), eng.FaultPlan())
	}
	rc := eng.Robustness()
	if rc.PanicsRecovered != 0 || rc.LimitsTripped != 0 || rc.DegradedEvictions != 0 {
		t.Fatalf("fresh engine has robustness history: %+v", rc)
	}
}
