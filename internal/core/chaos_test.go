package core

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testutil"
)

// chaosSeedCount mirrors the exec-layer sweep: 16 seeds by default, raised
// via CHAOS_SEEDS by the `make chaos` gate.
func chaosSeedCount(t testing.TB) int64 {
	t.Helper()
	n := int64(16)
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", s)
		}
		n = v
	}
	return n
}

// TestChaosEngineSurvivesSeededFaults is the engine-boundary counterpart of
// the exec sweep: one seeded fault per iteration against a cached, parallel
// engine. For every seed the call must return — typed error or correct
// result, never a crash — and after clearing the plan the SAME engine (same
// catalog, same warm plan cache) must answer exactly the fault-free answer.
func TestChaosEngineSurvivesSeededFaults(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := robustDB()
	baseline := NewEngine(db, WithParallelism(4)) // cache-off reference
	want, err := baseline.Query(robustQuery)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(db, WithParallelism(4), WithPlanCache(0))
	seeds := chaosSeedCount(t)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fp := faultinject.Seeded(seed)
			eng.Configure(WithFaultPlan(fp))
			res, err := eng.Query(robustQuery)
			if err != nil {
				assertTypedError(t, err)
				if !errors.Is(err, faultinject.ErrInjected) {
					// Panic arms do not carry the sentinel; they must at
					// least have crossed the recovery boundary.
					var ee *ExecError
					if !errors.As(err, &ee) {
						t.Fatalf("seed %d: untyped failure %T(%v)", seed, err, err)
					}
				}
			} else if !res.Rows.Equal(want.Rows) {
				t.Fatalf("seed %d: survived run returned a wrong result", seed)
			}

			// Post-fault health on the same engine: cache-on must still
			// equal the cache-off baseline.
			eng.Configure(WithoutFaultPlan())
			res, err = eng.Query(robustQuery)
			if err != nil {
				t.Fatalf("seed %d: post-fault query: %v", seed, err)
			}
			if !res.Rows.Equal(want.Rows) {
				t.Fatalf("seed %d: post-fault answer differs (cache-on ≢ cache-off)", seed)
			}
		})
	}
}
