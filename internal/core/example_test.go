package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/relation"
)

// Example shows the basic query pipeline: define relations, load tuples,
// and evaluate a universally quantified open query.
func Example() {
	db := core.NewDB()
	student := db.MustDefine("student", "name")
	lecture := db.MustDefine("lecture", "id")
	attends := db.MustDefine("attends", "name", "lecture")

	for _, n := range []string{"ann", "bob"} {
		student.InsertValues(relation.Str(n))
	}
	for _, l := range []string{"l1", "l2"} {
		lecture.InsertValues(relation.Str(l))
	}
	attends.InsertValues(relation.Str("ann"), relation.Str("l1"))
	attends.InsertValues(relation.Str("ann"), relation.Str("l2"))
	attends.InsertValues(relation.Str("bob"), relation.Str("l1"))

	eng := core.NewEngine(db)
	res, err := eng.Query(`{ x | student(x) and forall y: lecture(y) => attends(x, y) }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Rows.Tuples() {
		fmt.Println(t[0])
	}
	// Output:
	// ann
}

// ExampleEngine_Check evaluates an integrity constraint (the paper's
// motivating application).
func ExampleEngine_Check() {
	db := core.NewDB()
	emp := db.MustDefine("emp", "name", "dept")
	db.MustDefine("dept", "id")
	emp.InsertValues(relation.Str("ann"), relation.Str("cs"))

	eng := core.NewEngine(db)
	ok, err := eng.Check(`forall x, d: emp(x, d) => dept(d)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok)
	// Output:
	// false
}

// ExampleDB_DefineView queries through a derived view.
func ExampleDB_DefineView() {
	db := core.NewDB()
	member := db.MustDefine("member", "name", "dept")
	member.InsertValues(relation.Str("ann"), relation.Str("cs"))
	member.InsertValues(relation.Str("eve"), relation.Str("math"))
	if err := db.DefineView("cs_member", `{ x | member(x, "cs") }`); err != nil {
		log.Fatal(err)
	}

	eng := core.NewEngine(db)
	res, err := eng.Query(`{ x | cs_member(x) }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows.Len())
	// Output:
	// 1
}

// ExampleEngine_Explain shows the canonical form and the algebra plan of a
// negated-existential query: the complement-join at work.
func ExampleEngine_Explain() {
	db := core.NewDB()
	db.MustDefine("p", "v")
	db.MustDefine("q", "v")
	eng := core.NewEngine(db)
	out, err := eng.Explain(`{ x | p(x) and not q(x) }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	// Output:
	// canonical: {x | p(x) ∧ ¬q(x)}
	// ⊼[1=1] (complement-join)
	//   Scan p
	//   Scan q
}
