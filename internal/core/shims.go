package core

import "context"

// The engine's context-less convenience wrappers (Run, Query, Check,
// Stream) are generated from their *Context twins by one table-driven shim:
// each wrapper's body is exactly `return e.<Twin>(noCancel(), args...)`, so
// the library's entire no-cancellation surface funnels through a single
// sanctioned root-context site instead of four separately waived ones.
// TestConvenienceShims walks convenienceShims by reflection and fails if a
// wrapper is missing or its signature drifts from its twin's (minus the
// leading context), so the table is load-bearing, not documentation.

// convenienceShims pairs every documented context-less wrapper with the
// *Context twin it shims to.
var convenienceShims = []struct {
	Wrapper, Twin string
}{
	{"Run", "RunContext"},
	{"Query", "QueryContext"},
	{"Check", "CheckContext"},
	{"Stream", "StreamContext"},
}

// noCancel returns the root context behind the convenience wrappers. It is
// the library's single justified context.Background() site: ctxfirst bans
// conjured root contexts everywhere else, so adding a fifth wrapper means
// adding a convenienceShims row, not a new waiver.
func noCancel() context.Context {
	//lint:ignore ctxfirst the one root-context site backing the documented context-less convenience wrappers (convenienceShims)
	return context.Background()
}
