package loopeval

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/storage"
)

func s(x string) relation.Value { return relation.Str(x) }

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	st := cat.MustDefine("student", relation.NewSchema("name"))
	for _, n := range []string{"ann", "bob", "eve"} {
		st.InsertValues(s(n))
	}
	lec := cat.MustDefine("lecture", relation.NewSchema("id"))
	lec.InsertValues(s("db"))
	lec.InsertValues(s("ai"))
	att := cat.MustDefine("attends", relation.NewSchema("name", "lecture"))
	att.InsertValues(s("ann"), s("db"))
	att.InsertValues(s("ann"), s("ai"))
	att.InsertValues(s("bob"), s("db"))
	return cat
}

// TestFigure1aClosedExistential: Fig. 1a with early termination.
func TestFigure1aClosedExistential(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`exists x: student(x) and attends(x, "db")`)
	ok, err := ev.EvalClosed(q.Body, Env{})
	if err != nil || !ok {
		t.Fatalf("got %v, %v", ok, err)
	}
	// ann is the first student and attends db: the loop must stop after
	// scanning one student tuple (plus the attends membership check).
	if ev.Stats.BaseTuplesRead != 1 {
		t.Fatalf("read %d tuples, want 1 (early termination of Fig. 1a)", ev.Stats.BaseTuplesRead)
	}
}

// TestFigure1bClosedUniversal: Fig. 1b stops at the first counterexample.
func TestFigure1bClosedUniversal(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`forall x: student(x) => attends(x, "db")`)
	ok, err := ev.EvalClosed(q.Body, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("eve attends nothing; the universal must fail")
	}
	// ann ✓, bob ✓, eve ✗ — stops at the third student.
	if ev.Stats.BaseTuplesRead != 3 {
		t.Fatalf("read %d tuples, want 3", ev.Stats.BaseTuplesRead)
	}
}

// TestFigure1cOpenQuantified: Fig. 1c computes all answers.
func TestFigure1cOpenQuantified(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`{ x | student(x) and forall y: lecture(y) => attends(x, y) }`)
	out, err := ev.EvalOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewUnnamed(out.Schema())
	want.InsertValues(s("ann"))
	if !out.Equal(want) {
		t.Fatalf("got:\n%s\nwant ann only", out)
	}
}

func TestEvalOpenDisjunction(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`{ x | student(x) or lecture(x) }`)
	out, err := ev.EvalOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("got %d rows, want 5", out.Len())
	}
}

func TestEvalProjectionRange(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`{ x | (exists y: attends(x, y)) and student(x) }`)
	out, err := ev.EvalOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // ann, bob
		t.Fatalf("got %d rows, want 2:\n%s", out.Len(), out)
	}
}

func TestEvalComparisonFilter(t *testing.T) {
	ev := New(testCatalog())
	q := parser.MustParse(`{ x | student(x) and x != "ann" }`)
	out, err := ev.EvalOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d rows, want 2", out.Len())
	}
}

func TestEvalClosedConnectives(t *testing.T) {
	ev := New(testCatalog())
	cases := map[string]bool{
		`student("ann") and lecture("db")`:          true,
		`student("ann") and lecture("nope")`:        false,
		`student("nope") or lecture("db")`:          true,
		`not student("nope")`:                       true,
		`forall x: not attends(x, "nope")`:          true,
		`exists x, y: attends(x, y) and x = "ann"`:  true,
		`exists x, y: attends(x, y) and y = "nope"`: false,
	}
	for input, want := range cases {
		got, err := ev.EvalClosed(parser.MustParse(input).Body, Env{})
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", input, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	ev := New(testCatalog())
	if _, err := ev.EvalClosed(parser.MustParse(`unknown("a")`).Body, Env{}); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, err := ev.EvalOpen(parser.MustParse(`exists x: student(x)`)); err == nil {
		t.Fatal("EvalOpen on a closed query must fail")
	}
	if _, err := ev.EvalClosed(parser.MustParse(`student(x)`).Body, Env{}); err == nil {
		t.Fatal("unbound variable must fail")
	}
	// Arity mismatch.
	if _, err := ev.EvalOpen(parser.MustParse(`{ x | attends(x) }`)); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestEvalViaEval(t *testing.T) {
	ev := New(testCatalog())
	res, err := ev.Eval(parser.MustParse(`exists x: student(x)`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("closed true query yields one 0-ary tuple, got %d", res.Len())
	}
	res, err = ev.Eval(parser.MustParse(`exists x: student(x) and attends(x, "nope")`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("closed false query yields the empty relation")
	}
}

func TestOracleBasics(t *testing.T) {
	cat := testCatalog()
	o := NewOracle(cat)
	ok, err := o.Closed(parser.MustParse(`forall x: student(x) => exists y: attends(x, y)`).Body, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("eve attends nothing")
	}
	ans, err := o.Answers(parser.MustParse(`{ x | student(x) and not attends(x, "db") }`))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewUnnamed(ans.Schema())
	want.InsertValues(s("eve"))
	if !ans.Equal(want) {
		t.Fatalf("got:\n%s\nwant eve", ans)
	}
}

func TestOracleDomainClosure(t *testing.T) {
	cat := testCatalog()
	o := NewOracle(cat)
	// ∃x ¬student(x): true under the DCA — e.g. the value "db".
	ok, err := o.Closed(parser.MustParse(`exists x: not student(x)`).Body, Env{})
	if err != nil || !ok {
		t.Fatalf("DCA existential failed: %v %v", ok, err)
	}
}

// TestNestedLoopsMultiProducer: two producers drive nested scans (Fig. 1's
// loop nesting) and parameters propagate inward.
func TestNestedLoopsMultiProducer(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("r", relation.NewSchema("a", "b"))
	sRel := cat.MustDefine("srel", relation.NewSchema("b", "c"))
	r.InsertValues(s("x"), s("y"))
	r.InsertValues(s("x"), s("z"))
	sRel.InsertValues(s("y"), s("k"))
	sRel.InsertValues(s("w"), s("k"))

	// (Declaring b is the safety layer's job — rewrite.Normalize rejects
	// the undeclared-variable variant; the interpreter assumes valid input.)
	ev := New(cat)
	out, err := ev.EvalOpen(parser.MustParse(`{ a, c | exists b: r(a, b) and srel(b, c) }`))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewUnnamed(out.Schema())
	want.InsertValues(s("x"), s("k"))
	if !out.Equal(want) {
		t.Fatalf("got:\n%s\nwant (x,k)", out)
	}
}

// TestEarlyExitPropagatesThroughOr: stopping inside the second disjunct of
// an open disjunction must stop the whole enumeration.
func TestEarlyExitThroughProducers(t *testing.T) {
	cat := testCatalog()
	ev := New(cat)
	// Closed existential over a disjunctive range: stops at first witness.
	ok, err := ev.EvalClosed(parser.MustParse(`exists x: (student(x) or lecture(x))`).Body, Env{})
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if ev.Stats.BaseTuplesRead != 1 {
		t.Fatalf("read %d, want 1", ev.Stats.BaseTuplesRead)
	}
}
