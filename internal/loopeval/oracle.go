package loopeval

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Oracle evaluates formulas under the textbook semantics of §2.1: by the
// Domain Closure Assumption every quantifier ranges over the database
// domain (the set of all values occurring anywhere in the database), and by
// the Closed World Assumption an atom not in the database is false.
//
// The oracle is deliberately naive — it enumerates domainᵏ for a k-variable
// quantifier — which makes it slow but an implementation-independent
// ground truth: it never consults ranges, producers, normalization or
// translation, so agreement with it is meaningful evidence for all of them.
type Oracle struct {
	cat    *storage.Catalog
	domain []relation.Value
}

// NewOracle snapshots the database domain of the catalog.
func NewOracle(cat *storage.Catalog) *Oracle {
	dom := cat.Domain()
	vals := make([]relation.Value, 0, dom.Len())
	for _, t := range dom.Tuples() {
		vals = append(vals, t[0])
	}
	return &Oracle{cat: cat, domain: vals}
}

// Closed evaluates a closed formula under env.
func (o *Oracle) Closed(f calculus.Formula, env Env) (bool, error) {
	switch n := f.(type) {
	case calculus.Atom:
		t := make(relation.Tuple, len(n.Args))
		for i, arg := range n.Args {
			v, err := groundTerm(arg, env)
			if err != nil {
				return false, fmt.Errorf("oracle: %w in %s", err, f)
			}
			t[i] = v
		}
		rel, err := o.cat.Relation(n.Pred)
		if err != nil {
			return false, err
		}
		return rel.Contains(t), nil
	case calculus.Cmp:
		l, err := groundTerm(n.Left, env)
		if err != nil {
			return false, err
		}
		r, err := groundTerm(n.Right, env)
		if err != nil {
			return false, err
		}
		return n.Op.Apply(l, r), nil
	case calculus.Not:
		ok, err := o.Closed(n.F, env)
		return !ok, err
	case calculus.And:
		ok, err := o.Closed(n.L, env)
		if err != nil || !ok {
			return false, err
		}
		return o.Closed(n.R, env)
	case calculus.Or:
		ok, err := o.Closed(n.L, env)
		if err != nil || ok {
			return ok, err
		}
		return o.Closed(n.R, env)
	case calculus.Implies:
		ok, err := o.Closed(n.L, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return o.Closed(n.R, env)
	case calculus.Exists:
		return o.quant(n.Vars, n.Body, env, true)
	case calculus.Forall:
		return o.quant(n.Vars, n.Body, env, false)
	default:
		return false, fmt.Errorf("oracle: unknown formula %T", f)
	}
}

// quant enumerates domain^len(vars); existential stops on the first true,
// universal on the first false.
func (o *Oracle) quant(vars []string, body calculus.Formula, env Env, existential bool) (bool, error) {
	if len(vars) == 0 {
		return o.Closed(body, env)
	}
	for _, v := range o.domain {
		ne := env.clone()
		ne[vars[0]] = v
		ok, err := o.quant(vars[1:], body, ne, existential)
		if err != nil {
			return false, err
		}
		if ok == existential {
			return existential, nil
		}
	}
	return !existential, nil
}

// Answers computes the answer set of an open query by enumerating the
// domain for every open variable.
func (o *Oracle) Answers(q parser.Query) (*relation.Relation, error) {
	if !q.IsOpen() {
		return nil, fmt.Errorf("oracle: Answers needs an open query")
	}
	out := relation.NewUnnamed(relation.NewSchema(q.OpenVars...))
	var rec func(i int, env Env) error
	rec = func(i int, env Env) error {
		if i == len(q.OpenVars) {
			ok, err := o.Closed(q.Body, env)
			if err != nil {
				return err
			}
			if ok {
				t := make(relation.Tuple, len(q.OpenVars))
				for j, v := range q.OpenVars {
					t[j] = env[v]
				}
				out.Insert(t)
			}
			return nil
		}
		for _, v := range o.domain {
			ne := env.clone()
			ne[q.OpenVars[i]] = v
			if err := rec(i+1, ne); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, Env{}); err != nil {
		return nil, err
	}
	return out, nil
}
