// Package loopeval implements the loop algorithms of the paper's Fig. 1:
// a pipelined, one-tuple-at-a-time interpreter for calculus queries. The
// loop nesting reflects the quantifier nesting, every operation is
// performed one tuple at a time, and evaluation terminates as early as the
// logic allows (the truth of an existential subquery or the falsity of a
// universal one stops its loop).
//
// The interpreter plays two roles in the reproduction:
//
//   - it is the baseline evaluation strategy the paper improves upon, with
//     the same cost counters as the algebraic executor, and
//   - via Oracle it provides an independent semantics (quantifiers ranging
//     over the whole database domain, per the Domain Closure Assumption)
//     against which normalization and both translators are property-tested.
package loopeval

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/ranges"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Env is a variable binding environment.
type Env map[string]relation.Value

// clone copies the environment; loops extend copies so sibling branches
// stay independent.
func (e Env) clone() Env {
	out := make(Env, len(e)+2)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Evaluator interprets calculus formulas against a catalog with the
// nested-loop strategy of Fig. 1.
type Evaluator struct {
	Cat   *storage.Catalog
	Stats *exec.Stats
}

// New builds an evaluator with fresh counters.
func New(cat *storage.Catalog) *Evaluator {
	return &Evaluator{Cat: cat, Stats: &exec.Stats{}}
}

// EvalClosed evaluates a closed formula (every free variable bound in env)
// to a truth value, per Fig. 1a/1b.
func (e *Evaluator) EvalClosed(f calculus.Formula, env Env) (bool, error) {
	switch n := f.(type) {
	case calculus.Atom:
		t, err := e.groundAtom(n, env)
		if err != nil {
			return false, err
		}
		rel, err := e.Cat.Relation(n.Pred)
		if err != nil {
			return false, err
		}
		e.Stats.Comparisons++
		return rel.Contains(t), nil
	case calculus.Cmp:
		l, err := groundTerm(n.Left, env)
		if err != nil {
			return false, err
		}
		r, err := groundTerm(n.Right, env)
		if err != nil {
			return false, err
		}
		e.Stats.Comparisons++
		return n.Op.Apply(l, r), nil
	case calculus.Not:
		ok, err := e.EvalClosed(n.F, env)
		return !ok, err
	case calculus.And:
		ok, err := e.EvalClosed(n.L, env)
		if err != nil || !ok {
			return false, err
		}
		return e.EvalClosed(n.R, env)
	case calculus.Or:
		ok, err := e.EvalClosed(n.L, env)
		if err != nil || ok {
			return ok, err
		}
		return e.EvalClosed(n.R, env)
	case calculus.Implies:
		ok, err := e.EvalClosed(n.L, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return e.EvalClosed(n.R, env)
	case calculus.Exists:
		// Fig. 1a: loop over the range bindings while value ≠ true.
		found := false
		err := e.eachBinding(n.Vars, n.Body, env, func(Env) (bool, error) {
			found = true
			return false, nil // stop the loop
		})
		return found, err
	case calculus.Forall:
		// Fig. 1b, using the symmetry the paper formalizes as Rules 4/5:
		// ∀x̄ R ⇒ F fails iff some range binding falsifies F.
		switch body := n.Body.(type) {
		case calculus.Implies:
			all := true
			err := e.eachBinding(n.Vars, body.L, env, func(be Env) (bool, error) {
				ok, err := e.EvalClosed(body.R, be)
				if err != nil {
					return false, err
				}
				if !ok {
					all = false
					return false, nil // stop the loop
				}
				return true, nil
			})
			return all, err
		case calculus.Not:
			any := false
			err := e.eachBinding(n.Vars, body.F, env, func(Env) (bool, error) {
				any = true
				return false, nil
			})
			return !any, err
		default:
			// General body: ∀x̄ F ≡ ¬∃x̄ ¬F.
			ok, err := e.EvalClosed(calculus.Not{F: calculus.Exists{Vars: n.Vars, Body: calculus.Not{F: n.Body}}}, env)
			return ok, err
		}
	default:
		return false, fmt.Errorf("loopeval: unknown formula %T", f)
	}
}

// EvalOpen evaluates an open query per Fig. 1c: the range of the open
// variables is enumerated and each binding is tested against the filters.
// The result relation carries one column per open variable, in order.
func (e *Evaluator) EvalOpen(q parser.Query) (*relation.Relation, error) {
	if !q.IsOpen() {
		return nil, fmt.Errorf("loopeval: EvalOpen needs an open query")
	}
	out := relation.NewUnnamed(relation.NewSchema(q.OpenVars...))
	err := e.eachBinding(q.OpenVars, q.Body, Env{}, func(env Env) (bool, error) {
		t := make(relation.Tuple, len(q.OpenVars))
		for i, v := range q.OpenVars {
			t[i] = env[v]
		}
		out.Insert(t)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	e.Stats.OutputTuples += int64(out.Len())
	return out, nil
}

// Eval evaluates either query form; closed queries yield a 0-ary relation
// holding the empty tuple for true and nothing for false.
func (e *Evaluator) Eval(q parser.Query) (*relation.Relation, error) {
	if q.IsOpen() {
		return e.EvalOpen(q)
	}
	ok, err := e.EvalClosed(q.Body, Env{})
	if err != nil {
		return nil, err
	}
	out := relation.NewUnnamed(relation.Schema{})
	if ok {
		out.Insert(relation.Tuple{})
	}
	return out, nil
}

// eachBinding enumerates the bindings of vars produced by formula f under
// env, calling visit for each; visit returns false to stop the enumeration
// early (the while-loop conditions of Fig. 1). The formula is decomposed
// into producers and filters (Definition 5); producers drive nested scans,
// filters are checked per binding.
func (e *Evaluator) eachBinding(vars []string, f calculus.Formula, env Env, visit func(Env) (bool, error)) error {
	unbound := make([]string, 0, len(vars))
	for _, v := range vars {
		if _, ok := env[v]; !ok {
			unbound = append(unbound, v)
		}
	}
	if len(unbound) == 0 {
		ok, err := e.EvalClosed(f, env)
		if err != nil || !ok {
			return err
		}
		_, err = visit(env)
		return err
	}

	switch n := f.(type) {
	case calculus.Atom:
		return e.scanAtom(n, env, visit)
	case calculus.And:
		conjs := calculus.Conjuncts(n)
		producers, filters, err := ranges.SplitProducerFilter(conjs, unbound)
		if err != nil {
			return fmt.Errorf("loopeval: %w (formula %s)", err, f)
		}
		return e.nestedLoops(producers, filters, env, visit)
	case calculus.Or:
		// Each disjunct ranges the same variables (Definition 3 case 2);
		// duplicates across branches are tolerated — set semantics happen
		// at the caller — but early exits propagate.
		stop := false
		wrapped := func(be Env) (bool, error) {
			cont, err := visit(be)
			if !cont {
				stop = true
			}
			return cont, err
		}
		if err := e.eachBinding(vars, n.L, env, wrapped); err != nil {
			return err
		}
		if stop {
			return nil
		}
		return e.eachBinding(vars, n.R, env, wrapped)
	case calculus.Exists:
		// Definition 1 case 5: a projection; enumerate the inner variables
		// too, expose only the outer ones.
		inner := append(append([]string(nil), vars...), n.Vars...)
		return e.eachBinding(inner, n.Body, env, func(be Env) (bool, error) {
			pe := env.clone()
			for _, v := range vars {
				pe[v] = be[v]
			}
			return visit(pe)
		})
	default:
		return fmt.Errorf("loopeval: formula %s cannot produce bindings for %v", f, unbound)
	}
}

// nestedLoops runs one loop level per producer, innermost checking filters.
func (e *Evaluator) nestedLoops(producers, filters []calculus.Formula, env Env, visit func(Env) (bool, error)) error {
	if len(producers) == 0 {
		for _, fl := range filters {
			ok, err := e.EvalClosed(fl, env)
			if err != nil || !ok {
				return err
			}
		}
		_, err := visit(env)
		return err
	}
	p := producers[0]
	pf := calculus.FreeVars(p)
	var pvars []string
	for v := range pf {
		if _, bound := env[v]; !bound {
			pvars = append(pvars, v)
		}
	}
	stop := false
	err := e.eachBinding(pvars, p, env, func(be Env) (bool, error) {
		if err := e.nestedLoops(producers[1:], filters, be, func(fe Env) (bool, error) {
			cont, err := visit(fe)
			if !cont {
				stop = true
			}
			return cont, err
		}); err != nil {
			return false, err
		}
		return !stop, nil
	})
	return err
}

// scanAtom scans the atom's relation, matching bound arguments and binding
// unbound ones; one base read is charged per tuple scanned.
func (e *Evaluator) scanAtom(a calculus.Atom, env Env, visit func(Env) (bool, error)) error {
	rel, err := e.Cat.Relation(a.Pred)
	if err != nil {
		return err
	}
	if rel.Arity() != len(a.Args) {
		return fmt.Errorf("loopeval: atom %s has arity %d, relation has %d", a, len(a.Args), rel.Arity())
	}
	for _, t := range rel.Tuples() {
		e.Stats.BaseTuplesRead++
		be := env.clone()
		match := true
		for i, arg := range a.Args {
			e.Stats.Comparisons++
			if !arg.IsVar() {
				if !t[i].Equal(arg.Const) {
					match = false
				}
			} else if v, bound := be[arg.Var]; bound {
				if !t[i].Equal(v) {
					match = false
				}
			} else {
				be[arg.Var] = t[i]
			}
			if !match {
				break
			}
		}
		if !match {
			continue
		}
		cont, err := visit(be)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

func (e *Evaluator) groundAtom(a calculus.Atom, env Env) (relation.Tuple, error) {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		v, err := groundTerm(arg, env)
		if err != nil {
			return nil, fmt.Errorf("loopeval: in atom %s: %w", a, err)
		}
		t[i] = v
	}
	return t, nil
}

func groundTerm(t calculus.Term, env Env) (relation.Value, error) {
	if !t.IsVar() {
		return t.Const, nil
	}
	v, ok := env[t.Var]
	if !ok {
		return relation.Value{}, fmt.Errorf("unbound variable %q", t.Var)
	}
	return v, nil
}
