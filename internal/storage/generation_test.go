package storage

import (
	"testing"

	"repro/internal/relation"
)

// TestGenerationMonotonic drives every mutation path and checks that the
// generation counter strictly increases — including the Add path that
// replaces a many-times-mutated relation with a fresh (version 0) one, which
// a naive sum of versions would count as going backwards.
func TestGenerationMonotonic(t *testing.T) {
	cat := NewCatalog()
	last := cat.Generation()
	bump := func(what string) {
		g := cat.Generation()
		if g <= last {
			t.Fatalf("after %s: generation %d not above %d", what, g, last)
		}
		last = g
	}

	r := cat.MustDefine("p", relation.NewSchema("a"))
	bump("define")
	r.InsertValues(relation.Int(1))
	bump("insert")
	r.InsertValues(relation.Int(2))
	bump("second insert")
	r.Delete(relation.NewTuple(relation.Int(1)))
	bump("delete")

	// Replace p with a fresh relation: its version restarts at 0.
	fresh := relation.New("p", relation.NewSchema("a"))
	cat.Add(fresh)
	bump("replacement add")

	// A no-op mutation (duplicate insert) must not move the counter.
	fresh.InsertValues(relation.Int(7))
	bump("insert into replacement")
	g := cat.Generation()
	fresh.InsertValues(relation.Int(7))
	if cat.Generation() != g {
		t.Fatal("duplicate insert is a no-op and must not bump the generation")
	}
}
