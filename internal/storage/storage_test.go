package storage

import (
	"testing"

	"repro/internal/relation"
)

func TestCatalogDefineLookup(t *testing.T) {
	cat := NewCatalog()
	r, err := cat.Define("p", relation.NewSchema("a"))
	if err != nil {
		t.Fatal(err)
	}
	r.InsertValues(relation.Int(1))
	got, err := cat.Relation("p")
	if err != nil || got.Len() != 1 {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := cat.Define("p", relation.NewSchema("a")); err == nil {
		t.Fatal("duplicate define must fail")
	}
	if _, err := cat.Relation("missing"); err == nil {
		t.Fatal("missing relation must fail")
	}
	if !cat.Has("p") || cat.Has("q") {
		t.Fatal("Has broken")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	cat := NewCatalog()
	cat.MustDefine("zebra", relation.NewSchema("a"))
	cat.MustDefine("alpha", relation.NewSchema("a"))
	names := cat.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zebra" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCatalogAddReplaces(t *testing.T) {
	cat := NewCatalog()
	cat.MustDefine("p", relation.NewSchema("a"))
	r2 := relation.New("p", relation.NewSchema("a", "b"))
	cat.Add(r2)
	got, _ := cat.Relation("p")
	if got.Arity() != 2 {
		t.Fatal("Add must replace")
	}
}

func TestCatalogDomain(t *testing.T) {
	cat := NewCatalog()
	p := cat.MustDefine("p", relation.NewSchema("a", "b"))
	p.InsertValues(relation.Int(1), relation.Str("x"))
	q := cat.MustDefine("q", relation.NewSchema("a"))
	q.InsertValues(relation.Int(1)) // duplicate value across relations
	q.InsertValues(relation.Int(2))
	dom := cat.Domain()
	if dom.Len() != 3 { // 1, "x", 2
		t.Fatalf("domain size = %d, want 3:\n%s", dom.Len(), dom)
	}
}

func TestHashIndex(t *testing.T) {
	cat := NewCatalog()
	r := cat.MustDefine("r", relation.NewSchema("a", "b"))
	r.InsertValues(relation.Int(1), relation.Str("x"))
	r.InsertValues(relation.Int(1), relation.Str("y"))
	r.InsertValues(relation.Int(2), relation.Str("x"))

	idx, err := cat.EnsureIndex("r", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	hits := idx.LookupTuples(relation.NewTuple(relation.Int(1)))
	if len(hits) != 2 {
		t.Fatalf("lookup(1) = %d tuples, want 2", len(hits))
	}
	if got := idx.Lookup(relation.NewTuple(relation.Int(9))); got != nil {
		t.Fatalf("lookup(9) = %v, want nil", got)
	}
	if idx.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", idx.Buckets())
	}
	if len(idx.Cols()) != 1 || idx.Cols()[0] != 0 {
		t.Fatalf("Cols = %v", idx.Cols())
	}

	// The cached index is returned while fresh, rebuilt after growth.
	idx2, _ := cat.EnsureIndex("r", []int{0})
	if idx2 != idx {
		t.Fatal("fresh index must be cached")
	}
	r.InsertValues(relation.Int(3), relation.Str("z"))
	idx3, _ := cat.EnsureIndex("r", []int{0})
	if idx3 == idx {
		t.Fatal("stale index must be rebuilt")
	}
	if len(idx3.LookupTuples(relation.NewTuple(relation.Int(3)))) != 1 {
		t.Fatal("rebuilt index must see the new tuple")
	}

	if _, err := cat.EnsureIndex("missing", []int{0}); err == nil {
		t.Fatal("index on missing relation must fail")
	}
}

func TestHashIndexMultiColumn(t *testing.T) {
	cat := NewCatalog()
	r := cat.MustDefine("r", relation.NewSchema("a", "b"))
	r.InsertValues(relation.Int(1), relation.Str("x"))
	r.InsertValues(relation.Int(1), relation.Str("y"))
	idx, _ := cat.EnsureIndex("r", []int{0, 1})
	if len(idx.LookupTuples(relation.NewTuple(relation.Int(1), relation.Str("x")))) != 1 {
		t.Fatal("multi-column lookup broken")
	}
}

func TestIndexStaleAfterDelete(t *testing.T) {
	cat := NewCatalog()
	r := cat.MustDefine("r", relation.NewSchema("a"))
	r.InsertValues(relation.Int(1))
	r.InsertValues(relation.Int(2))
	idx, _ := cat.EnsureIndex("r", []int{0})
	// Delete + insert keeps the length constant; the index must rebuild.
	r.Delete(relation.NewTuple(relation.Int(1)))
	r.InsertValues(relation.Int(3))
	idx2, _ := cat.EnsureIndex("r", []int{0})
	if idx2 == idx {
		t.Fatal("index must rebuild after delete+insert at constant length")
	}
	if len(idx2.LookupTuples(relation.NewTuple(relation.Int(1)))) != 0 {
		t.Fatal("rebuilt index must not find the deleted tuple")
	}
	if len(idx2.LookupTuples(relation.NewTuple(relation.Int(3)))) != 1 {
		t.Fatal("rebuilt index must find the new tuple")
	}
}
