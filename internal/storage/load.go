package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// The text format for relations is one tuple per line, fields separated by
// tabs. A field parsing as a decimal integer loads as an integer; anything
// else (or any field in double quotes) loads as a string. Blank lines and
// lines starting with '#' are skipped. The internal symbols ∅/⊥ are not
// representable on purpose: they never occur in base relations.

// ReadRelation loads tuples from r into rel, which must already exist with
// the right schema. It returns the number of (distinct) tuples inserted.
func ReadRelation(r io.Reader, rel *relation.Relation) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	inserted := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != rel.Arity() {
			return inserted, fmt.Errorf("storage: line %d: %d fields, relation %q has arity %d", lineNo, len(fields), rel.Name, rel.Arity())
		}
		t := make(relation.Tuple, len(fields))
		for i, f := range fields {
			t[i] = parseValue(f)
		}
		if rel.Insert(t) {
			inserted++
		}
	}
	return inserted, sc.Err()
}

// parseValue interprets one text field.
func parseValue(f string) relation.Value {
	if len(f) >= 2 && strings.HasPrefix(f, `"`) && strings.HasSuffix(f, `"`) {
		return relation.Str(f[1 : len(f)-1])
	}
	if n, err := strconv.ParseInt(f, 10, 64); err == nil {
		return relation.Int(n)
	}
	return relation.Str(f)
}

// WriteRelation dumps the relation in the same text format, quoting string
// fields that would otherwise read back as integers or quoted text.
func WriteRelation(w io.Writer, rel *relation.Relation) error {
	bw := bufio.NewWriter(w)
	for _, t := range rel.Tuples() {
		for i, v := range t {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(formatValue(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func formatValue(v relation.Value) string {
	switch v.Kind() {
	case relation.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case relation.KindString:
		s := v.AsString()
		needsQuote := strings.HasPrefix(s, `"`) || strings.ContainsAny(s, "\t\n")
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			needsQuote = true
		}
		if s == "" || strings.HasPrefix(s, "#") {
			needsQuote = true
		}
		if needsQuote {
			return `"` + s + `"`
		}
		return s
	default:
		// ∅/⊥ never occur in base relations; make the bug loud.
		panic(fmt.Sprintf("storage: cannot serialize internal symbol %s", v))
	}
}

// LoadFile loads a relation file into an existing catalog relation.
func (c *Catalog) LoadFile(name, path string) (int, error) {
	rel, err := c.Relation(name)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ReadRelation(f, rel)
}

// SaveFile writes a catalog relation to a file.
func (c *Catalog) SaveFile(name, path string) error {
	rel, err := c.Relation(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteRelation(f, rel)
}
