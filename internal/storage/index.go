package storage

import "repro/internal/relation"

// HashIndex is an equality index over a fixed column set of one relation.
// It maps the key projection of each tuple to the positions of the matching
// tuples, enabling hash joins and index lookups in the executor.
type HashIndex struct {
	rel     *relation.Relation
	cols    []int
	buckets map[string][]int
	built   int64 // relation version at build time, for freshness checks
}

// BuildHashIndex scans the relation once and builds the index.
func BuildHashIndex(r *relation.Relation, cols []int) *HashIndex {
	idx := &HashIndex{
		rel:     r,
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]int),
		built:   r.Version(),
	}
	for i, t := range r.Tuples() {
		k := t.Project(idx.cols).Key()
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	return idx
}

// fresh reports whether the index still reflects the relation's contents.
func (ix *HashIndex) fresh() bool { return ix.built == ix.rel.Version() }

// Cols returns the indexed column positions.
func (ix *HashIndex) Cols() []int { return ix.cols }

// Lookup returns the positions of tuples whose key projection equals key.
func (ix *HashIndex) Lookup(key relation.Tuple) []int {
	return ix.buckets[key.Key()]
}

// LookupTuples returns the matching tuples themselves.
func (ix *HashIndex) LookupTuples(key relation.Tuple) []relation.Tuple {
	pos := ix.Lookup(key)
	if len(pos) == 0 {
		return nil
	}
	out := make([]relation.Tuple, len(pos))
	for i, p := range pos {
		out[i] = ix.rel.At(p)
	}
	return out
}

// Buckets returns the number of distinct keys.
func (ix *HashIndex) Buckets() int { return len(ix.buckets) }
