// Package storage implements the in-memory database substrate the paper
// assumes: a catalog of named base relations, hash indexes over column sets,
// and bulk loaders. It is deliberately simple — the reproduction measures
// plan shapes (tuples accessed, comparisons, intermediate results), not disk
// behaviour — but it is a real store: all base data flows through it, and
// indexes are consulted by the executor's index scans and hash joins.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// FaultHook, when installed, is consulted on catalog operations before they
// run; a non-nil return fails the operation. It exists for fault-injection
// tests (the storage package cannot import the injection plan directly
// without a cycle through exec): op names the operation ("relation"),
// name the relation looked up.
type FaultHook func(op, name string) error

// Catalog is a named collection of base relations. It is the unit a query
// is evaluated against.
type Catalog struct {
	relations map[string]*relation.Relation
	indexes   map[string]map[string]*HashIndex // relation -> index key -> index
	// structural accumulates definition-level changes (Define, Add). Together
	// with the per-relation versions it forms Generation, the monotonic
	// counter that invalidates the executor's plan-cache memo.
	structural int64
	// faultHook, when non-nil, may fail lookups (fault-injection tests only).
	faultHook FaultHook
}

// SetFaultHook installs (or, with nil, removes) the catalog's fault hook.
func (c *Catalog) SetFaultHook(h FaultHook) { c.faultHook = h }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		relations: make(map[string]*relation.Relation),
		indexes:   make(map[string]map[string]*HashIndex),
	}
}

// Define registers an empty relation with the given schema and returns it.
// It returns an error if the name is already taken.
func (c *Catalog) Define(name string, schema relation.Schema) (*relation.Relation, error) {
	if _, ok := c.relations[name]; ok {
		return nil, fmt.Errorf("storage: relation %q already defined", name)
	}
	r := relation.New(name, schema)
	c.relations[name] = r
	c.structural++
	return r, nil
}

// MustDefine is Define for static setup code; it panics on duplicate names.
func (c *Catalog) MustDefine(name string, schema relation.Schema) *relation.Relation {
	r, err := c.Define(name, schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Add registers an already-built relation under its own name, replacing any
// previous definition and dropping its indexes.
func (c *Catalog) Add(r *relation.Relation) {
	// Replacing relation v_old with a fresh relation (version 0) would let
	// Generation move backwards; fold the displaced version (plus one for
	// the replacement itself) into the structural counter to keep it
	// monotonic.
	if old, ok := c.relations[r.Name]; ok {
		c.structural += old.Version()
	}
	c.structural++
	c.relations[r.Name] = r
	delete(c.indexes, r.Name)
}

// Generation returns a counter that strictly increases with every catalog
// mutation: definitions and replacements bump the structural part, and every
// Insert/Delete on a base relation bumps that relation's version. The
// executor memo compares generations to detect staleness, so monotonicity —
// not density — is the contract.
func (c *Catalog) Generation() int64 {
	g := c.structural
	for _, r := range c.relations {
		g += r.Version()
	}
	return g
}

// UnknownRelationError reports a lookup of a relation the catalog does not
// define; callers can detect it with errors.As to distinguish a user typo
// from an internal planning failure.
type UnknownRelationError struct {
	Name string
}

func (e *UnknownRelationError) Error() string {
	return fmt.Sprintf("storage: unknown relation %q", e.Name)
}

// Relation looks up a base relation by name.
func (c *Catalog) Relation(name string) (*relation.Relation, error) {
	if c.faultHook != nil {
		if err := c.faultHook("relation", name); err != nil {
			return nil, err
		}
	}
	r, ok := c.relations[name]
	if !ok {
		return nil, &UnknownRelationError{Name: name}
	}
	return r, nil
}

// Has reports whether the catalog defines the named relation.
func (c *Catalog) Has(name string) bool {
	_, ok := c.relations[name]
	return ok
}

// Names returns the sorted names of all base relations.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.relations))
	for n := range c.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnsureIndex builds (or returns a cached) hash index on the given 0-based
// columns of the named relation. Indexes are rebuilt lazily: the caller is
// expected to load data first, then query. Index state is invalidated when
// the relation grows; Lookup revalidates cheaply by length.
func (c *Catalog) EnsureIndex(name string, cols []int) (*HashIndex, error) {
	r, err := c.Relation(name)
	if err != nil {
		return nil, err
	}
	key := indexKey(cols)
	byKey := c.indexes[name]
	if byKey == nil {
		byKey = make(map[string]*HashIndex)
		c.indexes[name] = byKey
	}
	if idx, ok := byKey[key]; ok && idx.fresh() {
		return idx, nil
	}
	idx := BuildHashIndex(r, cols)
	byKey[key] = idx
	return idx, nil
}

// Domain computes the database domain: the set of all values appearing
// anywhere in the catalog (the Domain Closure Assumption of §2.1). The
// result is a fresh unary relation named "dom".
func (c *Catalog) Domain() *relation.Relation {
	dom := relation.New("dom", relation.NewSchema("v"))
	for _, name := range c.Names() {
		r := c.relations[name]
		for _, t := range r.Tuples() {
			for _, v := range t {
				dom.Insert(relation.NewTuple(v))
			}
		}
	}
	return dom
}

func indexKey(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = append(b, byte('0'+c%10), byte('0'+(c/10)%10))
	}
	return string(b)
}
