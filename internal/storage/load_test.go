package storage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestReadRelationBasic(t *testing.T) {
	rel := relation.New("r", relation.NewSchema("a", "b"))
	input := "ann\t42\n# a comment\n\nbob\t-7\n\"7\"\tx\n"
	n, err := ReadRelation(strings.NewReader(input), rel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || rel.Len() != 3 {
		t.Fatalf("inserted %d, len %d", n, rel.Len())
	}
	if !rel.Contains(relation.NewTuple(relation.Str("ann"), relation.Int(42))) {
		t.Fatal("integer field not parsed")
	}
	if !rel.Contains(relation.NewTuple(relation.Str("7"), relation.Str("x"))) {
		t.Fatal("quoted numeric string not preserved")
	}
}

func TestReadRelationArityError(t *testing.T) {
	rel := relation.New("r", relation.NewSchema("a"))
	if _, err := ReadRelation(strings.NewReader("x\ty\n"), rel); err == nil {
		t.Fatal("want arity error")
	}
}

func TestReadRelationDeduplicates(t *testing.T) {
	rel := relation.New("r", relation.NewSchema("a"))
	n, err := ReadRelation(strings.NewReader("x\nx\ny\n"), rel)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRoundTripRelation(t *testing.T) {
	rel := relation.New("r", relation.NewSchema("a", "b"))
	rel.InsertValues(relation.Str("plain"), relation.Int(1))
	rel.InsertValues(relation.Str("42"), relation.Str(`"quoted"`))
	rel.InsertValues(relation.Str("# hashy"), relation.Str(""))

	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back := relation.New("r", relation.NewSchema("a", "b"))
	if _, err := ReadRelation(&buf, back); err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(back) {
		t.Fatalf("round trip changed the relation:\n%s\nvs\n%s", rel, back)
	}
}

// TestQuickRoundTrip: arbitrary printable strings and integers survive.
func TestQuickRoundTrip(t *testing.T) {
	f := func(s string, n int64) bool {
		if strings.ContainsAny(s, "\t\n\r\"") {
			return true // the format does not escape internal quotes/tabs
		}
		rel := relation.New("r", relation.NewSchema("a", "b"))
		rel.InsertValues(relation.Str(s), relation.Int(n))
		var buf bytes.Buffer
		if err := WriteRelation(&buf, rel); err != nil {
			return false
		}
		back := relation.New("r", relation.NewSchema("a", "b"))
		if _, err := ReadRelation(&buf, back); err != nil {
			return false
		}
		return rel.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.tsv")

	cat := NewCatalog()
	r := cat.MustDefine("r", relation.NewSchema("a"))
	r.InsertValues(relation.Int(1))
	r.InsertValues(relation.Str("two"))
	if err := cat.SaveFile("r", path); err != nil {
		t.Fatal(err)
	}

	cat2 := NewCatalog()
	cat2.MustDefine("r", relation.NewSchema("a"))
	n, err := cat2.LoadFile("r", path)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	r2, _ := cat2.Relation("r")
	if !r.Equal(r2) {
		t.Fatal("file round trip broken")
	}

	if _, err := cat2.LoadFile("missing", path); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, err := cat2.LoadFile("r", filepath.Join(dir, "nope.tsv")); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := cat2.SaveFile("missing", path); err == nil {
		t.Fatal("unknown relation must fail on save")
	}
}
