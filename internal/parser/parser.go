package parser

import (
	"fmt"
	"strconv"

	"repro/internal/calculus"
	"repro/internal/relation"
)

// Query is the result of parsing: a closed (yes/no) formula when OpenVars
// is nil, or an open query { OpenVars | Body } otherwise.
type Query struct {
	OpenVars []string
	Body     calculus.Formula
}

// IsOpen reports whether the query returns tuples rather than a truth value.
func (q Query) IsOpen() bool { return q.OpenVars != nil }

// String renders the query back in surface syntax.
func (q Query) String() string {
	if !q.IsOpen() {
		return q.Body.String()
	}
	vars := ""
	for i, v := range q.OpenVars {
		if i > 0 {
			vars += ","
		}
		vars += v
	}
	return "{" + vars + " | " + q.Body.String() + "}"
}

// Parse parses a query in the surface language.
func Parse(input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, err
	}
	if p.peek().kind != tokEOF {
		return Query{}, p.errf("trailing input starting with %s", p.peek().kind)
	}
	q.Body = desugar(q.Body, false)
	return q, nil
}

// ParseFormula parses a bare formula (closed or with free variables); it is
// the form used by tests and by integrity-constraint checking.
func ParseFormula(input string) (calculus.Formula, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if q.IsOpen() {
		return nil, fmt.Errorf("parser: expected a formula, got an open query")
	}
	return q.Body, nil
}

// MustParse is Parse for static test/example inputs; it panics on error.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf("expected %s, found %s", k, t.kind)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (Query, error) {
	if p.at(tokLBrace) {
		p.next()
		vars, err := p.parseVarList()
		if err != nil {
			return Query{}, err
		}
		if _, err := p.expect(tokPipe); err != nil {
			return Query{}, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return Query{}, err
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return Query{}, err
		}
		return Query{OpenVars: vars, Body: body}, nil
	}
	body, err := p.parseFormula()
	if err != nil {
		return Query{}, err
	}
	return Query{Body: body}, nil
}

func (p *parser) parseVarList() ([]string, error) {
	var vars []string
	seen := make(map[string]bool)
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if seen[t.text] {
			return nil, fmt.Errorf("parser: duplicate variable %q in list", t.text)
		}
		seen[t.text] = true
		vars = append(vars, t.text)
		if !p.at(tokComma) {
			return vars, nil
		}
		p.next()
	}
}

func (p *parser) parseFormula() (calculus.Formula, error) { return p.parseIff() }

func (p *parser) parseIff() (calculus.Formula, error) {
	l, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.at(tokIff) {
		p.next()
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		// F₁ <=> F₂ expands per the paper: (¬F₁ ∨ F₂) ∧ (¬F₂ ∨ F₁).
		l = calculus.And{
			L: calculus.Or{L: calculus.Not{F: l}, R: r},
			R: calculus.Or{L: calculus.Not{F: r}, R: l},
		}
	}
	return l, nil
}

func (p *parser) parseImplies() (calculus.Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokImplies) {
		return l, nil
	}
	p.next()
	r, err := p.parseImplies() // right associative
	if err != nil {
		return nil, err
	}
	return calculus.Implies{L: l, R: r}, nil
}

func (p *parser) parseOr() (calculus.Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokOr) {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = calculus.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (calculus.Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokAnd) {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = calculus.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (calculus.Formula, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return calculus.Not{F: f}, nil
	case tokExists, tokForall:
		isExists := p.next().kind == tokExists
		vars, err := p.parseVarList()
		if err != nil {
			return nil, err
		}
		// A ':' separates variables from the body; it may be omitted when
		// the body is parenthesized, so printed formulas (∃x (…)) re-parse.
		if p.at(tokColon) {
			p.next()
		} else if !p.at(tokLParen) {
			return nil, p.errf("expected ':' or a parenthesized body after quantified variables")
		}
		// The quantifier body extends as far right as possible.
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if isExists {
			return calculus.Exists{Vars: vars, Body: body}, nil
		}
		return calculus.Forall{Vars: vars, Body: body}, nil
	default:
		return p.parsePrimary()
	}
}

func (p *parser) parsePrimary() (calculus.Formula, error) {
	switch p.peek().kind {
	case tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		// Atom R(…) or a comparison starting with a variable.
		if p.toks[p.pos+1].kind == tokLParen {
			return p.parseAtom()
		}
		return p.parseComparison()
	case tokInt, tokString:
		return p.parseComparison()
	default:
		return nil, p.errf("expected a formula, found %s", p.peek().kind)
	}
}

func (p *parser) parseAtom() (calculus.Formula, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []calculus.Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return calculus.Atom{Pred: name.text, Args: args}, nil
}

func (p *parser) parseComparison() (calculus.Formula, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var op relation.CmpOp
	switch p.peek().kind {
	case tokEq:
		op = relation.OpEq
	case tokNe:
		op = relation.OpNe
	case tokLt:
		op = relation.OpLt
	case tokLe:
		op = relation.OpLe
	case tokGt:
		op = relation.OpGt
	case tokGe:
		op = relation.OpGe
	default:
		return nil, p.errf("expected a comparison operator, found %s", p.peek().kind)
	}
	p.next()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return calculus.Cmp{Left: l, Op: op, Right: r}, nil
}

func (p *parser) parseTerm() (calculus.Term, error) {
	switch t := p.peek(); t.kind {
	case tokIdent:
		p.next()
		return calculus.V(t.text), nil
	case tokString:
		p.next()
		return calculus.CStr(t.text), nil
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return calculus.Term{}, fmt.Errorf("parser: bad integer %q: %w", t.text, err)
		}
		return calculus.CInt(n), nil
	default:
		return calculus.Term{}, p.errf("expected a term, found %s", t.kind)
	}
}

// desugar expands implications to ¬F₁ ∨ F₂ everywhere except directly under
// a universal quantifier, where the paper keeps the range form ∀x̄ R ⇒ F.
func desugar(f calculus.Formula, underForall bool) calculus.Formula {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return f
	case calculus.Not:
		return calculus.Not{F: desugar(n.F, false)}
	case calculus.And:
		return calculus.And{L: desugar(n.L, false), R: desugar(n.R, false)}
	case calculus.Or:
		return calculus.Or{L: desugar(n.L, false), R: desugar(n.R, false)}
	case calculus.Implies:
		l := desugar(n.L, false)
		r := desugar(n.R, false)
		if underForall {
			return calculus.Implies{L: l, R: r}
		}
		return calculus.Or{L: calculus.Not{F: l}, R: r}
	case calculus.Exists:
		return calculus.Exists{Vars: n.Vars, Body: desugar(n.Body, false)}
	case calculus.Forall:
		return calculus.Forall{Vars: n.Vars, Body: desugar(n.Body, true)}
	default:
		panic(fmt.Sprintf("parser: unknown formula %T", f))
	}
}
