package parser

import (
	"testing"

	"repro/internal/calculus"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// every successfully parsed query survives a print/parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`exists x: p(x)`,
		`{ x, y | r(x, y) and not s(y, x) }`,
		`forall y: lecture(y, "db") => attends(x, y)`,
		`p(x) and (q(x) or not r(x, 42)) and x != "a"`,
		`∃x (p(x) ∧ ¬q(x))`,
		`a <= b and b >= c and a <=> d`,
		`not not not p("quoted string", -17)`,
		`{x|p(x)}`,
		`exists x_1, y2: r(x_1, y2)`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", rendered, input, err)
		}
		if !calculus.Equal(q.Body, q2.Body) {
			t.Fatalf("round trip changed %q: %s vs %s", input, q.Body, q2.Body)
		}
	})
}
