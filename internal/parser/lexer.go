// Package parser implements a small textual surface language for the
// domain relational calculus of the paper. Two query forms are accepted:
//
//	closed (yes/no) queries:  exists x: student(x) and not enrolled(x, "cs")
//	open queries:             { x | student(x) and makes(x, "PhD") }
//
// Grammar (ASCII keywords; Unicode connectives also accepted):
//
//	query    := '{' vars '|' formula '}' | formula
//	formula  := iff
//	iff      := implies ( '<=>' implies )*
//	implies  := or ( '=>' or )*            (right associative)
//	or       := and ( 'or' and )*
//	and      := unary ( 'and' unary )*
//	unary    := 'not' unary | 'exists' vars ':' unary | 'forall' vars ':' unary | primary
//	primary  := '(' formula ')' | atom | comparison
//	atom     := ident '(' term ( ',' term )* ')'
//	comp     := term op term,  op ∈ { '=', '!=', '<', '<=', '>', '>=' }
//	term     := ident | integer | string
//
// Following the paper, an implication directly under a universal quantifier
// is kept as the range form ∀x̄ R ⇒ F; anywhere else F₁ => F₂ is expanded
// to ¬F₁ ∨ F₂ and F₁ <=> F₂ to (¬F₁ ∨ F₂) ∧ (¬F₂ ∨ F₁).
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokPipe
	tokAnd
	tokOr
	tokNot
	tokExists
	tokForall
	tokImplies
	tokIff
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokPipe:
		return "'|'"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokNot:
		return "'not'"
	case tokExists:
		return "'exists'"
	case tokForall:
		return "'forall'"
	case tokImplies:
		return "'=>'"
	case tokIff:
		return "'<=>'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]tokenKind{
	"and":    tokAnd,
	"or":     tokOr,
	"not":    tokNot,
	"exists": tokExists,
	"forall": tokForall,
}

// lex tokenizes the input; it returns an error with a byte offset on any
// unrecognized rune or unterminated string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(kind tokenKind, text string, pos int) {
		toks = append(toks, token{kind: kind, text: text, pos: pos})
	}
	for i < len(input) {
		r, sz := utf8.DecodeRuneInString(input[i:])
		switch {
		case unicode.IsSpace(r):
			i += sz
		case r == '(':
			emit(tokLParen, "(", i)
			i++
		case r == ')':
			emit(tokRParen, ")", i)
			i++
		case r == '{':
			emit(tokLBrace, "{", i)
			i++
		case r == '}':
			emit(tokRBrace, "}", i)
			i++
		case r == ',':
			emit(tokComma, ",", i)
			i++
		case r == ':':
			emit(tokColon, ":", i)
			i++
		case r == '|':
			emit(tokPipe, "|", i)
			i++
		case r == '∧':
			emit(tokAnd, "∧", i)
			i += sz
		case r == '∨':
			emit(tokOr, "∨", i)
			i += sz
		case r == '¬':
			emit(tokNot, "¬", i)
			i += sz
		case r == '∃':
			emit(tokExists, "∃", i)
			i += sz
		case r == '∀':
			emit(tokForall, "∀", i)
			i += sz
		case r == '≠':
			emit(tokNe, "≠", i)
			i += sz
		case r == '≤':
			emit(tokLe, "≤", i)
			i += sz
		case r == '≥':
			emit(tokGe, "≥", i)
			i += sz
		case r == '⇒':
			emit(tokImplies, "⇒", i)
			i += sz
		case r == '=':
			if strings.HasPrefix(input[i:], "=>") {
				emit(tokImplies, "=>", i)
				i += 2
			} else {
				emit(tokEq, "=", i)
				i++
			}
		case r == '!':
			if strings.HasPrefix(input[i:], "!=") {
				emit(tokNe, "!=", i)
				i += 2
			} else {
				return nil, fmt.Errorf("parser: unexpected '!' at offset %d (did you mean '!=')", i)
			}
		case r == '<':
			switch {
			case strings.HasPrefix(input[i:], "<=>"):
				emit(tokIff, "<=>", i)
				i += 3
			case strings.HasPrefix(input[i:], "<="):
				emit(tokLe, "<=", i)
				i += 2
			default:
				emit(tokLt, "<", i)
				i++
			}
		case r == '>':
			if strings.HasPrefix(input[i:], ">=") {
				emit(tokGe, ">=", i)
				i += 2
			} else {
				emit(tokGt, ">", i)
				i++
			}
		case r == '"':
			// Scan to the closing quote, honoring Go-style escapes, then
			// decode with strconv.Unquote so rendered constants (which use
			// %q) round-trip for arbitrary string contents.
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' && j+1 < len(input) {
					j++
				}
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("parser: unterminated string at offset %d", i)
			}
			text, err := strconv.Unquote(input[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("parser: bad string literal at offset %d: %w", i, err)
			}
			emit(tokString, text, i)
			i = j + 1
		case r == '-' || unicode.IsDigit(r):
			j := i
			if r == '-' {
				j++
			}
			start := j
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			if j == start {
				return nil, fmt.Errorf("parser: lone '-' at offset %d", i)
			}
			emit(tokInt, input[i:j], i)
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(input) {
				r2, sz2 := utf8.DecodeRuneInString(input[j:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' && r2 != '-' {
					break
				}
				j += sz2
			}
			word := input[i:j]
			if kw, ok := keywords[strings.ToLower(word)]; ok {
				emit(kw, word, i)
			} else {
				emit(tokIdent, word, i)
			}
			i = j
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", r, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
