package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/calculus"
	"repro/internal/relation"
)

// randomFormula builds an arbitrary well-formed formula for round-trip
// testing (not necessarily safe — the parser and printer don't care).
func randomFormula(rng *rand.Rand, depth int, scope []string) calculus.Formula {
	atom := func() calculus.Formula {
		preds := []struct {
			name  string
			arity int
		}{{"p", 1}, {"q", 1}, {"r", 2}, {"s", 3}}
		p := preds[rng.Intn(len(preds))]
		args := make([]calculus.Term, p.arity)
		for i := range args {
			switch {
			case len(scope) > 0 && rng.Intn(3) != 0:
				args[i] = calculus.V(scope[rng.Intn(len(scope))])
			case rng.Intn(2) == 0:
				args[i] = calculus.CInt(int64(rng.Intn(100) - 50))
			default:
				args[i] = calculus.CStr(string(rune('a' + rng.Intn(4))))
			}
		}
		return calculus.Atom{Pred: p.name, Args: args}
	}
	if depth <= 0 {
		if len(scope) > 0 && rng.Intn(4) == 0 {
			ops := []relation.CmpOp{relation.OpEq, relation.OpNe, relation.OpLt, relation.OpLe, relation.OpGt, relation.OpGe}
			return calculus.Cmp{
				Left:  calculus.V(scope[rng.Intn(len(scope))]),
				Op:    ops[rng.Intn(len(ops))],
				Right: calculus.CInt(int64(rng.Intn(10))),
			}
		}
		return atom()
	}
	switch rng.Intn(6) {
	case 0:
		return calculus.And{L: randomFormula(rng, depth-1, scope), R: randomFormula(rng, depth-1, scope)}
	case 1:
		return calculus.Or{L: randomFormula(rng, depth-1, scope), R: randomFormula(rng, depth-1, scope)}
	case 2:
		return calculus.Not{F: randomFormula(rng, depth-1, scope)}
	case 3:
		v := string(rune('u'+len(scope))) + "v"
		return calculus.Exists{Vars: []string{v}, Body: randomFormula(rng, depth-1, append(append([]string{}, scope...), v))}
	case 4:
		v := string(rune('u'+len(scope))) + "w"
		inner := append(append([]string{}, scope...), v)
		// Forall bodies print/parse through the range-implication form.
		return calculus.Forall{Vars: []string{v}, Body: calculus.Implies{
			L: calculus.Atom{Pred: "p", Args: []calculus.Term{calculus.V(v)}},
			R: randomFormula(rng, depth-1, inner),
		}}
	default:
		return atom()
	}
}

// TestQuickPrintParseRoundTrip: for arbitrary formulas, parsing the
// rendering yields the identical AST.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed ^ rng.Int63()))
		formula := randomFormula(local, 4, nil)
		parsed, err := ParseFormula(formula.String())
		if err != nil {
			t.Logf("render %q failed to parse: %v", formula.String(), err)
			return false
		}
		if !calculus.Equal(parsed, formula) {
			t.Logf("round trip changed %s into %s", formula, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOpenQueryRoundTrip: open queries survive String → Parse.
func TestQuickOpenQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		scope := []string{"x"}
		body := calculus.And{
			L: calculus.Atom{Pred: "p", Args: []calculus.Term{calculus.V("x")}},
			R: randomFormula(rng, 3, scope),
		}
		q := Query{OpenVars: []string{"x"}, Body: body}
		parsed, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if !parsed.IsOpen() || parsed.OpenVars[0] != "x" {
			t.Fatalf("open vars lost in %q", q.String())
		}
		if !calculus.Equal(parsed.Body, q.Body) {
			t.Fatalf("round trip changed %s into %s", q.Body, parsed.Body)
		}
	}
}
