package parser

import (
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/relation"
)

func parseOK(t *testing.T, input string) Query {
	t.Helper()
	q, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return q
}

func TestParseAtom(t *testing.T) {
	q := parseOK(t, `student(x)`)
	want := calculus.NewAtom("student", calculus.V("x"))
	if !calculus.Equal(q.Body, want) {
		t.Fatalf("got %s, want %s", q.Body, want)
	}
	if q.IsOpen() {
		t.Fatal("bare formula must not be an open query")
	}
}

func TestParseConstants(t *testing.T) {
	q := parseOK(t, `enrolled(x, "cs") and age(x, 42)`)
	and, ok := q.Body.(calculus.And)
	if !ok {
		t.Fatalf("got %T, want And", q.Body)
	}
	l := and.L.(calculus.Atom)
	if l.Args[1].Const.AsString() != "cs" {
		t.Errorf("string constant lost: %s", l)
	}
	r := and.R.(calculus.Atom)
	if r.Args[1].Const.AsInt() != 42 {
		t.Errorf("integer constant lost: %s", r)
	}
}

func TestParsePrecedence(t *testing.T) {
	// not binds tighter than and, and tighter than or.
	q := parseOK(t, `not p(x) and q(x) or r(x)`)
	or, ok := q.Body.(calculus.Or)
	if !ok {
		t.Fatalf("top must be Or, got %T", q.Body)
	}
	and, ok := or.L.(calculus.And)
	if !ok {
		t.Fatalf("left of or must be And, got %T", or.L)
	}
	if _, ok := and.L.(calculus.Not); !ok {
		t.Fatalf("left of and must be Not, got %T", and.L)
	}
}

func TestParseQuantifierBodyExtends(t *testing.T) {
	// The quantifier body extends maximally: ∃x (p(x) ∧ q(x)).
	q := parseOK(t, `exists x: p(x) and q(x)`)
	ex, ok := q.Body.(calculus.Exists)
	if !ok {
		t.Fatalf("got %T, want Exists", q.Body)
	}
	if _, ok := ex.Body.(calculus.And); !ok {
		t.Fatalf("body must be And, got %T", ex.Body)
	}
}

func TestParseMultiVarQuantifier(t *testing.T) {
	q := parseOK(t, `exists x, y, z: p(x, y, z)`)
	ex := q.Body.(calculus.Exists)
	if len(ex.Vars) != 3 {
		t.Fatalf("vars = %v", ex.Vars)
	}
}

func TestParseForallKeepsRangeImplication(t *testing.T) {
	q := parseOK(t, `forall y: lecture(y, "cs") => attends(x, y)`)
	fa, ok := q.Body.(calculus.Forall)
	if !ok {
		t.Fatalf("got %T, want Forall", q.Body)
	}
	if _, ok := fa.Body.(calculus.Implies); !ok {
		t.Fatalf("the range implication under forall must be preserved, got %T", fa.Body)
	}
}

func TestParseImpliesDesugarsElsewhere(t *testing.T) {
	q := parseOK(t, `p(x) => q(x)`)
	or, ok := q.Body.(calculus.Or)
	if !ok {
		t.Fatalf("implication outside forall must desugar to Or, got %T", q.Body)
	}
	if _, ok := or.L.(calculus.Not); !ok {
		t.Fatalf("left disjunct must be negated, got %T", or.L)
	}
}

func TestParseIffDesugars(t *testing.T) {
	q := parseOK(t, `p(x) <=> q(x)`)
	and, ok := q.Body.(calculus.And)
	if !ok {
		t.Fatalf("iff must desugar to conjunction, got %T", q.Body)
	}
	if _, ok := and.L.(calculus.Or); !ok {
		t.Fatalf("each side must be a disjunction, got %T", and.L)
	}
}

func TestParseOpenQuery(t *testing.T) {
	q := parseOK(t, `{ x, z | member(x, z) and not skill(x, "db") }`)
	if !q.IsOpen() {
		t.Fatal("must be an open query")
	}
	if len(q.OpenVars) != 2 || q.OpenVars[0] != "x" || q.OpenVars[1] != "z" {
		t.Fatalf("open vars = %v", q.OpenVars)
	}
	if _, ok := q.Body.(calculus.And); !ok {
		t.Fatalf("body = %T", q.Body)
	}
}

func TestParseComparisons(t *testing.T) {
	cases := map[string]relation.CmpOp{
		`x = y`:  relation.OpEq,
		`x != y`: relation.OpNe,
		`x < y`:  relation.OpLt,
		`x <= y`: relation.OpLe,
		`x > y`:  relation.OpGt,
		`x >= y`: relation.OpGe,
	}
	for input, op := range cases {
		q := parseOK(t, input)
		c, ok := q.Body.(calculus.Cmp)
		if !ok {
			t.Fatalf("%q: got %T", input, q.Body)
		}
		if c.Op != op {
			t.Errorf("%q: op = %s, want %s", input, c.Op, op)
		}
	}
}

func TestParseUnicodeConnectives(t *testing.T) {
	a := parseOK(t, `∃x: p(x) ∧ ¬q(x) ∨ r(x)`)
	b := parseOK(t, `exists x: p(x) and not q(x) or r(x)`)
	if !calculus.Equal(a.Body, b.Body) {
		t.Fatalf("unicode parse %s != ascii parse %s", a.Body, b.Body)
	}
}

func TestParsePaperQueryQ(t *testing.T) {
	// §3.2: ∃xy [enrolled(x,y) ∧ y≠cs ∧ makes(x,PhD) ∧ ∃z (lecture(z,cs) ∧ attends(x,z))]
	q := parseOK(t, `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: lecture(z, "cs") and attends(x, z)`)
	ex, ok := q.Body.(calculus.Exists)
	if !ok || len(ex.Vars) != 2 {
		t.Fatalf("got %s", q.Body)
	}
	fv := calculus.FreeVars(q.Body)
	if len(fv) != 0 {
		t.Fatalf("closed query has free vars %v", fv.Sorted())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`p(`,
		`p(x`,
		`{ x | p(x)`,
		`{ x, x | p(x) }`,
		`exists : p(x)`,
		`exists x p(x)`,
		`p(x) and`,
		`p(x) !`,
		`"unclosed`,
		`p(x)) `,
		`x ==`,
		`p(x) extra(y)`,
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", input)
		}
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse(`p(x) and !`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should mention offset, got %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	inputs := []string{
		`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y)`,
		`{ x | professor(x) and (member(x, "cs") or skill(x, "math")) }`,
		`forall x: not p(x)`,
		`exists x, y: r(x, y) and x != y`,
	}
	for _, input := range inputs {
		q := parseOK(t, input)
		// Rendering re-parses to the same AST.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", input, q.String(), err)
		}
		if !calculus.Equal(q.Body, q2.Body) {
			t.Errorf("round trip changed %q: %s vs %s", input, q.Body, q2.Body)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse(`p(`)
}
