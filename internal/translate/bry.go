package translate

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/parser"
	"repro/internal/ranges"
	"repro/internal/storage"
)

// DisjFilterStrategy selects how disjunctive filters are compiled; the
// strategies exist so the benchmarks can measure §3.3's comparison.
type DisjFilterStrategy int

const (
	// StrategyConstrainedOuterJoin is the paper's: a chain of constrained
	// outer-joins (Definition 7, Proposition 5). Tuples satisfying an
	// earlier branch are not probed against later ones.
	StrategyConstrainedOuterJoin DisjFilterStrategy = iota
	// StrategyOuterJoin is the intermediate form of §3.3: plain
	// unidirectional outer-joins without constraints — later relations are
	// searched even for tuples already matched.
	StrategyOuterJoin
	// StrategyUnion is the conventional translation: one subplan per
	// branch over a fresh copy of the producer, results unioned. The
	// producer is searched once per branch and the union is materialized.
	StrategyUnion
)

// UniversalStrategy selects how universal-quantification filters of the
// Prop. 4 case-5 shape — ¬∃z̄ (T[z̄] ∧ ¬G), with the range T uncorrelated
// with the outer variables — are compiled.
type UniversalStrategy int

const (
	// UniversalDivision is the paper's case 5: G ÷ T, plus a correction
	// term for the empty-range (vacuously true) case the literal formula
	// misses. Used when the pattern applies; other shapes fall back to
	// the complement-join.
	UniversalDivision UniversalStrategy = iota
	// UniversalComplementJoin always uses the "division rewritten in
	// terms of complement-join" form: the outer parameters seed a
	// candidate space params × T that is complement-joined against G.
	// Exact for every shape, but the candidate space costs |params|·|T|.
	UniversalComplementJoin
)

// Options configures the Bry translator.
type Options struct {
	DisjunctiveFilters DisjFilterStrategy
	Universal          UniversalStrategy
}

// Bry is the paper's improved translator. It expects canonical-form input
// (rewrite.Normalize): no universal quantifiers, no implications, negations
// on atoms and existential subformulas only, miniscope form.
type Bry struct {
	cat *storage.Catalog
	opt Options
	// origins remembers, for every variable bound by a producer, the frame
	// that produced it; nested subqueries whose parameters are bound in an
	// outer scope seed their translation from these (the paper's case 2b:
	// the outer range R participates in the inner expression).
	origins map[string]frame
}

// NewBry builds a translator over the catalog with default options.
func NewBry(cat *storage.Catalog) *Bry { return NewBryWithOptions(cat, Options{}) }

// NewBryWithOptions builds a translator with explicit options.
func NewBryWithOptions(cat *storage.Catalog, opt Options) *Bry {
	return &Bry{cat: cat, opt: opt, origins: make(map[string]frame)}
}

// TranslateOpen compiles an open canonical query into a relational plan
// whose columns are the open variables, in declared order.
func (b *Bry) TranslateOpen(q parser.Query) (algebra.Plan, error) {
	if !q.IsOpen() {
		return nil, fmt.Errorf("translate: TranslateOpen needs an open query")
	}
	fr, err := b.formula(q.Body)
	if err != nil {
		return nil, err
	}
	return fr.project(q.OpenVars, false).plan, nil
}

// TranslateClosed compiles a closed canonical query into a boolean plan of
// emptiness tests (§3.2).
func (b *Bry) TranslateClosed(f calculus.Formula) (algebra.BoolPlan, error) {
	switch n := f.(type) {
	case calculus.And:
		var parts []algebra.BoolPlan
		for _, c := range calculus.Conjuncts(n) {
			p, err := b.TranslateClosed(c)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return &algebra.BoolAnd{Inputs: parts}, nil
	case calculus.Or:
		var parts []algebra.BoolPlan
		for _, c := range calculus.Disjuncts(n) {
			p, err := b.TranslateClosed(c)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return &algebra.BoolOr{Inputs: parts}, nil
	case calculus.Not:
		// ¬∃ translates directly to an emptiness test; other negations
		// wrap in boolean NOT.
		if ex, ok := n.F.(calculus.Exists); ok {
			fr, err := b.formula(ex.Body)
			if err != nil {
				return nil, err
			}
			return &algebra.IsEmpty{Input: fr.plan}, nil
		}
		inner, err := b.TranslateClosed(n.F)
		if err != nil {
			return nil, err
		}
		return &algebra.BoolNot{Input: inner}, nil
	case calculus.Exists:
		fr, err := b.formula(n.Body)
		if err != nil {
			return nil, err
		}
		return &algebra.NotEmpty{Input: fr.plan}, nil
	case calculus.Atom:
		if len(calculus.FreeVars(n)) != 0 {
			return nil, fmt.Errorf("translate: closed translation reached open atom %s", n)
		}
		fr, err := atomFrame(b.cat, n)
		if err != nil {
			return nil, err
		}
		return &algebra.NotEmpty{Input: fr.plan}, nil
	case calculus.Cmp:
		p, err := cmpPred(frame{}, n)
		if err == errGroundFalse {
			return &algebra.BoolConst{Value: false}, nil
		}
		if err != nil {
			return nil, err
		}
		if _, ok := p.(algebra.True); ok {
			return &algebra.BoolConst{Value: true}, nil
		}
		return nil, fmt.Errorf("translate: non-ground comparison %s in closed query", n)
	default:
		return nil, fmt.Errorf("translate: cannot translate %T as closed query", f)
	}
}

// Translate compiles either query form; closed queries become a boolean
// plan, open ones a relational plan.
func (b *Bry) Translate(q parser.Query) (algebra.Plan, algebra.BoolPlan, error) {
	if q.IsOpen() {
		p, err := b.TranslateOpen(q)
		return p, nil, err
	}
	bp, err := b.TranslateClosed(q.Body)
	return nil, bp, err
}

// formula translates a formula into a frame covering all its free
// variables. Variables the formula cannot produce itself (parameters bound
// by an enclosing scope) are seeded from their origin producers.
func (b *Bry) formula(f calculus.Formula) (frame, error) {
	switch n := f.(type) {
	case calculus.Atom:
		fr, err := atomFrame(b.cat, n)
		if err != nil {
			return frame{}, err
		}
		b.rememberOrigins(fr)
		return fr, nil
	case calculus.Or:
		// Each disjunct covers the same variables (Definition 3 case 2);
		// align and union.
		vars := calculus.FreeVars(n).Sorted()
		disjuncts := calculus.Disjuncts(n)
		var out frame
		for i, d := range disjuncts {
			fr, err := b.formula(d)
			if err != nil {
				return frame{}, err
			}
			fr = fr.project(vars, false)
			if i == 0 {
				out = fr
			} else {
				out = frame{plan: &algebra.Union{Left: out.plan, Right: fr.plan}, cols: out.cols}
			}
		}
		return out, nil
	case calculus.And:
		return b.conjunction(calculus.Conjuncts(n), calculus.FreeVars(n).Sorted())
	case calculus.Exists:
		inner, err := b.formula(n.Body)
		if err != nil {
			return frame{}, err
		}
		outer := calculus.FreeVars(f).Sorted()
		return inner.project(outer, false), nil
	default:
		return frame{}, fmt.Errorf("translate: %s cannot act as a producer (is the query canonical?)", f)
	}
}

// conjunction translates a flattened conjunction: producers chain-join,
// filters apply in order. Unproduced variables are seeded from origins.
func (b *Bry) conjunction(conjs []calculus.Formula, want []string) (frame, error) {
	producers, filters, err := ranges.SplitProducerFilter(conjs, want)
	var seed *frame
	if err != nil {
		// Some wanted variables are parameters bound in an enclosing
		// scope: seed them from their origin producers, then split over
		// the rest.
		produced := ranges.ProducesIn(calculus.AndAll(conjs...), calculus.NewVarSet(want...))
		var missing []string
		for _, v := range want {
			if !produced.Has(v) {
				missing = append(missing, v)
			}
		}
		s, serr := b.contextSeed(missing)
		if serr != nil {
			return frame{}, fmt.Errorf("translate: %w; additionally %w", err, serr)
		}
		seed = &s
		producers, filters, err = ranges.SplitProducerFilter(conjs, produced.Sorted())
		if err != nil {
			return frame{}, err
		}
	}

	var cur frame
	have := false
	if seed != nil {
		cur, have = *seed, true
	}
	for _, p := range producers {
		fr, err := b.formula(p)
		if err != nil {
			return frame{}, err
		}
		if !have {
			cur, have = fr, true
		} else {
			cur = join(cur, fr)
		}
	}
	if !have {
		return frame{}, fmt.Errorf("translate: conjunction %v has no producer", conjs)
	}
	b.rememberOrigins(cur)
	for _, flt := range filters {
		cur, err = b.applyFilter(cur, flt)
		if err != nil {
			return frame{}, err
		}
	}
	return cur, nil
}

// rememberOrigins registers the frame as the origin of its variables.
func (b *Bry) rememberOrigins(fr frame) {
	for v := range fr.cols {
		if _, ok := b.origins[v]; !ok {
			b.origins[v] = fr
		}
	}
}

// contextSeed builds a frame producing the given parameter variables from
// their origin producers (deduplicated projections, joined together).
func (b *Bry) contextSeed(params []string) (frame, error) {
	sort.Strings(params)
	done := make(map[string]bool)
	var cur frame
	have := false
	for _, v := range params {
		if done[v] {
			continue
		}
		origin, ok := b.origins[v]
		if !ok {
			return frame{}, fmt.Errorf("translate: parameter %q has no origin producer", v)
		}
		// Project the origin to every parameter it can cover at once.
		var cover []string
		for _, w := range params {
			if !done[w] {
				if _, has := origin.cols[w]; has {
					cover = append(cover, w)
					done[w] = true
				}
			}
		}
		fr := origin.project(cover, false)
		if !have {
			cur, have = fr, true
		} else {
			cur = join(cur, fr)
		}
	}
	return cur, nil
}

// applyFilter applies one filter conjunct to the current frame. All free
// variables of the filter are columns of the frame.
func (b *Bry) applyFilter(cur frame, flt calculus.Formula) (frame, error) {
	switch n := flt.(type) {
	case calculus.Cmp:
		p, err := cmpPred(cur, n)
		if err == errGroundFalse {
			p = falsePred()
		} else if err != nil {
			return frame{}, err
		}
		return frame{plan: &algebra.Select{Input: cur.plan, Pred: p}, cols: cur.cols}, nil
	case calculus.Atom:
		sub, err := atomFrame(b.cat, n)
		if err != nil {
			return frame{}, err
		}
		return frame{plan: &algebra.SemiJoin{Left: cur.plan, Right: sub.plan, On: sharedPairs(cur, sub)}, cols: cur.cols}, nil
	case calculus.Not:
		if c, ok := n.F.(calculus.Cmp); ok {
			p, err := cmpPred(cur, c)
			if err == errGroundFalse {
				return cur, nil
			}
			if err != nil {
				return frame{}, err
			}
			return frame{plan: &algebra.Select{Input: cur.plan, Pred: algebra.Not{Pred: p}}, cols: cur.cols}, nil
		}
		if ex, ok := n.F.(calculus.Exists); ok && b.opt.Universal == UniversalDivision {
			if fr, handled, err := b.tryDivision(cur, ex); err != nil {
				return frame{}, err
			} else if handled {
				return fr, nil
			}
		}
		sub, err := b.subPlan(n.F, cur)
		if err != nil {
			return frame{}, err
		}
		// The complement-join (Definition 6): keep the tuples with NO
		// partner in the subquery — negation and, via Rules 4/5,
		// universal quantification.
		return frame{plan: &algebra.ComplementJoin{Left: cur.plan, Right: sub.plan, On: sharedPairs(cur, sub)}, cols: cur.cols}, nil
	case calculus.Exists:
		sub, err := b.subPlan(flt, cur)
		if err != nil {
			return frame{}, err
		}
		return frame{plan: &algebra.SemiJoin{Left: cur.plan, Right: sub.plan, On: sharedPairs(cur, sub)}, cols: cur.cols}, nil
	case calculus.And:
		var err error
		for _, c := range calculus.Conjuncts(n) {
			cur, err = b.applyFilter(cur, c)
			if err != nil {
				return frame{}, err
			}
		}
		return cur, nil
	case calculus.Or:
		return b.disjunctiveFilter(cur, calculus.Disjuncts(n))
	default:
		return frame{}, fmt.Errorf("translate: unsupported filter %s", flt)
	}
}

// subPlan translates a filter subformula (atom, comparison-free existential
// block, or conjunction) into a frame over its free variables — the
// relation a semi-, complement- or outer-join probes.
func (b *Bry) subPlan(f calculus.Formula, cur frame) (frame, error) {
	params := calculus.FreeVars(f).Sorted()
	switch n := f.(type) {
	case calculus.Atom:
		fr, err := atomFrame(b.cat, n)
		if err != nil {
			return frame{}, err
		}
		return fr, nil
	case calculus.Exists:
		inner, err := b.formula(n.Body)
		if err != nil {
			return frame{}, err
		}
		return inner.project(params, false), nil
	case calculus.And:
		fr, err := b.conjunction(calculus.Conjuncts(n), params)
		if err != nil {
			return frame{}, err
		}
		return fr.project(params, false), nil
	case calculus.Or:
		fr, err := b.formula(n)
		if err != nil {
			return frame{}, err
		}
		return fr.project(params, false), nil
	default:
		return frame{}, fmt.Errorf("translate: unsupported subquery %s", f)
	}
}

// tryDivision recognizes the Prop. 4 case-5 pattern in a negated
// existential filter ¬∃z̄ (T ∧ ¬G) and compiles it with the paper's
// division:
//
//	cur ⋉ π_params((G' ⋉ T') ÷ T')  ∪  cur ⊼∅ T'
//
// where T' ranges z̄ WITHOUT mentioning outer variables (the
// uncorrelated-divisor requirement), G' covers params ∪ z̄, and the second
// term keeps every outer tuple when the range is empty — the vacuous-truth
// case the paper's literal formula drops. handled is false when the
// pattern does not apply and the caller should use the complement-join.
func (b *Bry) tryDivision(cur frame, ex calculus.Exists) (_ frame, handled bool, _ error) {
	params := calculus.FreeVars(ex).Sorted()
	zs := ex.Vars
	zset := calculus.NewVarSet(zs...)

	var rangeConjs []calculus.Formula
	var g calculus.Formula
	for _, c := range calculus.Conjuncts(ex.Body) {
		if neg, ok := c.(calculus.Not); ok {
			if g != nil {
				return frame{}, false, nil // more than one negated conjunct
			}
			g = neg.F
			continue
		}
		// Every positive conjunct must be uncorrelated with the outside.
		if !zset.ContainsAll(calculus.FreeVars(c)) {
			return frame{}, false, nil
		}
		rangeConjs = append(rangeConjs, c)
	}
	if g == nil || len(rangeConjs) == 0 {
		return frame{}, false, nil
	}
	if !ranges.IsRangeFor(calculus.AndAll(rangeConjs...), zs) {
		return frame{}, false, nil
	}
	// G must mention exactly params ∪ z̄ and be producible over them.
	want := calculus.NewVarSet(params...)
	want.AddAll(zset)
	if !calculus.FreeVars(g).Equal(want) {
		return frame{}, false, nil
	}
	if !ranges.ProducesIn(g, want).Equal(want) {
		return frame{}, false, nil
	}

	tFrame, err := b.subPlan(calculus.Exists{Vars: nil, Body: calculus.AndAll(rangeConjs...)}, cur)
	if err != nil {
		return frame{}, false, nil // fall back rather than fail
	}
	tFrame = tFrame.project(sortedVars(zs), false)
	gFrame, err := b.formula(g)
	if err != nil {
		return frame{}, false, nil
	}

	// Dividend: G restricted to the range (so stray z values don't count).
	dividend := &algebra.SemiJoin{Left: gFrame.plan, Right: tFrame.plan, On: zPairs(gFrame, tFrame, zs)}
	keyCols := make([]int, len(params))
	keyMap := make(map[string]int, len(params))
	for i, p := range params {
		keyCols[i] = gFrame.col(p)
		keyMap[p] = i
	}
	divCols := make([]int, 0, len(zs))
	for _, z := range sortedVars(zs) {
		divCols = append(divCols, gFrame.col(z))
	}
	div := frame{plan: &algebra.Division{
		Dividend: dividend,
		Divisor:  tFrame.plan,
		KeyCols:  keyCols,
		DivCols:  divCols,
	}, cols: keyMap}

	qualified := &algebra.SemiJoin{Left: cur.plan, Right: div.plan, On: sharedPairs(cur, div)}
	// cur ⊼[] T' keeps the outer tuples exactly when the range is empty.
	vacuous := &algebra.ComplementJoin{Left: cur.plan, Right: tFrame.plan, On: nil}
	return frame{plan: &algebra.Union{Left: qualified, Right: vacuous}, cols: cur.cols}, true, nil
}

// zPairs aligns the z̄ columns of the dividend and range frames.
func zPairs(g, t frame, zs []string) []algebra.ColPair {
	out := make([]algebra.ColPair, 0, len(zs))
	for _, z := range sortedVars(zs) {
		out = append(out, algebra.ColPair{Left: g.col(z), Right: t.col(z)})
	}
	return out
}

func sortedVars(vs []string) []string {
	out := append([]string(nil), vs...)
	sort.Strings(out)
	return out
}

// branch is one disjunct of a disjunctive filter, classified for the
// outer-join chain.
type branch struct {
	pred    algebra.Pred // non-nil for comparison branches
	plan    algebra.Plan // non-nil for relation branches
	on      []algebra.ColPair
	negated bool
}

// disjunctiveFilter compiles Λ₁T₁(x) ∨ … ∨ ΛₙTₙ(x) against the current
// frame using the configured strategy (§3.3, Proposition 5).
func (b *Bry) disjunctiveFilter(cur frame, disjuncts []calculus.Formula) (frame, error) {
	if b.opt.DisjunctiveFilters == StrategyUnion {
		return b.disjunctiveFilterUnion(cur, disjuncts)
	}
	branches := make([]branch, 0, len(disjuncts))
	for _, d := range disjuncts {
		br, err := b.classifyBranch(cur, d)
		if err != nil {
			return frame{}, err
		}
		branches = append(branches, br)
	}

	dataVars := cur.vars()
	plan := cur.plan
	baseArity := plan.Schema().Arity()
	var finalPreds []algebra.Pred
	var flags []int // flag column per relation branch
	var negs []bool // negation per relation branch

	for _, br := range branches {
		if br.pred != nil {
			p := br.pred
			if br.negated {
				p = algebra.Not{Pred: p}
			}
			finalPreds = append(finalPreds, p)
			continue
		}
		var constraint []algebra.NullCond
		if b.opt.DisjunctiveFilters == StrategyConstrainedOuterJoin {
			// Probe only the tuples no earlier branch satisfied: an
			// earlier positive branch is unsatisfied iff its flag is ∅, a
			// negated one iff its flag is not ∅.
			for j, fc := range flags {
				constraint = append(constraint, algebra.NullCond{Col: fc, IsNull: !negs[j]})
			}
		}
		plan = &algebra.ConstrainedOuterJoin{Left: plan, Right: br.plan, On: br.on, Constraint: constraint}
		flags = append(flags, plan.Schema().Arity()-1)
		negs = append(negs, br.negated)
	}
	for j, fc := range flags {
		if negs[j] {
			finalPreds = append(finalPreds, algebra.IsNull{Col: fc})
		} else {
			finalPreds = append(finalPreds, algebra.NotNull{Col: fc})
		}
	}
	var out algebra.Plan = &algebra.Select{Input: plan, Pred: algebra.DisjAll(finalPreds...)}
	if plan.Schema().Arity() != baseArity {
		// Strip the flag columns; Proposition 5 proves this projection
		// cannot introduce duplicates.
		fr := frame{plan: out, cols: cur.cols}
		return fr.project(dataVars, true), nil
	}
	return frame{plan: out, cols: cur.cols}, nil
}

// classifyBranch prepares one disjunct for the chain.
func (b *Bry) classifyBranch(cur frame, d calculus.Formula) (branch, error) {
	negated := false
	inner := d
	if neg, ok := d.(calculus.Not); ok {
		negated = true
		inner = neg.F
	}
	if c, ok := inner.(calculus.Cmp); ok {
		p, err := cmpPred(cur, c)
		if err == errGroundFalse {
			p = falsePred()
		} else if err != nil {
			return branch{}, err
		}
		return branch{pred: p, negated: negated}, nil
	}
	sub, err := b.subPlan(inner, cur)
	if err != nil {
		return branch{}, err
	}
	return branch{plan: sub.plan, on: sharedPairs(cur, sub), negated: negated}, nil
}

// disjunctiveFilterUnion is the conventional strategy: apply each branch to
// its own copy of the producer and union the results. It re-reads the
// producer once per branch and materializes the union — the costs §3.3's
// outer-join strategy avoids.
func (b *Bry) disjunctiveFilterUnion(cur frame, disjuncts []calculus.Formula) (frame, error) {
	vars := cur.vars()
	var out frame
	for i, d := range disjuncts {
		fr, err := b.applyFilter(cur, d)
		if err != nil {
			return frame{}, err
		}
		fr = fr.project(vars, false)
		if i == 0 {
			out = fr
		} else {
			out = frame{plan: &algebra.Union{Left: out.plan, Right: fr.plan}, cols: out.cols}
		}
	}
	out.plan = &algebra.Materialize{Input: out.plan, Label: "disjunctive filter union"}
	return out, nil
}
