package translate

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/parser"
	"repro/internal/rewrite"
)

func planFor(t *testing.T, opt Options, input string) algebra.Plan {
	t.Helper()
	cat := uniCatalog(t)
	q, err := rewrite.Normalize(parser.MustParse(input))
	if err != nil {
		t.Fatalf("normalize %q: %v", input, err)
	}
	plan, err := NewBryWithOptions(cat, opt).TranslateOpen(q)
	if err != nil {
		t.Fatalf("translate %q: %v", input, err)
	}
	return plan
}

func count(plan algebra.Plan, test func(algebra.Plan) bool) int {
	return algebra.CountOperators(plan, test)
}

func isCOJ(p algebra.Plan) bool   { _, ok := p.(*algebra.ConstrainedOuterJoin); return ok }
func isUnion(p algebra.Plan) bool { _, ok := p.(*algebra.Union); return ok }
func isMat(p algebra.Plan) bool   { _, ok := p.(*algebra.Materialize); return ok }

// TestProp5ChainShape: a k-way disjunctive filter compiles to k constrained
// outer-joins, the i-th constrained by all previous flags, and a final
// duplicate-free projection.
func TestProp5ChainShape(t *testing.T) {
	plan := planFor(t, Options{}, `{ x | student(x) and (speaks(x, "french") or speaks(x, "german") or skill(x, "db")) }`)
	if n := count(plan, isCOJ); n != 3 {
		t.Fatalf("want 3 constrained outer-joins, got %d:\n%s", n, algebra.Explain(plan))
	}
	if n := count(plan, isUnion); n != 0 {
		t.Fatalf("no unions expected:\n%s", algebra.Explain(plan))
	}
	// Collect the chain's constraints: first 0 conds, then 1, then 2.
	var sizes []int
	var walk func(p algebra.Plan)
	walk = func(p algebra.Plan) {
		if c, ok := p.(*algebra.ConstrainedOuterJoin); ok {
			sizes = append(sizes, len(c.Constraint))
		}
		for _, ch := range p.Children() {
			walk(ch)
		}
	}
	walk(plan)
	if len(sizes) != 3 || sizes[0]+sizes[1]+sizes[2] != 0+1+2 {
		t.Fatalf("constraint sizes = %v, want a 0/1/2 chain", sizes)
	}
	// The final projection must be marked duplicate-free (Prop 5).
	pr, ok := plan.(*algebra.Project)
	if !ok {
		// Top may be the open-variable projection; look one level deeper.
		for _, ch := range plan.Children() {
			if p2, ok2 := ch.(*algebra.Project); ok2 {
				pr, ok = p2, true
			}
		}
	}
	if !ok || !pr.NoDedup {
		t.Fatalf("chain projection must be NoDedup:\n%s", algebra.Explain(plan))
	}
}

// TestProp5NegatedConstraintPolarity: after a negated branch, the next
// constraint requires the flag to be NON-null (the branch was satisfied by
// ∅); after a positive branch it requires ∅.
func TestProp5NegatedConstraintPolarity(t *testing.T) {
	// Both branches negated, so regardless of canonical ordering the
	// second link gates on the first being UNSATISFIED: a negated branch
	// is satisfied by flag=∅, hence the gate is flag≠∅ (IsNull=false).
	plan := planFor(t, Options{}, `{ x | student(x) and (not skill(x, "db") or not speaks(x, "german")) }`)
	var cojs []*algebra.ConstrainedOuterJoin
	var walk func(p algebra.Plan)
	walk = func(p algebra.Plan) {
		if c, ok := p.(*algebra.ConstrainedOuterJoin); ok {
			cojs = append(cojs, c)
		}
		for _, ch := range p.Children() {
			walk(ch)
		}
	}
	walk(plan)
	if len(cojs) != 2 {
		t.Fatalf("want 2 chain links, got %d", len(cojs))
	}
	// cojs[0] is the outermost (second) link: gated on the first (negated)
	// branch being unsatisfied, i.e. flag ≠ ∅ (IsNull=false).
	outer := cojs[0]
	if len(outer.Constraint) != 1 || outer.Constraint[0].IsNull {
		t.Fatalf("negated first branch must gate on flag≠∅, got %v", outer.Constraint)
	}
}

// TestUnionStrategyShape: the union strategy materializes and duplicates
// the producer subtree once per branch.
func TestUnionStrategyShape(t *testing.T) {
	plan := planFor(t, Options{DisjunctiveFilters: StrategyUnion},
		`{ x | student(x) and (speaks(x, "french") or speaks(x, "german")) }`)
	if n := count(plan, isUnion); n != 1 {
		t.Fatalf("want 1 union, got %d", n)
	}
	if n := count(plan, isMat); n != 1 {
		t.Fatalf("want 1 materialization, got %d", n)
	}
	scans := count(plan, func(p algebra.Plan) bool {
		s, ok := p.(*algebra.Scan)
		return ok && s.Name == "student"
	})
	if scans != 2 {
		t.Fatalf("union strategy must scan the producer once per branch, got %d", scans)
	}
}

// TestContextSeeding: under the complement-join universal strategy, a
// subquery whose parameter is produced outside gets seeded from the
// parameter's origin producer (the paper's "R participates in the inner
// expression", the division "rewritten in terms of complement-join").
func TestContextSeeding(t *testing.T) {
	plan := planFor(t, Options{Universal: UniversalComplementJoin}, `{ x | student(x) and not exists y: cs_lecture(y) and not attends(x, y) }`)
	// The student scan appears twice: once as the outer producer, once as
	// the context seed inside the complement-join's right side.
	scans := count(plan, func(p algebra.Plan) bool {
		s, ok := p.(*algebra.Scan)
		return ok && s.Name == "student"
	})
	if scans != 2 {
		t.Fatalf("context seeding must reuse the origin producer, got %d student scans:\n%s", scans, algebra.Explain(plan))
	}
	if n := count(plan, func(p algebra.Plan) bool { _, ok := p.(*algebra.Division); return ok }); n != 0 {
		t.Fatalf("no division expected:\n%s", algebra.Explain(plan))
	}
}

// TestClosedTranslationShapes: closed queries become emptiness tests with
// boolean connectives; ¬∃ maps to IsEmpty directly (no BoolNot wrapper).
func TestClosedTranslationShapes(t *testing.T) {
	cat := uniCatalog(t)
	q, err := rewrite.Normalize(parser.MustParse(`(exists x: student(x)) and not exists y: prof(y)`))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBry(cat).TranslateClosed(q.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := algebra.ExplainBool(bp)
	if !strings.Contains(out, "AND") || !strings.Contains(out, "≠∅") || !strings.Contains(out, "=∅") {
		t.Fatalf("unexpected boolean plan:\n%s", out)
	}
	if strings.Contains(out, "NOT") {
		t.Fatalf("¬∃ should become =∅, not NOT(≠∅):\n%s", out)
	}
}

// TestTranslateErrors: translator-level error paths.
func TestTranslateErrors(t *testing.T) {
	cat := uniCatalog(t)
	b := NewBry(cat)
	// Unknown relation.
	q, _ := rewrite.Normalize(parser.MustParse(`{ x | nosuch(x) }`))
	if _, err := b.TranslateOpen(q); err == nil {
		t.Fatal("unknown relation must fail")
	}
	// Arity mismatch.
	q2, _ := rewrite.Normalize(parser.MustParse(`{ x | student(x, x) }`))
	if _, err := NewBry(cat).TranslateOpen(q2); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// TranslateOpen on closed query.
	q3, _ := rewrite.Normalize(parser.MustParse(`exists x: student(x)`))
	if _, err := NewBry(cat).TranslateOpen(q3); err == nil {
		t.Fatal("TranslateOpen on closed query must fail")
	}
	// Codd variants.
	c := NewCodd(cat)
	if _, err := c.TranslateOpen(q); err == nil {
		t.Fatal("Codd: unknown relation must fail")
	}
	if _, err := c.TranslateOpen(q3); err == nil {
		t.Fatal("Codd: TranslateOpen on closed query must fail")
	}
}

// TestGroundComparisonPlans: translation-time constant folding.
func TestGroundComparisonPlans(t *testing.T) {
	cat := uniCatalog(t)
	b := NewBry(cat)
	q, _ := rewrite.Normalize(parser.MustParse(`1 < 2`))
	bp, err := b.TranslateClosed(q.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := bp.(*algebra.BoolConst); !ok || !c.Value {
		t.Fatalf("1<2 must fold to TRUE, got %s", algebra.ExplainBool(bp))
	}
	q2, _ := rewrite.Normalize(parser.MustParse(`2 < 1`))
	bp2, err := NewBry(cat).TranslateClosed(q2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := bp2.(*algebra.BoolConst); !ok || c.Value {
		t.Fatalf("2<1 must fold to FALSE, got %s", algebra.ExplainBool(bp2))
	}
}
