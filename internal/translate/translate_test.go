package translate

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/loopeval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

func s(x string) relation.Value { return relation.Str(x) }

// uniCatalog builds a small university database exercising the paper's
// running examples.
func uniCatalog(t testing.TB) *storage.Catalog {
	cat := storage.NewCatalog()
	add := func(name string, arity int, rows ...[]string) {
		names := make([]string, arity)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		r := cat.MustDefine(name, relation.NewSchema(names...))
		for _, row := range rows {
			tu := make(relation.Tuple, len(row))
			for i, v := range row {
				tu[i] = s(v)
			}
			r.Insert(tu)
		}
	}
	add("student", 1, []string{"ann"}, []string{"bob"}, []string{"eve"})
	add("prof", 1, []string{"kim"}, []string{"lou"})
	add("makes", 2, []string{"ann", "PhD"}, []string{"bob", "MSc"})
	add("speaks", 2, []string{"ann", "french"}, []string{"kim", "german"}, []string{"eve", "english"})
	add("member", 2, []string{"ann", "cs"}, []string{"bob", "cs"}, []string{"eve", "math"}, []string{"kim", "cs"})
	add("skill", 2, []string{"ann", "db"}, []string{"eve", "ai"}, []string{"kim", "math"})
	add("cs_lecture", 1, []string{"db101"}, []string{"ai202"})
	add("attends", 2,
		[]string{"ann", "db101"}, []string{"ann", "ai202"},
		[]string{"bob", "db101"}, []string{"eve", "ai202"})
	add("enrolled", 2, []string{"ann", "cs"}, []string{"bob", "cs"}, []string{"eve", "math"})
	return cat
}

// evalBry normalizes, translates with Bry and executes.
func evalBry(t *testing.T, cat *storage.Catalog, opt Options, input string) (*relation.Relation, bool, *exec.Stats) {
	t.Helper()
	q, err := rewrite.Normalize(parser.MustParse(input))
	if err != nil {
		t.Fatalf("Normalize(%q): %v", input, err)
	}
	b := NewBryWithOptions(cat, opt)
	ctx := exec.NewContext(cat)
	if q.IsOpen() {
		plan, err := b.TranslateOpen(q)
		if err != nil {
			t.Fatalf("TranslateOpen(%q): %v", input, err)
		}
		out, err := exec.Run(ctx, plan)
		if err != nil {
			t.Fatalf("Run(%q): %v", input, err)
		}
		return out, false, ctx.Stats
	}
	bp, err := b.TranslateClosed(q.Body)
	if err != nil {
		t.Fatalf("TranslateClosed(%q): %v", input, err)
	}
	ok, err := exec.EvalBool(ctx, bp)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", input, err)
	}
	return nil, ok, ctx.Stats
}

// oracleCheck compares a query's Bry result against the domain oracle.
func oracleCheck(t *testing.T, cat *storage.Catalog, input string) {
	t.Helper()
	q := parser.MustParse(input)
	o := loopeval.NewOracle(cat)
	if q.IsOpen() {
		want, err := o.Answers(q)
		if err != nil {
			t.Fatalf("oracle(%q): %v", input, err)
		}
		got, _, _ := evalBry(t, cat, Options{}, input)
		if !got.Equal(want) {
			t.Fatalf("Bry(%q) mismatch:\ngot:\n%s\nwant:\n%s", input, got, want)
		}
		return
	}
	want, err := o.Closed(q.Body, loopeval.Env{})
	if err != nil {
		t.Fatalf("oracle(%q): %v", input, err)
	}
	_, got, _ := evalBry(t, cat, Options{}, input)
	if got != want {
		t.Fatalf("Bry(%q) = %v, oracle says %v", input, got, want)
	}
}

// TestPaperQ2ComplementJoin reproduces §3.1: Q₂ = member(x,z) ∧ ¬skill(x,db)
// answers with member ⊼ π₁(σ₂₌db(skill)) — one complement-join, no Diff,
// no extra Join.
func TestPaperQ2ComplementJoin(t *testing.T) {
	cat := uniCatalog(t)
	q, err := rewrite.Normalize(parser.MustParse(`{ x, z | member(x, z) and not skill(x, "db") }`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewBry(cat).TranslateOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := algebra.CountOperators(plan, func(p algebra.Plan) bool { _, ok := p.(*algebra.ComplementJoin); return ok }); n != 1 {
		t.Fatalf("want exactly 1 complement-join, got %d in:\n%s", n, algebra.Explain(plan))
	}
	for _, bad := range []string{"Diff", "Division", "Product"} {
		if n := algebra.CountOperators(plan, func(p algebra.Plan) bool {
			switch p.(type) {
			case *algebra.Diff:
				return bad == "Diff"
			case *algebra.Division:
				return bad == "Division"
			case *algebra.Product:
				return bad == "Product"
			}
			return false
		}); n != 0 {
			t.Fatalf("plan must avoid %s:\n%s", bad, algebra.Explain(plan))
		}
	}
	out, err := exec.Run(exec.NewContext(cat), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewUnnamed(out.Schema())
	want.InsertValues(s("bob"), s("cs"))
	want.InsertValues(s("eve"), s("math"))
	want.InsertValues(s("kim"), s("cs"))
	if !out.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", out, want)
	}
}

// TestPaperSection32Query evaluates §3.2's Q: is there a PhD student
// enrolled outside cs attending a cs lecture?
func TestPaperSection32Query(t *testing.T) {
	cat := uniCatalog(t)
	// eve: enrolled math (≠cs) but makes nothing; ann/bob enrolled cs.
	_, got, _ := evalBry(t, cat, Options{}, `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`)
	if got {
		t.Fatal("query must be false on this database")
	}
	// Give eve a PhD; she attends ai202, so the query becomes true.
	r, _ := cat.Relation("makes")
	r.InsertValues(s("eve"), s("PhD"))
	_, got, _ = evalBry(t, cat, Options{}, `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: cs_lecture(z) and attends(x, z)`)
	if !got {
		t.Fatal("query must be true after the update")
	}
}

// TestUniversalViaComplementJoin: the miniscope example query of §2.2 —
// a student attending all cs lectures without being enrolled in cs.
func TestUniversalViaComplementJoin(t *testing.T) {
	cat := uniCatalog(t)
	input := `exists x: student(x) and (forall y: cs_lecture(y) => attends(x, y)) and not enrolled(x, "cs")`
	_, got, _ := evalBry(t, cat, Options{}, input)
	// ann attends both lectures but is enrolled in cs; eve attends only
	// ai202. So the answer is false.
	if got {
		t.Fatal("no student qualifies")
	}
	oracleCheck(t, cat, input)

	// Open variant: who attends all cs lectures? This is exactly the
	// Prop. 4 case-5 shape: under the default options it compiles to the
	// paper's division (plus the empty-range correction); under
	// UniversalComplementJoin it compiles division-free.
	q, err := rewrite.Normalize(parser.MustParse(`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`))
	if err != nil {
		t.Fatal(err)
	}
	countDiv := func(p algebra.Plan) int {
		return algebra.CountOperators(p, func(x algebra.Plan) bool { _, ok := x.(*algebra.Division); return ok })
	}
	divPlan, err := NewBry(cat).TranslateOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if countDiv(divPlan) != 1 {
		t.Fatalf("case 5 must use the division under default options:\n%s", algebra.Explain(divPlan))
	}
	cjPlan, err := NewBryWithOptions(cat, Options{Universal: UniversalComplementJoin}).TranslateOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	if countDiv(cjPlan) != 0 {
		t.Fatalf("complement-join strategy must avoid division:\n%s", algebra.Explain(cjPlan))
	}
	want := relation.NewUnnamed(relation.NewSchema("x"))
	want.InsertValues(s("ann"))
	for _, plan := range []algebra.Plan{divPlan, cjPlan} {
		out, err := exec.Run(exec.NewContext(cat), plan)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("got:\n%s\nwant ann only", out)
		}
	}
}

// TestProp4Cases exercises the five syntactic cases of Proposition 4 on a
// generic R/S/T/G database and cross-checks against the oracle.
func TestProp4Cases(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("x", "y"))
	sRel := cat.MustDefine("S", relation.NewSchema("x", "y", "z"))
	tRel := cat.MustDefine("T", relation.NewSchema("y", "z"))
	g := cat.MustDefine("G", relation.NewSchema("x", "y", "z"))
	for _, row := range [][2]string{{"x1", "y1"}, {"x1", "y2"}, {"x2", "y1"}, {"x3", "y3"}} {
		r.InsertValues(s(row[0]), s(row[1]))
	}
	for _, row := range [][3]string{{"x1", "y1", "z1"}, {"x1", "y2", "z2"}, {"x2", "y1", "z1"}, {"x2", "y1", "z2"}} {
		sRel.InsertValues(s(row[0]), s(row[1]), s(row[2]))
	}
	for _, row := range [][2]string{{"y1", "z1"}, {"y1", "z2"}, {"y2", "z2"}} {
		tRel.InsertValues(s(row[0]), s(row[1]))
	}
	for _, row := range [][3]string{{"x1", "y1", "z1"}, {"x1", "y1", "z2"}, {"x2", "y1", "z1"}, {"x1", "y2", "z2"}} {
		g.InsertValues(s(row[0]), s(row[1]), s(row[2]))
	}
	u1 := cat.MustDefine("U1", relation.NewSchema("z"))
	for _, z := range []string{"z1", "z2"} {
		u1.InsertValues(s(z))
	}

	cases := []string{
		// 1: ∃y R ∧ ∃z (S ∧ G)
		`{ x | exists y: R(x, y) and exists z: S(x, y, z) and G(x, y, z) }`,
		// 2a: ∃y R ∧ ∃z (S ∧ ¬G)
		`{ x | exists y: R(x, y) and exists z: S(x, y, z) and not G(x, y, z) }`,
		// 2b: ∃y R ∧ ∃z (T ∧ ¬G) — x occurs only under the negation.
		`{ x | exists y: R(x, y) and exists z: T(y, z) and not G(x, y, z) }`,
		// 3: ∃y R ∧ ¬∃z (S ∧ G)
		`{ x | exists y: R(x, y) and not exists z: S(x, y, z) and G(x, y, z) }`,
		// 4: ∃y R ∧ ¬∃z (S ∧ ¬G)
		`{ x | exists y: R(x, y) and not exists z: S(x, y, z) and not G(x, y, z) }`,
		// 5: ∃y R ∧ ¬∃z (T ∧ ¬G) — the paper's division case. T(y,z) is
		// CORRELATED with the outer y, where the literal G ÷ π₂(T) is
		// unsound, so the translator uses the complement-join rewriting.
		`{ x | exists y: R(x, y) and not exists z: T(y, z) and not G(x, y, z) }`,
		// 5u: the uncorrelated variant, where the division applies.
		`{ x | exists y: R(x, y) and not exists z: U1(z) and not G(x, y, z) }`,
	}
	o := loopeval.NewOracle(cat)
	for _, input := range cases {
		q := parser.MustParse(input)
		want, err := o.Answers(q)
		if err != nil {
			t.Fatalf("oracle(%q): %v", input, err)
		}
		got, _, _ := evalBry(t, cat, Options{}, input)
		if !got.Equal(want) {
			t.Errorf("case %q:\ngot:\n%s\nwant:\n%s", input, got, want)
		}
		// No plan contains a cartesian product; only case 5 (the last
		// input) may use the division — "in the fifth case, the division
		// operator cannot be avoided" — and even it compiles
		// division-free under the complement-join strategy.
		nq, _ := rewrite.Normalize(q)
		plan, err := NewBry(cat).TranslateOpen(nq)
		if err != nil {
			t.Fatalf("translate(%q): %v", input, err)
		}
		if n := algebra.CountOperators(plan, func(p algebra.Plan) bool {
			_, ok := p.(*algebra.Product)
			return ok
		}); n != 0 {
			t.Errorf("case %q: plan has cartesian products:\n%s", input, algebra.Explain(plan))
		}
		divs := algebra.CountOperators(plan, func(p algebra.Plan) bool {
			_, ok := p.(*algebra.Division)
			return ok
		})
		isCase5 := input == cases[len(cases)-1]
		if isCase5 && divs != 1 {
			t.Errorf("case 5 should use one division, got %d:\n%s", divs, algebra.Explain(plan))
		}
		if !isCase5 && divs != 0 {
			t.Errorf("case %q: unexpected division:\n%s", input, algebra.Explain(plan))
		}
		cjPlan, err := NewBryWithOptions(cat, Options{Universal: UniversalComplementJoin}).TranslateOpen(nq)
		if err != nil {
			t.Fatalf("translate cj (%q): %v", input, err)
		}
		if n := algebra.CountOperators(cjPlan, func(p algebra.Plan) bool {
			switch p.(type) {
			case *algebra.Product, *algebra.Division:
				return true
			}
			return false
		}); n != 0 {
			t.Errorf("case %q: complement-join strategy must avoid products and divisions:\n%s", input, algebra.Explain(cjPlan))
		}
	}
}

// TestDisjunctiveFilterStrategies: all three §3.3 strategies agree, and
// the constrained chain avoids the union and the double scan.
func TestDisjunctiveFilterStrategies(t *testing.T) {
	cat := uniCatalog(t)
	input := `{ x | member(x, "cs") and (speaks(x, "french") or speaks(x, "german")) }`
	var results []*relation.Relation
	var stats []*exec.Stats
	for _, strat := range []DisjFilterStrategy{StrategyConstrainedOuterJoin, StrategyOuterJoin, StrategyUnion} {
		out, _, st := evalBry(t, cat, Options{DisjunctiveFilters: strat}, input)
		results = append(results, out)
		stats = append(stats, st)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatalf("strategy %d disagrees:\n%s\nvs\n%s", i, results[0], results[i])
		}
	}
	// The union strategy materializes; the outer-join strategies don't.
	if stats[0].Materializations != 0 {
		t.Errorf("constrained outer-join strategy materialized %d times", stats[0].Materializations)
	}
	if stats[2].Materializations == 0 {
		t.Errorf("union strategy must materialize")
	}
	// The constrained chain performs no more probes than the plain chain.
	if stats[0].Comparisons > stats[1].Comparisons {
		t.Errorf("constrained chain (%d cmp) costlier than unconstrained (%d)", stats[0].Comparisons, stats[1].Comparisons)
	}
}

// TestDisjunctiveFilterWithNegation: Q₂ of §3.3 with a negated branch.
func TestDisjunctiveFilterWithNegation(t *testing.T) {
	cat := uniCatalog(t)
	input := `{ x | member(x, "cs") and (not skill(x, "db") or speaks(x, "german")) }`
	oracleCheck(t, cat, input)
	for _, strat := range []DisjFilterStrategy{StrategyOuterJoin, StrategyUnion} {
		got, _, _ := evalBry(t, cat, Options{DisjunctiveFilters: strat}, input)
		want, _, _ := evalBry(t, cat, Options{}, input)
		if !got.Equal(want) {
			t.Fatalf("strategy %d disagrees", strat)
		}
	}
}

// TestDisjunctiveFilterMixedBranches: comparison and quantified branches.
func TestDisjunctiveFilterMixedBranches(t *testing.T) {
	cat := uniCatalog(t)
	inputs := []string{
		`{ x, d | member(x, d) and (d = "math" or skill(x, "db")) }`,
		`{ x | student(x) and ((exists y: attends(x, y)) or skill(x, "ai")) }`,
		`{ x | student(x) and (not (exists y: attends(x, y)) or enrolled(x, "cs")) }`,
	}
	for _, input := range inputs {
		oracleCheck(t, cat, input)
	}
}

// TestClosedBooleanCombination: §3.2's conjunction of closed subqueries.
func TestClosedBooleanCombination(t *testing.T) {
	cat := uniCatalog(t)
	input := `(exists x: student(x) and forall y: cs_lecture(y) => attends(x, y)) and (forall z1: student(z1) => exists z2: attends(z1, z2))`
	oracleCheck(t, cat, input)
	_, got, _ := evalBry(t, cat, Options{}, input)
	// ann attends all lectures, and every student attends something.
	if !got {
		t.Fatal("want true")
	}
}

// TestCoddBaseline: the classical reduction gives the same answers and
// uses products and divisions.
func TestCoddBaseline(t *testing.T) {
	cat := uniCatalog(t)
	inputs := []string{
		`{ x, z | member(x, z) and not skill(x, "db") }`,
		`{ x | student(x) and forall y: cs_lecture(y) => attends(x, y) }`,
		`exists x: student(x) and not enrolled(x, "cs")`,
		`forall z1: student(z1) => exists z2: attends(z1, z2)`,
	}
	o := loopeval.NewOracle(cat)
	sawDivision := false
	for _, input := range inputs {
		q := parser.MustParse(input)
		c := NewCodd(cat)
		ctx := exec.NewContext(cat)
		if q.IsOpen() {
			plan, err := c.TranslateOpen(q)
			if err != nil {
				t.Fatalf("Codd(%q): %v", input, err)
			}
			got, err := exec.Run(ctx, plan)
			if err != nil {
				t.Fatalf("run Codd(%q): %v", input, err)
			}
			want, err := o.Answers(q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("Codd(%q):\ngot:\n%s\nwant:\n%s", input, got, want)
			}
			if algebra.CountOperators(plan, func(p algebra.Plan) bool { _, ok := p.(*algebra.Division); return ok }) > 0 {
				sawDivision = true
			}
		} else {
			bp, err := c.TranslateClosed(q.Body)
			if err != nil {
				t.Fatalf("Codd(%q): %v", input, err)
			}
			got, err := exec.EvalBool(ctx, bp)
			if err != nil {
				t.Fatalf("eval Codd(%q): %v", input, err)
			}
			want, err := o.Closed(q.Body, loopeval.Env{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("Codd(%q) = %v, want %v", input, got, want)
			}
			if algebra.CountBoolOperators(bp, func(p algebra.Plan) bool { _, ok := p.(*algebra.Division); return ok }) > 0 {
				sawDivision = true
			}
		}
	}
	if !sawDivision {
		t.Error("the Codd baseline should use Division for universal quantifiers")
	}
}

// TestOpenDisjunction: union of open disjuncts (Definition 3 case 2).
func TestOpenDisjunction(t *testing.T) {
	cat := uniCatalog(t)
	oracleCheck(t, cat, `{ x | student(x) or prof(x) }`)
	oracleCheck(t, cat, `{ x | (student(x) and makes(x, "PhD")) or (prof(x) and speaks(x, "german")) }`)
}

// TestGroundAtoms: closed atoms and ground comparisons.
func TestGroundAtoms(t *testing.T) {
	cat := uniCatalog(t)
	oracleCheck(t, cat, `student("ann") and 1 < 2`)
	oracleCheck(t, cat, `student("nobody") or prof("kim")`)
	oracleCheck(t, cat, `{ x | student(x) and prof("kim") }`)
	oracleCheck(t, cat, `{ x | student(x) and 2 < 1 }`)
}
