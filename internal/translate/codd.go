package translate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/storage"
)

// DomRelation is the catalog name of the database-domain relation the Codd
// baseline quantifies over (the Domain Closure Assumption's 'dom' view).
const DomRelation = "__dom"

// Codd is the classical reduction-algorithm baseline [COD 72, PAL 72,
// JS 82, CG 85]: the query is put in prenex form, a cartesian product of
// the database domain is built for every variable, existential quantifiers
// become projections and universal quantifiers become divisions by the
// domain. It accepts raw (non-normalized) queries.
//
// The baseline exists to measure the paper's central claim: this
// translation "retains much more tuples than needed and these tuples are
// eliminated too late, when divisions are finally performed" [DAY 83].
type Codd struct {
	cat *storage.Catalog
	// ImprovedRanges enables the refinement of [PAL 72, JS 82] the paper
	// groups with the classical methods: a variable whose matrix contains
	// a positive atom ranges over that atom's column projection instead
	// of the whole database domain. The prenex structure, the initial
	// product and the divisions remain — which is exactly why the paper's
	// method still wins (E6).
	ImprovedRanges bool
}

// NewCodd builds the baseline translator and (re)registers the domain
// relation in the catalog.
func NewCodd(cat *storage.Catalog) *Codd {
	c := &Codd{cat: cat}
	c.RefreshDomain()
	return c
}

// NewCoddImproved builds the [PAL 72]-style variant with per-variable
// ranges.
func NewCoddImproved(cat *storage.Catalog) *Codd {
	c := NewCodd(cat)
	c.ImprovedRanges = true
	return c
}

// RefreshDomain recomputes the __dom relation from the current catalog
// contents; call it after loading data.
func (c *Codd) RefreshDomain() {
	dom := c.cat.Domain()
	dom.Name = DomRelation
	c.cat.Add(dom)
}

func (c *Codd) domScan() frame {
	return frame{plan: algebra.NewScan(DomRelation, relation.NewSchema("v")), cols: map[string]int{}}
}

// quantBlock is one block of the prenex prefix.
type quantBlock struct {
	exists bool
	vars   []string
}

// TranslateOpen compiles an open query.
func (c *Codd) TranslateOpen(q parser.Query) (algebra.Plan, error) {
	if !q.IsOpen() {
		return nil, fmt.Errorf("translate: TranslateOpen needs an open query")
	}
	fr, err := c.translate(q.Body, q.OpenVars)
	if err != nil {
		return nil, err
	}
	return fr.project(q.OpenVars, false).plan, nil
}

// TranslateClosed compiles a closed query to a single emptiness test over
// the reduced plan (a 0-ary relation that is nonempty iff the query holds).
func (c *Codd) TranslateClosed(f calculus.Formula) (algebra.BoolPlan, error) {
	fr, err := c.translate(f, nil)
	if err != nil {
		return nil, err
	}
	return &algebra.NotEmpty{Input: fr.plan}, nil
}

// Translate compiles either query form.
func (c *Codd) Translate(q parser.Query) (algebra.Plan, algebra.BoolPlan, error) {
	if q.IsOpen() {
		p, err := c.TranslateOpen(q)
		return p, nil, err
	}
	bp, err := c.TranslateClosed(q.Body)
	return nil, bp, err
}

// translate runs the reduction: standardize apart, prenex, build the
// initial cartesian product of domain ranges for every variable, filter by
// the matrix, then fold the prefix from the innermost block outward.
func (c *Codd) translate(f calculus.Formula, openVars []string) (frame, error) {
	gen := calculus.NewNameGen(calculus.AllVars(f))
	f = calculus.RenameBound(f, gen)
	prefix, matrix := prenex(f)
	matrix = pushNegations(matrix, false)

	// With ImprovedRanges, existential and free variables range over the
	// column projection of a positive matrix atom instead of the domain
	// (the [PAL 72] refinement). Universal variables keep the domain: a
	// smaller range would change ∀'s meaning, since the matrix must hold
	// for EVERY value the divisor supplies.
	posAtoms := map[string]calculus.Atom{}
	if c.ImprovedRanges {
		collectPositiveAtoms(matrix, posAtoms)
	}

	// Initial product: one range column per variable, open variables
	// first, then prefix variables outermost to innermost.
	cur := frame{cols: map[string]int{}}
	addVar := func(v string, improvable bool) error {
		d := c.domScan()
		if improvable {
			if a, ok := posAtoms[v]; ok {
				fr, err := atomFrame(c.cat, a)
				if err != nil {
					return err
				}
				d = fr.project([]string{v}, false)
			}
		}
		if cur.plan == nil {
			cur = frame{plan: d.plan, cols: map[string]int{v: 0}}
			return nil
		}
		off := cur.plan.Schema().Arity()
		cols := make(map[string]int, len(cur.cols)+1)
		for k, col := range cur.cols {
			cols[k] = col
		}
		cols[v] = off
		cur = frame{plan: &algebra.Product{Left: cur.plan, Right: d.plan}, cols: cols}
		return nil
	}
	for _, v := range openVars {
		if err := addVar(v, true); err != nil {
			return frame{}, err
		}
	}
	for _, b := range prefix {
		for _, v := range b.vars {
			if err := addVar(v, b.exists); err != nil {
				return frame{}, err
			}
		}
	}
	if cur.plan == nil {
		// A ground formula: evaluate over a single domain column so there
		// is a base to test emptiness on.
		cur = c.domScan()
		cur.cols = map[string]int{}
	}

	var err error
	cur, err = c.applyMatrix(cur, matrix)
	if err != nil {
		return frame{}, err
	}

	// Fold the prefix, innermost block first: ∃ projects its variables
	// away, ∀ divides by the domain (once per block of k variables, by a
	// k-ary domain product).
	remaining := make([]string, 0, len(cur.cols))
	inPrefix := make(map[string]bool)
	for _, b := range prefix {
		for _, v := range b.vars {
			inPrefix[v] = true
		}
	}
	for _, v := range openVars {
		remaining = append(remaining, v)
	}
	for _, b := range prefix {
		remaining = append(remaining, b.vars...)
	}
	for i := len(prefix) - 1; i >= 0; i-- {
		b := prefix[i]
		drop := make(map[string]bool, len(b.vars))
		for _, v := range b.vars {
			drop[v] = true
		}
		var keep []string
		for _, v := range remaining {
			if !drop[v] {
				keep = append(keep, v)
			}
		}
		if b.exists {
			cur = cur.project(keep, false)
		} else {
			divisor := c.domScan().plan
			for k := 1; k < len(b.vars); k++ {
				divisor = &algebra.Product{Left: divisor, Right: c.domScan().plan}
			}
			keyCols := make([]int, len(keep))
			nm := make(map[string]int, len(keep))
			for j, v := range keep {
				keyCols[j] = cur.col(v)
				nm[v] = j
			}
			divCols := make([]int, len(b.vars))
			for j, v := range b.vars {
				divCols[j] = cur.col(v)
			}
			cur = frame{plan: &algebra.Division{
				Dividend: cur.plan,
				Divisor:  divisor,
				KeyCols:  keyCols,
				DivCols:  divCols,
			}, cols: nm}
		}
		remaining = keep
	}
	return cur, nil
}

// applyMatrix filters the product frame by the quantifier-free matrix:
// conjunctions apply sequentially, disjunctions become materialized unions
// (the conventional strategy), literals become (complement-)semi-joins and
// selections.
func (c *Codd) applyMatrix(cur frame, m calculus.Formula) (frame, error) {
	switch n := m.(type) {
	case calculus.And:
		var err error
		for _, cj := range calculus.Conjuncts(n) {
			cur, err = c.applyMatrix(cur, cj)
			if err != nil {
				return frame{}, err
			}
		}
		return cur, nil
	case calculus.Or:
		disjuncts := calculus.Disjuncts(n)
		var out frame
		vars := cur.vars()
		for i, d := range disjuncts {
			fr, err := c.applyMatrix(cur, d)
			if err != nil {
				return frame{}, err
			}
			fr = fr.project(vars, false)
			if i == 0 {
				out = fr
			} else {
				out = frame{plan: &algebra.Union{Left: out.plan, Right: fr.plan}, cols: out.cols}
			}
		}
		out.plan = &algebra.Materialize{Input: out.plan, Label: "matrix union"}
		// Restore the original column order expected by the caller.
		restored := frame{plan: out.plan, cols: out.cols}
		return restored, nil
	case calculus.Atom:
		sub, err := atomFrame(c.cat, n)
		if err != nil {
			return frame{}, err
		}
		return frame{plan: &algebra.SemiJoin{Left: cur.plan, Right: sub.plan, On: sharedPairs(cur, sub)}, cols: cur.cols}, nil
	case calculus.Not:
		switch inner := n.F.(type) {
		case calculus.Atom:
			sub, err := atomFrame(c.cat, inner)
			if err != nil {
				return frame{}, err
			}
			return frame{plan: &algebra.ComplementJoin{Left: cur.plan, Right: sub.plan, On: sharedPairs(cur, sub)}, cols: cur.cols}, nil
		case calculus.Cmp:
			p, err := cmpPred(cur, inner)
			if err == errGroundFalse {
				return cur, nil
			}
			if err != nil {
				return frame{}, err
			}
			return frame{plan: &algebra.Select{Input: cur.plan, Pred: algebra.Not{Pred: p}}, cols: cur.cols}, nil
		default:
			return frame{}, fmt.Errorf("translate: matrix not in negation normal form: %s", m)
		}
	case calculus.Cmp:
		p, err := cmpPred(cur, n)
		if err == errGroundFalse {
			p = falsePred()
		} else if err != nil {
			return frame{}, err
		}
		return frame{plan: &algebra.Select{Input: cur.plan, Pred: p}, cols: cur.cols}, nil
	default:
		return frame{}, fmt.Errorf("translate: unexpected matrix node %T", m)
	}
}

// collectPositiveAtoms records, for each variable, one positive atom the
// NNF matrix REQUIRES (conjunctive occurrences only — an atom inside a
// disjunct is not a sound range, since the other disjunct might hold
// instead). Variables occurring only under negation, inside disjunctions
// or in comparisons stay on the domain.
func collectPositiveAtoms(m calculus.Formula, out map[string]calculus.Atom) {
	switch n := m.(type) {
	case calculus.Atom:
		for _, t := range n.Args {
			if t.IsVar() {
				if _, ok := out[t.Var]; !ok {
					out[t.Var] = n
				}
			}
		}
	case calculus.And:
		collectPositiveAtoms(n.L, out)
		collectPositiveAtoms(n.R, out)
	}
}

// prenex pulls every quantifier to the front. The input has all-distinct
// bound variables, so no capture is possible; pulling through ¬ flips the
// quantifier kind, implications are unfolded first.
func prenex(f calculus.Formula) ([]quantBlock, calculus.Formula) {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return nil, f
	case calculus.Not:
		prefix, matrix := prenex(n.F)
		for i := range prefix {
			prefix[i].exists = !prefix[i].exists
		}
		return prefix, calculus.Not{F: matrix}
	case calculus.And:
		lp, lm := prenex(n.L)
		rp, rm := prenex(n.R)
		return append(lp, rp...), calculus.And{L: lm, R: rm}
	case calculus.Or:
		lp, lm := prenex(n.L)
		rp, rm := prenex(n.R)
		return append(lp, rp...), calculus.Or{L: lm, R: rm}
	case calculus.Implies:
		return prenex(calculus.Or{L: calculus.Not{F: n.L}, R: n.R})
	case calculus.Exists:
		prefix, matrix := prenex(n.Body)
		return append([]quantBlock{{exists: true, vars: n.Vars}}, prefix...), matrix
	case calculus.Forall:
		prefix, matrix := prenex(n.Body)
		return append([]quantBlock{{exists: false, vars: n.Vars}}, prefix...), matrix
	default:
		panic(fmt.Sprintf("translate: unknown formula %T", f))
	}
}

// pushNegations rewrites the quantifier-free matrix into negation normal
// form (negations on atoms and comparisons only).
func pushNegations(f calculus.Formula, neg bool) calculus.Formula {
	switch n := f.(type) {
	case calculus.Atom:
		if neg {
			return calculus.Not{F: n}
		}
		return n
	case calculus.Cmp:
		if neg {
			return calculus.Cmp{Left: n.Left, Op: n.Op.Negate(), Right: n.Right}
		}
		return n
	case calculus.Not:
		return pushNegations(n.F, !neg)
	case calculus.And:
		if neg {
			return calculus.Or{L: pushNegations(n.L, true), R: pushNegations(n.R, true)}
		}
		return calculus.And{L: pushNegations(n.L, false), R: pushNegations(n.R, false)}
	case calculus.Or:
		if neg {
			return calculus.And{L: pushNegations(n.L, true), R: pushNegations(n.R, true)}
		}
		return calculus.Or{L: pushNegations(n.L, false), R: pushNegations(n.R, false)}
	case calculus.Implies:
		return pushNegations(calculus.Or{L: calculus.Not{F: n.L}, R: n.R}, neg)
	default:
		panic(fmt.Sprintf("translate: unexpected matrix node %T", f))
	}
}
