// Package translate implements Phase 2 of the paper: compiling canonical
// calculus queries into the extended relational algebra of
// internal/algebra. Two translators are provided:
//
//   - Bry (bry.go) — the paper's improved translation: complement-joins for
//     negation and universal quantification (Definition 6, Proposition 4),
//     constrained outer-join chains for disjunctive filters
//     (Definition 7, Proposition 5), emptiness tests for closed queries
//     (§3.2), no initial cartesian product and no division operator;
//
//   - Codd (codd.go) — the classical reduction-algorithm baseline
//     [COD 72, PAL 72, JS 82, CG 85]: prenex form, a cartesian product of
//     the database domain for every variable, projections for ∃ and
//     divisions for ∀.
//
// This file holds the plumbing shared by both: the frame abstraction (a
// plan plus a variable→column map) and the producer/filter machinery.
package translate

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/relation"
	"repro/internal/storage"
)

// frame pairs a plan with the mapping from variable names to the plan's
// column positions.
type frame struct {
	plan algebra.Plan
	cols map[string]int
}

// col returns the column of a variable; it panics on planner bugs.
func (f frame) col(v string) int {
	c, ok := f.cols[v]
	if !ok {
		panic(fmt.Sprintf("translate: variable %q not in frame %v", v, f.cols))
	}
	return c
}

// vars returns the frame's variables, sorted.
func (f frame) vars() []string {
	out := make([]string, 0, len(f.cols))
	for v := range f.cols {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// project narrows the frame to the given variables, in the given order.
func (f frame) project(vars []string, noDedup bool) frame {
	cols := make([]int, len(vars))
	nm := make(map[string]int, len(vars))
	identity := f.plan.Schema().Arity() == len(vars)
	for i, v := range vars {
		cols[i] = f.col(v)
		nm[v] = i
		if cols[i] != i {
			identity = false
		}
	}
	if identity {
		return frame{plan: f.plan, cols: nm}
	}
	return frame{plan: &algebra.Project{Input: f.plan, Cols: cols, NoDedup: noDedup}, cols: nm}
}

// join equi-joins two frames on their shared variables; right-only
// variables are appended to the column map. With no shared variables the
// join degenerates to a product (with an empty 'on' the hash join puts
// every right tuple in one bucket).
func join(l, r frame) frame {
	var on []algebra.ColPair
	for v, lc := range l.cols {
		if rc, ok := r.cols[v]; ok {
			on = append(on, algebra.ColPair{Left: lc, Right: rc})
		}
	}
	sort.Slice(on, func(i, j int) bool { return on[i].Left < on[j].Left })
	off := l.plan.Schema().Arity()
	cols := make(map[string]int, len(l.cols)+len(r.cols))
	for v, c := range l.cols {
		cols[v] = c
	}
	for v, c := range r.cols {
		if _, dup := cols[v]; !dup {
			cols[v] = off + c
		}
	}
	return frame{plan: &algebra.Join{Left: l.plan, Right: r.plan, On: on}, cols: cols}
}

// sharedPairs computes the equi-join pairs between a frame and a subplan
// frame over (a subset of) its variables.
func sharedPairs(l, r frame) []algebra.ColPair {
	var on []algebra.ColPair
	for v, rc := range r.cols {
		if lc, ok := l.cols[v]; ok {
			on = append(on, algebra.ColPair{Left: lc, Right: rc})
		}
	}
	sort.Slice(on, func(i, j int) bool { return on[i].Left < on[j].Left })
	return on
}

// atomFrame translates a relation atom into a scan with selections for
// constant arguments and repeated variables. The resulting frame maps each
// distinct variable to its first column of occurrence.
func atomFrame(cat *storage.Catalog, a calculus.Atom) (frame, error) {
	rel, err := cat.Relation(a.Pred)
	if err != nil {
		return frame{}, err
	}
	if rel.Arity() != len(a.Args) {
		return frame{}, fmt.Errorf("translate: atom %s has arity %d, relation %q has %d", a, len(a.Args), a.Pred, rel.Arity())
	}
	var plan algebra.Plan = algebra.NewScan(a.Pred, rel.Schema())
	var preds []algebra.Pred
	cols := make(map[string]int)
	for i, arg := range a.Args {
		if !arg.IsVar() {
			preds = append(preds, algebra.CmpConst{Col: i, Op: algebra.OpEq, Const: arg.Const})
			continue
		}
		if first, seen := cols[arg.Var]; seen {
			preds = append(preds, algebra.CmpCols{Left: first, Op: algebra.OpEq, Right: i})
		} else {
			cols[arg.Var] = i
		}
	}
	if len(preds) > 0 {
		plan = &algebra.Select{Input: plan, Pred: algebra.ConjAll(preds...)}
	}
	return frame{plan: plan, cols: cols}, nil
}

// cmpPred compiles a comparison atom into a predicate over the frame.
// Ground comparisons (both terms constant) evaluate at translation time.
func cmpPred(f frame, c calculus.Cmp) (algebra.Pred, error) {
	switch {
	case c.Left.IsVar() && c.Right.IsVar():
		return algebra.CmpCols{Left: f.col(c.Left.Var), Op: c.Op, Right: f.col(c.Right.Var)}, nil
	case c.Left.IsVar():
		return algebra.CmpConst{Col: f.col(c.Left.Var), Op: c.Op, Const: c.Right.Const}, nil
	case c.Right.IsVar():
		// Flip the comparison: const op var ⇔ var op' const.
		return algebra.CmpConst{Col: f.col(c.Right.Var), Op: flip(c.Op), Const: c.Left.Const}, nil
	default:
		if c.Op.Apply(c.Left.Const, c.Right.Const) {
			return algebra.True{}, nil
		}
		return nil, errGroundFalse
	}
}

// errGroundFalse signals a comparison that is false at translation time;
// callers turn it into an empty result or a FALSE boolean constant.
var errGroundFalse = fmt.Errorf("translate: ground comparison is false")

// flip mirrors a comparison operator so the variable lands on the left.
func flip(op relation.CmpOp) relation.CmpOp {
	switch op {
	case relation.OpLt:
		return relation.OpGt
	case relation.OpLe:
		return relation.OpGe
	case relation.OpGt:
		return relation.OpLt
	case relation.OpGe:
		return relation.OpLe
	default:
		return op // = and ≠ are symmetric
	}
}

// falsePred is an always-false predicate: a ground-false comparison turns
// its conjunction into an empty selection.
func falsePred() algebra.Pred { return algebra.Not{Pred: algebra.True{}} }
