package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// collectBatches returns a run func that records every flushed batch.
func collectBatches() (func([]*request), func() [][]*request) {
	var mu sync.Mutex
	var batches [][]*request
	run := func(b []*request) {
		mu.Lock()
		defer mu.Unlock()
		batches = append(batches, b)
	}
	get := func() [][]*request {
		mu.Lock()
		defer mu.Unlock()
		out := make([][]*request, len(batches))
		copy(out, batches)
		return out
	}
	return run, get
}

// TestBatcherFlushesAtSize: the size threshold flushes immediately, well
// before the max-wait timer.
func TestBatcherFlushesAtSize(t *testing.T) {
	testutil.CheckGoroutines(t)
	run, got := collectBatches()
	b := newBatcher(3, 16, time.Minute, run)
	for i := 0; i < 6; i++ {
		b.in <- &request{}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if bs := got(); len(bs) == 2 && len(bs[0]) == 3 && len(bs[1]) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want two batches of 3 long before the minute timer, got %d", len(got()))
		}
		time.Sleep(time.Millisecond)
	}
	b.close()
}

// TestBatcherFlushesAtMaxWait: a lone request below the size threshold is
// flushed once its max-wait elapses.
func TestBatcherFlushesAtMaxWait(t *testing.T) {
	testutil.CheckGoroutines(t)
	run, got := collectBatches()
	b := newBatcher(100, 16, 10*time.Millisecond, run)
	b.in <- &request{}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if bs := got(); len(bs) == 1 && len(bs[0]) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("max-wait flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	b.close()
}

// TestBatcherCloseDrains: close flushes whatever is buffered — even with a
// size threshold and max-wait that would never trigger — and waits for the
// dispatched run to finish before returning.
func TestBatcherCloseDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	var mu sync.Mutex
	var seen int
	var running bool
	b := newBatcher(100, 16, time.Hour, func(batch []*request) {
		mu.Lock()
		running = true
		mu.Unlock()
		time.Sleep(20 * time.Millisecond) // close must outwait this
		mu.Lock()
		seen += len(batch)
		running = false
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		b.in <- &request{}
	}
	b.close()
	mu.Lock()
	defer mu.Unlock()
	if running {
		t.Fatal("close returned while a dispatched batch was still running")
	}
	if seen != 5 {
		t.Fatalf("drain lost requests: processed %d of 5", seen)
	}
}
