package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// collectBatches returns a run func that records every flushed batch.
func collectBatches() (func([]*request), func() [][]*request) {
	var mu sync.Mutex
	var batches [][]*request
	run := func(b []*request) {
		mu.Lock()
		defer mu.Unlock()
		batches = append(batches, b)
	}
	get := func() [][]*request {
		mu.Lock()
		defer mu.Unlock()
		out := make([][]*request, len(batches))
		copy(out, batches)
		return out
	}
	return run, get
}

// testBatcher builds a batcher the way the unit tests need it: an ample
// slot pool (the tests exercise flush shape, not slot contention) and no
// shed callback, so tenant queues are unbounded.
func testBatcher(size, depth int, maxWait time.Duration, run func([]*request)) *batcher {
	return newBatcher(batcherConfig{
		size:    size,
		depth:   depth,
		maxWait: maxWait,
		slots:   make(chan struct{}, 16),
		run:     run,
	})
}

// TestBatcherFlushesAtSize: the size threshold flushes immediately, well
// before the max-wait timer.
func TestBatcherFlushesAtSize(t *testing.T) {
	testutil.CheckGoroutines(t)
	run, got := collectBatches()
	b := testBatcher(3, 16, time.Minute, run)
	for i := 0; i < 6; i++ {
		b.in <- &request{}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if bs := got(); len(bs) == 2 && len(bs[0]) == 3 && len(bs[1]) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want two batches of 3 long before the minute timer, got %d", len(got()))
		}
		time.Sleep(time.Millisecond)
	}
	b.close()
}

// TestBatcherFlushesAtMaxWait: a lone request below the size threshold is
// flushed once its max-wait elapses.
func TestBatcherFlushesAtMaxWait(t *testing.T) {
	testutil.CheckGoroutines(t)
	run, got := collectBatches()
	b := testBatcher(100, 16, 10*time.Millisecond, run)
	b.in <- &request{}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if bs := got(); len(bs) == 1 && len(bs[0]) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("max-wait flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	b.close()
}

// TestBatcherCloseDrains: close flushes whatever is buffered — even with a
// size threshold and max-wait that would never trigger — and waits for the
// dispatched run to finish before returning.
func TestBatcherCloseDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	var mu sync.Mutex
	var seen int
	var running bool
	b := testBatcher(100, 16, time.Hour, func(batch []*request) {
		mu.Lock()
		running = true
		mu.Unlock()
		time.Sleep(20 * time.Millisecond) // close must outwait this
		mu.Lock()
		seen += len(batch)
		running = false
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		b.in <- &request{}
	}
	b.close()
	mu.Lock()
	defer mu.Unlock()
	if running {
		t.Fatal("close returned while a dispatched batch was still running")
	}
	if seen != 5 {
		t.Fatalf("drain lost requests: processed %d of 5", seen)
	}
}

// TestBatcherDrainChunks: the quit-drain path respects the size bound — a
// backlog bigger than one batch flushes as several size-bounded batches,
// never one unbounded batch (the shape the flight table never sees in
// steady state).
func TestBatcherDrainChunks(t *testing.T) {
	testutil.CheckGoroutines(t)
	run, got := collectBatches()
	b := testBatcher(4, 32, time.Hour, run)
	for i := 0; i < 10; i++ {
		b.in <- &request{}
	}
	b.close()
	total := 0
	for _, batch := range got() {
		if len(batch) > 4 {
			t.Fatalf("drain emitted a batch of %d, want ≤ size 4", len(batch))
		}
		total += len(batch)
	}
	if total != 10 {
		t.Fatalf("drain lost requests: flushed %d of 10", total)
	}
}

// TestBatcherShedsAtTenantCap: with a shed callback installed, a request
// arriving while its tenant's queue holds depth requests is shed instead of
// queued — the per-tenant cap, not a shared one.
func TestBatcherShedsAtTenantCap(t *testing.T) {
	testutil.CheckGoroutines(t)
	var mu sync.Mutex
	var shed int
	b := newBatcher(batcherConfig{
		size:    100,
		depth:   3,
		maxWait: time.Hour,
		slots:   make(chan struct{}, 1),
		shed: func(*request) {
			mu.Lock()
			shed++
			mu.Unlock()
		},
		run: func([]*request) {},
	})
	// The collector drains the channel into the tenant FIFO; with size 100
	// and maxWait an hour nothing dispatches, so pushes past depth must shed.
	for i := 0; i < 8; i++ {
		b.in <- &request{}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := shed
		mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want 5 sheds past the per-tenant cap of 3, got %d", n)
		}
		time.Sleep(time.Millisecond)
	}
	b.close()
}
