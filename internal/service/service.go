// Package service is the multi-tenant query service tier: it fronts many
// per-tenant core.Engines over one shared DB behind a stdlib net/http API,
// so the engine's paper-grade counters become measurable under real
// concurrent traffic.
//
// The request path stacks six mechanisms:
//
//  1. Admission — an API key resolves to a tenant whose engine carries
//     governor budgets (WithTupleLimit/WithMemoryBudget); a budget trip
//     surfaces as a typed *core.ResourceError the HTTP layer maps to 429.
//     In front of everything sits an optional per-tenant token bucket
//     (ratelimit.go): a tenant over its configured rate is shed at
//     submission, before its requests occupy any queue space. On top of the
//     budgets sits a CoDel-style overload controller (admission.go), one
//     instance per tenant: when a tenant's queue is persistently
//     backlogged, its requests whose sojourn exceeds the target are shed
//     with a typed 503 carrying Retry-After advice — and only that
//     tenant's.
//  2. Deadlines — every request runs under a deadline budget: the
//     operator's Config.DefaultDeadline unless the caller's context (or the
//     X-Deadline-Ms header over HTTP) already carries one. The deadline
//     propagates into the engine context, so a blown budget cancels the
//     evaluation itself, not just the response.
//  3. Batching and fair scheduling — requests flow through per-tenant FIFO
//     queues drained by a deficit-round-robin scheduler (fairsched.go) into
//     single-tenant, size-bounded batches; a batch groups identical query
//     texts so a burst pays the planner once per distinct query. Dispatch
//     is slot-gated under a bounded pool (Config.MaxConcurrent): the
//     scheduler decides who gets each slot, so under overload tenants
//     receive capacity in proportion to their weights, a flooding tenant
//     lengthens only its own queue, and overload stays observable as queue
//     sojourn instead of unbounded goroutines.
//  4. Circuit breakers — each tenant carries a breaker (breaker.go):
//     consecutive engine failures open it (fast typed 503 until a half-open
//     probe re-closes it), and repeated governor trips put the tenant in
//     degraded cache-only mode, where plan-cache warm hits still succeed.
//  5. Request-level single-flight — a flight table keyed by (tenant,
//     canonical fingerprint, catalog generation) elects one producer per
//     concurrent identical query and shares its result with every waiter,
//     the memo's election protocol lifted from subplans to requests.
//  6. Observability — every request leaves a flat timing record (queue,
//     plan, exec, flight role, rows, status), and /stats serves those
//     records next to each tenant engine's unified core.Snapshot and each
//     tenant's breaker state.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Service-level sentinel errors, surfaced by Execute and mapped to HTTP
// statuses by the handler (401 and 503 respectively).
var (
	// ErrUnknownTenant reports an API key no tenant owns.
	ErrUnknownTenant = errors.New("service: unknown API key")
	// ErrShuttingDown reports a request submitted after Shutdown began.
	ErrShuttingDown = errors.New("service: shutting down")
)

// Defaults for Config zero values.
const (
	DefaultBatchSize    = 16
	DefaultBatchMaxWait = 2 * time.Millisecond
	DefaultQueueDepth   = 256
	DefaultRecent       = 256
	// DefaultMaxConcurrent bounds concurrently executing batches. Bounded
	// execution is load-bearing for overload resilience: it is what turns
	// "too much traffic" into measurable queue sojourn the admission
	// controller can act on, instead of an unbounded goroutine pile.
	DefaultMaxConcurrent = 8
)

// Config configures a Server.
type Config struct {
	// Tenants declares the tenant registry; at least one is required.
	Tenants []TenantConfig
	// BatchSize flushes a batch when it holds this many requests
	// (DefaultBatchSize when 0).
	BatchSize int
	// BatchMaxWait flushes a non-empty batch after its oldest request has
	// waited this long (DefaultBatchMaxWait when 0).
	BatchMaxWait time.Duration
	// QueueDepth is the submission channel's buffer (DefaultQueueDepth
	// when 0): the burst the server absorbs without blocking submitters.
	QueueDepth int
	// Recent bounds the ring of per-request records /stats serves
	// (DefaultRecent when 0; negative keeps no records).
	Recent int
	// EngineOptions are base options applied to every tenant engine before
	// the tenant's budgets and extras — e.g. core.WithParallelism,
	// core.WithPlanCache.
	EngineOptions []core.Option

	// MaxConcurrent bounds concurrently executing batches
	// (DefaultMaxConcurrent when 0).
	MaxConcurrent int
	// DefaultDeadline is the server-side deadline budget applied to every
	// request whose context carries none. 0 means no server-side deadline
	// (callers may still set their own).
	DefaultDeadline time.Duration
	// ShedTarget/ShedInterval tune the CoDel admission controller
	// (DefaultShedTarget/DefaultShedInterval when 0). A negative value for
	// either disables shedding entirely.
	ShedTarget   time.Duration
	ShedInterval time.Duration
	// BreakerFailures opens a tenant's circuit breaker after this many
	// consecutive engine failures (DefaultBreakerFailures when 0); negative
	// disables the breakers entirely.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects before admitting
	// a half-open probe (DefaultBreakerCooldown when 0).
	BreakerCooldown time.Duration
	// DegradeTrips enters degraded cache-only mode after this many
	// consecutive governor trips (DefaultDegradeTrips when 0); negative
	// disables degraded mode.
	DegradeTrips int
	// DegradeWindow is how long degraded mode lasts (DefaultDegradeWindow
	// when 0).
	DegradeWindow time.Duration
	// Faults is an optional deterministic fault-injection plan consulted at
	// the service-level points (faultinject.ServicePoints). It exists for
	// resilience tests and the queryload harness; production servers never
	// install one.
	Faults *faultinject.Plan
}

// request is one query travelling through the pipeline.
type request struct {
	ctx      context.Context
	tenant   *tenant
	query    string
	enqueued time.Time
	// deadlineMS is the request's remaining deadline budget at admission,
	// in milliseconds (0 when the request runs unbounded).
	deadlineMS int64
	resp       chan *Outcome // buffered: the pipeline never blocks on delivery
}

// Outcome is the service-level result of one request: the engine result
// (nil on failure), the classified error (nil on success), and the flat
// record the metrics layer kept.
type Outcome struct {
	Result *core.Result
	Err    error
	Record Record
}

// Server is the multi-tenant query service.
type Server struct {
	db      *core.DB
	reg     *registry
	flights *flightTable
	batch   *batcher
	metrics *metrics

	// admits holds one CoDel overload controller per tenant name (nil when
	// shedding is disabled), so one tenant's standing queue sheds only that
	// tenant; shedTarget/shedInterval are the resolved tuning, kept for
	// queue-full retry advice even when dequeue shedding is off.
	admits       map[string]*codel
	shedTarget   time.Duration
	shedInterval time.Duration
	// buckets holds one token bucket per rate-limited tenant name (absent =
	// unbounded). Immutable after NewServer.
	buckets map[string]*tokenBucket
	// slots bounds concurrently executing batches.
	slots chan struct{}
	// deadline is the server-side default deadline budget (0 = none).
	deadline time.Duration
	// breakers holds one circuit breaker per tenant name (nil when
	// breakers are disabled). The map is immutable after NewServer.
	breakers map[string]*breaker
	// faults is the optional service-level fault plan (nil in production).
	faults *faultinject.Plan

	// closeMu orders submissions against Shutdown: submit holds the read
	// side across the closing check and the channel send, so once Shutdown
	// holds the write side, no request can slip into the batcher unseen by
	// the drain.
	closeMu sync.RWMutex
	closing bool
}

// NewServer builds the service over db: one engine per tenant, the flight
// table, the batcher, and the metrics layer.
func NewServer(db *core.DB, cfg Config) (*Server, error) {
	reg, err := newRegistry(db, cfg.EngineOptions, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	size := cfg.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	maxWait := cfg.BatchMaxWait
	if maxWait <= 0 {
		maxWait = DefaultBatchMaxWait
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	recent := cfg.Recent
	if recent == 0 {
		recent = DefaultRecent
	}
	if recent < 0 {
		recent = 0
	}
	maxConc := cfg.MaxConcurrent
	if maxConc <= 0 {
		maxConc = DefaultMaxConcurrent
	}
	target := cfg.ShedTarget
	if target == 0 {
		target = DefaultShedTarget
	}
	interval := cfg.ShedInterval
	if interval == 0 {
		interval = DefaultShedInterval
	}
	shedding := target > 0 && interval > 0
	if target < 0 {
		target = DefaultShedTarget
	}
	if interval < 0 {
		interval = DefaultShedInterval
	}
	deadline := cfg.DefaultDeadline
	if deadline < 0 {
		deadline = 0
	}
	s := &Server{
		db:           db,
		reg:          reg,
		flights:      newFlightTable(),
		metrics:      newMetrics(recent),
		shedTarget:   target,
		shedInterval: interval,
		slots:        make(chan struct{}, maxConc),
		deadline:     deadline,
		faults:       cfg.Faults,
	}
	if shedding {
		s.admits = make(map[string]*codel, len(reg.names))
		for _, name := range reg.names {
			s.admits[name] = newCodel(target, interval)
		}
	}
	weights := make(map[string]int, len(reg.names))
	for _, name := range reg.names {
		tc := reg.byName[name].cfg
		if tc.Weight > 1 {
			weights[name] = tc.Weight
		}
		if tc.RatePerSec > 0 {
			if s.buckets == nil {
				s.buckets = make(map[string]*tokenBucket)
			}
			s.buckets[name] = newTokenBucket(tc.RatePerSec)
		}
	}
	if cfg.BreakerFailures >= 0 {
		bcfg := breakerConfig{
			failThreshold: cfg.BreakerFailures,
			cooldown:      cfg.BreakerCooldown,
			tripThreshold: cfg.DegradeTrips,
			degradeWindow: cfg.DegradeWindow,
		}
		if bcfg.failThreshold == 0 {
			bcfg.failThreshold = DefaultBreakerFailures
		}
		if bcfg.cooldown <= 0 {
			bcfg.cooldown = DefaultBreakerCooldown
		}
		if bcfg.tripThreshold == 0 {
			bcfg.tripThreshold = DefaultDegradeTrips
		}
		if bcfg.degradeWindow <= 0 {
			bcfg.degradeWindow = DefaultDegradeWindow
		}
		s.breakers = make(map[string]*breaker, len(reg.names))
		for _, name := range reg.names {
			s.breakers[name] = newBreaker(bcfg)
		}
	}
	s.batch = newBatcher(batcherConfig{
		size:    size,
		depth:   depth,
		maxWait: maxWait,
		slots:   s.slots,
		weights: weights,
		shed:    s.shedPending,
		run:     s.processBatch,
	})
	return s, nil
}

// shedPending rejects a request whose tenant's pending queue is at its cap:
// the per-tenant counterpart of the submit-side entry shed. Called by the
// batcher's collector, so the request was already accepted into the channel
// and its caller is waiting — answer it through finish like any other.
func (s *Server) shedPending(r *request) {
	err := queueFullError(s.shedTarget, s.shedInterval)
	s.finish(r, time.Now(), nil, err, Record{Tenant: r.tenant.cfg.Name})
}

// invokePoint consults the service-level fault plan at point, converting an
// injected panic into an error: a service fault must degrade the request,
// never kill a server goroutine.
func (s *Server) invokePoint(point string) (err error) {
	if s.faults == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: injected panic at %s: %v", point, r)
		}
	}()
	return s.faults.Invoke(point)
}

// Execute runs one query for the tenant owning apiKey, riding the batcher
// and the flight table. It returns the outcome (which carries the per-
// request record) and the classified error; submission-level failures
// (unknown key, shutdown, caller cancellation while queued) return a nil
// outcome.
func (s *Server) Execute(ctx context.Context, apiKey, query string) (*Outcome, error) {
	ten, ok := s.reg.lookup(apiKey)
	if !ok {
		s.metrics.noteAuthFailure()
		return nil, ErrUnknownTenant
	}
	if err := s.invokePoint(faultinject.PointServiceAdmission); err != nil {
		return nil, &core.ExecError{Stage: "service.admission", Err: err}
	}
	// Deadline budget: respect a caller-supplied deadline, otherwise apply
	// the server default so no request runs unbounded. The derived context
	// propagates into the engine, so a blown budget cancels the evaluation.
	if _, has := ctx.Deadline(); !has && s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}
	r := &request{ctx: ctx, tenant: ten, query: query, enqueued: time.Now(), resp: make(chan *Outcome, 1)}
	if dl, ok := ctx.Deadline(); ok {
		r.deadlineMS = time.Until(dl).Milliseconds()
	}
	if err := s.submit(r); err != nil {
		return nil, err
	}
	select {
	case out := <-r.resp:
		return out, out.Err
	case <-ctx.Done():
		// The pipeline will still answer into the buffered channel; nothing
		// blocks on this caller again.
		return nil, ctx.Err()
	}
}

// submit hands a request to the batcher unless the server is closing. Two
// sheds can happen before the queue: the tenant's token bucket (the cheapest
// rejection — the request never existed as far as the scheduler knows), and
// a full submission channel when shedding is enabled — blocking the
// submitter would hide the overload from both the client and the
// controller. Per-tenant pending caps shed a third way, from the batcher's
// collector (shedPending), so one tenant filling its queue cannot trigger
// entry sheds for the others.
func (s *Server) submit(r *request) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing {
		return ErrShuttingDown
	}
	if tb := s.buckets[r.tenant.cfg.Name]; tb != nil {
		if ok, wait := tb.take(time.Now()); !ok {
			return s.noteEntryShed(r, rateLimitError(r.tenant.cfg.Name, wait))
		}
	}
	if s.admits == nil {
		s.batch.in <- r
		return nil
	}
	select {
	case s.batch.in <- r:
		return nil
	default:
	}
	return s.noteEntryShed(r, queueFullError(s.shedTarget, s.shedInterval))
}

// noteEntryShed records a submission-time shed (the request never queued)
// and returns its error for the caller to propagate.
func (s *Server) noteEntryShed(r *request, err *ShedError) error {
	rec := Record{Tenant: r.tenant.cfg.Name, DeadlineMS: r.deadlineMS, Status: statusOf(err), Err: err.Error()}
	s.metrics.note(rec, err)
	return err
}

// Shutdown drains the service: new submissions are rejected with
// ErrShuttingDown, everything already accepted is answered, and the batcher
// stops. It returns ctx's error if the drain outlives the deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeMu.Lock()
	already := s.closing
	s.closing = true
	s.closeMu.Unlock()
	if !already {
		go s.batch.close()
	}
	select {
	case <-s.batch.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StatsReport is the /stats payload: service-level counters, per-tenant
// request counters (the fairness ledger), one unified core.Snapshot and one
// circuit-breaker status per tenant, and the recent per-request records.
type StatsReport struct {
	Service   ServiceCounters           `json:"service"`
	PerTenant map[string]TenantCounters `json:"per_tenant"`
	Tenants   map[string]core.Snapshot  `json:"tenants"`
	Breakers  map[string]BreakerStatus  `json:"breakers,omitempty"`
	Recent    []Record                  `json:"recent"`
}

// Stats assembles the current report.
func (s *Server) Stats() StatsReport {
	tenants := make(map[string]core.Snapshot, len(s.reg.names))
	for _, name := range s.reg.names {
		tenants[name] = s.reg.byName[name].eng.Snapshot()
	}
	var breakers map[string]BreakerStatus
	if s.breakers != nil {
		now := time.Now()
		breakers = make(map[string]BreakerStatus, len(s.breakers))
		for name, br := range s.breakers {
			breakers[name] = br.status(now)
		}
	}
	svc, perTenant, recent := s.metrics.snapshot()
	return StatsReport{Service: svc, PerTenant: perTenant, Tenants: tenants, Breakers: breakers, Recent: recent}
}

// processBatch handles one dispatched batch — single-tenant by
// construction, the scheduler never mixes queues. The collector already
// holds this batch's execution slot (the wait for it is the queue sojourn
// the tenant's controller judges), so the work here is: judge each member's
// sojourn against the tenant's own CoDel instance, then group the admitted
// requests by identical query text and evaluate every group concurrently.
// The batch goroutine waits for its groups, so the batcher's drain covers
// every response.
func (s *Server) processBatch(batch []*request) {
	s.metrics.noteBatch(len(batch))
	if err := s.invokePoint(faultinject.PointServiceBatcher); err != nil {
		werr := &core.ExecError{Stage: "service.batcher", Err: err}
		now := time.Now()
		for _, r := range batch {
			s.finish(r, now, nil, werr, Record{Tenant: r.tenant.cfg.Name, Batch: len(batch)})
		}
		return
	}
	admit := s.admits[batch[0].tenant.cfg.Name] // nil when shedding is disabled
	now := time.Now()
	admitted := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			// Dead on arrival: the caller's context (deadline or
			// cancellation) expired while the request sat in the queue.
			s.finish(r, now, nil, r.ctx.Err(), Record{Tenant: r.tenant.cfg.Name, Batch: len(batch)})
			continue
		}
		if admit != nil {
			sojourn := now.Sub(r.enqueued)
			if shed, retry := admit.onDequeue(now, sojourn); shed {
				s.finish(r, now, nil, shedError(sojourn, admit.target, retry), Record{Tenant: r.tenant.cfg.Name, Batch: len(batch)})
				continue
			}
		}
		admitted = append(admitted, r)
	}
	if len(admitted) == 0 {
		return
	}
	groups := make(map[string][]*request)
	for _, r := range admitted {
		groups[r.query] = append(groups[r.query], r)
	}
	var wg sync.WaitGroup
	for _, reqs := range groups {
		wg.Add(1)
		go func(reqs []*request) {
			defer wg.Done()
			s.processGroup(reqs, len(admitted))
		}(reqs)
	}
	wg.Wait()
}

// processGroup evaluates one batch group — identical requests of one
// tenant. The group first passes the tenant's circuit breaker (rejection
// answers every member with a typed 503; degraded mode runs the evaluation
// cache-only), then prepares once and resolves through the flight table as
// a single unit: its leader is the candidate producer, and every other
// member shares whatever the leader's flight resolves to. If the leader
// dies of its own cancellation, leadership passes to the next member —
// the batch-local mirror of the flight table's re-election. The breaker
// observes the group's resolution exactly once: one evaluation unit is one
// verdict, no matter how many requests rode it.
func (s *Server) processGroup(reqs []*request, batchSize int) {
	ten := reqs[0].tenant
	dispatched := time.Now()
	base := Record{Tenant: ten.cfg.Name, Batch: batchSize}
	br := s.breakers[ten.cfg.Name] // nil when breakers are disabled
	var dec breakerDecision
	if br != nil {
		var tr breakerTransitions
		dec, tr = br.allow(dispatched)
		s.metrics.noteBreaker(tr)
		if !dec.admit {
			err := breakerOpenError(ten.cfg.Name, dec.retryAfter)
			for _, r := range reqs {
				s.finish(r, dispatched, nil, err, base)
			}
			return
		}
		base.Degraded = dec.degraded
	}
	// observe reports the group's verdict to the breaker exactly once; the
	// deferred call covers every exit path, which matters for a half-open
	// probe — a probe that never reports would wedge the breaker.
	observed := false
	observe := func(out groupOutcome) {
		if br == nil || observed {
			return
		}
		observed = true
		s.metrics.noteBreaker(br.observe(time.Now(), out, dec.probe))
	}
	defer observe(outcomeNeutral)
	if ferr := s.invokePoint(faultinject.PointServiceFlight); ferr != nil {
		werr := &core.ExecError{Stage: "service.flight", Err: ferr}
		observe(outcomeFailure)
		for _, r := range reqs {
			s.finish(r, dispatched, nil, werr, base)
		}
		return
	}
	p, err := ten.eng.Prepare(reqs[0].query)
	base.PlanUS = time.Since(dispatched).Microseconds()
	if err != nil {
		// Prepare failures are client mistakes (parse/safety/plan): neutral
		// for the breaker.
		observe(outcomeNeutral)
		for _, r := range reqs {
			s.finish(r, dispatched, nil, err, base)
		}
		return
	}
	fp := fingerprint(ten.cfg.Name, p.Canonical.String())
	base.Fingerprint = fmt.Sprintf("%016x", fp)
	key := flightKey{tenant: ten.cfg.Name, fp: fp, gen: s.db.Catalog().Generation()}
	for len(reqs) > 0 {
		leader := reqs[0]
		rctx := leader.ctx
		if dec.degraded {
			rctx = core.WithCacheOnly(rctx)
		}
		execStart := time.Now()
		res, err, out := s.flights.do(leader.ctx, key, func() (*core.Result, error) {
			return ten.eng.RunContext(rctx, p)
		})
		execDur := time.Since(execStart)
		rec := base
		rec.Flight = out.Role
		rec.FlightWaits = out.Waits
		rec.ExecUS = execDur.Microseconds()
		rec.ExecNS = execDur.Nanoseconds()
		if err != nil && leader.ctx.Err() != nil {
			// The leader's own context killed its flight (as producer the
			// entry was abandoned; as waiter the wait was cut short). Answer
			// the leader and hand leadership to the next member. A blown
			// deadline budget is a breaker failure — the evaluation was too
			// slow — while a caller hanging up proves nothing.
			if errors.Is(leader.ctx.Err(), context.DeadlineExceeded) {
				observe(outcomeFailure)
			}
			s.finish(leader, dispatched, nil, err, rec)
			reqs = reqs[1:]
			continue
		}
		observe(breakerOutcome(err))
		for i, r := range reqs {
			mrec := rec
			if i > 0 {
				// Only the leader carries the election; the rest of the
				// group rode its flight by construction.
				mrec.Flight = flightShare
				mrec.FlightWaits = 0
			}
			s.finish(r, dispatched, res, err, mrec)
		}
		return
	}
}

// breakerOutcome classifies one group resolution for the breaker: engine
// failures and deadline blowouts are failures, governor budget trips feed
// the degraded-mode counter, and client mistakes (parse/safety/plan),
// cancellations and degraded rejections prove nothing about the engine.
func breakerOutcome(err error) groupOutcome {
	if err == nil {
		return outcomeOK
	}
	var re *core.ResourceError
	if errors.As(err, &re) {
		return outcomeTrip
	}
	var ee *core.ExecError
	if errors.As(err, &ee) || errors.Is(err, context.DeadlineExceeded) {
		return outcomeFailure
	}
	return outcomeNeutral
}

// finish completes one request: fills the per-request timing, folds the
// record into the metrics, and delivers the outcome.
func (s *Server) finish(r *request, dispatched time.Time, res *core.Result, err error, rec Record) {
	rec.QueueWaitUS = dispatched.Sub(r.enqueued).Microseconds()
	rec.QueueNS = dispatched.Sub(r.enqueued).Nanoseconds()
	rec.TotalUS = time.Since(r.enqueued).Microseconds()
	rec.DeadlineMS = r.deadlineMS
	rec.Status = statusOf(err)
	if err != nil {
		rec.Err = err.Error()
	}
	if res != nil {
		rec.CacheHit = res.Stats.CacheHits > 0 || res.Stats.CacheTuplesReplayed > 0
		if res.Open && res.Rows != nil {
			rec.Rows = res.Rows.Len()
		}
	}
	s.metrics.note(rec, err)
	r.resp <- &Outcome{Result: res, Err: err, Record: rec}
}

// fingerprint hashes (tenant, canonical query) into the flight key. The
// canonical form — not the raw text — is the identity, so whitespace or
// bound-variable renamings collapse into one flight.
func fingerprint(tenant, canonical string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return h.Sum64()
}
