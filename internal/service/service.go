// Package service is the multi-tenant query service tier: it fronts many
// per-tenant core.Engines over one shared DB behind a stdlib net/http API,
// so the engine's paper-grade counters become measurable under real
// concurrent traffic.
//
// The request path stacks four mechanisms:
//
//  1. Admission — an API key resolves to a tenant whose engine carries
//     governor budgets (WithTupleLimit/WithMemoryBudget); a budget trip
//     surfaces as a typed *core.ResourceError the HTTP layer maps to 429.
//  2. Batching — requests flow through a channel-based batcher with a
//     max-wait flush; a batch groups identical (tenant, query) texts so a
//     burst pays the planner once per distinct query.
//  3. Request-level single-flight — a flight table keyed by (tenant,
//     canonical fingerprint, catalog generation) elects one producer per
//     concurrent identical query and shares its result with every waiter,
//     the memo's election protocol lifted from subplans to requests.
//  4. Observability — every request leaves a flat timing record (queue,
//     plan, exec, flight role, rows, status), and /stats serves those
//     records next to each tenant engine's unified core.Snapshot.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/core"
)

// Service-level sentinel errors, surfaced by Execute and mapped to HTTP
// statuses by the handler (401 and 503 respectively).
var (
	// ErrUnknownTenant reports an API key no tenant owns.
	ErrUnknownTenant = errors.New("service: unknown API key")
	// ErrShuttingDown reports a request submitted after Shutdown began.
	ErrShuttingDown = errors.New("service: shutting down")
)

// Defaults for Config zero values.
const (
	DefaultBatchSize    = 16
	DefaultBatchMaxWait = 2 * time.Millisecond
	DefaultQueueDepth   = 256
	DefaultRecent       = 256
)

// Config configures a Server.
type Config struct {
	// Tenants declares the tenant registry; at least one is required.
	Tenants []TenantConfig
	// BatchSize flushes a batch when it holds this many requests
	// (DefaultBatchSize when 0).
	BatchSize int
	// BatchMaxWait flushes a non-empty batch after its oldest request has
	// waited this long (DefaultBatchMaxWait when 0).
	BatchMaxWait time.Duration
	// QueueDepth is the submission channel's buffer (DefaultQueueDepth
	// when 0): the burst the server absorbs without blocking submitters.
	QueueDepth int
	// Recent bounds the ring of per-request records /stats serves
	// (DefaultRecent when 0; negative keeps no records).
	Recent int
	// EngineOptions are base options applied to every tenant engine before
	// the tenant's budgets and extras — e.g. core.WithParallelism,
	// core.WithPlanCache.
	EngineOptions []core.Option
}

// request is one query travelling through the pipeline.
type request struct {
	ctx      context.Context
	tenant   *tenant
	query    string
	enqueued time.Time
	resp     chan *Outcome // buffered: the pipeline never blocks on delivery
}

// Outcome is the service-level result of one request: the engine result
// (nil on failure), the classified error (nil on success), and the flat
// record the metrics layer kept.
type Outcome struct {
	Result *core.Result
	Err    error
	Record Record
}

// Server is the multi-tenant query service.
type Server struct {
	db      *core.DB
	reg     *registry
	flights *flightTable
	batch   *batcher
	metrics *metrics

	// closeMu orders submissions against Shutdown: submit holds the read
	// side across the closing check and the channel send, so once Shutdown
	// holds the write side, no request can slip into the batcher unseen by
	// the drain.
	closeMu sync.RWMutex
	closing bool
}

// NewServer builds the service over db: one engine per tenant, the flight
// table, the batcher, and the metrics layer.
func NewServer(db *core.DB, cfg Config) (*Server, error) {
	reg, err := newRegistry(db, cfg.EngineOptions, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	size := cfg.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	maxWait := cfg.BatchMaxWait
	if maxWait <= 0 {
		maxWait = DefaultBatchMaxWait
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	recent := cfg.Recent
	if recent == 0 {
		recent = DefaultRecent
	}
	if recent < 0 {
		recent = 0
	}
	s := &Server{
		db:      db,
		reg:     reg,
		flights: newFlightTable(),
		metrics: newMetrics(recent),
	}
	s.batch = newBatcher(size, depth, maxWait, s.processBatch)
	return s, nil
}

// Execute runs one query for the tenant owning apiKey, riding the batcher
// and the flight table. It returns the outcome (which carries the per-
// request record) and the classified error; submission-level failures
// (unknown key, shutdown, caller cancellation while queued) return a nil
// outcome.
func (s *Server) Execute(ctx context.Context, apiKey, query string) (*Outcome, error) {
	ten, ok := s.reg.lookup(apiKey)
	if !ok {
		s.metrics.noteAuthFailure()
		return nil, ErrUnknownTenant
	}
	r := &request{ctx: ctx, tenant: ten, query: query, enqueued: time.Now(), resp: make(chan *Outcome, 1)}
	if err := s.submit(r); err != nil {
		return nil, err
	}
	select {
	case out := <-r.resp:
		return out, out.Err
	case <-ctx.Done():
		// The pipeline will still answer into the buffered channel; nothing
		// blocks on this caller again.
		return nil, ctx.Err()
	}
}

// submit hands a request to the batcher unless the server is closing.
func (s *Server) submit(r *request) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing {
		return ErrShuttingDown
	}
	s.batch.in <- r
	return nil
}

// Shutdown drains the service: new submissions are rejected with
// ErrShuttingDown, everything already accepted is answered, and the batcher
// stops. It returns ctx's error if the drain outlives the deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeMu.Lock()
	already := s.closing
	s.closing = true
	s.closeMu.Unlock()
	if !already {
		go s.batch.close()
	}
	select {
	case <-s.batch.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StatsReport is the /stats payload: service-level counters, one unified
// core.Snapshot per tenant, and the recent per-request records.
type StatsReport struct {
	Service ServiceCounters          `json:"service"`
	Tenants map[string]core.Snapshot `json:"tenants"`
	Recent  []Record                 `json:"recent"`
}

// Stats assembles the current report.
func (s *Server) Stats() StatsReport {
	tenants := make(map[string]core.Snapshot, len(s.reg.names))
	for _, name := range s.reg.names {
		tenants[name] = s.reg.byName[name].eng.Snapshot()
	}
	svc, recent := s.metrics.snapshot()
	return StatsReport{Service: svc, Tenants: tenants, Recent: recent}
}

// processBatch handles one flushed batch: group identical (tenant, query)
// texts, then evaluate every group concurrently. The batch goroutine waits
// for its groups, so the batcher's drain covers every response.
func (s *Server) processBatch(batch []*request) {
	s.metrics.noteBatch(len(batch))
	type groupKey struct{ tenant, query string }
	groups := make(map[groupKey][]*request)
	for _, r := range batch {
		k := groupKey{r.tenant.cfg.Name, r.query}
		groups[k] = append(groups[k], r)
	}
	var wg sync.WaitGroup
	for _, reqs := range groups {
		wg.Add(1)
		go func(reqs []*request) {
			defer wg.Done()
			s.processGroup(reqs, len(batch))
		}(reqs)
	}
	wg.Wait()
}

// processGroup evaluates one batch group — identical requests of one
// tenant. The group prepares once, then resolves through the flight table
// as a single unit: its leader is the candidate producer, and every other
// member shares whatever the leader's flight resolves to. If the leader
// dies of its own cancellation, leadership passes to the next member —
// the batch-local mirror of the flight table's re-election.
func (s *Server) processGroup(reqs []*request, batchSize int) {
	ten := reqs[0].tenant
	dispatched := time.Now()
	base := Record{Tenant: ten.cfg.Name, Batch: batchSize}
	p, err := ten.eng.Prepare(reqs[0].query)
	base.PlanUS = time.Since(dispatched).Microseconds()
	if err != nil {
		for _, r := range reqs {
			s.finish(r, dispatched, nil, err, base)
		}
		return
	}
	fp := fingerprint(ten.cfg.Name, p.Canonical.String())
	base.Fingerprint = fmt.Sprintf("%016x", fp)
	key := flightKey{tenant: ten.cfg.Name, fp: fp, gen: s.db.Catalog().Generation()}
	for len(reqs) > 0 {
		leader := reqs[0]
		execStart := time.Now()
		res, err, out := s.flights.do(leader.ctx, key, func() (*core.Result, error) {
			return ten.eng.RunContext(leader.ctx, p)
		})
		execDur := time.Since(execStart)
		rec := base
		rec.Flight = out.Role
		rec.FlightWaits = out.Waits
		rec.ExecUS = execDur.Microseconds()
		if err != nil && leader.ctx.Err() != nil {
			// The leader's own context killed its flight (as producer the
			// entry was abandoned; as waiter the wait was cut short). Answer
			// the leader and hand leadership to the next member.
			s.finish(leader, dispatched, nil, err, rec)
			reqs = reqs[1:]
			continue
		}
		for i, r := range reqs {
			mrec := rec
			if i > 0 {
				// Only the leader carries the election; the rest of the
				// group rode its flight by construction.
				mrec.Flight = flightShare
				mrec.FlightWaits = 0
			}
			s.finish(r, dispatched, res, err, mrec)
		}
		return
	}
}

// finish completes one request: fills the per-request timing, folds the
// record into the metrics, and delivers the outcome.
func (s *Server) finish(r *request, dispatched time.Time, res *core.Result, err error, rec Record) {
	rec.QueueWaitUS = dispatched.Sub(r.enqueued).Microseconds()
	rec.TotalUS = time.Since(r.enqueued).Microseconds()
	rec.Status = statusOf(err)
	if err != nil {
		rec.Err = err.Error()
	}
	if res != nil {
		rec.CacheHit = res.Stats.CacheHits > 0 || res.Stats.CacheTuplesReplayed > 0
		if res.Open && res.Rows != nil {
			rec.Rows = res.Rows.Len()
		}
	}
	s.metrics.note(rec)
	r.resp <- &Outcome{Result: res, Err: err, Record: rec}
}

// fingerprint hashes (tenant, canonical query) into the flight key. The
// canonical form — not the raw text — is the identity, so whitespace or
// bound-variable renamings collapse into one flight.
func fingerprint(tenant, canonical string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return h.Sum64()
}
