package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedService returns a test server that answers each POST /query from
// the script in order (repeating the last entry when exhausted) and counts
// the requests it saw.
func scriptedService(t *testing.T, script []func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n >= len(script) {
			n = len(script) - 1
		}
		script[n](w)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func respondError(status int, d ErrorDetail, retryAfterHeader string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfterHeader != "" {
			w.Header().Set("Retry-After", retryAfterHeader)
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(errorBody{d})
	}
}

func respondOK(w http.ResponseWriter) {
	truth := true
	json.NewEncoder(w).Encode(QueryResponse{Tenant: "acme", Truth: &truth})
}

// TestClientRetriesOverloadRejections pins the happy retry path: two shed
// 503s with millisecond advice, then success. The client retries exactly
// twice, honoring the body's retry_after_ms over the header's whole seconds.
func TestClientRetriesOverloadRejections(t *testing.T) {
	shed := ErrorDetail{Kind: "shed", Message: "overloaded", RetryAfterMS: 5}
	srv, calls := scriptedService(t, []func(http.ResponseWriter){
		respondError(503, shed, "1"),
		respondError(503, shed, "1"),
		respondOK,
	})
	c := &Client{Base: srv.URL, APIKey: "k", BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	start := time.Now()
	qr, err := c.Query(context.Background(), "q")
	if err != nil {
		t.Fatalf("third attempt must succeed: %v", err)
	}
	if qr.Truth == nil || !*qr.Truth {
		t.Fatalf("success body lost: %+v", qr)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if c.RetryCount() != 2 {
		t.Fatalf("client counted %d retries, want 2", c.RetryCount())
	}
	// The body said 5ms; the header said 1s. Honoring the finer advice keeps
	// the total well under a second.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("client waited %v — it used the header's seconds, not the body's ms", elapsed)
	}
}

// TestClientDoesNotRetryDeterministicFailures pins the discipline's other
// half: non-overload statuses and degraded 503s fail on the first attempt.
func TestClientDoesNotRetryDeterministicFailures(t *testing.T) {
	cases := []struct {
		name   string
		status int
		detail ErrorDetail
	}{
		{"degraded-503", 503, ErrorDetail{Kind: "degraded", Message: "cold plan"}},
		{"resource-429", 429, ErrorDetail{Kind: "resource", Message: "budget"}},
		{"parse-400", 400, ErrorDetail{Kind: "parse", Message: "bad query"}},
		{"timeout-504", 504, ErrorDetail{Kind: "timeout", Message: "budget spent"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, calls := scriptedService(t, []func(http.ResponseWriter){
				respondError(tc.status, tc.detail, ""),
				respondOK, // must never be reached
			})
			c := &Client{Base: srv.URL, BaseBackoff: time.Millisecond}
			_, err := c.Query(context.Background(), "q")
			var re *RemoteError
			if !errors.As(err, &re) || re.Status != tc.status || re.Detail.Kind != tc.detail.Kind {
				t.Fatalf("want typed %d/%s, got %v", tc.status, tc.detail.Kind, err)
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("deterministic failure retried: server saw %d calls", got)
			}
		})
	}
}

// TestClientNeverRetriesPastDeadline pins the budget rule: when the server's
// advice outlives the caller's remaining deadline, the client returns the
// last response instead of scheduling a doomed retry.
func TestClientNeverRetriesPastDeadline(t *testing.T) {
	shed := ErrorDetail{Kind: "shed", Message: "overloaded", RetryAfterMS: 60_000}
	srv, calls := scriptedService(t, []func(http.ResponseWriter){
		respondError(503, shed, strconv.Itoa(60)),
	})
	c := &Client{Base: srv.URL, BaseBackoff: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, "q")
	var re *RemoteError
	if !errors.As(err, &re) || re.Detail.Kind != "shed" {
		t.Fatalf("want the last shed response back, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("deadline-dead request retried: server saw %d calls", got)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("the client must fail fast, not wait out advice it cannot honor")
	}
	if c.RetryCount() != 0 {
		t.Fatalf("no retry waits should have been taken, counted %d", c.RetryCount())
	}
}

// TestClientRetriesDisabled pins MaxRetries < 0: one attempt, whatever the
// response.
func TestClientRetriesDisabled(t *testing.T) {
	srv, calls := scriptedService(t, []func(http.ResponseWriter){
		respondError(503, ErrorDetail{Kind: "shed", Message: "overloaded", RetryAfterMS: 1}, ""),
		respondOK,
	})
	c := &Client{Base: srv.URL, MaxRetries: -1}
	if _, err := c.Query(context.Background(), "q"); err == nil {
		t.Fatal("single attempt must surface the 503")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("disabled retries still retried: %d calls", got)
	}
}

// TestClientSendsDeadlineHeader pins the deadline propagation contract: a
// configured client deadline travels as X-Deadline-Ms.
func TestClientSendsDeadlineHeader(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(DeadlineHeader); h != "" {
			ms, _ := strconv.ParseInt(h, 10, 64)
			got.Store(ms)
		}
		respondOK(w)
	}))
	t.Cleanup(srv.Close)
	c := &Client{Base: srv.URL, Deadline: 1500 * time.Millisecond}
	if _, err := c.Query(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1500 {
		t.Fatalf("server saw deadline header %dms, want 1500", got.Load())
	}
}
