package service

import (
	"context"
	"sync"

	"repro/internal/core"
)

// This file lifts the memo's single-flight election one level, from shared
// subplans to whole requests: identical concurrent queries — same tenant,
// same canonical fingerprint, same catalog generation — evaluate once. The
// first arriver is elected producer and runs the engine under its own
// request context; everyone else attaches as a waiter and shares the
// producer's materialized Result (results are immutable, so sharing the
// pointer is the request-level analogue of streaming the memo spool). A
// producer that dies of its *own* cancellation abandons the entry and wakes
// the waiters, and the first to re-acquire is re-elected — exactly the
// memo's producer-death protocol. Deterministic failures (parse, safety,
// governor trips under the tenant's fixed budgets) are shared like results:
// every waiter would reproduce them, so re-evaluating would only multiply
// the cost of the failure.
//
// Entries live only while their evaluation is in flight: publication
// removes the entry, so the flight table collapses concurrency without ever
// caching — warm-result reuse stays the memo's job, one level below.

// flightKey identifies one request-level flight.
type flightKey struct {
	tenant string
	fp     uint64
	gen    int64
}

// flightRole is the disposition of one request against the flight table.
const (
	flightElect = "elect" // ran the evaluation (possibly after a re-election)
	flightShare = "share" // attached to another request's evaluation
)

// flightEntry is one in-flight evaluation. res/err/abandoned are written
// exactly once, before done is closed; waiters read them only after the
// close, so the channel provides the happens-before edge.
type flightEntry struct {
	done      chan struct{}
	res       *core.Result
	err       error
	abandoned bool
}

// flightOutcome reports how one do call resolved.
type flightOutcome struct {
	// Role is flightElect or flightShare ("" when the caller's own context
	// cancelled the wait).
	Role string
	// Waits counts the in-flight entries this call blocked on before
	// resolving (re-elections make it exceed 1).
	Waits int
}

// flightTable is the request-level single-flight map.
type flightTable struct {
	mu       sync.Mutex
	inflight map[flightKey]*flightEntry
}

func newFlightTable() *flightTable {
	return &flightTable{inflight: make(map[flightKey]*flightEntry)}
}

// do resolves one request under key: elect and run produce, or wait for the
// incumbent producer and share its outcome. ctx is the caller's request
// context; it bounds both the wait and (for the elected producer) the
// evaluation itself.
func (f *flightTable) do(ctx context.Context, key flightKey, produce func() (*core.Result, error)) (*core.Result, error, flightOutcome) {
	var out flightOutcome
	for {
		f.mu.Lock()
		e, ok := f.inflight[key]
		if !ok {
			e = &flightEntry{done: make(chan struct{})}
			f.inflight[key] = e
			f.mu.Unlock()
			out.Role = flightElect
			res, err := produce()
			abandoned := err != nil && ctx.Err() != nil
			e.res, e.err, e.abandoned = res, err, abandoned
			f.mu.Lock()
			delete(f.inflight, key)
			f.mu.Unlock()
			close(e.done)
			return res, err, out
		}
		f.mu.Unlock()
		out.Waits++
		select {
		case <-e.done:
		case <-ctx.Done():
			out.Role = ""
			return nil, ctx.Err(), out
		}
		if !e.abandoned {
			out.Role = flightShare
			return e.res, e.err, out
		}
		// The producer died of its own cancellation: loop and re-acquire.
		// The first waiter back through the lock is re-elected.
	}
}
