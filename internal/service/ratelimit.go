package service

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the per-tenant rate limit: the cheapest line of overload
// defense, sitting in front of the queue entirely. A tenant configured with
// RatePerSec r refills at r tokens/second up to a burst of one second's
// worth; a request that finds no token is shed at submission with a typed
// *ShedError before it ever occupies queue space or scheduler attention —
// the abuser pays microseconds, the queue never sees the excess. Time is an
// explicit argument so the unit tests are deterministic.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket refilling at rate requests/second with a
// one-second burst (at least one token, so rates under 1/s still admit).
func newTokenBucket(rate float64) *tokenBucket {
	burst := math.Max(rate, 1)
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take consumes one token if available. When the bucket is empty it reports
// false plus how long the caller should wait for the next token to exist —
// the retry advice the shed carries.
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
