package service

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// Record is the flat per-request timing record the /stats endpoint serves:
// one line per request with everything a latency breakdown needs — where
// the time went (queue, plan, exec), what the flight table did with the
// request, and what came back. Fields are microseconds because the E-series
// experiments report microsecond-scale effects.
type Record struct {
	Tenant      string `json:"tenant"`
	Fingerprint string `json:"fingerprint"`
	// Flight is "elect" (this request ran the evaluation), "share" (it rode
	// another request's evaluation), or "" (it failed before reaching the
	// flight table, or its own context cancelled the wait).
	Flight string `json:"flight,omitempty"`
	// FlightWaits counts in-flight entries the request blocked on
	// (re-elections push it past 1).
	FlightWaits int `json:"flight_waits,omitempty"`
	// CacheHit reports whether the evaluation was answered at least partly
	// from the engine's plan-cache memo.
	CacheHit bool `json:"cache_hit"`
	// Batch is the size of the batch the request rode in.
	Batch       int   `json:"batch"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	PlanUS      int64 `json:"plan_us"`
	ExecUS      int64 `json:"exec_us"`
	TotalUS     int64 `json:"total_us"`
	// QueueNS/ExecNS carry the queue-vs-exec attribution at nanosecond
	// grain: for sub-millisecond requests the microsecond fields round the
	// split away, and queue/exec attribution is exactly what the overload
	// analysis needs.
	QueueNS int64 `json:"queue_ns"`
	ExecNS  int64 `json:"exec_ns"`
	// DeadlineMS is the request's remaining deadline budget at admission in
	// milliseconds (0 when the request ran unbounded).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Degraded marks requests evaluated in degraded (cache-only) mode.
	Degraded bool `json:"degraded,omitempty"`
	// Rows is the answer cardinality (0 for closed queries and failures).
	Rows int `json:"rows"`
	// Status is the HTTP status the outcome maps to (200, 400, 429, ...).
	Status int    `json:"status"`
	Err    string `json:"error,omitempty"`
}

// ServiceCounters are the service-level aggregates, one step above the
// per-tenant core.Snapshots: they count requests, not engine work.
type ServiceCounters struct {
	// Requests counts every request that reached the pipeline (auth
	// failures are counted separately and never enter it).
	Requests int64 `json:"requests"`
	// Elections counts requests that ran an evaluation; SharedResults
	// counts requests answered by another request's evaluation. For any
	// window, Elections equals the engine runs of that window — the
	// reconciliation the service tests pin.
	Elections     int64 `json:"elections"`
	SharedResults int64 `json:"shared_results"`
	// Rejected counts 429 admission rejections (governor budget trips).
	Rejected int64 `json:"rejected"`
	// Errors counts requests that failed any other way (4xx/5xx except 429).
	Errors int64 `json:"errors"`
	// AuthFailures counts requests with an unknown API key.
	AuthFailures int64 `json:"auth_failures"`
	// Batches/BatchedRequests/MaxBatch describe the batcher's grouping:
	// BatchedRequests/Batches is the amortization factor.
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	MaxBatch        int64 `json:"max_batch"`
	// Sheds counts 503 rejections by the overload admission controller
	// (both CoDel dequeue sheds and full-queue entry sheds).
	Sheds int64 `json:"sheds"`
	// BreakerOpened/HalfOpened/Closed count circuit-breaker transitions
	// across all tenants; BreakerRejected counts requests an open breaker
	// answered with a fast typed 503.
	BreakerOpened     int64 `json:"breaker_opened"`
	BreakerHalfOpened int64 `json:"breaker_half_opened"`
	BreakerClosed     int64 `json:"breaker_closed"`
	BreakerRejected   int64 `json:"breaker_rejected"`
	// DegradedModeEntries counts transitions into degraded (cache-only)
	// mode; DegradedAdmitted/DegradedRejected count requests that succeeded
	// from the warm plan cache versus cold plans turned away while degraded.
	DegradedModeEntries int64 `json:"degraded_mode_entries"`
	DegradedAdmitted    int64 `json:"degraded_admitted"`
	DegradedRejected    int64 `json:"degraded_rejected"`
	// DeadlineExceeded counts requests that blew their deadline budget (504).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// metrics folds finished requests into the service counters and a bounded
// ring of recent records.
type metrics struct {
	mu     sync.Mutex
	totals ServiceCounters
	ring   []Record
	next   int
	filled bool
}

func newMetrics(recent int) *metrics {
	return &metrics{ring: make([]Record, recent)}
}

// note folds one finished request, classifying err into the resilience
// counters (the Record's Status alone cannot tell the 503 variants apart).
func (m *metrics) note(rec Record, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.Requests++
	switch rec.Flight {
	case flightElect:
		m.totals.Elections++
	case flightShare:
		m.totals.SharedResults++
	}
	switch {
	case rec.Status == 429:
		m.totals.Rejected++
	case rec.Status >= 400:
		m.totals.Errors++
	}
	var (
		shed     *ShedError
		open     *BreakerOpenError
		degraded *core.DegradedError
	)
	switch {
	case err == nil:
		if rec.Degraded {
			m.totals.DegradedAdmitted++
		}
	case errors.As(err, &shed):
		m.totals.Sheds++
	case errors.As(err, &open):
		m.totals.BreakerRejected++
	case errors.As(err, &degraded):
		m.totals.DegradedRejected++
	case errors.Is(err, context.DeadlineExceeded):
		m.totals.DeadlineExceeded++
	}
	if len(m.ring) > 0 {
		m.ring[m.next] = rec
		m.next++
		if m.next == len(m.ring) {
			m.next = 0
			m.filled = true
		}
	}
}

// noteBatch folds one flushed batch.
func (m *metrics) noteBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.Batches++
	m.totals.BatchedRequests += int64(size)
	if int64(size) > m.totals.MaxBatch {
		m.totals.MaxBatch = int64(size)
	}
}

// noteBreaker folds circuit-breaker transitions.
func (m *metrics) noteBreaker(tr breakerTransitions) {
	if !tr.opened && !tr.halfOpened && !tr.closed && !tr.degraded {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if tr.opened {
		m.totals.BreakerOpened++
	}
	if tr.halfOpened {
		m.totals.BreakerHalfOpened++
	}
	if tr.closed {
		m.totals.BreakerClosed++
	}
	if tr.degraded {
		m.totals.DegradedModeEntries++
	}
}

// noteAuthFailure folds one unknown-key rejection.
func (m *metrics) noteAuthFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.AuthFailures++
}

// snapshot returns the counters and the recent records, oldest first.
func (m *metrics) snapshot() (ServiceCounters, []Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var recent []Record
	if m.filled {
		recent = append(recent, m.ring[m.next:]...)
		recent = append(recent, m.ring[:m.next]...)
	} else {
		recent = append(recent, m.ring[:m.next]...)
	}
	return m.totals, recent
}
