package service

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// Record is the flat per-request timing record the /stats endpoint serves:
// one line per request with everything a latency breakdown needs — where
// the time went (queue, plan, exec), what the flight table did with the
// request, and what came back. Fields are microseconds because the E-series
// experiments report microsecond-scale effects.
type Record struct {
	Tenant      string `json:"tenant"`
	Fingerprint string `json:"fingerprint"`
	// Flight is "elect" (this request ran the evaluation), "share" (it rode
	// another request's evaluation), or "" (it failed before reaching the
	// flight table, or its own context cancelled the wait).
	Flight string `json:"flight,omitempty"`
	// FlightWaits counts in-flight entries the request blocked on
	// (re-elections push it past 1).
	FlightWaits int `json:"flight_waits,omitempty"`
	// CacheHit reports whether the evaluation was answered at least partly
	// from the engine's plan-cache memo.
	CacheHit bool `json:"cache_hit"`
	// Batch is the size of the batch the request rode in.
	Batch       int   `json:"batch"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	PlanUS      int64 `json:"plan_us"`
	ExecUS      int64 `json:"exec_us"`
	TotalUS     int64 `json:"total_us"`
	// QueueNS/ExecNS carry the queue-vs-exec attribution at nanosecond
	// grain: for sub-millisecond requests the microsecond fields round the
	// split away, and queue/exec attribution is exactly what the overload
	// analysis needs.
	QueueNS int64 `json:"queue_ns"`
	ExecNS  int64 `json:"exec_ns"`
	// DeadlineMS is the request's remaining deadline budget at admission in
	// milliseconds (0 when the request ran unbounded).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Degraded marks requests evaluated in degraded (cache-only) mode.
	Degraded bool `json:"degraded,omitempty"`
	// Rows is the answer cardinality (0 for closed queries and failures).
	Rows int `json:"rows"`
	// Status is the HTTP status the outcome maps to (200, 400, 429, ...).
	Status int    `json:"status"`
	Err    string `json:"error,omitempty"`
}

// ServiceCounters are the service-level aggregates, one step above the
// per-tenant core.Snapshots: they count requests, not engine work.
type ServiceCounters struct {
	// Requests counts every request that reached the pipeline (auth
	// failures are counted separately and never enter it).
	Requests int64 `json:"requests"`
	// Elections counts requests that ran an evaluation; SharedResults
	// counts requests answered by another request's evaluation. For any
	// window, Elections equals the engine runs of that window — the
	// reconciliation the service tests pin.
	Elections     int64 `json:"elections"`
	SharedResults int64 `json:"shared_results"`
	// Rejected counts 429 admission rejections (governor budget trips).
	Rejected int64 `json:"rejected"`
	// Errors counts requests that failed any other way (4xx/5xx except 429).
	Errors int64 `json:"errors"`
	// AuthFailures counts requests with an unknown API key.
	AuthFailures int64 `json:"auth_failures"`
	// Batches/BatchedRequests/MaxBatch describe the batcher's grouping:
	// BatchedRequests/Batches is the amortization factor.
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	MaxBatch        int64 `json:"max_batch"`
	// Sheds counts 503 rejections by the overload defenses: CoDel dequeue
	// sheds, full-queue entry sheds, and rate-limit sheds.
	Sheds int64 `json:"sheds"`
	// RateLimited counts the rate-limit subset of Sheds: requests a tenant's
	// token bucket turned away at submission.
	RateLimited int64 `json:"rate_limited"`
	// BreakerOpened/HalfOpened/Closed count circuit-breaker transitions
	// across all tenants; BreakerRejected counts requests an open breaker
	// answered with a fast typed 503.
	BreakerOpened     int64 `json:"breaker_opened"`
	BreakerHalfOpened int64 `json:"breaker_half_opened"`
	BreakerClosed     int64 `json:"breaker_closed"`
	BreakerRejected   int64 `json:"breaker_rejected"`
	// DegradedModeEntries counts transitions into degraded (cache-only)
	// mode; DegradedAdmitted/DegradedRejected count requests that succeeded
	// from the warm plan cache versus cold plans turned away while degraded.
	DegradedModeEntries int64 `json:"degraded_mode_entries"`
	DegradedAdmitted    int64 `json:"degraded_admitted"`
	DegradedRejected    int64 `json:"degraded_rejected"`
	// DeadlineExceeded counts requests that blew their deadline budget (504).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// TenantCounters are one tenant's request-level aggregates: the fairness
// ledger. Under overload these are what prove isolation — the flooding
// tenant's Sheds climb while a polite tenant's stay at zero.
type TenantCounters struct {
	// Requests counts every request of this tenant that reached the
	// pipeline; OK counts the 200s, Errors everything 400+.
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Errors   int64 `json:"errors"`
	// Sheds counts this tenant's 503 overload sheds across all three lines;
	// SojournSheds/QueueFullSheds/RateLimited split them by ShedError.Reason.
	Sheds          int64 `json:"sheds"`
	SojournSheds   int64 `json:"sojourn_sheds"`
	QueueFullSheds int64 `json:"queue_full_sheds"`
	RateLimited    int64 `json:"rate_limited"`
	// MaxSojournUS is the longest queue sojourn any of this tenant's
	// requests saw, in microseconds.
	MaxSojournUS int64 `json:"max_sojourn_us"`
}

// metrics folds finished requests into the service counters, per-tenant
// counters, and a bounded ring of recent records.
type metrics struct {
	mu      sync.Mutex
	totals  ServiceCounters
	tenants map[string]*TenantCounters
	ring    []Record
	next    int
	filled  bool
}

func newMetrics(recent int) *metrics {
	return &metrics{ring: make([]Record, recent), tenants: make(map[string]*TenantCounters)}
}

// note folds one finished request, classifying err into the resilience
// counters (the Record's Status alone cannot tell the 503 variants apart).
func (m *metrics) note(rec Record, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.Requests++
	switch rec.Flight {
	case flightElect:
		m.totals.Elections++
	case flightShare:
		m.totals.SharedResults++
	}
	switch {
	case rec.Status == 429:
		m.totals.Rejected++
	case rec.Status >= 400:
		m.totals.Errors++
	}
	var (
		shed     *ShedError
		open     *BreakerOpenError
		degraded *core.DegradedError
	)
	switch {
	case err == nil:
		if rec.Degraded {
			m.totals.DegradedAdmitted++
		}
	case errors.As(err, &shed):
		m.totals.Sheds++
		if shed.Reason == ShedReasonRateLimit {
			m.totals.RateLimited++
		}
	case errors.As(err, &open):
		m.totals.BreakerRejected++
	case errors.As(err, &degraded):
		m.totals.DegradedRejected++
	case errors.Is(err, context.DeadlineExceeded):
		m.totals.DeadlineExceeded++
	}
	if rec.Tenant != "" {
		tc := m.tenants[rec.Tenant]
		if tc == nil {
			tc = &TenantCounters{}
			m.tenants[rec.Tenant] = tc
		}
		tc.Requests++
		switch {
		case rec.Status == 200:
			tc.OK++
		case rec.Status >= 400:
			tc.Errors++
		}
		if shed != nil {
			tc.Sheds++
			switch shed.Reason {
			case ShedReasonSojourn:
				tc.SojournSheds++
			case ShedReasonQueueFull:
				tc.QueueFullSheds++
			case ShedReasonRateLimit:
				tc.RateLimited++
			}
		}
		if rec.QueueWaitUS > tc.MaxSojournUS {
			tc.MaxSojournUS = rec.QueueWaitUS
		}
	}
	if len(m.ring) > 0 {
		m.ring[m.next] = rec
		m.next++
		if m.next == len(m.ring) {
			m.next = 0
			m.filled = true
		}
	}
}

// noteBatch folds one flushed batch.
func (m *metrics) noteBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.Batches++
	m.totals.BatchedRequests += int64(size)
	if int64(size) > m.totals.MaxBatch {
		m.totals.MaxBatch = int64(size)
	}
}

// noteBreaker folds circuit-breaker transitions.
func (m *metrics) noteBreaker(tr breakerTransitions) {
	if !tr.opened && !tr.halfOpened && !tr.closed && !tr.degraded {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if tr.opened {
		m.totals.BreakerOpened++
	}
	if tr.halfOpened {
		m.totals.BreakerHalfOpened++
	}
	if tr.closed {
		m.totals.BreakerClosed++
	}
	if tr.degraded {
		m.totals.DegradedModeEntries++
	}
}

// noteAuthFailure folds one unknown-key rejection.
func (m *metrics) noteAuthFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totals.AuthFailures++
}

// snapshot returns the counters, the per-tenant counters (by value: the
// caller may not race the fold), and the recent records, oldest first.
func (m *metrics) snapshot() (ServiceCounters, map[string]TenantCounters, []Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	perTenant := make(map[string]TenantCounters, len(m.tenants))
	for name, tc := range m.tenants {
		perTenant[name] = *tc
	}
	var recent []Record
	if m.filled {
		recent = append(recent, m.ring[m.next:]...)
		recent = append(recent, m.ring[:m.next]...)
	} else {
		recent = append(recent, m.ring[:m.next]...)
	}
	return m.totals, perTenant, recent
}
