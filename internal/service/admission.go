package service

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the service's adaptive admission controller: a CoDel-style
// queue policy over the batcher. Every request carries its queue-entry
// timestamp; when a batch finally acquires an execution slot, each member's
// sojourn time (enqueue → slot) is shown to the controller. As long as
// sojourns return below the target within one interval the queue is judged
// "good" (a burst draining on its own) and nothing is shed. Once the
// minimum sojourn stays above the target for a full interval — the batcher
// is persistently backlogged, standing queue, not burst — the controller
// enters a shedding state and sheds requests at control-law spacing
// (interval/√n, the CoDel drop schedule), which tightens while the overload
// persists and resets the moment a sojourn dips under the target.
//
// Shedding at dequeue (not at submit) is deliberate, and it is what makes
// the policy collapse-proof: a shed request costs microseconds instead of
// an engine evaluation, so the effective service rate rises exactly when
// the queue needs it, and the sojourn of *admitted* requests stays bounded
// near the target instead of growing with the backlog. A full submission
// queue is the one place the server sheds on entry — see Server.submit.

// Admission defaults (Config zero values).
const (
	// DefaultShedTarget is the sojourn the controller tries to keep the
	// standing queue under.
	DefaultShedTarget = 20 * time.Millisecond
	// DefaultShedInterval is how long sojourns must stay above target
	// before the first shed (one RTT-ish control interval).
	DefaultShedInterval = 200 * time.Millisecond
	// DefaultDeadlineBudget is the server-side deadline every request gets
	// when the operator configures none explicitly (queryd -default-deadline
	// overrides it; a client's X-Deadline-Ms header overrides per request).
	DefaultDeadlineBudget = 2 * time.Second
)

// Shed reasons: the ShedError.Reason (and wire `reason`) values that tell a
// client which defense line rejected it.
const (
	// ShedReasonSojourn: the tenant's queue sojourn stayed above target and
	// its CoDel controller shed this request at dequeue.
	ShedReasonSojourn = "sojourn"
	// ShedReasonQueueFull: the tenant's pending queue (or the submission
	// channel) was at capacity, so the request was shed at entry.
	ShedReasonQueueFull = "queue-full"
	// ShedReasonRateLimit: the tenant's token bucket was empty; the request
	// was shed at submission before it ever queued.
	ShedReasonRateLimit = "rate-limit"
)

// ShedError reports a request shed by the overload defenses before the
// engine ever saw it: the tenant's CoDel controller judged its queue sojourn
// (Reason "sojourn"), its pending queue or the submission channel was full
// (Reason "queue-full"), or its token bucket was empty (Reason
// "rate-limit"). All three are fast, typed rejections carrying advice on
// when to retry; the HTTP layer maps them to 503 with a Retry-After header.
type ShedError struct {
	// Reason is one of the ShedReason* values.
	Reason string
	// Sojourn is how long the request sat in the queue before being shed
	// (0 for entry sheds — the request never queued).
	Sojourn time.Duration
	// Target is the controller's sojourn target (sojourn sheds only).
	Target time.Duration
	// RetryAfter is the controller's backoff advice.
	RetryAfter time.Duration
	Err        error
}

func (e *ShedError) Error() string { return e.Err.Error() }
func (e *ShedError) Unwrap() error { return e.Err }

// shedError builds the dequeue-shed variant: the tenant's controller judged
// the sojourn.
func shedError(sojourn, target, retryAfter time.Duration) *ShedError {
	return &ShedError{
		Reason:     ShedReasonSojourn,
		Sojourn:    sojourn,
		Target:     target,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: overloaded — request shed after %v in queue (target %v), retry in %v",
			sojourn.Round(time.Millisecond), target, retryAfter.Round(time.Millisecond)),
	}
}

// queueFullError builds the entry-shed variant: the tenant's pending queue
// or the submission channel was full, so the request never entered it.
func queueFullError(target, retryAfter time.Duration) *ShedError {
	return &ShedError{
		Reason:     ShedReasonQueueFull,
		Target:     target,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: overloaded — submission queue full, retry in %v",
			retryAfter.Round(time.Millisecond)),
	}
}

// rateLimitError builds the rate-limit shed: the tenant spent its token
// bucket, and the advice is when the next token exists.
func rateLimitError(tenant string, retryAfter time.Duration) *ShedError {
	if retryAfter <= 0 {
		retryAfter = time.Millisecond
	}
	return &ShedError{
		Reason:     ShedReasonRateLimit,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: tenant %q over its request rate limit, retry in %v",
			tenant, retryAfter.Round(time.Millisecond)),
	}
}

// codel is the controller state. One instance guards the server's single
// batcher queue; onDequeue is called once per request at slot acquisition.
type codel struct {
	target   time.Duration
	interval time.Duration

	mu sync.Mutex
	// firstAbove is when the current above-target episode will have lasted
	// one full interval (zero when sojourns are below target).
	firstAbove time.Time
	// shedding is true while the control law is active.
	shedding bool
	// shedNext is the next scheduled shed while shedding.
	shedNext time.Time
	// shedCount spaces successive sheds at interval/√shedCount.
	shedCount int
}

func newCodel(target, interval time.Duration) *codel {
	return &codel{target: target, interval: interval}
}

// onDequeue judges one request as it leaves the queue: returns whether to
// shed it and, if so, the retry-after advice. The logic is CoDel's: track
// the time the minimum sojourn has been above target; begin shedding after
// one full interval above; then shed on the interval/√n schedule until a
// sojourn under target proves the standing queue is gone.
func (c *codel) onDequeue(now time.Time, sojourn time.Duration) (bool, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sojourn < c.target {
		// Queue is healthy here; the episode (and any shedding) ends.
		c.firstAbove = time.Time{}
		c.shedding = false
		c.shedCount = 0
		return false, 0
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.interval)
		return false, 0
	}
	if !c.shedding {
		if now.Before(c.firstAbove) {
			return false, 0 // above target, but not yet for a full interval
		}
		c.shedding = true
		c.shedCount = 1
		c.shedNext = now.Add(c.spacing())
		return true, c.retryAdvice(sojourn)
	}
	if now.Before(c.shedNext) {
		return false, 0 // between scheduled sheds: admit
	}
	c.shedCount++
	c.shedNext = now.Add(c.spacing())
	return true, c.retryAdvice(sojourn)
}

// spacing is the control-law gap between sheds: interval/√shedCount.
func (c *codel) spacing() time.Duration {
	return time.Duration(float64(c.interval) / math.Sqrt(float64(c.shedCount)))
}

// retryAdvice estimates when a retry has a chance: the client should wait
// out the current backlog excess plus one control interval.
func (c *codel) retryAdvice(sojourn time.Duration) time.Duration {
	advice := c.interval + (sojourn - c.target)
	if advice < c.interval {
		advice = c.interval
	}
	return advice
}
