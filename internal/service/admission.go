package service

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the service's adaptive admission controller: a CoDel-style
// queue policy over the batcher. Every request carries its queue-entry
// timestamp; when a batch finally acquires an execution slot, each member's
// sojourn time (enqueue → slot) is shown to the controller. As long as
// sojourns return below the target within one interval the queue is judged
// "good" (a burst draining on its own) and nothing is shed. Once the
// minimum sojourn stays above the target for a full interval — the batcher
// is persistently backlogged, standing queue, not burst — the controller
// enters a shedding state and sheds requests at control-law spacing
// (interval/√n, the CoDel drop schedule), which tightens while the overload
// persists and resets the moment a sojourn dips under the target.
//
// Shedding at dequeue (not at submit) is deliberate, and it is what makes
// the policy collapse-proof: a shed request costs microseconds instead of
// an engine evaluation, so the effective service rate rises exactly when
// the queue needs it, and the sojourn of *admitted* requests stays bounded
// near the target instead of growing with the backlog. A full submission
// queue is the one place the server sheds on entry — see Server.submit.

// Admission defaults (Config zero values).
const (
	// DefaultShedTarget is the sojourn the controller tries to keep the
	// standing queue under.
	DefaultShedTarget = 20 * time.Millisecond
	// DefaultShedInterval is how long sojourns must stay above target
	// before the first shed (one RTT-ish control interval).
	DefaultShedInterval = 200 * time.Millisecond
	// DefaultDeadlineBudget is the server-side deadline every request gets
	// when the operator configures none explicitly (queryd -default-deadline
	// overrides it; a client's X-Deadline-Ms header overrides per request).
	DefaultDeadlineBudget = 2 * time.Second
)

// ShedError reports a request shed by the admission controller: the batcher
// was persistently backlogged and this request's queue sojourn exceeded the
// target. It is a fast, typed rejection — the engine never saw the request —
// and carries the controller's advice on when to retry. The HTTP layer maps
// it to 503 with a Retry-After header.
type ShedError struct {
	// Sojourn is how long the request sat in the queue before being shed.
	Sojourn time.Duration
	// Target is the controller's sojourn target.
	Target time.Duration
	// RetryAfter is the controller's backoff advice.
	RetryAfter time.Duration
	Err        error
}

func (e *ShedError) Error() string { return e.Err.Error() }
func (e *ShedError) Unwrap() error { return e.Err }

// shedError builds a ShedError with a rendered message.
func shedError(sojourn, target, retryAfter time.Duration) *ShedError {
	return &ShedError{
		Sojourn:    sojourn,
		Target:     target,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: overloaded — request shed after %v in queue (target %v), retry in %v",
			sojourn.Round(time.Millisecond), target, retryAfter.Round(time.Millisecond)),
	}
}

// queueFullError builds the entry-shed variant: the submission queue itself
// was full, so the request never entered it.
func queueFullError(target, retryAfter time.Duration) *ShedError {
	return &ShedError{
		Target:     target,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: overloaded — submission queue full, retry in %v",
			retryAfter.Round(time.Millisecond)),
	}
}

// codel is the controller state. One instance guards the server's single
// batcher queue; onDequeue is called once per request at slot acquisition.
type codel struct {
	target   time.Duration
	interval time.Duration

	mu sync.Mutex
	// firstAbove is when the current above-target episode will have lasted
	// one full interval (zero when sojourns are below target).
	firstAbove time.Time
	// shedding is true while the control law is active.
	shedding bool
	// shedNext is the next scheduled shed while shedding.
	shedNext time.Time
	// shedCount spaces successive sheds at interval/√shedCount.
	shedCount int
}

func newCodel(target, interval time.Duration) *codel {
	return &codel{target: target, interval: interval}
}

// onDequeue judges one request as it leaves the queue: returns whether to
// shed it and, if so, the retry-after advice. The logic is CoDel's: track
// the time the minimum sojourn has been above target; begin shedding after
// one full interval above; then shed on the interval/√n schedule until a
// sojourn under target proves the standing queue is gone.
func (c *codel) onDequeue(now time.Time, sojourn time.Duration) (bool, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sojourn < c.target {
		// Queue is healthy here; the episode (and any shedding) ends.
		c.firstAbove = time.Time{}
		c.shedding = false
		c.shedCount = 0
		return false, 0
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.interval)
		return false, 0
	}
	if !c.shedding {
		if now.Before(c.firstAbove) {
			return false, 0 // above target, but not yet for a full interval
		}
		c.shedding = true
		c.shedCount = 1
		c.shedNext = now.Add(c.spacing())
		return true, c.retryAdvice(sojourn)
	}
	if now.Before(c.shedNext) {
		return false, 0 // between scheduled sheds: admit
	}
	c.shedCount++
	c.shedNext = now.Add(c.spacing())
	return true, c.retryAdvice(sojourn)
}

// spacing is the control-law gap between sheds: interval/√shedCount.
func (c *codel) spacing() time.Duration {
	return time.Duration(float64(c.interval) / math.Sqrt(float64(c.shedCount)))
}

// retryAdvice estimates when a retry has a chance: the client should wait
// out the current backlog excess plus one control interval.
func (c *codel) retryAdvice(sojourn time.Duration) time.Duration {
	advice := c.interval + (sojourn - c.target)
	if advice < c.interval {
		advice = c.interval
	}
	return advice
}
