package service

import (
	"time"
)

// fairSched is the batcher's deficit-round-robin (DRR) scheduler: one FIFO
// per tenant instead of one shared pending list, so a tenant that floods
// the service lengthens only its own queue. Dispatch walks the ring of
// backlogged tenants; each visit tops the tenant's deficit up by
// weight×quantum requests and drains at most that many (in size-bounded
// batches), so over any busy window tenants receive service in proportion
// to their weights — the classic DRR guarantee, with every request costing
// one unit. The scheduler is owned by the batcher's collector goroutine and
// is deliberately lock-free: all methods must be called from that one
// goroutine.
type fairSched struct {
	// size is the batch bound: no dispatched batch exceeds it, including
	// the drain path.
	size int
	// maxWait is the linger: a tenant below size becomes eligible once its
	// oldest request has waited this long.
	maxWait time.Duration
	// maxPending caps each tenant's FIFO (0 or negative = unbounded);
	// push reports false at the cap so the caller can shed.
	maxPending int
	// weights maps tenant name → DRR weight (missing or < 1 means 1).
	weights map[string]int

	byName map[string]*tenantFIFO
	// ring holds the backlogged tenants in round-robin order; cur is the
	// next tenant to visit.
	ring  []*tenantFIFO
	cur   int
	total int
}

// tenantFIFO is one tenant's pending queue, a head-indexed slice so takes
// are O(1) without unbounded growth of the backing array.
type tenantFIFO struct {
	name    string
	weight  int
	deficit int
	q       []*request
	head    int
}

func (f *tenantFIFO) len() int { return len(f.q) - f.head }

func (f *tenantFIFO) oldest() *request { return f.q[f.head] }

// take removes and returns the first n requests.
func (f *tenantFIFO) take(n int) []*request {
	out := make([]*request, n)
	copy(out, f.q[f.head:f.head+n])
	for i := f.head; i < f.head+n; i++ {
		f.q[i] = nil // release for GC while the tail lives on
	}
	f.head += n
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 > len(f.q) {
		f.q = append(f.q[:0], f.q[f.head:]...)
		f.head = 0
	}
	return out
}

func newFairSched(size int, maxWait time.Duration, maxPending int, weights map[string]int) *fairSched {
	return &fairSched{
		size:       size,
		maxWait:    maxWait,
		maxPending: maxPending,
		weights:    weights,
		byName:     make(map[string]*tenantFIFO),
	}
}

// tenantName keys a request's queue; batcher unit tests may carry no tenant.
func tenantName(r *request) string {
	if r.tenant == nil {
		return ""
	}
	return r.tenant.cfg.Name
}

// push appends r to its tenant's FIFO, activating the tenant in the ring if
// it was idle. It reports false — without queueing — when the tenant is at
// its pending cap; the caller sheds the request with a typed error.
func (s *fairSched) push(r *request) bool {
	name := tenantName(r)
	f := s.byName[name]
	if f == nil {
		w := s.weights[name]
		if w < 1 {
			w = 1
		}
		f = &tenantFIFO{name: name, weight: w}
		s.byName[name] = f
	}
	if s.maxPending > 0 && f.len() >= s.maxPending {
		return false
	}
	if f.len() == 0 {
		s.ring = append(s.ring, f)
	}
	f.q = append(f.q, r)
	s.total++
	return true
}

// pending is the total queued requests across all tenants.
func (s *fairSched) pending() int { return s.total }

// fifoEligible reports whether f may dispatch now: a full batch is waiting,
// or its oldest request has lingered maxWait.
func (s *fairSched) fifoEligible(f *tenantFIFO, now time.Time) bool {
	return f.len() >= s.size || now.Sub(f.oldest().enqueued) >= s.maxWait
}

// eligibleAt reports whether any tenant may dispatch at now.
func (s *fairSched) eligibleAt(now time.Time) bool {
	for _, f := range s.ring {
		if s.fifoEligible(f, now) {
			return true
		}
	}
	return false
}

// nextLinger returns the earliest instant at which a currently backlogged
// tenant becomes linger-eligible (false when nothing is pending). Callers
// arm a timer with it when no tenant is eligible yet.
func (s *fairSched) nextLinger() (time.Time, bool) {
	var earliest time.Time
	for _, f := range s.ring {
		t := f.oldest().enqueued.Add(s.maxWait)
		if earliest.IsZero() || t.Before(earliest) {
			earliest = t
		}
	}
	return earliest, !earliest.IsZero()
}

// nextBatch dispatches the next size-bounded, single-tenant batch by DRR
// order, or nil when no tenant is eligible. force treats every backlogged
// tenant as eligible (the drain path ignores the linger). The visited
// tenant's deficit is topped up by weight×size when spent, each batch
// consumes deficit one request per request, and the scheduler keeps serving
// the same tenant while deficit remains — so a weight-2 tenant drains two
// full batches per round to a weight-1 tenant's one. A tenant whose queue
// empties forfeits its remaining deficit: idleness is not credit.
func (s *fairSched) nextBatch(now time.Time, force bool) []*request {
	n := len(s.ring)
	for i := 0; i < n; i++ {
		idx := (s.cur + i) % n
		f := s.ring[idx]
		if !force && !s.fifoEligible(f, now) {
			continue
		}
		if f.deficit < 1 {
			f.deficit += f.weight * s.size
		}
		take := s.size
		if f.len() < take {
			take = f.len()
		}
		if f.deficit < take {
			take = f.deficit
		}
		batch := f.take(take)
		f.deficit -= take
		s.total -= take
		switch {
		case f.len() == 0:
			f.deficit = 0
			s.ring = append(s.ring[:idx], s.ring[idx+1:]...)
			if len(s.ring) == 0 {
				s.cur = 0
			} else {
				s.cur = idx % len(s.ring)
			}
		case f.deficit < 1:
			s.cur = (idx + 1) % n
		default:
			s.cur = idx
		}
		return batch
	}
	return nil
}
