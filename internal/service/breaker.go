package service

import (
	"fmt"
	"sync"
	"time"
)

// This file is the per-tenant circuit breaker. The admission controller
// (admission.go) protects the shared queue; the breaker protects everything
// downstream of it from a tenant whose queries keep dying inside the
// engine. It watches evaluation outcomes — one observation per batch group,
// i.e. per evaluation unit, so eight requests sharing one failed flight
// count as one failure — and distinguishes two kinds of sickness:
//
//   - Engine failures (ExecError: faults, recovered panics; or deadline
//     blowouts) trip the classic state machine: closed → open after
//     FailureThreshold consecutive failures; open requests are rejected
//     fast with a typed 503 until the cooldown elapses; the first request
//     after the cooldown is admitted as a half-open probe, and its outcome
//     re-closes or re-opens the breaker.
//
//   - Governor trips (*core.ResourceError) are not engine sickness — the
//     tenant's own budget is the wall — so they feed a separate counter:
//     after TripThreshold consecutive trips the breaker enters degraded
//     mode for DegradeWindow, admitting requests under core.WithCacheOnly.
//     Plan-memo warm hits keep succeeding at cache cost; cold plans get a
//     typed *core.DegradedError instead of burning the budget again.
//
// Client mistakes (parse/safety/plan errors) and caller cancellations are
// neutral: they prove nothing about the engine and never move the machine.

// Breaker defaults (Config zero values).
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = time.Second
	DefaultDegradeTrips    = 3
	DefaultDegradeWindow   = 5 * time.Second
)

// BreakerOpenError reports a request rejected by an open circuit breaker:
// the tenant's recent evaluations kept failing inside the engine, so the
// service fails fast instead of queueing more doomed work. The HTTP layer
// maps it to 503 with a Retry-After header.
type BreakerOpenError struct {
	Tenant     string
	RetryAfter time.Duration
	Err        error
}

func (e *BreakerOpenError) Error() string { return e.Err.Error() }
func (e *BreakerOpenError) Unwrap() error { return e.Err }

func breakerOpenError(tenant string, retryAfter time.Duration) *BreakerOpenError {
	return &BreakerOpenError{
		Tenant:     tenant,
		RetryAfter: retryAfter,
		Err: fmt.Errorf("service: circuit breaker open for tenant %q, retry in %v",
			tenant, retryAfter.Round(time.Millisecond)),
	}
}

// breakerState is the classic three-state machine.
type breakerState uint8

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// groupOutcome classifies one evaluation unit's result for the breaker.
type groupOutcome uint8

const (
	outcomeOK      groupOutcome = iota
	outcomeFailure              // engine failure or deadline blowout
	outcomeTrip                 // governor budget trip
	outcomeNeutral              // client mistake, cancellation, degraded rejection
)

// breakerConfig is resolved from Config in NewServer.
type breakerConfig struct {
	failThreshold int
	cooldown      time.Duration
	tripThreshold int
	degradeWindow time.Duration
}

// breakerDecision is the admission verdict for one evaluation unit.
type breakerDecision struct {
	admit bool
	// degraded asks the admitted unit to run under core.WithCacheOnly.
	degraded bool
	// probe marks the admitted unit as the half-open probe; its outcome
	// must be reported back with observe(..., probe=true).
	probe bool
	// retryAfter is the rejection backoff advice (admit == false).
	retryAfter time.Duration
}

// breakerTransitions reports which state transitions a call caused, so the
// metrics layer counts every one exactly once.
type breakerTransitions struct {
	opened, halfOpened, closed, degraded bool
}

// breaker is one tenant's breaker. The tenant's serialized evaluation
// groups call allow/observe; both are mutex-guarded because groups of one
// tenant can run concurrently (different queries in one batch).
type breaker struct {
	cfg breakerConfig

	mu            sync.Mutex
	state         breakerState
	consecFails   int
	consecTrips   int
	openedAt      time.Time
	probing       bool
	degradedUntil time.Time
	opens         int64
	halfOpens     int64
	closes        int64
}

func newBreaker(cfg breakerConfig) *breaker {
	return &breaker{cfg: cfg}
}

// allow decides whether one evaluation unit may proceed, and in what mode.
func (b *breaker) allow(now time.Time) (breakerDecision, breakerTransitions) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var tr breakerTransitions
	switch b.state {
	case stateOpen:
		if now.Sub(b.openedAt) < b.cfg.cooldown {
			return breakerDecision{retryAfter: b.cfg.cooldown - now.Sub(b.openedAt)}, tr
		}
		// Cooldown over: admit exactly one probe.
		b.state = stateHalfOpen
		b.halfOpens++
		tr.halfOpened = true
		b.probing = true
		return breakerDecision{admit: true, probe: true, degraded: b.degradedNowLocked(now)}, tr
	case stateHalfOpen:
		if b.probing {
			// A probe is in flight; everyone else keeps failing fast.
			return breakerDecision{retryAfter: b.cfg.cooldown}, tr
		}
		b.probing = true
		return breakerDecision{admit: true, probe: true, degraded: b.degradedNowLocked(now)}, tr
	default:
		return breakerDecision{admit: true, degraded: b.degradedNowLocked(now)}, tr
	}
}

// degradedNowLocked reports whether degraded (cache-only) mode is active.
func (b *breaker) degradedNowLocked(now time.Time) bool {
	return now.Before(b.degradedUntil)
}

// observe folds one evaluation unit's outcome into the machine. probe must
// be true iff allow handed out a probe decision for this unit.
func (b *breaker) observe(now time.Time, out groupOutcome, probe bool) breakerTransitions {
	b.mu.Lock()
	defer b.mu.Unlock()
	var tr breakerTransitions
	if probe {
		b.probing = false
		switch out {
		case outcomeOK:
			b.state = stateClosed
			b.closes++
			tr.closed = true
			b.consecFails = 0
			b.consecTrips = 0
		case outcomeFailure:
			b.state = stateOpen
			b.openedAt = now
			b.opens++
			tr.opened = true
		default:
			// A neutral probe (client mistake, cancellation) proves nothing;
			// stay half-open and let the next request probe again.
		}
		return tr
	}
	switch out {
	case outcomeOK:
		b.consecFails = 0
		b.consecTrips = 0
	case outcomeFailure:
		b.consecFails++
		b.consecTrips = 0
		if b.state == stateClosed && b.consecFails >= b.cfg.failThreshold {
			b.state = stateOpen
			b.openedAt = now
			b.opens++
			tr.opened = true
		}
	case outcomeTrip:
		b.consecTrips++
		// tripThreshold <= 0 means degraded mode is disabled.
		if b.cfg.tripThreshold > 0 && b.consecTrips >= b.cfg.tripThreshold {
			b.degradedUntil = now.Add(b.cfg.degradeWindow)
			b.consecTrips = 0
			tr.degraded = true
		}
	}
	return tr
}

// BreakerStatus is one tenant's breaker state as served by /stats.
type BreakerStatus struct {
	State    string `json:"state"`
	Degraded bool   `json:"degraded"`
	// ConsecutiveFailures/ConsecutiveTrips are the live counters driving
	// the open and degraded transitions respectively.
	ConsecutiveFailures int `json:"consecutive_failures"`
	ConsecutiveTrips    int `json:"consecutive_trips"`
	// Opens/HalfOpens/Closes count this tenant's lifetime transitions.
	Opens     int64 `json:"opens"`
	HalfOpens int64 `json:"half_opens"`
	Closes    int64 `json:"closes"`
}

// status snapshots the breaker for /stats.
func (b *breaker) status(now time.Time) BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{
		State:               b.state.String(),
		Degraded:            b.degradedNowLocked(now),
		ConsecutiveFailures: b.consecFails,
		ConsecutiveTrips:    b.consecTrips,
		Opens:               b.opens,
		HalfOpens:           b.halfOpens,
		Closes:              b.closes,
	}
}
