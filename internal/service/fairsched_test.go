package service

import (
	"testing"
	"time"
)

// namedReq builds a request for tenant name with an explicit enqueue time.
func namedReq(name string, enqueued time.Time) *request {
	return &request{tenant: &tenant{cfg: TenantConfig{Name: name}}, enqueued: enqueued}
}

// TestFairSchedWeightsHonored: over a busy window a weight-2 tenant drains
// twice the requests of a weight-1 tenant, in size-bounded single-tenant
// batches — the DRR guarantee, traced deterministically.
func TestFairSchedWeightsHonored(t *testing.T) {
	now := time.Now()
	s := newFairSched(2, time.Hour, 0, map[string]int{"heavy": 2})
	for i := 0; i < 20; i++ {
		s.push(namedReq("light", now))
		s.push(namedReq("heavy", now))
	}
	served := map[string]int{}
	for i := 0; i < 9; i++ { // 9 batches of 2 = 18 requests, both stay backlogged
		batch := s.nextBatch(now, false)
		if len(batch) != 2 {
			t.Fatalf("batch %d: want size 2, got %d", i, len(batch))
		}
		name := tenantName(batch[0])
		for _, r := range batch[1:] {
			if tenantName(r) != name {
				t.Fatalf("batch %d mixes tenants %q and %q", i, name, tenantName(r))
			}
		}
		served[name] += len(batch)
	}
	// Per round: light's deficit tops up to 2 (one batch), heavy's to 4 (two
	// batches). 9 batches = 3 full rounds: light 6, heavy 12.
	if served["light"] != 6 || served["heavy"] != 12 {
		t.Fatalf("want light=6 heavy=12 after 9 batches, got light=%d heavy=%d", served["light"], served["heavy"])
	}
}

// TestFairSchedLingerEligibility: below the size threshold a tenant is not
// eligible until its oldest request has waited maxWait, and nextLinger
// reports exactly when that happens.
func TestFairSchedLingerEligibility(t *testing.T) {
	now := time.Now()
	s := newFairSched(10, 50*time.Millisecond, 0, nil)
	s.push(namedReq("a", now))
	if s.eligibleAt(now) {
		t.Fatal("one request below size must not be eligible before the linger")
	}
	at, ok := s.nextLinger()
	if !ok || !at.Equal(now.Add(50*time.Millisecond)) {
		t.Fatalf("nextLinger = %v, %v; want enqueue+50ms", at, ok)
	}
	if b := s.nextBatch(now, false); b != nil {
		t.Fatalf("nextBatch before linger returned %d requests", len(b))
	}
	later := now.Add(50 * time.Millisecond)
	if !s.eligibleAt(later) {
		t.Fatal("lingered request must be eligible at maxWait")
	}
	if b := s.nextBatch(later, false); len(b) != 1 {
		t.Fatalf("want the lingered request dispatched, got %d", len(b))
	}
	if s.pending() != 0 {
		t.Fatalf("pending = %d after the only request dispatched", s.pending())
	}
}

// TestFairSchedPerTenantCap: push refuses at the per-tenant cap — and only
// for the tenant at its cap; others keep queueing.
func TestFairSchedPerTenantCap(t *testing.T) {
	now := time.Now()
	s := newFairSched(4, time.Hour, 2, nil)
	if !s.push(namedReq("a", now)) || !s.push(namedReq("a", now)) {
		t.Fatal("pushes under the cap must succeed")
	}
	if s.push(namedReq("a", now)) {
		t.Fatal("push at the cap must refuse")
	}
	if !s.push(namedReq("b", now)) {
		t.Fatal("another tenant must be unaffected by a's cap")
	}
	if s.pending() != 3 {
		t.Fatalf("pending = %d, want 3 (the refused push must not count)", s.pending())
	}
}

// TestFairSchedDeficitForfeitOnEmpty: a tenant whose queue empties mid-
// quantum forfeits its remaining deficit — idleness earns no credit, so a
// returning tenant starts from zero like everyone else.
func TestFairSchedDeficitForfeitOnEmpty(t *testing.T) {
	now := time.Now()
	s := newFairSched(4, time.Hour, 0, map[string]int{"a": 3})
	s.push(namedReq("a", now))
	if b := s.nextBatch(now, true); len(b) != 1 {
		t.Fatalf("want a's single request, got %d", len(b))
	}
	// weight 3 × size 4 = 12 deficit minus 1 served would leave 11; the
	// empty queue must have zeroed it and deactivated the tenant.
	if f := s.byName["a"]; f.deficit != 0 {
		t.Fatalf("deficit = %d after queue emptied, want 0", f.deficit)
	}
	if len(s.ring) != 0 {
		t.Fatal("an empty tenant must leave the ring")
	}
}

// TestFairSchedDrainForce: force dispatches backlogged tenants regardless of
// the linger, still size-bounded — the drain path's contract.
func TestFairSchedDrainForce(t *testing.T) {
	now := time.Now()
	s := newFairSched(4, time.Hour, 0, nil)
	for i := 0; i < 6; i++ {
		s.push(namedReq("a", now))
	}
	sizes := []int{}
	for s.pending() > 0 {
		b := s.nextBatch(now, true)
		if len(b) == 0 {
			t.Fatal("force dispatch returned an empty batch with work pending")
		}
		sizes = append(sizes, len(b))
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 2 {
		t.Fatalf("want forced batches [4 2], got %v", sizes)
	}
}
