package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testutil"
)

func testKey() flightKey { return flightKey{tenant: "t", fp: 42, gen: 1} }

// TestFlightCollapsesConcurrentCalls: N concurrent do calls under one key
// produce exactly once; everyone shares the producer's result and error.
func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := newFlightTable()
	var produced atomic.Int64
	release := make(chan struct{})
	want := &core.Result{Open: true}

	const n = 16
	var wg sync.WaitGroup
	roles := make([]string, n)
	results := make([]*core.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err, out := f.do(context.Background(), testKey(), func() (*core.Result, error) {
				<-release // hold the flight open until all waiters attach
				produced.Add(1)
				return want, nil
			})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
			roles[i], results[i] = out.Role, res
		}(i)
	}
	// Give the waiters time to attach to the incumbent flight, then let
	// the producer publish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := produced.Load(); got != 1 {
		t.Fatalf("produce ran %d times, want 1", got)
	}
	elects := 0
	for i := range roles {
		if roles[i] == flightElect {
			elects++
		}
		if results[i] != want {
			t.Errorf("call %d did not share the producer's result", i)
		}
	}
	if elects != 1 {
		t.Fatalf("want exactly 1 elect, got %d", elects)
	}
}

// TestFlightSharesDeterministicFailure: a produce failure without caller
// cancellation is shared, not retried — every waiter would reproduce it.
func TestFlightSharesDeterministicFailure(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := newFlightTable()
	boom := errors.New("deterministic failure")
	var produced atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, _ := f.do(context.Background(), testKey(), func() (*core.Result, error) {
				<-release
				produced.Add(1)
				return nil, boom
			})
			errs[i] = err
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if produced.Load() != 1 {
		t.Fatalf("failure was retried: produce ran %d times", produced.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("call %d: want the shared failure, got %v", i, err)
		}
	}
}

// TestFlightReelectsAfterProducerDeath: a producer killed by its own
// context abandons the entry; a waiter is re-elected and its production
// serves the group. This is the memo's producer-death protocol, one level
// up.
func TestFlightReelectsAfterProducerDeath(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := newFlightTable()
	want := &core.Result{Open: true}

	prodCtx, kill := context.WithCancel(context.Background())
	firstIn := make(chan struct{})
	var wg sync.WaitGroup

	// First producer: starts, then dies of its own cancellation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, out := f.do(prodCtx, testKey(), func() (*core.Result, error) {
			close(firstIn)
			<-prodCtx.Done()
			return nil, prodCtx.Err()
		})
		if out.Role != flightElect || !errors.Is(err, context.Canceled) {
			t.Errorf("first producer: role=%q err=%v", out.Role, err)
		}
	}()

	// Waiter: attaches to the doomed flight, then must be re-elected.
	<-firstIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err, out := f.do(context.Background(), testKey(), func() (*core.Result, error) {
			return want, nil
		})
		if err != nil || res != want {
			t.Errorf("re-elected waiter: res=%v err=%v", res, err)
		}
		if out.Role != flightElect || out.Waits < 1 {
			t.Errorf("waiter should have waited then been elected: %+v", out)
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the waiter attach
	kill()
	wg.Wait()

	if len(f.inflight) != 0 {
		t.Fatalf("flight table leaked %d entries", len(f.inflight))
	}
}

// TestFlightWaiterCancellation: a waiter whose own context dies gets its
// context error and no role; the flight itself is unaffected.
func TestFlightWaiterCancellation(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := newFlightTable()
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := f.do(context.Background(), testKey(), func() (*core.Result, error) {
			close(started)
			<-release
			return &core.Result{}, nil
		})
		if err != nil {
			t.Errorf("producer: %v", err)
		}
	}()

	<-started
	waitCtx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err, out := f.do(waitCtx, testKey(), func() (*core.Result, error) {
			t.Error("cancelled waiter must never produce")
			return nil, nil
		})
		if !errors.Is(err, context.Canceled) || out.Role != "" {
			t.Errorf("cancelled waiter: err=%v role=%q", err, out.Role)
		}
	}()
	cancel()
	<-done
	close(release)
	wg.Wait()
}
