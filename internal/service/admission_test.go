package service

import (
	"errors"
	"testing"
	"time"
)

// TestCodelBelowTargetNeverSheds pins the healthy-queue case: as long as
// sojourns stay under the target nothing is shed, no matter how many
// requests pass.
func TestCodelBelowTargetNeverSheds(t *testing.T) {
	c := newCodel(10*time.Millisecond, 100*time.Millisecond)
	now := time.Now()
	for i := 0; i < 1000; i++ {
		now = now.Add(time.Millisecond)
		if shed, _ := c.onDequeue(now, 5*time.Millisecond); shed {
			t.Fatalf("dequeue %d shed below target", i)
		}
	}
}

// TestCodelShedsAfterSustainedBacklog pins the control law: a burst above
// target is tolerated for one full interval; after that the first request is
// shed, subsequent sheds follow the interval/√n spacing, and one sojourn
// under target ends the episode.
func TestCodelShedsAfterSustainedBacklog(t *testing.T) {
	const (
		target   = 10 * time.Millisecond
		interval = 100 * time.Millisecond
	)
	c := newCodel(target, interval)
	t0 := time.Now()
	over := 50 * time.Millisecond // a sojourn well above target

	// The episode starts here; within the interval everything is admitted.
	if shed, _ := c.onDequeue(t0, over); shed {
		t.Fatal("first above-target sojourn must be admitted (burst tolerance)")
	}
	if shed, _ := c.onDequeue(t0.Add(interval-time.Millisecond), over); shed {
		t.Fatal("above target but inside the interval: must be admitted")
	}

	// One full interval above target: the first shed, with retry advice that
	// covers at least one control interval.
	shed, advice := c.onDequeue(t0.Add(interval), over)
	if !shed {
		t.Fatal("a full interval above target must shed")
	}
	if advice < interval {
		t.Fatalf("retry advice %v shorter than the control interval %v", advice, interval)
	}

	// Control-law spacing: the next shed is scheduled interval/√1 later;
	// dequeues before that are admitted even though they are above target.
	if shed, _ := c.onDequeue(t0.Add(interval+interval/2), over); shed {
		t.Fatal("between scheduled sheds the queue must still be served")
	}
	if shed, _ := c.onDequeue(t0.Add(2*interval), over); !shed {
		t.Fatal("the scheduled second shed must fire")
	}

	// A single sojourn under target proves the standing queue drained: the
	// episode ends and a fresh burst gets a fresh full interval.
	if shed, _ := c.onDequeue(t0.Add(2*interval+time.Millisecond), time.Millisecond); shed {
		t.Fatal("under-target sojourn must be admitted and end the episode")
	}
	if shed, _ := c.onDequeue(t0.Add(3*interval), over); shed {
		t.Fatal("after recovery a new episode must get burst tolerance again")
	}
}

// TestShedErrorsAreTyped pins the two shed variants as members of the typed
// error family, with the fields the HTTP layer serializes.
func TestShedErrorsAreTyped(t *testing.T) {
	dequeue := shedError(30*time.Millisecond, 10*time.Millisecond, 120*time.Millisecond)
	var se *ShedError
	if !errors.As(error(dequeue), &se) {
		t.Fatal("shedError must match *ShedError")
	}
	if se.Sojourn != 30*time.Millisecond || se.Target != 10*time.Millisecond || se.RetryAfter != 120*time.Millisecond {
		t.Fatalf("dequeue shed lost its fields: %+v", se)
	}

	entry := queueFullError(10*time.Millisecond, 200*time.Millisecond)
	if !errors.As(error(entry), &se) {
		t.Fatal("queueFullError must match *ShedError")
	}
	if se.Sojourn != 0 || se.RetryAfter != 200*time.Millisecond {
		t.Fatalf("entry shed fields wrong (sojourn must be 0 — it never queued): %+v", se)
	}
}
