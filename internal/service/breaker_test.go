package service

import (
	"testing"
	"time"
)

// testBreakerConfig is a small, fast machine for the unit tests: three
// consecutive failures open, two consecutive trips degrade.
func testBreakerConfig() breakerConfig {
	return breakerConfig{
		failThreshold: 3,
		cooldown:      time.Second,
		tripThreshold: 2,
		degradeWindow: time.Minute,
	}
}

// TestBreakerOpensAfterConsecutiveFailures pins the open transition: only an
// unbroken run of failThreshold failures opens the breaker — a success (or a
// neutral outcome) in between resets the count.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Now()

	// Two failures, then a success: the machine stays closed.
	b.observe(t0, outcomeFailure, false)
	b.observe(t0, outcomeFailure, false)
	b.observe(t0, outcomeOK, false)
	if st := b.status(t0); st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("success must reset the failure count: %+v", st)
	}

	// Neutral outcomes (client mistakes, cancellations) neither count nor reset.
	b.observe(t0, outcomeFailure, false)
	b.observe(t0, outcomeNeutral, false)
	if st := b.status(t0); st.ConsecutiveFailures != 1 {
		t.Fatalf("neutral outcome must not move the failure count: %+v", st)
	}

	// Two more failures complete the consecutive run of three.
	b.observe(t0, outcomeFailure, false)
	tr := b.observe(t0, outcomeFailure, false)
	if !tr.opened {
		t.Fatal("third consecutive failure must report the open transition")
	}
	if st := b.status(t0); st.State != "open" || st.Opens != 1 {
		t.Fatalf("want open state with Opens=1: %+v", st)
	}

	// While open and inside the cooldown, requests are rejected with the
	// remaining cooldown as advice.
	dec, _ := b.allow(t0.Add(300 * time.Millisecond))
	if dec.admit {
		t.Fatal("open breaker inside the cooldown must reject")
	}
	if want := 700 * time.Millisecond; dec.retryAfter != want {
		t.Fatalf("retryAfter = %v, want the remaining cooldown %v", dec.retryAfter, want)
	}
}

// TestBreakerHalfOpenProbe pins the recovery protocol: after the cooldown
// exactly one probe is admitted, concurrent requests keep failing fast, and
// the probe's outcome re-closes (or re-opens) the machine.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Now()
	for i := 0; i < 3; i++ {
		b.observe(t0, outcomeFailure, false)
	}

	// Cooldown elapsed: the next allow admits a half-open probe.
	t1 := t0.Add(time.Second)
	dec, tr := b.allow(t1)
	if !dec.admit || !dec.probe || !tr.halfOpened {
		t.Fatalf("want a half-open probe after the cooldown: dec=%+v tr=%+v", dec, tr)
	}
	// A second request while the probe is in flight fails fast.
	if dec2, _ := b.allow(t1); dec2.admit {
		t.Fatal("only one probe may be in flight")
	}

	// Probe success closes the breaker and resets the counters.
	tr = b.observe(t1, outcomeOK, true)
	if !tr.closed {
		t.Fatal("successful probe must report the close transition")
	}
	if st := b.status(t1); st.State != "closed" || st.Closes != 1 || st.ConsecutiveFailures != 0 {
		t.Fatalf("want closed with Closes=1: %+v", st)
	}

	// Open it again; this time the probe fails and the breaker re-opens for
	// a fresh cooldown.
	for i := 0; i < 3; i++ {
		b.observe(t1, outcomeFailure, false)
	}
	t2 := t1.Add(time.Second)
	if dec, _ = b.allow(t2); !dec.probe {
		t.Fatal("want a probe after the second cooldown")
	}
	if tr = b.observe(t2, outcomeFailure, true); !tr.opened {
		t.Fatal("failed probe must re-open")
	}
	if dec, _ = b.allow(t2.Add(time.Millisecond)); dec.admit {
		t.Fatal("re-opened breaker must reject inside the new cooldown")
	}
}

// TestBreakerNeutralProbeProvesNothing pins the wedge-prevention rule: a
// probe that resolves neutrally (the prober's own mistake or cancellation)
// leaves the machine half-open, and the next request probes again.
func TestBreakerNeutralProbeProvesNothing(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Now()
	for i := 0; i < 3; i++ {
		b.observe(t0, outcomeFailure, false)
	}
	t1 := t0.Add(time.Second)
	if dec, _ := b.allow(t1); !dec.probe {
		t.Fatal("want a probe after the cooldown")
	}
	tr := b.observe(t1, outcomeNeutral, true)
	if tr.closed || tr.opened {
		t.Fatalf("neutral probe must not transition: %+v", tr)
	}
	if st := b.status(t1); st.State != "half-open" {
		t.Fatalf("want half-open after a neutral probe: %+v", st)
	}
	// The next request gets a fresh probe (no halfOpened transition — the
	// state did not change).
	dec, tr := b.allow(t1)
	if !dec.admit || !dec.probe || tr.halfOpened {
		t.Fatalf("want a fresh probe without re-counting half-open: dec=%+v tr=%+v", dec, tr)
	}
	if tr = b.observe(t1, outcomeOK, true); !tr.closed {
		t.Fatal("the fresh probe's success must close")
	}
}

// TestBreakerDegradedModeAfterTrips pins the governor-trip branch: trips
// feed their own consecutive counter, and crossing it enters degraded
// (cache-only) mode for the window without opening the breaker.
func TestBreakerDegradedModeAfterTrips(t *testing.T) {
	b := newBreaker(testBreakerConfig())
	t0 := time.Now()

	// A trip, a success, a trip: not consecutive, no degradation.
	b.observe(t0, outcomeTrip, false)
	b.observe(t0, outcomeOK, false)
	b.observe(t0, outcomeTrip, false)
	if dec, _ := b.allow(t0); dec.degraded {
		t.Fatal("non-consecutive trips must not degrade")
	}

	// The second consecutive trip enters degraded mode.
	tr := b.observe(t0, outcomeTrip, false)
	if !tr.degraded {
		t.Fatal("second consecutive trip must report the degraded transition")
	}
	dec, _ := b.allow(t0)
	if !dec.admit || !dec.degraded {
		t.Fatalf("degraded mode must admit cache-only, not reject: %+v", dec)
	}
	if st := b.status(t0); !st.Degraded || st.State != "closed" {
		t.Fatalf("degraded mode is not an open breaker: %+v", st)
	}

	// The window elapses and the tenant is whole again.
	t1 := t0.Add(time.Minute + time.Millisecond)
	if dec, _ := b.allow(t1); dec.degraded {
		t.Fatal("degraded mode must end with its window")
	}

	// Trips never open the breaker, no matter how many.
	for i := 0; i < 10; i++ {
		b.observe(t1, outcomeTrip, false)
	}
	if st := b.status(t1); st.State != "closed" || st.Opens != 0 {
		t.Fatalf("governor trips must not open the breaker: %+v", st)
	}
}

// TestBreakerDegradedModeDisabled pins the knob: a non-positive trip
// threshold disables degraded mode entirely.
func TestBreakerDegradedModeDisabled(t *testing.T) {
	cfg := testBreakerConfig()
	cfg.tripThreshold = -1
	b := newBreaker(cfg)
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		if tr := b.observe(t0, outcomeTrip, false); tr.degraded {
			t.Fatal("disabled degraded mode must never trigger")
		}
	}
	if dec, _ := b.allow(t0); dec.degraded {
		t.Fatal("disabled degraded mode must never mark a decision degraded")
	}
}
