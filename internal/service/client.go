package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Client defaults.
const (
	DefaultMaxRetries  = 3
	DefaultBaseBackoff = 50 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
)

// RemoteError is a non-2xx response from a remote query service, carrying
// the server's typed taxonomy payload so callers branch on Detail.Kind (or
// Status) instead of parsing messages. Transport failures are returned as
// the underlying error, not a RemoteError.
type RemoteError struct {
	// Status is the HTTP status code.
	Status int
	// Detail is the decoded error payload (zero-valued when the body was
	// not a taxonomy envelope).
	Detail ErrorDetail
	// RetryAfter is the server's backoff advice (0 when none was given).
	RetryAfter time.Duration
	Err        error
}

func (e *RemoteError) Error() string { return e.Err.Error() }
func (e *RemoteError) Unwrap() error { return e.Err }

// Client is a retrying client for the queryd HTTP API, shared by
// queryctl -remote and the queryload harness. Its retry discipline follows
// the service's overload contract:
//
//   - only idempotent calls retry — and both calls it issues (POST /query,
//     a read; GET /stats) are idempotent;
//   - only overload rejections retry: 503 shed/breaker/shutdown and
//     transport failures. Client mistakes (4xx), blown deadlines (504, the
//     budget is spent), cancellations and degraded rejections (retrying
//     will not warm the plan cache) fail immediately;
//   - waits follow jittered exponential backoff, raised to the server's
//     Retry-After when that is longer — the server knows its backlog;
//   - a retry is never scheduled past the caller's deadline: if the
//     remaining budget cannot cover the wait, the last response stands.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8265".
	Base string
	// APIKey authenticates every request (the X-API-Key header).
	APIKey string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxRetries bounds retry attempts after the first try
	// (DefaultMaxRetries when 0; negative disables retries).
	MaxRetries int
	// BaseBackoff/MaxBackoff shape the exponential backoff
	// (DefaultBaseBackoff/DefaultMaxBackoff when 0).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Deadline, when positive, is sent as the X-Deadline-Ms header so the
	// server budgets the request identically (0 uses the server default).
	Deadline time.Duration

	// retried counts retry waits actually taken, across all calls.
	retried atomic.Int64
}

// RetryCount returns how many retries this client has performed in total —
// the harness reconciles it against the server's shed/breaker counters.
func (c *Client) RetryCount() int64 { return c.retried.Load() }

// Query runs one query remotely, retrying overload rejections within the
// caller's deadline. On non-2xx the returned error is a *RemoteError.
func (c *Client) Query(ctx context.Context, query string) (*QueryResponse, error) {
	body, err := json.Marshal(queryRequest{Query: query})
	if err != nil {
		return nil, &RemoteError{Status: 0, Err: fmt.Errorf("service: encode query: %w", err)}
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's StatsReport, with the same retry discipline.
func (c *Client) Stats(ctx context.Context) (*StatsReport, error) {
	var out StatsReport
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do issues one API call with retries and decodes the success body into out.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		if attempt >= maxRetries || !retryable(lastErr) {
			return lastErr
		}
		wait := c.backoff(attempt, lastErr)
		if !deadlineCovers(ctx, wait) {
			// The remaining budget cannot cover the wait: the request is
			// deadline-dead, and a retry would only burn server queue space.
			return lastErr
		}
		select {
		case <-time.After(wait):
			c.retried.Add(1)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// once issues a single HTTP request and decodes the response.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return &RemoteError{Status: 0, Err: fmt.Errorf("service: build request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	if c.Deadline > 0 {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(c.Deadline.Milliseconds(), 10))
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err // transport failure: retryable, not a RemoteError
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		re := &RemoteError{Status: resp.StatusCode}
		var envelope errorBody
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr == nil {
			re.Detail = envelope.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.ParseInt(ra, 10, 64); perr == nil && secs > 0 {
				re.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		if re.Detail.RetryAfterMS > 0 {
			// The body's millisecond advice is finer than the header's
			// whole seconds; prefer it.
			re.RetryAfter = time.Duration(re.Detail.RetryAfterMS) * time.Millisecond
		}
		msg := re.Detail.Message
		if msg == "" {
			msg = resp.Status
		}
		re.Err = fmt.Errorf("service: remote %d (%s): %s", resp.StatusCode, re.Detail.Kind, msg)
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &RemoteError{Status: resp.StatusCode, Err: fmt.Errorf("service: decode response: %w", err)}
	}
	return nil
}

// retryable reports whether err is an overload rejection worth retrying.
func retryable(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		// Transport failure (connection refused/reset): retryable. Context
		// errors are not — the caller's budget or interest is gone.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	if re.Status != http.StatusServiceUnavailable {
		return false
	}
	// Degraded rejections are 503 but deterministic: the plan is cold and
	// retrying does not warm it.
	return re.Detail.Kind != "degraded"
}

// backoff computes the jittered exponential wait for a retry attempt,
// raised to the server's Retry-After advice when that is longer.
func (c *Client) backoff(attempt int, err error) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	ceil := c.MaxBackoff
	if ceil <= 0 {
		ceil = DefaultMaxBackoff
	}
	wait := base << attempt
	if wait > ceil || wait <= 0 {
		wait = ceil
	}
	var re *RemoteError
	if errors.As(err, &re) && re.RetryAfter > wait {
		wait = re.RetryAfter
	}
	// Full jitter on the upper half: wait/2 + U(0, wait/2], so concurrent
	// rejected clients do not re-arrive in one synchronized wave.
	half := wait / 2
	if half > 0 {
		wait = half + time.Duration(rand.Int63n(int64(half)))
	}
	return wait
}

// deadlineCovers reports whether ctx's remaining budget covers waiting for
// wait and still leaves room to issue the retry.
func deadlineCovers(ctx context.Context, wait time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) > wait
}
