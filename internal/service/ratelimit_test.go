package service

import (
	"testing"
	"time"
)

// TestTokenBucketBurstAndRefill: a bucket admits its burst, refuses the
// next request with accurate wait advice, and admits again once the refill
// interval has passed — all on an explicit clock.
func TestTokenBucketBurstAndRefill(t *testing.T) {
	now := time.Now()
	tb := newTokenBucket(10) // 10/s, burst 10
	for i := 0; i < 10; i++ {
		if ok, _ := tb.take(now); !ok {
			t.Fatalf("take %d within the burst refused", i)
		}
	}
	ok, wait := tb.take(now)
	if ok {
		t.Fatal("take past the burst admitted")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("wait advice = %v, want 100ms (one token at 10/s)", wait)
	}
	if ok, _ := tb.take(now.Add(wait)); !ok {
		t.Fatal("take after the advised wait refused")
	}
}

// TestTokenBucketLowRateStillAdmits: rates under 1/s keep a burst of one
// token, so the first request always passes and the advice spans seconds.
func TestTokenBucketLowRateStillAdmits(t *testing.T) {
	now := time.Now()
	tb := newTokenBucket(0.5)
	if ok, _ := tb.take(now); !ok {
		t.Fatal("first take at rate 0.5/s refused")
	}
	ok, wait := tb.take(now)
	if ok {
		t.Fatal("second immediate take admitted")
	}
	if wait != 2*time.Second {
		t.Fatalf("wait advice = %v, want 2s", wait)
	}
}

// TestTokenBucketCapsAtBurst: idle time refills to the burst and no
// further — a long-idle tenant cannot bank an unbounded burst.
func TestTokenBucketCapsAtBurst(t *testing.T) {
	now := time.Now()
	tb := newTokenBucket(5)
	for i := 0; i < 5; i++ {
		tb.take(now)
	}
	later := now.Add(time.Hour)
	admitted := 0
	for {
		ok, _ := tb.take(later)
		if !ok {
			break
		}
		admitted++
		if admitted > 5 {
			t.Fatal("refill exceeded the burst")
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d after a long idle, want the burst of 5", admitted)
	}
}
