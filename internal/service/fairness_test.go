package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/testutil"
)

// TestFairnessFloodAndTrickle is the isolation gate: one tenant floods a
// saturated server while another trickles polite sequential requests. With
// per-tenant queues, DRR dispatch and per-tenant CoDel, every shed lands on
// the flooder — the polite tenant's shed count stays zero and its latency
// stays bounded, because its queue never holds more than its own request.
func TestFairnessFloodAndTrickle(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		Tenants: []TenantConfig{
			{Name: "abuser", APIKey: "k-abuser"},
			{Name: "polite", APIKey: "k-polite"},
		},
		BatchSize:     1, // every request dispatches alone: pure DRR alternation
		BatchMaxWait:  time.Millisecond,
		QueueDepth:    4096, // above the flood size: sheds come from CoDel, not caps
		MaxConcurrent: 1,    // one slot: the scheduler fully decides service order
		ShedTarget:    10 * time.Millisecond,
		ShedInterval:  10 * time.Millisecond,
		// One injected 50ms stall on the first dispatched batch holds the
		// only slot while the flood lands, so the abuser builds a genuine
		// standing queue — sojourns far above target for many intervals —
		// instead of draining as fast as the test can submit.
		Faults: faultinject.New(faultinject.Arm{
			Point: faultinject.PointServiceBatcher,
			Kind:  faultinject.KindDelay,
			After: 1,
			Delay: 50 * time.Millisecond,
		}),
	})

	// The flood: enough concurrent requests that the abuser's queue stays a
	// standing backlog far above the shed target for many intervals. The
	// polite tenant's sojourn stays a couple of batch durations — far under
	// the target — so only the abuser's controller enters its episode.
	const flood = 2000
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Execute(context.Background(), "k-abuser", demoQuery)
		}()
	}
	// Let the stalled first batch pass and the backlog build before the
	// trickle starts, so every polite request runs against a full storm.
	time.Sleep(60 * time.Millisecond)

	// The trickle: sequential closed-loop requests while the flood drains.
	const trickle = 20
	var politeLat []time.Duration
	for i := 0; i < trickle; i++ {
		start := time.Now()
		out, err := s.Execute(context.Background(), "k-polite", demoQuery)
		if err != nil {
			t.Fatalf("polite request %d failed: %v", i, err)
		}
		if out.Result == nil || !out.Result.Open || out.Result.Rows.Len() != 1 {
			t.Fatalf("polite request %d: wrong answer", i)
		}
		politeLat = append(politeLat, time.Since(start))
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	stats := s.Stats()
	ab, pol := stats.PerTenant["abuser"], stats.PerTenant["polite"]
	if pol.Sheds != 0 {
		t.Fatalf("polite tenant absorbed %d sheds (sojourn %d, queue-full %d); isolation failed",
			pol.Sheds, pol.SojournSheds, pol.QueueFullSheds)
	}
	if ab.Sheds == 0 {
		t.Fatal("the flooding tenant saw no sheds: the server never defended itself")
	}
	if pol.Requests != trickle || pol.OK != trickle {
		t.Fatalf("polite ledger: requests=%d ok=%d, want %d/%d", pol.Requests, pol.OK, trickle, trickle)
	}
	if ab.Requests != flood {
		t.Fatalf("abuser ledger: requests=%d, want %d", ab.Requests, flood)
	}
	sort.Slice(politeLat, func(i, j int) bool { return politeLat[i] < politeLat[j] })
	p99 := politeLat[len(politeLat)*99/100]
	// The polite tenant waits at most one abuser quantum per request; 500ms
	// is an order of magnitude of headroom for race-detector CI.
	if p99 > 500*time.Millisecond {
		t.Fatalf("polite p99 = %v behind a %d-deep flood; fair scheduling failed", p99, flood)
	}
}

// TestRateLimitShedsAtEntry: a tenant with RatePerSec sheds its excess at
// submission with a typed *ShedError carrying the rate-limit reason and
// positive retry advice, and both ledgers (global and per-tenant) count it.
func TestRateLimitShedsAtEntry(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		Tenants: []TenantConfig{
			{Name: "capped", APIKey: "k-capped", RatePerSec: 5},
		},
		BatchSize:    1,
		BatchMaxWait: time.Millisecond,
	})
	var shed, ok int
	for i := 0; i < 10; i++ {
		_, err := s.Execute(context.Background(), "k-capped", demoQuery)
		if err == nil {
			ok++
			continue
		}
		var se *ShedError
		if !errors.As(err, &se) {
			t.Fatalf("request %d: want *ShedError, got %T: %v", i, err, err)
		}
		if se.Reason != ShedReasonRateLimit {
			t.Fatalf("request %d: reason = %q, want %q", i, se.Reason, ShedReasonRateLimit)
		}
		if se.RetryAfter <= 0 {
			t.Fatalf("request %d: rate-limit shed carries no retry advice", i)
		}
		shed++
	}
	// Burst = 5 tokens; 10 near-instant submissions admit 5 and shed 5 (the
	// microseconds between calls refill far less than one token).
	if ok != 5 || shed != 5 {
		t.Fatalf("ok=%d shed=%d, want 5/5 from a burst-5 bucket", ok, shed)
	}
	stats := s.Stats()
	if stats.Service.RateLimited != int64(shed) || stats.Service.Sheds != int64(shed) {
		t.Fatalf("service ledger: rate_limited=%d sheds=%d, want %d", stats.Service.RateLimited, stats.Service.Sheds, shed)
	}
	tc := stats.PerTenant["capped"]
	if tc.RateLimited != int64(shed) || tc.Sheds != int64(shed) {
		t.Fatalf("tenant ledger: rate_limited=%d sheds=%d, want %d", tc.RateLimited, tc.Sheds, shed)
	}
}

// TestSubSecondRetryAdviceRoundTrips pins the omitempty bugfix: when the
// controller's advice is under a millisecond, the body's retry_after_ms
// must still serialize (clamped to 1), so a client's parsed RetryAfter is
// millisecond-grain instead of falling back to the header's whole second.
func TestSubSecondRetryAdviceRoundTrips(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		Tenants:       []TenantConfig{{Name: "acme", APIKey: "k-acme"}},
		BatchSize:     4,
		BatchMaxWait:  time.Millisecond,
		MaxConcurrent: 1,
		// A nanosecond target/interval makes every sojourn "too long", so
		// sheds flow immediately and their advice ≈ sojourn: microseconds.
		ShedTarget:   1,
		ShedInterval: 1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL, APIKey: "k-acme", MaxRetries: -1}

	var mu sync.Mutex
	var sheds []*RemoteError
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(context.Background(), demoQuery)
			var re *RemoteError
			if errors.As(err, &re) && re.Detail.Kind == "shed" {
				mu.Lock()
				sheds = append(sheds, re)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(sheds) == 0 {
		t.Fatal("a nanosecond shed target produced no sheds across 40 concurrent requests")
	}
	for _, re := range sheds {
		if re.Detail.RetryAfterMS < 1 {
			t.Fatalf("shed body retry_after_ms = %d; positive advice was dropped by omitempty", re.Detail.RetryAfterMS)
		}
		if re.RetryAfter < time.Millisecond {
			t.Fatalf("client RetryAfter = %v, below the 1ms clamp", re.RetryAfter)
		}
		if re.Detail.Reason == "" {
			t.Fatal("shed detail carries no reason")
		}
	}
	// The point of the fix: at least one shed's advice stayed sub-second —
	// before it, every sub-millisecond advice inflated to the header's 1s.
	subSecond := false
	for _, re := range sheds {
		if re.RetryAfter < time.Second {
			subSecond = true
			break
		}
	}
	if !subSecond {
		t.Fatalf("all %d sheds advised ≥ 1s; the millisecond body field never round-tripped", len(sheds))
	}
}
