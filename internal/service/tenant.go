package service

import (
	"fmt"

	"repro/internal/core"
)

// TenantConfig declares one tenant of the service: a name, the API key that
// authenticates it, and the governor budgets that act as its admission
// control. Every tenant gets its own core.Engine over the server's shared
// DB, so budgets, plan caches and robustness counters are isolated per
// tenant while base relations are shared.
type TenantConfig struct {
	// Name identifies the tenant in records, /stats and flight keys.
	Name string
	// APIKey authenticates requests (the X-API-Key header over HTTP).
	APIKey string
	// TupleLimit bounds every query of this tenant to at most this many
	// materialized or delivered tuples; exceeding it rejects the request
	// with 429 and a typed resource payload. 0 = unbounded.
	TupleLimit int64
	// MemoryBudget bounds every query's estimated buffered bytes the same
	// way. 0 = unbounded.
	MemoryBudget int64
	// Weight is the tenant's deficit-round-robin share of execution slots
	// under contention: a weight-2 tenant drains twice the batches per
	// scheduler round of a weight-1 tenant. 0 (or anything < 1) means 1.
	Weight int
	// RatePerSec caps the tenant's submission rate with a token bucket
	// (burst = one second's worth); requests over the cap are shed at entry
	// with a typed *ShedError before they ever queue. 0 = unbounded.
	RatePerSec float64
	// Options are extra engine options applied after the server-wide ones
	// and the budget options (so a tenant can override parallelism or
	// strategy).
	Options []core.Option
}

// tenant is one admitted tenant: its config and its dedicated engine.
type tenant struct {
	cfg TenantConfig
	eng *core.Engine
}

// registry maps API keys and names to tenants. It is immutable after
// NewServer, so lookups need no lock.
type registry struct {
	byKey  map[string]*tenant
	byName map[string]*tenant
	names  []string // declaration order, for stable /stats output
}

// newRegistry builds every tenant engine over the shared db. Budgets become
// engine-level governor options: the admission decision is the governor
// trip itself, surfaced as a typed *core.ResourceError the HTTP layer maps
// to 429.
func newRegistry(db *core.DB, base []core.Option, tenants []TenantConfig) (*registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("service: at least one tenant is required")
	}
	reg := &registry{byKey: make(map[string]*tenant), byName: make(map[string]*tenant)}
	for _, tc := range tenants {
		if tc.Name == "" || tc.APIKey == "" {
			return nil, fmt.Errorf("service: tenant needs both a name and an API key (got name=%q)", tc.Name)
		}
		if _, dup := reg.byName[tc.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant name %q", tc.Name)
		}
		if _, dup := reg.byKey[tc.APIKey]; dup {
			return nil, fmt.Errorf("service: duplicate API key (tenant %q)", tc.Name)
		}
		opts := make([]core.Option, 0, len(base)+2+len(tc.Options))
		opts = append(opts, base...)
		opts = append(opts, core.WithTupleLimit(tc.TupleLimit), core.WithMemoryBudget(tc.MemoryBudget))
		opts = append(opts, tc.Options...)
		t := &tenant{cfg: tc, eng: core.NewEngine(db, opts...)}
		reg.byKey[tc.APIKey] = t
		reg.byName[tc.Name] = t
		reg.names = append(reg.names, tc.Name)
	}
	return reg, nil
}

// lookup resolves an API key to its tenant.
func (r *registry) lookup(apiKey string) (*tenant, bool) {
	t, ok := r.byKey[apiKey]
	return t, ok
}
