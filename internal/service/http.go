package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// DeadlineHeader is the request header a client sets to override the
// server's default deadline budget for one request, in milliseconds.
const DeadlineHeader = "X-Deadline-Ms"

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
}

// QueryResponse is the POST /query success body: the answer plus the same
// per-request record /stats keeps, so a client can reconcile its own calls
// against the service totals. It is exported for remote clients (Client,
// queryctl, queryload).
type QueryResponse struct {
	Tenant    string     `json:"tenant"`
	Open      bool       `json:"open"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	Truth     *bool      `json:"truth,omitempty"`
	Canonical string     `json:"canonical"`
	Timing    Record     `json:"timing"`
}

// errorBody is the envelope of every non-2xx response.
type errorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail classifies a failure for clients: Kind is the stable
// programmatic discriminator, and resource rejections carry the governor's
// typed fields so a client can see which budget tripped and by how much.
// It is exported so remote clients (Client, queryctl, queryload) can
// inspect the taxonomy without re-parsing messages.
type ErrorDetail struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Governor fields, set only for kind "resource" (HTTP 429).
	Limit    string `json:"limit,omitempty"`
	Operator string `json:"operator,omitempty"`
	Used     int64  `json:"used,omitempty"`
	Budget   int64  `json:"budget,omitempty"`
	// Stage is set for plan/exec failures that record one.
	Stage string `json:"stage,omitempty"`
	// RetryAfterMS is the server's backoff advice for retryable 503s
	// (kinds "shed" and "breaker"), mirroring the Retry-After header at
	// millisecond grain. Always ≥ 1 when advice exists: the field is
	// omitempty, so sub-millisecond advice is clamped up rather than
	// serialized as 0 and dropped — a client falling back to the
	// whole-second header would turn ~200µs of advice into a full second.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Reason splits kind "shed" by defense line: "sojourn" (CoDel dequeue
	// shed), "queue-full" (entry shed), or "rate-limit" (token bucket).
	Reason string `json:"reason,omitempty"`
	// SojournMS is how long a shed request sat in the queue (kind "shed").
	SojournMS int64 `json:"sojourn_ms,omitempty"`
	// DeadlineMS/DeadlineRemainingMS report the deadline budget for kind
	// "timeout" (HTTP 504): the budget the request ran under and what was
	// left of it when the response was written (usually 0 — the budget is
	// what ran out).
	DeadlineMS          int64 `json:"deadline_ms,omitempty"`
	DeadlineRemainingMS int64 `json:"deadline_remaining_ms,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /query   X-API-Key header + {"query": "..."} body
//	GET  /stats   StatsReport: service counters, per-tenant Snapshots, recent records
//	GET  /healthz liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{ErrorDetail{Kind: "request", Message: "body must be {\"query\": \"...\"}"}})
		return
	}
	qctx := r.Context()
	budget := s.deadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil || ms <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{ErrorDetail{Kind: "request", Message: DeadlineHeader + " must be a positive integer of milliseconds"}})
			return
		}
		budget = time.Duration(ms) * time.Millisecond
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, budget)
		defer cancel()
	}
	out, err := s.Execute(qctx, r.Header.Get("X-API-Key"), body.Query)
	if err != nil {
		status := statusOf(err)
		d := detailOf(err)
		if ra := retryAfterOf(err); ra > 0 {
			// Retry-After is whole seconds; round up so "wait 200ms" never
			// renders as "retry immediately".
			w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
			// The body field is millisecond grain and omitempty: clamp
			// sub-millisecond advice to 1ms so it serializes at all — a 0
			// here silently upgrades a ~200µs backoff to the header's whole
			// second.
			if ms := ra.Milliseconds(); ms >= 1 {
				d.RetryAfterMS = ms
			} else {
				d.RetryAfterMS = 1
			}
		}
		if status == http.StatusGatewayTimeout {
			// The 504 body reports the deadline budget the request ran
			// under and what was left of it when the response was written.
			d.DeadlineMS = budget.Milliseconds()
			if dl, ok := qctx.Deadline(); ok {
				if rem := time.Until(dl).Milliseconds(); rem > 0 {
					d.DeadlineRemainingMS = rem
				}
			}
		}
		writeJSON(w, status, errorBody{d})
		return
	}
	resp := QueryResponse{
		Tenant:    out.Record.Tenant,
		Open:      out.Result.Open,
		Canonical: out.Result.Canonical,
		Timing:    out.Record,
	}
	if out.Result.Open {
		resp.Columns = columnsOf(out.Result.Rows)
		resp.Rows = rowsOf(out.Result.Rows)
	} else {
		truth := out.Result.Truth
		resp.Truth = &truth
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// columnsOf extracts the schema's attribute names.
func columnsOf(rel *relation.Relation) []string {
	if rel == nil {
		return nil
	}
	sch := rel.Schema()
	cols := make([]string, len(sch))
	for i, a := range sch {
		cols[i] = a.Name
	}
	return cols
}

// rowsOf renders the answer relation as strings (the relation's own value
// rendering, so marks and nulls keep their textual forms).
func rowsOf(rel *relation.Relation) [][]string {
	if rel == nil {
		return [][]string{}
	}
	rows := make([][]string, 0, rel.Len())
	for _, t := range rel.Tuples() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		rows = append(rows, row)
	}
	return rows
}

// statusOf maps the service's error taxonomy to HTTP statuses. Client
// mistakes are 4xx (429 specifically for governor budget trips, so a
// client can back off), overload rejections (shed, breaker, degraded,
// shutdown) are 503, a blown deadline budget is 504, a caller hanging up
// maps to the nginx-convention 499 — the two are deliberately distinct:
// 504 means the server ran out of budget, 499 means the client left — and
// only genuine execution failures are 500.
func statusOf(err error) int {
	var (
		parseErr    *core.ParseError
		safetyErr   *core.SafetyError
		planErr     *core.PlanError
		resourceErr *core.ResourceError
		shedErr     *ShedError
		openErr     *BreakerOpenError
		degradedErr *core.DegradedError
	)
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusUnauthorized
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.As(err, &shedErr), errors.As(err, &openErr), errors.As(err, &degradedErr):
		return http.StatusServiceUnavailable
	case errors.As(err, &resourceErr):
		return http.StatusTooManyRequests
	case errors.As(err, &parseErr), errors.As(err, &safetyErr), errors.As(err, &planErr):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// detailOf builds the typed error payload for err.
func detailOf(err error) ErrorDetail {
	d := ErrorDetail{Message: err.Error()}
	var (
		parseErr    *core.ParseError
		safetyErr   *core.SafetyError
		planErr     *core.PlanError
		resourceErr *core.ResourceError
		execErr     *core.ExecError
		shedErr     *ShedError
		openErr     *BreakerOpenError
		degradedErr *core.DegradedError
	)
	switch {
	case errors.Is(err, ErrUnknownTenant):
		d.Kind = "auth"
	case errors.Is(err, ErrShuttingDown):
		d.Kind = "shutdown"
	case errors.As(err, &shedErr):
		d.Kind = "shed"
		d.Reason = shedErr.Reason
		d.SojournMS = shedErr.Sojourn.Milliseconds()
	case errors.As(err, &openErr):
		d.Kind = "breaker"
	case errors.As(err, &degradedErr):
		d.Kind = "degraded"
	case errors.As(err, &resourceErr):
		d.Kind = "resource"
		d.Limit = resourceErr.Limit
		d.Operator = resourceErr.Operator
		d.Used = resourceErr.Used
		d.Budget = resourceErr.Budget
	case errors.As(err, &parseErr):
		d.Kind = "parse"
	case errors.As(err, &safetyErr):
		d.Kind = "safety"
	case errors.As(err, &planErr):
		d.Kind = "plan"
		d.Stage = planErr.Stage
	case errors.Is(err, context.DeadlineExceeded):
		d.Kind = "timeout"
	case errors.Is(err, context.Canceled):
		d.Kind = "cancelled"
	case errors.As(err, &execErr):
		d.Kind = "exec"
		d.Stage = execErr.Stage
	default:
		d.Kind = "internal"
	}
	return d
}

// retryAfterOf extracts the server's backoff advice from retryable
// rejections (admission sheds and open breakers). Other errors return 0:
// no Retry-After header is sent, because retrying would not help (degraded
// rejections need the plan cache to warm, not time to pass).
func retryAfterOf(err error) time.Duration {
	var shedErr *ShedError
	if errors.As(err, &shedErr) {
		return shedErr.RetryAfter
	}
	var openErr *BreakerOpenError
	if errors.As(err, &openErr) {
		return openErr.RetryAfter
	}
	return 0
}
