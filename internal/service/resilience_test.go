package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/testutil"
)

// TestOverloadShedsWithTypedRetryAfter drives the service into genuine
// overload — one execution slot, a flood of concurrent requests, and a
// sub-microsecond sojourn target — and checks the CoDel controller sheds
// with typed errors whose advice and counters reconcile. Every request must
// still get a terminal answer: shedding is a fast rejection, not a drop.
func TestOverloadShedsWithTypedRetryAfter(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 120
	s := newTestServer(t, Config{
		BatchSize:     4,
		MaxConcurrent: 1,
		// A nanosecond target/interval makes any standing queue an overload:
		// the controller's decisions become deterministic without needing a
		// slow engine.
		ShedTarget:   time.Nanosecond,
		ShedInterval: time.Nanosecond,
	})

	errs := make([]error, n)
	outs := make([]*Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Execute(context.Background(), "k-acme", demoQuery)
		}(i)
	}
	wg.Wait()

	var ok, sheds int64
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
			if outs[i].Record.ExecNS <= 0 {
				t.Errorf("request %d: successful record must attribute exec time, got %+v", i, outs[i].Record)
			}
		default:
			var se *ShedError
			if !errors.As(err, &se) {
				t.Fatalf("request %d: overload may only surface typed sheds, got %v", i, err)
			}
			if se.RetryAfter <= 0 {
				t.Errorf("request %d: shed without retry advice: %+v", i, se)
			}
			if outs[i] != nil && outs[i].Record.QueueNS < 0 {
				t.Errorf("request %d: shed record must carry its queue sojourn: %+v", i, outs[i].Record)
			}
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("a flood through one slot with a 1ns target must shed")
	}
	if ok == 0 {
		t.Fatal("shedding must not starve the queue — some requests must succeed")
	}
	svc := s.Stats().Service
	if svc.Sheds != sheds {
		t.Errorf("counters saw %d sheds, callers saw %d", svc.Sheds, sheds)
	}
	if svc.Requests != n {
		t.Errorf("every request must be accounted: counters %d, sent %d", svc.Requests, n)
	}
}

// TestSubmissionQueueFullShedsOnEntry pins the one entry-side shed: when the
// submission queue itself is full the request is rejected immediately with a
// typed ShedError instead of blocking the submitter. The batcher's collector
// is drained and stopped first so the queue's capacity is exact.
func TestSubmissionQueueFullShedsOnEntry(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewServer(demoDB(), Config{
		Tenants:    []TenantConfig{{Name: "acme", APIKey: "k-acme"}},
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stop the collector; the channel's buffer (depth 1) is now the whole
	// queue. No Shutdown in cleanup — the batcher is already closed.
	s.batch.close()

	ten, _ := s.reg.lookup("k-acme")
	mk := func() *request {
		return &request{ctx: context.Background(), tenant: ten, query: demoQuery,
			enqueued: time.Now(), resp: make(chan *Outcome, 1)}
	}
	if err := s.submit(mk()); err != nil {
		t.Fatalf("first submit must fill the buffer, not fail: %v", err)
	}
	err = s.submit(mk())
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("full queue must shed on entry with *ShedError, got %v", err)
	}
	if se.Sojourn != 0 || se.RetryAfter <= 0 {
		t.Fatalf("entry shed never queued, so sojourn 0 and positive advice: %+v", se)
	}
	if statusOf(err) != http.StatusServiceUnavailable || detailOf(err).Kind != "shed" {
		t.Fatalf("entry shed must map to 503/shed: %d %q", statusOf(err), detailOf(err).Kind)
	}
	svc := s.Stats().Service
	if svc.Sheds != 1 || svc.Requests != 1 {
		t.Fatalf("entry shed must be counted as a shed request: %+v", svc)
	}
}

// TestBreakerOpensAndRecoversEndToEnd injects three consecutive service
// faults, watches the tenant's breaker open, verifies the fast typed 503
// (including over HTTP with a Retry-After header), and then watches the
// half-open probe re-close it. Each arm fires on the first invocation it
// observes unfired, so three identical arms mean three consecutive failures.
func TestBreakerOpensAndRecoversEndToEnd(t *testing.T) {
	testutil.CheckGoroutines(t)
	const cooldown = 100 * time.Millisecond
	plan := faultinject.New(
		faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindError},
		faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindError},
		faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindError},
	)
	s := newTestServer(t, Config{
		BatchSize:       1,
		BreakerFailures: 3,
		BreakerCooldown: cooldown,
		ShedTarget:      -1, // isolate the breaker from the admission controller
		Faults:          plan,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		_, err := s.Execute(context.Background(), "k-acme", demoQuery)
		var ee *core.ExecError
		if !errors.As(err, &ee) || ee.Stage != "service.flight" || !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("fault %d must surface as a typed service.flight ExecError, got %v", i+1, err)
		}
	}
	if fired := plan.Fired(); len(fired) != 3 {
		t.Fatalf("all three arms must have fired, got %v", fired)
	}

	// The breaker is open: the next request fails fast with a typed 503.
	_, err := s.Execute(context.Background(), "k-acme", demoQuery)
	var oe *BreakerOpenError
	if !errors.As(err, &oe) {
		t.Fatalf("want *BreakerOpenError after three consecutive failures, got %v", err)
	}
	if oe.Tenant != "acme" || oe.RetryAfter <= 0 || oe.RetryAfter > cooldown {
		t.Fatalf("breaker rejection fields wrong: %+v", oe)
	}

	// The same rejection over HTTP: 503, kind breaker, Retry-After header,
	// and millisecond advice in the body — which the retrying Client decodes.
	client := &Client{Base: srv.URL, APIKey: "k-acme", MaxRetries: -1}
	_, err = client.Query(context.Background(), demoQuery)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError over HTTP, got %v", err)
	}
	if re.Status != http.StatusServiceUnavailable || re.Detail.Kind != "breaker" {
		t.Fatalf("want 503/breaker over the wire: %d %q", re.Status, re.Detail.Kind)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("breaker 503 must carry retry advice, got %v", re.RetryAfter)
	}
	if !retryable(err) {
		t.Fatal("a breaker rejection is an overload 503 the client may retry")
	}

	// Cooldown over: the next request is the half-open probe; the fault plan
	// is exhausted, so it succeeds and re-closes the breaker.
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := s.Execute(context.Background(), "k-acme", demoQuery); err != nil {
		t.Fatalf("the half-open probe must succeed once faults are spent: %v", err)
	}
	report := s.Stats()
	bs := report.Breakers["acme"]
	if bs.State != "closed" || bs.Opens != 1 || bs.HalfOpens != 1 || bs.Closes != 1 {
		t.Fatalf("breaker lifecycle wrong: %+v", bs)
	}
	svc := report.Service
	if svc.BreakerOpened != 1 || svc.BreakerHalfOpened != 1 || svc.BreakerClosed != 1 {
		t.Fatalf("transition counters disagree with the breaker: %+v", svc)
	}
	if svc.BreakerRejected != 2 {
		t.Fatalf("two rejections hit the open breaker, counters saw %d", svc.BreakerRejected)
	}
}

// TestDegradedModeCacheOnly pins the degraded path end to end: consecutive
// governor trips put the tenant in cache-only mode, where a warm query keeps
// answering from the plan memo while a cold one gets a typed DegradedError —
// partial service instead of hard failure.
func TestDegradedModeCacheOnly(t *testing.T) {
	testutil.CheckGoroutines(t)
	// The budget is calibrated to the demo fixture: the warm query fits
	// under 8 tuples, the divisive one does not.
	const (
		warmQuery = demoQuery
		tripQuery = `{ x | student(x) and forall y: lecture(y) => attends(x, y) }`
		coldQuery = `{ x | student(x) }`
	)
	s := newTestServer(t, Config{
		Tenants:       []TenantConfig{{Name: "frail", APIKey: "k-frail", TupleLimit: 8}},
		EngineOptions: []core.Option{core.WithPlanCache(0)},
		BatchSize:     1,
		DegradeTrips:  2,
		DegradeWindow: time.Minute,
		ShedTarget:    -1,
	})

	// Warm the plan cache with a query that fits the budget.
	if _, err := s.Execute(context.Background(), "k-frail", warmQuery); err != nil {
		t.Fatalf("warm query must fit the budget: %v", err)
	}

	// Two consecutive governor trips enter degraded mode.
	for i := 0; i < 2; i++ {
		_, err := s.Execute(context.Background(), "k-frail", tripQuery)
		var rerr *core.ResourceError
		if !errors.As(err, &rerr) {
			t.Fatalf("trip %d: want *core.ResourceError, got %v", i+1, err)
		}
	}
	if bs := s.Stats().Breakers["frail"]; !bs.Degraded || bs.State != "closed" {
		t.Fatalf("two consecutive trips must degrade without opening: %+v", bs)
	}

	// Degraded mode: the warm query still answers, from the memo.
	out, err := s.Execute(context.Background(), "k-frail", warmQuery)
	if err != nil {
		t.Fatalf("warm query must survive degraded mode: %v", err)
	}
	if !out.Record.Degraded || !out.Record.CacheHit {
		t.Fatalf("degraded success must be marked and cache-served: %+v", out.Record)
	}
	if out.Result.Rows.Len() != 1 {
		t.Fatalf("degraded replay changed the answer: %+v", out.Result)
	}

	// A cold plan is turned away with the typed degraded rejection — and no
	// Retry-After, because waiting does not warm a cache.
	_, err = s.Execute(context.Background(), "k-frail", coldQuery)
	var de *core.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("cold plan in degraded mode: want *core.DegradedError, got %v", err)
	}
	if statusOf(err) != http.StatusServiceUnavailable || detailOf(err).Kind != "degraded" {
		t.Fatalf("degraded rejection must map to 503/degraded: %d %q", statusOf(err), detailOf(err).Kind)
	}
	if retryAfterOf(err) != 0 {
		t.Fatal("degraded rejections must not advertise Retry-After")
	}
	if retryable(&RemoteError{Status: 503, Detail: detailOf(err), Err: err}) {
		t.Fatal("the client must not retry a degraded rejection")
	}

	svc := s.Stats().Service
	if svc.DegradedModeEntries != 1 || svc.DegradedAdmitted != 1 || svc.DegradedRejected != 1 {
		t.Fatalf("degraded counters wrong: %+v", svc)
	}
}

// TestDeadlineBudgetPropagates pins deadline handling across the stack: the
// server default applies when the caller sets none, the deadline propagates
// into the evaluation (an injected stall blows it), the failure maps to 504
// with the budget in the body, and the X-Deadline-Ms header overrides per
// request.
func TestDeadlineBudgetPropagates(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan := faultinject.New(
		faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond},
		faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond},
	)
	s := newTestServer(t, Config{
		BatchSize:       1,
		DefaultDeadline: 50 * time.Millisecond,
		ShedTarget:      -1,
		BreakerFailures: -1,
		Faults:          plan,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// No caller deadline: the server's 50ms budget cancels the stalled
	// evaluation.
	start := time.Now()
	_, err := s.Execute(context.Background(), "k-acme", demoQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled evaluation must blow the default budget, got %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Fatalf("the deadline must release the caller, not wait out the stall (%v)", elapsed)
	}

	// Over HTTP with an explicit header budget: 504, kind timeout, and the
	// budget echoed in the body.
	req, _ := http.NewRequest("POST", srv.URL+"/query", jsonBody(t, queryRequest{Query: demoQuery}))
	req.Header.Set("X-API-Key", "k-acme")
	req.Header.Set(DeadlineHeader, "40")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Kind != "timeout" || body.Error.DeadlineMS != 40 {
		t.Fatalf("504 body must carry the deadline budget: %+v", body.Error)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("a blown deadline is not an overload rejection; no Retry-After")
	}

	// A malformed header is the client's mistake.
	req, _ = http.NewRequest("POST", srv.URL+"/query", jsonBody(t, queryRequest{Query: demoQuery}))
	req.Header.Set("X-API-Key", "k-acme")
	req.Header.Set(DeadlineHeader, "soon")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline header: want 400, got %d", resp2.StatusCode)
	}

	// The 504s were written when the callers' budgets died; the pipeline's
	// records land once the injected stalls end. Wait for them.
	waitFor(t, 2*time.Second, func() bool { return s.Stats().Service.DeadlineExceeded == 2 })
	// Both blown requests left records with their admission-time budget.
	for _, rec := range s.Stats().Recent {
		if rec.Status == http.StatusGatewayTimeout && rec.DeadlineMS <= 0 {
			t.Fatalf("504 record lost its deadline budget: %+v", rec)
		}
	}
}

// TestTimeoutAndCancelStayDistinct pins the taxonomy rule at both mapping
// sites: a blown deadline budget (the server ran out of time) is 504/timeout
// and a caller hanging up (the client left) is 499/cancelled — conflating
// them would poison both the breaker and the operator's dashboards.
func TestTimeoutAndCancelStayDistinct(t *testing.T) {
	if s := statusOf(context.DeadlineExceeded); s != http.StatusGatewayTimeout {
		t.Fatalf("deadline: want 504, got %d", s)
	}
	if s := statusOf(context.Canceled); s != 499 {
		t.Fatalf("cancel: want 499, got %d", s)
	}
	if k := detailOf(context.DeadlineExceeded).Kind; k != "timeout" {
		t.Fatalf("deadline: want kind timeout, got %q", k)
	}
	if k := detailOf(context.Canceled).Kind; k != "cancelled" {
		t.Fatalf("cancel: want kind cancelled, got %q", k)
	}
	// The breaker mirrors the distinction: a blown deadline is evidence of
	// engine sickness, a hang-up proves nothing.
	if breakerOutcome(context.DeadlineExceeded) != outcomeFailure {
		t.Fatal("deadline blowouts must count against the breaker")
	}
	if breakerOutcome(context.Canceled) != outcomeNeutral {
		t.Fatal("cancellations must be neutral for the breaker")
	}
}

// TestResilienceTaxonomyRoundTrip pins the full typed family the overload
// work added — shed, breaker, degraded — through statusOf/detailOf exactly
// as the HTTP layer serializes them, next to the pre-existing kinds.
func TestResilienceTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
		retry  bool // Retry-After advertised
	}{
		{shedError(30*time.Millisecond, 10*time.Millisecond, 200*time.Millisecond), 503, "shed", true},
		{queueFullError(10*time.Millisecond, 200*time.Millisecond), 503, "shed", true},
		{breakerOpenError("acme", 500*time.Millisecond), 503, "breaker", true},
		{&core.DegradedError{Plan: "q", Err: errors.New("cold")}, 503, "degraded", false},
		{ErrShuttingDown, 503, "shutdown", false},
		{ErrUnknownTenant, 401, "auth", false},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.status {
			t.Errorf("%T: status %d, want %d", tc.err, got, tc.status)
		}
		d := detailOf(tc.err)
		if d.Kind != tc.kind {
			t.Errorf("%T: kind %q, want %q", tc.err, d.Kind, tc.kind)
		}
		if d.Message == "" {
			t.Errorf("%T: empty message", tc.err)
		}
		if (retryAfterOf(tc.err) > 0) != tc.retry {
			t.Errorf("%T: Retry-After advertised=%v, want %v", tc.err, retryAfterOf(tc.err) > 0, tc.retry)
		}
	}
	// The shed detail carries its sojourn for the client's telemetry.
	if d := detailOf(shedError(30*time.Millisecond, 10*time.Millisecond, 200*time.Millisecond)); d.SojournMS != 30 {
		t.Errorf("shed detail lost the sojourn: %+v", d)
	}
}

// TestShutdownUnderLoad drives a full overload mix — floods, sheds, an
// injected fault, tight deadlines — and shuts the server down mid-storm.
// The contract: every accepted request gets a terminal typed response, the
// drain completes, and no goroutine outlives it (the race detector and
// CheckGoroutines guard the rest).
func TestShutdownUnderLoad(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewServer(demoDB(), Config{
		Tenants:         []TenantConfig{{Name: "acme", APIKey: "k-acme"}},
		BatchSize:       4,
		MaxConcurrent:   2,
		DefaultDeadline: 500 * time.Millisecond,
		ShedTarget:      time.Microsecond,
		ShedInterval:    time.Microsecond,
		BreakerFailures: 3,
		BreakerCooldown: 10 * time.Millisecond,
		Faults: faultinject.New(
			faultinject.Arm{Point: faultinject.PointServiceFlight, Kind: faultinject.KindError, After: 3},
			faultinject.Arm{Point: faultinject.PointServiceBatcher, Kind: faultinject.KindPanic, After: 5},
		),
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 150
	queries := []string{demoQuery, `{ x | student(x) }`, `{ x, y | student(x) and attends(x, y) }`}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Execute(context.Background(), "k-acme", queries[i%len(queries)])
		}(i)
	}
	// Shut down while the storm is in flight.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain under load failed: %v", err)
	}
	wg.Wait()

	counts := map[string]int{}
	for i, err := range errs {
		switch {
		case err == nil:
			counts["ok"]++
		case errors.Is(err, ErrShuttingDown):
			counts["shutdown"]++
		case func() bool { var se *ShedError; return errors.As(err, &se) }():
			counts["shed"]++
		case func() bool { var oe *BreakerOpenError; return errors.As(err, &oe) }():
			counts["breaker"]++
		case func() bool { var ee *core.ExecError; return errors.As(err, &ee) }():
			counts["fault"]++
		case errors.Is(err, context.DeadlineExceeded):
			counts["timeout"]++
		default:
			t.Fatalf("request %d died untyped under load: %v", i, err)
		}
	}
	if counts["ok"] == 0 {
		t.Fatalf("the storm must not fail every request: %v", counts)
	}
	t.Logf("shutdown under load: %v", counts)
}

// waitFor polls cond until it holds or the budget runs out.
func waitFor(t *testing.T, budget time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within the wait budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}
