package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/testutil"
)

// demoDB mirrors the core test fixture: students, attendance, lectures.
func demoDB() *core.DB {
	db := core.NewDB()
	st := db.MustDefine("student", "name")
	for _, n := range []string{"ann", "bob", "eve"} {
		st.InsertValues(relation.Str(n))
	}
	att := db.MustDefine("attends", "name", "lecture")
	att.InsertValues(relation.Str("ann"), relation.Str("db101"))
	att.InsertValues(relation.Str("bob"), relation.Str("db101"))
	lec := db.MustDefine("lecture", "id")
	lec.InsertValues(relation.Str("db101"))
	return db
}

// demoQuery exercises negation and an existential; its answer is exactly
// {eve}, the one student attending nothing.
const demoQuery = `{ x | student(x) and not exists y: attends(x, y) }`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = []TenantConfig{{Name: "acme", APIKey: "k-acme"}}
	}
	s, err := NewServer(demoDB(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// TestSingleFlightColdQueries is the acceptance gate: 8 identical
// concurrent cold queries evaluate exactly once. Batch size 8 with a
// generous max-wait makes the collapse structural — all eight land in one
// batch, form one group, and the group leader is the only producer.
func TestSingleFlightColdQueries(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 8
	s := newTestServer(t, Config{
		BatchSize:    n,
		BatchMaxWait: 500 * time.Millisecond,
	})

	outs := make([]*Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := s.Execute(context.Background(), "k-acme", demoQuery)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()

	elects, shares := 0, 0
	for i, out := range outs {
		if out == nil {
			t.Fatalf("request %d got no outcome", i)
		}
		switch out.Record.Flight {
		case flightElect:
			elects++
		case flightShare:
			shares++
		default:
			t.Errorf("request %d: unexpected flight role %q", i, out.Record.Flight)
		}
		if out.Result == nil || out.Result.Rows.Len() != 1 {
			t.Errorf("request %d: want 1 row (eve), got %+v", i, out.Result)
		}
		if out.Record.Batch != n {
			t.Errorf("request %d rode batch of %d, want %d", i, out.Record.Batch, n)
		}
	}
	if elects != 1 || shares != n-1 {
		t.Fatalf("want exactly 1 election and %d shares, got %d/%d", n-1, elects, shares)
	}
	if runs := s.Stats().Tenants["acme"].Runs; runs != 1 {
		t.Fatalf("engine ran %d times, want exactly 1", runs)
	}
}

// TestMultiTenantIsolation runs N tenants × M identical queries and checks
// the collapse happens per tenant: the flights of one tenant never absorb
// another's, and each tenant's engine runs exactly once.
func TestMultiTenantIsolation(t *testing.T) {
	testutil.CheckGoroutines(t)
	const tenantsN, perTenant = 3, 4
	var tcs []TenantConfig
	for i := 0; i < tenantsN; i++ {
		tcs = append(tcs, TenantConfig{
			Name:   fmt.Sprintf("t%d", i),
			APIKey: fmt.Sprintf("key-%d", i),
		})
	}
	s := newTestServer(t, Config{
		Tenants:      tcs,
		BatchSize:    tenantsN * perTenant,
		BatchMaxWait: 500 * time.Millisecond,
	})

	var wg sync.WaitGroup
	for i := 0; i < tenantsN; i++ {
		for j := 0; j < perTenant; j++ {
			wg.Add(1)
			go func(key string) {
				defer wg.Done()
				if _, err := s.Execute(context.Background(), key, demoQuery); err != nil {
					t.Errorf("tenant %s: %v", key, err)
				}
			}(fmt.Sprintf("key-%d", i))
		}
	}
	wg.Wait()

	report := s.Stats()
	if len(report.Tenants) != tenantsN {
		t.Fatalf("want %d tenant snapshots, got %d", tenantsN, len(report.Tenants))
	}
	for name, snap := range report.Tenants {
		if snap.Runs != 1 {
			t.Errorf("tenant %s ran %d times, want exactly 1 per fingerprint", name, snap.Runs)
		}
	}
	if got := report.Service.Elections; got != tenantsN {
		t.Errorf("want %d elections (one per tenant), got %d", tenantsN, got)
	}
	if got := report.Service.SharedResults; got != int64(tenantsN*(perTenant-1)) {
		t.Errorf("want %d shared results, got %d", tenantsN*(perTenant-1), got)
	}
}

// TestAdmissionRejects429 pins the admission path: a tenant whose tuple
// budget cannot fit the query is rejected with a typed *core.ResourceError,
// and the HTTP layer maps it to 429 with the governor's fields in the body.
func TestAdmissionRejects429(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		Tenants: []TenantConfig{
			{Name: "cheap", APIKey: "k-cheap", TupleLimit: 2},
			{Name: "rich", APIKey: "k-rich"},
		},
	})

	_, err := s.Execute(context.Background(), "k-cheap", demoQuery)
	var re *core.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *core.ResourceError, got %v", err)
	}
	if re.Limit != "tuples" || re.Budget != 2 || re.Used <= re.Budget {
		t.Fatalf("governor fields look wrong: %+v", re)
	}

	// The rich tenant is not affected by the cheap tenant's budget.
	if _, err := s.Execute(context.Background(), "k-rich", demoQuery); err != nil {
		t.Fatalf("unbounded tenant must pass: %v", err)
	}

	// The same trip over HTTP: 429 with the typed payload.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp := postQuery(t, srv.URL, "k-cheap", demoQuery)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Kind != "resource" || body.Error.Limit != "tuples" || body.Error.Budget != 2 || body.Error.Used <= 2 {
		t.Fatalf("429 body lost the governor fields: %+v", body.Error)
	}
}

// TestHTTPQueryAndAuth drives the handler end to end: a valid query
// returns rows and a timing record, a bad key gets 401, a malformed body
// 400, and a parse failure a typed "parse" error.
func TestHTTPQueryAndAuth(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postQuery(t, srv.URL, "k-acme", demoQuery)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("want 200, got %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Tenant != "acme" || !qr.Open || len(qr.Rows) != 1 || qr.Rows[0][0] != "eve" {
		t.Fatalf("unexpected answer: %+v", qr)
	}
	if qr.Columns[0] == "" || qr.Timing.Fingerprint == "" || qr.Timing.Status != 200 {
		t.Fatalf("timing record incomplete: %+v", qr.Timing)
	}

	resp = postQuery(t, srv.URL, "wrong-key", demoQuery)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key: want 401, got %d", resp.StatusCode)
	}

	resp = postQuery(t, srv.URL, "k-acme", `{ x | oops(`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse failure: want 400, got %d", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Kind != "parse" {
		t.Fatalf("want kind parse, got %+v", body.Error)
	}

	req, _ := http.NewRequest("POST", srv.URL+"/query", bytes.NewBufferString("not json"))
	req.Header.Set("X-API-Key", "k-acme")
	badResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: want 400, got %d", badResp.StatusCode)
	}

	healthResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthResp.Body.Close()
	if healthResp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: want 200, got %d", healthResp.StatusCode)
	}
}

// TestClosedQueryOverHTTP checks the truth-valued path keeps its shape:
// no rows, a truth field, and the canonical form of the sentence.
func TestClosedQueryOverHTTP(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postQuery(t, srv.URL, "k-acme", `forall y: lecture(y) => exists x: attends(x, y)`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("want 200, got %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Open || qr.Truth == nil || !*qr.Truth || qr.Rows != nil {
		t.Fatalf("closed query answer malformed: %+v", qr)
	}
}

// TestShutdownDrains pins graceful shutdown: requests accepted before
// Shutdown are answered, requests after are rejected with ErrShuttingDown,
// and no goroutine outlives the drain.
func TestShutdownDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewServer(demoDB(), Config{
		Tenants: []TenantConfig{{Name: "acme", APIKey: "k-acme"}},
		// A long max-wait so in-flight requests are still buffered when
		// Shutdown lands — the drain, not the timer, must flush them.
		BatchSize:    64,
		BatchMaxWait: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	outs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Execute(context.Background(), "k-acme", demoQuery)
			outs <- err
		}()
	}
	// Let the submissions reach the batcher buffer, then shut down.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()
	close(outs)
	for err := range outs {
		if err != nil {
			t.Errorf("accepted request lost in shutdown: %v", err)
		}
	}

	if _, err := s.Execute(context.Background(), "k-acme", demoQuery); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: want ErrShuttingDown, got %v", err)
	}
	if s.Shutdown(context.Background()) != nil {
		t.Fatal("second shutdown must be a clean no-op")
	}
}

// TestStatsReconcile pins the observability invariant from the issue: the
// /stats Snapshot totals reconcile with the per-request records. For every
// tenant, the number of records that ran an evaluation (flight == elect)
// equals the engine's Snapshot.Runs, and the service counters add up.
func TestStatsReconcile(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		Tenants: []TenantConfig{
			{Name: "a", APIKey: "ka"},
			{Name: "b", APIKey: "kb"},
		},
		BatchSize:    4,
		BatchMaxWait: 5 * time.Millisecond,
	})

	queries := []string{
		demoQuery,
		`{ x | student(x) }`,
		`{ x | student(x) and not exists y: attends(x, y) }`,
	}
	var wg sync.WaitGroup
	for _, key := range []string{"ka", "kb"} {
		for _, q := range queries {
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(key, q string) {
					defer wg.Done()
					if _, err := s.Execute(context.Background(), key, q); err != nil {
						t.Errorf("%s %q: %v", key, q, err)
					}
				}(key, q)
			}
		}
	}
	wg.Wait()

	report := s.Stats()
	elected := map[string]int64{}
	var recorded int64
	for _, rec := range report.Recent {
		recorded++
		if rec.Flight == flightElect {
			elected[rec.Tenant]++
		}
	}
	for name, snap := range report.Tenants {
		if elected[name] != snap.Runs {
			t.Errorf("tenant %s: %d elect records but Snapshot.Runs=%d — the layers disagree",
				name, elected[name], snap.Runs)
		}
	}
	svc := report.Service
	if svc.Requests != recorded {
		t.Errorf("counters saw %d requests but the ring kept %d records", svc.Requests, recorded)
	}
	if svc.Elections+svc.SharedResults != svc.Requests {
		t.Errorf("every successful request is an election or a share: %d + %d != %d",
			svc.Elections, svc.SharedResults, svc.Requests)
	}
	if svc.BatchedRequests != svc.Requests || svc.Batches == 0 {
		t.Errorf("batch accounting off: %+v", svc)
	}
	// The /stats endpoint serves the same report as JSON.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Tenants) != 2 || wire.Service.Requests == 0 || len(wire.Recent) == 0 {
		t.Fatalf("/stats payload incomplete: %+v", wire.Service)
	}
	for name, snap := range wire.Tenants {
		if snap.Version != core.SnapshotVersion {
			t.Errorf("tenant %s snapshot lost its version over the wire: %+v", name, snap)
		}
	}
}

// TestCancelledCallerGetsContextError checks a caller whose own context
// dies while queued gets its context error back, and the pipeline still
// completes the request without blocking.
func TestCancelledCallerGetsContextError(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestServer(t, Config{
		BatchSize:    64,
		BatchMaxWait: 100 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Execute(ctx, "k-acme", demoQuery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Drain happens in cleanup; the buffered resp channel means the
	// pipeline's answer to the dead caller cannot block shutdown.
}

func postQuery(t *testing.T, base, key, query string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(queryRequest{Query: query})
	req, err := http.NewRequest("POST", base+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", key)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
