package service

import (
	"sync"
	"time"
)

// batcher collects requests from a channel and dispatches them in batches,
// so a burst of requests pays for its planner and flight-table work per
// distinct query, not per request. A batch flushes when it reaches size
// requests or when its oldest request has waited maxWait, whichever comes
// first; each flushed batch runs on its own goroutine so one slow batch
// never delays the next flush. close drains: buffered requests are flushed
// and every dispatched batch finishes before close returns.
type batcher struct {
	in      chan *request
	size    int
	maxWait time.Duration
	run     func([]*request)

	quit     chan struct{} // closed by close(): stop collecting, drain
	done     chan struct{} // closed by the collector after the drain
	dispatch sync.WaitGroup
}

func newBatcher(size, depth int, maxWait time.Duration, run func([]*request)) *batcher {
	b := &batcher{
		in:      make(chan *request, depth),
		size:    size,
		maxWait: maxWait,
		run:     run,
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.loop()
	return b
}

// loop is the collector goroutine: the only reader of b.in and the only
// owner of the pending batch and its flush timer.
func (b *batcher) loop() {
	defer close(b.done)
	var (
		batch   []*request
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		out := batch
		batch = nil
		b.dispatch.Add(1)
		go func() {
			defer b.dispatch.Done()
			b.run(out)
		}()
	}
	for {
		select {
		case r := <-b.in:
			batch = append(batch, r)
			if len(batch) == 1 {
				timer = time.NewTimer(b.maxWait)
				timeout = timer.C
			}
			if len(batch) >= b.size {
				flush()
			}
		case <-timeout:
			timer, timeout = nil, nil
			flush()
		case <-b.quit:
			// Drain: everything already buffered was accepted before the
			// server flipped to closing, so it must still be answered.
			for {
				select {
				case r := <-b.in:
					batch = append(batch, r)
				default:
					flush()
					b.dispatch.Wait()
					return
				}
			}
		}
	}
}

// close stops the collector, flushes what was buffered, and waits until
// every dispatched batch has finished. The caller must have stopped
// submissions first (Server.submit checks closing under the lock); a
// submission racing close would otherwise strand a request in the buffer.
func (b *batcher) close() {
	close(b.quit)
	<-b.done
}
