package service

import (
	"sync"
	"time"
)

// batcher collects requests from a channel into per-tenant FIFO queues and
// dispatches them as single-tenant batches chosen by the deficit-round-robin
// scheduler (fairsched.go), so a burst pays its planner and flight-table
// work per distinct query AND a flooding tenant lengthens only its own
// queue. A tenant becomes dispatchable when it holds size requests or its
// oldest request has waited maxWait; dispatch itself is slot-gated — the
// collector acquires an execution slot before it picks the next tenant —
// which is what makes the DRR order real: under overload the contended
// resource is the slot, and whoever holds the scheduler at slot-grant time
// decides who runs next. Each dispatched batch runs on its own goroutine
// and releases its slot when done. close drains: buffered requests are
// flushed in size-bounded, slot-gated batches (never one unbounded batch)
// and every dispatched batch finishes before close returns.
type batcher struct {
	in      chan *request
	size    int
	maxWait time.Duration
	slots   chan struct{}
	run     func([]*request)
	// shed rejects a request whose tenant queue is at capacity (nil keeps
	// tenant queues unbounded — unit tests only; the server always sheds).
	shed func(*request)

	sched    *fairSched
	quit     chan struct{} // closed by close(): stop collecting, drain
	done     chan struct{} // closed by the collector after the drain
	dispatch sync.WaitGroup
}

// batcherConfig wires a batcher; the server fills every field.
type batcherConfig struct {
	size    int
	depth   int // submission channel buffer AND per-tenant pending cap
	maxWait time.Duration
	slots   chan struct{}
	weights map[string]int // tenant name → DRR weight (missing = 1)
	shed    func(*request)
	run     func([]*request)
}

func newBatcher(cfg batcherConfig) *batcher {
	maxPending := cfg.depth
	if cfg.shed == nil {
		maxPending = 0 // no shed path: caps would silently drop requests
	}
	b := &batcher{
		in:      make(chan *request, cfg.depth),
		size:    cfg.size,
		maxWait: cfg.maxWait,
		slots:   cfg.slots,
		run:     cfg.run,
		shed:    cfg.shed,
		sched:   newFairSched(cfg.size, cfg.maxWait, maxPending, cfg.weights),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.loop()
	return b
}

// loop is the collector goroutine: the only reader of b.in and the only
// owner of the scheduler. Each iteration it either absorbs a submission,
// wins an execution slot for the next DRR batch, or wakes when a lingering
// tenant crosses its max-wait.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		now := time.Now()
		// Only bid for a slot when some tenant may dispatch; otherwise a
		// timer wakes us when the oldest lingering request matures.
		var slotC chan struct{}
		var timerC <-chan time.Time
		var timer *time.Timer
		if b.sched.eligibleAt(now) {
			slotC = b.slots
		} else if at, ok := b.sched.nextLinger(); ok {
			d := at.Sub(now)
			if d < 0 {
				d = 0
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case r := <-b.in:
			b.enqueue(r)
		case slotC <- struct{}{}:
			// Slot won: the scheduler picks the next tenant's batch. The
			// eligibility check above makes nil impossible — the collector
			// is the only goroutine mutating the scheduler.
			b.spawn(b.sched.nextBatch(time.Now(), false))
		case <-timerC:
			// Re-evaluate eligibility at the top of the loop.
		case <-b.quit:
			if timer != nil {
				timer.Stop()
			}
			b.drain()
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// enqueue routes one request into its tenant queue, shedding at the
// per-tenant cap so one tenant's backlog cannot consume the whole buffer.
func (b *batcher) enqueue(r *request) {
	if r.enqueued.IsZero() {
		// The server stamps submission time; bare unit-test requests get
		// stamped here so the linger clock never sees a zero time (which
		// would read as an expired wait).
		r.enqueued = time.Now()
	}
	if !b.sched.push(r) {
		b.shed(r)
	}
}

// spawn dispatches one batch on its own goroutine; the caller must hold an
// execution slot, which the goroutine releases when the batch finishes.
func (b *batcher) spawn(batch []*request) {
	b.dispatch.Add(1)
	go func() {
		defer b.dispatch.Done()
		defer func() { <-b.slots }()
		b.run(batch)
	}()
}

// drain answers everything still buffered: leftovers in the submission
// channel are routed to their tenant queues (everything there was accepted
// before the server flipped to closing, so it must be answered), then the
// queues are flushed through the same slot-gated, size-bounded DRR path as
// normal dispatch — the linger is ignored, the size bound is not, so the
// flight table never sees a batch shape the steady state could not produce.
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.in:
			b.enqueue(r)
			continue
		default:
		}
		break
	}
	for b.sched.pending() > 0 {
		b.slots <- struct{}{}
		b.spawn(b.sched.nextBatch(time.Now(), true))
	}
	b.dispatch.Wait()
}

// close stops the collector, flushes what was buffered, and waits until
// every dispatched batch has finished. The caller must have stopped
// submissions first (Server.submit checks closing under the lock); a
// submission racing close would otherwise strand a request in the buffer.
func (b *batcher) close() {
	close(b.quit)
	<-b.done
}
