package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/relation"
)

// This file implements the per-query resource governor. Every operator that
// buffers tuples — hash-join build tables, explicit materializations, dedup
// sets, cartesian-product buffers, division and aggregate groupings, memo
// spools, partition scatter buffers and the root result — charges the
// governor as it allocates. A query that exceeds its tuple or memory budget
// aborts with a typed *ResourceError naming the limit and the operator that
// tripped it, instead of exhausting the process: the enforcement-layer
// counterpart of the paper's plan-shape discipline, which avoids unbounded
// intermediates by construction but cannot bound a hostile query's output.
//
// Counters are atomic so partitioned workers charge the shared governor
// lock-free; with no governor installed every charge site is a single nil
// pointer check.

// ResourceError reports a query aborted for exceeding a resource budget.
// Limit names the budget ("tuples" or "memory"), Operator the
// materialization point that tripped it.
type ResourceError struct {
	Limit    string // "tuples" or "memory"
	Operator string // e.g. "join-build", "materialize", "memo-spool"
	Used     int64  // accounted usage at the trip (tuples or bytes)
	Budget   int64  // the configured bound
}

func (e *ResourceError) Error() string {
	unit := "tuples"
	if e.Limit == "memory" {
		unit = "bytes"
	}
	return fmt.Sprintf("exec: %s budget exceeded at %s: %d > %d %s",
		e.Limit, e.Operator, e.Used, e.Budget, unit)
}

// Governor enforces per-query resource budgets. One governor is shared by
// the root context and all its worker forks; it is safe for concurrent use.
type Governor struct {
	tupleLimit int64 // 0 = unlimited
	memBudget  int64 // estimated bytes; 0 = unlimited

	tuples atomic.Int64
	bytes  atomic.Int64
	// tripped pins the first budget violation so every later charge — on any
	// worker — fails fast with the same error.
	tripped atomic.Pointer[ResourceError]
	// memo, when attached, is shed under memory pressure before the query is
	// failed: warm cache entries are the one materialization the engine can
	// give back without breaking anything.
	memo *Memo
}

// NewGovernor builds a governor with the given budgets; zero (or negative)
// disables the corresponding bound.
func NewGovernor(tupleLimit, memBudget int64) *Governor {
	if tupleLimit < 0 {
		tupleLimit = 0
	}
	if memBudget < 0 {
		memBudget = 0
	}
	return &Governor{tupleLimit: tupleLimit, memBudget: memBudget}
}

// AttachMemo lets the governor evict warm memo entries under memory
// pressure before failing the query (graceful degradation).
func (g *Governor) AttachMemo(m *Memo) { g.memo = m }

// TupleLimit returns the tuple budget (0 = unlimited).
func (g *Governor) TupleLimit() int64 { return g.tupleLimit }

// MemoryBudget returns the byte budget (0 = unlimited).
func (g *Governor) MemoryBudget() int64 { return g.memBudget }

// TuplesUsed returns the tuples accounted so far.
func (g *Governor) TuplesUsed() int64 { return g.tuples.Load() }

// BytesUsed returns the estimated bytes accounted so far.
func (g *Governor) BytesUsed() int64 { return g.bytes.Load() }

// Err returns the budget violation that tripped the governor, if any.
func (g *Governor) Err() error {
	if e := g.tripped.Load(); e != nil {
		return e
	}
	return nil
}

// charge accounts n tuples totalling b estimated bytes materialized by op.
// It returns the number of memo entries evicted to relieve memory pressure
// and the budget violation, if the charge (still) does not fit.
func (g *Governor) charge(op string, n, b int64) (evicted int64, err error) {
	if e := g.tripped.Load(); e != nil {
		return 0, e
	}
	t := g.tuples.Add(n)
	if g.tupleLimit > 0 && t > g.tupleLimit {
		return 0, g.trip(&ResourceError{Limit: "tuples", Operator: op, Used: t, Budget: g.tupleLimit})
	}
	by := g.bytes.Add(b)
	if g.memBudget <= 0 || by <= g.memBudget {
		return 0, nil
	}
	// Memory pressure: shed warm memo entries first. Evicted entries free
	// engine-held memory, so the freed bytes are credited against the
	// query's accounted footprint before the budget is re-checked.
	if g.memo != nil {
		freed, ev := g.memo.shed(by - g.memBudget)
		if ev > 0 {
			evicted = int64(ev)
			by = g.bytes.Add(-freed)
		}
	}
	if by <= g.memBudget {
		return evicted, nil
	}
	return evicted, g.trip(&ResourceError{Limit: "memory", Operator: op, Used: by, Budget: g.memBudget})
}

// ChargeTuples bulk-charges n tuples materialized by op with no byte
// estimate, in one atomic transaction. It is the batch executor's amortized
// entry point — one call per block instead of one per tuple — and keeps the
// pinned-first *ResourceError semantics: the first violation on any worker
// is the one every later charge reports. A bulk charge can overshoot the
// budget by at most one block before tripping, which the budget's
// order-of-magnitude contract tolerates.
func (g *Governor) ChargeTuples(op string, n int64) (evicted int64, err error) {
	return g.charge(op, n, 0)
}

// ChargeBytesN bulk-charges n tuples totalling bytes estimated bytes, with
// the same semantics as ChargeTuples (memo shedding is attempted before a
// memory trip, exactly as for single-tuple charges).
func (g *Governor) ChargeBytesN(op string, n, bytes int64) (evicted int64, err error) {
	return g.charge(op, n, bytes)
}

// trip pins the first violation; concurrent trippers all report the winner
// so every worker of one query fails with the same typed error.
func (g *Governor) trip(e *ResourceError) *ResourceError {
	if g.tripped.CompareAndSwap(nil, e) {
		return e
	}
	return g.tripped.Load()
}

// tupleBytes estimates the heap footprint of one buffered tuple: the slice
// header, the per-value records, and string payloads. An estimate is enough —
// the budget bounds the order of magnitude of a runaway query, not the
// allocator's exact arithmetic.
func tupleBytes(t relation.Tuple) int64 {
	const sliceHeader, valueSize = 24, 40
	n := int64(sliceHeader + valueSize*len(t))
	for _, v := range t {
		if v.Kind() == relation.KindString {
			n += int64(len(v.AsString()))
		}
	}
	return n
}
