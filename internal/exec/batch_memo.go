package exec

import (
	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// batchMemoIter executes an algebra.Shared node block-at-a-time against the
// context memo. It follows memoIter's mode machine exactly — lazy acquire at
// the first NextBatch, building→complete|abandoned lifecycle, deterministic
// skip-prefix re-election — but spools, replays and consumes whole blocks:
// the producer appends one block per entry-lock acquisition (appendSpoolBlock)
// and consumers drain as many published tuples as fit a block per wait
// (consumeWaitBlock), so single-flight sharing costs one lock round-trip per
// block instead of per tuple. With a batchParallelJoinIter input, the
// elected producer streams partition outputs into the shared spool as each
// partition worker finishes — the partition workers fill the spool in
// parallel, in deterministic partition-index order.
type batchMemoIter struct {
	ctx *Context
	in  BatchIterator
	fp  uint64
	key string
	bs  int

	mode  memoMode
	gen   int64
	entry *memoEntry
	repl  []relation.Tuple
	// pos counts tuples already delivered downstream; across a producer
	// re-election or a private fallback it becomes the skip count, since
	// re-evaluation regenerates the same deterministic prefix.
	pos      int
	skip     int
	inOpened bool
	batch    Batch
}

func newBatchMemoIter(ctx *Context, in BatchIterator, n *algebra.Shared) *batchMemoIter {
	return &batchMemoIter{ctx: ctx, in: in, fp: n.FP, key: algebra.Canonical(n.Input), bs: ctx.blockSize()}
}

func (it *batchMemoIter) Open() {
	it.mode = modeUnstarted
	it.entry = nil
	it.repl = nil
	it.pos = 0
	it.skip = 0
	it.inOpened = false
}

func (it *batchMemoIter) NextBatch() (*Batch, bool) {
	// A panic below must not strand consumers on a building entry: abandon
	// first, then let the panic continue to the isolation boundary.
	defer func() {
		if r := recover(); r != nil {
			it.abandonProduce()
			panic(r)
		}
	}()
	if it.ctx.interruptedN(it.bs) {
		it.abandonProduce()
		return nil, false
	}
	if it.mode == modeUnstarted {
		it.start()
	}
	for {
		switch it.mode {
		case modeReplay:
			if it.pos >= len(it.repl) {
				return nil, false
			}
			end := it.pos + it.bs
			if end > len(it.repl) {
				end = len(it.repl)
			}
			ts := it.repl[it.pos:end:end]
			it.pos = end
			it.ctx.Stats.CacheTuplesReplayed += int64(len(ts))
			// Replay re-delivers blocks another evaluation produced; it is
			// not an emission, so BatchesEmitted stays deterministic under
			// concurrency (see noteBatch).
			it.batch.Tuples = ts
			return &it.batch, true
		case modeProduce:
			return it.produceNextBatch()
		case modePrivate:
			return it.privateNextBatch()
		default: // modeConsume
			b, ok, resolved := it.consumeNextBatch()
			if resolved {
				return b, ok
			}
			// Producer died or the entry state changed: mode was switched;
			// loop and continue under the new mode.
		}
	}
}

// start resolves the memo at the first NextBatch, mirroring memoIter.start,
// and — batch-specific — pre-sizes a fresh spool from the input's size hint,
// rounded up to whole blocks (a hint of 0 reserves nothing).
func (it *batchMemoIter) start() {
	it.gen = it.ctx.Catalog.Generation()
	if it.ctx.Memo == nil {
		it.mode = modePrivate
		return
	}
	e, role := it.ctx.Memo.acquire(it.gen, it.fp, it.key, it.ctx.execID)
	switch role {
	case roleReplay:
		it.ctx.Stats.CacheHits++
		it.repl = e.tuples
		it.mode = modeReplay
	case roleConsume:
		it.ctx.Stats.CacheDuplicatesAvoided++
		it.entry = e
		it.mode = modeConsume
	case roleProduce:
		it.ctx.Stats.CacheMisses++
		it.entry = e
		it.mode = modeProduce
		if hint := hintOfBatch(it.in); hint >= 0 {
			it.ctx.Memo.presizeSpool(e, planopt.BlocksFor(hint, it.bs)*it.bs)
		}
		it.ctx.fireFault(faultinject.PointMemoElect)
	default:
		it.ctx.Stats.CacheMisses++
		it.mode = modePrivate
	}
}

// produceNextBatch advances the producer by one input block: charge it,
// append it to the spool, yield it. The per-step ordering (charge →
// memo.append fault → cancel check → spool append) matches produceNext so
// chaos runs observe the same abandon points, just block-granular.
func (it *batchMemoIter) produceNextBatch() (*Batch, bool) {
	if it.ctx.interruptedN(it.bs) {
		it.abandonProduce()
		return nil, false
	}
	if !it.inOpened {
		it.in.Open()
		it.inOpened = true
	}
	for {
		b, ok := it.in.NextBatch()
		if !ok {
			// Complete drain: publish, unless cancellation may have
			// truncated the stream.
			if it.ctx.CancelErr() == nil {
				it.ctx.fireFault(faultinject.PointMemoPublish)
			}
			if it.ctx.CancelErr() == nil {
				it.ctx.Memo.complete(it.entry)
				it.entry = nil
				it.mode = modePrivate // input exhausted; stays empty
			} else {
				it.abandonProduce()
			}
			return nil, false
		}
		ts := b.Tuples
		// A failed governor charge abandons the spool but still yields the
		// block: the pinned *ResourceError surfaces at the root, so the
		// stream is never silently truncated relative to a cache-off run.
		if !it.ctx.chargeBatch("memo-spool", ts) {
			it.abandonProduce()
			return it.yieldProducedBlock(ts)
		}
		it.ctx.fireFault(faultinject.PointMemoAppend)
		if it.ctx.CancelErr() != nil {
			it.abandonProduce()
			return it.yieldProducedBlock(ts)
		}
		appended, ok := it.ctx.Memo.appendSpoolBlock(it.entry, ts)
		it.ctx.Stats.CacheTuplesSpooled += int64(appended)
		if !ok {
			// Overflow (the entry outgrew the memo budget, possibly after a
			// partial append) or a generation flush raced the build: the
			// spool is gone, keep streaming privately.
			it.entry = nil
			it.mode = modePrivate
			it.ctx.Stats.CacheSpoolsAbandoned++
			return it.yieldProducedBlock(ts)
		}
		if it.skip >= len(ts) {
			// Re-elected producer: this whole block was already delivered
			// downstream while consuming the abandoned entry.
			it.skip -= len(ts)
			continue
		}
		return it.yieldProducedBlock(ts)
	}
}

// yieldProducedBlock delivers one produced block downstream, honouring the
// re-election skip prefix (possibly trimming the block's head).
func (it *batchMemoIter) yieldProducedBlock(ts []relation.Tuple) (*Batch, bool) {
	if it.skip >= len(ts) {
		it.skip -= len(ts)
		return it.NextBatch()
	}
	if it.skip > 0 {
		ts = ts[it.skip:]
		it.skip = 0
	}
	it.pos += len(ts)
	it.ctx.noteBatch(len(ts))
	it.batch.Tuples = ts
	return &it.batch, true
}

// consumeNextBatch streams up to one block from another execution's
// building entry. resolved=false means the entry reached a terminal state
// and the iterator switched modes; the caller loops.
func (it *batchMemoIter) consumeNextBatch() (*Batch, bool, bool) {
	ts, st, blocked := it.ctx.Memo.consumeWaitBlock(it.entry, it.pos, it.bs, it.ctx.doneChan())
	if blocked {
		it.ctx.Stats.CacheSingleFlightWaits++
	}
	switch st {
	case consumeTuple:
		it.pos += len(ts)
		it.ctx.Stats.CacheTuplesReplayed += int64(len(ts))
		it.batch.Tuples = ts
		return &it.batch, true, true
	case consumeEOF:
		return nil, false, true
	case consumeCancelled:
		it.ctx.observeCancel()
		return nil, false, true
	case consumeOverflow:
		// The result does not fit the memo: nobody should produce into it.
		it.entry = nil
		it.mode = modePrivate
		it.skip = it.pos
		return nil, false, false
	default: // consumeAbandoned — the producer died; re-elect.
		e, role := it.ctx.Memo.acquire(it.gen, it.fp, it.key, it.ctx.execID)
		switch role {
		case roleReplay:
			// Another waiter was re-elected and already finished.
			it.repl = e.tuples
			it.mode = modeReplay
		case roleConsume:
			it.entry = e
			it.mode = modeConsume
		case roleProduce:
			it.ctx.Stats.CacheMisses++
			it.entry = e
			it.mode = modeProduce
			it.skip = it.pos
			it.ctx.fireFault(faultinject.PointMemoElect)
		default:
			it.entry = nil
			it.mode = modePrivate
			it.skip = it.pos
		}
		return nil, false, false
	}
}

// privateNextBatch evaluates the subtree transparently, discarding the
// deterministic prefix already delivered downstream from a dead spool.
func (it *batchMemoIter) privateNextBatch() (*Batch, bool) {
	if !it.inOpened {
		it.in.Open()
		it.inOpened = true
	}
	for {
		if it.ctx.interruptedN(it.bs) {
			return nil, false
		}
		b, ok := it.in.NextBatch()
		if !ok {
			return nil, false
		}
		ts := b.Tuples
		if it.skip >= len(ts) {
			it.skip -= len(ts)
			continue
		}
		if it.skip > 0 {
			ts = ts[it.skip:]
			it.skip = 0
		}
		it.pos += len(ts)
		it.ctx.noteBatch(len(ts))
		it.batch.Tuples = ts
		return &it.batch, true
	}
}

// abandonProduce abandons the building entry this iterator produces, if
// any, and drops to private mode. Safe to call in any mode.
func (it *batchMemoIter) abandonProduce() {
	if it.mode == modeProduce && it.entry != nil {
		it.ctx.Memo.abandon(it.entry, false)
		it.ctx.Stats.CacheSpoolsAbandoned++
	}
	if it.mode == modeProduce {
		it.entry = nil
		it.mode = modePrivate
	}
}

func (it *batchMemoIter) Close() {
	// An early close while producing abandons the spool so attached
	// consumers re-elect instead of waiting forever.
	it.abandonProduce()
	if it.inOpened {
		it.in.Close()
	}
	it.entry = nil
	it.repl = nil
}

// sizeHint bounds the output: exactly the entry length on a warm cache
// under the current catalog generation, otherwise whatever the input can
// promise.
func (it *batchMemoIter) sizeHint() int {
	if n := it.ctx.Memo.entryLen(it.ctx.Catalog.Generation(), it.fp, it.key); n >= 0 {
		return n
	}
	return hintOfBatch(it.in)
}
