// Package exec evaluates algebra plans over a storage catalog with a
// volcano-style (open/next/close) iterator model. Every operator charges
// its work to a Stats record carried by the execution context, so that the
// paper's efficiency claims — relations searched once, no cartesian
// products, no materialized unions, early termination of emptiness tests —
// become measurable quantities rather than assertions.
package exec

import "fmt"

// Stats accumulates the cost counters of one plan execution.
type Stats struct {
	// BaseTuplesRead counts tuples fetched from base relation scans. The
	// paper's "each range relation is searched only once" claim bounds this
	// by the sum of base relation cardinalities.
	BaseTuplesRead int64
	// Comparisons counts atomic value comparisons, including one per hash
	// probe and one per bucket candidate examined.
	Comparisons int64
	// HashInserts counts tuples inserted into operator hash tables.
	HashInserts int64
	// IntermediateTuples counts tuples buffered by blocking operators
	// (hash-table builds, explicit materializations, division grouping).
	IntermediateTuples int64
	// Materializations counts explicitly materialized temporary relations.
	Materializations int64
	// OutputTuples counts tuples delivered at the plan root.
	OutputTuples int64
	// PartitionsExecuted counts hash partitions run by the partition-parallel
	// join executor (0 for a fully serial run).
	PartitionsExecuted int64
	// CacheHits counts Shared-node evaluations answered from the plan-cache
	// memo; CacheMisses counts the ones that had to run their subtree.
	CacheHits   int64
	CacheMisses int64
	// CacheTuplesReplayed counts tuples served out of memo entries — work
	// the executor did NOT redo. BaseTuplesRead net of replays is invariant
	// between cache-on and cache-off runs of the same plan.
	CacheTuplesReplayed int64
	// CacheTuplesSpooled counts tuples buffered into candidate memo entries
	// while their first evaluation streamed through.
	CacheTuplesSpooled int64
	// CacheSingleFlightWaits counts the times a consumer attached to an
	// in-flight spool caught up with its producer and had to block for the
	// next append or state change.
	CacheSingleFlightWaits int64
	// CacheDuplicatesAvoided counts Shared-node evaluations that found
	// another execution already producing their fingerprint and attached as
	// streaming consumers instead of re-evaluating — the single-flight win.
	CacheDuplicatesAvoided int64
	// CacheSpoolsAbandoned counts spools this execution gave up on before
	// publication (cancellation, governor trip, budget overflow, producer
	// death). Their CacheTuplesSpooled charges bought nothing.
	CacheSpoolsAbandoned int64
	// BatchesEmitted counts blocks emitted by producing batch operators
	// (scan, select, project, union, joins, adapters, memo produce/private).
	// Memo replay and single-flight consumption re-deliver blocks another
	// evaluation produced and are NOT counted, which keeps the counter
	// deterministic under concurrency. 0 on a tuple-at-a-time run.
	BatchesEmitted int64
	// BatchTuples counts the tuples carried by those blocks;
	// BatchTuples/BatchesEmitted is the average block fill.
	BatchTuples int64
	// PanicsRecovered counts panics converted to errors at isolation
	// boundaries (partition workers, engine entry points).
	PanicsRecovered int64
	// LimitsTripped counts governor budget violations observed by this
	// context (at most one per context; worker shards each record their own).
	LimitsTripped int64
	// DegradedEvictions counts memo entries shed under memory pressure to
	// keep the query under its budget (graceful degradation).
	DegradedEvictions int64
}

// Add accumulates another stats record into s.
func (s *Stats) Add(o Stats) {
	s.BaseTuplesRead += o.BaseTuplesRead
	s.Comparisons += o.Comparisons
	s.HashInserts += o.HashInserts
	s.IntermediateTuples += o.IntermediateTuples
	s.Materializations += o.Materializations
	s.OutputTuples += o.OutputTuples
	s.PartitionsExecuted += o.PartitionsExecuted
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheTuplesReplayed += o.CacheTuplesReplayed
	s.CacheTuplesSpooled += o.CacheTuplesSpooled
	s.CacheSingleFlightWaits += o.CacheSingleFlightWaits
	s.CacheDuplicatesAvoided += o.CacheDuplicatesAvoided
	s.CacheSpoolsAbandoned += o.CacheSpoolsAbandoned
	s.BatchesEmitted += o.BatchesEmitted
	s.BatchTuples += o.BatchTuples
	s.PanicsRecovered += o.PanicsRecovered
	s.LimitsTripped += o.LimitsTripped
	s.DegradedEvictions += o.DegradedEvictions
}

// String renders the counters on one line. The partition counter is only
// shown when the parallel executor ran, keeping serial output stable.
func (s *Stats) String() string {
	base := fmt.Sprintf("read=%d cmp=%d hash=%d interm=%d mat=%d out=%d",
		s.BaseTuplesRead, s.Comparisons, s.HashInserts, s.IntermediateTuples,
		s.Materializations, s.OutputTuples)
	if s.PartitionsExecuted > 0 {
		base += fmt.Sprintf(" part=%d", s.PartitionsExecuted)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		base += fmt.Sprintf(" chit=%d cmiss=%d creplay=%d cspool=%d",
			s.CacheHits, s.CacheMisses, s.CacheTuplesReplayed, s.CacheTuplesSpooled)
	}
	// Single-flight counters appear only when concurrency or failure made
	// them move, keeping serial clean-run output stable.
	if s.CacheDuplicatesAvoided+s.CacheSingleFlightWaits+s.CacheSpoolsAbandoned > 0 {
		base += fmt.Sprintf(" cdup=%d cwait=%d caband=%d",
			s.CacheDuplicatesAvoided, s.CacheSingleFlightWaits, s.CacheSpoolsAbandoned)
	}
	// Batch counters appear only when the block executor ran, keeping
	// tuple-at-a-time output stable.
	if s.BatchesEmitted > 0 {
		base += fmt.Sprintf(" batches=%d fill=%.1f",
			s.BatchesEmitted, float64(s.BatchTuples)/float64(s.BatchesEmitted))
	}
	// Robustness counters appear only on runs that hit a boundary, keeping
	// clean-run output stable.
	if s.PanicsRecovered+s.LimitsTripped+s.DegradedEvictions > 0 {
		base += fmt.Sprintf(" panics=%d trips=%d shed=%d",
			s.PanicsRecovered, s.LimitsTripped, s.DegradedEvictions)
	}
	return base
}
