package exec

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/testutil"
)

// feedIter is a channel-fed iterator: each tuple sent on ch is yielded by
// one Next call, and closing ch ends the stream. Tests use it to hold a
// memo producer at an exact spool position while consumers attach.
type feedIter struct {
	ch <-chan relation.Tuple
}

func (it *feedIter) Open() {}
func (it *feedIter) Next() (relation.Tuple, bool) {
	t, ok := <-it.ch
	return t, ok
}
func (it *feedIter) Close() {}

// listIter yields a fixed tuple slice; re-Open restarts it.
type listIter struct {
	ts  []relation.Tuple
	pos int
}

func (it *listIter) Open() { it.pos = 0 }
func (it *listIter) Next() (relation.Tuple, bool) {
	if it.pos >= len(it.ts) {
		return nil, false
	}
	t := it.ts[it.pos]
	it.pos++
	return t, true
}
func (it *listIter) Close() {}

// boomIter fails the test if anything opens or drains it: consumers that
// stream from a producer's spool must never evaluate their own input.
type boomIter struct{ t *testing.T }

func (it *boomIter) Open() { it.t.Error("consumer opened its input") }
func (it *boomIter) Next() (relation.Tuple, bool) {
	it.t.Error("consumer evaluated its input")
	return nil, false
}
func (it *boomIter) Close() {}

func tupleSeq(vs ...int64) []relation.Tuple {
	ts := make([]relation.Tuple, len(vs))
	for i, v := range vs {
		ts[i] = relation.NewTuple(relation.Int(v))
	}
	return ts
}

// drainAsync drains it on its own goroutine, streaming tuples out one per
// read so the test controls interleaving.
func drainAsync(it Iterator) (<-chan relation.Tuple, <-chan struct{}) {
	out := make(chan relation.Tuple)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(out)
		defer it.Close()
		it.Open()
		for {
			t, ok := it.Next()
			if !ok {
				return
			}
			out <- t
		}
	}()
	return out, done
}

// TestMemoConsumerStreamsBeforeCompletion is the deterministic core of the
// single-flight design: a consumer attached to an in-flight spool receives
// tuples while the producer is still mid-drain — it neither re-evaluates
// its input nor waits for publication.
func TestMemoConsumerStreamsBeforeCompletion(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)

	feed := make(chan relation.Tuple)
	prodCtx := NewContext(cat)
	prodCtx.Memo = memo
	prod := &memoIter{ctx: prodCtx, in: &feedIter{ch: feed}, fp: 991, key: "gated"}

	consCtx := NewContext(cat)
	consCtx.Memo = memo
	cons := &memoIter{ctx: consCtx, in: &boomIter{t: t}, fp: 991, key: "gated"}

	ts := tupleSeq(1, 2, 3)
	prodOut, prodDone := drainAsync(prod)

	// Elect the producer and park it mid-spool after one tuple.
	feed <- ts[0]
	if got := <-prodOut; !got.Equal(ts[0]) {
		t.Fatalf("producer yielded %v", got)
	}

	// The consumer attaches while the entry is building and immediately
	// streams the already-spooled prefix.
	consOut, consDone := drainAsync(cons)
	if got := <-consOut; !got.Equal(ts[0]) {
		t.Fatalf("consumer streamed %v, want %v", got, ts[0])
	}
	if memo.Entries() != 1 {
		t.Fatal("entry should be in flight")
	}

	// Feed the rest; both sides see every tuple, then EOF after the close.
	feed <- ts[1]
	if got := <-prodOut; !got.Equal(ts[1]) {
		t.Fatalf("producer yielded %v", got)
	}
	if got := <-consOut; !got.Equal(ts[1]) {
		t.Fatalf("consumer streamed %v", got)
	}
	feed <- ts[2]
	<-prodOut
	<-consOut
	close(feed)
	<-prodDone
	<-consDone

	if consCtx.Stats.CacheDuplicatesAvoided != 1 {
		t.Fatalf("duplicates avoided = %d, want 1", consCtx.Stats.CacheDuplicatesAvoided)
	}
	if consCtx.Stats.CacheTuplesReplayed != 3 {
		t.Fatalf("consumer replayed %d tuples, want 3", consCtx.Stats.CacheTuplesReplayed)
	}
	if consCtx.Stats.CacheSingleFlightWaits == 0 {
		t.Fatal("consumer never blocked — the interleaving did not exercise the wait path")
	}
	if prodCtx.Stats.CacheMisses != 1 || prodCtx.Stats.CacheTuplesSpooled != 3 {
		t.Fatalf("producer stats: %s", prodCtx.Stats)
	}
	if memo.Entries() != 1 || memo.Tuples() != 3 {
		t.Fatalf("publication: entries=%d tuples=%d", memo.Entries(), memo.Tuples())
	}
}

// TestMemoProducerDeathReelection kills an elected producer mid-spool (early
// Close — the same path cancellation and panics funnel through) and checks
// an attached consumer is re-elected, resumes from scratch skipping the
// prefix it already delivered, and publishes the complete result.
func TestMemoProducerDeathReelection(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	ts := tupleSeq(10, 20, 30)

	feed := make(chan relation.Tuple, 1)
	prodCtx := NewContext(cat)
	prodCtx.Memo = memo
	prod := &memoIter{ctx: prodCtx, in: &feedIter{ch: feed}, fp: 992, key: "gated"}

	consCtx := NewContext(cat)
	consCtx.Memo = memo
	cons := &memoIter{ctx: consCtx, in: &listIter{ts: ts}, fp: 992, key: "gated"}

	prod.Open()
	feed <- ts[0] // buffered: the synchronous producer finds it at Next
	if got, ok := prod.Next(); !ok || !got.Equal(ts[0]) {
		t.Fatalf("producer first Next: %v %v", got, ok)
	}

	consOut, consDone := drainAsync(cons)
	if got := <-consOut; !got.Equal(ts[0]) {
		t.Fatalf("consumer streamed %v", got)
	}

	// The producer dies with the consumer attached at pos 1.
	prod.Close()
	if prodCtx.Stats.CacheSpoolsAbandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", prodCtx.Stats.CacheSpoolsAbandoned)
	}

	// The consumer is re-elected, re-evaluates its own input, skips the one
	// tuple it already delivered, and finishes the stream.
	var rest []relation.Tuple
	for got := range consOut {
		rest = append(rest, got)
	}
	<-consDone
	if len(rest) != 2 || !rest[0].Equal(ts[1]) || !rest[1].Equal(ts[2]) {
		t.Fatalf("post-death stream = %v, want %v", rest, ts[1:])
	}
	if consCtx.Stats.CacheDuplicatesAvoided != 1 || consCtx.Stats.CacheMisses != 1 {
		t.Fatalf("consumer stats: %s", consCtx.Stats)
	}

	// The re-elected producer published the complete result; a fresh run
	// replays all three tuples.
	if memo.Entries() != 1 || memo.Tuples() != 3 {
		t.Fatalf("re-elected publication: entries=%d tuples=%d", memo.Entries(), memo.Tuples())
	}
	warmCtx := NewContext(cat)
	warmCtx.Memo = memo
	warm := &memoIter{ctx: warmCtx, in: &boomIter{t: t}, fp: 992, key: "gated"}
	warm.Open()
	for _, want := range ts {
		got, ok := warm.Next()
		if !ok || !got.Equal(want) {
			t.Fatalf("warm replay got %v %v, want %v", got, ok, want)
		}
	}
	if _, ok := warm.Next(); ok {
		t.Fatal("warm replay overran")
	}
	warm.Close()
}

// TestMemoOverflowSendsConsumersPrivate overflows the memo budget mid-spool:
// the producer abandons and keeps streaming privately, and an attached
// consumer falls back to its own private evaluation (skipping the delivered
// prefix) instead of being re-elected into the same wall.
func TestMemoOverflowSendsConsumersPrivate(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(2) // third append overflows
	ts := tupleSeq(1, 2, 3, 4)

	feed := make(chan relation.Tuple)
	prodCtx := NewContext(cat)
	prodCtx.Memo = memo
	prod := &memoIter{ctx: prodCtx, in: &feedIter{ch: feed}, fp: 993, key: "gated"}

	consCtx := NewContext(cat)
	consCtx.Memo = memo
	cons := &memoIter{ctx: consCtx, in: &listIter{ts: ts}, fp: 993, key: "gated"}

	prodOut, prodDone := drainAsync(prod)
	feed <- ts[0]
	<-prodOut

	consOut, consDone := drainAsync(cons)
	if got := <-consOut; !got.Equal(ts[0]) {
		t.Fatalf("consumer streamed %v", got)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // unblock the feed: the producer drains the rest
		defer wg.Done()
		feed <- ts[1]
		feed <- ts[2] // this append overflows the budget
		feed <- ts[3]
		close(feed)
	}()

	var prodGot, consGot []relation.Tuple
	prodGot = append(prodGot, ts[0])
	consGot = append(consGot, ts[0])
	for t := range prodOut {
		prodGot = append(prodGot, t)
	}
	for t := range consOut {
		consGot = append(consGot, t)
	}
	wg.Wait()
	<-prodDone
	<-consDone

	for i, want := range ts {
		if i >= len(prodGot) || !prodGot[i].Equal(want) {
			t.Fatalf("producer stream %v, want %v — overflow truncated it", prodGot, ts)
		}
		if i >= len(consGot) || !consGot[i].Equal(want) {
			t.Fatalf("consumer stream %v, want %v — overflow truncated it", consGot, ts)
		}
	}
	if memo.Entries() != 0 || memo.Tuples() != 0 {
		t.Fatalf("overflowed entry retained: entries=%d tuples=%d", memo.Entries(), memo.Tuples())
	}
	if memo.SpoolsAbandoned() != 1 {
		t.Fatalf("SpoolsAbandoned = %d, want 1", memo.SpoolsAbandoned())
	}
	if prodCtx.Stats.CacheSpoolsAbandoned != 1 {
		t.Fatalf("producer abandoned counter: %s", prodCtx.Stats)
	}
}

// TestMemoSpoolChargeFailStillYields pins the satellite bugfix: when the
// governor rejects the memo-spool charge for a tuple, the spool is
// abandoned but the tuple is still delivered downstream — the stream up to
// the sticky *ResourceError is exactly the cache-off prefix, never silently
// missing the tuple whose charge failed.
func TestMemoSpoolChargeFailStillYields(t *testing.T) {
	cat := ptuCatalog(t)
	ts := tupleSeq(1, 2, 3, 4)

	ctx := NewContext(cat)
	ctx.Memo = NewMemo(0)
	ctx.Gov = NewGovernor(2, 0) // the third memo-spool charge trips
	it := &memoIter{ctx: ctx, in: &listIter{ts: ts}, fp: 994, key: "gated"}
	it.Open()
	var got []relation.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, t)
	}
	it.Close()

	// Three tuples: two charged into the spool plus the one whose charge
	// tripped the budget — which the old code silently dropped.
	if len(got) != 3 {
		t.Fatalf("streamed %d tuples before the trip, want 3 (got %v)", len(got), got)
	}
	for i, want := range ts[:3] {
		if !got[i].Equal(want) {
			t.Fatalf("stream diverges from cache-off at %d: %v", i, got)
		}
	}
	var re *ResourceError
	if !errors.As(ctx.CancelErr(), &re) || re.Operator != "memo-spool" {
		t.Fatalf("CancelErr = %v, want memo-spool *ResourceError", ctx.CancelErr())
	}
	if ctx.Memo.Entries() != 0 {
		t.Fatal("tripped spool was retained")
	}
	if ctx.Stats.CacheSpoolsAbandoned != 1 {
		t.Fatalf("abandoned counter: %s", ctx.Stats)
	}
}

// TestMemoSizeHintThreadsGeneration pins the satellite bugfix in entryLen:
// after a base-relation mutation, a cached entry's length must not leak out
// as the size hint of the (now different) result.
func TestMemoSizeHintThreadsGeneration(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	c1 := NewContext(cat)
	c1.Memo = memo
	res, err := Run(c1, plan)
	if err != nil {
		t.Fatal(err)
	}
	stale := res.Len()

	// After the mutation the P ⋉ T result gains "e"; the warm hint would
	// now under-report by one.
	p, _ := cat.Relation("P")
	p.InsertValues(relation.Str("e"))

	c2 := NewContext(cat)
	c2.Memo = memo
	it, err := Build(c2, plan)
	if err != nil {
		t.Fatal(err)
	}
	off := NewContext(cat)
	offIt, err := Build(off, plan) // no memo: the honest input-side hint
	if err != nil {
		t.Fatal(err)
	}
	if got, want := hintOf(it), hintOf(offIt); got != want {
		t.Fatalf("post-mutation hint = %d, want input hint %d (stale entry len was %d)", got, want, stale)
	}
}

// TestMemoSingleFlightHammer is the -race hammer: many goroutines, one
// shared memo, the same fingerprint, all cold. Exactly one evaluates the
// producer subtree; everyone else replays or streams, and every result
// equals the cache-off baseline.
func TestMemoSingleFlightHammer(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	plan := algebra.NewShared(memoProducer(cat))

	baseline, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	memo := NewMemo(0)
	ctxs := make([]*Context, n)
	results := make([]*relation.Relation, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		ctxs[i] = NewContext(cat)
		ctxs[i].Memo = memo
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i], errs[i] = Run(ctxs[i], plan)
		}()
	}
	close(start)
	wg.Wait()

	var agg Stats
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !results[i].Equal(baseline) {
			t.Fatalf("run %d result differs from cache-off baseline", i)
		}
		agg.Add(*ctxs[i].Stats)
	}
	// Exactly one producer evaluation: one miss, and the base relations were
	// read exactly once across all n runs (|P|+|T| = 7).
	if agg.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want exactly 1 (single flight)", agg.CacheMisses)
	}
	if agg.CacheHits+agg.CacheDuplicatesAvoided != n-1 {
		t.Fatalf("hits(%d) + duplicates avoided(%d) = %d, want %d",
			agg.CacheHits, agg.CacheDuplicatesAvoided, agg.CacheHits+agg.CacheDuplicatesAvoided, n-1)
	}
	if agg.BaseTuplesRead != 7 {
		t.Fatalf("BaseTuplesRead = %d, want 7 (one producer evaluation)", agg.BaseTuplesRead)
	}
	if agg.CacheSpoolsAbandoned != 0 {
		t.Fatalf("clean hammer abandoned %d spools", agg.CacheSpoolsAbandoned)
	}
}

// TestMemoSelfNestedSharedDoesNotDeadlock drains two iterators of the same
// fingerprint interleaved on one goroutine (one context): the second must
// detect its own execution as the producer and go private instead of
// blocking forever.
func TestMemoSelfNestedSharedDoesNotDeadlock(t *testing.T) {
	cat := ptuCatalog(t)
	ts := tupleSeq(1, 2)
	ctx := NewContext(cat)
	ctx.Memo = NewMemo(0)

	a := &memoIter{ctx: ctx, in: &listIter{ts: ts}, fp: 995, key: "gated"}
	b := &memoIter{ctx: ctx, in: &listIter{ts: ts}, fp: 995, key: "gated"}
	a.Open()
	b.Open()
	if got, ok := a.Next(); !ok || !got.Equal(ts[0]) {
		t.Fatalf("a first: %v %v", got, ok)
	}
	// b finds a building entry owned by its own execution: private fallback.
	if got, ok := b.Next(); !ok || !got.Equal(ts[0]) {
		t.Fatalf("b first: %v %v", got, ok)
	}
	if ctx.Stats.CacheMisses != 2 || ctx.Stats.CacheDuplicatesAvoided != 0 {
		t.Fatalf("self-nested stats: %s", ctx.Stats)
	}
	for _, it := range []Iterator{a, b} {
		if got, ok := it.Next(); !ok || !got.Equal(ts[1]) {
			t.Fatalf("second tuple: %v %v", got, ok)
		}
		if _, ok := it.Next(); ok {
			t.Fatal("overrun")
		}
	}
	a.Close()
	b.Close()
	if ctx.Memo.Entries() != 1 {
		t.Fatal("producer a should still have published")
	}
}

// TestMemoElectFaultKillsProducerTyped arms the memo.elect point with an
// error: the elected producer's run fails typed, nothing is published, and
// the memo keeps serving afterwards.
func TestMemoElectFaultKillsProducerTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointMemoElect, Kind: faultinject.KindError})
	_, err := Run(ctx, plan)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if memo.Entries() != 0 {
		t.Fatal("killed election left an entry")
	}
	if ctx.Stats.CacheSpoolsAbandoned != 1 {
		t.Fatalf("abandoned counter: %s", ctx.Stats)
	}

	c2 := NewContext(cat)
	c2.Memo = memo
	if _, err := Run(c2, plan); err != nil {
		t.Fatalf("post-fault run: %v", err)
	}
	if memo.Entries() != 1 {
		t.Fatal("post-fault run did not publish")
	}
}

// TestMemoAppendPanicAbandonsBeforeUnwinding arms memo.append with a panic:
// the abandon must happen before the panic leaves memoIter.Next, so any
// attached consumer is woken rather than deadlocked.
func TestMemoAppendPanicAbandonsBeforeUnwinding(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointMemoAppend, Kind: faultinject.KindPanic})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not surface")
			}
			// The entry was abandoned before the unwind reached us.
			if memo.Entries() != 0 {
				t.Fatal("panicking producer left its entry building")
			}
		}()
		Run(ctx, plan)
	}()

	c2 := NewContext(cat)
	c2.Memo = memo
	if _, err := Run(c2, plan); err != nil {
		t.Fatalf("post-panic run: %v", err)
	}
	if memo.Entries() != 1 {
		t.Fatal("memo unusable after producer panic")
	}
}

// TestMemoReelectionUnderInjectedProducerDeath is the concurrent version of
// the fault tests: a producer killed at memo.append with a live consumer
// attached; the consumer must be re-elected and deliver the full result.
func TestMemoReelectionUnderInjectedProducerDeath(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	ts := tupleSeq(7, 8, 9)

	feed := make(chan relation.Tuple)
	prodCtx := NewContext(cat)
	prodCtx.Memo = memo
	prodCtx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointMemoAppend, Kind: faultinject.KindError, After: 2})
	prod := &memoIter{ctx: prodCtx, in: &feedIter{ch: feed}, fp: 996, key: "gated"}

	consCtx := NewContext(cat)
	consCtx.Memo = memo
	cons := &memoIter{ctx: consCtx, in: &listIter{ts: ts}, fp: 996, key: "gated"}

	prodOut, prodDone := drainAsync(prod)
	feed <- ts[0]
	<-prodOut

	consOut, consDone := drainAsync(cons)
	if got := <-consOut; !got.Equal(ts[0]) {
		t.Fatalf("consumer streamed %v", got)
	}

	// The second append fires the injected error: the producer abandons
	// (still yielding the in-hand tuple) and stops; it never reads the feed
	// again, so close it now.
	feed <- ts[1]
	close(feed)
	var consGot []relation.Tuple
	consGot = append(consGot, ts[0])
	for t := range consOut {
		consGot = append(consGot, t)
	}
	for range prodOut {
	}
	<-prodDone
	<-consDone

	if len(consGot) != 3 {
		t.Fatalf("consumer stream = %v, want %v", consGot, ts)
	}
	for i, want := range ts {
		if !consGot[i].Equal(want) {
			t.Fatalf("consumer stream diverges at %d: %v", i, consGot)
		}
	}
	if !errors.Is(prodCtx.CancelErr(), faultinject.ErrInjected) {
		t.Fatalf("producer CancelErr = %v", prodCtx.CancelErr())
	}
	// The re-elected consumer published the full result.
	if memo.Entries() != 1 || memo.Tuples() != 3 {
		t.Fatalf("entries=%d tuples=%d after re-election", memo.Entries(), memo.Tuples())
	}
}
