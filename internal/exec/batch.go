package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// This file defines the columnar batch execution contract and the
// block-at-a-time versions of the streaming hot operators (scan, select,
// project, union) plus the adapter shims that let batch-aware and
// tuple-at-a-time operators compose freely. The join family lives in
// batch_join.go and the memo spool in batch_memo.go.
//
// Block ownership contract: a *Batch returned by NextBatch is valid only
// until the next NextBatch or Close call on the same iterator — producers
// reuse both the Batch struct and (for buffering operators) its backing
// tuple slice. The tuples themselves are immutable once emitted, exactly as
// in the tuple-at-a-time executor, so retaining a tuple pointer is always
// safe; retaining the slice is not. Zero-copy emitters (scan, the parallel
// join's partition outputs, memo replay) return stable views, but consumers
// must not rely on that: copy the slice (or the Batch) before the next call
// if the block must outlive it.
//
// Blocks are never empty: NextBatch either returns at least one tuple or
// reports exhaustion. Per-tuple bookkeeping — context polls, fireFault
// hooks, governor charges — is amortized to once per block. Cancellation
// polls stay tuple-denominated despite that: each per-block poll goes
// through Context.interruptedN weighted by the block's tuple count, so the
// CheckInterval latency bound ("fewer than CheckInterval tuples flow past a
// cancellation") holds unchanged under block execution.

// DefaultBatchSize is the block capacity used when the context does not
// choose one. 1024 tuples keeps a block of pointer-sized headers within a
// few cache pages while amortizing the per-block bookkeeping ~1000×.
const DefaultBatchSize = 1024

// Batch is one fixed-capacity block of tuples flowing between batch
// operators. Tuples is never empty on a successful NextBatch.
type Batch struct {
	Tuples []relation.Tuple
}

// BatchIterator is the block-at-a-time volcano interface. Open prepares the
// operator (blocking operators buffer here), NextBatch yields the next
// non-empty block or reports exhaustion, Close releases resources.
// Iterators are single-use. See the block ownership contract above.
type BatchIterator interface {
	Open()
	NextBatch() (*Batch, bool)
	Close()
}

// batchEnabled reports whether Run should drive the block-at-a-time
// executor. Batching is the default: BatchSize 0 selects DefaultBatchSize,
// positive values pick a block capacity, and negative values fall back to
// the classic tuple-at-a-time pipeline (parity tests and callers that need
// tuple-granular cancellation latency).
func (c *Context) batchEnabled() bool { return c.BatchSize >= 0 }

// blockSize returns the effective block capacity.
func (c *Context) blockSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// noteBatch records one emitted block of n tuples. Only producing operators
// call it — scan, select, project, union, the joins, adapters, and the memo
// producer/private paths. Memo replay and single-flight consumption do NOT:
// they re-deliver blocks another evaluation produced, and whether a
// concurrent run replays or consumes is scheduling-dependent, so counting
// only production keeps BatchesEmitted deterministic for a fixed workload.
func (c *Context) noteBatch(n int) {
	c.Stats.BatchesEmitted++
	c.Stats.BatchTuples += int64(n)
}

// blockCap bounds a block buffer's initial capacity by the operator's size
// hint: an operator that promises fewer than bs tuples allocates only that
// many slots, and a hint of 0 allocates no block at all. Hints are
// per-tuple counts; see planopt.BlocksFor for the per-block rounding used
// when whole blocks are reserved (the memo spool presize).
func blockCap(hint, bs int) int {
	if hint >= 0 && hint < bs {
		return hint
	}
	return bs
}

// hintOfBatch is hintOf for batch iterators: an upper bound on the output
// cardinality in tuples (not blocks), or -1 when unbounded. Batch iterators
// share the sizeHinter interface with the tuple executor.
func hintOfBatch(b BatchIterator) int {
	if h, ok := b.(sizeHinter); ok {
		return h.sizeHint()
	}
	return -1
}

// batchScanIter streams a base relation in zero-copy blocks: each block is
// a view of the relation's backing slice, so a scan allocates nothing per
// block. One fault hook and one cancellation poll per block replace the
// tuple executor's per-tuple pair.
type batchScanIter struct {
	ctx   *Context
	rel   *relation.Relation
	bs    int
	pos   int
	batch Batch
}

func (it *batchScanIter) Open() {
	it.pos = 0
	it.ctx.fireFault(faultinject.PointIterOpen)
}

func (it *batchScanIter) NextBatch() (*Batch, bool) {
	it.ctx.fireFault(faultinject.PointIterNext)
	if it.pos >= it.rel.Len() {
		return nil, false
	}
	end := it.pos + it.bs
	if end > it.rel.Len() {
		end = it.rel.Len()
	}
	// Weight the poll by the block about to be read, BEFORE reading it: the
	// per-tuple path polls once per tuple, so weighting here keeps "fewer
	// than CheckInterval tuples read past cancellation" true at the source.
	if it.ctx.interruptedN(end - it.pos) {
		return nil, false
	}
	ts := it.rel.Tuples()[it.pos:end:end]
	it.pos = end
	it.ctx.Stats.BaseTuplesRead += int64(len(ts))
	it.ctx.noteBatch(len(ts))
	it.batch.Tuples = ts
	return &it.batch, true
}

func (it *batchScanIter) Close() {}

func (it *batchScanIter) sizeHint() int { return it.rel.Len() }

// batchSelectIter filters blocks by a predicate, densifying survivors into
// full output blocks so selective filters do not starve downstream
// operators with fragment blocks. The input block cannot be filtered in
// place: scans hand out views of the base relation.
type batchSelectIter struct {
	ctx  *Context
	in   BatchIterator
	pred algebra.Pred
	bs   int

	pending []relation.Tuple
	ppos    int
	out     []relation.Tuple
	batch   Batch
}

func (it *batchSelectIter) Open() {
	it.in.Open()
	it.out = make([]relation.Tuple, 0, blockCap(hintOfBatch(it.in), it.bs))
}

func (it *batchSelectIter) NextBatch() (*Batch, bool) {
	it.out = it.out[:0]
	for len(it.out) < it.bs {
		if it.ppos >= len(it.pending) {
			b, ok := it.in.NextBatch()
			if !ok {
				break
			}
			it.pending, it.ppos = b.Tuples, 0
		}
		t := it.pending[it.ppos]
		it.ppos++
		keep, c := it.pred.Eval(t)
		it.ctx.Stats.Comparisons += int64(c)
		if keep {
			//lint:ignore govcharge fixed-capacity streaming block bounded by the batch size, reused every NextBatch — not a materialization
			it.out = append(it.out, t)
		}
	}
	if len(it.out) == 0 {
		return nil, false
	}
	it.ctx.noteBatch(len(it.out))
	it.batch.Tuples = it.out
	return &it.batch, true
}

func (it *batchSelectIter) Close() { it.in.Close() }

func (it *batchSelectIter) sizeHint() int { return hintOfBatch(it.in) }

// batchProjectIter projects columns block-at-a-time, deduplicating through
// the same 64-bit-hash tupleSet as the tuple executor unless the planner
// proved the projection duplicate-free. Retained tuples are charged once
// per output block instead of once per tuple.
type batchProjectIter struct {
	ctx  *Context
	in   BatchIterator
	cols []int
	seen *tupleSet
	bs   int

	pending []relation.Tuple
	ppos    int
	out     []relation.Tuple
	batch   Batch
}

func newBatchProjectIter(ctx *Context, in BatchIterator, cols []int, dedup bool, bs int) *batchProjectIter {
	it := &batchProjectIter{ctx: ctx, in: in, cols: cols, bs: bs}
	if dedup {
		it.seen = newTupleSet()
	}
	return it
}

func (it *batchProjectIter) Open() {
	it.in.Open()
	it.out = make([]relation.Tuple, 0, blockCap(hintOfBatch(it.in), it.bs))
}

func (it *batchProjectIter) NextBatch() (*Batch, bool) {
	it.out = it.out[:0]
	for len(it.out) < it.bs {
		if it.ppos >= len(it.pending) {
			b, ok := it.in.NextBatch()
			if !ok {
				break
			}
			it.pending, it.ppos = b.Tuples, 0
		}
		t := it.pending[it.ppos].Project(it.cols)
		it.ppos++
		if it.seen != nil && !it.seen.add(t) {
			continue
		}
		it.out = append(it.out, t)
	}
	if len(it.out) == 0 {
		return nil, false
	}
	if it.seen != nil {
		// The dedup set retains every emitted tuple; one bulk charge per
		// block replaces the tuple executor's per-tuple charge.
		if !it.ctx.chargeBatch("project-dedup", it.out) {
			return nil, false
		}
		it.ctx.Stats.HashInserts += int64(len(it.out))
	}
	it.ctx.noteBatch(len(it.out))
	it.batch.Tuples = it.out
	return &it.batch, true
}

func (it *batchProjectIter) Close() { it.in.Close() }

func (it *batchProjectIter) sizeHint() int { return hintOfBatch(it.in) }

// batchUnionIter streams left then right in blocks, deduplicating across
// both sides, with the dedup buffering charged per block.
type batchUnionIter struct {
	ctx         *Context
	left, right BatchIterator
	bs          int

	seen    *tupleSet
	onRight bool
	pending []relation.Tuple
	ppos    int
	out     []relation.Tuple
	batch   Batch
}

func (it *batchUnionIter) Open() {
	it.left.Open()
	it.right.Open()
	it.seen = newTupleSet()
	it.onRight = false
	it.out = make([]relation.Tuple, 0, blockCap(it.sizeHint(), it.bs))
}

func (it *batchUnionIter) NextBatch() (*Batch, bool) {
	it.out = it.out[:0]
	for len(it.out) < it.bs {
		if it.ppos >= len(it.pending) {
			var b *Batch
			var ok bool
			if !it.onRight {
				b, ok = it.left.NextBatch()
				if !ok {
					it.onRight = true
					continue
				}
			} else {
				b, ok = it.right.NextBatch()
				if !ok {
					break
				}
			}
			it.pending, it.ppos = b.Tuples, 0
		}
		t := it.pending[it.ppos]
		it.ppos++
		if !it.seen.add(t) {
			continue
		}
		it.out = append(it.out, t)
	}
	if len(it.out) == 0 {
		return nil, false
	}
	if !it.ctx.chargeBatch("union", it.out) {
		return nil, false
	}
	it.ctx.Stats.HashInserts += int64(len(it.out))
	it.ctx.Stats.IntermediateTuples += int64(len(it.out))
	it.ctx.noteBatch(len(it.out))
	it.batch.Tuples = it.out
	return &it.batch, true
}

func (it *batchUnionIter) Close() { it.left.Close(); it.right.Close() }

func (it *batchUnionIter) sizeHint() int {
	l, r := hintOfBatch(it.left), hintOfBatch(it.right)
	if l < 0 || r < 0 {
		return -1
	}
	return l + r
}

// tupleBatchAdapter lifts a tuple-at-a-time iterator into the batch
// contract by accumulating its output into blocks. BuildBatch uses it to
// sandwich the non-hot blocking operators (product, difference, division,
// group-count, materialize) so hot subtrees below them stay batched.
type tupleBatchAdapter struct {
	ctx *Context
	in  Iterator
	bs  int

	out   []relation.Tuple
	batch Batch
}

// BatchFromTuples adapts a tuple-at-a-time iterator to the batch contract.
// The returned iterator owns in and closes it.
func BatchFromTuples(ctx *Context, in Iterator) BatchIterator {
	return &tupleBatchAdapter{ctx: ctx, in: in, bs: ctx.blockSize()}
}

func (it *tupleBatchAdapter) Open() {
	it.in.Open()
	it.out = make([]relation.Tuple, 0, blockCap(hintOf(it.in), it.bs))
}

func (it *tupleBatchAdapter) NextBatch() (*Batch, bool) {
	it.out = it.out[:0]
	for len(it.out) < it.bs {
		t, ok := it.in.Next()
		if !ok {
			break
		}
		//lint:ignore govcharge fixed-capacity streaming block bounded by the batch size, reused every NextBatch — the wrapped operator charged its own buffering
		it.out = append(it.out, t)
	}
	if len(it.out) == 0 {
		return nil, false
	}
	it.ctx.noteBatch(len(it.out))
	it.batch.Tuples = it.out
	return &it.batch, true
}

func (it *tupleBatchAdapter) Close() { it.in.Close() }

func (it *tupleBatchAdapter) sizeHint() int { return hintOf(it.in) }

// batchTupleAdapter flattens a batch iterator back into tuple-at-a-time
// delivery for tuple-only consumers (the non-hot operators' inputs).
type batchTupleAdapter struct {
	in  BatchIterator
	cur []relation.Tuple
	pos int
}

// TuplesFromBatch adapts a batch iterator to the tuple contract. The
// returned iterator owns in and closes it.
func TuplesFromBatch(in BatchIterator) Iterator {
	return &batchTupleAdapter{in: in}
}

func (it *batchTupleAdapter) Open() { it.in.Open() }

func (it *batchTupleAdapter) Next() (relation.Tuple, bool) {
	for it.pos >= len(it.cur) {
		b, ok := it.in.NextBatch()
		if !ok {
			return nil, false
		}
		it.cur, it.pos = b.Tuples, 0
	}
	t := it.cur[it.pos]
	it.pos++
	return t, true
}

func (it *batchTupleAdapter) Close() { it.in.Close() }

func (it *batchTupleAdapter) sizeHint() int { return hintOfBatch(it.in) }

// BuildBatch compiles a plan into a batch iterator tree. The hot operators
// — scan, select, project, union, the whole join family and the memo spool
// — are batch-native; the non-hot blocking operators run their existing
// tuple implementations between adapter shims, so a plan mixing both still
// moves blocks through every hot edge. Catalog resolution errors surface
// here, mirroring Build.
func BuildBatch(ctx *Context, p algebra.Plan) (BatchIterator, error) {
	bs := ctx.blockSize()
	switch n := p.(type) {
	case *algebra.Scan:
		r, err := ctx.Catalog.Relation(n.Name)
		if err != nil {
			return nil, err
		}
		if r.Arity() != n.Sch.Arity() {
			return nil, fmt.Errorf("exec: scan of %q expects arity %d, catalog has %d", n.Name, n.Sch.Arity(), r.Arity())
		}
		return &batchScanIter{ctx: ctx, rel: r, bs: bs}, nil
	case *algebra.Select:
		in, err := BuildBatch(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &batchSelectIter{ctx: ctx, in: in, pred: n.Pred, bs: bs}, nil
	case *algebra.Project:
		in, err := BuildBatch(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return newBatchProjectIter(ctx, in, n.Cols, !n.NoDedup, bs), nil
	case *algebra.Join:
		return buildJoinLikeBatch(ctx, joinSpec{kind: kindJoin, left: n.Left, right: n.Right, on: n.On, residual: n.Residual})
	case *algebra.SemiJoin:
		return buildJoinLikeBatch(ctx, joinSpec{kind: kindSemiJoin, left: n.Left, right: n.Right, on: n.On})
	case *algebra.ComplementJoin:
		return buildJoinLikeBatch(ctx, joinSpec{kind: kindComplementJoin, left: n.Left, right: n.Right, on: n.On})
	case *algebra.OuterJoin:
		return buildJoinLikeBatch(ctx, joinSpec{kind: kindOuterJoin, left: n.Left, right: n.Right, on: n.On, rightArity: n.Right.Schema().Arity()})
	case *algebra.ConstrainedOuterJoin:
		return buildJoinLikeBatch(ctx, joinSpec{kind: kindConstrainedOuterJoin, left: n.Left, right: n.Right, on: n.On, coj: n})
	case *algebra.Union:
		l, r, err := buildBatchPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &batchUnionIter{ctx: ctx, left: l, right: r, bs: bs}, nil
	case *algebra.Product:
		l, r, err := buildBatchPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &productIter{ctx: ctx, left: TuplesFromBatch(l), right: TuplesFromBatch(r)}), nil
	case *algebra.Diff:
		l, r, err := buildBatchPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &diffIter{ctx: ctx, left: TuplesFromBatch(l), right: TuplesFromBatch(r), keep: false}), nil
	case *algebra.Intersect:
		l, r, err := buildBatchPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &diffIter{ctx: ctx, left: TuplesFromBatch(l), right: TuplesFromBatch(r), keep: true}), nil
	case *algebra.Division:
		l, r, err := buildBatchPair(ctx, n.Dividend, n.Divisor)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &divisionIter{ctx: ctx, dividend: TuplesFromBatch(l), divisor: TuplesFromBatch(r), keyCols: n.KeyCols, divCols: n.DivCols}), nil
	case *algebra.GroupCount:
		in, err := BuildBatch(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &groupCountIter{ctx: ctx, in: TuplesFromBatch(in), groupCols: n.GroupCols}), nil
	case *algebra.Materialize:
		in, err := BuildBatch(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return BatchFromTuples(ctx, &materializeIter{ctx: ctx, in: TuplesFromBatch(in), schema: n.Schema()}), nil
	case *algebra.Shared:
		// Built eagerly either way, so catalog errors surface at build time
		// even when the first NextBatch will hit the memo.
		in, err := BuildBatch(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		if ctx.Memo == nil {
			return in, nil
		}
		return newBatchMemoIter(ctx, in, n), nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", p)
	}
}

func buildBatchPair(ctx *Context, l, r algebra.Plan) (BatchIterator, BatchIterator, error) {
	li, err := BuildBatch(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	ri, err := BuildBatch(ctx, r)
	if err != nil {
		return nil, nil, err
	}
	return li, ri, nil
}

// runBatched is Run's block-at-a-time drain: one cancellation poll and one
// bulk output charge per block.
func runBatched(ctx *Context, p algebra.Plan) (*relation.Relation, error) {
	it, err := BuildBatch(ctx, p)
	if err != nil {
		return nil, err
	}
	out := relation.NewUnnamed(p.Schema())
	it.Open()
	defer it.Close()
	for {
		b, ok := it.NextBatch()
		// The poll is weighted by the block just received so output-driven
		// cancellation latency (e.g. a high-fanout join under a slow sink)
		// stays bounded in tuples, matching the per-tuple root loop.
		if !ok || ctx.interruptedN(len(b.Tuples)) {
			break
		}
		if !ctx.chargeBatch("output", b.Tuples) {
			break
		}
		for _, t := range b.Tuples {
			out.Insert(t)
		}
		ctx.Stats.OutputTuples += int64(len(b.Tuples))
	}
	if err := ctx.CancelErr(); err != nil {
		return nil, err
	}
	return out, nil
}

// presizeBlocks converts a per-tuple size hint into a whole-block
// reservation: hints round UP to full blocks (a producer that promises 1500
// tuples will emit two blocks), except that a hint of 0 reserves nothing.
func presizeBlocks(hint, bs int) int {
	if hint < 0 {
		return 0
	}
	return planopt.BlocksFor(hint, bs) * bs
}
