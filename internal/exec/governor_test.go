package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func intTuples(n int) []relation.Tuple {
	ts := make([]relation.Tuple, n)
	for i := range ts {
		ts[i] = relation.NewTuple(relation.Int(int64(i)))
	}
	return ts
}

func TestGovernorTupleLimitAborts(t *testing.T) {
	cat := randomJoinCatalog(1, 300)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	ctx := NewContext(cat)
	ctx.Gov = NewGovernor(50, 0)
	out, err := Run(ctx, plan)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if re.Limit != "tuples" || re.Operator == "" {
		t.Fatalf("unexpected violation: %+v", re)
	}
	if out != nil {
		t.Fatal("got a result alongside the budget error")
	}
	if ctx.Stats.LimitsTripped != 1 {
		t.Fatalf("LimitsTripped = %d, want 1", ctx.Stats.LimitsTripped)
	}
}

func TestGovernorMemoryBudgetAborts(t *testing.T) {
	cat := randomJoinCatalog(2, 300)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	ctx := NewContext(cat)
	ctx.Gov = NewGovernor(0, 2048)
	_, err := Run(ctx, plan)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if re.Limit != "memory" {
		t.Fatalf("limit = %q, want memory", re.Limit)
	}
	if !strings.Contains(re.Error(), "memory budget exceeded") {
		t.Fatalf("message: %s", re.Error())
	}
}

func TestGovernorGenerousBudgetIsTransparent(t *testing.T) {
	cat := randomJoinCatalog(3, 200)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	want, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(cat)
	ctx.Gov = NewGovernor(1<<40, 1<<40)
	got, err := Run(ctx, plan)
	if err != nil {
		t.Fatalf("governed run failed: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("generous governor changed the result")
	}
	if ctx.Stats.LimitsTripped != 0 || ctx.Stats.DegradedEvictions != 0 {
		t.Fatalf("clean run recorded robustness events: %s", ctx.Stats)
	}
	if ctx.Gov.TuplesUsed() == 0 || ctx.Gov.BytesUsed() == 0 {
		t.Fatal("governor accounted nothing")
	}
}

func TestGovernorParallelRunAborts(t *testing.T) {
	cat := randomJoinCatalog(4, 400)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	ctx := NewContext(cat)
	ctx.Parallelism = 4
	ctx.Gov = NewGovernor(100, 0)
	_, err := Run(ctx, plan)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("parallel governed run: err = %v, want *ResourceError", err)
	}
}

// TestGovernorConcurrentCharges drives one governor from several goroutines
// (the partition-worker sharing pattern) and checks the budget is enforced
// exactly once and every loser observes the same pinned violation.
func TestGovernorConcurrentCharges(t *testing.T) {
	gov := NewGovernor(1000, 0)
	var mu sync.Mutex
	var granted int64
	errs := make(map[*ResourceError]struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, err := gov.charge("test", 1, 10)
				mu.Lock()
				if err == nil {
					granted++
				} else {
					var re *ResourceError
					if !errors.As(err, &re) {
						t.Errorf("charge error %v is not a *ResourceError", err)
					} else {
						errs[re] = struct{}{}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted > 1000 {
		t.Fatalf("granted %d charges over a 1000-tuple budget", granted)
	}
	if len(errs) != 1 {
		t.Fatalf("workers observed %d distinct violations, want the single pinned one", len(errs))
	}
}

// TestGovernorShedsMemoUnderPressure checks graceful degradation: memory
// pressure first evicts warm memo entries, crediting the freed bytes, and
// only fails the query when shedding is not enough.
func TestGovernorShedsMemoUnderPressure(t *testing.T) {
	memo := NewMemo(0)
	warm := intTuples(10) // 10 × 64 = 640 estimated bytes
	memo.store(1, 7, "warm", warm)

	gov := NewGovernor(0, 1000)
	gov.AttachMemo(memo)
	if _, err := gov.charge("op", 1, 900); err != nil {
		t.Fatalf("in-budget charge failed: %v", err)
	}
	evicted, err := gov.charge("op", 1, 200)
	if err != nil {
		t.Fatalf("charge should have been relieved by shedding: %v", err)
	}
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if memo.Entries() != 0 {
		t.Fatalf("memo still holds %d entries", memo.Entries())
	}
	// 900 + 200 - 640 freed = 460 accounted.
	if got := gov.BytesUsed(); got != 460 {
		t.Fatalf("BytesUsed = %d, want 460", got)
	}
	// With nothing left to shed, the next oversized charge trips for good.
	if _, err := gov.charge("op", 1, 700); err == nil {
		t.Fatal("charge over budget with empty memo did not trip")
	}
	if gov.Err() == nil {
		t.Fatal("tripped governor reports no error")
	}
	if _, err := gov.charge("op", 1, 1); err == nil {
		t.Fatal("tripped governor accepted a later charge")
	}
}

// TestCheckIntervalBoundsCancelLatency pins the satellite fix: the context
// poll interval is configurable, and a small interval bounds — in tuples —
// how far a scan runs past cancellation.
func TestCheckIntervalBoundsCancelLatency(t *testing.T) {
	cat := randomJoinCatalog(5, 5000)
	goCtx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := NewContext(cat)
	ctx.CheckInterval = 8
	ctx.AttachContext(goCtx)
	if _, err := Run(ctx, scan(cat, "R")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ctx.Stats.BaseTuplesRead > 8 {
		t.Fatalf("read %d tuples past cancellation with CheckInterval=8", ctx.Stats.BaseTuplesRead)
	}
	// Default interval: the same run reads up to DefaultCheckInterval tuples.
	ctx2 := NewContext(cat)
	ctx2.AttachContext(goCtx)
	if _, err := Run(ctx2, scan(cat, "R")); !errors.Is(err, context.Canceled) {
		t.Fatalf("default interval: err = %v", err)
	}
	if ctx2.Stats.BaseTuplesRead > DefaultCheckInterval {
		t.Fatalf("read %d tuples, want ≤ %d", ctx2.Stats.BaseTuplesRead, DefaultCheckInterval)
	}
}

// TestGovernorOutputLimitOnScan checks the root Run loop itself is governed:
// even a plan with no materializing operator is bounded.
func TestGovernorOutputLimitOnScan(t *testing.T) {
	cat := randomJoinCatalog(6, 500)
	ctx := NewContext(cat)
	ctx.Gov = NewGovernor(10, 0)
	_, err := Run(ctx, scan(cat, "R"))
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if re.Operator != "output" {
		t.Fatalf("operator = %q, want output", re.Operator)
	}
}
