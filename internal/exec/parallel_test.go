package exec

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// randomJoinCatalog builds R(a,b) and S(b,c) with controlled key overlap so
// every join kind exercises matched, unmatched and duplicate-key tuples.
func randomJoinCatalog(seed int64, n int) *storage.Catalog {
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("a", "b"))
	s := cat.MustDefine("S", relation.NewSchema("b", "c"))
	dom := int64(n/2 + 1)
	for i := 0; i < n; i++ {
		r.InsertValues(relation.Int(int64(i)), relation.Int(rng.Int63n(dom)))
		s.InsertValues(relation.Int(rng.Int63n(dom)), relation.Int(rng.Int63n(4)))
	}
	// A few string-keyed tuples to exercise mixed-kind hashing.
	r.InsertValues(relation.Int(int64(n)), relation.Str("k1"))
	s.InsertValues(relation.Str("k1"), relation.Int(0))
	s.InsertValues(relation.Str("k2"), relation.Int(1))
	return cat
}

// joinFamilyPlans returns one plan per join-family member over R and S,
// including a residual-predicate join and a constrained-outer-join chain
// whose second hop is gated on the first hop's flag column.
func joinFamilyPlans(cat *storage.Catalog) map[string]algebra.Plan {
	on := []algebra.ColPair{{Left: 1, Right: 0}}
	mk := func() (algebra.Plan, algebra.Plan) { return scan(cat, "R"), scan(cat, "S") }
	plans := map[string]algebra.Plan{}

	l, r := mk()
	plans["join"] = &algebra.Join{Left: l, Right: r, On: on}
	l, r = mk()
	plans["join-residual"] = &algebra.Join{Left: l, Right: r, On: on,
		Residual: algebra.CmpCols{Left: 0, Op: relation.OpGt, Right: 3}}
	l, r = mk()
	plans["semijoin"] = &algebra.SemiJoin{Left: l, Right: r, On: on}
	l, r = mk()
	plans["complementjoin"] = &algebra.ComplementJoin{Left: l, Right: r, On: on}
	l, r = mk()
	plans["outerjoin"] = &algebra.OuterJoin{Left: l, Right: r, On: on}
	l, r = mk()
	c1 := &algebra.ConstrainedOuterJoin{Left: l, Right: r, On: on}
	plans["coj-chain"] = &algebra.ConstrainedOuterJoin{
		Left: c1, Right: scan(cat, "S"),
		On:         []algebra.ColPair{{Left: 1, Right: 0}},
		Constraint: []algebra.NullCond{{Col: 2, IsNull: true}},
	}
	return plans
}

// TestParallelMatchesSerial checks, for every join-family member and a
// range of partition counts, that the partition-parallel executor returns
// the same relation as the serial one and charges the same stats (modulo
// the partition counter).
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cat := randomJoinCatalog(seed, 300)
		for name, plan := range joinFamilyPlans(cat) {
			serialCtx := NewContext(cat)
			want, err := Run(serialCtx, plan)
			if err != nil {
				t.Fatalf("seed %d %s: serial run: %v", seed, name, err)
			}
			for _, p := range []int{2, 4, 7} {
				ctx := NewContext(cat)
				ctx.Parallelism = p
				got, err := Run(ctx, plan)
				if err != nil {
					t.Fatalf("seed %d %s p=%d: parallel run: %v", seed, name, p, err)
				}
				if !got.Equal(want) {
					t.Errorf("seed %d %s p=%d: parallel result differs from serial\ngot %d tuples, want %d",
						seed, name, p, got.Len(), want.Len())
				}
				gotStats := *ctx.Stats
				if gotStats.PartitionsExecuted == 0 {
					t.Errorf("seed %d %s p=%d: parallel executor did not run", seed, name, p)
				}
				gotStats.PartitionsExecuted = 0
				// Block counts are physical, not logical: partitioned streams
				// cut the same tuples into different blocks than a serial one.
				wantStats := *serialCtx.Stats
				gotStats.BatchesEmitted, gotStats.BatchTuples = 0, 0
				wantStats.BatchesEmitted, wantStats.BatchTuples = 0, 0
				if gotStats != wantStats {
					t.Errorf("seed %d %s p=%d: stats diverge\nparallel: %s\nserial:   %s",
						seed, name, p, gotStats.String(), serialCtx.Stats.String())
				}
			}
		}
	}
}

// TestParallelEdgeCases covers empty inputs and an empty key-column list
// (a pure existence product: every tuple shares the one key).
func TestParallelEdgeCases(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("a"))
	cat.MustDefine("Empty", relation.NewSchema("a"))
	for i := 0; i < 10; i++ {
		r.InsertValues(relation.Int(int64(i)))
	}

	cases := map[string]algebra.Plan{
		"empty-right-outer": &algebra.OuterJoin{Left: scan(cat, "R"), Right: scan(cat, "Empty"),
			On: []algebra.ColPair{{Left: 0, Right: 0}}},
		"empty-left": &algebra.SemiJoin{Left: scan(cat, "Empty"), Right: scan(cat, "R"),
			On: []algebra.ColPair{{Left: 0, Right: 0}}},
		"no-key-cols": &algebra.SemiJoin{Left: scan(cat, "R"), Right: scan(cat, "R"), On: nil},
		"complement-vs-empty": &algebra.ComplementJoin{Left: scan(cat, "R"), Right: scan(cat, "Empty"),
			On: []algebra.ColPair{{Left: 0, Right: 0}}},
	}
	for name, plan := range cases {
		want, err := Run(NewContext(cat), plan)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		ctx := NewContext(cat)
		ctx.Parallelism = 4
		got, err := Run(ctx, plan)
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: parallel %d tuples, serial %d", name, got.Len(), want.Len())
		}
	}
}

// TestParallelPreservesIndexPath checks that UseIndexes still wins over
// Parallelism when the right side is indexable — the §3.2 emptiness-test
// cost model depends on the index path's zero build cost.
func TestParallelPreservesIndexPath(t *testing.T) {
	cat := randomJoinCatalog(1, 100)
	plan := &algebra.SemiJoin{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	ctx := NewIndexedContext(cat)
	ctx.Parallelism = 4
	if _, err := Run(ctx, plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ctx.Stats.PartitionsExecuted != 0 {
		t.Errorf("indexable right side took the partitioned path (part=%d), want index path",
			ctx.Stats.PartitionsExecuted)
	}
	if ctx.Stats.HashInserts != 0 {
		t.Errorf("index path charged %d hash inserts, want 0", ctx.Stats.HashInserts)
	}
}

// TestRunCancellation checks that a cancelled context aborts both the
// serial and the partitioned executor and surfaces context.Canceled.
func TestRunCancellation(t *testing.T) {
	cat := randomJoinCatalog(1, 5000)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	for _, p := range []int{1, 4} {
		goCtx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the run must abort, not finish
		ctx := NewContext(cat)
		ctx.Parallelism = p
		ctx.AttachContext(goCtx)
		out, err := Run(ctx, plan)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want context.Canceled", p, err)
		}
		if out != nil {
			t.Fatalf("p=%d: got partial result with error", p)
		}
	}
}

// TestRunDeadline checks that an expired deadline surfaces as
// context.DeadlineExceeded from Run.
func TestRunDeadline(t *testing.T) {
	cat := randomJoinCatalog(2, 5000)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	goCtx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ctx := NewContext(cat)
	ctx.AttachContext(goCtx)
	if _, err := Run(ctx, plan); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestUncancelledRunKeepsResult checks that attaching a context that never
// fires changes nothing about the run's outcome.
func TestUncancelledRunKeepsResult(t *testing.T) {
	cat := randomJoinCatalog(3, 200)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	want, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	ctx := NewContext(cat)
	ctx.AttachContext(context.Background())
	got, err := Run(ctx, plan)
	if err != nil {
		t.Fatalf("attached run: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("attaching an inert context changed the result")
	}
}
