package exec

import (
	"sync"

	"repro/internal/faultinject"
	"repro/internal/relation"
)

// This file implements the partition-parallel executor for the hash-join
// family (⋈, ⋉, ⊼, ⟕, ⟕⊥). Both sides are hash-partitioned on their join
// columns into Parallelism disjoint partitions; each partition's build and
// probe run on a dedicated worker with a forked stats shard, so the hot
// path takes no locks. Partitioning is sound for every member of the
// family, including the complement-join and the constrained outer-joins:
// all potential partners of a tuple share its key hash and therefore its
// partition, so "has no partner in my partition" equals "has no partner at
// all" — the property Bry's Definition 6/7 operators need.
//
// The per-partition tables key on the 64-bit tuple hash directly
// (relation.Tuple.HashCols) and verify candidates with EqualOn, instead of
// the serial path's allocate-twice Project().Key() string keys. That makes
// the parallel path faster per core as well as scalable across cores.
//
// Worker forks carry the engine memo (fork keeps the pointer): inputs are
// drained on the parent goroutine before workers start, so workers never
// drive memoIters themselves today, but any read-side consultation from a
// fork is safe — the memo is mutex-guarded and single-flight entries
// identify their producer by execution, not by context pointer.

// joinKind names the member of the join family being executed.
type joinKind int

const (
	kindJoin joinKind = iota
	kindSemiJoin
	kindComplementJoin
	kindOuterJoin
	kindConstrainedOuterJoin
)

// keyed pairs a tuple with the hash of its join columns, computed once
// during partitioning and reused for the table insert or probe.
type keyed struct {
	t relation.Tuple
	h uint64
}

// sizeHinter is implemented by iterators that can cheaply bound how many
// tuples they will produce. The partitioner uses the hint to pre-size its
// scatter buffers; it is never relied on for correctness.
type sizeHinter interface {
	sizeHint() int
}

// hintOf returns an upper bound on the iterator's output cardinality, or
// -1 when it cannot be bounded without running the plan.
func hintOf(it Iterator) int {
	if h, ok := it.(sizeHinter); ok {
		return h.sizeHint()
	}
	return -1
}

// parallelJoinIter executes one join-family operator with partitioned
// parallelism. It is blocking: Open drains both inputs, runs the partition
// workers to completion, and Next streams the merged output.
type parallelJoinIter struct {
	ctx         *Context
	spec        joinSpec
	left, right Iterator
	lk, rk      []int

	out []relation.Tuple
	pos int
}

func (it *parallelJoinIter) Open() {
	p := it.ctx.parallelism()

	// Phase 1 — partition. The inputs are volcano iterators (serial
	// sources), so draining is single-threaded; hashes are computed here,
	// once, and carried into the workers. Input-side stats (base reads,
	// child operators) charge the parent context as usual.
	rparts := drainPartitions(it.ctx, it.right, it.rk, p)
	lparts := drainPartitions(it.ctx, it.left, it.lk, p)

	// Phase 2 — per-partition build+probe, one worker per partition, each
	// with a private stats shard. Outputs land in per-partition slices so
	// the merge is a deterministic concatenation.
	outs := make([][]relation.Tuple, p)
	workers := make([]*Context, p)
	panics := make([]*PanicError, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		w := it.ctx.fork()
		workers[i] = w
		wg.Add(1)
		go func(i int, w *Context) {
			defer wg.Done()
			// A panic on a worker goroutine would kill the process: no
			// boundary above this frame can recover it. Capture it here and
			// re-surface it after wg.Wait on the merging goroutine, where the
			// engine's isolation boundary can convert it to a typed error.
			defer func() {
				if r := recover(); r != nil {
					panics[i] = CapturePanic(r, "partition-worker")
				}
			}()
			outs[i] = runPartition(w, it.spec, lparts[i], rparts[i], it.lk, it.rk)
		}(i, w)
	}
	wg.Wait()

	// Phase 3 — merge: absorb stats shards and observed cancellations
	// (single-threaded again), then concatenate outputs. Absorption runs
	// before any captured panic is re-surfaced so no worker's shard is lost.
	total := 0
	for i := 0; i < p; i++ {
		it.ctx.absorb(workers[i])
		total += len(outs[i])
	}
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
	it.out = make([]relation.Tuple, 0, total)
	for _, o := range outs {
		//lint:ignore govcharge per-partition outputs were charged at emit time in runPartition; the merge only re-slices them
		it.out = append(it.out, o...)
	}
	it.pos = 0
}

func (it *parallelJoinIter) Next() (relation.Tuple, bool) {
	if it.pos >= len(it.out) || it.ctx.Interrupted() {
		return nil, false
	}
	t := it.out[it.pos]
	it.pos++
	return t, true
}

func (it *parallelJoinIter) Close() { it.left.Close(); it.right.Close() }

// drainPartitions opens and drains an iterator, hashing each tuple's key
// columns and scattering it into p partitions by hash. When the source can
// bound its cardinality (sizeHinter), the partitions are pre-sized: the
// scatter buffers are the partitioner's dominant allocation, and append
// growth on large slices wastes several times the final footprint.
func drainPartitions(ctx *Context, in Iterator, keyCols []int, p int) [][]keyed {
	parts := make([][]keyed, p)
	if hint := hintOf(in); hint > 0 {
		per := hint/p + hint/(4*p) + 8 // uniform share plus skew slack
		for i := range parts {
			parts[i] = make([]keyed, 0, per)
		}
	}
	in.Open()
	for {
		t, ok := in.Next()
		if !ok || !ctx.chargeTuple("partition", t) {
			break
		}
		h := t.HashCols(keyCols)
		i := int(h % uint64(p))
		parts[i] = append(parts[i], keyed{t: t, h: h})
	}
	return parts
}

// runPartition executes one partition of the join: build a hash table over
// the right pieces, probe it with the left pieces, emit per the join kind.
// Stats parity with the serial executor is deliberate: one HashInsert and
// one IntermediateTuple per build tuple, one Comparison per probe, and no
// probe charge for constraint-gated tuples — so serial and parallel runs of
// the same plan report identical work (modulo PartitionsExecuted).
func runPartition(w *Context, spec joinSpec, left, right []keyed, lk, rk []int) []relation.Tuple {
	w.Stats.PartitionsExecuted++
	w.fireFault(faultinject.PointWorker)
	if w.Interrupted() {
		return nil
	}

	// Build: the table chains build tuples with equal hashes through a
	// flat next-index slice — head holds 1-based indexes into right (0 is
	// "no entry", which makes the missing-key lookup free), next[i] links
	// tuple i to the previous tuple with its hash. Two allocations total,
	// no tuple is moved or copied, unlike a map[hash][]Tuple whose
	// per-bucket slices dominate the build's allocation profile.
	head := make(map[uint64]int32, len(right))
	next := make([]int32, len(right))
	for i, kt := range right {
		next[i] = head[kt.h]
		head[kt.h] = int32(i + 1)
	}
	w.Stats.HashInserts += int64(len(right))
	w.Stats.IntermediateTuples += int64(len(right))

	// Every join kind emits at most one output per probe-side match pair,
	// and the semi/complement/constrained kinds at most one per left tuple;
	// len(left) is the right starting capacity for all of them. emit charges
	// each buffered output against the shared governor, so a blowup inside
	// one partition is bounded mid-loop, not after the fact.
	out := make([]relation.Tuple, 0, len(left))
	emit := func(t relation.Tuple) bool {
		if !w.chargeTuple("parallel-join", t) {
			return false
		}
		out = append(out, t)
		return true
	}
	var nulls relation.Tuple
	if spec.kind == kindOuterJoin {
		nulls = make(relation.Tuple, spec.rightArity)
		for i := range nulls {
			nulls[i] = relation.Null()
		}
	}

	// matches fills scratch with the right tuples whose key columns truly
	// equal the left tuple's (hash chains may hold colliding keys). The
	// chain links newest-first; scratch reverses it back to build order so
	// emission order matches the serial executor's per-bucket order.
	scratch := make([]relation.Tuple, 0, 8)
	matches := func(kt keyed) []relation.Tuple {
		w.Stats.Comparisons++
		scratch = scratch[:0]
		for j := head[kt.h]; j != 0; j = next[j-1] {
			if kt.t.EqualOn(lk, right[j-1].t, rk) {
				scratch = append(scratch, right[j-1].t)
			}
		}
		for i, j := 0, len(scratch)-1; i < j; i, j = i+1, j-1 {
			scratch[i], scratch[j] = scratch[j], scratch[i]
		}
		return scratch
	}

	for _, kt := range left {
		if w.Interrupted() {
			return out
		}
		switch spec.kind {
		case kindJoin:
			for _, rt := range matches(kt) {
				joined := kt.t.Concat(rt)
				if spec.residual != nil {
					ok, c := spec.residual.Eval(joined)
					w.Stats.Comparisons += int64(c)
					if !ok {
						continue
					}
				}
				if !emit(joined) {
					return out
				}
			}
		case kindSemiJoin:
			if len(matches(kt)) > 0 && !emit(kt.t) {
				return out
			}
		case kindComplementJoin:
			if len(matches(kt)) == 0 && !emit(kt.t) {
				return out
			}
		case kindOuterJoin:
			m := matches(kt)
			if len(m) == 0 {
				if !emit(kt.t.Concat(nulls)) {
					return out
				}
				continue
			}
			for _, rt := range m {
				if !emit(kt.t.Concat(rt)) {
					return out
				}
			}
		case kindConstrainedOuterJoin:
			// The 'const' gate reads flag columns the tuple already carries:
			// no probe, no comparison charged (mirrors the serial cojIter).
			if !spec.coj.ConstraintHolds(kt.t) {
				if !emit(kt.t.Append(relation.Null())) {
					return out
				}
				continue
			}
			var flagged relation.Tuple
			if len(matches(kt)) > 0 {
				flagged = kt.t.Append(relation.Mark())
			} else {
				flagged = kt.t.Append(relation.Null())
			}
			if !emit(flagged) {
				return out
			}
		}
	}
	return out
}
