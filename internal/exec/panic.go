package exec

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at an isolation boundary (a partition
// worker, or an engine entry point) converted into an error value. Origin
// names the boundary that recovered it; Stack is the panicking goroutine's
// stack, captured at recovery.
type PanicError struct {
	Origin string
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic in %s: %v", e.Origin, e.Value)
}

// CapturePanic normalizes a recover() value into a *PanicError. A value
// that already is one (a worker panic re-surfaced through a second
// boundary) passes through unchanged, keeping the original origin and
// stack.
func CapturePanic(r any, origin string) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Origin: origin, Value: r, Stack: debug.Stack()}
}
