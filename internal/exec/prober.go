package exec

import (
	"repro/internal/algebra"
	"repro/internal/relation"
)

// prober answers "which right-side tuples join with this left tuple?".
// Two implementations exist: the transient hash table built by the
// operator itself (the default), and a persistent catalog index consulted
// lazily (Context.UseIndexes) — the latter charges no build cost, which
// lets emptiness tests (§3.2) terminate after genuinely constant work.
type prober interface {
	// probe returns the matching right tuples for the left tuple's key
	// projection, charging the lookup.
	probe(ctx *Context, t relation.Tuple, keyCols []int) []relation.Tuple
}

// probe on the hashTable is defined in iter.go.

// indexProber probes a persistent catalog hash index, optionally
// re-checking a residual selection predicate on each candidate (the case
// of an indexed Select(Scan) right side).
type indexProber struct {
	idx  indexLookup
	pred algebra.Pred // nil when the right side is a bare scan
}

// indexLookup is the part of storage.HashIndex the prober needs; the
// indirection keeps the iterator testable.
type indexLookup interface {
	LookupTuples(key relation.Tuple) []relation.Tuple
}

func (p *indexProber) probe(ctx *Context, t relation.Tuple, keyCols []int) []relation.Tuple {
	ctx.Stats.Comparisons++
	cands := p.idx.LookupTuples(t.Project(keyCols))
	if len(cands) == 0 {
		return nil
	}
	// Candidates are fetched from the base relation: charge the reads.
	ctx.Stats.BaseTuplesRead += int64(len(cands))
	if p.pred == nil {
		return cands
	}
	out := cands[:0:0]
	for _, c := range cands {
		ok, n := p.pred.Eval(c)
		ctx.Stats.Comparisons += int64(n)
		if ok {
			//lint:ignore govcharge transient filter aliasing fetched candidates, bounded by the index bucket and released per probe
			out = append(out, c)
		}
	}
	return out
}

// indexablePlan recognizes right-side plans a catalog index can serve:
// a bare Scan, or Select layers over a Scan (their predicates become the
// prober's residual). It returns the relation name and the residual.
func indexablePlan(p algebra.Plan) (name string, residual algebra.Pred, ok bool) {
	var preds []algebra.Pred
	for {
		switch n := p.(type) {
		case *algebra.Scan:
			switch len(preds) {
			case 0:
				return n.Name, nil, true
			case 1:
				return n.Name, preds[0], true
			default:
				return n.Name, algebra.And{Preds: preds}, true
			}
		case *algebra.Select:
			preds = append(preds, n.Pred)
			p = n.Input
		default:
			return "", nil, false
		}
	}
}

// proberSpec is the plan-time choice of probing strategy; the actual work
// (hash build) is deferred to Open so Build stays side-effect free.
type proberSpec struct {
	ctx  *Context
	cols []int
	// exactly one of the two is set
	index     *indexProber
	rightIter Iterator
}

// open realizes the prober; for the hash path this drains the right input.
func (s *proberSpec) open() prober {
	if s.index != nil {
		return s.index
	}
	return buildHash(s.ctx, s.rightIter, s.cols)
}

func (s *proberSpec) close() {
	if s.rightIter != nil {
		s.rightIter.Close()
	}
}

// indexProberFor returns a persistent-index prober for the right-side plan
// when one can serve it (a bare Scan or Select layers over one), and nil
// otherwise. Unknown-relation errors fall through to the hash path, where
// Build resurfaces them with a proper message.
func indexProberFor(ctx *Context, rightPlan algebra.Plan, rightCols []int) *indexProber {
	name, residual, ok := indexablePlan(rightPlan)
	if !ok {
		return nil
	}
	idx, err := ctx.Catalog.EnsureIndex(name, rightCols)
	if err != nil {
		return nil
	}
	return &indexProber{idx: idx, pred: residual}
}
