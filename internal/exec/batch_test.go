package exec

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/planopt"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// batchParityPlans extends the join family with composite shapes covering
// the batch-native streaming operators (select, project, union), the
// adapter sandwiches around the blocking operators (diff, division,
// group-count, materialize), and a Shared node feeding the memo spool.
func batchParityPlans(cat *storage.Catalog) map[string]algebra.Plan {
	plans := joinFamilyPlans(cat)
	plans["select-project"] = &algebra.Project{
		Input: &algebra.Select{Input: scan(cat, "R"),
			Pred: algebra.CmpCols{Left: 0, Op: relation.OpGt, Right: 1}},
		Cols: []int{1},
	}
	plans["union"] = &algebra.Union{Left: scan(cat, "R"), Right: scan(cat, "S")}
	plans["diff"] = &algebra.Diff{
		Left:  &algebra.Project{Input: scan(cat, "R"), Cols: []int{1}},
		Right: &algebra.Project{Input: scan(cat, "S"), Cols: []int{0}},
	}
	plans["division"] = &algebra.Division{
		Dividend: scan(cat, "S"),
		Divisor:  &algebra.Project{Input: scan(cat, "S"), Cols: []int{1}},
		KeyCols:  []int{0},
		DivCols:  []int{1},
	}
	plans["groupcount"] = &algebra.GroupCount{Input: scan(cat, "R"), GroupCols: []int{1}}
	plans["materialize"] = &algebra.Materialize{Input: scan(cat, "R"), Label: "tmp"}
	plans["shared-union"] = chaosPlan(cat)
	return plans
}

// normalizeBatchStats folds away the counters that legitimately differ
// between the tuple and block pipelines. Block counts are physical, not
// logical; and whether a second Shared reference attaches to an in-flight
// spool (duplicate avoided) or replays the published entry (hit) depends on
// when it opens relative to spool completion — a pipeline-shape detail. The
// sum is the invariant, exactly as in benchrepro's E15 fold.
func normalizeBatchStats(s Stats) Stats {
	s.BatchesEmitted, s.BatchTuples = 0, 0
	s.CacheHits += s.CacheDuplicatesAvoided
	s.CacheDuplicatesAvoided = 0
	return s
}

// TestBatchSizeParity is the cross-strategy property test of DESIGN.md §9:
// for every plan shape — join family, streaming composites, adapter
// sandwiches, a Shared memo spool — block sizes 1, 7 and 1024 must return
// exactly the tuple-at-a-time relation and charge identical logical stats,
// serial and partition-parallel, memo on and off.
func TestBatchSizeParity(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		cat := randomJoinCatalog(seed, 250)
		for name, plan := range batchParityPlans(cat) {
			for _, par := range []int{1, 4} {
				for _, withMemo := range []bool{false, true} {
					mkCtx := func(bs int) *Context {
						ctx := NewContext(cat)
						ctx.Parallelism = par
						ctx.BatchSize = bs
						if withMemo {
							ctx.Memo = NewMemo(0) // cold per run: spool counters stay comparable
						}
						return ctx
					}
					baseCtx := mkCtx(-1)
					want, err := Run(baseCtx, plan)
					if err != nil {
						t.Fatalf("seed %d %s p=%d memo=%v: tuple run: %v", seed, name, par, withMemo, err)
					}
					for _, bs := range []int{1, 7, 1024} {
						ctx := mkCtx(bs)
						got, err := Run(ctx, plan)
						if err != nil {
							t.Fatalf("seed %d %s p=%d memo=%v bs=%d: batch run: %v",
								seed, name, par, withMemo, bs, err)
						}
						if !got.Equal(want) {
							t.Errorf("seed %d %s p=%d memo=%v bs=%d: batch result differs\ngot %d tuples, want %d",
								seed, name, par, withMemo, bs, got.Len(), want.Len())
						}
						if want.Len() > 0 && ctx.Stats.BatchesEmitted == 0 {
							t.Errorf("seed %d %s p=%d memo=%v bs=%d: block executor did not run",
								seed, name, par, withMemo, bs)
						}
						gotStats := normalizeBatchStats(*ctx.Stats)
						wantStats := normalizeBatchStats(*baseCtx.Stats)
						if name == "division" {
							// divisionIter walks its group table in Go map
							// order and bails out of a group on the first
							// missing divisor tuple, so Comparisons is
							// iteration-order-dependent even between two
							// tuple-at-a-time runs of the same plan.
							gotStats.Comparisons, wantStats.Comparisons = 0, 0
						}
						if gotStats != wantStats {
							t.Errorf("seed %d %s p=%d memo=%v bs=%d: stats diverge\nbatch: %s\ntuple: %s",
								seed, name, par, withMemo, bs, gotStats.String(), wantStats.String())
						}
					}
				}
			}
		}
	}
}

// TestBatchHintZeroAllocatesNothing pins the sizeHint contract: a hint of 0
// (a provably empty input) must reserve no block anywhere. blockCap,
// presizeBlocks, planopt.BlocksFor and the memo spool presize all skip
// allocation, and an empty streaming pipeline emits no block and leaves its
// reusable output buffers at capacity zero.
func TestBatchHintZeroAllocatesNothing(t *testing.T) {
	capCases := []struct{ hint, bs, want int }{
		{0, DefaultBatchSize, 0}, // the regression: hint 0 must not allocate a full block
		{5, 8, 5},
		{8, 8, 8},
		{9, 8, 8},
		{-1, 8, 8}, // unbounded: a full block
	}
	for _, c := range capCases {
		if got := blockCap(c.hint, c.bs); got != c.want {
			t.Errorf("blockCap(%d, %d) = %d, want %d", c.hint, c.bs, got, c.want)
		}
	}
	presizeCases := []struct{ hint, bs, want int }{
		{0, 1024, 0},
		{-1, 1024, 0},
		{1, 1024, 1024},
		{1500, 1024, 2048}, // rounds UP to whole blocks
	}
	for _, c := range presizeCases {
		if got := presizeBlocks(c.hint, c.bs); got != c.want {
			t.Errorf("presizeBlocks(%d, %d) = %d, want %d", c.hint, c.bs, got, c.want)
		}
	}
	blockCases := []struct{ n, bs, want int }{
		{0, 1024, 0}, {-5, 1024, 0}, {5, 0, 0}, {5, -1, 0},
		{1, 1024, 1}, {1024, 1024, 1}, {1025, 1024, 2},
	}
	for _, c := range blockCases {
		if got := planopt.BlocksFor(c.n, c.bs); got != c.want {
			t.Errorf("planopt.BlocksFor(%d, %d) = %d, want %d", c.n, c.bs, got, c.want)
		}
	}

	// Behavioral half: a pipeline over an empty relation emits nothing and
	// its buffering operators take the scan's 0 hint instead of a block.
	cat := storage.NewCatalog()
	cat.MustDefine("Empty", relation.NewSchema("a", "b"))
	ctx := NewContext(cat)
	plan := &algebra.Project{
		Input: &algebra.Select{Input: scan(cat, "Empty"), Pred: algebra.True{}},
		Cols:  []int{0},
	}
	it, err := BuildBatch(ctx, plan)
	if err != nil {
		t.Fatalf("BuildBatch: %v", err)
	}
	it.Open()
	defer it.Close()
	if b, ok := it.NextBatch(); ok {
		t.Fatalf("empty pipeline emitted a block of %d tuples", len(b.Tuples))
	}
	pj, ok := it.(*batchProjectIter)
	if !ok {
		t.Fatalf("root iterator is %T, want *batchProjectIter", it)
	}
	if cap(pj.out) != 0 {
		t.Errorf("project allocated a %d-cap output block over an empty input", cap(pj.out))
	}
	sel, ok := pj.in.(*batchSelectIter)
	if !ok {
		t.Fatalf("project input is %T, want *batchSelectIter", pj.in)
	}
	if cap(sel.out) != 0 {
		t.Errorf("select allocated a %d-cap output block over an empty input", cap(sel.out))
	}

	// The memo spool presize takes the same whole-block reservation: 0 for
	// an empty producer, rounded-up blocks otherwise.
	m := NewMemo(1 << 20)
	e := &memoEntry{state: spoolBuilding}
	m.presizeSpool(e, presizeBlocks(0, 1024))
	if cap(e.tuples) != 0 {
		t.Errorf("memo spool reserved %d slots for a 0 hint", cap(e.tuples))
	}
	m.presizeSpool(e, presizeBlocks(1500, 1024))
	if cap(e.tuples) != 2048 {
		t.Errorf("memo spool reserved %d slots for a 1500 hint at block 1024, want 2048", cap(e.tuples))
	}
}

// TestChaosBatchParallelProducerDeath is TestChaosMemoProducerDeath for the
// block executor's parallel spool producers: the Shared subtree contains a
// partitioned join, the block size is tiny so the elected producer appends
// many blocks per spool, and faults strike the append path mid-spool with a
// concurrent consumer attached. The invariant is unchanged: both runs
// terminate, failures are the injected ones, survivors return the baseline,
// and the same memo afterwards serves a clean batched run — producer death
// abandons deterministically and re-elects, never publishing partial blocks.
func TestChaosBatchParallelProducerDeath(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := randomJoinCatalog(44, 150)
	plan := chaosPlan(cat)
	baseline, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	kinds := []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay}
	for _, kind := range kinds {
		for _, after := range []int64{1, 3, 5} {
			name := fmt.Sprintf("%s/%s@%d", faultinject.PointMemoAppend, kind, after)
			t.Run(name, func(t *testing.T) {
				memo := NewMemo(0) // cold: the append point actually fires
				fplan := faultinject.New(faultinject.Arm{
					Point: faultinject.PointMemoAppend, Kind: kind, After: after})
				var wg sync.WaitGroup
				for g := 0; g < 2; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() {
							recover() // injected panics surface raw at this layer
						}()
						ctx := NewContext(cat)
						ctx.Memo = memo
						ctx.Faults = fplan
						ctx.Parallelism = 4
						ctx.BatchSize = 7 // several appendSpoolBlock calls per spool
						ctx.CheckInterval = GovernedCheckInterval
						out, err := Run(ctx, plan)
						if err != nil {
							if !errors.Is(err, faultinject.ErrInjected) {
								t.Errorf("non-injected error: %v", err)
							}
						} else if !out.Equal(baseline) {
							t.Error("surviving run returned a wrong result")
						}
					}()
				}
				wg.Wait()

				after := NewContext(cat)
				after.Memo = memo
				after.Parallelism = 4
				after.BatchSize = 7
				out, err := Run(after, plan)
				if err != nil {
					t.Fatalf("post-fault run: %v", err)
				}
				if !out.Equal(baseline) {
					t.Fatal("post-fault run differs from baseline")
				}
			})
		}
	}
}
