package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// TestIndexedSemiJoinAgrees: index-probed and hash-probed plans return the
// same sets; the indexed run buffers nothing.
func TestIndexedSemiJoinAgrees(t *testing.T) {
	cat := ptuCatalog(t)
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	for _, mk := range []func() algebra.Plan{
		func() algebra.Plan { return &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on} },
		func() algebra.Plan {
			return &algebra.ComplementJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on}
		},
		func() algebra.Plan { return &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on} },
		func() algebra.Plan { return &algebra.Join{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on} },
		func() algebra.Plan {
			return &algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on}
		},
	} {
		plain := NewContext(cat)
		a, err := Run(plain, mk())
		if err != nil {
			t.Fatal(err)
		}
		indexed := NewIndexedContext(cat)
		b, err := Run(indexed, mk())
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%T: indexed result differs:\n%s\nvs\n%s", mk(), a, b)
		}
		if indexed.Stats.IntermediateTuples != 0 {
			t.Errorf("%T: indexed run buffered %d tuples, want 0", mk(), indexed.Stats.IntermediateTuples)
		}
		if indexed.Stats.HashInserts != 0 {
			t.Errorf("%T: indexed run inserted %d hash entries, want 0", mk(), indexed.Stats.HashInserts)
		}
	}
}

// TestIndexedSelectScanResidual: a Select over a Scan on the right side is
// indexable; the selection becomes a residual check per candidate.
func TestIndexedSelectScanResidual(t *testing.T) {
	cat := storage.NewCatalog()
	emp := cat.MustDefine("emp", relation.NewSchema("name", "dept"))
	emp.InsertValues(s("ann"), s("cs"))
	emp.InsertValues(s("ann"), s("math")) // second membership
	emp.InsertValues(s("bob"), s("math"))
	people := cat.MustDefine("people", relation.NewSchema("name"))
	people.InsertValues(s("ann"))
	people.InsertValues(s("bob"))

	right := &algebra.Select{
		Input: algebra.NewScan("emp", emp.Schema()),
		Pred:  algebra.CmpConst{Col: 1, Op: algebra.OpEq, Const: s("cs")},
	}
	sj := &algebra.SemiJoin{Left: scan(cat, "people"), Right: right, On: []algebra.ColPair{{Left: 0, Right: 0}}}

	ctx := NewIndexedContext(cat)
	got, err := Run(ctx, sj)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, got, [][]relation.Value{{s("ann")}})
	if ctx.Stats.HashInserts != 0 {
		t.Fatalf("expected index path, saw %d hash inserts", ctx.Stats.HashInserts)
	}
}

// TestIndexedEmptinessEarlyTermination: with indexes, a NotEmpty test over
// a semi-join does constant work instead of building the right side.
func TestIndexedEmptinessEarlyTermination(t *testing.T) {
	cat := storage.NewCatalog()
	big := cat.MustDefine("big", relation.NewSchema("k"))
	small := cat.MustDefine("small", relation.NewSchema("k"))
	for i := 0; i < 1000; i++ {
		big.InsertValues(relation.Int(int64(i)))
	}
	small.InsertValues(relation.Int(0))

	sj := &algebra.SemiJoin{Left: scan(cat, "small"), Right: scan(cat, "big"), On: []algebra.ColPair{{Left: 0, Right: 0}}}

	plain := NewContext(cat)
	ok, err := EvalBool(plain, &algebra.NotEmpty{Input: sj})
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	indexed := NewIndexedContext(cat)
	ok, err = EvalBool(indexed, &algebra.NotEmpty{Input: sj})
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if plain.Stats.BaseTuplesRead < 1000 {
		t.Fatalf("hash path must read the big relation: %d", plain.Stats.BaseTuplesRead)
	}
	if indexed.Stats.BaseTuplesRead > 5 {
		t.Fatalf("indexed emptiness test read %d tuples, want a handful", indexed.Stats.BaseTuplesRead)
	}
}

// TestIndexablePlanRecognition covers the right-side pattern matcher.
func TestIndexablePlanRecognition(t *testing.T) {
	sch := relation.NewSchema("a")
	sc := algebra.NewScan("r", sch)
	if name, res, ok := indexablePlan(sc); !ok || name != "r" || res != nil {
		t.Fatalf("bare scan: %v %v %v", name, res, ok)
	}
	sel := &algebra.Select{Input: sc, Pred: algebra.True{}}
	if name, res, ok := indexablePlan(sel); !ok || name != "r" || res == nil {
		t.Fatalf("select over scan: %v %v %v", name, res, ok)
	}
	sel2 := &algebra.Select{Input: sel, Pred: algebra.True{}}
	if _, res, ok := indexablePlan(sel2); !ok || res == nil {
		t.Fatalf("stacked selects must fold into one residual: %v %v", res, ok)
	}
	proj := &algebra.Project{Input: sc, Cols: []int{0}}
	if _, _, ok := indexablePlan(proj); ok {
		t.Fatal("projection is not indexable")
	}
}

// TestIndexedRunFallsBackForComplexRight: non-indexable right sides use the
// hash path even with UseIndexes on.
func TestIndexedFallback(t *testing.T) {
	cat := ptuCatalog(t)
	right := &algebra.Union{Left: scan(cat, "T"), Right: scan(cat, "U")}
	sj := &algebra.SemiJoin{Left: scan(cat, "P"), Right: right, On: []algebra.ColPair{{Left: 0, Right: 0}}}
	ctx := NewIndexedContext(cat)
	got, err := Run(ctx, sj)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, got, [][]relation.Value{{s("a")}, {s("b")}, {s("c")}})
	if ctx.Stats.HashInserts == 0 {
		t.Fatal("union right side must take the hash path")
	}
}
