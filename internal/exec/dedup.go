package exec

import "repro/internal/relation"

// tupleSet is the deduplication set shared by the projection, union,
// difference and intersection iterators. It buckets whole tuples by their
// 64-bit FNV hash (relation.Tuple.Hash) and verifies candidates with Equal,
// mirroring the HashCols/EqualOn discipline of the partition-parallel joins:
// no canonical key string is ever allocated, so membership tests on the hot
// path cost a hash and a bucket walk instead of two allocations per tuple.
type tupleSet struct {
	buckets map[uint64][]relation.Tuple
}

func newTupleSet() *tupleSet {
	return &tupleSet{buckets: make(map[uint64][]relation.Tuple)}
}

// add inserts t unless an equal tuple is present; it reports whether t was
// new. The stored tuple is aliased, not copied — safe because executor
// tuples are immutable once emitted.
func (s *tupleSet) add(t relation.Tuple) bool {
	h := t.Hash()
	for _, u := range s.buckets[h] {
		if t.Equal(u) {
			return false
		}
	}
	//lint:ignore govcharge callers charge the governor per retained tuple at their materialization point
	s.buckets[h] = append(s.buckets[h], t)
	return true
}

// has reports whether an equal tuple is present.
func (s *tupleSet) has(t relation.Tuple) bool {
	for _, u := range s.buckets[t.Hash()] {
		if t.Equal(u) {
			return true
		}
	}
	return false
}
