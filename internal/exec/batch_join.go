package exec

import (
	"sync"

	"repro/internal/relation"
)

// This file implements the batch executor for the hash-join family
// (⋈, ⋉, ⊼, ⟕, ⟕⊥): a serial block-at-a-time join whose build side uses the
// same hash-chained table as the partition workers (64-bit HashCols keys,
// EqualOn verification — no per-probe string key allocations, unlike the
// serial tuple path's hashTable), and a streaming version of the
// partition-parallel executor whose workers publish per-partition outputs
// through per-partition done channels, so downstream operators — in
// particular a memo producer filling a shared spool — consume partition 0's
// blocks while later partitions are still running. Stats parity with the
// tuple executor is deliberate and test-enforced: one HashInsert and one
// IntermediateTuple per build tuple, one Comparison per probe, residual
// comparisons per examined pair.

// chainedTable is the serial batch build table: tuples chained per 64-bit
// key hash through a flat next-index slice (head holds 1-based indexes; 0 is
// "no entry"), exactly the runPartition layout. It implements prober, so the
// batch join runs unchanged over a persistent catalog index instead.
type chainedTable struct {
	cols    []int
	tuples  []relation.Tuple
	head    map[uint64]int32
	next    []int32
	scratch []relation.Tuple
}

// buildChainedTable drains the right input block-at-a-time, charging the
// governor once per block ("join-build", matching the tuple path's op name)
// and the stats per build tuple.
func buildChainedTable(ctx *Context, in BatchIterator, keyCols []int) *chainedTable {
	h := &chainedTable{cols: keyCols}
	var hashes []uint64
	in.Open()
	for {
		b, ok := in.NextBatch()
		if !ok || !ctx.chargeBatch("join-build", b.Tuples) {
			break
		}
		for _, t := range b.Tuples {
			h.tuples = append(h.tuples, t)
			hashes = append(hashes, t.HashCols(keyCols))
		}
		ctx.Stats.HashInserts += int64(len(b.Tuples))
		ctx.Stats.IntermediateTuples += int64(len(b.Tuples))
	}
	h.head = make(map[uint64]int32, len(h.tuples))
	h.next = make([]int32, len(h.tuples))
	for i, hh := range hashes {
		h.next[i] = h.head[hh]
		h.head[hh] = int32(i + 1)
	}
	return h
}

// probe returns the build tuples whose key columns equal the left tuple's,
// charging one comparison for the lookup. The chain links newest-first;
// scratch reverses it back to build order so emission order matches both
// the serial tuple executor and the partition workers. The returned slice
// is scratch: valid until the next probe.
func (h *chainedTable) probe(ctx *Context, t relation.Tuple, keyCols []int) []relation.Tuple {
	ctx.Stats.Comparisons++
	hh := t.HashCols(keyCols)
	h.scratch = h.scratch[:0]
	for j := h.head[hh]; j != 0; j = h.next[j-1] {
		if t.EqualOn(keyCols, h.tuples[j-1], h.cols) {
			//lint:ignore govcharge transient probe scratch aliasing build tuples already charged at build time, reset per probe
			h.scratch = append(h.scratch, h.tuples[j-1])
		}
	}
	for i, j := 0, len(h.scratch)-1; i < j; i, j = i+1, j-1 {
		h.scratch[i], h.scratch[j] = h.scratch[j], h.scratch[i]
	}
	return h.scratch
}

// batchProberSpec defers the probing-side realization to Open, mirroring
// proberSpec: either a persistent catalog index or a chained table built
// from the batch right input.
type batchProberSpec struct {
	ctx  *Context
	cols []int
	// exactly one of the two is set
	index     *indexProber
	rightIter BatchIterator
}

func (s *batchProberSpec) open() prober {
	if s.index != nil {
		return s.index
	}
	return buildChainedTable(s.ctx, s.rightIter, s.cols)
}

func (s *batchProberSpec) close() {
	if s.rightIter != nil {
		s.rightIter.Close()
	}
}

// batchJoinIter executes every serial join-family member block-at-a-time:
// pull a left block, probe each tuple, densify the outputs into full
// blocks. One iterator covers all five kinds — the per-kind emission logic
// mirrors runPartition tuple for tuple.
type batchJoinIter struct {
	ctx  *Context
	spec joinSpec
	left BatchIterator
	ps   *batchProberSpec
	lk   []int
	bs   int

	table   prober
	pending []relation.Tuple // current left block
	ppos    int
	cur     relation.Tuple   // left tuple whose matches are mid-flush (⋈, ⟕)
	matches []relation.Tuple // its remaining probe matches
	mpos    int
	nulls   relation.Tuple // ⟕ padding
	out     []relation.Tuple
	batch   Batch
}

func (it *batchJoinIter) Open() {
	it.table = it.ps.open()
	it.left.Open()
	if it.spec.kind == kindOuterJoin {
		it.nulls = make(relation.Tuple, it.spec.rightArity)
		for i := range it.nulls {
			it.nulls[i] = relation.Null()
		}
	}
	it.out = make([]relation.Tuple, 0, it.bs)
}

func (it *batchJoinIter) NextBatch() (*Batch, bool) {
	// Weighted by the block about to be assembled, so a join emitting full
	// blocks polls the context at the same per-tuple rate the serial
	// executor does.
	if it.ctx.interruptedN(it.bs) {
		return nil, false
	}
	it.out = it.out[:0]
	for len(it.out) < it.bs {
		// Flush pending matches of the current left tuple first. matches
		// aliases the prober's scratch, which is only overwritten by the
		// next probe — after the flush completes.
		if it.mpos < len(it.matches) {
			r := it.matches[it.mpos]
			it.mpos++
			joined := it.cur.Concat(r)
			if it.spec.residual != nil {
				ok, c := it.spec.residual.Eval(joined)
				it.ctx.Stats.Comparisons += int64(c)
				if !ok {
					continue
				}
			}
			it.emit(joined)
			continue
		}
		if it.ppos >= len(it.pending) {
			b, ok := it.left.NextBatch()
			if !ok {
				break
			}
			it.pending, it.ppos = b.Tuples, 0
		}
		t := it.pending[it.ppos]
		it.ppos++
		switch it.spec.kind {
		case kindJoin:
			it.cur = t
			it.matches = it.table.probe(it.ctx, t, it.lk)
			it.mpos = 0
		case kindSemiJoin:
			if len(it.table.probe(it.ctx, t, it.lk)) > 0 {
				it.emit(t)
			}
		case kindComplementJoin:
			if len(it.table.probe(it.ctx, t, it.lk)) == 0 {
				it.emit(t)
			}
		case kindOuterJoin:
			it.cur = t
			it.matches = it.table.probe(it.ctx, t, it.lk)
			it.mpos = 0
			if len(it.matches) == 0 {
				it.emit(t.Concat(it.nulls))
			}
		case kindConstrainedOuterJoin:
			// The 'const' gate reads flag columns the tuple already carries:
			// no probe, no comparison charged (mirrors cojIter).
			if !it.spec.coj.ConstraintHolds(t) {
				it.emit(t.Append(relation.Null()))
				continue
			}
			if len(it.table.probe(it.ctx, t, it.lk)) > 0 {
				it.emit(t.Append(relation.Mark()))
			} else {
				it.emit(t.Append(relation.Null()))
			}
		}
	}
	if len(it.out) == 0 {
		return nil, false
	}
	it.ctx.noteBatch(len(it.out))
	it.batch.Tuples = it.out
	return &it.batch, true
}

// emit appends one output tuple to the streaming block. The serial tuple
// executor charges join outputs only at the root ("output"), so emit does
// not charge either — governor parity between the two paths.
func (it *batchJoinIter) emit(t relation.Tuple) {
	//lint:ignore govcharge fixed-capacity streaming block bounded by the batch size, reused every NextBatch — not a materialization
	it.out = append(it.out, t)
}

func (it *batchJoinIter) Close() { it.left.Close(); it.ps.close() }

// buildJoinLikeBatch mirrors buildJoinLike's strategy choice for the batch
// executor: persistent index, partition-parallel, else serial chained table.
func buildJoinLikeBatch(ctx *Context, spec joinSpec) (BatchIterator, error) {
	lk, rk := splitPairs(spec.on)
	if ctx.UseIndexes {
		if ip := indexProberFor(ctx, spec.right, rk); ip != nil {
			l, err := BuildBatch(ctx, spec.left)
			if err != nil {
				return nil, err
			}
			return &batchJoinIter{ctx: ctx, spec: spec, left: l, ps: &batchProberSpec{ctx: ctx, cols: rk, index: ip}, lk: lk, bs: ctx.blockSize()}, nil
		}
	}
	if ctx.parallelism() > 1 {
		l, r, err := buildBatchPair(ctx, spec.left, spec.right)
		if err != nil {
			return nil, err
		}
		return &batchParallelJoinIter{ctx: ctx, spec: spec, left: l, right: r, lk: lk, rk: rk, bs: ctx.blockSize()}, nil
	}
	l, err := BuildBatch(ctx, spec.left)
	if err != nil {
		return nil, err
	}
	r, err := BuildBatch(ctx, spec.right)
	if err != nil {
		return nil, err
	}
	return &batchJoinIter{ctx: ctx, spec: spec, left: l, ps: &batchProberSpec{ctx: ctx, cols: rk, rightIter: r}, lk: lk, bs: ctx.blockSize()}, nil
}

// batchParallelJoinIter is the streaming partition-parallel join. Open
// drains and scatters both inputs (single-threaded, like parallelJoinIter)
// and starts one runPartition worker per partition — but unlike the tuple
// executor it does NOT wait for them: NextBatch streams partition outputs
// in partition-index order, blocking only on the per-partition done channel
// of the partition it is currently slicing. A downstream memo producer
// therefore appends partition 0's blocks to the shared spool while
// partitions 1..p-1 are still computing — the elected producer's workers
// fill the spool in parallel — and the partition-index order keeps the
// spool prefix deterministic, which re-election after a producer death
// relies on.
type batchParallelJoinIter struct {
	ctx         *Context
	spec        joinSpec
	left, right BatchIterator
	lk, rk      []int
	bs          int

	p        int
	outs     [][]relation.Tuple
	done     []chan struct{}
	workers  []*Context
	panics   []*PanicError
	absorbed []bool
	wg       sync.WaitGroup
	started  bool
	panicked bool
	part     int
	pos      int
	batch    Batch
}

func (it *batchParallelJoinIter) Open() {
	p := it.ctx.parallelism()
	it.p = p

	// Phase 1 — partition (parent goroutine), block-at-a-time.
	rparts := batchDrainPartitions(it.ctx, it.right, it.rk, p)
	lparts := batchDrainPartitions(it.ctx, it.left, it.lk, p)

	// Phase 2 — per-partition build+probe on worker goroutines with private
	// stats shards. Each worker signals its own done channel; nobody waits
	// for the full fan-in before streaming.
	it.outs = make([][]relation.Tuple, p)
	it.done = make([]chan struct{}, p)
	it.workers = make([]*Context, p)
	it.panics = make([]*PanicError, p)
	it.absorbed = make([]bool, p)
	for i := 0; i < p; i++ {
		w := it.ctx.fork()
		it.workers[i] = w
		it.done[i] = make(chan struct{})
		it.wg.Add(1)
		go func(i int, w *Context) {
			defer it.wg.Done()
			// Deferred LIFO: the recover below runs first, so panics[i] is
			// published before done[i] closes and the streaming goroutine
			// never reads a half-set slot.
			defer close(it.done[i])
			defer func() {
				if r := recover(); r != nil {
					it.panics[i] = CapturePanic(r, "partition-worker")
				}
			}()
			it.outs[i] = runPartition(w, it.spec, lparts[i], rparts[i], it.lk, it.rk)
		}(i, w)
	}
	it.started = true
	it.part, it.pos = 0, 0
}

func (it *batchParallelJoinIter) NextBatch() (*Batch, bool) {
	if it.ctx.interruptedN(it.bs) {
		return nil, false
	}
	for it.part < it.p {
		if !it.absorbed[it.part] {
			// Workers always terminate: they run over fully drained
			// partitions and poll Interrupted, so this wait is bounded.
			<-it.done[it.part]
			it.ctx.absorb(it.workers[it.part])
			it.absorbed[it.part] = true
			if pe := it.panics[it.part]; pe != nil {
				// Re-surface on the consuming goroutine after the remaining
				// shards are absorbed, so no worker's stats are lost and the
				// isolation boundary converts it to a typed error.
				it.finish()
				it.panicked = true
				panic(pe)
			}
		}
		o := it.outs[it.part]
		if it.pos < len(o) {
			end := it.pos + it.bs
			if end > len(o) {
				end = len(o)
			}
			ts := o[it.pos:end:end]
			it.pos = end
			it.ctx.noteBatch(len(ts))
			it.batch.Tuples = ts
			return &it.batch, true
		}
		it.part++
		it.pos = 0
	}
	return nil, false
}

// finish waits for every worker and absorbs the shards not yet absorbed by
// the streaming loop. Idempotent.
func (it *batchParallelJoinIter) finish() {
	it.wg.Wait()
	for i := 0; i < it.p; i++ {
		if !it.absorbed[i] {
			it.ctx.absorb(it.workers[i])
			it.absorbed[i] = true
		}
	}
}

func (it *batchParallelJoinIter) Close() {
	it.left.Close()
	it.right.Close()
	if !it.started {
		return
	}
	it.finish()
	if it.panicked {
		return // already re-surfaced from NextBatch; Close runs during unwind
	}
	// An early close (emptiness probe, cancelled run) may leave a captured
	// worker panic unsurfaced: re-panic here so it still reaches the
	// isolation boundary instead of being silently dropped. Run checks
	// CancelErr before its deferred Close, so this is the last exit.
	for _, pe := range it.panics {
		if pe != nil {
			it.panicked = true
			panic(pe)
		}
	}
}

// batchDrainPartitions opens and drains a batch iterator, hashing each
// tuple's key columns and scattering into p partitions, with the governor
// charged once per block ("partition", matching the tuple path's op name).
func batchDrainPartitions(ctx *Context, in BatchIterator, keyCols []int, p int) [][]keyed {
	parts := make([][]keyed, p)
	if hint := hintOfBatch(in); hint > 0 {
		per := hint/p + hint/(4*p) + 8 // uniform share plus skew slack
		for i := range parts {
			parts[i] = make([]keyed, 0, per)
		}
	}
	in.Open()
	for {
		b, ok := in.NextBatch()
		if !ok || !ctx.chargeBatch("partition", b.Tuples) {
			break
		}
		for _, t := range b.Tuples {
			h := t.HashCols(keyCols)
			i := int(h % uint64(p))
			parts[i] = append(parts[i], keyed{t: t, h: h})
		}
	}
	return parts
}
