package exec

import (
	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/relation"
)

// scanIter streams a base relation, charging one base read per tuple.
type scanIter struct {
	ctx *Context
	rel *relation.Relation
	pos int
}

func (it *scanIter) Open() {
	it.pos = 0
	it.ctx.fireFault(faultinject.PointIterOpen)
}

func (it *scanIter) Next() (relation.Tuple, bool) {
	it.ctx.fireFault(faultinject.PointIterNext)
	// Scans feed every pipeline leaf, so one check here bounds how long any
	// streaming plan can outlive its context's cancellation.
	if it.pos >= it.rel.Len() || it.ctx.Interrupted() {
		return nil, false
	}
	t := it.rel.At(it.pos)
	it.pos++
	it.ctx.Stats.BaseTuplesRead++
	return t, true
}

func (it *scanIter) Close() {}

func (it *scanIter) sizeHint() int { return it.rel.Len() }

// selectIter filters by a predicate, charging its comparisons.
type selectIter struct {
	ctx  *Context
	in   Iterator
	pred algebra.Pred
}

func (it *selectIter) Open() { it.in.Open() }

func (it *selectIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.in.Next()
		if !ok {
			return nil, false
		}
		keep, c := it.pred.Eval(t)
		it.ctx.Stats.Comparisons += int64(c)
		if keep {
			return t, true
		}
	}
}

func (it *selectIter) Close() { it.in.Close() }

// A selection never produces more than its input.
func (it *selectIter) sizeHint() int { return hintOf(it.in) }

// projectIter projects columns, deduplicating unless the planner proved the
// projection duplicate-free.
type projectIter struct {
	ctx  *Context
	in   Iterator
	cols []int
	seen *tupleSet
}

func newProjectIter(ctx *Context, in Iterator, cols []int, dedup bool) *projectIter {
	it := &projectIter{ctx: ctx, in: in, cols: cols}
	if dedup {
		it.seen = newTupleSet()
	}
	return it
}

func (it *projectIter) Open() { it.in.Open() }

func (it *projectIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.in.Next()
		if !ok {
			return nil, false
		}
		out := t.Project(it.cols)
		if it.seen == nil {
			return out, true
		}
		if !it.seen.add(out) {
			continue
		}
		if !it.ctx.chargeTuple("project-dedup", out) {
			return nil, false
		}
		it.ctx.Stats.HashInserts++
		return out, true
	}
}

func (it *projectIter) Close() { it.in.Close() }

// A projection (deduplicating or not) never produces more than its input.
func (it *projectIter) sizeHint() int { return hintOf(it.in) }

// productIter is the cartesian product; the right input is buffered at Open.
type productIter struct {
	ctx         *Context
	left, right Iterator
	rightBuf    []relation.Tuple
	cur         relation.Tuple
	curOK       bool
	ri          int
}

func (it *productIter) Open() {
	it.left.Open()
	it.right.Open()
	for {
		t, ok := it.right.Next()
		if !ok || !it.ctx.chargeTuple("product", t) {
			break
		}
		it.rightBuf = append(it.rightBuf, t)
		it.ctx.Stats.IntermediateTuples++
	}
	it.curOK = false
	it.ri = 0
}

func (it *productIter) Next() (relation.Tuple, bool) {
	for {
		if !it.curOK {
			t, ok := it.left.Next()
			if !ok {
				return nil, false
			}
			it.cur, it.curOK, it.ri = t, true, 0
		}
		if it.ri >= len(it.rightBuf) {
			it.curOK = false
			continue
		}
		r := it.rightBuf[it.ri]
		it.ri++
		return it.cur.Concat(r), true
	}
}

func (it *productIter) Close() { it.left.Close(); it.right.Close() }

// hashBuild drains an iterator into a key->tuples table, charging inserts
// and intermediate buffering. keyCols selects the key projection.
type hashTable struct {
	buckets map[string][]relation.Tuple
}

func buildHash(ctx *Context, in Iterator, keyCols []int) *hashTable {
	h := &hashTable{buckets: make(map[string][]relation.Tuple)}
	in.Open()
	for {
		t, ok := in.Next()
		if !ok || !ctx.chargeTuple("join-build", t) {
			break
		}
		k := t.Project(keyCols).Key()
		h.buckets[k] = append(h.buckets[k], t)
		ctx.Stats.HashInserts++
		ctx.Stats.IntermediateTuples++
	}
	return h
}

// probe returns the matching tuples for a left tuple, charging one
// comparison for the lookup.
func (h *hashTable) probe(ctx *Context, t relation.Tuple, keyCols []int) []relation.Tuple {
	ctx.Stats.Comparisons++
	return h.buckets[t.Project(keyCols).Key()]
}

func splitPairs(on []algebra.ColPair) (left, right []int) {
	left = make([]int, len(on))
	right = make([]int, len(on))
	for i, p := range on {
		left[i] = p.Left
		right[i] = p.Right
	}
	return left, right
}

// joinIter is an equi-join (probe right per left tuple) with an optional
// residual predicate over the concatenated tuple. The probing side is
// either a transient hash table or a persistent catalog index (see
// proberSpec).
type joinIter struct {
	ctx      *Context
	left     Iterator
	spec     *proberSpec
	lk       []int
	residual algebra.Pred

	table    prober
	cur      relation.Tuple
	matches  []relation.Tuple
	matchPos int
}

func (it *joinIter) Open() {
	it.table = it.spec.open()
	it.left.Open()
}

func (it *joinIter) Next() (relation.Tuple, bool) {
	for {
		for it.matchPos < len(it.matches) {
			r := it.matches[it.matchPos]
			it.matchPos++
			out := it.cur.Concat(r)
			if it.residual != nil {
				ok, c := it.residual.Eval(out)
				it.ctx.Stats.Comparisons += int64(c)
				if !ok {
					continue
				}
			}
			return out, true
		}
		t, ok := it.left.Next()
		if !ok {
			return nil, false
		}
		it.cur = t
		it.matches = it.table.probe(it.ctx, t, it.lk)
		it.matchPos = 0
	}
}

func (it *joinIter) Close() { it.left.Close(); it.spec.close() }

// semiJoinIter implements both the semi-join (complement=false) and the
// paper's complement-join (complement=true, Definition 6): it keeps the
// left tuples that do (do not) have a join partner. Implemented, as the
// paper suggests, "by modifying any semi-join algorithm".
type semiJoinIter struct {
	ctx        *Context
	left       Iterator
	spec       *proberSpec
	lk         []int
	complement bool

	table prober
}

func (it *semiJoinIter) Open() {
	it.table = it.spec.open()
	it.left.Open()
}

func (it *semiJoinIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.left.Next()
		if !ok {
			return nil, false
		}
		matched := len(it.table.probe(it.ctx, t, it.lk)) > 0
		if matched != it.complement {
			return t, true
		}
	}
}

func (it *semiJoinIter) Close() { it.left.Close(); it.spec.close() }

// outerJoinIter is the unidirectional outer-join of [LP 76]: every left
// tuple survives, padded with ∅ in the right columns when unmatched.
type outerJoinIter struct {
	ctx        *Context
	left       Iterator
	spec       *proberSpec
	lk         []int
	rightArity int

	table    prober
	cur      relation.Tuple
	matches  []relation.Tuple
	matchPos int
	nulls    relation.Tuple
}

func (it *outerJoinIter) Open() {
	it.table = it.spec.open()
	it.left.Open()
	it.nulls = make(relation.Tuple, it.rightArity)
	for i := range it.nulls {
		it.nulls[i] = relation.Null()
	}
}

func (it *outerJoinIter) Next() (relation.Tuple, bool) {
	for {
		if it.matchPos < len(it.matches) {
			r := it.matches[it.matchPos]
			it.matchPos++
			return it.cur.Concat(r), true
		}
		t, ok := it.left.Next()
		if !ok {
			return nil, false
		}
		it.cur = t
		it.matches = it.table.probe(it.ctx, t, it.lk)
		it.matchPos = 0
		if len(it.matches) == 0 {
			return t.Concat(it.nulls), true
		}
	}
}

func (it *outerJoinIter) Close() { it.left.Close(); it.spec.close() }

// cojIter implements the constrained outer-join (Definition 7). Left tuples
// failing the 'const' gate are NOT probed against the right input; the flag
// column records ⊥ (probed, matched) or ∅ (unmatched or not probed).
type cojIter struct {
	ctx  *Context
	left Iterator
	spec *proberSpec
	node *algebra.ConstrainedOuterJoin
	lk   []int

	table prober
}

func (it *cojIter) Open() {
	it.table = it.spec.open()
	it.left.Open()
}

func (it *cojIter) Next() (relation.Tuple, bool) {
	t, ok := it.left.Next()
	if !ok {
		return nil, false
	}
	// Checking the 'const' gate examines flag columns the tuple already
	// carries — no data access, so no comparison is charged; the point of
	// the gate is precisely to avoid the (charged) probe below.
	if !it.node.ConstraintHolds(t) {
		return t.Append(relation.Null()), true
	}
	if len(it.table.probe(it.ctx, t, it.lk)) > 0 {
		return t.Append(relation.Mark()), true
	}
	return t.Append(relation.Null()), true
}

func (it *cojIter) Close() { it.left.Close(); it.spec.close() }

// unionIter streams left then right, deduplicating across both. The dedup
// buffer is charged as intermediate storage: a union result is held in full,
// which is precisely the cost the constrained outer-join strategy avoids.
type unionIter struct {
	ctx         *Context
	left, right Iterator
	seen        *tupleSet
	onRight     bool
}

func (it *unionIter) Open() {
	it.left.Open()
	it.right.Open()
	it.seen = newTupleSet()
	it.onRight = false
}

func (it *unionIter) Next() (relation.Tuple, bool) {
	for {
		var t relation.Tuple
		var ok bool
		if !it.onRight {
			t, ok = it.left.Next()
			if !ok {
				it.onRight = true
				continue
			}
		} else {
			t, ok = it.right.Next()
			if !ok {
				return nil, false
			}
		}
		if !it.seen.add(t) {
			continue
		}
		if !it.ctx.chargeTuple("union", t) {
			return nil, false
		}
		it.ctx.Stats.HashInserts++
		it.ctx.Stats.IntermediateTuples++
		return t, true
	}
}

func (it *unionIter) Close() { it.left.Close(); it.right.Close() }

// A union never produces more than its inputs combined; the hint survives
// only when both sides can bound themselves.
func (it *unionIter) sizeHint() int {
	l, r := hintOf(it.left), hintOf(it.right)
	if l < 0 || r < 0 {
		return -1
	}
	return l + r
}

// diffIter implements set difference (keep=false) and intersection
// (keep=true) by materializing the right side's keys and streaming the left.
type diffIter struct {
	ctx         *Context
	left, right Iterator
	keep        bool
	rightKeys   *tupleSet
	emitted     *tupleSet
}

func (it *diffIter) Open() {
	it.right.Open()
	it.rightKeys = newTupleSet()
	for {
		t, ok := it.right.Next()
		if !ok || !it.ctx.chargeTuple("difference", t) {
			break
		}
		it.rightKeys.add(t)
		it.ctx.Stats.HashInserts++
		it.ctx.Stats.IntermediateTuples++
	}
	it.left.Open()
	it.emitted = newTupleSet()
}

func (it *diffIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.left.Next()
		if !ok {
			return nil, false
		}
		it.ctx.Stats.Comparisons++
		if it.rightKeys.has(t) != it.keep {
			continue
		}
		if !it.emitted.add(t) {
			continue
		}
		if !it.ctx.chargeTuple("difference", t) {
			return nil, false
		}
		return t, true
	}
}

func (it *diffIter) Close() { it.left.Close(); it.right.Close() }

// divisionIter implements the generalized division of the paper's Prop. 4
// case 5. Both inputs are blocking: the divisor's key set and the dividend's
// key groups are built at Open.
type divisionIter struct {
	ctx      *Context
	dividend Iterator
	divisor  Iterator
	keyCols  []int
	divCols  []int

	order  []string
	reps   map[string]relation.Tuple
	groups map[string]map[string]struct{}
	divset map[string]struct{}
	pos    int
}

func (it *divisionIter) Open() {
	it.divisor.Open()
	it.divset = make(map[string]struct{})
	for {
		t, ok := it.divisor.Next()
		if !ok || !it.ctx.chargeTuple("division", t) {
			break
		}
		it.divset[t.Key()] = struct{}{}
		it.ctx.Stats.HashInserts++
		it.ctx.Stats.IntermediateTuples++
	}
	it.dividend.Open()
	it.reps = make(map[string]relation.Tuple)
	it.groups = make(map[string]map[string]struct{})
	for {
		t, ok := it.dividend.Next()
		if !ok || !it.ctx.chargeTuple("division", t) {
			break
		}
		key := t.Project(it.keyCols)
		kk := key.Key()
		g, seen := it.groups[kk]
		if !seen {
			g = make(map[string]struct{})
			it.groups[kk] = g
			it.reps[kk] = key
			it.order = append(it.order, kk)
		}
		g[t.Project(it.divCols).Key()] = struct{}{}
		it.ctx.Stats.HashInserts++
		it.ctx.Stats.IntermediateTuples++
	}
	it.pos = 0
}

func (it *divisionIter) Next() (relation.Tuple, bool) {
	// The group×divisor sweep below runs on buffered data, out of reach of
	// the scan-level check, so it polls for cancellation itself.
	for it.pos < len(it.order) && !it.ctx.Interrupted() {
		kk := it.order[it.pos]
		it.pos++
		g := it.groups[kk]
		all := true
		for d := range it.divset {
			it.ctx.Stats.Comparisons++
			if _, ok := g[d]; !ok {
				all = false
				break
			}
		}
		if all {
			return it.reps[kk], true
		}
	}
	return nil, false
}

func (it *divisionIter) Close() { it.dividend.Close(); it.divisor.Close() }

// groupCountIter implements the aggregate of the Quel-style baseline: it
// drains its input at Open, groups by the listed columns, and emits one
// tuple per group carrying the group's cardinality. Like any aggregate it
// is blocking; its buffering is charged as intermediate storage — exactly
// the cost the paper's introduction holds against the counting approach
// ("intermediate results … in principle not needed for answering").
type groupCountIter struct {
	ctx       *Context
	in        Iterator
	groupCols []int

	order  []string
	reps   map[string]relation.Tuple
	counts map[string]int64
	pos    int
}

func (it *groupCountIter) Open() {
	it.in.Open()
	it.reps = make(map[string]relation.Tuple)
	it.counts = make(map[string]int64)
	it.order = nil
	for {
		t, ok := it.in.Next()
		if !ok || !it.ctx.chargeTuple("group-count", t) {
			break
		}
		key := t.Project(it.groupCols)
		kk := key.Key()
		if _, seen := it.counts[kk]; !seen {
			it.reps[kk] = key
			it.order = append(it.order, kk)
		}
		it.counts[kk]++
		it.ctx.Stats.HashInserts++
		it.ctx.Stats.IntermediateTuples++
	}
	// With no group columns the count of an empty input is still a row.
	if len(it.groupCols) == 0 && len(it.order) == 0 {
		it.reps[""] = relation.Tuple{}
		it.counts[""] = 0
		it.order = append(it.order, "")
	}
	it.pos = 0
}

func (it *groupCountIter) Next() (relation.Tuple, bool) {
	if it.pos >= len(it.order) {
		return nil, false
	}
	kk := it.order[it.pos]
	it.pos++
	return it.reps[kk].Append(relation.Int(it.counts[kk])), true
}

func (it *groupCountIter) Close() { it.in.Close() }

// materializeIter drains its child into a temporary relation at Open and
// then streams the buffered tuples. It models the conventional strategy of
// storing intermediate results, and is charged as such.
type materializeIter struct {
	ctx    *Context
	in     Iterator
	schema relation.Schema
	buf    *relation.Relation
	pos    int
}

func (it *materializeIter) Open() {
	it.in.Open()
	it.buf = relation.NewUnnamed(it.schema)
	for {
		t, ok := it.in.Next()
		if !ok || !it.ctx.chargeTuple("materialize", t) {
			break
		}
		if it.buf.Insert(t) {
			it.ctx.Stats.IntermediateTuples++
		}
	}
	it.ctx.Stats.Materializations++
	it.pos = 0
}

func (it *materializeIter) Next() (relation.Tuple, bool) {
	if it.pos >= it.buf.Len() {
		return nil, false
	}
	t := it.buf.At(it.pos)
	it.pos++
	return t, true
}

func (it *materializeIter) Close() { it.in.Close() }

// Before Open the bound is the child's; after Open the buffer is exact.
// drainPartitions calls hintOf before Open, so propagating the child's hint
// is what keeps hints alive across materialization boundaries.
func (it *materializeIter) sizeHint() int {
	if it.buf != nil {
		return it.buf.Len()
	}
	return hintOf(it.in)
}
