package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/planopt"
	"repro/internal/relation"
	"repro/internal/storage"
)

// relFromBytes builds a unary relation over a small domain from raw bytes,
// so testing/quick can generate arbitrary relations.
func relFromBytes(name string, bs []byte) *relation.Relation {
	r := relation.New(name, relation.NewSchema("v"))
	for _, b := range bs {
		r.InsertValues(relation.Int(int64(b % 16)))
	}
	return r
}

// relPairsFromBytes builds a binary relation from byte pairs.
func relPairsFromBytes(name string, bs []byte) *relation.Relation {
	r := relation.New(name, relation.NewSchema("a", "b"))
	for i := 0; i+1 < len(bs); i += 2 {
		r.InsertValues(relation.Int(int64(bs[i]%8)), relation.Int(int64(bs[i+1]%8)))
	}
	return r
}

func catFor(rels ...*relation.Relation) *storage.Catalog {
	cat := storage.NewCatalog()
	for _, r := range rels {
		cat.Add(r)
	}
	return cat
}

func run(t *testing.T, cat *storage.Catalog, p algebra.Plan) *relation.Relation {
	t.Helper()
	out, err := Run(NewContext(cat), p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQuickProposition3 property-tests Proposition 3 on arbitrary unary
// relations: the semi-join and the complement-join partition P, and with a
// full-column condition the complement-join IS the set difference.
func TestQuickProposition3(t *testing.T) {
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	f := func(ps, qs []byte) bool {
		p := relFromBytes("P", ps)
		q := relFromBytes("Q", qs)
		cat := catFor(p, q)
		semi := run(t, cat, &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
		comp := run(t, cat, &algebra.ComplementJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
		// Partition: sizes add up, union equals P, intersection empty.
		if semi.Len()+comp.Len() != p.Len() {
			return false
		}
		for _, tu := range semi.Tuples() {
			if comp.Contains(tu) || !p.Contains(tu) {
				return false
			}
		}
		for _, tu := range comp.Tuples() {
			if !p.Contains(tu) {
				return false
			}
		}
		// P − Q = P ⊼[1=1] Q for same-arity relations.
		diff := run(t, cat, &algebra.Diff{Left: scan(cat, "P"), Right: scan(cat, "Q")})
		return diff.Equal(comp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOuterJoinPreservesLeft: π_left(P ⟕ Q) = P for arbitrary inputs
// (the property Fig. 2's discussion relies on).
func TestQuickOuterJoinPreservesLeft(t *testing.T) {
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	f := func(ps, qs []byte) bool {
		p := relFromBytes("P", ps)
		q := relFromBytes("Q", qs)
		cat := catFor(p, q)
		oj := run(t, cat, &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
		back := run(t, cat, &algebra.Project{
			Input: &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on},
			Cols:  []int{0},
		})
		if !back.Equal(p) {
			return false
		}
		// Null second column ⇔ no partner in Q.
		for _, tu := range oj.Tuples() {
			inQ := q.Contains(relation.NewTuple(tu[0]))
			if tu[1].IsNull() == inQ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConstrainedOuterJoin checks Definition 7 against its set-theoretic
// statement on arbitrary relations and an arbitrary constraint position.
func TestQuickConstrainedOuterJoin(t *testing.T) {
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	f := func(ps, qs, us []byte, negate bool) bool {
		p := relFromBytes("P", ps)
		q := relFromBytes("Q", qs)
		u := relFromBytes("U", us)
		cat := catFor(p, q, u)
		first := &algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on}
		second := &algebra.ConstrainedOuterJoin{
			Left: first, Right: scan(cat, "U"), On: on,
			Constraint: []algebra.NullCond{{Col: 1, IsNull: !negate}},
		}
		out := run(t, cat, second)
		if out.Len() != p.Len() {
			return false // left-preserving, one flag per tuple
		}
		for _, tu := range out.Tuples() {
			inQ := q.Contains(relation.NewTuple(tu[0]))
			if (tu[1].IsMark()) != inQ {
				return false
			}
			gateHolds := tu[1].IsNull() == !negate
			if !gateHolds {
				if !tu[2].IsNull() {
					return false // not probed ⇒ ∅
				}
				continue
			}
			inU := u.Contains(relation.NewTuple(tu[0]))
			if tu[2].IsMark() != inU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDivisionBruteForce checks ÷ against its defining formula.
func TestQuickDivisionBruteForce(t *testing.T) {
	f := func(gs, ds []byte) bool {
		g := relPairsFromBytes("G", gs)
		d := relFromBytes("D", ds)
		cat := catFor(g, d)
		div := run(t, cat, &algebra.Division{
			Dividend: scan(cat, "G"), Divisor: scan(cat, "D"),
			KeyCols: []int{0}, DivCols: []int{1},
		})
		// Brute force: x qualifies iff x appears in G and ∀z∈D: (x,z)∈G.
		want := relation.NewUnnamed(relation.NewSchema("a"))
		seen := map[int64]bool{}
		for _, tu := range g.Tuples() {
			x := tu[0].AsInt()
			if seen[x] {
				continue
			}
			seen[x] = true
			all := true
			for _, dt := range d.Tuples() {
				if !g.Contains(relation.NewTuple(tu[0], dt[0])) {
					all = false
					break
				}
			}
			if all {
				want.Insert(relation.NewTuple(tu[0]))
			}
		}
		return div.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetAlgebra: (A−B) ∪ (A∩B) = A and De Morgan-ish size checks.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(as, bs []byte) bool {
		a := relFromBytes("A", as)
		b := relFromBytes("B", bs)
		cat := catFor(a, b)
		diff := &algebra.Diff{Left: scan(cat, "A"), Right: scan(cat, "B")}
		inter := &algebra.Intersect{Left: scan(cat, "A"), Right: scan(cat, "B")}
		both := run(t, cat, &algebra.Union{Left: diff, Right: inter})
		if !both.Equal(a) {
			return false
		}
		un := run(t, cat, &algebra.Union{Left: scan(cat, "A"), Right: scan(cat, "B")})
		i := run(t, cat, inter)
		return un.Len() == a.Len()+b.Len()-i.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndexedAgreesWithHash: for arbitrary relations the indexed and
// hash-building executors return identical semi-/complement-join results.
func TestQuickIndexedAgreesWithHash(t *testing.T) {
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	f := func(ps, qs []byte, complement bool) bool {
		p := relFromBytes("P", ps)
		q := relFromBytes("Q", qs)
		cat := catFor(p, q)
		var mk func() algebra.Plan
		if complement {
			mk = func() algebra.Plan {
				return &algebra.ComplementJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on}
			}
		} else {
			mk = func() algebra.Plan {
				return &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on}
			}
		}
		a, err := Run(NewContext(cat), mk())
		if err != nil {
			return false
		}
		b, err := Run(NewIndexedContext(cat), mk())
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemoTransparency: for arbitrary relations, running a plan whose
// repeated subtrees went through planopt.Share with the memo on — serial and
// with Parallelism(4) — yields exactly the uncached result, and base reads
// never exceed the uncached run's.
func TestQuickMemoTransparency(t *testing.T) {
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	f := func(ps, qs, us []byte) bool {
		p := relFromBytes("P", ps)
		q := relFromBytes("Q", qs)
		u := relFromBytes("U", us)
		cat := catFor(p, q, u)
		// Two ⋉ twins over the same producer under a union, plus a diff
		// against U — the Rule 12 shape the share pass targets.
		mk := func() algebra.Plan {
			producer := func() algebra.Plan {
				return &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on}
			}
			return &algebra.Diff{
				Left:  &algebra.Union{Left: producer(), Right: producer()},
				Right: scan(cat, "U"),
			}
		}
		shared := planopt.Share(mk())

		offCtx := NewContext(cat)
		want, err := Run(offCtx, mk())
		if err != nil {
			return false
		}
		for _, par := range []int{1, 4} {
			ctx := NewContext(cat)
			ctx.Parallelism = par
			ctx.Memo = NewMemo(0)
			got, err := Run(ctx, shared)
			if err != nil || !got.Equal(want) {
				return false
			}
			if ctx.Stats.BaseTuplesRead > offCtx.Stats.BaseTuplesRead {
				return false
			}
			// Warm re-run against the same memo must agree too.
			warm := NewContext(cat)
			warm.Parallelism = par
			warm.Memo = ctx.Memo
			again, err := Run(warm, shared)
			if err != nil || !again.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
