package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// memoProducer is a 3-node shared subtree: P ⋉ T over the Fig. 2 catalog.
func memoProducer(cat *storage.Catalog) algebra.Plan {
	return &algebra.SemiJoin{
		Left:  scan(cat, "P"),
		Right: scan(cat, "T"),
		On:    []algebra.ColPair{{Left: 0, Right: 0}},
	}
}

// sharedTwicePlan unions one Shared producer with itself filtered; both
// occurrences carry the same fingerprint, so the second replays.
func sharedTwicePlan(cat *storage.Catalog) algebra.Plan {
	sh := algebra.NewShared(memoProducer(cat))
	return &algebra.Union{
		Left:  sh,
		Right: &algebra.Select{Input: sh, Pred: algebra.True{}},
	}
}

func TestMemoIntraPlanSharing(t *testing.T) {
	cat := ptuCatalog(t)

	// Baseline: no memo installed — Shared is transparent.
	off := NewContext(cat)
	wantRes, err := Run(off, sharedTwicePlan(cat))
	if err != nil {
		t.Fatal(err)
	}

	on := NewContext(cat)
	on.Memo = NewMemo(0)
	got, err := Run(on, sharedTwicePlan(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantRes) {
		t.Fatalf("cache-on result differs:\ngot:\n%s\nwant:\n%s", got, wantRes)
	}
	if on.Stats.CacheMisses != 1 || on.Stats.CacheHits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got miss=%d hit=%d", on.Stats.CacheMisses, on.Stats.CacheHits)
	}
	if on.Stats.CacheTuplesReplayed == 0 || on.Stats.CacheTuplesSpooled == 0 {
		t.Fatalf("expected spooled and replayed tuples: %s", on.Stats)
	}
	// The producer ran once instead of twice: base reads drop by one
	// |P|+|T| pass.
	producerReads := int64(7) // |P|=4 + |T|=3
	if off.Stats.BaseTuplesRead-on.Stats.BaseTuplesRead != producerReads {
		t.Fatalf("want %d fewer base reads, got off=%d on=%d",
			producerReads, off.Stats.BaseTuplesRead, on.Stats.BaseTuplesRead)
	}
}

func TestMemoWarmAcrossRuns(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	cold := NewContext(cat)
	cold.Memo = memo
	first, err := Run(cold, plan)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheMisses != 1 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold run: %s", cold.Stats)
	}

	warm := NewContext(cat)
	warm.Memo = memo
	second, err := Run(warm, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Equal(first) {
		t.Fatal("warm result differs from cold")
	}
	if warm.Stats.CacheHits != 1 || warm.Stats.BaseTuplesRead != 0 {
		t.Fatalf("warm run should replay without base reads: %s", warm.Stats)
	}
}

func TestMemoInvalidationOnMutation(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	c1 := NewContext(cat)
	c1.Memo = memo
	first, err := Run(c1, plan)
	if err != nil {
		t.Fatal(err)
	}

	// "e" joins P only after this insert; a stale replay would miss it.
	p, _ := cat.Relation("P")
	p.InsertValues(relation.Str("e"))

	c2 := NewContext(cat)
	c2.Memo = memo
	second, err := Run(c2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats.CacheHits != 0 {
		t.Fatalf("mutated catalog must not hit: %s", c2.Stats)
	}
	if second.Equal(first) {
		t.Fatal("result did not change after mutation — stale replay?")
	}
	if !second.Contains(relation.NewTuple(relation.Str("e"))) {
		t.Fatal("fresh evaluation must see the inserted tuple")
	}
}

func TestMemoBudgetEviction(t *testing.T) {
	m := NewMemo(10)
	mk := func(n int) []relation.Tuple {
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.NewTuple(relation.Int(int64(i)))
		}
		return ts
	}
	m.store(1, 100, "a", mk(6))
	m.store(1, 200, "b", mk(4))
	if m.Entries() != 2 || m.Tuples() != 10 {
		t.Fatalf("entries=%d tuples=%d", m.Entries(), m.Tuples())
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := m.lookup(1, 100, "a"); !ok {
		t.Fatal("lookup a")
	}
	m.store(1, 300, "c", mk(4))
	if _, ok := m.lookup(1, 200, "b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := m.lookup(1, 100, "a"); !ok {
		t.Fatal("a should have survived")
	}
	if m.Tuples() != 10 {
		t.Fatalf("tuples=%d after eviction", m.Tuples())
	}
	// An oversized result is never stored.
	m.store(1, 400, "d", mk(11))
	if _, ok := m.lookup(1, 400, "d"); ok {
		t.Fatal("oversized entry stored")
	}
}

func TestMemoCollisionIsMiss(t *testing.T) {
	m := NewMemo(0)
	m.store(1, 42, "plan-one", []relation.Tuple{relation.NewTuple(relation.Int(1))})
	// Same fingerprint, different canonical plan: must not replay, and the
	// incumbent must stay intact.
	if _, ok := m.lookup(1, 42, "plan-two"); ok {
		t.Fatal("colliding fingerprint replayed a foreign result")
	}
	m.store(1, 42, "plan-two", []relation.Tuple{relation.NewTuple(relation.Int(2))})
	got, ok := m.lookup(1, 42, "plan-one")
	if !ok || len(got) != 1 || !got[0].Equal(relation.NewTuple(relation.Int(1))) {
		t.Fatal("incumbent entry clobbered by colliding store")
	}
}

func TestMemoStaleGenerationIgnored(t *testing.T) {
	m := NewMemo(0)
	ts := []relation.Tuple{relation.NewTuple(relation.Int(1))}
	m.store(5, 1, "k", ts)
	// A newer generation flushes.
	if _, ok := m.lookup(6, 1, "k"); ok {
		t.Fatal("newer generation must flush")
	}
	// A stale writer (generation 5 after 6 was seen) must not resurrect.
	m.store(5, 1, "k", ts)
	if _, ok := m.lookup(6, 1, "k"); ok {
		t.Fatal("stale store must be dropped")
	}
}

func TestMemoIncompleteDrainNotPublished(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	it, err := Build(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	it.Open()
	if _, ok := it.Next(); !ok {
		t.Fatal("producer is non-empty")
	}
	it.Close() // early close: only one tuple pulled

	if memo.Entries() != 0 {
		t.Fatal("partial spool must not be published")
	}

	// A later full drain still works and publishes.
	c2 := NewContext(cat)
	c2.Memo = memo
	if _, err := Run(c2, plan); err != nil {
		t.Fatal(err)
	}
	if memo.Entries() != 1 {
		t.Fatal("full drain should publish")
	}
}

func TestMemoNilIsTransparent(t *testing.T) {
	cat := ptuCatalog(t)
	ctx := NewContext(cat)
	out, err := Run(ctx, sharedTwicePlan(cat))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("transparent Shared produced nothing")
	}
	if ctx.Stats.CacheHits+ctx.Stats.CacheMisses != 0 {
		t.Fatalf("no memo, no cache traffic: %s", ctx.Stats)
	}
}

func TestMemoSizeHint(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	c1 := NewContext(cat)
	c1.Memo = memo
	res, err := Run(c1, plan)
	if err != nil {
		t.Fatal(err)
	}

	c2 := NewContext(cat)
	c2.Memo = memo
	it, err := Build(c2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := hintOf(it); got != res.Len() {
		t.Fatalf("warm hint = %d, want cached length %d", got, res.Len())
	}
}
