package exec

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Context carries everything an execution needs: the catalog holding the
// base relations and the stats record charged by every operator.
type Context struct {
	Catalog *storage.Catalog
	Stats   *Stats
	// UseIndexes lets join-like operators probe persistent catalog hash
	// indexes instead of building transient hash tables when their right
	// side is a (selection over a) base relation scan. Index probes charge
	// comparisons and the reads of fetched candidates, but no build cost —
	// which is what makes the §3.2 emptiness tests terminate after
	// near-constant work.
	UseIndexes bool
}

// NewContext builds a context with a fresh stats record.
func NewContext(cat *storage.Catalog) *Context {
	return &Context{Catalog: cat, Stats: &Stats{}}
}

// NewIndexedContext builds a context with UseIndexes enabled.
func NewIndexedContext(cat *storage.Catalog) *Context {
	ctx := NewContext(cat)
	ctx.UseIndexes = true
	return ctx
}

// Iterator is the volcano interface. Open prepares the operator (blocking
// operators do their buffering here), Next yields the next tuple, Close
// releases resources. Iterators are single-use.
type Iterator interface {
	Open()
	Next() (relation.Tuple, bool)
	Close()
}

// Build compiles a plan into an iterator tree against the context's catalog.
// All catalog resolution errors surface here, so Next can stay error-free.
func Build(ctx *Context, p algebra.Plan) (Iterator, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		r, err := ctx.Catalog.Relation(n.Name)
		if err != nil {
			return nil, err
		}
		if r.Arity() != n.Sch.Arity() {
			return nil, fmt.Errorf("exec: scan of %q expects arity %d, catalog has %d", n.Name, n.Sch.Arity(), r.Arity())
		}
		return &scanIter{ctx: ctx, rel: r}, nil
	case *algebra.Select:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &selectIter{ctx: ctx, in: in, pred: n.Pred}, nil
	case *algebra.Project:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return newProjectIter(ctx, in, n.Cols, !n.NoDedup), nil
	case *algebra.Product:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &productIter{ctx: ctx, left: l, right: r}, nil
	case *algebra.Join:
		l, spec, lk, err := buildProbeSide(ctx, n.Left, n.Right, n.On)
		if err != nil {
			return nil, err
		}
		return &joinIter{ctx: ctx, left: l, spec: spec, lk: lk, residual: n.Residual}, nil
	case *algebra.SemiJoin:
		l, spec, lk, err := buildProbeSide(ctx, n.Left, n.Right, n.On)
		if err != nil {
			return nil, err
		}
		return &semiJoinIter{ctx: ctx, left: l, spec: spec, lk: lk, complement: false}, nil
	case *algebra.ComplementJoin:
		l, spec, lk, err := buildProbeSide(ctx, n.Left, n.Right, n.On)
		if err != nil {
			return nil, err
		}
		return &semiJoinIter{ctx: ctx, left: l, spec: spec, lk: lk, complement: true}, nil
	case *algebra.OuterJoin:
		l, spec, lk, err := buildProbeSide(ctx, n.Left, n.Right, n.On)
		if err != nil {
			return nil, err
		}
		return &outerJoinIter{ctx: ctx, left: l, spec: spec, lk: lk, rightArity: n.Right.Schema().Arity()}, nil
	case *algebra.ConstrainedOuterJoin:
		l, spec, lk, err := buildProbeSide(ctx, n.Left, n.Right, n.On)
		if err != nil {
			return nil, err
		}
		return &cojIter{ctx: ctx, left: l, spec: spec, lk: lk, node: n}, nil
	case *algebra.Union:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &unionIter{ctx: ctx, left: l, right: r}, nil
	case *algebra.Diff:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &diffIter{ctx: ctx, left: l, right: r, keep: false}, nil
	case *algebra.Intersect:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &diffIter{ctx: ctx, left: l, right: r, keep: true}, nil
	case *algebra.Division:
		l, r, err := buildPair(ctx, n.Dividend, n.Divisor)
		if err != nil {
			return nil, err
		}
		return &divisionIter{ctx: ctx, dividend: l, divisor: r, keyCols: n.KeyCols, divCols: n.DivCols}, nil
	case *algebra.GroupCount:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &groupCountIter{ctx: ctx, in: in, groupCols: n.GroupCols}, nil
	case *algebra.Materialize:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &materializeIter{ctx: ctx, in: in, schema: n.Schema()}, nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", p)
	}
}

// buildProbeSide compiles the left input and picks the right side's
// probing strategy for a join-like node.
func buildProbeSide(ctx *Context, left, right algebra.Plan, on []algebra.ColPair) (Iterator, *proberSpec, []int, error) {
	l, err := Build(ctx, left)
	if err != nil {
		return nil, nil, nil, err
	}
	lk, rk := splitPairs(on)
	spec, err := newProberSpec(ctx, right, rk)
	if err != nil {
		return nil, nil, nil, err
	}
	return l, spec, lk, nil
}

func buildPair(ctx *Context, l, r algebra.Plan) (Iterator, Iterator, error) {
	li, err := Build(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	ri, err := Build(ctx, r)
	if err != nil {
		return nil, nil, err
	}
	return li, ri, nil
}

// Run executes a plan to completion and materializes its result.
func Run(ctx *Context, p algebra.Plan) (*relation.Relation, error) {
	it, err := Build(ctx, p)
	if err != nil {
		return nil, err
	}
	out := relation.NewUnnamed(p.Schema())
	it.Open()
	defer it.Close()
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		out.Insert(t)
		ctx.Stats.OutputTuples++
	}
	return out, nil
}

// EvalBool evaluates a boolean plan (§3.2). Emptiness tests pull at most
// one tuple from their relational input; connectives short-circuit left to
// right. This realizes algebraically the early termination of the Fig. 1
// loop algorithms.
func EvalBool(ctx *Context, p algebra.BoolPlan) (bool, error) {
	switch n := p.(type) {
	case *algebra.NotEmpty:
		return probeNonEmpty(ctx, n.Input)
	case *algebra.IsEmpty:
		ok, err := probeNonEmpty(ctx, n.Input)
		return !ok, err
	case *algebra.BoolAnd:
		for _, c := range n.Inputs {
			ok, err := EvalBool(ctx, c)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case *algebra.BoolOr:
		for _, c := range n.Inputs {
			ok, err := EvalBool(ctx, c)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *algebra.BoolNot:
		ok, err := EvalBool(ctx, n.Input)
		return !ok, err
	case *algebra.BoolConst:
		return n.Value, nil
	default:
		return false, fmt.Errorf("exec: unknown boolean plan node %T", p)
	}
}

// probeNonEmpty opens the plan and asks for a single tuple.
func probeNonEmpty(ctx *Context, p algebra.Plan) (bool, error) {
	it, err := Build(ctx, p)
	if err != nil {
		return false, err
	}
	it.Open()
	defer it.Close()
	_, ok := it.Next()
	return ok, nil
}
