package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/storage"
)

// DefaultCheckInterval is how many Interrupted polls pass between actual
// reads of the attached context.Context when the Context does not choose
// its own interval. Iterator hot loops call Interrupted once per tuple, so
// the common case is a single integer increment; a cancellation or deadline
// is observed within N tuples.
const DefaultCheckInterval = 1024

// GovernedCheckInterval is the tighter poll interval selected automatically
// when a Governor or fault plan is installed: abort latency is then bounded
// by a budget the caller chose, so the engine trades a little poll overhead
// for tuple-bounded limit and cancel latency.
const GovernedCheckInterval = 64

// maxParallelism caps the partition fan-out of one operator; beyond this the
// per-partition bookkeeping outweighs any plausible hardware.
const maxParallelism = 64

// Context carries everything an execution needs: the catalog holding the
// base relations, the stats record charged by every operator, the tuning
// knobs (indexes, parallelism) and an optional context.Context whose
// cancellation every iterator observes.
type Context struct {
	Catalog *storage.Catalog
	Stats   *Stats
	// UseIndexes lets join-like operators probe persistent catalog hash
	// indexes instead of building transient hash tables when their right
	// side is a (selection over a) base relation scan. Index probes charge
	// comparisons and the reads of fetched candidates, but no build cost —
	// which is what makes the §3.2 emptiness tests terminate after
	// near-constant work.
	UseIndexes bool
	// Parallelism is the partition fan-out of the hash-join family
	// (⋈, ⋉, ⊼, ⟕, ⟕⊥): build and probe sides are hash-partitioned into
	// Parallelism disjoint partitions, each run on its own worker with a
	// private stats shard. Values below 2 select the serial executor.
	Parallelism int
	// Memo is the optional result cache consulted by algebra.Shared nodes.
	// nil makes Shared transparent. The memo is engine-wide and
	// mutex-guarded: serialChild copies carry it, and fork() keeps it too so
	// partition worker forks can consult the read side. Memo entries are
	// single-flight — concurrent executions that miss the same fingerprint
	// elect one producer and stream from its in-flight spool (memo.go).
	Memo *Memo
	// Gov is the optional per-query resource governor. Every materializing
	// operator charges it; a budget violation aborts the run with a typed
	// *ResourceError. The governor is shared by worker forks (its counters
	// are atomic), so the budget bounds the whole query, not one partition.
	Gov *Governor
	// Faults is the optional deterministic fault-injection plan consulted at
	// the registered faultinject points. nil (the production state) reduces
	// every point to a single pointer check.
	Faults *faultinject.Plan
	// CheckInterval overrides how many Interrupted polls pass between reads
	// of the attached context.Context; 0 selects DefaultCheckInterval.
	// Installing a Governor or fault plan is expected to lower it (the
	// engine uses GovernedCheckInterval) so abort latency stays
	// tuple-bounded.
	CheckInterval int
	// BatchSize selects Run's executor. 0 (the default) drives the
	// block-at-a-time executor at DefaultBatchSize; a positive value picks
	// the block capacity; a negative value selects the classic
	// tuple-at-a-time pipeline (batch-off parity runs, tuple-granular
	// cancellation latency). EvalBool's emptiness probes and the engine's
	// streaming path always run tuple-at-a-time: their point is early
	// termination, which block accumulation would defeat.
	BatchSize int

	// goCtx is the cancellation source; nil means uncancellable.
	goCtx context.Context
	// ticks counts Interrupted calls since the last context poll.
	ticks int
	// cancelErr is the sticky abort cause: a context cancellation observed
	// by Interrupted, a governor budget violation, or an injected fault.
	// Once set, every later iterator call stops immediately.
	cancelErr error
	// execID identifies the execution this context belongs to, across
	// serialChild copies and worker forks. The memo uses it to keep an
	// execution from blocking on a single-flight spool its own suspended
	// producer is filling (which would deadlock one goroutine).
	execID uint64
}

// execIDCounter hands out process-unique execution identities.
var execIDCounter atomic.Uint64

// NewContext builds a context with a fresh stats record.
func NewContext(cat *storage.Catalog) *Context {
	return &Context{Catalog: cat, Stats: &Stats{}, execID: execIDCounter.Add(1)}
}

// NewIndexedContext builds a context with UseIndexes enabled.
func NewIndexedContext(cat *storage.Catalog) *Context {
	ctx := NewContext(cat)
	ctx.UseIndexes = true
	return ctx
}

// AttachContext ties the execution to a context.Context: once it is
// cancelled or its deadline passes, every iterator's Next loop terminates
// within cancelCheckInterval tuples and Run/EvalBool report the context's
// error instead of a partial result.
func (c *Context) AttachContext(ctx context.Context) { c.goCtx = ctx }

// Interrupted reports (stickily) whether the run has been aborted — by
// context cancellation (polled every checkInterval calls), a governor
// budget trip, or an injected fault. Iterator hot loops call it once per
// tuple; the sticky check is a single comparison.
func (c *Context) Interrupted() bool { return c.interruptedN(1) }

// interruptedN is Interrupted with a tick weight: a batch operator that is
// about to process (or just processed) n tuples advances the poll counter
// by n, so the CheckInterval cancellation-latency contract stays denominated
// in tuples — not in calls — under block execution. A weight-n check before
// emitting a block guarantees fewer than checkInterval tuples flow between
// two real context polls, the same bound the per-tuple path provides.
func (c *Context) interruptedN(n int) bool {
	if c.cancelErr != nil {
		return true
	}
	if c.goCtx == nil {
		return false
	}
	c.ticks += n
	if c.ticks < c.checkInterval() {
		return false
	}
	c.ticks = 0
	select {
	case <-c.goCtx.Done():
		c.cancelErr = c.goCtx.Err()
		return true
	default:
		return false
	}
}

// checkInterval returns the effective context poll interval.
func (c *Context) checkInterval() int {
	if c.CheckInterval > 0 {
		return c.CheckInterval
	}
	return DefaultCheckInterval
}

// CancelErr returns the abort cause once Interrupted has observed one (a
// context error, a *ResourceError, or an injected fault), and nil
// otherwise. A run whose iterators drained normally before the context
// fired keeps its (complete, correct) result.
func (c *Context) CancelErr() error { return c.cancelErr }

// doneChan returns the attached context's Done channel, or nil (blocks
// forever in a select) when the execution is uncancellable. Memo consumers
// select on it while waiting for a producer, so a blocked consumer observes
// its own cancellation even though no tuples are flowing.
func (c *Context) doneChan() <-chan struct{} {
	if c.goCtx == nil {
		return nil
	}
	return c.goCtx.Done()
}

// observeCancel makes the attached context's error sticky immediately,
// bypassing the tick-counted poll. Called when a blocked wait saw the Done
// channel fire.
func (c *Context) observeCancel() {
	if c.goCtx != nil {
		c.fail(c.goCtx.Err())
	}
}

// fail records err as the context's sticky abort cause; the first cause
// wins. Iterators observe it through Interrupted on their next call.
func (c *Context) fail(err error) {
	if c.cancelErr == nil && err != nil {
		c.cancelErr = err
	}
}

// fireFault passes through a fault-injection point: without a plan it is a
// single nil check; with one, an armed error fault becomes the context's
// abort cause (panic and delay faults realize inside Invoke).
func (c *Context) fireFault(point string) {
	if c.Faults == nil {
		return
	}
	c.fail(c.Faults.Invoke(point))
}

// chargeTuple accounts one tuple buffered by op against the governor and
// reports whether execution may continue. With no governor it is a nil
// check. A budget violation becomes the context's sticky abort cause.
func (c *Context) chargeTuple(op string, t relation.Tuple) bool {
	if c.Gov == nil {
		return true
	}
	return c.chargeN(op, 1, tupleBytes(t))
}

// ChargeTuple is chargeTuple for materialization points outside this
// package: the engine's streaming dedup set buffers one entry per distinct
// output tuple and must account for it like any other operator state.
func (c *Context) ChargeTuple(op string, t relation.Tuple) bool { return c.chargeTuple(op, t) }

// chargeBatch accounts a slice of already-buffered tuples in one governor
// transaction (used by blocking builds that ingest whole partitions).
func (c *Context) chargeBatch(op string, ts []relation.Tuple) bool {
	if c.Gov == nil || len(ts) == 0 {
		return true
	}
	var b int64
	for _, t := range ts {
		b += tupleBytes(t)
	}
	return c.chargeN(op, int64(len(ts)), b)
}

func (c *Context) chargeN(op string, n, bytes int64) bool {
	evicted, err := c.Gov.ChargeBytesN(op, n, bytes)
	c.Stats.DegradedEvictions += evicted
	if err != nil {
		// Charge once per context: sibling workers each record their own
		// trip, but a context that is already aborting stays quiet.
		if c.cancelErr == nil {
			c.Stats.LimitsTripped++
		}
		c.fail(err)
		return false
	}
	return true
}

// parallelism returns the effective partition fan-out.
func (c *Context) parallelism() int {
	p := c.Parallelism
	if p < 1 {
		return 1
	}
	if p > maxParallelism {
		return maxParallelism
	}
	return p
}

// fork clones the context for one parallel worker: same catalog, flags,
// cancellation source, execution identity and (mutex-guarded) memo, but a
// private stats shard and poll state, so workers charge their work without
// locks.
func (c *Context) fork() *Context {
	return &Context{
		Catalog:       c.Catalog,
		Stats:         &Stats{},
		UseIndexes:    c.UseIndexes,
		goCtx:         c.goCtx,
		Memo:          c.Memo,
		Gov:           c.Gov,
		Faults:        c.Faults,
		CheckInterval: c.CheckInterval,
		BatchSize:     c.BatchSize,
		execID:        c.execID,
	}
}

// absorb merges a worker context back into c after the worker has finished:
// the stats shard is added (single-threaded, after the WaitGroup barrier)
// and any observed cancellation becomes sticky on c.
func (c *Context) absorb(w *Context) {
	c.Stats.Add(*w.Stats)
	if c.cancelErr == nil && w.cancelErr != nil {
		c.cancelErr = w.cancelErr
	}
}

// serialChild returns a copy of the context with parallelism disabled but
// the same stats record and cancellation source. Emptiness probes (§3.2)
// use it: their early termination after one tuple would be destroyed by the
// partitioned executor's blocking build.
func (c *Context) serialChild() *Context {
	child := *c
	child.Parallelism = 1
	return &child
}

// Iterator is the volcano interface. Open prepares the operator (blocking
// operators do their buffering here), Next yields the next tuple, Close
// releases resources. Iterators are single-use.
type Iterator interface {
	Open()
	Next() (relation.Tuple, bool)
	Close()
}

// Build compiles a plan into an iterator tree against the context's catalog.
// All catalog resolution errors surface here, so Next can stay error-free.
func Build(ctx *Context, p algebra.Plan) (Iterator, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		r, err := ctx.Catalog.Relation(n.Name)
		if err != nil {
			return nil, err
		}
		if r.Arity() != n.Sch.Arity() {
			return nil, fmt.Errorf("exec: scan of %q expects arity %d, catalog has %d", n.Name, n.Sch.Arity(), r.Arity())
		}
		return &scanIter{ctx: ctx, rel: r}, nil
	case *algebra.Select:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &selectIter{ctx: ctx, in: in, pred: n.Pred}, nil
	case *algebra.Project:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return newProjectIter(ctx, in, n.Cols, !n.NoDedup), nil
	case *algebra.Product:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &productIter{ctx: ctx, left: l, right: r}, nil
	case *algebra.Join:
		return buildJoinLike(ctx, joinSpec{kind: kindJoin, left: n.Left, right: n.Right, on: n.On, residual: n.Residual})
	case *algebra.SemiJoin:
		return buildJoinLike(ctx, joinSpec{kind: kindSemiJoin, left: n.Left, right: n.Right, on: n.On})
	case *algebra.ComplementJoin:
		return buildJoinLike(ctx, joinSpec{kind: kindComplementJoin, left: n.Left, right: n.Right, on: n.On})
	case *algebra.OuterJoin:
		return buildJoinLike(ctx, joinSpec{kind: kindOuterJoin, left: n.Left, right: n.Right, on: n.On, rightArity: n.Right.Schema().Arity()})
	case *algebra.ConstrainedOuterJoin:
		return buildJoinLike(ctx, joinSpec{kind: kindConstrainedOuterJoin, left: n.Left, right: n.Right, on: n.On, coj: n})
	case *algebra.Union:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &unionIter{ctx: ctx, left: l, right: r}, nil
	case *algebra.Diff:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &diffIter{ctx: ctx, left: l, right: r, keep: false}, nil
	case *algebra.Intersect:
		l, r, err := buildPair(ctx, n.Left, n.Right)
		if err != nil {
			return nil, err
		}
		return &diffIter{ctx: ctx, left: l, right: r, keep: true}, nil
	case *algebra.Division:
		l, r, err := buildPair(ctx, n.Dividend, n.Divisor)
		if err != nil {
			return nil, err
		}
		return &divisionIter{ctx: ctx, dividend: l, divisor: r, keyCols: n.KeyCols, divCols: n.DivCols}, nil
	case *algebra.GroupCount:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &groupCountIter{ctx: ctx, in: in, groupCols: n.GroupCols}, nil
	case *algebra.Materialize:
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		return &materializeIter{ctx: ctx, in: in, schema: n.Schema()}, nil
	case *algebra.Shared:
		// The input is built eagerly either way, so catalog errors surface
		// at build time even when the first Next will hit the memo.
		in, err := Build(ctx, n.Input)
		if err != nil {
			return nil, err
		}
		if ctx.Memo == nil {
			return in, nil
		}
		return newMemoIter(ctx, in, n), nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", p)
	}
}

// joinSpec describes one member of the hash-join family to buildJoinLike.
type joinSpec struct {
	kind        joinKind
	left, right algebra.Plan
	on          []algebra.ColPair
	residual    algebra.Pred                  // kindJoin only
	rightArity  int                           // kindOuterJoin only
	coj         *algebra.ConstrainedOuterJoin // kindConstrainedOuterJoin only
}

// buildJoinLike picks the execution strategy for a join-family node, in
// order of preference: a persistent catalog index (UseIndexes and an
// indexable right side — no build cost, which §3.2 emptiness tests rely
// on), the partition-parallel executor (Parallelism ≥ 2), else the serial
// transient hash table.
func buildJoinLike(ctx *Context, spec joinSpec) (Iterator, error) {
	lk, rk := splitPairs(spec.on)
	if ctx.UseIndexes {
		if ip := indexProberFor(ctx, spec.right, rk); ip != nil {
			l, err := Build(ctx, spec.left)
			if err != nil {
				return nil, err
			}
			return serialJoinIter(ctx, spec, l, &proberSpec{ctx: ctx, cols: rk, index: ip}, lk), nil
		}
	}
	if ctx.parallelism() > 1 {
		l, r, err := buildPair(ctx, spec.left, spec.right)
		if err != nil {
			return nil, err
		}
		return &parallelJoinIter{ctx: ctx, spec: spec, left: l, right: r, lk: lk, rk: rk}, nil
	}
	l, err := Build(ctx, spec.left)
	if err != nil {
		return nil, err
	}
	r, err := Build(ctx, spec.right)
	if err != nil {
		return nil, err
	}
	return serialJoinIter(ctx, spec, l, &proberSpec{ctx: ctx, cols: rk, rightIter: r}, lk), nil
}

// serialJoinIter wires the serial iterator for one join-family member.
func serialJoinIter(ctx *Context, spec joinSpec, left Iterator, ps *proberSpec, lk []int) Iterator {
	switch spec.kind {
	case kindJoin:
		return &joinIter{ctx: ctx, left: left, spec: ps, lk: lk, residual: spec.residual}
	case kindSemiJoin:
		return &semiJoinIter{ctx: ctx, left: left, spec: ps, lk: lk, complement: false}
	case kindComplementJoin:
		return &semiJoinIter{ctx: ctx, left: left, spec: ps, lk: lk, complement: true}
	case kindOuterJoin:
		return &outerJoinIter{ctx: ctx, left: left, spec: ps, lk: lk, rightArity: spec.rightArity}
	default:
		return &cojIter{ctx: ctx, left: left, spec: ps, lk: lk, node: spec.coj}
	}
}

func buildPair(ctx *Context, l, r algebra.Plan) (Iterator, Iterator, error) {
	li, err := Build(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	ri, err := Build(ctx, r)
	if err != nil {
		return nil, nil, err
	}
	return li, ri, nil
}

// Run executes a plan to completion and materializes its result. If the
// context's attached context.Context fires mid-run, Run returns its error
// (context.Canceled or context.DeadlineExceeded) instead of a partial
// result.
func Run(ctx *Context, p algebra.Plan) (*relation.Relation, error) {
	if ctx.batchEnabled() {
		return runBatched(ctx, p)
	}
	it, err := Build(ctx, p)
	if err != nil {
		return nil, err
	}
	out := relation.NewUnnamed(p.Schema())
	it.Open()
	defer it.Close()
	for {
		t, ok := it.Next()
		if !ok || ctx.Interrupted() {
			break
		}
		if !ctx.chargeTuple("output", t) {
			break
		}
		out.Insert(t)
		ctx.Stats.OutputTuples++
	}
	if err := ctx.CancelErr(); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBool evaluates a boolean plan (§3.2). Emptiness tests pull at most
// one tuple from their relational input; connectives short-circuit left to
// right. This realizes algebraically the early termination of the Fig. 1
// loop algorithms.
func EvalBool(ctx *Context, p algebra.BoolPlan) (bool, error) {
	switch n := p.(type) {
	case *algebra.NotEmpty:
		return probeNonEmpty(ctx, n.Input)
	case *algebra.IsEmpty:
		ok, err := probeNonEmpty(ctx, n.Input)
		return !ok, err
	case *algebra.BoolAnd:
		for _, c := range n.Inputs {
			ok, err := EvalBool(ctx, c)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case *algebra.BoolOr:
		for _, c := range n.Inputs {
			ok, err := EvalBool(ctx, c)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *algebra.BoolNot:
		ok, err := EvalBool(ctx, n.Input)
		return !ok, err
	case *algebra.BoolConst:
		return n.Value, nil
	default:
		return false, fmt.Errorf("exec: unknown boolean plan node %T", p)
	}
}

// probeNonEmpty opens the plan and asks for a single tuple. It always runs
// the serial pipeline: the partitioned executor's blocking partition phase
// would trade the §3.2 near-constant emptiness test for a full drain.
func probeNonEmpty(ctx *Context, p algebra.Plan) (bool, error) {
	serial := ctx.serialChild()
	it, err := Build(serial, p)
	if err != nil {
		return false, err
	}
	it.Open()
	defer it.Close()
	_, ok := it.Next()
	if err := serial.CancelErr(); err != nil {
		return false, err
	}
	return ok, nil
}
