package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// ptuCatalog builds the P, T, U relations of the paper's Fig. 2.
func ptuCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	p := cat.MustDefine("P", relation.NewSchema("v"))
	for _, s := range []string{"a", "b", "c", "d"} {
		p.InsertValues(relation.Str(s))
	}
	tt := cat.MustDefine("T", relation.NewSchema("v"))
	for _, s := range []string{"a", "b", "e"} {
		tt.InsertValues(relation.Str(s))
	}
	u := cat.MustDefine("U", relation.NewSchema("v"))
	for _, s := range []string{"a", "c", "f"} {
		u.InsertValues(relation.Str(s))
	}
	return cat
}

func scan(cat *storage.Catalog, name string) *algebra.Scan {
	r, err := cat.Relation(name)
	if err != nil {
		panic(err)
	}
	return algebra.NewScan(name, r.Schema())
}

func runPlan(t *testing.T, cat *storage.Catalog, p algebra.Plan) (*relation.Relation, *Stats) {
	t.Helper()
	ctx := NewContext(cat)
	out, err := Run(ctx, p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out, ctx.Stats
}

func wantTuples(t *testing.T, got *relation.Relation, want [][]relation.Value) {
	t.Helper()
	expect := relation.NewUnnamed(got.Schema())
	for _, vs := range want {
		expect.Insert(relation.NewTuple(vs...))
	}
	if !got.Equal(expect) {
		t.Fatalf("result mismatch:\ngot:\n%s\nwant:\n%s", got, expect)
	}
}

func s(x string) relation.Value  { return relation.Str(x) }
func null() relation.Value       { return relation.Null() }
func mark() relation.Value       { return relation.Mark() }
func i64(x int64) relation.Value { return relation.Int(x) }

// TestFigure2OuterJoin reproduces R₁ = P ⟕ T of Fig. 2.
func TestFigure2OuterJoin(t *testing.T) {
	cat := ptuCatalog(t)
	plan := &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	got, _ := runPlan(t, cat, plan)
	wantTuples(t, got, [][]relation.Value{
		{s("a"), s("a")},
		{s("b"), s("b")},
		{s("c"), null()},
		{s("d"), null()},
	})
}

// TestFigure3OuterJoinChain reproduces R₂ = (P ⟕ T) ⟕ U of Fig. 3.
func TestFigure3OuterJoinChain(t *testing.T) {
	cat := ptuCatalog(t)
	r1 := &algebra.OuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	r2 := &algebra.OuterJoin{Left: r1, Right: scan(cat, "U"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	got, _ := runPlan(t, cat, r2)
	wantTuples(t, got, [][]relation.Value{
		{s("a"), s("a"), s("a")},
		{s("b"), s("b"), null()},
		{s("c"), null(), s("c")},
		{s("d"), null(), null()},
	})
	// Q₁: P(x) ∧ (T(x) ∨ U(x)) = π₁(σ[2≠∅ ∨ 3≠∅](R₂)) = {a, b, c}.
	q1 := &algebra.Project{Input: &algebra.Select{Input: r2, Pred: algebra.Or{Preds: []algebra.Pred{
		algebra.NotNull{Col: 1}, algebra.NotNull{Col: 2},
	}}}, Cols: []int{0}}
	ans, _ := runPlan(t, cat, q1)
	wantTuples(t, ans, [][]relation.Value{{s("a")}, {s("b")}, {s("c")}})
}

// TestFigure4ConstrainedOuterJoin reproduces R₃ = [P ⟕⊥ T] ⟕⊥[2≠∅] U of
// Fig. 4, the chain for Q₂: P(x) ∧ (¬T(x) ∨ U(x)). U is probed only for
// the P-tuples that are NOT in P − T (text of §3.3).
func TestFigure4ConstrainedOuterJoin(t *testing.T) {
	cat := ptuCatalog(t)
	c1 := &algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	c2 := &algebra.ConstrainedOuterJoin{
		Left: c1, Right: scan(cat, "U"),
		On:         []algebra.ColPair{{Left: 0, Right: 0}},
		Constraint: []algebra.NullCond{{Col: 1, IsNull: false}},
	}
	got, st := runPlan(t, cat, c2)
	wantTuples(t, got, [][]relation.Value{
		{s("a"), mark(), mark()},
		{s("b"), mark(), null()},
		{s("c"), null(), null()},
		{s("d"), null(), null()},
	})
	// Only a and b (the tuples with a T partner) may be probed against U.
	// Probes: 4 against T + 2 against U = 6 hash lookups; constraint
	// checks add 4 comparisons (one per tuple at the second join).
	if st.Comparisons != 6 {
		t.Errorf("comparisons = %d, want 6 (4 T-probes + 2 U-probes)", st.Comparisons)
	}

	// Q₂ = π₁(σ[2=∅ ∨ 3≠∅](R₃)) = {a, c, d}.
	q2 := &algebra.Project{Input: &algebra.Select{Input: c2, Pred: algebra.Or{Preds: []algebra.Pred{
		algebra.IsNull{Col: 1}, algebra.NotNull{Col: 2},
	}}}, Cols: []int{0}, NoDedup: true}
	ans, _ := runPlan(t, cat, q2)
	wantTuples(t, ans, [][]relation.Value{{s("a")}, {s("c")}, {s("d")}})
}

// TestComplementJoinDefinition checks Definition 6 and Proposition 3 on
// the §3.1 example: member ⊼ π₁(σ₂₌db(skill)).
func TestComplementJoinDefinition(t *testing.T) {
	cat := storage.NewCatalog()
	member := cat.MustDefine("member", relation.NewSchema("p", "d"))
	member.InsertValues(s("ann"), s("cs"))
	member.InsertValues(s("bob"), s("cs"))
	member.InsertValues(s("eve"), s("math"))
	skill := cat.MustDefine("skill", relation.NewSchema("p", "s"))
	skill.InsertValues(s("ann"), s("db"))
	skill.InsertValues(s("eve"), s("ai"))

	dbPeople := &algebra.Project{
		Input: &algebra.Select{Input: scan(cat, "skill"), Pred: algebra.CmpConst{Col: 1, Op: algebra.OpEq, Const: s("db")}},
		Cols:  []int{0},
	}
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	cj := &algebra.ComplementJoin{Left: scan(cat, "member"), Right: dbPeople, On: on}
	got, _ := runPlan(t, cat, cj)
	wantTuples(t, got, [][]relation.Value{
		{s("bob"), s("cs")},
		{s("eve"), s("math")},
	})

	// Proposition 3: P = π(P ⋈ Q) ∪ (P ⊼ Q), disjointly.
	sj := &algebra.SemiJoin{Left: scan(cat, "member"), Right: dbPeople, On: on}
	sjr, _ := runPlan(t, cat, sj)
	if sjr.Len()+got.Len() != member.Len() {
		t.Fatalf("semi-join (%d) + complement-join (%d) must partition P (%d)", sjr.Len(), got.Len(), member.Len())
	}
	for _, tu := range sjr.Tuples() {
		if got.Contains(tu) {
			t.Fatalf("tuple %s in both semi-join and complement-join", tu)
		}
	}
}

// TestComplementJoinIsDifference: Proposition 3's P − Q = P ⊼[all cols] Q.
func TestComplementJoinIsDifference(t *testing.T) {
	cat := ptuCatalog(t)
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	diff := &algebra.Diff{Left: scan(cat, "P"), Right: scan(cat, "T")}
	cj := &algebra.ComplementJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: on}
	d, _ := runPlan(t, cat, diff)
	c, _ := runPlan(t, cat, cj)
	if !d.Equal(c) {
		t.Fatalf("difference %s != complement-join %s", d, c)
	}
}

func TestSelectProjectUnionIntersect(t *testing.T) {
	cat := ptuCatalog(t)
	sel := &algebra.Select{Input: scan(cat, "P"), Pred: algebra.CmpConst{Col: 0, Op: algebra.OpNe, Const: s("a")}}
	got, _ := runPlan(t, cat, sel)
	wantTuples(t, got, [][]relation.Value{{s("b")}, {s("c")}, {s("d")}})

	un := &algebra.Union{Left: scan(cat, "T"), Right: scan(cat, "U")}
	got, _ = runPlan(t, cat, un)
	wantTuples(t, got, [][]relation.Value{{s("a")}, {s("b")}, {s("e")}, {s("c")}, {s("f")}})

	in := &algebra.Intersect{Left: scan(cat, "T"), Right: scan(cat, "U")}
	got, _ = runPlan(t, cat, in)
	wantTuples(t, got, [][]relation.Value{{s("a")}})
}

func TestProductAndJoin(t *testing.T) {
	cat := ptuCatalog(t)
	prod := &algebra.Product{Left: scan(cat, "T"), Right: scan(cat, "U")}
	got, _ := runPlan(t, cat, prod)
	if got.Len() != 9 {
		t.Fatalf("product size = %d, want 9", got.Len())
	}
	jn := &algebra.Join{Left: scan(cat, "T"), Right: scan(cat, "U"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	got, _ = runPlan(t, cat, jn)
	wantTuples(t, got, [][]relation.Value{{s("a"), s("a")}})
}

func TestJoinResidual(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("a", "b"))
	r.InsertValues(i64(1), i64(2))
	r.InsertValues(i64(1), i64(5))
	l := cat.MustDefine("L", relation.NewSchema("k"))
	l.InsertValues(i64(1))
	jn := &algebra.Join{
		Left: scan(cat, "L"), Right: scan(cat, "R"),
		On:       []algebra.ColPair{{Left: 0, Right: 0}},
		Residual: algebra.CmpConst{Col: 2, Op: algebra.OpGt, Const: i64(3)},
	}
	got, _ := runPlan(t, cat, jn)
	wantTuples(t, got, [][]relation.Value{{i64(1), i64(1), i64(5)}})
}

func TestDivision(t *testing.T) {
	cat := storage.NewCatalog()
	g := cat.MustDefine("G", relation.NewSchema("x", "z"))
	// x=1 covers {a,b}; x=2 covers {a}; x=3 covers {a,b,c}.
	for _, p := range [][2]interface{}{{1, "a"}, {1, "b"}, {2, "a"}, {3, "a"}, {3, "b"}, {3, "c"}} {
		g.InsertValues(i64(int64(p[0].(int))), s(p[1].(string)))
	}
	d := cat.MustDefine("D", relation.NewSchema("z"))
	d.InsertValues(s("a"))
	d.InsertValues(s("b"))

	div := &algebra.Division{
		Dividend: scan(cat, "G"), Divisor: scan(cat, "D"),
		KeyCols: []int{0}, DivCols: []int{1},
	}
	got, _ := runPlan(t, cat, div)
	wantTuples(t, got, [][]relation.Value{{i64(1)}, {i64(3)}})
}

func TestDivisionEmptyDivisor(t *testing.T) {
	cat := storage.NewCatalog()
	g := cat.MustDefine("G", relation.NewSchema("x", "z"))
	g.InsertValues(i64(1), s("a"))
	cat.MustDefine("D", relation.NewSchema("z"))
	div := &algebra.Division{Dividend: scan(cat, "G"), Divisor: scan(cat, "D"), KeyCols: []int{0}, DivCols: []int{1}}
	got, _ := runPlan(t, cat, div)
	// ∀z ∈ ∅ is vacuously true for every dividend key group.
	wantTuples(t, got, [][]relation.Value{{i64(1)}})
}

func TestProjectDedup(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("a", "b"))
	r.InsertValues(i64(1), i64(10))
	r.InsertValues(i64(1), i64(20))
	proj := &algebra.Project{Input: scan(cat, "R"), Cols: []int{0}}
	got, _ := runPlan(t, cat, proj)
	if got.Len() != 1 {
		t.Fatalf("deduplicating projection returned %d tuples, want 1", got.Len())
	}
}

func TestEvalBoolShortCircuit(t *testing.T) {
	cat := ptuCatalog(t)
	ctx := NewContext(cat)
	// NotEmpty(P) pulls exactly one tuple.
	ok, err := EvalBool(ctx, &algebra.NotEmpty{Input: scan(cat, "P")})
	if err != nil || !ok {
		t.Fatalf("NotEmpty(P) = %v, %v", ok, err)
	}
	if ctx.Stats.BaseTuplesRead != 1 {
		t.Fatalf("emptiness test read %d tuples, want 1 (early termination)", ctx.Stats.BaseTuplesRead)
	}

	// OR short-circuits: the second test never runs.
	ctx2 := NewContext(cat)
	ok, err = EvalBool(ctx2, &algebra.BoolOr{Inputs: []algebra.BoolPlan{
		&algebra.NotEmpty{Input: scan(cat, "P")},
		&algebra.NotEmpty{Input: scan(cat, "T")},
	}})
	if err != nil || !ok {
		t.Fatalf("or = %v, %v", ok, err)
	}
	if ctx2.Stats.BaseTuplesRead != 1 {
		t.Fatalf("read %d tuples, want 1", ctx2.Stats.BaseTuplesRead)
	}

	// AND with an empty first conjunct short-circuits to false.
	empty := &algebra.Select{Input: scan(cat, "P"), Pred: algebra.Not{Pred: algebra.True{}}}
	ctx3 := NewContext(cat)
	ok, err = EvalBool(ctx3, &algebra.BoolAnd{Inputs: []algebra.BoolPlan{
		&algebra.NotEmpty{Input: empty},
		&algebra.NotEmpty{Input: scan(cat, "T")},
	}})
	if err != nil || ok {
		t.Fatalf("and = %v, %v; want false", ok, err)
	}
	for _, n := range []struct {
		p    algebra.BoolPlan
		want bool
	}{
		{&algebra.BoolConst{Value: true}, true},
		{&algebra.BoolNot{Input: &algebra.BoolConst{Value: true}}, false},
		{&algebra.IsEmpty{Input: empty}, true},
	} {
		got, err := EvalBool(NewContext(cat), n.p)
		if err != nil || got != n.want {
			t.Errorf("EvalBool(%s) = %v, %v; want %v", n.p.Describe(), got, err, n.want)
		}
	}
}

func TestMaterializeCounted(t *testing.T) {
	cat := ptuCatalog(t)
	ctx := NewContext(cat)
	m := &algebra.Materialize{Input: scan(cat, "P"), Label: "tmp"}
	if _, err := Run(ctx, m); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.Materializations != 1 {
		t.Fatalf("materializations = %d, want 1", ctx.Stats.Materializations)
	}
	if ctx.Stats.IntermediateTuples != 4 {
		t.Fatalf("intermediate tuples = %d, want 4", ctx.Stats.IntermediateTuples)
	}
}

func TestScanUnknownRelation(t *testing.T) {
	cat := storage.NewCatalog()
	ctx := NewContext(cat)
	if _, err := Run(ctx, algebra.NewScan("nope", relation.NewSchema("v"))); err == nil {
		t.Fatal("scan of unknown relation must fail")
	}
}

func TestOuterJoinMultipleMatches(t *testing.T) {
	cat := storage.NewCatalog()
	l := cat.MustDefine("L", relation.NewSchema("k"))
	l.InsertValues(i64(1))
	l.InsertValues(i64(2))
	r := cat.MustDefine("R", relation.NewSchema("k", "v"))
	r.InsertValues(i64(1), s("x"))
	r.InsertValues(i64(1), s("y"))
	oj := &algebra.OuterJoin{Left: scan(cat, "L"), Right: scan(cat, "R"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	got, _ := runPlan(t, cat, oj)
	wantTuples(t, got, [][]relation.Value{
		{i64(1), i64(1), s("x")},
		{i64(1), i64(1), s("y")},
		{i64(2), null(), null()},
	})
}

// TestStatsBaseReads: a semi-join reads each base relation exactly once —
// the "each range relation is searched only once" property.
func TestStatsBaseReads(t *testing.T) {
	cat := ptuCatalog(t)
	ctx := NewContext(cat)
	sj := &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "T"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	if _, err := Run(ctx, sj); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.BaseTuplesRead != 4+3 {
		t.Fatalf("base reads = %d, want 7 (P once + T once)", ctx.Stats.BaseTuplesRead)
	}
}

func TestGroupCount(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.MustDefine("R", relation.NewSchema("a", "b"))
	r.InsertValues(i64(1), s("x"))
	r.InsertValues(i64(1), s("y"))
	r.InsertValues(i64(2), s("x"))
	gc := &algebra.GroupCount{Input: scan(cat, "R"), GroupCols: []int{0}}
	got, _ := runPlan(t, cat, gc)
	wantTuples(t, got, [][]relation.Value{
		{i64(1), i64(2)},
		{i64(2), i64(1)},
	})
	// Global count (no group columns).
	total := &algebra.GroupCount{Input: scan(cat, "R"), GroupCols: nil}
	got, _ = runPlan(t, cat, total)
	wantTuples(t, got, [][]relation.Value{{i64(3)}})
	// Global count of an empty input is 0, not an empty relation.
	empty := &algebra.Select{Input: scan(cat, "R"), Pred: algebra.Not{Pred: algebra.True{}}}
	got, _ = runPlan(t, cat, &algebra.GroupCount{Input: empty})
	wantTuples(t, got, [][]relation.Value{{i64(0)}})
}

// TestGroupCountQuelUniversal expresses "students attending all lectures"
// the Quel way (paper §1): compare per-student counts to the total count.
func TestGroupCountQuelUniversal(t *testing.T) {
	cat := storage.NewCatalog()
	st := cat.MustDefine("student", relation.NewSchema("name"))
	lec := cat.MustDefine("lecture", relation.NewSchema("id"))
	att := cat.MustDefine("attends", relation.NewSchema("name", "lecture"))
	for _, n := range []string{"ann", "bob"} {
		st.InsertValues(s(n))
	}
	for _, l := range []string{"l1", "l2"} {
		lec.InsertValues(s(l))
	}
	att.InsertValues(s("ann"), s("l1"))
	att.InsertValues(s("ann"), s("l2"))
	att.InsertValues(s("bob"), s("l1"))

	perStudent := &algebra.GroupCount{
		Input: &algebra.SemiJoin{
			Left:  scan(cat, "attends"),
			Right: scan(cat, "lecture"),
			On:    []algebra.ColPair{{Left: 1, Right: 0}},
		},
		GroupCols: []int{0},
	}
	total := &algebra.GroupCount{Input: scan(cat, "lecture")}
	matching := &algebra.Project{
		Input: &algebra.Join{Left: perStudent, Right: total, On: []algebra.ColPair{{Left: 1, Right: 0}}},
		Cols:  []int{0},
	}
	plan := &algebra.SemiJoin{Left: scan(cat, "student"), Right: matching, On: []algebra.ColPair{{Left: 0, Right: 0}}}
	got, _ := runPlan(t, cat, plan)
	wantTuples(t, got, [][]relation.Value{{s("ann")}})
}
