package exec

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// benchRel builds a binary relation with n tuples over a value domain small
// enough that the deduplicating operators actually collide.
func benchRel(name string, n int) *relation.Relation {
	r := relation.New(name, relation.NewSchema("a", "b"))
	for i := 0; i < n; i++ {
		r.InsertValues(relation.Int(int64(i%512)), relation.Int(int64(i)))
	}
	return r
}

// benchCat is a catalog with two overlapping binary relations.
func benchCat(n int) *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Add(benchRel("L", n))
	r := relation.New("R", relation.NewSchema("a", "b"))
	for i := n / 2; i < n+n/2; i++ {
		r.InsertValues(relation.Int(int64(i%512)), relation.Int(int64(i)))
	}
	cat.Add(r)
	return cat
}

// drainIter exhausts a plan, reporting rows so the compiler keeps the loop.
func drainIter(b *testing.B, cat *storage.Catalog, p algebra.Plan) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(cat)
		it, err := Build(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		it.Open()
		rows := 0
		for _, ok := it.Next(); ok; _, ok = it.Next() {
			rows++
		}
		it.Close()
		if rows == 0 {
			b.Fatal("dedup benchmark plan produced no rows")
		}
	}
}

// BenchmarkDedupIterators measures the deduplicating operators' hot paths
// (projection, union, difference, intersection): the satellite claim is
// that hashed tuple sets (HashCols + EqualOn) allocate less than the old
// canonical-string keys. Run with -benchmem to see allocs/op.
func BenchmarkDedupIterators(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		cat := benchCat(n)
		plans := []struct {
			name string
			plan algebra.Plan
		}{
			{"project", &algebra.Project{Input: scan(cat, "L"), Cols: []int{0}}},
			{"union", &algebra.Union{Left: scan(cat, "L"), Right: scan(cat, "R")}},
			{"diff", &algebra.Diff{Left: scan(cat, "L"), Right: scan(cat, "R")}},
			{"intersect", &algebra.Intersect{Left: scan(cat, "L"), Right: scan(cat, "R")}},
		}
		for _, pl := range plans {
			b.Run(fmt.Sprintf("%s/n=%d", pl.name, n), func(b *testing.B) {
				drainIter(b, cat, pl.plan)
			})
		}
	}
}
