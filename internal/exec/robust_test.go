package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/testutil"
)

// TestWorkerPanicSurfacesAfterAbsorb pins the satellite fix for the worker
// crash: a panic on a partition-worker goroutine is captured, every worker's
// stats shard is absorbed, and the panic re-surfaces as a *PanicError on the
// merging goroutine (where the engine's boundary can convert it) — instead
// of killing the process from an unrecoverable goroutine.
func TestWorkerPanicSurfacesAfterAbsorb(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := randomJoinCatalog(1, 300)
	plan := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	ctx := NewContext(cat)
	ctx.Parallelism = 4
	ctx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointWorker, Kind: faultinject.KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not re-surface on the merging goroutine")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Origin != "partition-worker" {
			t.Fatalf("origin = %q, want partition-worker", pe.Origin)
		}
		if len(pe.Stack) == 0 {
			t.Error("captured panic has no stack")
		}
		// All four workers ran and their shards were absorbed before the
		// re-panic: the panicking worker dies first, not the whole phase.
		if ctx.Stats.PartitionsExecuted != 4 {
			t.Errorf("PartitionsExecuted = %d, want 4 (shards absorbed before re-panic)",
				ctx.Stats.PartitionsExecuted)
		}
	}()
	Run(ctx, plan)
}

// TestMemoMidSpoolCancelNotPublished aborts a Shared drain mid-spool via
// context cancellation and checks the entry is never published truncated,
// the next evaluation re-spools, and the hit/miss/spool counters stay
// consistent.
func TestMemoMidSpoolCancelNotPublished(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	goCtx, cancel := context.WithCancel(context.Background())
	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.CheckInterval = 1
	ctx.AttachContext(goCtx)
	it, err := Build(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	it.Open()
	if _, ok := it.Next(); !ok {
		t.Fatal("producer is non-empty")
	}
	cancel() // mid-spool: at least one tuple pulled, more remain
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	it.Close()
	if !errors.Is(ctx.CancelErr(), context.Canceled) {
		t.Fatalf("CancelErr = %v, want context.Canceled", ctx.CancelErr())
	}
	if memo.Entries() != 0 {
		t.Fatal("cancelled drain published a truncated entry")
	}
	if ctx.Stats.CacheMisses != 1 || ctx.Stats.CacheHits != 0 {
		t.Fatalf("counters after aborted spool: %s", ctx.Stats)
	}

	// The next evaluation re-spools from scratch and publishes.
	c2 := NewContext(cat)
	c2.Memo = memo
	want, err := Run(c2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats.CacheMisses != 1 || c2.Stats.CacheHits != 0 || c2.Stats.CacheTuplesSpooled != int64(want.Len()) {
		t.Fatalf("re-spool counters: %s", c2.Stats)
	}
	if memo.Entries() != 1 {
		t.Fatal("full re-drain should publish")
	}

	// And the third evaluation replays it.
	c3 := NewContext(cat)
	c3.Memo = memo
	got, err := Run(c3, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("replayed result differs")
	}
	if c3.Stats.CacheHits != 1 || c3.Stats.CacheMisses != 0 {
		t.Fatalf("warm counters: %s", c3.Stats)
	}
}

// TestMemoSpoolAbortedByInjectedFault aborts the drain through an injected
// iterator error instead of a cancellation.
func TestMemoSpoolAbortedByInjectedFault(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointIterNext, Kind: faultinject.KindError, After: 2})
	_, err := Run(ctx, plan)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if memo.Entries() != 0 {
		t.Fatal("aborted spool was published")
	}

	c2 := NewContext(cat)
	c2.Memo = memo
	if _, err := Run(c2, plan); err != nil {
		t.Fatalf("post-fault evaluation: %v", err)
	}
	if memo.Entries() != 1 {
		t.Fatal("post-fault evaluation did not publish")
	}
}

// TestMemoPublishFaultLeavesMemoConsistent arms the memo.publish point: the
// query fails, nothing is published, and the memo keeps serving.
func TestMemoPublishFaultLeavesMemoConsistent(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.Faults = faultinject.New(faultinject.Arm{Point: faultinject.PointMemoPublish, Kind: faultinject.KindError})
	_, err := Run(ctx, plan)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if memo.Entries() != 0 {
		t.Fatal("publish-point fault still published")
	}

	c2 := NewContext(cat)
	c2.Memo = memo
	if _, err := Run(c2, plan); err != nil {
		t.Fatalf("post-fault evaluation: %v", err)
	}
	if memo.Entries() != 1 {
		t.Fatal("memo unusable after publish fault")
	}
}

// TestGovernorAbortsSpoolMidDrain: a memory budget that the spool itself
// exceeds aborts the query, and the truncated spool is not published.
func TestGovernorAbortsSpoolMidDrain(t *testing.T) {
	cat := ptuCatalog(t)
	memo := NewMemo(0)
	plan := algebra.NewShared(memoProducer(cat))

	ctx := NewContext(cat)
	ctx.Memo = memo
	ctx.Gov = NewGovernor(1, 0)
	_, err := Run(ctx, plan)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if memo.Entries() != 0 {
		t.Fatal("budget-aborted spool was published")
	}
	// The spooled-tuple counter alone would overstate cache work here; the
	// abandoned counter records that the spool bought nothing.
	if ctx.Stats.CacheSpoolsAbandoned != 1 {
		t.Fatalf("CacheSpoolsAbandoned = %d, want 1: %s", ctx.Stats.CacheSpoolsAbandoned, ctx.Stats)
	}
	if memo.SpoolsAbandoned() != 1 {
		t.Fatalf("memo.SpoolsAbandoned() = %d, want 1", memo.SpoolsAbandoned())
	}
}
