package exec

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// chaosSeedCount returns how many seeds the chaos sweeps cover: 16 by
// default, overridden by the CHAOS_SEEDS environment variable (the `make
// chaos` gate raises it).
func chaosSeedCount(t testing.TB) int64 {
	t.Helper()
	n := int64(16)
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", s)
		}
		n = v
	}
	return n
}

// chaosPlan covers every injection point in one plan: base scans
// (iter.open/iter.next), a partitioned join (worker.run), and a Shared
// producer whose spool publishes into the memo (memo.publish).
func chaosPlan(cat *storage.Catalog) algebra.Plan {
	join := &algebra.Join{Left: scan(cat, "R"), Right: scan(cat, "S"),
		On: []algebra.ColPair{{Left: 1, Right: 0}}}
	sh := algebra.NewShared(&algebra.Project{Input: join, Cols: []int{0, 2}})
	return &algebra.Union{
		Left:  sh,
		Right: &algebra.Select{Input: sh, Pred: algebra.True{}},
	}
}

// TestChaosMemoProducerDeath sweeps every way an elected single-flight
// producer can die at the memo.elect and memo.append points — injected
// error, panic, delay — with a concurrent consumer attached, on a cold memo
// every round. The invariant: both runs terminate (a deadlocked waiter
// would hang the test), failures are typed, survivors return the baseline,
// and the same memo afterwards serves a clean run — i.e. producer death
// re-elects or fails, never leaves partial publications.
func TestChaosMemoProducerDeath(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := randomJoinCatalog(43, 150)
	plan := chaosPlan(cat)
	baseline, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	points := []string{faultinject.PointMemoElect, faultinject.PointMemoAppend}
	kinds := []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay}
	for _, point := range points {
		for _, kind := range kinds {
			for after := int64(1); after <= 3; after++ {
				name := fmt.Sprintf("%s/%s@%d", point, kind, after)
				t.Run(name, func(t *testing.T) {
					memo := NewMemo(0) // cold: the fault points actually fire
					fplan := faultinject.New(faultinject.Arm{Point: point, Kind: kind, After: after})
					var wg sync.WaitGroup
					for g := 0; g < 2; g++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							defer func() {
								recover() // injected panics surface raw at this layer
							}()
							ctx := NewContext(cat)
							ctx.Memo = memo
							ctx.Faults = fplan
							ctx.CheckInterval = GovernedCheckInterval
							out, err := Run(ctx, plan)
							if err != nil {
								if !errors.Is(err, faultinject.ErrInjected) {
									t.Errorf("non-injected error: %v", err)
								}
							} else if !out.Equal(baseline) {
								t.Error("surviving run returned a wrong result")
							}
						}()
					}
					wg.Wait()

					after := NewContext(cat)
					after.Memo = memo
					out, err := Run(after, plan)
					if err != nil {
						t.Fatalf("post-fault run: %v", err)
					}
					if !out.Equal(baseline) {
						t.Fatal("post-fault run differs from baseline")
					}
				})
			}
		}
	}
}

// TestChaosSeededSweep arms one deterministically derived fault per seed and
// asserts, for every seed: the process survives (panics are the typed
// worker-boundary kind or the raw injected panic, both recoverable), the
// fault surfaces as an injected error when it is an error, and afterwards
// the same catalog and the same memo answer a fresh run with exactly the
// fault-free result — i.e. no truncated memo entry, no corrupted catalog,
// no leaked goroutine.
func TestChaosSeededSweep(t *testing.T) {
	testutil.CheckGoroutines(t)
	cat := randomJoinCatalog(42, 200)
	plan := chaosPlan(cat)
	baseline, err := Run(NewContext(cat), plan)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	memo := NewMemo(0) // shared across all seeds: survivability includes the cache
	seeds := chaosSeedCount(t)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fplan := faultinject.Seeded(seed)
			func() {
				defer func() {
					if r := recover(); r != nil {
						// A panic fault on the main goroutine surfaces raw at
						// this layer (the engine boundary lives in core); a
						// worker panic must arrive typed.
						if arms := fplan.Fired(); len(arms) == 1 && arms[0].Point == faultinject.PointWorker {
							if _, ok := r.(*PanicError); !ok {
								t.Errorf("worker fault surfaced untyped: %v", r)
							}
						}
					}
				}()
				ctx := NewContext(cat)
				ctx.Parallelism = 4
				ctx.Memo = memo
				ctx.Faults = fplan
				ctx.CheckInterval = GovernedCheckInterval
				out, err := Run(ctx, plan)
				if err != nil {
					if !errors.Is(err, faultinject.ErrInjected) {
						t.Errorf("non-injected error: %v", err)
					}
				} else if !out.Equal(baseline) {
					// Delay faults (and error faults that fire after the
					// relevant drain) must not change the answer.
					t.Error("survived run returned a wrong result")
				}
			}()

			// Post-fault health: same catalog, same memo, no faults.
			after := NewContext(cat)
			after.Parallelism = 4
			after.Memo = memo
			out, err := Run(after, plan)
			if err != nil {
				t.Fatalf("post-fault run: %v", err)
			}
			if !out.Equal(baseline) {
				t.Fatal("post-fault run differs from baseline (cache-on ≡ cache-off broken)")
			}
		})
	}
}
