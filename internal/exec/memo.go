package exec

import (
	"container/list"
	"sync"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/relation"
)

// This file implements the result memo behind the memoizing subplan cache.
// The planner (internal/planopt) wraps repeated subtrees in algebra.Shared
// nodes; at execution, the first evaluation of a fingerprint is elected the
// entry's *producer* and streams its tuples into a spool that every other
// evaluation of the same fingerprint — in the same plan (union branches,
// ⋉/⊼ twins) or in a concurrent or later Query/Check/Run on the same engine
// — consumes without touching base relations. Entries are verified against
// the full canonical plan string, so a 64-bit fingerprint collision degrades
// to a miss, never to a wrong result; and the memo remembers the catalog
// generation it was filled under, so any base-relation mutation flushes it
// wholesale.
//
// Spool entries are SINGLE-FLIGHT and STREAMING. An entry moves through a
// small state machine:
//
//	building → complete        (producer drained its input fully)
//	building → abandoned       (producer cancelled / tripped / panicked /
//	                            closed early, or the spool outgrew the budget)
//
// While an entry is building, concurrent evaluations of its fingerprint do
// not re-evaluate and do not wait for full publication: they attach as
// consumers and stream tuples as the producer appends them, blocking (on a
// per-entry wait channel that also observes their own context's
// cancellation) only when they catch up with the producer. If the producer
// dies, the entry is marked abandoned and every waiter is woken: the first
// to re-acquire is re-elected producer (resuming publication from scratch
// while skipping the prefix it already delivered downstream — evaluation is
// deterministic for a fixed catalog generation), the rest re-attach to the
// new entry. An entry abandoned because its result outgrew the memo budget
// instead sends every waiter down the private (transparent) path, since any
// re-elected producer would hit the same wall. Only a complete, uncancelled
// drain is ever published; partial spools are never replayed.

// DefaultMemoBudget bounds the memo's total buffered tuples when the caller
// does not pick a budget.
const DefaultMemoBudget = 1 << 20

// spoolState is the lifecycle state of one memo entry.
type spoolState uint8

const (
	// spoolBuilding: an elected producer is appending tuples; consumers may
	// attach and stream.
	spoolBuilding spoolState = iota
	// spoolComplete: the producer drained its input fully; the tuple slice
	// is immutable and the entry sits in the LRU.
	spoolComplete
	// spoolAbandoned: the producer died or the spool outgrew the budget;
	// the entry is out of the map and exists only so attached consumers can
	// observe the abandonment and re-elect (or go private).
	spoolAbandoned
)

// memoRole is what acquire hands an evaluation of a Shared node.
type memoRole uint8

const (
	// rolePrivate: evaluate the subtree transparently, no memo interaction
	// (stale generation, fingerprint collision, or the building entry's
	// producer belongs to this same execution — waiting on a producer that
	// is suspended in our own iterator tree would self-deadlock).
	rolePrivate memoRole = iota
	// roleReplay: the entry is complete; stream its immutable snapshot.
	roleReplay
	// roleConsume: another execution is producing; attach and stream.
	roleConsume
	// roleProduce: elected producer of a fresh building entry.
	roleProduce
)

// consumeStatus reports the outcome of one consumeWait call.
type consumeStatus uint8

const (
	consumeTuple     consumeStatus = iota // a tuple was streamed
	consumeEOF                            // entry complete and fully consumed
	consumeAbandoned                      // producer died: re-acquire (re-election)
	consumeOverflow                       // result outgrew the budget: go private
	consumeCancelled                      // the consumer's own context fired
)

// Memo is a bounded, generation-invalidated result cache keyed by plan
// fingerprint, shared by every execution on one engine (the root context,
// its serial children, and — read-side — partition worker forks). All state
// is guarded by one mutex; consumers blocked on an in-flight spool wait on
// a per-entry channel, never on the mutex.
type Memo struct {
	mu      sync.Mutex
	budget  int
	gen     int64
	tuples  int // buffered tuples across all entries, in-flight spools included
	entries map[uint64]*memoEntry
	lru     *list.List // front = most recently used; complete entries only
	// abandoned counts spools abandoned over the memo's lifetime (producer
	// death, budget overflow, or a generation flush racing an in-flight
	// build); surfaced by queryctl \cache status.
	abandoned int64
}

type memoEntry struct {
	fp     uint64
	key    string // canonical plan string: the collision check
	gen    int64  // catalog generation the spool is being filled under
	state  spoolState
	tuples []relation.Tuple

	// producer identifies the elected producer's execution (Context.execID)
	// so evaluations from the same execution never wait on themselves.
	producer uint64
	// overflow marks an abandonment caused by the spool outgrowing the memo
	// budget: waiters must not re-elect, they go private.
	overflow bool
	// waiters counts consumers blocked on updated; producers close and
	// replace the channel only when someone is actually waiting.
	waiters int
	updated chan struct{}

	elem *list.Element // non-nil once complete (position in the LRU)
}

// NewMemo builds a memo bounded to at most budget buffered tuples across all
// entries; budget <= 0 selects DefaultMemoBudget.
func NewMemo(budget int) *Memo {
	if budget <= 0 {
		budget = DefaultMemoBudget
	}
	return &Memo{
		budget:  budget,
		gen:     -1,
		entries: make(map[uint64]*memoEntry),
		lru:     list.New(),
	}
}

// Budget returns the tuple budget.
func (m *Memo) Budget() int { return m.budget }

// Entries returns the number of cached results, in-flight spools included.
func (m *Memo) Entries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Tuples returns the number of buffered tuples across all entries,
// in-flight spools included.
func (m *Memo) Tuples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tuples
}

// SpoolsAbandoned returns how many spools have been abandoned over the
// memo's lifetime (producer death, budget overflow, generation flush).
func (m *Memo) SpoolsAbandoned() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.abandoned
}

// Flush drops every entry.
func (m *Memo) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
}

// flushLocked empties the memo. In-flight spools are abandoned first so
// their producers stop publishing and their consumers wake: the waiters
// re-acquire under their (now stale) generation and fall back to private
// evaluation.
func (m *Memo) flushLocked() {
	for _, e := range m.entries {
		if e.state == spoolBuilding {
			e.state = spoolAbandoned
			m.abandoned++
			m.wakeLocked(e)
		}
	}
	m.entries = make(map[uint64]*memoEntry)
	m.lru.Init()
	m.tuples = 0
}

// advance flushes the memo when a newer catalog generation is observed.
// Generations are monotonic, so gen < m.gen identifies a stale caller (a
// run that started before a mutation); those neither read nor write.
// Returns whether gen is current. Callers hold the mutex.
func (m *Memo) advance(gen int64) bool {
	if gen > m.gen {
		m.flushLocked()
		m.gen = gen
	}
	return gen == m.gen
}

// wakeLocked wakes every consumer blocked on e. The channel is closed and
// replaced only when someone is waiting, so the producer's per-append cost
// in the uncontended case is a lock and an integer compare.
func (m *Memo) wakeLocked(e *memoEntry) {
	if e.waiters > 0 {
		close(e.updated)
		e.updated = make(chan struct{})
	}
}

// acquire resolves one evaluation of fingerprint fp under catalog
// generation gen for execution execID: replay a complete entry, attach to a
// building one, get elected producer of a fresh one, or fall back to
// private evaluation (stale generation, collision, or self-owned producer).
func (m *Memo) acquire(gen int64, fp uint64, key string, execID uint64) (*memoEntry, memoRole) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) {
		return nil, rolePrivate
	}
	if e, ok := m.entries[fp]; ok {
		if e.key != key {
			// Fingerprint collision between distinct plans: the incumbent
			// stays, the newcomer evaluates privately.
			return nil, rolePrivate
		}
		switch e.state {
		case spoolComplete:
			m.lru.MoveToFront(e.elem)
			return e, roleReplay
		default: // spoolBuilding (abandoned entries never stay in the map)
			if e.producer == execID {
				// Our own producer is suspended somewhere below us in this
				// very iterator tree; waiting would deadlock one goroutine.
				return nil, rolePrivate
			}
			return e, roleConsume
		}
	}
	e := &memoEntry{
		fp:       fp,
		key:      key,
		gen:      gen,
		state:    spoolBuilding,
		producer: execID,
		updated:  make(chan struct{}),
	}
	//lint:ignore govcharge acquire inserts an empty spool container; tuples are charged as the producer appends them
	m.entries[fp] = e
	return e, roleProduce
}

// appendSpool adds one tuple the producer just yielded to its building
// entry and wakes any consumer that caught up. It reports false when the
// spool can no longer be published — the entry outgrew the memo budget
// (which abandons it as overflow) or a generation flush abandoned it — in
// which case the producer keeps streaming privately.
func (m *Memo) appendSpool(e *memoEntry, t relation.Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != spoolBuilding {
		return false
	}
	if len(e.tuples)+1 > m.budget {
		m.abandonLocked(e, true)
		return false
	}
	//lint:ignore govcharge the producer charges memo-spool via chargeTuple before calling appendSpool
	e.tuples = append(e.tuples, t)
	m.tuples++
	m.wakeLocked(e)
	return true
}

// appendSpoolBlock is appendSpool for a block of tuples the producer just
// yielded. On budget overflow it appends the prefix that still fits before
// abandoning the entry as overflow — exact CacheTuplesSpooled parity with
// the one-at-a-time path, which fills the entry to the budget boundary and
// abandons on the first tuple past it. Returns how many tuples were
// appended and whether the spool is still publishable.
func (m *Memo) appendSpoolBlock(e *memoEntry, ts []relation.Tuple) (appended int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != spoolBuilding {
		return 0, false
	}
	if room := m.budget - len(e.tuples); len(ts) > room {
		if room < 0 {
			room = 0
		}
		//lint:ignore govcharge the producer charges memo-spool via chargeBatch before calling appendSpoolBlock
		e.tuples = append(e.tuples, ts[:room]...)
		m.tuples += room
		m.abandonLocked(e, true)
		return room, false
	}
	//lint:ignore govcharge the producer charges memo-spool via chargeBatch before calling appendSpoolBlock
	e.tuples = append(e.tuples, ts...)
	m.tuples += len(ts)
	m.wakeLocked(e)
	return len(ts), true
}

// presizeSpool reserves spool capacity for an expected result size. The
// caller converts its per-tuple hint into a whole-block reservation
// (planopt.BlocksFor rounds up; a hint of 0 reserves nothing) and this
// clamps it to the memo budget — an entry can never publish more than the
// budget, so reserving past it only wastes memory.
func (m *Memo) presizeSpool(e *memoEntry, capHint int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != spoolBuilding || capHint <= 0 {
		return
	}
	if capHint > m.budget {
		capHint = m.budget
	}
	if cap(e.tuples) >= capHint {
		return
	}
	grown := make([]relation.Tuple, len(e.tuples), capHint)
	copy(grown, e.tuples)
	e.tuples = grown
}

// complete publishes a fully drained spool: the entry becomes immutable,
// joins the LRU front, and least-recently-used complete entries are evicted
// until the budget holds again. In-flight spools are never evicted.
func (m *Memo) complete(e *memoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != spoolBuilding {
		return
	}
	e.state = spoolComplete
	e.elem = m.lru.PushFront(e)
	for m.tuples > m.budget {
		back := m.lru.Back()
		if back == nil || back == e.elem {
			break
		}
		m.evictLocked(back.Value.(*memoEntry))
	}
	m.wakeLocked(e)
}

// abandon marks a building entry dead and wakes its consumers. overflow
// distinguishes "the result does not fit the memo" (waiters go private)
// from "the producer died" (waiters re-elect).
func (m *Memo) abandon(e *memoEntry, overflow bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.abandonLocked(e, overflow)
}

func (m *Memo) abandonLocked(e *memoEntry, overflow bool) {
	if e.state != spoolBuilding {
		return
	}
	e.state = spoolAbandoned
	e.overflow = overflow
	if cur, ok := m.entries[e.fp]; ok && cur == e {
		delete(m.entries, e.fp)
	}
	m.tuples -= len(e.tuples)
	m.abandoned++
	m.wakeLocked(e)
}

// evictLocked removes a complete entry from both map and LRU.
func (m *Memo) evictLocked(victim *memoEntry) {
	m.lru.Remove(victim.elem)
	if cur, ok := m.entries[victim.fp]; ok && cur == victim {
		delete(m.entries, victim.fp)
	}
	m.tuples -= len(victim.tuples)
}

// consumeWait streams the tuple at position pos out of e, blocking while
// the producer has not appended it yet. done is the consumer's own
// cancellation channel (nil = uncancellable). blocked reports whether the
// call had to wait at least once (the single-flight wait counter).
func (m *Memo) consumeWait(e *memoEntry, pos int, done <-chan struct{}) (t relation.Tuple, st consumeStatus, blocked bool) {
	m.mu.Lock()
	for {
		if pos < len(e.tuples) {
			t = e.tuples[pos]
			m.mu.Unlock()
			return t, consumeTuple, blocked
		}
		switch e.state {
		case spoolComplete:
			m.mu.Unlock()
			return nil, consumeEOF, blocked
		case spoolAbandoned:
			overflow := e.overflow
			m.mu.Unlock()
			if overflow {
				return nil, consumeOverflow, blocked
			}
			return nil, consumeAbandoned, blocked
		}
		// Caught up with the producer: wait for the next append or state
		// change. The waiter count is adjusted under the mutex, so a wake
		// between unlock and the select is never lost (the channel we hold
		// is the one the producer will close).
		e.waiters++
		ch := e.updated
		m.mu.Unlock()
		blocked = true
		select {
		case <-ch:
		case <-done:
			m.mu.Lock()
			e.waiters--
			m.mu.Unlock()
			return nil, consumeCancelled, blocked
		}
		//lint:ignore lockdiscipline re-acquire at loop bottom; control jumps back to the loop head where every exit path unlocks
		m.mu.Lock()
		e.waiters--
	}
}

// consumeWaitBlock is consumeWait for the batch executor: it returns up to
// max tuples starting at pos in one call, blocking only while the producer
// has not appended tuple pos yet. The returned slice is a view of the spool
// taken under the mutex; the spool prefix below the published length is
// immutable (producers only append, and appends past a reallocation leave
// the old backing array intact), so reading it after unlock is safe — the
// mutex acquisition orders this read after the producer's writes.
func (m *Memo) consumeWaitBlock(e *memoEntry, pos, max int, done <-chan struct{}) (ts []relation.Tuple, st consumeStatus, blocked bool) {
	m.mu.Lock()
	for {
		if pos < len(e.tuples) {
			end := pos + max
			if end > len(e.tuples) {
				end = len(e.tuples)
			}
			ts = e.tuples[pos:end:end]
			m.mu.Unlock()
			return ts, consumeTuple, blocked
		}
		switch e.state {
		case spoolComplete:
			m.mu.Unlock()
			return nil, consumeEOF, blocked
		case spoolAbandoned:
			overflow := e.overflow
			m.mu.Unlock()
			if overflow {
				return nil, consumeOverflow, blocked
			}
			return nil, consumeAbandoned, blocked
		}
		// Caught up with the producer: wait for the next append or state
		// change (see consumeWait for the lost-wake argument).
		e.waiters++
		ch := e.updated
		m.mu.Unlock()
		blocked = true
		select {
		case <-ch:
		case <-done:
			m.mu.Lock()
			e.waiters--
			m.mu.Unlock()
			return nil, consumeCancelled, blocked
		}
		//lint:ignore lockdiscipline re-acquire at loop bottom; control jumps back to the loop head where every exit path unlocks
		m.mu.Lock()
		e.waiters--
	}
}

// lookup returns the published result for fp under catalog generation gen,
// or nil/false. The canonical key must match: a fingerprint collision is a
// miss, and an in-flight spool is not yet a hit. A hit moves the entry to
// the LRU front. The returned slice is shared and must not be mutated.
func (m *Memo) lookup(gen int64, fp uint64, key string) ([]relation.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) {
		return nil, false
	}
	e, ok := m.entries[fp]
	if !ok || e.key != key || e.state != spoolComplete {
		return nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.tuples, true
}

// store publishes an already materialized result in one step (tests and
// warm-priming). Oversized results, results under a superseded generation,
// and fingerprints that already have an entry — complete or in flight —
// are dropped.
func (m *Memo) store(gen int64, fp uint64, key string, tuples []relation.Tuple) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) || len(tuples) > m.budget {
		return
	}
	if _, ok := m.entries[fp]; ok {
		return
	}
	e := &memoEntry{fp: fp, key: key, gen: gen, state: spoolComplete, tuples: tuples, updated: make(chan struct{})}
	e.elem = m.lru.PushFront(e)
	//lint:ignore govcharge store warm-primes already-materialized results; the run that built them paid the charge
	m.entries[fp] = e
	m.tuples += len(tuples)
	for m.tuples > m.budget {
		back := m.lru.Back()
		if back == nil || back == e.elem {
			break
		}
		m.evictLocked(back.Value.(*memoEntry))
	}
}

// shed evicts least-recently-used complete entries until at least need
// estimated bytes are freed (or no complete entry is left), returning the
// bytes freed and the entry count evicted. The governor calls it under
// memory pressure: warm cache entries are engine-held memory the query can
// give back without affecting correctness — only later hit rates.
// In-flight spools are not in the LRU and are never shed.
func (m *Memo) shed(need int64) (freed int64, evicted int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for freed < need {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*memoEntry)
		m.evictLocked(victim)
		for _, t := range victim.tuples {
			freed += tupleBytes(t)
		}
		evicted++
	}
	return freed, evicted
}

// HasComplete reports whether a published (complete, current-generation)
// entry exists for fp/key without touching LRU order. The service tier's
// degraded mode consults it before admitting a cache-only execution: a true
// answer is advisory — the entry can still be evicted before the run reads
// it, in which case the run simply evaluates cold — but a false answer is a
// reliable "this plan would evaluate from scratch".
func (m *Memo) HasComplete(gen int64, fp uint64, key string) bool {
	return m.entryLen(gen, fp, key) >= 0
}

// entryLen returns the published result's length for fp/key under catalog
// generation gen without touching LRU order; -1 when absent, still
// building, or stale. Threading gen through matters: after a base-relation
// mutation the old entry's length must not leak out as a size hint.
func (m *Memo) entryLen(gen int64, fp uint64, key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) {
		return -1
	}
	if e, ok := m.entries[fp]; ok && e.key == key && e.state == spoolComplete {
		return len(e.tuples)
	}
	return -1
}

// memoMode is the execution mode a memoIter settles into at its first Next
// (and may move between when a producer dies or a spool overflows).
type memoMode uint8

const (
	modeUnstarted memoMode = iota
	modeReplay             // streaming a complete entry's snapshot
	modeConsume            // streaming a building entry another execution fills
	modeProduce            // elected producer: evaluating, appending, yielding
	modePrivate            // transparent evaluation, no memo interaction
)

// memoIter executes an algebra.Shared node against the context memo. It is
// deliberately lazy: the memo acquire and the input Open both happen at the
// first Next, not at Open — all iterators of a plan Open before any drains,
// so an eager acquire would elect producers for results a sibling branch is
// about to publish, and an eager input Open would run blocking hash builds
// that a replay makes unnecessary.
type memoIter struct {
	ctx *Context
	in  Iterator
	fp  uint64
	key string

	mode  memoMode
	gen   int64
	entry *memoEntry       // building entry (produce/consume modes)
	repl  []relation.Tuple // immutable snapshot (replay mode)
	// pos counts tuples already delivered downstream; across a producer
	// re-election or a private fallback it becomes the skip count, since
	// re-evaluation regenerates the same deterministic prefix.
	pos      int
	skip     int
	inOpened bool
}

func newMemoIter(ctx *Context, in Iterator, n *algebra.Shared) *memoIter {
	return &memoIter{ctx: ctx, in: in, fp: n.FP, key: algebra.Canonical(n.Input)}
}

func (it *memoIter) Open() {
	it.mode = modeUnstarted
	it.entry = nil
	it.repl = nil
	it.pos = 0
	it.skip = 0
	it.inOpened = false
}

func (it *memoIter) Next() (relation.Tuple, bool) {
	// A panic below — the subtree's iterators, an injected fault at
	// memo.elect/memo.append — must not strand consumers on a building
	// entry: abandon first, then let the panic continue to the isolation
	// boundary.
	defer func() {
		if r := recover(); r != nil {
			it.abandonProduce()
			panic(r)
		}
	}()
	if it.ctx.Interrupted() {
		it.abandonProduce()
		return nil, false
	}
	if it.mode == modeUnstarted {
		it.start()
	}
	for {
		switch it.mode {
		case modeReplay:
			if it.pos >= len(it.repl) {
				return nil, false
			}
			t := it.repl[it.pos]
			it.pos++
			it.ctx.Stats.CacheTuplesReplayed++
			return t, true
		case modeProduce:
			return it.produceNext()
		case modePrivate:
			return it.privateNext()
		default: // modeConsume
			t, ok, resolved := it.consumeNext()
			if resolved {
				return t, ok
			}
			// Producer died or the entry state changed: mode was switched;
			// loop and continue under the new mode.
		}
	}
}

// start resolves the memo at the first Next.
func (it *memoIter) start() {
	it.gen = it.ctx.Catalog.Generation()
	if it.ctx.Memo == nil {
		it.mode = modePrivate
		return
	}
	e, role := it.ctx.Memo.acquire(it.gen, it.fp, it.key, it.ctx.execID)
	switch role {
	case roleReplay:
		it.ctx.Stats.CacheHits++
		it.repl = e.tuples
		it.mode = modeReplay
	case roleConsume:
		it.ctx.Stats.CacheDuplicatesAvoided++
		it.entry = e
		it.mode = modeConsume
	case roleProduce:
		it.ctx.Stats.CacheMisses++
		it.entry = e
		it.mode = modeProduce
		// The election fault point: an injected error here cancels the
		// context (the producer abandons on its next step and waiters
		// re-elect); an injected panic unwinds through the abandon guard.
		it.ctx.fireFault(faultinject.PointMemoElect)
	default:
		it.ctx.Stats.CacheMisses++
		it.mode = modePrivate
	}
}

// produceNext advances the producer: pull one input tuple, append it to the
// spool, yield it. A complete drain publishes; any abort abandons.
func (it *memoIter) produceNext() (relation.Tuple, bool) {
	if it.ctx.Interrupted() {
		it.abandonProduce()
		return nil, false
	}
	if !it.inOpened {
		it.in.Open()
		it.inOpened = true
	}
	for {
		t, ok := it.in.Next()
		if !ok {
			// Complete drain: publish, unless cancellation may have
			// truncated the stream. The fault point sits before the
			// publication so an injected failure here proves aborted spools
			// are never published.
			if it.ctx.CancelErr() == nil {
				it.ctx.fireFault(faultinject.PointMemoPublish)
			}
			if it.ctx.CancelErr() == nil {
				it.ctx.Memo.complete(it.entry)
				it.entry = nil
				it.mode = modePrivate // input exhausted; stays empty
			} else {
				it.abandonProduce()
			}
			return nil, false
		}
		// A failed governor charge abandons the spool but still yields the
		// tuple: the pinned *ResourceError is the context's sticky abort
		// cause and surfaces at the root, so the consumer's stream is never
		// silently truncated relative to a cache-off run.
		if !it.ctx.chargeTuple("memo-spool", t) {
			it.abandonProduce()
			return it.yieldProduced(t)
		}
		it.ctx.fireFault(faultinject.PointMemoAppend)
		if it.ctx.CancelErr() != nil {
			it.abandonProduce()
			return it.yieldProduced(t)
		}
		if !it.ctx.Memo.appendSpool(it.entry, t) {
			// Overflow (the entry outgrew the memo budget) or a generation
			// flush raced the build: the spool is gone, keep streaming.
			it.entry = nil
			it.mode = modePrivate
			it.ctx.Stats.CacheSpoolsAbandoned++
			return it.yieldProduced(t)
		}
		it.ctx.Stats.CacheTuplesSpooled++
		if it.skip > 0 {
			// Re-elected producer: this prefix was already delivered
			// downstream while consuming the abandoned entry.
			it.skip--
			continue
		}
		return it.yieldProduced(t)
	}
}

// yieldProduced delivers one produced tuple downstream, honouring the
// re-election skip prefix.
func (it *memoIter) yieldProduced(t relation.Tuple) (relation.Tuple, bool) {
	if it.skip > 0 {
		it.skip--
		return it.Next()
	}
	it.pos++
	return t, true
}

// consumeNext streams one tuple from another execution's building entry.
// resolved=false means the entry reached a terminal state and the iterator
// switched modes; the caller loops.
func (it *memoIter) consumeNext() (relation.Tuple, bool, bool) {
	t, st, blocked := it.ctx.Memo.consumeWait(it.entry, it.pos, it.ctx.doneChan())
	if blocked {
		it.ctx.Stats.CacheSingleFlightWaits++
	}
	switch st {
	case consumeTuple:
		it.pos++
		it.ctx.Stats.CacheTuplesReplayed++
		return t, true, true
	case consumeEOF:
		return nil, false, true
	case consumeCancelled:
		it.ctx.observeCancel()
		return nil, false, true
	case consumeOverflow:
		// The result does not fit the memo: nobody should produce into it.
		// Evaluate privately, regenerating and discarding the prefix already
		// streamed downstream.
		it.entry = nil
		it.mode = modePrivate
		it.skip = it.pos
		return nil, false, false
	default: // consumeAbandoned — the producer died; re-elect.
		e, role := it.ctx.Memo.acquire(it.gen, it.fp, it.key, it.ctx.execID)
		switch role {
		case roleReplay:
			// Another waiter was re-elected and already finished.
			it.repl = e.tuples
			it.mode = modeReplay
		case roleConsume:
			it.entry = e
			it.mode = modeConsume
		case roleProduce:
			it.ctx.Stats.CacheMisses++
			it.entry = e
			it.mode = modeProduce
			it.skip = it.pos
			it.ctx.fireFault(faultinject.PointMemoElect)
		default:
			it.entry = nil
			it.mode = modePrivate
			it.skip = it.pos
		}
		return nil, false, false
	}
}

// privateNext evaluates the subtree transparently, discarding the
// deterministic prefix already delivered downstream from a dead spool.
func (it *memoIter) privateNext() (relation.Tuple, bool) {
	if !it.inOpened {
		it.in.Open()
		it.inOpened = true
	}
	for {
		if it.ctx.Interrupted() {
			return nil, false
		}
		t, ok := it.in.Next()
		if !ok {
			return nil, false
		}
		if it.skip > 0 {
			it.skip--
			continue
		}
		it.pos++
		return t, true
	}
}

// abandonProduce abandons the building entry this iterator produces, if
// any, and drops to private mode. Safe to call in any mode (Close and the
// panic guard call it unconditionally).
func (it *memoIter) abandonProduce() {
	if it.mode == modeProduce && it.entry != nil {
		it.ctx.Memo.abandon(it.entry, false)
		it.ctx.Stats.CacheSpoolsAbandoned++
	}
	if it.mode == modeProduce {
		it.entry = nil
		it.mode = modePrivate
	}
}

func (it *memoIter) Close() {
	// An early close while producing — an emptiness probe that stopped at
	// its first witness, a cancelled run unwinding — abandons the spool so
	// attached consumers re-elect instead of waiting forever.
	it.abandonProduce()
	if it.inOpened {
		it.in.Close()
	}
	it.entry = nil
	it.repl = nil
}

// sizeHint bounds the output: exactly the entry length on a warm cache
// under the current catalog generation, otherwise whatever the input can
// promise.
func (it *memoIter) sizeHint() int {
	if n := it.ctx.Memo.entryLen(it.ctx.Catalog.Generation(), it.fp, it.key); n >= 0 {
		return n
	}
	return hintOf(it.in)
}
