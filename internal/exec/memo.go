package exec

import (
	"container/list"
	"sync"

	"repro/internal/algebra"
	"repro/internal/faultinject"
	"repro/internal/relation"
)

// This file implements the result memo behind the memoizing subplan cache.
// The planner (internal/planopt) wraps repeated subtrees in algebra.Shared
// nodes; at execution, the first evaluation of a fingerprint streams through
// a spool and publishes it, and every later evaluation — in the same plan
// (union branches, ⋉/⊼ twins) or in a later Query/Check/Run on the same
// engine — replays the spool without touching base relations. Entries are
// verified against the full canonical plan string, so a 64-bit fingerprint
// collision degrades to a miss, never to a wrong result; and the memo
// remembers the catalog generation it was filled under, so any base-relation
// mutation flushes it wholesale.

// DefaultMemoBudget bounds the memo's total buffered tuples when the caller
// does not pick a budget.
const DefaultMemoBudget = 1 << 20

// Memo is a bounded, generation-invalidated result cache keyed by plan
// fingerprint. It is owned by the root execution context (worker forks never
// see it) and guarded by a mutex, so replays are safe even when several
// executions share one engine-held memo.
type Memo struct {
	mu      sync.Mutex
	budget  int
	gen     int64
	tuples  int
	entries map[uint64]*memoEntry
	lru     *list.List // front = most recently used; values are *memoEntry
}

type memoEntry struct {
	fp     uint64
	key    string // canonical plan string: the collision check
	tuples []relation.Tuple
	elem   *list.Element
}

// NewMemo builds a memo bounded to at most budget buffered tuples across all
// entries; budget <= 0 selects DefaultMemoBudget.
func NewMemo(budget int) *Memo {
	if budget <= 0 {
		budget = DefaultMemoBudget
	}
	return &Memo{
		budget:  budget,
		gen:     -1,
		entries: make(map[uint64]*memoEntry),
		lru:     list.New(),
	}
}

// Budget returns the tuple budget.
func (m *Memo) Budget() int { return m.budget }

// Entries returns the number of cached results.
func (m *Memo) Entries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Tuples returns the number of buffered tuples across all entries.
func (m *Memo) Tuples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tuples
}

// Flush drops every entry.
func (m *Memo) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushLocked()
}

func (m *Memo) flushLocked() {
	m.entries = make(map[uint64]*memoEntry)
	m.lru.Init()
	m.tuples = 0
}

// advance flushes the memo when a newer catalog generation is observed.
// Generations are monotonic, so gen < m.gen identifies a stale caller (a
// run that started before a mutation); those neither read nor write.
// Returns whether gen is current. Callers hold the mutex.
func (m *Memo) advance(gen int64) bool {
	if gen > m.gen {
		m.flushLocked()
		m.gen = gen
	}
	return gen == m.gen
}

// lookup returns the spooled result for fp under catalog generation gen, or
// nil/false. The canonical key must match: a fingerprint collision is a miss.
// A hit moves the entry to the LRU front. The returned slice is shared and
// must not be mutated.
func (m *Memo) lookup(gen int64, fp uint64, key string) ([]relation.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) {
		return nil, false
	}
	e, ok := m.entries[fp]
	if !ok || e.key != key {
		return nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.tuples, true
}

// store publishes a fully drained spool under fp, evicting least recently
// used entries until the budget holds. Oversized results and results spooled
// under a superseded generation are dropped.
func (m *Memo) store(gen int64, fp uint64, key string, tuples []relation.Tuple) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.advance(gen) || len(tuples) > m.budget {
		return
	}
	if e, ok := m.entries[fp]; ok {
		// Another evaluation of the same fingerprint already published.
		if e.key == key {
			return
		}
		// Fingerprint collision between distinct plans: keep the incumbent.
		return
	}
	for m.tuples+len(tuples) > m.budget {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*memoEntry)
		m.lru.Remove(back)
		delete(m.entries, victim.fp)
		m.tuples -= len(victim.tuples)
	}
	e := &memoEntry{fp: fp, key: key, tuples: tuples}
	e.elem = m.lru.PushFront(e)
	m.entries[fp] = e
	m.tuples += len(tuples)
}

// shed evicts least-recently-used entries until at least need estimated
// bytes are freed (or the memo is empty), returning the bytes freed and the
// entry count evicted. The governor calls it under memory pressure: warm
// cache entries are engine-held memory the query can give back without
// affecting correctness — only later hit rates.
func (m *Memo) shed(need int64) (freed int64, evicted int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for freed < need {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*memoEntry)
		m.lru.Remove(back)
		delete(m.entries, victim.fp)
		m.tuples -= len(victim.tuples)
		for _, t := range victim.tuples {
			freed += tupleBytes(t)
		}
		evicted++
	}
	return freed, evicted
}

// entryLen returns the cached result's length for fp/key without touching
// LRU order; -1 when absent. Used for size hints.
func (m *Memo) entryLen(fp uint64, key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[fp]; ok && e.key == key {
		return len(e.tuples)
	}
	return -1
}

// memoIter executes an algebra.Shared node against the context memo. It is
// deliberately lazy: the memo lookup and the input Open both happen at the
// first Next, not at Open — all iterators of a plan Open before any drains,
// so an eager lookup would miss results a sibling branch is about to
// publish, and an eager input Open would run blocking hash builds that a hit
// makes unnecessary.
type memoIter struct {
	ctx *Context
	in  Iterator
	fp  uint64
	key string

	started   bool
	gen       int64
	replay    []relation.Tuple // non-nil on a hit
	replayPos int
	spool     []relation.Tuple
	spooling  bool
	inOpened  bool
}

func newMemoIter(ctx *Context, in Iterator, n *algebra.Shared) *memoIter {
	return &memoIter{ctx: ctx, in: in, fp: n.FP, key: algebra.Canonical(n.Input)}
}

func (it *memoIter) Open() {
	it.started = false
	it.replay = nil
	it.replayPos = 0
	it.spool = nil
	it.spooling = false
	it.inOpened = false
}

func (it *memoIter) Next() (relation.Tuple, bool) {
	if it.ctx.Interrupted() {
		return nil, false
	}
	if !it.started {
		it.started = true
		it.gen = it.ctx.Catalog.Generation()
		if tuples, ok := it.ctx.Memo.lookup(it.gen, it.fp, it.key); ok {
			it.ctx.Stats.CacheHits++
			it.replay = tuples
		} else {
			it.ctx.Stats.CacheMisses++
			it.in.Open()
			it.inOpened = true
			it.spool = []relation.Tuple{}
			it.spooling = true
		}
	}
	if it.replay != nil {
		if it.replayPos >= len(it.replay) {
			return nil, false
		}
		t := it.replay[it.replayPos]
		it.replayPos++
		it.ctx.Stats.CacheTuplesReplayed++
		return t, true
	}
	t, ok := it.in.Next()
	if !ok {
		// Complete drain: publish, unless cancellation may have truncated
		// the stream or the spool was abandoned as over budget. The fault
		// point sits before the store so an injected failure (or panic)
		// here proves aborted spools are never published.
		if it.spooling && it.ctx.CancelErr() == nil {
			it.ctx.fireFault(faultinject.PointMemoPublish)
			if it.ctx.CancelErr() == nil {
				it.ctx.Memo.store(it.gen, it.fp, it.key, it.spool)
			}
		}
		it.spooling = false
		it.spool = nil
		return nil, false
	}
	if it.spooling {
		if !it.ctx.chargeTuple("memo-spool", t) {
			it.spooling = false
			it.spool = nil
			return nil, false
		}
		it.spool = append(it.spool, t)
		it.ctx.Stats.CacheTuplesSpooled++
		if len(it.spool) > it.ctx.Memo.Budget() {
			it.spooling = false
			it.spool = nil
		}
	}
	return t, true
}

func (it *memoIter) Close() {
	if it.inOpened {
		it.in.Close()
	}
	it.replay = nil
	it.spool = nil
}

// sizeHint bounds the output: exactly the entry length on a warm cache,
// otherwise whatever the input can promise.
func (it *memoIter) sizeHint() int {
	if n := it.ctx.Memo.entryLen(it.fp, it.key); n >= 0 {
		return n
	}
	return hintOf(it.in)
}
