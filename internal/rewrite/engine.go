package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/calculus"
	"repro/internal/parser"
	"repro/internal/ranges"
)

// Step records one rule application for explanation and testing.
type Step struct {
	Rule Rule
	// At renders the subformula the rule fired on.
	At string
	// Result renders the whole formula after the application.
	Result string
}

// Engine normalizes queries into canonical form by applying Rules 1-14 to a
// fixpoint. The zero MaxSteps means DefaultMaxSteps.
type Engine struct {
	// MaxSteps bounds rule applications; exceeding it returns an error.
	// The rewriting system is noetherian (Proposition 1), so the bound
	// exists only to convert a hypothetical implementation bug into a
	// clean error instead of a hang.
	MaxSteps int
	// Choose picks the next candidate among all applicable ones; nil means
	// the first (leftmost-innermost collection order). The confluence tests
	// inject random choices here.
	Choose func(cands []Candidate) int
	// Trace, when set, receives every applied step.
	Trace *[]Step
}

// DefaultMaxSteps bounds rule applications per normalization.
const DefaultMaxSteps = 100000

// Normalize rewrites the query into canonical form. It validates the input
// (restricted quantifications, Definitions 2/3), standardizes bound
// variables apart, applies the rules to a fixpoint, orders the result
// canonically, and re-validates. The returned query is logically equivalent
// to the input.
func (e *Engine) Normalize(q parser.Query) (parser.Query, error) {
	if err := ranges.Validate(q.Body, q.OpenVars); err != nil {
		return parser.Query{}, err
	}
	gen := calculus.NewNameGen(calculus.AllVars(q.Body))
	f := calculus.RenameBound(q.Body, gen)
	// Keep the open variables stable: RenameBound only renames bound ones.

	maxSteps := e.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	steps := 0
	for {
		cands := collect(f, q.OpenVars, gen)
		if len(cands) == 0 {
			break
		}
		// Phased strategy: logic normalization (Rules 1-5) runs before any
		// quantifier restructuring, useless-variable removal before scope
		// movement, movement before splitting, splitting before
		// distribution. The rule system has overlapping redexes across
		// these classes (e.g. De Morgan exposing a disjunction that Rules
		// 10/11 would distribute at a different granularity); fixing the
		// class order makes the normal form unique while leaving the
		// within-class application order free — the confluence tests
		// randomize over exactly that freedom.
		cands = highestPriorityClass(cands)
		i := 0
		if e.Choose != nil {
			i = e.Choose(cands)
		}
		c := cands[i]
		f = c.Apply()
		steps++
		if e.Trace != nil {
			*e.Trace = append(*e.Trace, Step{Rule: c.Rule, At: c.At, Result: f.String()})
		}
		if steps > maxSteps {
			return parser.Query{}, fmt.Errorf("rewrite: exceeded %d rule applications; the rewriting system should be noetherian (Proposition 1) — this is a bug", maxSteps)
		}
	}

	f = Reorder(f)
	out := parser.Query{OpenVars: q.OpenVars, Body: f}
	if err := CheckCanonical(f); err != nil {
		return parser.Query{}, fmt.Errorf("rewrite: normalization left a non-canonical residue: %w", err)
	}
	return out, nil
}

// ruleClass orders rules into strategy phases; lower runs first.
func ruleClass(r Rule) int {
	switch r {
	case Rule1, Rule2, Rule3, RuleNegCmp, Rule4, Rule5, RuleForallOr:
		return 0 // negation and universal-quantifier normalization
	case Rule6, Rule7:
		return 1 // useless quantified variables
	case Rule8, Rule9:
		return 2 // scope movement (miniscoping)
	case Rule14:
		return 3 // quantifier splitting over disjunctions
	default:
		return 4 // Rules 10-13: distribution inside ranges
	}
}

// highestPriorityClass filters candidates to the lowest class present.
func highestPriorityClass(cands []Candidate) []Candidate {
	best := ruleClass(cands[0].Rule)
	for _, c := range cands[1:] {
		if k := ruleClass(c.Rule); k < best {
			best = k
		}
	}
	out := cands[:0:0]
	for _, c := range cands {
		if ruleClass(c.Rule) == best {
			out = append(out, c)
		}
	}
	return out
}

// Normalize is the package-level convenience using a default engine.
func Normalize(q parser.Query) (parser.Query, error) {
	e := &Engine{}
	return e.Normalize(q)
}

// NormalizeFormula normalizes a closed formula.
func NormalizeFormula(f calculus.Formula) (calculus.Formula, error) {
	q, err := Normalize(parser.Query{Body: f})
	if err != nil {
		return nil, err
	}
	return q.Body, nil
}

// Reorder puts a formula into a canonical syntactic order: ∧/∨ chains are
// flattened, subformulas ordered by a stable key, and rebuilt
// left-associatively. Combined with the confluence of the rule system this
// makes canonical forms unique up to the renaming of bound variables.
func Reorder(f calculus.Formula) calculus.Formula {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return f
	case calculus.Not:
		return calculus.Not{F: Reorder(n.F)}
	case calculus.And:
		parts := calculus.Conjuncts(n)
		for i := range parts {
			parts[i] = Reorder(parts[i])
		}
		sortStable(parts)
		return calculus.AndAll(parts...)
	case calculus.Or:
		parts := calculus.Disjuncts(n)
		for i := range parts {
			parts[i] = Reorder(parts[i])
		}
		sortStable(parts)
		return calculus.OrAll(parts...)
	case calculus.Implies:
		return calculus.Implies{L: Reorder(n.L), R: Reorder(n.R)}
	case calculus.Exists:
		vars := append([]string(nil), n.Vars...)
		sort.Strings(vars)
		return calculus.Exists{Vars: vars, Body: Reorder(n.Body)}
	case calculus.Forall:
		vars := append([]string(nil), n.Vars...)
		sort.Strings(vars)
		return calculus.Forall{Vars: vars, Body: Reorder(n.Body)}
	default:
		panic(fmt.Sprintf("rewrite: unknown formula %T", f))
	}
}

// sortStable orders subformulas by a structural key that ignores bound
// variable names (so confluence comparisons are insensitive to the fresh
// names different rule orders pick) and uses the exact rendering only to
// break ties deterministically.
func sortStable(parts []calculus.Formula) {
	type keyed struct {
		key string
		f   calculus.Formula
	}
	ks := make([]keyed, len(parts))
	for i, p := range parts {
		ks[i] = keyed{key: structuralKey(p) + "\x00" + p.String(), f: p}
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	for i := range ks {
		parts[i] = ks[i].f
	}
}

// StructuralKey renders a formula as a canonical string: bound variables
// are replaced by binder indexes (so fresh-name choices do not matter),
// ∧/∨ chains are sorted, and the variable order inside a quantifier block —
// which the paper declares irrelevant (∃x₁x₂ ≡ ∃x₂x₁) — is normalized by
// minimizing over block permutations. Two formulas with equal keys are
// equal up to bound renaming, block ordering and ∧/∨ reordering; the
// confluence tests compare normal forms through it.
func StructuralKey(f calculus.Formula) string {
	return renderKey(f, map[string]string{})
}

func structuralKey(f calculus.Formula) string { return StructuralKey(f) }

func renderKey(f calculus.Formula, bound map[string]string) string {
	term := func(t calculus.Term) string {
		if t.IsVar() {
			if b, ok := bound[t.Var]; ok {
				return b
			}
			return "f:" + t.Var
		}
		return "c:" + t.Const.String()
	}
	switch n := f.(type) {
	case calculus.Atom:
		s := "A" + n.Pred + "("
		for _, a := range n.Args {
			s += term(a) + ","
		}
		return s + ")"
	case calculus.Cmp:
		return "C" + term(n.Left) + n.Op.String() + term(n.Right)
	case calculus.Not:
		return "N(" + renderKey(n.F, bound) + ")"
	case calculus.And:
		parts := calculus.Conjuncts(n)
		ks := make([]string, len(parts))
		for i, p := range parts {
			ks[i] = renderKey(p, bound)
		}
		sort.Strings(ks)
		s := "&("
		for _, k := range ks {
			s += k + ";"
		}
		return s + ")"
	case calculus.Or:
		parts := calculus.Disjuncts(n)
		ks := make([]string, len(parts))
		for i, p := range parts {
			ks[i] = renderKey(p, bound)
		}
		sort.Strings(ks)
		s := "|("
		for _, k := range ks {
			s += k + ";"
		}
		return s + ")"
	case calculus.Implies:
		return "I(" + renderKey(n.L, bound) + ">" + renderKey(n.R, bound) + ")"
	case calculus.Exists, calculus.Forall:
		var vars []string
		var body calculus.Formula
		tag := "E"
		if ex, ok := n.(calculus.Exists); ok {
			vars, body = ex.Vars, ex.Body
		} else {
			fa := n.(calculus.Forall)
			vars, body = fa.Vars, fa.Body
			tag = "U"
		}
		// The order of variables inside one block is irrelevant
		// (∃x₁x₂ ≡ ∃x₂x₁): canonicalize by minimizing over permutations.
		best := ""
		permute(vars, func(perm []string) {
			nb := make(map[string]string, len(bound)+len(perm))
			for k, v := range bound {
				nb[k] = v
			}
			for i, v := range perm {
				nb[v] = fmt.Sprintf("b%d.%d", len(bound), i)
			}
			k := renderKey(body, nb)
			if best == "" || k < best {
				best = k
			}
		})
		return tag + fmt.Sprintf("%d", len(vars)) + "(" + best + ")"
	default:
		panic(fmt.Sprintf("rewrite: unknown formula %T", f))
	}
}

// permute calls visit with every permutation of vars (Heap's algorithm);
// quantifier blocks are small, so the factorial cost is negligible.
func permute(vars []string, visit func([]string)) {
	v := append([]string(nil), vars...)
	var rec func(k int)
	rec = func(k int) {
		if k <= 1 {
			visit(v)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				v[i], v[k-1] = v[k-1], v[i]
			} else {
				v[0], v[k-1] = v[k-1], v[0]
			}
		}
	}
	rec(len(v))
}

// CheckCanonical verifies the structural guarantees of the canonical form
// that Phase 2 assumes: no universal quantifiers, no implications, no
// double negations, no negated connectives, no useless quantified
// variables, and miniscope form.
func CheckCanonical(f calculus.Formula) error {
	var err error
	calculus.Walk(f, func(g calculus.Formula) {
		if err != nil {
			return
		}
		switch n := g.(type) {
		case calculus.Forall:
			err = fmt.Errorf("universal quantifier remains: %s", g)
		case calculus.Implies:
			err = fmt.Errorf("implication remains: %s", g)
		case calculus.Not:
			switch n.F.(type) {
			case calculus.Not:
				err = fmt.Errorf("double negation remains: %s", g)
			case calculus.And, calculus.Or:
				err = fmt.Errorf("negated connective remains: %s", g)
			}
		case calculus.Exists:
			free := calculus.FreeVars(n.Body)
			for _, v := range n.Vars {
				if !free.Has(v) {
					err = fmt.Errorf("useless quantified variable %q remains: %s", v, g)
					return
				}
			}
		}
	})
	if err != nil {
		return err
	}
	if !IsMiniscope(f) {
		return fmt.Errorf("formula is not in miniscope form: %s", f)
	}
	return nil
}

// IsMiniscope implements Definition 4: a formula is in miniscope form iff
// none of its quantified subformulas contains an atom in which only
// variables quantified outside that subformula occur.
func IsMiniscope(f calculus.Formula) bool {
	return miniscopeCheck(f, make(calculus.VarSet))
}

// miniscopeCheck walks the formula carrying the set of variables quantified
// outside the current position.
func miniscopeCheck(f calculus.Formula, outside calculus.VarSet) bool {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return true
	case calculus.Not:
		return miniscopeCheck(n.F, outside)
	case calculus.And:
		return miniscopeCheck(n.L, outside) && miniscopeCheck(n.R, outside)
	case calculus.Or:
		return miniscopeCheck(n.L, outside) && miniscopeCheck(n.R, outside)
	case calculus.Implies:
		return miniscopeCheck(n.L, outside) && miniscopeCheck(n.R, outside)
	case calculus.Exists:
		return quantMiniscope(n.Vars, n.Body, outside)
	case calculus.Forall:
		return quantMiniscope(n.Vars, n.Body, outside)
	default:
		panic(fmt.Sprintf("rewrite: unknown formula %T", f))
	}
}

func quantMiniscope(vars []string, body calculus.Formula, outside calculus.VarSet) bool {
	// The quantified subformula must not contain an atom over only
	// outside-quantified variables.
	bad := false
	calculus.Walk(body, func(g calculus.Formula) {
		if bad {
			return
		}
		var vs calculus.VarSet
		switch a := g.(type) {
		case calculus.Atom:
			vs = calculus.FreeVars(a)
		case calculus.Cmp:
			vs = calculus.FreeVars(a)
		default:
			return
		}
		if len(vs) == 0 {
			return
		}
		onlyOutside := true
		for v := range vs {
			if !outside.Has(v) {
				onlyOutside = false
				break
			}
		}
		if onlyOutside {
			bad = true
		}
	})
	if bad {
		return false
	}
	inner := make(calculus.VarSet, len(outside)+len(vars))
	inner.AddAll(outside)
	for _, v := range vars {
		inner.Add(v)
	}
	return miniscopeCheck(body, inner)
}
