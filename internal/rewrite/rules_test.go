package rewrite

import (
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/parser"
)

// traceOf normalizes and returns the applied rule sequence.
func traceOf(t *testing.T, input string) ([]Step, parser.Query) {
	t.Helper()
	var steps []Step
	e := Engine{Trace: &steps}
	out, err := e.Normalize(parser.MustParse(input))
	if err != nil {
		t.Fatalf("Normalize(%q): %v", input, err)
	}
	return steps, out
}

func rulesApplied(steps []Step) map[Rule]int {
	m := make(map[Rule]int)
	for _, s := range steps {
		m[s.Rule]++
	}
	return m
}

func TestTraceRule1(t *testing.T) {
	steps, _ := traceOf(t, `exists x: p(x) and not not q(x)`)
	if rulesApplied(steps)[Rule1] != 1 {
		t.Fatalf("want one ¬¬ elimination, got %v", steps)
	}
}

func TestTraceRules23(t *testing.T) {
	steps, _ := traceOf(t, `exists x: p(x) and not (q(x) and not (r(x) or s(x, x))) and not (p(x) or q(x))`)
	m := rulesApplied(steps)
	if m[Rule2] == 0 {
		t.Fatalf("¬∧ must fire: %v", m)
	}
	if m[Rule3] == 0 {
		t.Fatalf("¬∨ must fire: %v", m)
	}
}

func TestTraceRule4CountsUniversals(t *testing.T) {
	// Two universal quantifiers ⇒ Rule 4 fires exactly twice (the bound
	// used in the paper's Proposition 1 proof sketch).
	steps, _ := traceOf(t, `(forall x: p(x) => q(x)) and forall y: q(y) => p(y)`)
	if got := rulesApplied(steps)[Rule4]; got != 2 {
		t.Fatalf("Rule 4 fired %d times, want 2", got)
	}
}

func TestTraceRule5(t *testing.T) {
	steps, _ := traceOf(t, `forall x: not p(x)`)
	if rulesApplied(steps)[Rule5] != 1 {
		t.Fatalf("Rule 5 must fire once: %v", steps)
	}
}

func TestTraceRuleNegCmp(t *testing.T) {
	steps, out := traceOf(t, `exists x, y: r(x, y) and not x < y`)
	if rulesApplied(steps)[RuleNegCmp] != 1 {
		t.Fatalf("¬cmp folding must fire once: %v", steps)
	}
	if !strings.Contains(out.Body.String(), "≥") {
		t.Fatalf("negated < must become ≥: %s", out.Body)
	}
}

func TestTraceProducerSplit(t *testing.T) {
	steps, _ := traceOf(t, `exists x: (p(x) or q(x)) and t(x)`)
	m := rulesApplied(steps)
	if m[Rule12] != 1 {
		t.Fatalf("the producer disjunction must distribute via Rule 12: %v", m)
	}
	if m[Rule14] != 1 {
		t.Fatalf("the quantifier must split via Rule 14: %v", m)
	}
}

func TestTraceFilterKept(t *testing.T) {
	steps, out := traceOf(t, `exists x: p(x) and (q(x) or t(x))`)
	m := rulesApplied(steps)
	if m[Rule11]+m[Rule13] != 0 {
		t.Fatalf("filter disjunction must not distribute: %v", m)
	}
	if _, isOr := out.Body.(calculus.Or); isOr {
		t.Fatalf("query must not split: %s", out.Body)
	}
}

func TestStepsRecordResults(t *testing.T) {
	steps, _ := traceOf(t, `forall x: not p(x)`)
	if len(steps) == 0 || steps[0].Result == "" || steps[0].At == "" {
		t.Fatalf("steps must carry positions and results: %+v", steps)
	}
}

func TestRuleStrings(t *testing.T) {
	if Rule4.String() != "Rule 4" {
		t.Fatalf("Rule4 = %s", Rule4)
	}
	if !strings.Contains(RuleNegCmp.String(), "cmp") {
		t.Fatalf("RuleNegCmp = %s", RuleNegCmp)
	}
	if !strings.Contains(RuleForallOr.String(), "∀") {
		t.Fatalf("RuleForallOr = %s", RuleForallOr)
	}
}

func TestCheckCanonicalRejects(t *testing.T) {
	bad := []calculus.Formula{
		calculus.Forall{Vars: []string{"x"}, Body: calculus.NewAtom("p", calculus.V("x"))},
		calculus.Not{F: calculus.Not{F: calculus.NewAtom("p")}},
		calculus.Not{F: calculus.And{L: calculus.NewAtom("p"), R: calculus.NewAtom("q")}},
		calculus.Not{F: calculus.Or{L: calculus.NewAtom("p"), R: calculus.NewAtom("q")}},
		calculus.Implies{L: calculus.NewAtom("p"), R: calculus.NewAtom("q")},
		calculus.Exists{Vars: []string{"x", "z"}, Body: calculus.NewAtom("p", calculus.V("x"))},
	}
	for _, f := range bad {
		if err := CheckCanonical(f); err == nil {
			t.Errorf("CheckCanonical(%s) passed, want error", f)
		}
	}
	good := parser.MustParse(`exists x: p(x) and not q(x)`).Body
	if err := CheckCanonical(good); err != nil {
		t.Errorf("CheckCanonical(%s): %v", good, err)
	}
}

func TestIsMiniscope(t *testing.T) {
	// ∃x (p(x) ∧ q(y)) with y free is fine (y is not quantified outside).
	ok := calculus.Exists{Vars: []string{"x"}, Body: calculus.And{
		L: calculus.NewAtom("p", calculus.V("x")),
		R: calculus.NewAtom("q", calculus.V("y")),
	}}
	if !IsMiniscope(ok) {
		t.Errorf("%s should be miniscope (y is free)", ok)
	}
	// ∃y (t(y) ∧ ∃x (p(x) ∧ q(y))) is NOT: q(y) sits under ∃x with only
	// outside-quantified variables.
	bad := calculus.Exists{Vars: []string{"y"}, Body: calculus.And{
		L: calculus.NewAtom("t", calculus.V("y")),
		R: ok,
	}}
	if IsMiniscope(bad) {
		t.Errorf("%s should not be miniscope", bad)
	}
	// The paper's F₅ is miniscope: x governs y, no atom over only-outside vars.
	f5 := parser.MustParse(`exists x: p(x) and forall y: not q(y) or r(x, y)`).Body
	if !IsMiniscope(f5) {
		t.Errorf("F₅ must be miniscope: %s", f5)
	}
}

func TestReorderCanonicalOrder(t *testing.T) {
	a := parser.MustParse(`exists x: t(x) and p(x) and s(x, x)`).Body
	b := parser.MustParse(`exists x: s(x, x) and p(x) and t(x)`).Body
	if calculus.Equal(Reorder(a), Reorder(b)) != true {
		t.Fatalf("Reorder must normalize conjunct order:\n%s\n%s", Reorder(a), Reorder(b))
	}
	c := parser.MustParse(`exists x: p(x) or q(x) or t(x)`).Body
	d := parser.MustParse(`exists x: t(x) or p(x) or q(x)`).Body
	// Note: these normalize differently (Rule 14 splits), so compare the
	// Reorder of the raw bodies only.
	if !calculus.Equal(Reorder(c), Reorder(d)) {
		t.Fatalf("Reorder must normalize disjunct order")
	}
}

func TestStructuralKeyProperties(t *testing.T) {
	// Invariant under bound renaming.
	a := parser.MustParse(`exists x: p(x) and not q(x)`).Body
	b := parser.MustParse(`exists z9: p(z9) and not q(z9)`).Body
	if StructuralKey(a) != StructuralKey(b) {
		t.Fatal("key must ignore bound names")
	}
	// Invariant under ∧ order.
	c := parser.MustParse(`exists x: p(x) and t(x)`).Body
	d := parser.MustParse(`exists x: t(x) and p(x)`).Body
	if StructuralKey(c) != StructuralKey(d) {
		t.Fatal("key must ignore conjunct order")
	}
	// Invariant under quantifier-block variable order.
	e := parser.MustParse(`exists x, y: r(x, y)`).Body
	f := parser.MustParse(`exists y, x: r(x, y)`).Body
	if StructuralKey(e) != StructuralKey(f) {
		t.Fatal("key must ignore block variable order")
	}
	// Sensitive to free variable names and structure.
	g := parser.MustParse(`p(a)`).Body
	h := parser.MustParse(`p(b)`).Body
	if StructuralKey(g) == StructuralKey(h) {
		t.Fatal("key must distinguish free variables")
	}
	i := parser.MustParse(`exists x: p(x) and q(x)`).Body
	j := parser.MustParse(`exists x: p(x) or q(x)`).Body
	if StructuralKey(i) == StructuralKey(j) {
		t.Fatal("key must distinguish ∧ from ∨")
	}
}

func TestNormalizeStepBudget(t *testing.T) {
	e := Engine{MaxSteps: 1}
	_, err := e.Normalize(parser.MustParse(`forall x: p(x) => not not q(x)`))
	if err == nil || !strings.Contains(err.Error(), "noetherian") {
		t.Fatalf("tiny budget must trip the noetherian guard, got %v", err)
	}
}

// TestGeneratedVariablesAvoidCollision: fresh names never collide with
// existing ones, even adversarial inputs using the generator's pattern.
func TestGeneratedVariablesAvoidCollision(t *testing.T) {
	out := normalize(t, `exists x_1: p(x_1) and exists x: q(x) and (r(x, x) or t(x))`)
	vars := calculus.AllVars(out.Body)
	seen := map[string]bool{}
	for v := range vars {
		if seen[v] {
			t.Fatalf("duplicate variable %q", v)
		}
		seen[v] = true
	}
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatal(err)
	}
}
