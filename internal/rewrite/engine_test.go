package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/parser"
)

func normalize(t *testing.T, input string) parser.Query {
	t.Helper()
	q := parser.MustParse(input)
	out, err := Normalize(q)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", input, err)
	}
	return out
}

func TestNormalizeDoubleNegation(t *testing.T) {
	out := normalize(t, `exists x: p(x) and not not q(x)`)
	if strings.Contains(out.Body.String(), "¬¬") {
		t.Fatalf("double negation survived: %s", out.Body)
	}
}

func TestNormalizeDeMorgan(t *testing.T) {
	out := normalize(t, `exists x: p(x) and not (q(x) and r(x))`)
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
	// ¬(q ∧ r) must become ¬q ∨ ¬r, kept as a disjunctive filter.
	s := out.Body.String()
	if !strings.Contains(s, "∨") {
		t.Fatalf("expected a disjunctive filter in %s", s)
	}
}

func TestNormalizeNegatedComparison(t *testing.T) {
	out := normalize(t, `exists x, y: p(x, y) and not x = y`)
	if strings.Contains(out.Body.String(), "¬") {
		t.Fatalf("negated comparison survived: %s", out.Body)
	}
	if !strings.Contains(out.Body.String(), "≠") {
		t.Fatalf("expected ≠ in %s", out.Body)
	}
}

// TestNormalizeRule4 checks ∀x̄ R ⇒ F → ¬(∃x̄ R ∧ ¬F).
func TestNormalizeRule4(t *testing.T) {
	out := normalize(t, `forall x: student(x) => exists y: attends(x, y)`)
	not, ok := out.Body.(calculus.Not)
	if !ok {
		t.Fatalf("canonical form must be a negated existential, got %s", out.Body)
	}
	ex, ok := not.F.(calculus.Exists)
	if !ok {
		t.Fatalf("¬ must wrap an ∃, got %s", not.F)
	}
	// Body: student(x) ∧ ¬∃y attends(x,y).
	conjs := calculus.Conjuncts(ex.Body)
	if len(conjs) != 2 {
		t.Fatalf("body must have 2 conjuncts, got %s", ex.Body)
	}
}

// TestNormalizeRule5 checks ∀x̄ ¬R → ¬(∃x̄ R).
func TestNormalizeRule5(t *testing.T) {
	out := normalize(t, `forall x: not orphan(x)`)
	want := calculus.Not{F: calculus.Exists{Vars: []string{"x"}, Body: calculus.NewAtom("orphan", calculus.V("x"))}}
	if !calculus.AlphaEqual(out.Body, want) {
		t.Fatalf("got %s, want %s", out.Body, want)
	}
}

// TestNormalizeForallDisjunctionForm: a universal body written ¬R ∨ F is
// recognized as the range form.
func TestNormalizeForallOr(t *testing.T) {
	out := normalize(t, `forall y: not q(y) or r(y)`)
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
	// Equivalent to ¬∃y (q(y) ∧ ¬r(y)).
	want := parser.MustParse(`not exists y: q(y) and not r(y)`).Body
	if StructuralKey(out.Body) != StructuralKey(want) {
		t.Fatalf("got %s, want ≡ %s", out.Body, want)
	}
}

// TestNormalizeRules67 checks useless quantifications are removed.
func TestNormalizeRules67(t *testing.T) {
	// ∃x (∀y p(y) ⇒ q(y)): x useless (the paper's example after Rule 6).
	q := parser.Query{Body: calculus.Exists{Vars: []string{"x"}, Body: calculus.Forall{
		Vars: []string{"y"},
		Body: calculus.Implies{L: calculus.NewAtom("p", calculus.V("y")), R: calculus.NewAtom("q", calculus.V("y"))},
	}}}
	out, err := Normalize(q)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if strings.Contains(out.Body.String(), "x") {
		t.Fatalf("useless ∃x must vanish: %s", out.Body)
	}
	// ∃x,z p(x): z useless, x kept (Rule 7).
	q2 := parser.Query{Body: calculus.Exists{Vars: []string{"x", "z"}, Body: calculus.NewAtom("p", calculus.V("x"))}}
	out2, err := Normalize(q2)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	ex, ok := out2.Body.(calculus.Exists)
	if !ok || len(ex.Vars) != 1 {
		t.Fatalf("Rule 7 must shrink the block: %s", out2.Body)
	}
}

// TestNormalizeMiniscopePaperQ1 reproduces §2.2: the ¬enrolled(x,cs) atom
// moves out of the ∀y scope.
func TestNormalizeMiniscopePaperQ1(t *testing.T) {
	out := normalize(t, `exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`)
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
	if !IsMiniscope(out.Body) {
		t.Fatalf("not miniscope: %s", out.Body)
	}
	// enrolled must no longer appear under any quantifier binding y.
	calculus.Walk(out.Body, func(g calculus.Formula) {
		if ex, ok := g.(calculus.Exists); ok {
			inner := calculus.FreeVars(ex.Body)
			for _, v := range ex.Vars {
				_ = v
				_ = inner
			}
			calculus.Walk(ex.Body, func(h calculus.Formula) {
				if a, ok := h.(calculus.Atom); ok && a.Pred == "enrolled" {
					// enrolled may appear under ∃x (it mentions x) but not
					// under any quantifier over lecture variables.
					for _, v := range ex.Vars {
						if strings.HasPrefix(v, "y") {
							t.Fatalf("enrolled stayed under the lecture quantifier: %s", out.Body)
						}
					}
				}
			})
		}
	})
}

// TestNormalizeProducerDisjunctionSplits reproduces §2.3 Q₁ → Q₃: the
// producer disjunction distributes, the speaks filter disjunction stays.
func TestNormalizeProducerDisjunctionSplits(t *testing.T) {
	out := normalize(t, `exists x: ((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`)
	or, ok := out.Body.(calculus.Or)
	if !ok {
		t.Fatalf("producer disjunction must split the query, got %s", out.Body)
	}
	for _, d := range calculus.Disjuncts(or) {
		ex, ok := d.(calculus.Exists)
		if !ok {
			t.Fatalf("each branch must be quantified: %s", d)
		}
		// Each branch keeps its speaks-disjunction as a filter.
		found := false
		calculus.Walk(ex.Body, func(g calculus.Formula) {
			if o, ok := g.(calculus.Or); ok {
				for _, dd := range calculus.Disjuncts(o) {
					if a, ok := dd.(calculus.Atom); ok && a.Pred == "speaks" {
						found = true
					}
				}
			}
		})
		if !found {
			t.Fatalf("branch lost its disjunctive filter: %s", d)
		}
	}
}

// TestNormalizeFilterDisjunctionKept reproduces §2.3 Q₄: the disjunction
// inside the range is a filter (professor produces x) and must be kept.
func TestNormalizeFilterDisjunctionKept(t *testing.T) {
	out := normalize(t, `exists x: professor(x) and (member(x, "cs") or skill(x, "math")) and speaks(x, "french")`)
	if _, split := out.Body.(calculus.Or); split {
		t.Fatalf("filter disjunction must not split the query: %s", out.Body)
	}
	ex, ok := out.Body.(calculus.Exists)
	if !ok {
		t.Fatalf("got %T", out.Body)
	}
	hasOr := false
	for _, c := range calculus.Conjuncts(ex.Body) {
		if _, ok := c.(calculus.Or); ok {
			hasOr = true
		}
	}
	if !hasOr {
		t.Fatalf("the member∨skill filter disappeared: %s", out.Body)
	}
}

// TestNormalizeF1PaperSplit reproduces §2.2 F₁→F₄ on a closed variant:
// ∃y t(y) ∧ ∃x (p(x) ∧ (q(y) ∨ r(x))) — the q(y) atom must escape ∃x.
func TestNormalizeF1Split(t *testing.T) {
	out := normalize(t, `exists y: t(y) and exists x: p(x) and (q(y) or r(x))`)
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
	if !IsMiniscope(out.Body) {
		t.Fatalf("not miniscope: %s", out.Body)
	}
	// q must not remain inside a quantifier that also binds p's variable.
	calculus.Walk(out.Body, func(g calculus.Formula) {
		ex, ok := g.(calculus.Exists)
		if !ok {
			return
		}
		qIn, pIn := false, false
		calculus.Walk(ex.Body, func(h calculus.Formula) {
			if a, ok := h.(calculus.Atom); ok {
				switch a.Pred {
				case "q":
					for _, arg := range a.Args {
						for _, v := range ex.Vars {
							if arg.IsVar() && arg.Var == v {
								qIn = true
							}
						}
					}
				case "p":
					for _, arg := range a.Args {
						for _, v := range ex.Vars {
							if arg.IsVar() && arg.Var == v {
								pIn = true
							}
						}
					}
				}
			}
		})
		if qIn && pIn {
			t.Fatalf("q and p still share a quantifier: %s", out.Body)
		}
	})
}

// TestNormalizeGovernedBlocked reproduces §2.2 F₅:
// ∃x p(x) ∧ [∀y ¬q(y) ∨ r(x,y)] is already miniscope — x governs y, so
// q(y) must NOT move out.
func TestNormalizeGovernedBlocked(t *testing.T) {
	out := normalize(t, `exists x: p(x) and forall y: not q(y) or r(x, y)`)
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
	// The canonical form is ∃x p(x) ∧ ¬∃y (q(y) ∧ ¬r(x,y)); q stays inside.
	want := parser.MustParse(`exists x: p(x) and not exists y: q(y) and not r(x, y)`).Body
	if StructuralKey(out.Body) != StructuralKey(want) {
		t.Fatalf("got %s, want ≡ %s", out.Body, want)
	}
}

func TestNormalizeOpenQuery(t *testing.T) {
	out := normalize(t, `{ x, z | member(x, z) and not skill(x, "db") }`)
	if len(out.OpenVars) != 2 {
		t.Fatalf("open vars lost: %v", out.OpenVars)
	}
	if err := CheckCanonical(out.Body); err != nil {
		t.Fatalf("CheckCanonical: %v", err)
	}
}

func TestNormalizeRejectsUnsafe(t *testing.T) {
	bad := []string{
		`exists x1, x2: (r(x1) or s(x2)) and not p(x1, x2)`,
		`forall x: p(x)`,
		`{ x | not p(x) }`,
	}
	for _, s := range bad {
		if _, err := Normalize(parser.MustParse(s)); err == nil {
			t.Errorf("Normalize(%q) succeeded, want error", s)
		}
	}
}

// TestNoetherianRandom: Proposition 1 — normalization terminates. The step
// budget would return an error on divergence.
func TestNoetherianRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		q := randomQuery(rng, 3)
		var trace []Step
		e := &Engine{Trace: &trace}
		if _, err := e.Normalize(q); err != nil {
			// Validation rejections are fine; step-budget errors are not.
			if strings.Contains(err.Error(), "noetherian") {
				t.Fatalf("divergence on %s: %v", q, err)
			}
		}
	}
}

// TestConfluenceRandom: Proposition 2 — different rule application orders
// reach the same canonical form (up to bound renaming and ∧/∨ order).
func TestConfluenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tested := 0
	for i := 0; i < 120 && tested < 60; i++ {
		q := randomQuery(rng, 3)
		base, err := Normalize(q)
		if err != nil {
			continue
		}
		tested++
		baseKey := StructuralKey(base.Body)
		for trial := 0; trial < 4; trial++ {
			seed := rng.Int63()
			e := &Engine{Choose: func(cands []Candidate) int {
				return rand.New(rand.NewSource(seed + int64(len(cands)))).Intn(len(cands))
			}}
			out, err := e.Normalize(q)
			if err != nil {
				t.Fatalf("random-order Normalize(%s): %v", q, err)
			}
			if StructuralKey(out.Body) != baseKey {
				t.Fatalf("confluence violation on %s:\n  first: %s\n  other: %s", q, base.Body, out.Body)
			}
		}
	}
	if tested < 20 {
		t.Fatalf("too few valid random queries (%d); generator too restrictive", tested)
	}
}

// TestNormalizeIdempotent: normalizing a canonical form is a no-op.
func TestNormalizeIdempotent(t *testing.T) {
	inputs := []string{
		`exists x: student(x) and forall y: cs_lecture(y) => attends(x, y) and not enrolled(x, "cs")`,
		`exists x: ((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`,
		`forall x: student(x) => exists y: attends(x, y)`,
	}
	for _, s := range inputs {
		first := normalize(t, s)
		second, err := Normalize(first)
		if err != nil {
			t.Fatalf("re-normalize %q: %v", s, err)
		}
		if StructuralKey(first.Body) != StructuralKey(second.Body) {
			t.Errorf("not idempotent on %q:\n  1st: %s\n  2nd: %s", s, first.Body, second.Body)
		}
	}
}

// randomQuery builds small random formulas over a fixed vocabulary; many
// are invalid (unsafe) and get rejected by validation, which is fine.
func randomQuery(rng *rand.Rand, depth int) parser.Query {
	f := randomFormula(rng, depth, []string{})
	return parser.Query{Body: f}
}

var randPreds = []struct {
	name  string
	arity int
}{
	{"p", 1}, {"q", 1}, {"r", 2}, {"s", 2}, {"t", 1},
}

func randomFormula(rng *rand.Rand, depth int, scope []string) calculus.Formula {
	if depth <= 0 || (len(scope) > 0 && rng.Intn(3) == 0) {
		return randomAtom(rng, scope)
	}
	switch rng.Intn(7) {
	case 0:
		return calculus.And{L: randomFormula(rng, depth-1, scope), R: randomFormula(rng, depth-1, scope)}
	case 1:
		return calculus.Or{L: randomFormula(rng, depth-1, scope), R: randomFormula(rng, depth-1, scope)}
	case 2:
		return calculus.Not{F: randomFormula(rng, depth-1, scope)}
	case 3, 4:
		v := freshRandVar(rng, scope)
		inner := append(append([]string{}, scope...), v)
		// Give the variable a range so validation often passes.
		rangeAtom := randomRangeAtom(rng, v, scope)
		return calculus.Exists{Vars: []string{v}, Body: calculus.And{
			L: rangeAtom,
			R: randomFormula(rng, depth-1, inner),
		}}
	default:
		v := freshRandVar(rng, scope)
		inner := append(append([]string{}, scope...), v)
		rangeAtom := randomRangeAtom(rng, v, scope)
		return calculus.Forall{Vars: []string{v}, Body: calculus.Implies{
			L: rangeAtom,
			R: randomFormula(rng, depth-1, inner),
		}}
	}
}

func randomRangeAtom(rng *rand.Rand, v string, scope []string) calculus.Formula {
	p := randPreds[rng.Intn(len(randPreds))]
	args := make([]calculus.Term, p.arity)
	vPlaced := false
	for i := range args {
		if !vPlaced && (i == p.arity-1 || rng.Intn(2) == 0) {
			args[i] = calculus.V(v)
			vPlaced = true
		} else if len(scope) > 0 && rng.Intn(2) == 0 {
			args[i] = calculus.V(scope[rng.Intn(len(scope))])
		} else {
			args[i] = calculus.CStr(string(rune('a' + rng.Intn(3))))
		}
	}
	return calculus.Atom{Pred: p.name, Args: args}
}

func randomAtom(rng *rand.Rand, scope []string) calculus.Formula {
	p := randPreds[rng.Intn(len(randPreds))]
	args := make([]calculus.Term, p.arity)
	for i := range args {
		if len(scope) > 0 && rng.Intn(4) != 0 {
			args[i] = calculus.V(scope[rng.Intn(len(scope))])
		} else {
			args[i] = calculus.CStr(string(rune('a' + rng.Intn(3))))
		}
	}
	return calculus.Atom{Pred: p.name, Args: args}
}

func freshRandVar(rng *rand.Rand, scope []string) string {
	return string(rune('u'+len(scope))) + string(rune('0'+rng.Intn(10)))
}

// TestCanonicalInvariantsRandom: every successfully normalized random
// query passes CheckCanonical and re-validates (the canonical form is
// itself a safe query).
func TestCanonicalInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 400 && checked < 150; i++ {
		q := randomQuery(rng, 3)
		out, err := Normalize(q)
		if err != nil {
			continue
		}
		checked++
		if err := CheckCanonical(out.Body); err != nil {
			t.Fatalf("canonical form of %s fails invariants: %v", q, err)
		}
		if _, err := Normalize(out); err != nil {
			t.Fatalf("canonical form of %s does not re-normalize: %v", q, err)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d random queries were valid", checked)
	}
}
