// Package rewrite implements Phase 1 of the paper: the normalization of
// general calculus queries into the canonical form, defined by the fourteen
// rewriting rules of §2 (plus two bookkeeping rules the paper leaves
// implicit: pushing negation into comparison atoms, and recognizing the
// range form of a universal body written as a disjunction ¬R ∨ F).
//
// The canonical form reached at the fixpoint has the properties Phase 2
// (internal/translate) relies on:
//
//   - no universal quantifiers and no implications — Rules 4 and 5 reduce
//     them to negated existential subformulas;
//   - no useless quantified variables (Rules 6 and 7);
//   - miniscope form — no quantified subformula contains an atom over only
//     outside variables (Rules 8 and 9);
//   - producer disjunctions distributed out (Rules 10-14), disjunctive
//     FILTERS kept in place for the constrained outer-join translation.
//
// The rewriting system is noetherian and confluent modulo the
// associativity/commutativity of ∧ and ∨ and the renaming of bound
// variables (Propositions 1 and 2); the package's tests check both
// properties empirically on randomized formulas, and the engine finishes
// normal forms with a canonical reordering pass so that equal queries have
// syntactically equal canonical forms.
package rewrite

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/ranges"
)

// Rule identifies one of the rewriting rules.
type Rule int

// The rewriting rules of §2. RuleNegCmp and RuleForallOr are auxiliary:
// the former folds ¬(t₁ op t₂) into the complemented comparison, the latter
// rewrites a universal body ¬R ∨ F into the range form R ⇒ F expected by
// Rule 4 (the paper assumes ranges are written with ⇒).
const (
	Rule1        Rule = 1  // ¬¬F → F
	Rule2        Rule = 2  // ¬(F₁ ∧ F₂) → ¬F₁ ∨ ¬F₂
	Rule3        Rule = 3  // ¬(F₁ ∨ F₂) → ¬F₁ ∧ ¬F₂
	Rule4        Rule = 4  // ∀x̄ R ⇒ F → ¬(∃x̄ R ∧ ¬F)
	Rule5        Rule = 5  // ∀x̄ ¬R → ¬(∃x̄ R)
	Rule6        Rule = 6  // ∃x̄ F → F, no xᵢ in F
	Rule7        Rule = 7  // ∃x̄ F → ∃x̄' F, dropping unused xᵢ
	Rule8        Rule = 8  // ∃x̄ (F₁ θ F₂) → F₁ θ (∃x̄ F₂), no xᵢ in F₁
	Rule9        Rule = 9  // ∃x̄ (F₁ θ F₂) → (∃x̄ F₁) θ F₂, no xᵢ in F₂
	Rule10       Rule = 10 // ∃x̄ (F₁∨F₂) ∧ F₃ → distribute, guard (†)
	Rule11       Rule = 11 // ∃x̄ F₁ ∧ (F₂∨F₃) → distribute, guard (†)
	Rule12       Rule = 12 // (P₁∨P₂) ∧ F → distribute, in range, not filter
	Rule13       Rule = 13 // F ∧ (P₁∨P₂) → distribute, in range, not filter
	Rule14       Rule = 14 // ∃x̄ (R₁∨R₂) → (∃x̄ⱼ R₁) ∨ (∃x̄ₖ R₂)
	RuleNegCmp   Rule = 15 // ¬(t₁ op t₂) → t₁ op̄ t₂
	RuleForallOr Rule = 16 // ∀x̄ (¬R ∨ F) → ∀x̄ (R ⇒ F)
)

// String names the rule for traces.
func (r Rule) String() string {
	switch r {
	case RuleNegCmp:
		return "Rule ¬cmp"
	case RuleForallOr:
		return "Rule ∀∨⇒"
	default:
		return fmt.Sprintf("Rule %d", int(r))
	}
}

// Candidate is one applicable rewrite at one position: applying it yields
// the whole formula with that position rewritten.
type Candidate struct {
	Rule  Rule
	At    string // rendering of the rewritten subformula, for traces
	Apply func() calculus.Formula
}

// collect gathers every applicable rewrite in f. openVars is the set of
// variables produced at the root (the open query's variables); it lets
// Rules 12/13 fire in the body of an open query, which is itself a range.
func collect(f calculus.Formula, openVars []string, gen *calculus.NameGen) []Candidate {
	var out []Candidate
	id := func(g calculus.Formula) calculus.Formula { return g }
	collectAt(f, id, gen, &out)
	// The open-query body is a range for the open variables: Rules 12/13
	// (and 10/11) apply to its top-level conjunction exactly as they do
	// under a quantifier, but Rules 6/7/14 must not touch the root.
	if len(openVars) > 0 {
		collectConjDistribution(f, openVars, id, gen, &out)
	}
	return out
}

// collectAt walks f, accumulating candidates; rebuild embeds a replacement
// for the current node into the whole formula.
func collectAt(f calculus.Formula, rebuild func(calculus.Formula) calculus.Formula, gen *calculus.NameGen, out *[]Candidate) {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return
	case calculus.Not:
		collectNot(n, rebuild, out)
		collectAt(n.F, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Not{F: g})
		}, gen, out)
	case calculus.And:
		collectAt(n.L, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.And{L: g, R: n.R})
		}, gen, out)
		collectAt(n.R, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.And{L: n.L, R: g})
		}, gen, out)
	case calculus.Or:
		collectAt(n.L, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Or{L: g, R: n.R})
		}, gen, out)
		collectAt(n.R, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Or{L: n.L, R: g})
		}, gen, out)
	case calculus.Implies:
		// Implications occur only as ranges directly under ∀ (handled
		// there); walk the sides for nested redexes anyway.
		collectAt(n.L, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Implies{L: g, R: n.R})
		}, gen, out)
		collectAt(n.R, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Implies{L: n.L, R: g})
		}, gen, out)
	case calculus.Exists:
		collectExists(n, rebuild, gen, out)
		collectAt(n.Body, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Exists{Vars: n.Vars, Body: g})
		}, gen, out)
	case calculus.Forall:
		collectForall(n, rebuild, out)
		collectAt(n.Body, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Forall{Vars: n.Vars, Body: g})
		}, gen, out)
	default:
		panic(fmt.Sprintf("rewrite: unknown formula %T", f))
	}
}

// collectNot contributes Rules 1-3 and ¬cmp. Negated quantifications are
// deliberately left untouched (§2.1: "they do not transform negated
// quantifications").
func collectNot(n calculus.Not, rebuild func(calculus.Formula) calculus.Formula, out *[]Candidate) {
	switch inner := n.F.(type) {
	case calculus.Not:
		*out = append(*out, Candidate{Rule: Rule1, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(inner.F)
		}})
	case calculus.And:
		*out = append(*out, Candidate{Rule: Rule2, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(calculus.Or{L: calculus.Not{F: inner.L}, R: calculus.Not{F: inner.R}})
		}})
	case calculus.Or:
		*out = append(*out, Candidate{Rule: Rule3, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(calculus.And{L: calculus.Not{F: inner.L}, R: calculus.Not{F: inner.R}})
		}})
	case calculus.Cmp:
		*out = append(*out, Candidate{Rule: RuleNegCmp, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(calculus.Cmp{Left: inner.Left, Op: inner.Op.Negate(), Right: inner.Right})
		}})
	}
}

// collectForall contributes Rules 4, 5 and the auxiliary ∀∨⇒ rule.
func collectForall(n calculus.Forall, rebuild func(calculus.Formula) calculus.Formula, out *[]Candidate) {
	switch body := n.Body.(type) {
	case calculus.Implies:
		*out = append(*out, Candidate{Rule: Rule4, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(calculus.Not{F: calculus.Exists{
				Vars: n.Vars,
				Body: calculus.And{L: body.L, R: calculus.Not{F: body.R}},
			}})
		}})
	case calculus.Not:
		*out = append(*out, Candidate{Rule: Rule5, At: n.String(), Apply: func() calculus.Formula {
			return rebuild(calculus.Not{F: calculus.Exists{Vars: n.Vars, Body: body.F}})
		}})
	case calculus.Or:
		// ∀x̄ (¬R₁ ∨ … ∨ ¬Rₖ ∨ F₁ ∨ … ∨ Fₘ) with the Rᵢ together ranging x̄
		// is the range form ∀x̄ (R₁ ∧ … ∧ Rₖ) ⇒ (F₁ ∨ … ∨ Fₘ).
		disjuncts := calculus.Disjuncts(body)
		var rangesPart, rest []calculus.Formula
		for _, d := range disjuncts {
			if neg, ok := d.(calculus.Not); ok {
				rangesPart = append(rangesPart, neg.F)
			} else {
				rest = append(rest, d)
			}
		}
		if len(rangesPart) == 0 {
			return
		}
		r := calculus.AndAll(rangesPart...)
		if !ranges.IsRangeFor(r, n.Vars) {
			return
		}
		*out = append(*out, Candidate{Rule: RuleForallOr, At: n.String(), Apply: func() calculus.Formula {
			if len(rest) == 0 {
				return rebuild(calculus.Forall{Vars: n.Vars, Body: calculus.Not{F: r}})
			}
			return rebuild(calculus.Forall{Vars: n.Vars, Body: calculus.Implies{L: r, R: calculus.OrAll(rest...)}})
		}})
	}
}

// collectExists contributes Rules 6-14 at an existential node.
func collectExists(n calculus.Exists, rebuild func(calculus.Formula) calculus.Formula, gen *calculus.NameGen, out *[]Candidate) {
	free := calculus.FreeVars(n.Body)

	// Rules 6 and 7: drop quantified variables that do not occur.
	var used, unused []string
	for _, v := range n.Vars {
		if free.Has(v) {
			used = append(used, v)
		} else {
			unused = append(unused, v)
		}
	}
	if len(unused) > 0 {
		if len(used) == 0 {
			*out = append(*out, Candidate{Rule: Rule6, At: n.String(), Apply: func() calculus.Formula {
				return rebuild(n.Body)
			}})
		} else {
			*out = append(*out, Candidate{Rule: Rule7, At: n.String(), Apply: func() calculus.Formula {
				return rebuild(calculus.Exists{Vars: used, Body: n.Body})
			}})
		}
		return // shrink the quantifier first; other rules resume after
	}

	switch body := n.Body.(type) {
	case calculus.And:
		// Rules 8/9 (θ = ∧), generalized to the flattened conjunct list:
		// every conjunct free of the quantified variables moves out.
		conjs := calculus.Conjuncts(body)
		qvars := calculus.NewVarSet(n.Vars...)
		var movable, fixed []calculus.Formula
		for _, c := range conjs {
			if calculus.FreeVars(c).Intersects(qvars) {
				fixed = append(fixed, c)
			} else {
				movable = append(movable, c)
			}
		}
		if len(movable) > 0 && len(fixed) > 0 {
			*out = append(*out, Candidate{Rule: Rule8, At: n.String(), Apply: func() calculus.Formula {
				return rebuild(calculus.And{
					L: calculus.AndAll(movable...),
					R: calculus.Exists{Vars: n.Vars, Body: calculus.AndAll(fixed...)},
				})
			}})
			return
		}
		if len(movable) > 0 && len(fixed) == 0 {
			// Everything moves out: this is Rule 6 in conjunction form,
			// already covered above (no variable occurs), unreachable.
			return
		}
		collectConjDistribution(body, n.Vars, func(g calculus.Formula) calculus.Formula {
			return rebuild(calculus.Exists{Vars: n.Vars, Body: g})
		}, gen, out)
	case calculus.Or:
		// Rule 14 (subsuming the θ = ∨ case of Rules 8/9): the existential
		// quantifier distributes over the disjunction, each disjunct
		// keeping the variables it actually uses, freshly renamed to keep
		// bound variables standardized apart (the paper's x → x₁, x₂).
		disjuncts := calculus.Disjuncts(body)
		*out = append(*out, Candidate{Rule: Rule14, At: n.String(), Apply: func() calculus.Formula {
			parts := make([]calculus.Formula, len(disjuncts))
			for i, d := range disjuncts {
				df := calculus.FreeVars(d)
				var keep []string
				for _, v := range n.Vars {
					if df.Has(v) {
						keep = append(keep, v)
					}
				}
				if len(keep) == 0 {
					parts[i] = d
					continue
				}
				sub := make(map[string]calculus.Term, len(keep))
				renamed := make([]string, len(keep))
				for j, v := range keep {
					fresh := gen.Fresh(v)
					renamed[j] = fresh
					sub[v] = calculus.V(fresh)
				}
				parts[i] = calculus.Exists{Vars: renamed, Body: calculus.Subst(d, sub)}
			}
			return rebuild(calculus.OrAll(parts...))
		}})
	}
}

// collectConjDistribution contributes Rules 10-13: distributing a
// disjunctive conjunct over its siblings inside a range context (the body
// of ∃x̄, or the body of an open query). body must be the conjunction; vars
// are the variables the context produces.
func collectConjDistribution(body calculus.Formula, vars []string, rebuildBody func(calculus.Formula) calculus.Formula, gen *calculus.NameGen, out *[]Candidate) {
	and, ok := body.(calculus.And)
	if !ok {
		return
	}
	conjs := calculus.Conjuncts(and)
	qvars := calculus.NewVarSet(vars...)
	governed := calculus.GovernedBy(calculus.Exists{Vars: vars, Body: body}, vars)
	blocked := make(calculus.VarSet)
	blocked.AddAll(qvars)
	blocked.AddAll(governed)

	// Designate producers deterministically: scanning left to right, a
	// conjunct that binds a still-unbound quantified variable becomes a
	// producer; the rest are filters. The paper's canonical form is unique
	// "up to the choice of the producers" (§2.4) — this scan is our choice.
	isProducer := make([]bool, len(conjs))
	covered := make(calculus.VarSet)
	for i, c := range conjs {
		adds := ranges.ProducesIn(c, qvars)
		for v := range adds {
			if !covered.Has(v) {
				isProducer[i] = true
			}
		}
		if isProducer[i] {
			covered.AddAll(adds)
		}
	}

	for i, c := range conjs {
		d, isOr := c.(calculus.Or)
		if !isOr {
			continue
		}
		siblings := make([]calculus.Formula, 0, len(conjs)-1)
		for j, s := range conjs {
			if j != i {
				siblings = append(siblings, s)
			}
		}

		rule := Rule(0)
		// Rules 12/13: a disjunction designated as a producer is not a
		// filter; it must distribute out of the range so that each branch
		// can be searched independently (the paper's Q₂ → Q₃).
		if isProducer[i] {
			if i == 0 {
				rule = Rule12
			} else {
				rule = Rule13
			}
		} else if guardDagger(d, blocked) {
			// Rules 10/11, guard (†): a disjunct contains an atom over
			// neither quantified nor governed variables; distributing lets
			// Rules 8/9 move it out afterwards (miniscoping).
			if i == 0 {
				rule = Rule10
			} else {
				rule = Rule11
			}
		}
		if rule == 0 {
			continue
		}
		dd := calculus.Disjuncts(d)
		sibs := siblings
		*out = append(*out, Candidate{Rule: rule, At: body.String(), Apply: func() calculus.Formula {
			parts := make([]calculus.Formula, len(dd))
			for k, disj := range dd {
				conj := make([]calculus.Formula, 0, len(sibs)+1)
				conj = append(conj, disj)
				// Duplicate the siblings with bound variables freshly
				// renamed so the copies stay standardized apart.
				for _, s := range sibs {
					conj = append(conj, calculus.RenameBound(s, gen))
				}
				parts[k] = calculus.AndAll(conj...)
			}
			return rebuildBody(calculus.OrAll(parts...))
		}})
	}
}

// guardDagger implements (†): some disjunct of d contains an atomic
// subformula mentioning none of the blocked variables (the quantified
// variables and the variables they govern).
func guardDagger(d calculus.Or, blocked calculus.VarSet) bool {
	for _, disj := range calculus.Disjuncts(d) {
		found := false
		calculus.Walk(disj, func(g calculus.Formula) {
			if found {
				return
			}
			var vs calculus.VarSet
			switch a := g.(type) {
			case calculus.Atom:
				vs = calculus.FreeVars(a)
			case calculus.Cmp:
				vs = calculus.FreeVars(a)
			default:
				return
			}
			if !vs.Intersects(blocked) {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}
