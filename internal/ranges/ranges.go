// Package ranges implements the syntactic safety machinery of §2.1 and §2.3
// of the paper: ranges (Definition 1), closed formulas with restricted
// quantifications (Definition 2), open formulas with restricted variables
// (Definition 3) and the producer/filter decomposition (Definition 5).
//
// The central primitive is ProducesIn: the set of variables a formula can
// bind when evaluated as a producer, with every other free variable treated
// as a parameter supplied by the enclosing scope. The recursive clauses
// mirror Definition 1:
//
//	atom                      produces its variable arguments        (case 1)
//	R₁ ∧ R₂                   produces the union                     (cases 2, 4)
//	R₁ ∨ R₂                   produces the intersection              (case 3)
//	∃y̅ R                      produces R's variables minus y̅         (case 5)
//	¬F, comparisons, ∀        produce nothing
package ranges

import (
	"fmt"

	"repro/internal/calculus"
)

// ProducesIn returns the subset of candidates that f can bind when used as
// a producer. Quantified variables inside f shadow candidates of the same
// name (the rewrite engine standardizes bound variables apart, so shadowing
// is rare but handled).
func ProducesIn(f calculus.Formula, candidates calculus.VarSet) calculus.VarSet {
	switch n := f.(type) {
	case calculus.Atom:
		out := make(calculus.VarSet)
		for _, t := range n.Args {
			if t.IsVar() && candidates.Has(t.Var) {
				out.Add(t.Var)
			}
		}
		return out
	case calculus.Cmp, calculus.Not, calculus.Forall, calculus.Implies:
		return make(calculus.VarSet)
	case calculus.And:
		out := ProducesIn(n.L, candidates)
		out.AddAll(ProducesIn(n.R, candidates))
		return out
	case calculus.Or:
		l := ProducesIn(n.L, candidates)
		r := ProducesIn(n.R, candidates)
		out := make(calculus.VarSet)
		for v := range l {
			if r.Has(v) {
				out.Add(v)
			}
		}
		return out
	case calculus.Exists:
		inner := make(calculus.VarSet)
		inner.AddAll(candidates)
		for _, v := range n.Vars {
			delete(inner, v)
		}
		return ProducesIn(n.Body, inner)
	default:
		panic(fmt.Sprintf("ranges: unknown formula %T", f))
	}
}

// IsRangeFor reports whether f is a range for every one of vars
// (Definition 1, with free variables outside vars read as parameters bound
// by the enclosing scope).
func IsRangeFor(f calculus.Formula, vars []string) bool {
	cand := calculus.NewVarSet(vars...)
	return ProducesIn(f, cand).Equal(cand)
}

// IsFilter reports whether f filters rather than produces: all its free
// variables are already bound by the enclosing producers (Definition 5).
func IsFilter(f calculus.Formula, bound calculus.VarSet) bool {
	return bound.ContainsAll(calculus.FreeVars(f))
}

// Validate checks that a formula has restricted quantifications
// (Definition 2): every existential subformula ∃x̄ B binds each xᵢ through a
// producer in B, and every universal subformula has one of the range forms
// ∀x̄ ¬R or ∀x̄ R ⇒ F with R a range for x̄. The free variables of the whole
// formula must be in openVars (nil for closed queries); for open queries
// each open variable must itself be produced (Definition 3).
//
// Validate reports the first violation with the offending subformula, e.g.
// the paper's rejected F₁: ∃x₁x₂ [r(x₁) ∨ s(x₂)] ∧ ¬p(x₁,x₂).
func Validate(f calculus.Formula, openVars []string) error {
	free := calculus.FreeVars(f)
	declared := calculus.NewVarSet(openVars...)
	if !declared.ContainsAll(free) {
		for _, v := range free.Sorted() {
			if !declared.Has(v) {
				return errf("ranges: variable %q is free but not declared", v)
			}
		}
	}
	if len(openVars) > 0 {
		if !free.Equal(declared) {
			return errf("ranges: open variables %v must all occur in the formula (free: %v)", openVars, free.Sorted())
		}
		produced := ProducesIn(f, declared)
		if !produced.Equal(declared) {
			return errf("ranges: open query does not restrict variables %v in %s", missing(declared, produced), f)
		}
	}
	return validateQuantifiers(f)
}

func validateQuantifiers(f calculus.Formula) error {
	switch n := f.(type) {
	case calculus.Atom, calculus.Cmp:
		return nil
	case calculus.Not:
		return validateQuantifiers(n.F)
	case calculus.And:
		if err := validateQuantifiers(n.L); err != nil {
			return err
		}
		return validateQuantifiers(n.R)
	case calculus.Or:
		if err := validateQuantifiers(n.L); err != nil {
			return err
		}
		return validateQuantifiers(n.R)
	case calculus.Implies:
		if err := validateQuantifiers(n.L); err != nil {
			return err
		}
		return validateQuantifiers(n.R)
	case calculus.Exists:
		want := occurring(n.Vars, n.Body) // useless variables fall to Rules 6/7
		got := ProducesIn(n.Body, want)
		if !got.Equal(want) {
			return errf("ranges: existential variables %v have no range in %s", missing(want, got), f)
		}
		return validateQuantifiers(n.Body)
	case calculus.Forall:
		want := occurring(n.Vars, n.Body)
		switch body := n.Body.(type) {
		case calculus.Not:
			// ∀x̄ ¬R[x̄]
			got := ProducesIn(body.F, want)
			if !got.Equal(want) {
				return errf("ranges: universal variables %v have no range in %s", missing(want, got), f)
			}
			return validateQuantifiers(body.F)
		case calculus.Implies:
			// ∀x̄ R[x̄] ⇒ F
			got := ProducesIn(body.L, want)
			if !got.Equal(want) {
				return errf("ranges: universal variables %v have no range in %s", missing(want, got), f)
			}
			if err := validateQuantifiers(body.L); err != nil {
				return err
			}
			return validateQuantifiers(body.R)
		case calculus.Or:
			// ∀x̄ (¬R₁ ∨ … ∨ ¬Rₖ ∨ F₁ ∨ …): the negated disjuncts together
			// must range x̄ (the ¬R ∨ F spelling of the range implication,
			// folded back by the ∀∨⇒ rule during normalization).
			var rangeParts []calculus.Formula
			for _, d := range calculus.Disjuncts(body) {
				if neg, ok := d.(calculus.Not); ok {
					rangeParts = append(rangeParts, neg.F)
				}
			}
			if len(rangeParts) > 0 {
				got := ProducesIn(calculus.AndAll(rangeParts...), want)
				if got.Equal(want) {
					for _, d := range calculus.Disjuncts(body) {
						if err := validateQuantifiers(d); err != nil {
							return err
						}
					}
					return nil
				}
			}
			return errf("ranges: universal quantification must carry a range for %v, got %s", want.Sorted(), f)
		default:
			return errf("ranges: universal quantification must have the form ∀x̄ ¬R or ∀x̄ R ⇒ F, got %s", f)
		}
	default:
		panic(fmt.Sprintf("ranges: unknown formula %T", f))
	}
}

// occurring returns the subset of vars free in body.
func occurring(vars []string, body calculus.Formula) calculus.VarSet {
	free := calculus.FreeVars(body)
	out := make(calculus.VarSet)
	for _, v := range vars {
		if free.Has(v) {
			out.Add(v)
		}
	}
	return out
}

func missing(want, got calculus.VarSet) []string {
	var out []string
	for _, v := range want.Sorted() {
		if !got.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// SplitProducerFilter partitions the top-level conjuncts of a body into
// producers and filters for the given variables (Definition 5): scanning
// left to right, a conjunct that binds a still-unbound variable (or that a
// later producer needs, transitively) joins the producer side; conjuncts
// whose free variables are covered become filters. It returns an error if
// the conjunction cannot bind every variable.
//
// Parameters (outer-bound variables) may appear free in any conjunct.
func SplitProducerFilter(conjuncts []calculus.Formula, vars []string) (producers, filters []calculus.Formula, err error) {
	need := calculus.NewVarSet(vars...)
	covered := make(calculus.VarSet)
	for _, c := range conjuncts {
		adds := ProducesIn(c, need)
		newVar := false
		for v := range adds {
			if !covered.Has(v) {
				newVar = true
			}
		}
		if newVar {
			producers = append(producers, c)
			covered.AddAll(adds)
		} else {
			filters = append(filters, c)
		}
	}
	if !covered.Equal(need) {
		return nil, nil, errf("ranges: conjunction does not produce %v", missing(need, covered))
	}
	return producers, filters, nil
}
