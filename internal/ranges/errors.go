package ranges

import "fmt"

// Error is a safety rejection under Definitions 1–3: the query is
// syntactically well-formed but not range-restricted, so it has no safe
// evaluation. Callers (core) distinguish it from parse and planner errors
// with errors.As.
type Error struct {
	msg string
}

func (e *Error) Error() string { return e.msg }

// errf builds a typed safety error.
func errf(format string, args ...any) error {
	return &Error{msg: fmt.Sprintf(format, args...)}
}
