package ranges

import (
	"testing"

	"repro/internal/calculus"
	"repro/internal/parser"
)

func body(t *testing.T, input string) calculus.Formula {
	t.Helper()
	f, err := parser.ParseFormula(input)
	if err != nil {
		t.Fatalf("parse %q: %v", input, err)
	}
	return f
}

func TestProducesAtom(t *testing.T) {
	f := body(t, `member(x, z)`)
	got := ProducesIn(f, calculus.NewVarSet("x", "z", "w"))
	if !got.Equal(calculus.NewVarSet("x", "z")) {
		t.Fatalf("ProducesIn = %v", got.Sorted())
	}
}

func TestProducesAtomWithConstant(t *testing.T) {
	// lecture(y, "db") ranges y; the constant acts as a selection.
	f := body(t, `lecture(y, "db")`)
	if !IsRangeFor(f, []string{"y"}) {
		t.Fatal("atom with constant must range its variables")
	}
}

func TestProducesConjunction(t *testing.T) {
	// Definition 1 case 2: r(x) ∧ s(y) ranges {x,y}.
	f := body(t, `r(x) and s(y)`)
	if !IsRangeFor(f, []string{"x", "y"}) {
		t.Fatal("conjunction of ranges must range the union")
	}
}

func TestProducesDisjunctionIntersects(t *testing.T) {
	// Definition 1 case 3: r(x) ∨ s(x) ranges x...
	f := body(t, `r(x) or s(x)`)
	if !IsRangeFor(f, []string{"x"}) {
		t.Fatal("r(x) ∨ s(x) must range x")
	}
	// ...but the paper's rejected F₁ body [r(x1) ∨ s(x2)] ranges neither.
	g := body(t, `r(x1) or s(x2)`)
	got := ProducesIn(g, calculus.NewVarSet("x1", "x2"))
	if len(got) != 0 {
		t.Fatalf("r(x1) ∨ s(x2) must produce nothing, got %v", got.Sorted())
	}
}

func TestProducesNegationNothing(t *testing.T) {
	f := body(t, `not p(x)`)
	if got := ProducesIn(f, calculus.NewVarSet("x")); len(got) != 0 {
		t.Fatalf("negation produces nothing, got %v", got.Sorted())
	}
}

func TestProducesExistsProjects(t *testing.T) {
	// Definition 1 case 5: ∃y,z p(x,y,z) ranges x (a projection).
	f := body(t, `exists y, z: p(x, y, z)`)
	if !IsRangeFor(f, []string{"x"}) {
		t.Fatal("existential projection must range x")
	}
}

func TestProducesRangeWithLocalFilter(t *testing.T) {
	// Definition 1 case 4: R ∧ F with quantified F local to the range.
	f := body(t, `professor(x) and (forall y: roman(y) => speaks(x, y))`)
	if !IsRangeFor(f, []string{"x"}) {
		t.Fatal("range with quantified filter must still range x")
	}
}

func TestValidateClosedOK(t *testing.T) {
	// §3.2's query Q is a closed formula with restricted quantifications.
	f := body(t, `exists x, y: enrolled(x, y) and y != "cs" and makes(x, "PhD") and exists z: lecture(z, "cs") and attends(x, z)`)
	if err := Validate(f, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsPaperF1(t *testing.T) {
	// §2.1 rejects F₁: ∃x1x2 [r(x1) ∨ s(x2)] ∧ ¬p(x1,x2).
	f := body(t, `exists x1, x2: (r(x1) or s(x2)) and not p(x1, x2)`)
	if err := Validate(f, nil); err == nil {
		t.Fatal("the paper's F₁ must be rejected")
	}
}

func TestValidateUniversalForms(t *testing.T) {
	ok := []string{
		`forall x: student(x) => exists y: attends(x, y)`,
		`forall x: not orphan(x)`,
		`forall x, y: enrolled(x, y) => registered(x)`,
	}
	for _, s := range ok {
		if err := Validate(body(t, s), nil); err != nil {
			t.Errorf("Validate(%q): %v", s, err)
		}
	}
	bad := []string{
		// No range on the left of the implication.
		`forall x: x != "a" => p(x)`,
		// Universal without range form at all (bare atom body).
		`forall x: p(x)`,
	}
	for _, s := range bad {
		if err := Validate(body(t, s), nil); err == nil {
			t.Errorf("Validate(%q) succeeded, want error", s)
		}
	}
}

func TestValidateFreeVariable(t *testing.T) {
	f := body(t, `student(x)`)
	if err := Validate(f, nil); err == nil {
		t.Fatal("closed validation must reject free variables")
	}
	if err := Validate(f, []string{"x"}); err != nil {
		t.Fatalf("open validation must accept declared variables: %v", err)
	}
}

func TestValidateOpenUnproduced(t *testing.T) {
	// {x | ¬p(x)} is unsafe under the closed world without a range.
	f := body(t, `not p(x)`)
	if err := Validate(f, []string{"x"}); err == nil {
		t.Fatal("negated open query without range must be rejected")
	}
}

func TestValidateOpenDisjunction(t *testing.T) {
	// Definition 3 case 2: F₁ ∨ F₂ open with the same restricted variables.
	f := body(t, `student(x) or prof(x)`)
	if err := Validate(f, []string{"x"}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := body(t, `student(x) or tenured(y)`)
	if err := Validate(g, []string{"x", "y"}); err == nil {
		t.Fatal("mismatched disjuncts must be rejected")
	}
}

func TestValidateDeclaredButAbsent(t *testing.T) {
	f := body(t, `student(x)`)
	if err := Validate(f, []string{"x", "y"}); err == nil {
		t.Fatal("declared variable absent from the formula must be rejected")
	}
}

func TestIsFilter(t *testing.T) {
	f := body(t, `speaks(x, "french") or speaks(x, "german")`)
	if !IsFilter(f, calculus.NewVarSet("x")) {
		t.Fatal("disjunction over bound x is a filter")
	}
	if IsFilter(f, calculus.NewVarSet("y")) {
		t.Fatal("x unbound: not a filter")
	}
}

func TestSplitProducerFilter(t *testing.T) {
	// §2.3 Q₁: range [(student ∧ makes) ∨ prof] produces, speaks-disjunction filters.
	f := body(t, `((student(x) and makes(x, "PhD")) or prof(x)) and (speaks(x, "french") or speaks(x, "german"))`)
	conjs := calculus.Conjuncts(f)
	prods, filts, err := SplitProducerFilter(conjs, []string{"x"})
	if err != nil {
		t.Fatalf("SplitProducerFilter: %v", err)
	}
	if len(prods) != 1 || len(filts) != 1 {
		t.Fatalf("split = %d producers, %d filters; want 1, 1", len(prods), len(filts))
	}
	if _, ok := filts[0].(calculus.Or); !ok {
		t.Fatalf("filter must be the speaks disjunction, got %s", filts[0])
	}
}

func TestSplitProducerFilterUnproduced(t *testing.T) {
	f := body(t, `p(x) and q(x)`)
	if _, _, err := SplitProducerFilter(calculus.Conjuncts(f), []string{"x", "y"}); err == nil {
		t.Fatal("unproduced variable must be an error")
	}
}

func TestSplitKeepsParameterFilters(t *testing.T) {
	// With x bound outside, skill(x,"db") is a filter for producing z.
	f := body(t, `member(x, z) and not skill(x, "db")`)
	prods, filts, err := SplitProducerFilter(calculus.Conjuncts(f), []string{"z"})
	if err != nil {
		t.Fatalf("SplitProducerFilter: %v", err)
	}
	if len(prods) != 1 || len(filts) != 1 {
		t.Fatalf("split = %d, %d; want 1 producer, 1 filter", len(prods), len(filts))
	}
}
