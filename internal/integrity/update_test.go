package integrity

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestInsertCheckedAcceptsAndRejects(t *testing.T) {
	db := deptDB()
	m := NewManager(db)
	m.MustDefine("ref", `forall x, d: emp(x, d) => exists h: dept(d, h)`)

	// A valid insert goes through.
	if err := m.InsertChecked("emp", relation.NewTuple(s("kim"), s("cs"))); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
	emp, _ := db.Catalog().Relation("emp")
	if !emp.Contains(relation.NewTuple(s("kim"), s("cs"))) {
		t.Fatal("insert lost")
	}

	// A violating insert is rolled back with a named error.
	err := m.InsertChecked("emp", relation.NewTuple(s("zed"), s("phy")))
	if err == nil || !strings.Contains(err.Error(), "ref") {
		t.Fatalf("want violation of ref, got %v", err)
	}
	if emp.Contains(relation.NewTuple(s("zed"), s("phy"))) {
		t.Fatal("violating insert not rolled back")
	}

	// Duplicates are no-ops even when the database is otherwise consistent.
	if err := m.InsertChecked("emp", relation.NewTuple(s("kim"), s("cs"))); err != nil {
		t.Fatalf("duplicate insert must be a no-op: %v", err)
	}
}

func TestCheckInsertionSkipsUnrelated(t *testing.T) {
	db := deptDB()
	m := NewManager(db)
	db.MustDefine("project_of", "p", "d")
	m.MustDefine("dept-heads", `forall d, h: dept(d, h) => emp(h, d)`)
	m.MustDefine("projectless", `not exists p, d: project_of(p, d)`)

	// Violate the project_of-only constraint, then insert into emp: the
	// insertion keeps dept-heads satisfied, and CheckInsertion must NOT
	// recheck "projectless" (emp does not occur in it), so no violation is
	// reported even though the database as a whole is inconsistent.
	pr, _ := db.Catalog().Relation("project_of")
	pr.InsertValues(s("p9"), s("cs")) // violates "projectless"
	name, err := m.CheckInsertion("emp", relation.NewTuple(s("joe2"), s("cs")))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Fatalf("insertion into emp flagged %q; projectless must not be rechecked", name)
	}
}

// TestSpecializationTriviallyUnaffected: a constraint over emp(x, "cs")
// does not constrain tuples of other departments.
func TestSpecializationTriviallyUnaffected(t *testing.T) {
	db := deptDB()
	db.MustDefine("skill_of", "who", "what")
	m := NewManager(db)
	m.MustDefine("cs-skilled", `forall x: emp(x, "cs") => exists s: skill_of(x, s)`)
	// Every current cs employee violates this, so full rechecks would
	// fail; but inserting a MATH employee is outside the range and must
	// pass under specialization.
	emp, _ := db.Catalog().Relation("emp")
	emp.Insert(relation.NewTuple(s("mia"), s("math")))
	name, err := m.CheckInsertion("emp", relation.NewTuple(s("mia"), s("math")))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Fatalf("math insert flagged %q; it is outside the cs range", name)
	}
	// A cs insert without a skill is caught.
	emp.Insert(relation.NewTuple(s("nik"), s("cs")))
	name, err = m.CheckInsertion("emp", relation.NewTuple(s("nik"), s("cs")))
	if err != nil {
		t.Fatal(err)
	}
	if name != "cs-skilled" {
		t.Fatalf("cs insert must be flagged, got %q", name)
	}
}

// TestSpecializationNegativePolarityGuard: the antisymmetry-like shape
// where the updated relation occurs negatively in the consequent must NOT
// be specialized — a new tuple can falsify an old tuple's obligation.
func TestSpecializationNegativePolarityGuard(t *testing.T) {
	db := deptDB()
	r := db.MustDefine("r", "a", "b")
	q := db.MustDefine("qq", "a")
	m := NewManager(db)
	// ∀x,y r(x,y) ⇒ (¬r(y,y) ∨ qq(x))
	m.MustDefine("tricky", `forall x, y: r(x, y) => (not r(y, y) or qq(x))`)

	// r = {(a,b)}, qq(b) only: the old obligation for (a,b) is ¬r(b,b) —
	// satisfied. Now insert (b,b): the NEW obligation is ¬r(b,b) ∨ qq(b),
	// which holds via qq(b); only the OLD tuple's obligation breaks. The
	// polarity guard must force a full check that catches it.
	r.InsertValues(s("a"), s("b"))
	q.InsertValues(s("b"))
	rel, _ := db.Catalog().Relation("r")
	rel.Insert(relation.NewTuple(s("b"), s("b")))
	name, err := m.CheckInsertion("r", relation.NewTuple(s("b"), s("b")))
	if err != nil {
		t.Fatal(err)
	}
	if name != "tricky" {
		t.Fatalf("negative-polarity violation missed (got %q)", name)
	}
}

func TestInsertCheckedUnknownRelation(t *testing.T) {
	m := NewManager(deptDB())
	if err := m.InsertChecked("nosuch", relation.NewTuple(s("x"))); err == nil {
		t.Fatal("unknown relation must fail")
	}
}

func TestInsertCheckedThroughViews(t *testing.T) {
	db := deptDB()
	if err := db.DefineView("headed", `{ d | exists h: dept(d, h) }`); err != nil {
		t.Fatal(err)
	}
	m := NewManager(db)
	m.MustDefine("emp-headed", `forall x, d: emp(x, d) => headed(d)`)
	if err := m.InsertChecked("emp", relation.NewTuple(s("pat"), s("math"))); err != nil {
		t.Fatalf("valid insert through view rejected: %v", err)
	}
	if err := m.InsertChecked("emp", relation.NewTuple(s("pat"), s("phy"))); err == nil {
		t.Fatal("unheaded department must be rejected")
	}
}
