package integrity

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func s(x string) relation.Value { return relation.Str(x) }

func deptDB() *core.DB {
	db := core.NewDB()
	emp := db.MustDefine("emp", "name", "dept")
	dept := db.MustDefine("dept", "id", "head")
	for _, r := range [][2]string{{"ann", "cs"}, {"bob", "cs"}, {"eve", "math"}, {"joe", "bio"}} {
		emp.InsertValues(s(r[0]), s(r[1]))
	}
	for _, r := range [][2]string{{"cs", "ann"}, {"math", "eve"}} {
		dept.InsertValues(s(r[0]), s(r[1]))
	}
	return db
}

func TestCheckSatisfied(t *testing.T) {
	m := NewManager(deptDB())
	m.MustDefine("heads-are-members", `forall d, h: dept(d, h) => emp(h, d)`)
	rep, err := m.Check("heads-are-members")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied || rep.Witnesses != nil {
		t.Fatalf("want satisfied with no witnesses, got %+v", rep)
	}
}

func TestCheckViolatedWithWitnesses(t *testing.T) {
	m := NewManager(deptDB())
	m.MustDefine("ref", `forall x, d: emp(x, d) => exists h: dept(d, h)`)
	rep, err := m.Check("ref")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("joe works in the undefined bio department")
	}
	if rep.Witnesses == nil || rep.Witnesses.Len() != 1 {
		t.Fatalf("want exactly one witness, got %+v", rep.Witnesses)
	}
	w := rep.Witnesses.At(0)
	// The witness carries the constraint's universal variables; their
	// order follows the canonical form, so check as a set.
	if len(w) != 2 {
		t.Fatalf("witness = %s", w)
	}
	got := map[string]bool{w[0].AsString(): true, w[1].AsString(): true}
	if !got["joe"] || !got["bio"] {
		t.Fatalf("witness = %s, want {joe, bio}", w)
	}
	if len(rep.WitnessVars) != 2 {
		t.Fatalf("witness vars = %v", rep.WitnessVars)
	}
}

func TestCheckExistentialNoWitnessQuery(t *testing.T) {
	m := NewManager(deptDB())
	// Violated existential constraint: its violation is an absence, no
	// witness tuples exist.
	m.MustDefine("has-phy", `exists h: dept("phy", h)`)
	rep, err := m.Check("has-phy")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("no physics department exists")
	}
	if rep.Witnesses != nil {
		t.Fatalf("existential violations have no witnesses, got %s", rep.Witnesses)
	}
}

func TestCheckAllAndViolated(t *testing.T) {
	m := NewManager(deptDB())
	m.MustDefine("a", `forall d, h: dept(d, h) => emp(h, d)`)
	m.MustDefine("b", `forall x, d: emp(x, d) => exists h: dept(d, h)`)
	m.MustDefine("c", `exists x: emp(x, "cs")`)
	all, err := m.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("reports = %d", len(all))
	}
	bad, err := m.Violated()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].Name != "b" {
		t.Fatalf("violated = %+v", bad)
	}
}

func TestDefineErrors(t *testing.T) {
	m := NewManager(deptDB())
	if _, err := m.Define("open", `{ x | emp(x, "cs") }`); err == nil {
		t.Fatal("open queries are not constraints")
	}
	if _, err := m.Define("bad", `forall x: x != "a" => emp(x, "cs")`); err == nil {
		t.Fatal("unsafe constraints must be rejected at definition")
	}
	if _, err := m.Define("syntax", `forall x: (`); err == nil {
		t.Fatal("syntax errors must be rejected")
	}
	m.MustDefine("ok", `forall d, h: dept(d, h) => emp(h, d)`)
	if _, err := m.Define("ok", `exists x: emp(x, "cs")`); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
	if _, err := m.Check("missing"); err == nil {
		t.Fatal("unknown constraint must error")
	}
	if len(m.Constraints()) != 1 {
		t.Fatalf("constraints = %d", len(m.Constraints()))
	}
}

func TestConstraintOverViews(t *testing.T) {
	db := deptDB()
	if err := db.DefineView("headed", `{ d | exists h: dept(d, h) }`); err != nil {
		t.Fatal(err)
	}
	m := NewManager(db)
	m.MustDefine("emp-depts-headed", `forall x, d: emp(x, d) => headed(d)`)
	rep, err := m.Check("emp-depts-headed")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatal("bio is not headed")
	}
	if rep.Witnesses == nil || rep.Witnesses.Len() != 1 {
		t.Fatalf("want one witness through the view, got %+v", rep.Witnesses)
	}
}

func TestWitnessesDisappearAfterRepair(t *testing.T) {
	db := deptDB()
	m := NewManager(db)
	m.MustDefine("ref", `forall x, d: emp(x, d) => exists h: dept(d, h)`)
	rep, _ := m.Check("ref")
	if rep.Satisfied {
		t.Fatal("precondition: violated")
	}
	dept, _ := db.Catalog().Relation("dept")
	dept.InsertValues(s("bio"), s("joe"))
	rep, err := m.Check("ref")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatal("constraint must hold after the repair")
	}
}
